// Byzantine consensus with Phase-King, decomposed into the paper's
// AdoptCommit (Algorithm 3) and king Conciliator (Algorithm 4) under the
// Algorithm 2 template — including the reproduction's soundness finding:
// a crafted Byzantine round-1 king breaks the paper's first-commit
// decision rule, while the classical final-value rule survives the
// identical attack.
//
//	go run ./examples/byzantine
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"ooc/internal/phaseking"
	"ooc/internal/sim"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Part 1: an ordinary Byzantine run — 7 processors, 2 of them
	// Byzantine (one equivocating, one spouting garbage), occupying the
	// first two king slots.
	fmt.Println("== Phase-King, n=7, t=2, equivocate+garbage adversaries ==")
	res, err := phaseking.Run(ctx, phaseking.Config{
		N: 7, T: 2,
		Inputs: map[int]int{2: 0, 3: 1, 4: 0, 5: 1, 6: 0},
		Byzantine: map[int]phaseking.Adversary{
			0: phaseking.EquivocateAdversary{},
			1: phaseking.GarbageAdversary{},
		},
		Rule: phaseking.RuleFinalValue,
	})
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)
	if !res.AgreementHolds() {
		log.Fatal("agreement violated against standard adversaries")
	}

	// Part 2: the king-diversion attack (n=4, t=1, Byzantine king of
	// round 1). Under the paper's first-commit rule processor 1 decides 0
	// while processors 2 and 3 decide 1.
	fmt.Println("\n== King-diversion attack vs the paper's first-commit rule ==")
	attack := func(rule phaseking.DecisionRule, name string) {
		res, err := phaseking.Run(ctx, phaseking.Config{
			N: 4, T: 1,
			Inputs:    map[int]int{1: 0, 2: 0, 3: 1},
			Byzantine: map[int]phaseking.Adversary{0: phaseking.KingDiversionAdversary()},
			Rule:      rule,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "agreement HOLDS"
		if !res.AgreementHolds() {
			verdict = "agreement BROKEN"
		}
		fmt.Printf("%s rule: %s\n", name, verdict)
		printResult(res)
	}
	attack(phaseking.RuleFirstCommit, "first-commit (paper)")
	attack(phaseking.RuleFinalValue, "final-value (classical)")

	rng := sim.NewRNG(1)
	_ = rng // reserved for randomized adversaries; see cmd/oocsim -adversary random
}

func printResult(res phaseking.Result) {
	ids := make([]int, 0, len(res.Decisions))
	for id := range res.Decisions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		d := res.Decisions[id]
		fmt.Printf("  p%d decided %d (round %d)\n", id, d.Value, d.Round)
	}
	for id, err := range res.Errs {
		fmt.Printf("  p%d error: %v\n", id, err)
	}
}
