// Leader election — the first application the paper's introduction
// motivates — built on the framework's multivalued consensus extension:
// every node proposes its own name, the multivalued
// vacillate-adopt-commit + seen-set reconciliator run under Algorithm 1,
// and the decided name is the leader. Crash faults included.
//
//	go run ./examples/leaderelection
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"ooc/internal/core"
	"ooc/internal/multivalue"
	"ooc/internal/netsim"
	"ooc/internal/sim"
)

func main() {
	const (
		n       = 7
		tFaults = 3
	)
	candidates := []string{"ada", "bob", "cleo", "dan", "eve", "finn", "gus"}

	nw := netsim.New(n, netsim.WithSeed(42))
	rng := sim.NewRNG(42)

	// Two candidates crash during the election; the survivors must still
	// agree on a single leader.
	nw.CrashAfterSends(5, 10)
	nw.Crash(6)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	decisions := make([]core.Decision[string], n)
	errs := make([]error, n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			decisions[id], errs[id] = multivalue.RunDecomposed[string](
				ctx, nw.Node(id), rng.Fork(uint64(id)), tFaults, candidates[id],
				core.WithMaxRounds(5000),
			)
		}(id)
	}
	wg.Wait()

	fmt.Printf("candidates: %v (finn and gus crash)\n", candidates)
	leader := ""
	for id := 0; id < n; id++ {
		if errs[id] != nil {
			fmt.Printf("  %s (p%d): crashed during election\n", candidates[id], id)
			continue
		}
		d := decisions[id]
		fmt.Printf("  %s (p%d): elects %q (round %d)\n", candidates[id], id, d.Value, d.Round)
		if leader == "" {
			leader = d.Value
		} else if leader != d.Value {
			log.Fatalf("split election: %q vs %q", leader, d.Value)
		}
	}
	valid := false
	for _, c := range candidates {
		if c == leader {
			valid = true
		}
	}
	if !valid {
		log.Fatalf("elected a non-candidate %q", leader)
	}
	fmt.Printf("leader: %s\n", leader)
}
