// Quickstart: binary consensus among 5 processors (2 of which crash!) on
// the in-memory simulated network, using the paper's decomposition —
// Ben-Or's vacillate-adopt-commit object and a coin-flip reconciliator
// under the generic Algorithm 1 template.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"ooc/internal/benor"
	"ooc/internal/core"
	"ooc/internal/netsim"
	"ooc/internal/sim"
)

func main() {
	const (
		n       = 5 // processors
		tFaults = 2 // crash tolerance: 2t < n
	)
	inputs := []int{0, 1, 0, 1, 1}

	// The simulated asynchronous network: the seed fixes the adversarial
	// delivery order, so runs are reproducible.
	nw := netsim.New(n, netsim.WithSeed(2024))
	rng := sim.NewRNG(7)

	// Fault injection: processor 4 dies instantly, processor 3 dies in
	// the middle of its first broadcast.
	nw.Crash(4)
	nw.CrashAfterSends(3, 3)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	decisions := make([]core.Decision[int], n)
	errs := make([]error, n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Each processor runs: rounds of VAC.Propose, falling back to
			// the coin-flip reconciliator whenever it vacillates.
			decisions[id], errs[id] = benor.RunDecomposed(
				ctx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id],
				core.WithMaxRounds(1000),
			)
		}(id)
	}
	wg.Wait()

	fmt.Printf("inputs: %v (processors 3 and 4 crash)\n", inputs)
	agreed := -1
	for id := 0; id < n; id++ {
		if errs[id] != nil {
			fmt.Printf("  p%d: crashed (%v)\n", id, errs[id])
			continue
		}
		d := decisions[id]
		fmt.Printf("  p%d: decided %d in round %d\n", id, d.Value, d.Round)
		if agreed == -1 {
			agreed = d.Value
		} else if agreed != d.Value {
			log.Fatalf("agreement violated: %d vs %d", agreed, d.Value)
		}
	}
	fmt.Printf("consensus value: %d\n", agreed)
}
