// A replicated key-value store on full Raft over real TCP loopback
// sockets: elect, replicate, crash the leader, fail over, repair a
// laggard's log. This is the paper's Section 4.3 substrate doing the job
// it was designed for.
//
//	go run ./examples/raftkv
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ooc/internal/raft"
	"ooc/internal/sim"
	"ooc/internal/transport"
)

func main() {
	transport.Register(raft.WireTypes()...)
	const n = 3
	eps, err := transport.NewLocalCluster(n)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, ep := range eps {
			_ = ep.Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	rng := sim.NewRNG(99)
	kvs := make([]*raft.KVStore, n)
	nodes := make([]*raft.Node, n)
	for id := 0; id < n; id++ {
		kvs[id] = &raft.KVStore{}
		node, err := raft.NewNode(raft.Config{
			ID:                id,
			Endpoint:          eps[id],
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   100 * time.Millisecond,
			HeartbeatInterval: 20 * time.Millisecond,
			StateMachine:      kvs[id],
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes[id] = node
		node.Start(ctx)
		fmt.Printf("node %d on %s\n", id, eps[id].Addr())
	}

	leader := waitLeader(nodes, nil)
	fmt.Printf("elected leader: node %d\n", leader)

	var last int
	for _, kv := range []raft.KVCommand{
		{Op: "set", Key: "lang", Value: "go"},
		{Op: "set", Key: "paper", Value: "ooc"},
		{Op: "set", Key: "venue", Value: "podc17"},
	} {
		idx, err := nodes[leader].Propose(ctx, kv)
		if err != nil {
			log.Fatalf("propose: %v", err)
		}
		last = idx
	}
	waitApplied(kvs, last, nil)
	fmt.Printf("all nodes applied %d entries; node 2 sees %v\n", last, kvs[2].Snapshot())

	fmt.Printf("crashing leader %d...\n", leader)
	_ = eps[leader].Close()
	dead := map[int]bool{leader: true}
	leader2 := waitLeader(nodes, dead)
	fmt.Printf("new leader: node %d (term %d)\n", leader2, nodes[leader2].Status().Term)

	idx, err := nodes[leader2].Propose(ctx, raft.KVCommand{Op: "set", Key: "failover", Value: "survived"})
	if err != nil {
		log.Fatalf("post-failover propose: %v", err)
	}
	waitApplied(kvs, idx, dead)
	v, _ := kvs[leader2].Get("failover")
	fmt.Printf("post-failover write visible everywhere: failover=%s\n", v)
	fmt.Println("ok")
}

func waitLeader(nodes []*raft.Node, dead map[int]bool) int {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		for id, node := range nodes {
			if !dead[id] && node.Status().State == raft.Leader {
				return id
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("no leader elected")
	return -1
}

func waitApplied(kvs []*raft.KVStore, index int, dead map[int]bool) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for id, kv := range kvs {
			if !dead[id] && kv.AppliedIndex() < index {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("replication incomplete")
}
