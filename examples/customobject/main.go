// Build your own consensus from the framework's object interfaces. This
// example composes a VacillateAdoptCommit out of two shared-memory
// adopt-commit objects (the Section 5 construction) and pairs it with a
// hand-written reconciliator that flips increasingly biased coins, then
// runs the whole thing under the generic Algorithm 1 template.
//
// It is the pattern to copy when plugging a new protocol into the
// framework: implement core.VacillateAdoptCommit (or use an adapter) and
// core.Reconciliator, and the template does the rest.
//
//	go run ./examples/customobject
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"ooc/internal/adapters"
	"ooc/internal/core"
	"ooc/internal/sim"
)

// driftingCoin is a custom reconciliator: each round it flips a coin that
// drifts toward 1, so stalemates break faster than with a fair coin (at
// the price of biasing which value wins contested runs).
type driftingCoin struct {
	rng *sim.RNG
}

var _ core.Reconciliator[int] = (*driftingCoin)(nil)

func (c *driftingCoin) Reconcile(_ context.Context, _ core.Confidence, _ int, round int) (int, error) {
	p := 0.5 + 0.4*float64(min(round, 10))/10.0
	if c.rng.Float64() < p {
		return 1, nil
	}
	return 0, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func main() {
	const n = 4
	inputs := []int{0, 1, 1, 0}

	// Two independent adopt-commit objects per round, shared by all
	// processors — the substrate the composite VAC is built from.
	store1 := adapters.NewSharedACStore(n)
	store2 := adapters.NewSharedACStore(n)
	rng := sim.NewRNG(123)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	decisions := make([]core.Decision[int], n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// The Section 5 construction: commit iff both ACs commit,
			// adopt iff only the second does, vacillate otherwise.
			vac := adapters.NewVACFromACs[int](store1.Object(id), store2.Object(id))
			rec := &driftingCoin{rng: rng.Fork(uint64(id))}
			d, err := core.RunVAC[int](ctx, vac, rec, inputs[id], core.WithMaxRounds(500))
			if err != nil {
				log.Fatalf("p%d: %v", id, err)
			}
			decisions[id] = d
		}(id)
	}
	wg.Wait()

	fmt.Printf("inputs: %v\n", inputs)
	for id, d := range decisions {
		fmt.Printf("  p%d: decided %d in round %d\n", id, d.Value, d.Round)
	}
	for _, d := range decisions[1:] {
		if d.Value != decisions[0].Value {
			log.Fatal("agreement violated")
		}
	}
	fmt.Printf("consensus value: %d\n", decisions[0].Value)
}
