package sharedmem

import (
	"context"
	"fmt"
	"sync"

	"ooc/internal/core"
	"ooc/internal/sim"
)

// ConciliatorStore is Aspnes's conciliator for the probabilistic-write
// model (the headline construction of the paper's reference [2]): one
// shared register per round, and each processor alternates reads with
// writes performed only with small, geometrically rising probability.
//
//	Conciliate(v):
//	  for k = 0, 1, 2, ...:
//	    if r is written: return its value
//	    with probability 2^k / (2n): write v to r (first write wins)
//	  return r's value
//
// Because writes are rare, with constant probability (> 1/4 for large n)
// the first write completes before any other processor attempts one, and
// then every later read adopts it — probabilistic agreement. Validity is
// trivial (only inputs are written) and termination takes O(log n)
// expected phases, since by phase log₂(2n) the write probability is 1.
type ConciliatorStore struct {
	n  int
	mu sync.Mutex
	// rounds maps round -> the shared register for that round.
	rounds map[int]*Register
}

// NewConciliatorStore creates the per-round registers for n processors.
func NewConciliatorStore(n int) *ConciliatorStore {
	if n <= 0 {
		panic(fmt.Sprintf("sharedmem: invalid processor count %d", n))
	}
	return &ConciliatorStore{n: n, rounds: make(map[int]*Register)}
}

func (s *ConciliatorStore) round(m int) *Register {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rounds[m]
	if !ok {
		r = &Register{}
		s.rounds[m] = r
	}
	return r
}

// Object returns processor id's conciliator handle driven by rng.
func (s *ConciliatorStore) Object(id int, rng *sim.RNG) core.Conciliator[int] {
	return &conciliatorObject{store: s, rng: rng}
}

type conciliatorObject struct {
	store *ConciliatorStore
	rng   *sim.RNG
}

var _ core.Conciliator[int] = (*conciliatorObject)(nil)

// Conciliate implements core.Conciliator.
func (o *conciliatorObject) Conciliate(ctx context.Context, _ core.Confidence, v int, round int) (int, error) {
	r := o.store.round(round)
	p := 1.0 / float64(2*o.store.n)
	for {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if got, ok := r.Read(); ok {
			return got.(int), nil
		}
		if o.rng.Float64() < p {
			if r.WriteOnce(v) {
				return v, nil
			}
			// Lost the race: adopt the winner.
			got, _ := r.Read()
			return got.(int), nil
		}
		if p < 1 {
			p *= 2
			if p > 1 {
				p = 1
			}
		}
	}
}

// Consensus bundles the two objects into the paper's Algorithm 2 for the
// shared-memory model: rounds of Gafni's adopt-commit, with Aspnes's
// probabilistic-write conciliator breaking stalemates.
type Consensus struct {
	n   int
	acs *ACStore
	cns *ConciliatorStore
}

// NewConsensus creates the shared objects for n processors.
func NewConsensus(n int) *Consensus {
	return &Consensus{n: n, acs: NewACStore(n), cns: NewConciliatorStore(n)}
}

// Run executes processor id's consensus with input v. Each processor
// must use its own rng stream.
func (c *Consensus) Run(ctx context.Context, id int, rng *sim.RNG, v int, opts ...core.Option) (core.Decision[int], error) {
	if id < 0 || id >= c.n {
		return core.Decision[int]{}, fmt.Errorf("sharedmem: id %d out of range [0,%d)", id, c.n)
	}
	return core.RunAC[int](ctx, c.acs.Object(id), c.cns.Object(id, rng), v, opts...)
}
