package sharedmem

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ooc/internal/checker"
	"ooc/internal/core"
	"ooc/internal/sim"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestRegisterBasics(t *testing.T) {
	var r Register
	if _, ok := r.Read(); ok {
		t.Fatal("empty register reported written")
	}
	r.Write(7)
	v, ok := r.Read()
	if !ok || v != 7 {
		t.Fatalf("Read = %v %v", v, ok)
	}
	r.Write(8)
	if v, _ := r.Read(); v != 8 {
		t.Fatalf("overwrite failed: %v", v)
	}
}

func TestRegisterWriteOnce(t *testing.T) {
	var r Register
	if !r.WriteOnce(1) {
		t.Fatal("first WriteOnce lost")
	}
	if r.WriteOnce(2) {
		t.Fatal("second WriteOnce won")
	}
	if v, _ := r.Read(); v != 1 {
		t.Fatalf("register holds %v", v)
	}
}

func TestRegisterWriteOnceRace(t *testing.T) {
	// Exactly one of many concurrent WriteOnce calls may win.
	var r Register
	const workers = 16
	wins := make([]bool, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wins[i] = r.WriteOnce(i)
		}(i)
	}
	wg.Wait()
	count := 0
	winner := -1
	for i, w := range wins {
		if w {
			count++
			winner = i
		}
	}
	if count != 1 {
		t.Fatalf("%d winners", count)
	}
	if v, _ := r.Read(); v != winner {
		t.Fatalf("register holds %v, winner was %d", v, winner)
	}
}

func TestArraySnapshot(t *testing.T) {
	a := NewArray(3)
	if snap := a.Snapshot(); len(snap) != 0 {
		t.Fatalf("fresh array snapshot %v", snap)
	}
	a.Update(1, "x")
	snap := a.UpdateAndSnapshot(2, "y")
	if len(snap) != 2 || snap[1] != "x" || snap[2] != "y" {
		t.Fatalf("snapshot %v", snap)
	}
	if _, ok := snap[0]; ok {
		t.Fatal("unwritten slot present")
	}
}

func TestArrayPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewArray(0) did not panic")
		}
	}()
	NewArray(0)
}

func TestACStoreProperties(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		rng := sim.NewRNG(seed)
		n := 2 + rng.Intn(7)
		store := NewACStore(n)
		inputs := make(map[int]int, n)
		outs := make([]checker.ObjectOutcome[int], n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			inputs[id] = rng.Bit()
			wg.Add(1)
			go func(id, v int) {
				defer wg.Done()
				c, u, err := store.Object(id).Propose(ctxT(t), v, 1)
				outs[id] = checker.ObjectOutcome[int]{Node: id, Conf: c, Value: u}
				errs[id] = err
			}(id, inputs[id])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		if rep := checker.CheckACRound(outs, inputs); !rep.Ok() {
			t.Fatalf("seed %d: %v", seed, rep)
		}
	}
}

func TestACStoreSequentialSoloCommits(t *testing.T) {
	// A lone processor (others crashed before participating) must commit
	// its own value — wait-freedom.
	store := NewACStore(5)
	c, v, err := store.Object(3).Propose(context.Background(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c != core.Commit || v != 1 {
		t.Fatalf("solo propose got (%v, %d)", c, v)
	}
}

func TestACStoreContextCancelled(t *testing.T) {
	store := NewACStore(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := store.Object(0).Propose(ctx, 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestConciliatorSoloReturnsOwnValue(t *testing.T) {
	s := NewConciliatorStore(4)
	v, err := s.Object(0, sim.NewRNG(1)).Conciliate(context.Background(), core.Adopt, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("solo conciliate returned %d", v)
	}
}

func TestConciliatorValidityAndAgreementProbability(t *testing.T) {
	// Validity: output is always some invoker's input. Probabilistic
	// agreement: a visible fraction of rounds must end with all
	// processors on the same value even with a full split.
	const n = 6
	agreeing := 0
	const rounds = 200
	rng := sim.NewRNG(9)
	for round := 1; round <= rounds; round++ {
		s := NewConciliatorStore(n)
		outs := make([]int, n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				v, err := s.Object(id, rng.Fork(uint64(round*100+id))).Conciliate(ctxT(t), core.Adopt, id%2, round)
				if err != nil {
					t.Error(err)
					return
				}
				outs[id] = v
			}(id)
		}
		wg.Wait()
		same := true
		for _, v := range outs {
			if v != 0 && v != 1 {
				t.Fatalf("validity violated: %d", v)
			}
			if v != outs[0] {
				same = false
			}
		}
		if same {
			agreeing++
		}
	}
	if agreeing == 0 {
		t.Fatal("probabilistic agreement never materialized in 200 rounds")
	}
	t.Logf("conciliator agreement rate: %d/%d", agreeing, rounds)
}

func TestConciliatorContextCancelled(t *testing.T) {
	s := NewConciliatorStore(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Object(0, sim.NewRNG(1)).Conciliate(ctx, core.Adopt, 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestSharedMemoryConsensus(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		rng := sim.NewRNG(seed)
		n := 2 + rng.Intn(7)
		cons := NewConsensus(n)
		inputs := make(map[int]int, n)
		outs := make([]checker.RunOutcome[int], n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			inputs[id] = rng.Bit()
			wg.Add(1)
			go func(id, v int) {
				defer wg.Done()
				d, err := cons.Run(ctxT(t), id, rng.Fork(uint64(id)), v, core.WithMaxRounds(10000))
				if err != nil {
					t.Errorf("p%d: %v", id, err)
					return
				}
				outs[id] = checker.RunOutcome[int]{Node: id, Decided: true, Value: d.Value, Round: d.Round}
			}(id, inputs[id])
		}
		wg.Wait()
		if rep := checker.CheckConsensus(outs, inputs, true); !rep.Ok() {
			t.Fatalf("seed %d: %v", seed, rep)
		}
	}
}

func TestConsensusUnanimousDecidesRoundOne(t *testing.T) {
	const n = 5
	cons := NewConsensus(n)
	rng := sim.NewRNG(4)
	var wg sync.WaitGroup
	decisions := make([]core.Decision[int], n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d, err := cons.Run(ctxT(t), id, rng.Fork(uint64(id)), 1, core.WithMaxRounds(100))
			if err != nil {
				t.Error(err)
				return
			}
			decisions[id] = d
		}(id)
	}
	wg.Wait()
	for id, d := range decisions {
		if d.Value != 1 {
			t.Fatalf("p%d decided %d", id, d.Value)
		}
	}
}

func TestConsensusRejectsBadID(t *testing.T) {
	cons := NewConsensus(2)
	if _, err := cons.Run(context.Background(), 5, sim.NewRNG(1), 0); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}

func TestACStoreQuickUnanimity(t *testing.T) {
	// Property: for any size and any unanimous value, every processor
	// commits that value (convergence), sequentially or concurrently.
	f := func(rawN uint8, bit bool) bool {
		n := 1 + int(rawN)%8
		v := 0
		if bit {
			v = 1
		}
		store := NewACStore(n)
		var wg sync.WaitGroup
		ok := make([]bool, n)
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				c, u, err := store.Object(id).Propose(context.Background(), v, 1)
				ok[id] = err == nil && c == core.Commit && u == v
			}(id)
		}
		wg.Wait()
		for _, o := range ok {
			if !o {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
