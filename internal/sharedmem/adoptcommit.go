package sharedmem

import (
	"context"
	"fmt"
	"sync"

	"ooc/internal/core"
)

// ACStore is Gafni's wait-free adopt-commit over two snapshot arrays per
// round:
//
//	AC(v):
//	  proposals.Update(i, v); P ← proposals.Snapshot()
//	  if P holds only v:  checks.Update(i, (commit-bid, v))
//	  else:               checks.Update(i, (no-bid, u))   for some u ∈ P
//	  C ← checks.Snapshot()
//	  if C holds only commit-bids (necessarily one value w): (commit, w)
//	  elif C holds a commit-bid for w:                       (adopt, w)
//	  else:                                                  (adopt, own)
//
// At most one value can ever win a commit-bid in a round: two unanimity
// snapshots with different values would each have to precede the other's
// Update, which the single linearization order forbids. That gives
// coherence; unanimous inputs give convergence.
type ACStore struct {
	n      int
	mu     sync.Mutex
	rounds map[int]*acArrays
}

type acArrays struct {
	proposals *Array
	checks    *Array
}

type checkMark struct {
	commit bool
	value  int
}

// NewACStore creates the per-round shared arrays for n processors.
func NewACStore(n int) *ACStore {
	if n <= 0 {
		panic(fmt.Sprintf("sharedmem: invalid processor count %d", n))
	}
	return &ACStore{n: n, rounds: make(map[int]*acArrays)}
}

func (s *ACStore) round(m int) *acArrays {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rounds[m]
	if !ok {
		r = &acArrays{proposals: NewArray(s.n), checks: NewArray(s.n)}
		s.rounds[m] = r
	}
	return r
}

// Object returns processor id's adopt-commit handle.
func (s *ACStore) Object(id int) core.AdoptCommit[int] {
	if id < 0 || id >= s.n {
		panic(fmt.Sprintf("sharedmem: id %d out of range [0,%d)", id, s.n))
	}
	return &acObject{store: s, id: id}
}

type acObject struct {
	store *ACStore
	id    int
}

var _ core.AdoptCommit[int] = (*acObject)(nil)

// Propose implements core.AdoptCommit.
func (o *acObject) Propose(ctx context.Context, v int, round int) (core.Confidence, int, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	r := o.store.round(round)

	proposals := r.proposals.UpdateAndSnapshot(o.id, v)
	unanimous := true
	for _, p := range proposals {
		if p.(int) != v {
			unanimous = false
		}
	}
	checks := r.checks.UpdateAndSnapshot(o.id, checkMark{commit: unanimous, value: v})

	allCommit := true
	someCommit := false
	commitVal := 0
	for _, raw := range checks {
		mark := raw.(checkMark)
		if mark.commit {
			someCommit = true
			commitVal = mark.value
		} else {
			allCommit = false
		}
	}
	switch {
	case allCommit && someCommit:
		return core.Commit, commitVal, nil
	case someCommit:
		return core.Adopt, commitVal, nil
	default:
		return core.Adopt, v, nil
	}
}
