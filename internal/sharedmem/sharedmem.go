// Package sharedmem implements the substrate of Aspnes's "A modular
// approach to shared-memory consensus" (Distributed Computing 2012) —
// the prior framework the paper extends. It provides:
//
//   - wait-free atomic registers and single-writer snapshot objects,
//   - a register-based adopt-commit object (Gafni's construction),
//   - Aspnes's conciliator for the probabilistic-write model: processors
//     write a shared register with small, rising probabilities, so with
//     constant probability exactly one value lands before anyone reads,
//   - shared-memory consensus = RunAC(adopt-commit, conciliator), the
//     paper's Algorithm 2 instantiated in the model it came from.
//
// The memory itself is modelled by mutex-protected cells, which is a
// legitimate (stronger) implementation of atomic registers; wait-freedom
// of the protocol layers is preserved because no protocol operation
// blocks on another processor.
package sharedmem

import (
	"fmt"
	"sync"
)

// Register is a multi-reader multi-writer atomic register.
// The zero value is an empty register.
type Register struct {
	mu      sync.Mutex
	value   any
	written bool
}

// Read returns the register contents and whether it was ever written.
func (r *Register) Read() (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.value, r.written
}

// Write stores v.
func (r *Register) Write(v any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.value, r.written = v, true
}

// WriteOnce stores v only if the register is still empty, atomically,
// and reports whether this call's value (or a concurrent winner's) now
// occupies the register. It models the linearization of a write racing
// with readers in the probabilistic-write model.
func (r *Register) WriteOnce(v any) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.written {
		r.value, r.written = v, true
		return true
	}
	return false
}

// Array is an n-slot single-writer snapshot object: slot i is writable
// only by processor i, and Snapshot returns an atomic view of all slots.
type Array struct {
	mu    sync.Mutex
	slots []slot
}

type slot struct {
	value   any
	written bool
}

// NewArray allocates an n-slot snapshot object.
func NewArray(n int) *Array {
	if n <= 0 {
		panic(fmt.Sprintf("sharedmem: invalid array size %d", n))
	}
	return &Array{slots: make([]slot, n)}
}

// Update writes processor id's slot.
func (a *Array) Update(id int, v any) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.slots[id] = slot{value: v, written: true}
}

// Snapshot returns the written values, indexed by processor; missing
// entries are unwritten slots.
func (a *Array) Snapshot() map[int]any {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int]any, len(a.slots))
	for id, s := range a.slots {
		if s.written {
			out[id] = s.value
		}
	}
	return out
}

// UpdateAndSnapshot performs Update and Snapshot as one linearization
// point — the combined operation Gafni's adopt-commit relies on.
func (a *Array) UpdateAndSnapshot(id int, v any) map[int]any {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.slots[id] = slot{value: v, written: true}
	out := make(map[int]any, len(a.slots))
	for i, s := range a.slots {
		if s.written {
			out[i] = s.value
		}
	}
	return out
}
