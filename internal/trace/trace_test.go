package trace

import (
	"fmt"
	"sync"
	"testing"
)

func TestRecorderSequenceNumbers(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 10; i++ {
		r.Note(i, "event %d", i)
	}
	tr := r.Snapshot()
	if len(tr.Events) != 10 {
		t.Fatalf("recorded %d events, want 10", len(tr.Events))
	}
	for i, ev := range tr.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

func TestNilRecorderDiscards(t *testing.T) {
	var r *Recorder
	r.Send(0, 1, 1, 10, "x") // must not panic
	r.Decide(0, 1, "v")
	if r.Len() != 0 {
		t.Fatal("nil recorder reported events")
	}
	if tr := r.Snapshot(); len(tr.Events) != 0 {
		t.Fatal("nil recorder snapshot non-empty")
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Send(w, (w+1)%workers, i, 4, i)
			}
		}(w)
	}
	wg.Wait()
	tr := r.Snapshot()
	if len(tr.Events) != workers*per {
		t.Fatalf("recorded %d events, want %d", len(tr.Events), workers*per)
	}
	seen := make(map[int]bool, len(tr.Events))
	for _, ev := range tr.Events {
		if seen[ev.Seq] {
			t.Fatalf("duplicate sequence number %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestSnapshotMergesShardsInSequenceOrder(t *testing.T) {
	r := NewRecorder()
	// Spread events across many distinct shard indices, including the
	// -1 "no node" convention and ids beyond the shard count.
	nodes := []int{-1, 0, 1, 15, 16, 17, 31, 100}
	const rounds = 20
	for i := 0; i < rounds; i++ {
		for _, n := range nodes {
			r.Deliver(n, 0, i, i)
		}
	}
	tr := r.Snapshot()
	if len(tr.Events) != rounds*len(nodes) {
		t.Fatalf("snapshot has %d events, want %d", len(tr.Events), rounds*len(nodes))
	}
	for i, ev := range tr.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d; merge is out of order", i, ev.Seq)
		}
	}
}

func TestNoteWithoutArgsStoresFormatVerbatim(t *testing.T) {
	r := NewRecorder()
	verbatim := "raw 100" + "%" // built at runtime so vet's printf check stays quiet
	r.Note(0, verbatim)
	r.Note(0, "n=%d", 7)
	tr := r.Snapshot()
	if got := tr.Events[0].Value; got != verbatim {
		t.Fatalf("no-args note = %q, want the format string verbatim", got)
	}
	if got := tr.Events[1].Value; got != "n=7" {
		t.Fatalf("formatted note = %q, want %q", got, "n=7")
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder()
	r.Send(0, 1, 1, 8, "m1")
	r.Send(0, 2, 1, 8, "m2")
	r.Deliver(1, 0, 1, "m1")
	r.Drop(2, 0, 1, "m2")
	r.Crash(2)
	r.Invoke(0, 1, "vac", "v")
	r.Return(0, 1, "vac", "commit")
	r.Decide(0, 3, "v")
	r.Decide(1, 2, "v")
	s := Summarize(r.Snapshot())
	if s.MessagesSent != 2 || s.MessagesDelivered != 1 || s.MessagesDropped != 1 {
		t.Fatalf("message counts wrong: %+v", s)
	}
	if s.BytesSent != 16 {
		t.Fatalf("BytesSent = %d, want 16", s.BytesSent)
	}
	if s.Crashes != 1 || s.Decisions != 2 {
		t.Fatalf("crash/decision counts wrong: %+v", s)
	}
	if s.DecideRound != 3 || s.MaxRound != 3 {
		t.Fatalf("round accounting wrong: %+v", s)
	}
	if s.ObjectInvocations["vac"] != 1 {
		t.Fatalf("object invocations wrong: %+v", s.ObjectInvocations)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(Trace{})
	if s.MessagesSent != 0 || s.Decisions != 0 || s.DecideRound != 0 {
		t.Fatalf("empty trace produced non-zero stats: %+v", s)
	}
}

func TestDecisionsAndByNodeAndReturns(t *testing.T) {
	r := NewRecorder()
	r.Decide(0, 1, "a")
	r.Send(1, 0, 1, 4, "x")
	r.Decide(1, 2, "a")
	r.Return(1, 1, "ac", "adopt")
	r.Return(1, 2, "vac", "commit")
	tr := r.Snapshot()

	dec := Decisions(tr)
	if len(dec) != 2 || dec[0].Node != 0 || dec[1].Node != 1 {
		t.Fatalf("Decisions = %+v", dec)
	}
	byNode := ByNode(tr)
	if len(byNode[1]) != 4 {
		t.Fatalf("node 1 has %d events, want 4", len(byNode[1]))
	}
	rets := Returns(tr, "vac")
	if len(rets) != 1 || rets[0].Value != "commit" {
		t.Fatalf("Returns(vac) = %+v", rets)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindSend:   "send",
		KindDecide: "decide",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{MessagesSent: 3, Decisions: 2}
	got := s.String()
	want := fmt.Sprintf("msgs=%d", 3)
	if len(got) == 0 || got[:len(want)] != want {
		t.Fatalf("Stats.String() = %q", got)
	}
}
