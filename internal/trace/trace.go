// Package trace records what happened during a protocol run: message
// sends, deliveries and drops, object invocations, decisions, and crashes.
// Every simulated experiment in this repository feeds a *Recorder, and the
// property checkers and benchmark harness consume the resulting Trace.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the event types a Recorder accepts.
type Kind int

// The event kinds, in rough causal order of a run.
const (
	KindSend Kind = iota + 1
	KindDeliver
	KindDrop
	KindCrash
	KindRoundStart
	KindInvoke // an object invocation (AC / VAC / conciliator / reconciliator)
	KindReturn // the matching object return
	KindDecide
	KindNote // free-form annotation
)

// String implements fmt.Stringer. It is on the hot formatting path
// (every Dump/FormatEvent call renders a kind), so it is a switch rather
// than a map lookup.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindDeliver:
		return "deliver"
	case KindDrop:
		return "drop"
	case KindCrash:
		return "crash"
	case KindRoundStart:
		return "round"
	case KindInvoke:
		return "invoke"
	case KindReturn:
		return "return"
	case KindDecide:
		return "decide"
	case KindNote:
		return "note"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind inverts Kind.String for the trace file decoder.
func ParseKind(s string) (Kind, bool) {
	for k := KindSend; k <= KindNote; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Event is a single record in a Trace.
type Event struct {
	Seq    int    // assigned by the Recorder, strictly increasing
	Kind   Kind   // what happened
	Node   int    // the processor the event belongs to (-1 if none)
	Peer   int    // counterpart processor for send/deliver (-1 if none)
	Round  int    // protocol round/phase/term if applicable (0 if none)
	Object string // object name for invoke/return ("" if none)
	Value  any    // payload: message body, decided value, returned pair
	Bytes  int    // approximate wire size for send events
	// Time is the event's offset from the recorder's start. It is only
	// populated by recorders built with NewTimedRecorder (the clock read
	// costs on the hot path, so plain recorders skip it); zero means
	// "not stamped". The ooctrace inspector uses it for round-latency
	// percentiles.
	Time time.Duration
}

// Trace is an immutable snapshot of recorded events.
type Trace struct {
	Events []Event
	Start  time.Time
	End    time.Time
}

// recorderShards is the number of independent append buffers a Recorder
// spreads its events over. Events shard by their Node, so each simulated
// processor appends to its own buffer and concurrent recorders contend
// only on the (uncontended-in-practice) per-shard locks plus one atomic
// sequence counter, not a single global mutex. A power of two keeps the
// shard index a mask.
const recorderShards = 16

// recorderShard is one append buffer. The trailing pad spaces shards a
// cache line apart so two nodes appending concurrently do not false-share.
type recorderShard struct {
	mu     sync.Mutex
	events []Event
	_      [32]byte
}

// Recorder accumulates events. It is safe for concurrent use and sharded
// internally: events land in per-node append buffers stamped from one
// global atomic sequence, and Snapshot merges the shards back into
// sequence order, so the observable Trace is identical to the old
// single-buffer recorder's. The zero value is ready to use; a nil
// *Recorder discards all events, so protocol code may record
// unconditionally.
type Recorder struct {
	start  time.Time
	timed  bool
	seq    atomic.Int64
	shards [recorderShards]recorderShard
}

// NewRecorder returns an empty recorder stamped with the current time.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now()}
}

// NewTimedRecorder returns a recorder that additionally stamps every
// event's Time with its offset from the recorder's start. The extra
// clock read costs a few tens of nanoseconds per event, so the plain
// NewRecorder remains the benchmark-path default.
func NewTimedRecorder() *Recorder {
	return &Recorder{start: time.Now(), timed: true}
}

// shardFor maps a node id (including the -1 "no node" convention) onto a
// shard index.
func shardFor(node int) int {
	return int(uint(node) & (recorderShards - 1))
}

// Record appends ev to the trace, assigning its sequence number.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	ev.Seq = int(r.seq.Add(1) - 1)
	if r.timed {
		ev.Time = time.Since(r.start)
	}
	s := &r.shards[shardFor(ev.Node)]
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Send records node sending a message of size bytes to peer.
func (r *Recorder) Send(node, peer, round, bytes int, payload any) {
	r.Record(Event{Kind: KindSend, Node: node, Peer: peer, Round: round, Bytes: bytes, Value: payload})
}

// Deliver records peer's message arriving at node.
func (r *Recorder) Deliver(node, peer, round int, payload any) {
	r.Record(Event{Kind: KindDeliver, Node: node, Peer: peer, Round: round, Value: payload})
}

// Drop records the network losing a message from peer to node.
func (r *Recorder) Drop(node, peer, round int, payload any) {
	r.Record(Event{Kind: KindDrop, Node: node, Peer: peer, Round: round, Value: payload})
}

// Crash records node halting.
func (r *Recorder) Crash(node int) {
	r.Record(Event{Kind: KindCrash, Node: node, Peer: -1})
}

// RoundStart records node entering round.
func (r *Recorder) RoundStart(node, round int) {
	r.Record(Event{Kind: KindRoundStart, Node: node, Peer: -1, Round: round})
}

// Invoke records node calling object with the given argument in round.
func (r *Recorder) Invoke(node, round int, object string, arg any) {
	r.Record(Event{Kind: KindInvoke, Node: node, Peer: -1, Round: round, Object: object, Value: arg})
}

// Return records object returning result to node in round.
func (r *Recorder) Return(node, round int, object string, result any) {
	r.Record(Event{Kind: KindReturn, Node: node, Peer: -1, Round: round, Object: object, Value: result})
}

// Decide records node deciding value in round.
func (r *Recorder) Decide(node, round int, value any) {
	r.Record(Event{Kind: KindDecide, Node: node, Peer: -1, Round: round, Value: value})
}

// Note records a free-form annotation attached to node. Formatting is
// deferred until the event is known to be retained: a nil recorder pays
// nothing beyond argument evaluation, and the no-args fast path stores
// the format string itself without invoking fmt.
func (r *Recorder) Note(node int, format string, args ...any) {
	if r == nil {
		return
	}
	var v any = format
	if len(args) > 0 {
		v = fmt.Sprintf(format, args...)
	}
	r.Record(Event{Kind: KindNote, Node: node, Peer: -1, Value: v})
}

// Snapshot returns a copy of everything recorded so far, merged across
// shards back into global sequence order.
func (r *Recorder) Snapshot() Trace {
	if r == nil {
		return Trace{}
	}
	total := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		total += len(s.events)
		s.mu.Unlock()
	}
	events := make([]Event, 0, total)
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		events = append(events, s.events...)
		s.mu.Unlock()
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	return Trace{Events: events, Start: r.start, End: time.Now()}
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += len(s.events)
		s.mu.Unlock()
	}
	return n
}
