// Package trace records what happened during a protocol run: message
// sends, deliveries and drops, object invocations, decisions, and crashes.
// Every simulated experiment in this repository feeds a *Recorder, and the
// property checkers and benchmark harness consume the resulting Trace.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Kind enumerates the event types a Recorder accepts.
type Kind int

// The event kinds, in rough causal order of a run.
const (
	KindSend Kind = iota + 1
	KindDeliver
	KindDrop
	KindCrash
	KindRoundStart
	KindInvoke // an object invocation (AC / VAC / conciliator / reconciliator)
	KindReturn // the matching object return
	KindDecide
	KindNote // free-form annotation
)

var kindNames = map[Kind]string{
	KindSend:       "send",
	KindDeliver:    "deliver",
	KindDrop:       "drop",
	KindCrash:      "crash",
	KindRoundStart: "round",
	KindInvoke:     "invoke",
	KindReturn:     "return",
	KindDecide:     "decide",
	KindNote:       "note",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is a single record in a Trace.
type Event struct {
	Seq    int    // assigned by the Recorder, strictly increasing
	Kind   Kind   // what happened
	Node   int    // the processor the event belongs to (-1 if none)
	Peer   int    // counterpart processor for send/deliver (-1 if none)
	Round  int    // protocol round/phase/term if applicable (0 if none)
	Object string // object name for invoke/return ("" if none)
	Value  any    // payload: message body, decided value, returned pair
	Bytes  int    // approximate wire size for send events
}

// Trace is an immutable snapshot of recorded events.
type Trace struct {
	Events []Event
	Start  time.Time
	End    time.Time
}

// Recorder accumulates events. It is safe for concurrent use. The zero
// value is ready to use; a nil *Recorder discards all events, so protocol
// code may record unconditionally.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	start  time.Time
	seq    int
}

// NewRecorder returns an empty recorder stamped with the current time.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now()}
}

// Record appends ev to the trace, assigning its sequence number.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ev.Seq = r.seq
	r.seq++
	r.events = append(r.events, ev)
}

// Send records node sending a message of size bytes to peer.
func (r *Recorder) Send(node, peer, round, bytes int, payload any) {
	r.Record(Event{Kind: KindSend, Node: node, Peer: peer, Round: round, Bytes: bytes, Value: payload})
}

// Deliver records peer's message arriving at node.
func (r *Recorder) Deliver(node, peer, round int, payload any) {
	r.Record(Event{Kind: KindDeliver, Node: node, Peer: peer, Round: round, Value: payload})
}

// Drop records the network losing a message from peer to node.
func (r *Recorder) Drop(node, peer, round int, payload any) {
	r.Record(Event{Kind: KindDrop, Node: node, Peer: peer, Round: round, Value: payload})
}

// Crash records node halting.
func (r *Recorder) Crash(node int) {
	r.Record(Event{Kind: KindCrash, Node: node, Peer: -1})
}

// RoundStart records node entering round.
func (r *Recorder) RoundStart(node, round int) {
	r.Record(Event{Kind: KindRoundStart, Node: node, Peer: -1, Round: round})
}

// Invoke records node calling object with the given argument in round.
func (r *Recorder) Invoke(node, round int, object string, arg any) {
	r.Record(Event{Kind: KindInvoke, Node: node, Peer: -1, Round: round, Object: object, Value: arg})
}

// Return records object returning result to node in round.
func (r *Recorder) Return(node, round int, object string, result any) {
	r.Record(Event{Kind: KindReturn, Node: node, Peer: -1, Round: round, Object: object, Value: result})
}

// Decide records node deciding value in round.
func (r *Recorder) Decide(node, round int, value any) {
	r.Record(Event{Kind: KindDecide, Node: node, Peer: -1, Round: round, Value: value})
}

// Note records a free-form annotation attached to node.
func (r *Recorder) Note(node int, format string, args ...any) {
	r.Record(Event{Kind: KindNote, Node: node, Peer: -1, Value: fmt.Sprintf(format, args...)})
}

// Snapshot returns a copy of everything recorded so far.
func (r *Recorder) Snapshot() Trace {
	if r == nil {
		return Trace{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	events := make([]Event, len(r.events))
	copy(events, r.events)
	return Trace{Events: events, Start: r.start, End: time.Now()}
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}
