package trace

import (
	"testing"
	"testing/quick"
)

// TestSummarizeCountsProperty: for any interleaving of recorded events,
// Summarize's counters exactly match the number of events of each kind,
// and DecideRound is the max round among decides.
func TestSummarizeCountsProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		r := NewRecorder()
		var sends, delivers, drops, crashes, decides int
		maxDecideRound := 0
		for i, op := range ops {
			round := i%7 + 1
			switch op % 5 {
			case 0:
				r.Send(0, 1, round, int(op), op)
				sends++
			case 1:
				r.Deliver(1, 0, round, op)
				delivers++
			case 2:
				r.Drop(1, 0, round, op)
				drops++
			case 3:
				r.Crash(int(op) % 4)
				crashes++
			case 4:
				r.Decide(0, round, op)
				decides++
				if round > maxDecideRound {
					maxDecideRound = round
				}
			}
		}
		s := Summarize(r.Snapshot())
		return s.MessagesSent == sends &&
			s.MessagesDelivered == delivers &&
			s.MessagesDropped == drops &&
			s.Crashes == crashes &&
			s.Decisions == decides &&
			s.DecideRound == maxDecideRound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFilterPartitionProperty: Filter with a predicate and its negation
// partitions the trace.
func TestFilterPartitionProperty(t *testing.T) {
	f := func(kinds []uint8) bool {
		r := NewRecorder()
		for _, k := range kinds {
			r.Record(Event{Kind: Kind(int(k)%9 + 1), Node: int(k) % 3})
		}
		tr := r.Snapshot()
		pred := func(ev Event) bool { return ev.Node == 0 }
		yes := Filter(tr, pred)
		no := Filter(tr, func(ev Event) bool { return !pred(ev) })
		return len(yes.Events)+len(no.Events) == len(tr.Events)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
