package trace

import "fmt"

// Stats is the aggregate accounting the benchmark harness reports for a
// run: how much communication it cost and how long it took in rounds.
type Stats struct {
	MessagesSent      int
	MessagesDelivered int
	MessagesDropped   int
	BytesSent         int
	Crashes           int
	Decisions         int
	MaxRound          int // highest round observed anywhere
	DecideRound       int // highest round at which any processor decided (0 if none)
	ObjectInvocations map[string]int
	// ReturnsByObject counts KindReturn events per object name, the
	// complement of ObjectInvocations: for a clean run the two match per
	// object, and a shortfall localizes which object a processor died
	// inside.
	ReturnsByObject map[string]int
	// EventsPerRound counts every event by its Round field (round 0
	// collects the events with no round attribution: network traffic the
	// simulator records without protocol context, crashes, notes).
	EventsPerRound map[int]int
}

// Summarize folds a trace into aggregate statistics in one pass.
func Summarize(tr Trace) Stats {
	s := Stats{
		ObjectInvocations: make(map[string]int),
		ReturnsByObject:   make(map[string]int),
		EventsPerRound:    make(map[int]int),
	}
	for _, ev := range tr.Events {
		if ev.Round > s.MaxRound {
			s.MaxRound = ev.Round
		}
		s.EventsPerRound[ev.Round]++
		switch ev.Kind {
		case KindSend:
			s.MessagesSent++
			s.BytesSent += ev.Bytes
		case KindDeliver:
			s.MessagesDelivered++
		case KindDrop:
			s.MessagesDropped++
		case KindCrash:
			s.Crashes++
		case KindDecide:
			s.Decisions++
			if ev.Round > s.DecideRound {
				s.DecideRound = ev.Round
			}
		case KindInvoke:
			s.ObjectInvocations[ev.Object]++
		case KindReturn:
			s.ReturnsByObject[ev.Object]++
		}
	}
	return s
}

// String renders the stats on one line, suitable for bench logs.
func (s Stats) String() string {
	return fmt.Sprintf("msgs=%d delivered=%d dropped=%d bytes=%d crashes=%d decisions=%d decideRound=%d",
		s.MessagesSent, s.MessagesDelivered, s.MessagesDropped, s.BytesSent, s.Crashes, s.Decisions, s.DecideRound)
}

// Decisions extracts every decide event from a trace in sequence order.
func Decisions(tr Trace) []Event {
	var out []Event
	for _, ev := range tr.Events {
		if ev.Kind == KindDecide {
			out = append(out, ev)
		}
	}
	return out
}

// ByNode groups a trace's events per processor id.
func ByNode(tr Trace) map[int][]Event {
	out := make(map[int][]Event)
	for _, ev := range tr.Events {
		out[ev.Node] = append(out[ev.Node], ev)
	}
	return out
}

// Returns extracts the object-return events for the named object, in
// sequence order. Object-level property checkers consume this.
func Returns(tr Trace, object string) []Event {
	var out []Event
	for _, ev := range tr.Events {
		if ev.Kind == KindReturn && ev.Object == object {
			out = append(out, ev)
		}
	}
	return out
}
