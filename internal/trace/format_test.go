package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTrace() Trace {
	r := NewRecorder()
	r.Send(0, 1, 2, 16, "payload")
	r.Deliver(1, 0, 2, "payload")
	r.Drop(2, 0, 2, "payload")
	r.Invoke(1, 2, "vac", 1)
	r.Decide(1, 3, 1)
	r.Note(0, "hello %s", "world")
	return r.Snapshot()
}

func TestDump(t *testing.T) {
	var buf bytes.Buffer
	if err := Dump(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("dump has %d lines:\n%s", len(lines), out)
	}
	for _, want := range []string{
		"send", "p0 -> p1", "(16B)",
		"deliver", "p1 <- p0",
		"drop", "p2 <- p0",
		"invoke", "object=vac",
		"decide", "round=3",
		"hello world",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestFormatEventVariants(t *testing.T) {
	ev := Event{Seq: 7, Kind: KindRoundStart, Node: 2, Round: 5}
	s := FormatEvent(ev)
	if !strings.Contains(s, "round") || !strings.Contains(s, "p2") {
		t.Fatalf("FormatEvent = %q", s)
	}
}

func TestFilter(t *testing.T) {
	tr := sampleTrace()
	sends := Filter(tr, OfKind(KindSend))
	if len(sends.Events) != 1 || sends.Events[0].Kind != KindSend {
		t.Fatalf("Filter(OfKind) = %+v", sends.Events)
	}
	node1 := Filter(tr, OfNode(1))
	if len(node1.Events) != 3 {
		t.Fatalf("Filter(OfNode(1)) has %d events", len(node1.Events))
	}
	both := Filter(tr, func(ev Event) bool { return OfNode(1)(ev) && OfKind(KindDecide)(ev) })
	if len(both.Events) != 1 {
		t.Fatalf("composed filter has %d events", len(both.Events))
	}
}
