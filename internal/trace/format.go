package trace

import (
	"fmt"
	"io"
	"strings"
)

// Dump writes a human-readable rendering of the trace, one event per
// line, in sequence order. It is the debugging view behind `oocsim -v`
// style investigation and test failure logs.
func Dump(w io.Writer, tr Trace) error {
	for _, ev := range tr.Events {
		if _, err := fmt.Fprintln(w, FormatEvent(ev)); err != nil {
			return fmt.Errorf("trace: dump: %w", err)
		}
	}
	return nil
}

// FormatEvent renders one event on one line.
func FormatEvent(ev Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6d  %-8s", ev.Seq, ev.Kind)
	switch ev.Kind {
	case KindSend:
		fmt.Fprintf(&b, " p%d -> p%d", ev.Node, ev.Peer)
	case KindDeliver, KindDrop:
		fmt.Fprintf(&b, " p%d <- p%d", ev.Node, ev.Peer)
	default:
		fmt.Fprintf(&b, " p%d", ev.Node)
	}
	if ev.Round != 0 {
		fmt.Fprintf(&b, " round=%d", ev.Round)
	}
	if ev.Object != "" {
		fmt.Fprintf(&b, " object=%s", ev.Object)
	}
	if ev.Value != nil {
		fmt.Fprintf(&b, " %v", ev.Value)
	}
	if ev.Bytes > 0 {
		fmt.Fprintf(&b, " (%dB)", ev.Bytes)
	}
	return b.String()
}

// Filter returns the events matching keep, preserving order.
func Filter(tr Trace, keep func(Event) bool) Trace {
	out := Trace{Start: tr.Start, End: tr.End}
	for _, ev := range tr.Events {
		if keep(ev) {
			out.Events = append(out.Events, ev)
		}
	}
	return out
}

// OfKind is a Filter predicate selecting one event kind.
func OfKind(k Kind) func(Event) bool {
	return func(ev Event) bool { return ev.Kind == k }
}

// OfNode is a Filter predicate selecting one processor's events.
func OfNode(node int) func(Event) bool {
	return func(ev Event) bool { return ev.Node == node }
}
