package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// fileHeader is the first line of a trace file.
type fileHeader struct {
	Version int       `json:"version"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Events  int       `json:"events"`
}

// jsonEvent is the on-disk event form. Payloads are rendered through
// fmt.Sprint: a trace file is an inspection artifact, not a replay log,
// and arbitrary payload types (protocol structs, [2]any confidence
// pairs) have no faithful JSON round-trip. A decoded trace therefore
// carries string Values.
type jsonEvent struct {
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"`
	Node   int    `json:"node"`
	Peer   int    `json:"peer,omitempty"`
	Round  int    `json:"round,omitempty"`
	Object string `json:"object,omitempty"`
	Value  string `json:"value,omitempty"`
	Bytes  int    `json:"bytes,omitempty"`
	TimeNS int64  `json:"time_ns,omitempty"`
}

// WriteJSON writes tr as a line-delimited JSON trace file: one header
// line, then one event per line in sequence order. The format streams —
// a multi-million-event trace neither buffers fully on write nor on
// read.
func WriteJSON(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(fileHeader{Version: 1, Start: tr.Start, End: tr.End, Events: len(tr.Events)}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, ev := range tr.Events {
		je := jsonEvent{
			Seq:    ev.Seq,
			Kind:   ev.Kind.String(),
			Node:   ev.Node,
			Peer:   ev.Peer,
			Round:  ev.Round,
			Object: ev.Object,
			Bytes:  ev.Bytes,
			TimeNS: int64(ev.Time),
		}
		if ev.Value != nil {
			je.Value = fmt.Sprint(ev.Value)
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("trace: write event %d: %w", ev.Seq, err)
		}
	}
	return bw.Flush()
}

// ReadJSON decodes a trace file written by WriteJSON. Event Values come
// back as strings (see jsonEvent); everything else round-trips exactly.
func ReadJSON(r io.Reader) (Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr fileHeader
	if err := dec.Decode(&hdr); err != nil {
		return Trace{}, fmt.Errorf("trace: read header: %w", err)
	}
	if hdr.Version != 1 {
		return Trace{}, fmt.Errorf("trace: unsupported trace file version %d", hdr.Version)
	}
	tr := Trace{Start: hdr.Start, End: hdr.End, Events: make([]Event, 0, hdr.Events)}
	for {
		var je jsonEvent
		if err := dec.Decode(&je); err == io.EOF {
			break
		} else if err != nil {
			return Trace{}, fmt.Errorf("trace: read event %d: %w", len(tr.Events), err)
		}
		kind, ok := ParseKind(je.Kind)
		if !ok {
			return Trace{}, fmt.Errorf("trace: event %d: unknown kind %q", je.Seq, je.Kind)
		}
		ev := Event{
			Seq:    je.Seq,
			Kind:   kind,
			Node:   je.Node,
			Peer:   je.Peer,
			Round:  je.Round,
			Object: je.Object,
			Bytes:  je.Bytes,
			Time:   time.Duration(je.TimeNS),
		}
		if je.Value != "" {
			ev.Value = je.Value
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr, nil
}
