package trace

import (
	"strings"
	"testing"
	"time"
)

func sampleJSONTrace() Trace {
	rec := NewRecorder()
	rec.Send(0, 1, 1, 24, "hello")
	rec.Deliver(1, 0, 1, "hello")
	rec.Invoke(1, 1, "vac", 0)
	rec.Return(1, 1, "vac", [2]any{"commit", 0})
	rec.Decide(1, 1, 0)
	rec.Drop(2, 0, 2, "lost")
	rec.Crash(2)
	rec.Note(0, "free form %d", 7)
	return rec.Snapshot()
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleJSONTrace()
	var b strings.Builder
	if err := WriteJSON(&b, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("event count: got %d, want %d", len(got.Events), len(tr.Events))
	}
	for i, want := range tr.Events {
		g := got.Events[i]
		if g.Seq != want.Seq || g.Kind != want.Kind || g.Node != want.Node ||
			g.Peer != want.Peer || g.Round != want.Round || g.Object != want.Object ||
			g.Bytes != want.Bytes {
			t.Fatalf("event %d: got %+v, want %+v", i, g, want)
		}
	}
	// Values come back stringified.
	if got.Events[3].Value != "[commit 0]" {
		t.Fatalf("return payload: got %q, want \"[commit 0]\"", got.Events[3].Value)
	}
	// The summaries of the original and decoded traces agree on
	// everything that doesn't depend on payload types.
	a, b2 := Summarize(tr), Summarize(got)
	if a.MessagesSent != b2.MessagesSent || a.MessagesDropped != b2.MessagesDropped ||
		a.Crashes != b2.Crashes || a.Decisions != b2.Decisions ||
		a.BytesSent != b2.BytesSent {
		t.Fatalf("summaries diverge: %+v vs %+v", a, b2)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage input must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("unknown version must fail")
	}
	bad := "{\"version\":1}\n{\"seq\":0,\"kind\":\"frobnicate\"}\n"
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

func TestParseKindInvertsString(t *testing.T) {
	for k := KindSend; k <= KindNote; k++ {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseKind("nope"); ok {
		t.Fatal("ParseKind must reject unknown names")
	}
}

func TestTimedRecorderStampsEvents(t *testing.T) {
	rec := NewTimedRecorder()
	rec.Send(0, 1, 1, 8, nil)
	time.Sleep(time.Millisecond)
	rec.Decide(0, 1, "v")
	tr := rec.Snapshot()
	if tr.Events[0].Time < 0 {
		t.Fatalf("negative offset: %v", tr.Events[0].Time)
	}
	if tr.Events[1].Time <= tr.Events[0].Time {
		t.Fatalf("timestamps not increasing: %v then %v", tr.Events[0].Time, tr.Events[1].Time)
	}
	// Plain recorders must not pay for stamping.
	plain := NewRecorder()
	plain.Send(0, 1, 1, 8, nil)
	if got := plain.Snapshot().Events[0].Time; got != 0 {
		t.Fatalf("untimed recorder stamped an event: %v", got)
	}
}

func TestSummarizeReturnsAndRounds(t *testing.T) {
	rec := NewRecorder()
	rec.RoundStart(0, 1)
	rec.Invoke(0, 1, "vac", 1)
	rec.Return(0, 1, "vac", [2]any{"adopt", 1})
	rec.Invoke(0, 1, "reconciliator", 1)
	rec.Return(0, 1, "reconciliator", 0)
	rec.Invoke(0, 2, "vac", 0)
	rec.Return(0, 2, "vac", [2]any{"commit", 0})
	rec.Decide(0, 2, 0)
	rec.Crash(1) // round 0 bucket
	s := Summarize(rec.Snapshot())

	if got := s.ReturnsByObject["vac"]; got != 2 {
		t.Fatalf("vac returns = %d, want 2", got)
	}
	if got := s.ReturnsByObject["reconciliator"]; got != 1 {
		t.Fatalf("reconciliator returns = %d, want 1", got)
	}
	// Returns mirror invocations on a clean run.
	for obj, n := range s.ObjectInvocations {
		if s.ReturnsByObject[obj] != n {
			t.Fatalf("object %s: %d invokes but %d returns", obj, n, s.ReturnsByObject[obj])
		}
	}
	if got := s.EventsPerRound[1]; got != 5 {
		t.Fatalf("round 1 events = %d, want 5", got)
	}
	if got := s.EventsPerRound[2]; got != 3 {
		t.Fatalf("round 2 events = %d, want 3", got)
	}
	if got := s.EventsPerRound[0]; got != 1 {
		t.Fatalf("round 0 (unattributed) events = %d, want 1", got)
	}
	total := 0
	for _, n := range s.EventsPerRound {
		total += n
	}
	if total != 9 {
		t.Fatalf("EventsPerRound total = %d, want every event counted (9)", total)
	}
}
