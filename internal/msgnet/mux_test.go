package msgnet_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ooc/internal/benor"
	"ooc/internal/core"
	"ooc/internal/metrics"
	"ooc/internal/msgnet"
	"ooc/internal/netsim"
	"ooc/internal/sim"
	"ooc/internal/trace"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestMuxRoutesByChannel(t *testing.T) {
	nw := netsim.New(2, netsim.WithFIFO())
	ctx := ctxT(t)
	m0 := msgnet.NewMux(ctx, nw.Node(0))
	m1 := msgnet.NewMux(ctx, nw.Node(1))

	a0, b0 := m0.Channel("a"), m0.Channel("b")
	a1, b1 := m1.Channel("a"), m1.Channel("b")

	if err := a0.Send(1, "on-a"); err != nil {
		t.Fatal(err)
	}
	if err := b0.Send(1, "on-b"); err != nil {
		t.Fatal(err)
	}
	// Channel b receives only its own traffic, regardless of send order.
	mb, err := b1.Recv(ctx)
	if err != nil || mb.Payload != "on-b" {
		t.Fatalf("b recv: %v %v", mb, err)
	}
	ma, err := a1.Recv(ctx)
	if err != nil || ma.Payload != "on-a" {
		t.Fatalf("a recv: %v %v", ma, err)
	}
	if ma.From != 0 || ma.To != 1 {
		t.Fatalf("envelope mangled: %+v", ma)
	}
	_ = a1
	_ = b0
}

func TestMuxChannelIdentity(t *testing.T) {
	nw := netsim.New(1)
	m := msgnet.NewMux(ctxT(t), nw.Node(0))
	if m.Channel("x") != m.Channel("x") {
		t.Fatal("same name returned distinct endpoints")
	}
	if m.Channel("x") == m.Channel("y") {
		t.Fatal("distinct names returned the same endpoint")
	}
	if m.Channel("x").ID() != 0 || m.Channel("x").N() != 1 {
		t.Fatal("sub-endpoint identity wrong")
	}
}

func TestMuxBroadcast(t *testing.T) {
	const n = 3
	nw := netsim.New(n)
	ctx := ctxT(t)
	muxes := make([]*msgnet.Mux, n)
	for i := 0; i < n; i++ {
		muxes[i] = msgnet.NewMux(ctx, nw.Node(i))
	}
	if err := muxes[0].Channel("c").Broadcast("hello"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		m, err := muxes[i].Channel("c").Recv(ctx)
		if err != nil || m.Payload != "hello" {
			t.Fatalf("node %d: %v %v", i, m, err)
		}
	}
}

func TestMuxUnknownChannelDropped(t *testing.T) {
	nw := netsim.New(2)
	ctx := ctxT(t)
	m0 := msgnet.NewMux(ctx, nw.Node(0))
	m1 := msgnet.NewMux(ctx, nw.Node(1))
	if err := m0.Channel("ghost").Send(1, "x"); err != nil {
		t.Fatal(err)
	}
	// Channel "real" on the receiver must not see ghost traffic.
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := m1.Channel("real").Recv(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestMuxParentDeathFailsSubs(t *testing.T) {
	nw := netsim.New(2)
	ctx := ctxT(t)
	m := msgnet.NewMux(ctx, nw.Node(0))
	sub := m.Channel("c")
	nw.Crash(0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		_, err := sub.Recv(short)
		cancel()
		if errors.Is(err, msgnet.ErrCrashed) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sub endpoint did not observe parent death: %v", err)
		}
	}
}

func TestTwoConsensusInstancesOverOneNetwork(t *testing.T) {
	// The headline use: two independent Ben-Or instances sharing one
	// physical network via per-instance channels.
	const n, tFaults = 3, 1
	nw := netsim.New(n, netsim.WithSeed(5))
	ctx := ctxT(t)
	rng := sim.NewRNG(5)
	muxes := make([]*msgnet.Mux, n)
	for i := 0; i < n; i++ {
		muxes[i] = msgnet.NewMux(ctx, nw.Node(i))
	}
	inputsA := []int{0, 1, 1}
	inputsB := []int{1, 0, 0}
	decA := make([]core.Decision[int], n)
	decB := make([]core.Decision[int], n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d, err := benor.RunDecomposed(ctx, muxes[id].Channel("instA"), rng.Fork(uint64(id)), tFaults, inputsA[id],
				core.WithMaxRounds(2000))
			if err != nil {
				t.Errorf("A p%d: %v", id, err)
				return
			}
			decA[id] = d
		}(id)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d, err := benor.RunDecomposed(ctx, muxes[id].Channel("instB"), rng.Fork(uint64(id)+100), tFaults, inputsB[id],
				core.WithMaxRounds(2000))
			if err != nil {
				t.Errorf("B p%d: %v", id, err)
				return
			}
			decB[id] = d
		}(id)
	}
	wg.Wait()
	for id := 1; id < n; id++ {
		if decA[id].Value != decA[0].Value {
			t.Fatalf("instance A disagreement: %v", decA)
		}
		if decB[id].Value != decB[0].Value {
			t.Fatalf("instance B disagreement: %v", decB)
		}
	}
}

func TestMuxWireTypes(t *testing.T) {
	if got := len(msgnet.WireTypes()); got != 2 {
		t.Fatalf("WireTypes() has %d entries, want 2 (Tagged, Traced)", got)
	}
}

// TestMuxBacklogBounded models multi-shard boot skew gone permanent: a
// channel that is never created on the receiver must buffer at most the
// backlog cap, counting the overflow as drops, and hand exactly the
// buffered prefix over when the channel finally appears.
func TestMuxBacklogBounded(t *testing.T) {
	nw := netsim.New(2, netsim.WithFIFO())
	ctx := ctxT(t)
	reg := metrics.NewRegistry()
	m0 := msgnet.NewMux(ctx, nw.Node(0))
	m1 := msgnet.NewMux(ctx, nw.Node(1), msgnet.WithBacklogLimit(3), msgnet.WithMuxMetrics(reg))

	const sent = 10
	for i := 0; i < sent; i++ {
		if err := m0.Channel("late").Send(1, i); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the receiver's dispatcher has routed everything: 3
	// buffered + 7 dropped.
	dropped := reg.Counter("mux_backlog_dropped_total")
	deadline := time.Now().Add(5 * time.Second)
	for dropped.Value() < sent-3 {
		if time.Now().After(deadline) {
			t.Fatalf("dropped = %d, want %d", dropped.Value(), sent-3)
		}
		time.Sleep(time.Millisecond)
	}
	sub := m1.Channel("late")
	for i := 0; i < 3; i++ {
		msg, err := sub.Recv(ctx)
		if err != nil || msg.Payload != i {
			t.Fatalf("recv %d: %v %v", i, msg, err)
		}
	}
	if got := dropped.Value(); got != sent-3 {
		t.Fatalf("dropped = %d, want %d", got, sent-3)
	}
	// Once the channel exists, delivery is no longer backlog-bounded.
	for i := 0; i < sent; i++ {
		if err := m0.Channel("late").Send(1, 100+i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sent; i++ {
		msg, err := sub.Recv(ctx)
		if err != nil || msg.Payload != 100+i {
			t.Fatalf("post-create recv %d: %v %v", i, msg, err)
		}
	}
	if got := dropped.Value(); got != sent-3 {
		t.Fatalf("post-create drops moved: %d", got)
	}
}

func TestMuxChannelOf(t *testing.T) {
	nw := netsim.New(2, netsim.WithFIFO())
	ctx := ctxT(t)
	rec := trace.NewRecorder()
	nwT := netsim.New(2, netsim.WithFIFO(), netsim.WithRecorder(rec))
	m := msgnet.NewMux(ctx, nwT.Node(0))
	if err := m.Channel("shard/3").Send(1, "x"); err != nil {
		t.Fatal(err)
	}
	tr := rec.Snapshot()
	found := false
	for _, ev := range tr.Events {
		if ch, ok := msgnet.ChannelOf(ev.Value); ok {
			if ch != "shard/3" {
				t.Fatalf("channel = %q", ch)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no recorded event carried the mux channel tag")
	}
	if _, ok := msgnet.ChannelOf("bare"); ok {
		t.Fatal("untagged payload reported a channel")
	}
	_ = nw
}
