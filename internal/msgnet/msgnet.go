// Package msgnet defines the minimal message-passing surface every
// protocol in this repository is written against. Two implementations
// exist: the in-memory simulated network (internal/netsim) and the real
// TCP transport (internal/transport). Protocol code never knows which one
// it is running on.
package msgnet

import (
	"context"
	"errors"
)

// Message is one point-to-point message. Payload is protocol-defined; on
// the wire transport it must be a registered, gob-encodable type.
type Message struct {
	From    int
	To      int
	Payload any
}

// Endpoint is one processor's handle on the network.
//
// Recv blocks until a message is available, the context is cancelled, or
// the endpoint is crashed/closed. Send and Broadcast never block on the
// receiver; delivery order between distinct messages is NOT guaranteed —
// the simulated network deliberately reorders to model asynchrony.
type Endpoint interface {
	// ID is this processor's index in [0, N).
	ID() int
	// N is the total number of processors on the network.
	N() int
	// Send enqueues payload for processor to (sending to self is legal).
	Send(to int, payload any) error
	// Broadcast sends payload to every processor, including the sender.
	// The paper's pseudocode "send to all" includes the sender itself.
	Broadcast(payload any) error
	// Recv returns the next delivered message.
	Recv(ctx context.Context) (Message, error)
}

// Traced wraps a payload with the per-request trace ID that produced it
// (internal/rtrace). The wrapper exists so the ID can cross process
// boundaries: the binary codec hoists it into the frame header (frame
// version 2, DESIGN §3.6) instead of encoding the wrapper itself, and
// the gob compatibility path strips it. In-process consumers (the raft
// node loop, the mux) unwrap it with TraceOf. ID 0 never wraps.
type Traced struct {
	ID      uint64
	Payload any
}

// WithTraceID wraps payload for the wire when id is non-zero; the
// unsampled path returns payload untouched, allocating nothing.
func WithTraceID(id uint64, payload any) any {
	if id == 0 {
		return payload
	}
	return Traced{ID: id, Payload: payload}
}

// TraceOf unwraps one Traced layer, returning the trace ID (0 if none)
// and the inner payload.
func TraceOf(payload any) (uint64, any) {
	if t, ok := payload.(Traced); ok {
		return t.ID, t.Payload
	}
	return 0, payload
}

// StripTrace removes trace wrappers wherever they ride — top level or
// nested inside Tagged — for paths that cannot carry them (the gob
// compatibility codec, version-pinned peers).
func StripTrace(payload any) any {
	switch m := payload.(type) {
	case Traced:
		return m.Payload
	case Tagged:
		if t, ok := m.Payload.(Traced); ok {
			return Tagged{Channel: m.Channel, Payload: t.Payload}
		}
	}
	return payload
}

// Sentinel errors shared by all Endpoint implementations.
var (
	// ErrCrashed is returned once the local processor has been crashed by
	// fault injection; all subsequent operations fail with it.
	ErrCrashed = errors.New("msgnet: endpoint crashed")
	// ErrClosed is returned after the network has been shut down.
	ErrClosed = errors.New("msgnet: network closed")
)
