// Package msgnet defines the minimal message-passing surface every
// protocol in this repository is written against. Two implementations
// exist: the in-memory simulated network (internal/netsim) and the real
// TCP transport (internal/transport). Protocol code never knows which one
// it is running on.
package msgnet

import (
	"context"
	"errors"
)

// Message is one point-to-point message. Payload is protocol-defined; on
// the wire transport it must be a registered, gob-encodable type.
type Message struct {
	From    int
	To      int
	Payload any
}

// Endpoint is one processor's handle on the network.
//
// Recv blocks until a message is available, the context is cancelled, or
// the endpoint is crashed/closed. Send and Broadcast never block on the
// receiver; delivery order between distinct messages is NOT guaranteed —
// the simulated network deliberately reorders to model asynchrony.
type Endpoint interface {
	// ID is this processor's index in [0, N).
	ID() int
	// N is the total number of processors on the network.
	N() int
	// Send enqueues payload for processor to (sending to self is legal).
	Send(to int, payload any) error
	// Broadcast sends payload to every processor, including the sender.
	// The paper's pseudocode "send to all" includes the sender itself.
	Broadcast(payload any) error
	// Recv returns the next delivered message.
	Recv(ctx context.Context) (Message, error)
}

// Sentinel errors shared by all Endpoint implementations.
var (
	// ErrCrashed is returned once the local processor has been crashed by
	// fault injection; all subsequent operations fail with it.
	ErrCrashed = errors.New("msgnet: endpoint crashed")
	// ErrClosed is returned after the network has been shut down.
	ErrClosed = errors.New("msgnet: network closed")
)
