package msgnet

import (
	"context"
	"fmt"
	"sync"

	"ooc/internal/metrics"
)

// Mux multiplexes several independent protocol instances over one
// Endpoint: each instance gets its own channel-tagged sub-endpoint, and a
// dispatcher goroutine routes inbound messages by tag. This is how, for
// example, several consensus instances share one TCP transport, or a
// composite object runs two message-passing sub-objects over one
// simulated node.
//
// Channels are matched by name across processors. Traffic arriving for a
// channel that has not been created yet is buffered and handed over on
// creation, so instances may start at different times on different
// processors. The buffer is bounded per channel (WithBacklogLimit):
// past the cap, the newest message for that channel is dropped and
// counted, so a channel nobody ever creates — a misrouted tag, or a
// shard group that failed to boot — cannot grow an unbounded queue.
type Mux struct {
	parent       Endpoint
	backlogLimit int
	dropped      *metrics.Counter
	onDrop       func(channel string, from int)

	mu      sync.Mutex
	subs    map[string]*subEndpoint
	backlog map[string][]Message
	closed  bool
	err     error
	once    sync.Once
}

// MuxOption configures a Mux.
type MuxOption func(*Mux)

// DefaultBacklogLimit is the per-channel cap on messages buffered for a
// channel that has not been created yet. Boot skew between processors
// spans at most a few protocol rounds of traffic; 4096 covers that with
// a wide margin while bounding a never-created channel's memory.
const DefaultBacklogLimit = 4096

// WithBacklogLimit overrides the per-channel backlog cap. Zero or
// negative restores the default; there is deliberately no unbounded
// setting.
func WithBacklogLimit(n int) MuxOption {
	return func(m *Mux) {
		if n > 0 {
			m.backlogLimit = n
		}
	}
}

// WithMuxMetrics counts backlog drops in reg as
// mux_backlog_dropped_total, attributed to the parent endpoint's id. A
// nil registry keeps the no-op counter.
func WithMuxMetrics(reg *metrics.Registry) MuxOption {
	return func(m *Mux) {
		if reg != nil {
			m.dropped = reg.Counter("mux_backlog_dropped_total")
		}
	}
}

// WithMuxDropHook installs a callback fired (off the mux lock, on the
// dispatcher goroutine) each time the backlog cap drops a message, with
// the channel it was tagged for and the sender. The counter says drops
// happened; the hook says which channel and who — it is how the flight
// recorder makes drops attributable post-hoc (ISSUE 8).
func WithMuxDropHook(fn func(channel string, from int)) MuxOption {
	return func(m *Mux) { m.onDrop = fn }
}

// Tagged is the wire wrapper. For the TCP transport, register it with
// transport.Register(msgnet.WireTypes()...); the binary codec
// (internal/codec) encodes it natively, recursing on the payload.
type Tagged struct {
	Channel string
	Payload any
}

// WireTypes lists the mux's wire wrappers for gob registration.
func WireTypes() []any { return []any{Tagged{}, Traced{}} }

// ChannelOf reports the mux channel name a payload is tagged with. Trace
// recorders sitting under the mux (netsim, transport) capture the wire
// wrapper verbatim, so inspectors use this to group recorded traffic by
// channel without knowing the wrapper type.
func ChannelOf(payload any) (string, bool) {
	t, ok := payload.(Tagged)
	if !ok {
		return "", false
	}
	return t.Channel, true
}

// NewMux wraps parent and starts the dispatcher, which runs until ctx is
// cancelled or the parent endpoint dies — give the Mux the same lifetime
// as the node it serves. Once the dispatcher stops, every sub-endpoint's
// Recv fails with the terminating error.
func NewMux(ctx context.Context, parent Endpoint, opts ...MuxOption) *Mux {
	m := &Mux{
		parent:       parent,
		backlogLimit: DefaultBacklogLimit,
		subs:         make(map[string]*subEndpoint),
		backlog:      make(map[string][]Message),
	}
	for _, opt := range opts {
		opt(m)
	}
	go m.dispatch(ctx)
	return m
}

// Channel returns the sub-endpoint for the named channel, creating it on
// first use. Calling Channel twice with one name returns the same
// endpoint.
func (m *Mux) Channel(name string) Endpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.subs[name]; ok {
		return s
	}
	s := &subEndpoint{
		mux:     m,
		channel: name,
		notify:  make(chan struct{}, 1),
	}
	s.pending = append(s.pending, m.backlog[name]...)
	delete(m.backlog, name)
	m.subs[name] = s
	return s
}

func (m *Mux) dispatch(ctx context.Context) {
	for {
		msg, err := m.parent.Recv(ctx)
		if err != nil {
			m.fail(err)
			return
		}
		tag, ok := msg.Payload.(Tagged)
		if !ok {
			continue // foreign traffic on the parent endpoint
		}
		routed := Message{From: msg.From, To: msg.To, Payload: tag.Payload}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			continue
		}
		s, ok := m.subs[tag.Channel]
		dropped := false
		if ok {
			s.pending = append(s.pending, routed)
		} else if len(m.backlog[tag.Channel]) < m.backlogLimit {
			m.backlog[tag.Channel] = append(m.backlog[tag.Channel], routed)
		} else {
			// Over the cap: drop the newest. The protocols above the mux
			// already tolerate message loss (Raft retransmits, the OOC
			// protocols re-broadcast per round), so dropping beats letting
			// a dead channel's queue grow without bound.
			m.dropped.Inc(m.parent.ID())
			dropped = true
		}
		m.mu.Unlock()
		if ok {
			s.wake()
		}
		if dropped && m.onDrop != nil {
			m.onDrop(tag.Channel, msg.From)
		}
	}
}

// fail marks every sub-endpoint dead with err.
func (m *Mux) fail(err error) {
	m.once.Do(func() {
		m.mu.Lock()
		m.closed = true
		m.err = err
		subs := make([]*subEndpoint, 0, len(m.subs))
		for _, s := range m.subs {
			subs = append(subs, s)
		}
		m.mu.Unlock()
		for _, s := range subs {
			s.wake()
		}
	})
}

type subEndpoint struct {
	mux     *Mux
	channel string

	pending []Message
	notify  chan struct{}
}

var _ Endpoint = (*subEndpoint)(nil)

func (s *subEndpoint) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// ID implements Endpoint.
func (s *subEndpoint) ID() int { return s.mux.parent.ID() }

// N implements Endpoint.
func (s *subEndpoint) N() int { return s.mux.parent.N() }

// Send implements Endpoint.
func (s *subEndpoint) Send(to int, payload any) error {
	if err := s.mux.parent.Send(to, Tagged{Channel: s.channel, Payload: payload}); err != nil {
		return fmt.Errorf("mux channel %q: %w", s.channel, err)
	}
	return nil
}

// Broadcast implements Endpoint.
func (s *subEndpoint) Broadcast(payload any) error {
	if err := s.mux.parent.Broadcast(Tagged{Channel: s.channel, Payload: payload}); err != nil {
		return fmt.Errorf("mux channel %q: %w", s.channel, err)
	}
	return nil
}

// Recv implements Endpoint.
func (s *subEndpoint) Recv(ctx context.Context) (Message, error) {
	for {
		s.mux.mu.Lock()
		if len(s.pending) > 0 {
			msg := s.pending[0]
			s.pending = s.pending[1:]
			s.mux.mu.Unlock()
			return msg, nil
		}
		closed, err := s.mux.closed, s.mux.err
		s.mux.mu.Unlock()
		if closed {
			if err == nil {
				err = ErrClosed
			}
			return Message{}, fmt.Errorf("mux channel %q: %w", s.channel, err)
		}
		select {
		case <-ctx.Done():
			return Message{}, ctx.Err()
		case <-s.notify:
		}
	}
}
