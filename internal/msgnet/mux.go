package msgnet

import (
	"context"
	"fmt"
	"sync"
)

// Mux multiplexes several independent protocol instances over one
// Endpoint: each instance gets its own channel-tagged sub-endpoint, and a
// dispatcher goroutine routes inbound messages by tag. This is how, for
// example, several consensus instances share one TCP transport, or a
// composite object runs two message-passing sub-objects over one
// simulated node.
//
// Channels are matched by name across processors. Traffic arriving for a
// channel that has not been created yet is buffered and handed over on
// creation, so instances may start at different times on different
// processors.
type Mux struct {
	parent Endpoint

	mu      sync.Mutex
	subs    map[string]*subEndpoint
	backlog map[string][]Message
	closed  bool
	err     error
	once    sync.Once
}

// tagged is the wire wrapper. For the TCP transport, register it with
// transport.Register(msgnet.WireTypes()...).
type tagged struct {
	Channel string
	Payload any
}

// WireTypes lists the mux's wire wrapper for gob registration.
func WireTypes() []any { return []any{tagged{}} }

// NewMux wraps parent and starts the dispatcher, which runs until ctx is
// cancelled or the parent endpoint dies — give the Mux the same lifetime
// as the node it serves. Once the dispatcher stops, every sub-endpoint's
// Recv fails with the terminating error.
func NewMux(ctx context.Context, parent Endpoint) *Mux {
	m := &Mux{
		parent:  parent,
		subs:    make(map[string]*subEndpoint),
		backlog: make(map[string][]Message),
	}
	go m.dispatch(ctx)
	return m
}

// Channel returns the sub-endpoint for the named channel, creating it on
// first use. Calling Channel twice with one name returns the same
// endpoint.
func (m *Mux) Channel(name string) Endpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.subs[name]; ok {
		return s
	}
	s := &subEndpoint{
		mux:     m,
		channel: name,
		notify:  make(chan struct{}, 1),
	}
	s.pending = append(s.pending, m.backlog[name]...)
	delete(m.backlog, name)
	m.subs[name] = s
	return s
}

func (m *Mux) dispatch(ctx context.Context) {
	for {
		msg, err := m.parent.Recv(ctx)
		if err != nil {
			m.fail(err)
			return
		}
		tag, ok := msg.Payload.(tagged)
		if !ok {
			continue // foreign traffic on the parent endpoint
		}
		routed := Message{From: msg.From, To: msg.To, Payload: tag.Payload}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			continue
		}
		s, ok := m.subs[tag.Channel]
		if ok {
			s.pending = append(s.pending, routed)
		} else {
			m.backlog[tag.Channel] = append(m.backlog[tag.Channel], routed)
		}
		m.mu.Unlock()
		if ok {
			s.wake()
		}
	}
}

// fail marks every sub-endpoint dead with err.
func (m *Mux) fail(err error) {
	m.once.Do(func() {
		m.mu.Lock()
		m.closed = true
		m.err = err
		subs := make([]*subEndpoint, 0, len(m.subs))
		for _, s := range m.subs {
			subs = append(subs, s)
		}
		m.mu.Unlock()
		for _, s := range subs {
			s.wake()
		}
	})
}

type subEndpoint struct {
	mux     *Mux
	channel string

	pending []Message
	notify  chan struct{}
}

var _ Endpoint = (*subEndpoint)(nil)

func (s *subEndpoint) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// ID implements Endpoint.
func (s *subEndpoint) ID() int { return s.mux.parent.ID() }

// N implements Endpoint.
func (s *subEndpoint) N() int { return s.mux.parent.N() }

// Send implements Endpoint.
func (s *subEndpoint) Send(to int, payload any) error {
	if err := s.mux.parent.Send(to, tagged{Channel: s.channel, Payload: payload}); err != nil {
		return fmt.Errorf("mux channel %q: %w", s.channel, err)
	}
	return nil
}

// Broadcast implements Endpoint.
func (s *subEndpoint) Broadcast(payload any) error {
	if err := s.mux.parent.Broadcast(tagged{Channel: s.channel, Payload: payload}); err != nil {
		return fmt.Errorf("mux channel %q: %w", s.channel, err)
	}
	return nil
}

// Recv implements Endpoint.
func (s *subEndpoint) Recv(ctx context.Context) (Message, error) {
	for {
		s.mux.mu.Lock()
		if len(s.pending) > 0 {
			msg := s.pending[0]
			s.pending = s.pending[1:]
			s.mux.mu.Unlock()
			return msg, nil
		}
		closed, err := s.mux.closed, s.mux.err
		s.mux.mu.Unlock()
		if closed {
			if err == nil {
				err = ErrClosed
			}
			return Message{}, fmt.Errorf("mux channel %q: %w", s.channel, err)
		}
		select {
		case <-ctx.Done():
			return Message{}, ctx.Err()
		case <-s.notify:
		}
	}
}
