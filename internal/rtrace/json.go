package rtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SpanDump is the on-disk form of a tracer's completed spans — what
// raftkv -trace-out writes and ooctrace -request reads.
type SpanDump struct {
	Spans []Span `json:"spans"`
}

// WriteJSON dumps the completed spans, oldest first.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(SpanDump{Spans: t.Spans()})
}

// WriteFile dumps the completed spans to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("rtrace: create span dump: %w", err)
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("rtrace: write span dump: %w", err)
	}
	return f.Close()
}

// ReadSpans parses a span dump produced by WriteJSON.
func ReadSpans(r io.Reader) ([]Span, error) {
	var d SpanDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("rtrace: parse span dump: %w", err)
	}
	return d.Spans, nil
}

// ReadSpansFile parses the span dump at path.
func ReadSpansFile(path string) ([]Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rtrace: open span dump: %w", err)
	}
	defer f.Close()
	return ReadSpans(f)
}
