package rtrace

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ooc/internal/metrics"
)

func TestFlightWraparound(t *testing.T) {
	f := NewFlight(1, 256)
	const total = 600 // > 2× capacity: the ring must wrap twice
	for i := 0; i < total; i++ {
		f.Record(EvCommit, 0, int64(i), 0, "")
	}
	evs := f.Snapshot()
	if len(evs) == 0 || len(evs) > 256 {
		t.Fatalf("snapshot size %d, want (0, 256]", len(evs))
	}
	// Oldest-first, contiguous, ending at the newest record.
	for i, ev := range evs {
		if ev.Code != EvCommit || ev.Node != 1 {
			t.Fatalf("event %d corrupted: %+v", i, ev)
		}
		if i > 0 && ev.Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence gap at %d: %d after %d", i, ev.Seq, evs[i-1].Seq)
		}
	}
	last := evs[len(evs)-1]
	if last.Seq != total-1 || last.A != total-1 {
		t.Fatalf("newest event = seq %d A=%d, want %d", last.Seq, last.A, total-1)
	}
	if first := evs[0]; first.Seq < total-256 {
		t.Fatalf("snapshot kept seq %d, older than capacity allows (%d)", first.Seq, total-256)
	}
}

func TestFlightTriggerDumpsWithHistory(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	f := NewFlight(2, 1024, WithFlightDir(dir), WithFlightMetrics(reg))
	// An anomaly dump must carry its trigger plus at least the 100
	// preceding events — the flight recorder's reason to exist.
	for i := 0; i < 150; i++ {
		f.Record(EvProposeBatch, 0, int64(i), int64(i), "")
	}
	path := f.Trigger(EvElection, 0, 7, 42, "term bump")
	if path == "" {
		t.Fatal("first Trigger with a dump dir must write a file")
	}
	dump, err := ReadFlightDumpFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dump.Node != 2 || dump.Reason != "election" {
		t.Fatalf("dump header wrong: node=%d reason=%q", dump.Node, dump.Reason)
	}
	if dump.Trigger.Code != EvElection || dump.Trigger.A != 7 || dump.Trigger.Note != "term bump" {
		t.Fatalf("trigger event wrong: %+v", dump.Trigger)
	}
	if len(dump.Events) < 151 {
		t.Fatalf("dump has %d events, want the trigger plus >=150 preceding", len(dump.Events))
	}
	if lastEv := dump.Events[len(dump.Events)-1]; lastEv.Code != EvElection {
		t.Fatalf("dump must end at its trigger, ends at %+v", lastEv)
	}

	// A second trigger inside the rate-limit window records the event but
	// writes no file.
	if p2 := f.Trigger(EvLeaseExpired, 0, 0, 0, ""); p2 != "" {
		t.Fatalf("rate-limited trigger still wrote %s", p2)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "flight-node2-*.json"))
	if len(files) != 1 {
		t.Fatalf("dump dir has %d files, want 1", len(files))
	}
	snap := reg.Snapshot()
	if snap.Counters["flight_dumps_total"] != 1 {
		t.Fatalf("dump counter = %d, want 1", snap.Counters["flight_dumps_total"])
	}
	if got := snap.Counters["flight_events_total"]; got != 152 {
		t.Fatalf("event counter = %d, want 152", got)
	}
}

func TestFlightTriggerWithoutDirRecordsOnly(t *testing.T) {
	f := NewFlight(0, 256)
	if path := f.Trigger(EvMuxDrop, 0, 3, 0, "shard/1"); path != "" {
		t.Fatalf("dir-less trigger wrote %s", path)
	}
	evs := f.Snapshot()
	if len(evs) != 1 || evs[0].Code != EvMuxDrop || evs[0].Note != "shard/1" {
		t.Fatalf("trigger event not recorded: %+v", evs)
	}
}

func TestFlightNilIsInert(t *testing.T) {
	var f *Flight
	f.Record(EvCommit, 0, 1, 2, "")
	f.Note("nothing")
	if path := f.Trigger(EvElection, 0, 0, 0, ""); path != "" {
		t.Fatal("nil Trigger must not dump")
	}
	if evs := f.Snapshot(); evs != nil {
		t.Fatal("nil Snapshot must be nil")
	}
}

func TestFlightConcurrentRecordSnapshot(t *testing.T) {
	f := NewFlight(3, 256)
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, ev := range f.Snapshot() {
					// A torn read would surface as an impossible event.
					if ev.Node != 3 || ev.Code >= numEventCodes {
						t.Errorf("torn event: %+v", ev)
						return
					}
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f.Record(EventCode(uint8(i)%uint8(numEventCodes)), ID(w), int64(i), int64(w), "")
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reader.Wait()
	if evs := f.Snapshot(); len(evs) == 0 {
		t.Fatal("nothing survived the stress run")
	}
}

func TestFlightHandler(t *testing.T) {
	f := NewFlight(4, 256)
	f.Note("hello")
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	dump, err := ReadFlightDump(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dump.Node != 4 || dump.Reason != "snapshot" || len(dump.Events) != 1 || dump.Events[0].Note != "hello" {
		t.Fatalf("handler dump wrong: %+v", dump)
	}
}

func TestEventCodeJSONRoundTrip(t *testing.T) {
	for c := EventCode(0); c < numEventCodes; c++ {
		b, err := c.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var got EventCode
		if err := got.UnmarshalJSON(b); err != nil {
			t.Fatalf("code %v: %v", c, err)
		}
		if got != c {
			t.Fatalf("round trip %v → %v", c, got)
		}
	}
}

func TestFlightDumpFileIsValidJSONOnDisk(t *testing.T) {
	dir := t.TempDir()
	f := NewFlight(5, 256, WithFlightDir(dir))
	f.Record(EvCommit, 9, 1, 1, "")
	path := f.Trigger(EvViolation, 9, 0, 0, "acceptor regressed")
	if path == "" {
		t.Fatal("no dump written")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("empty dump file")
	}
	dump, err := ReadFlightDumpFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dump.Trigger.Trace != 9 || dump.Trigger.Note != "acceptor regressed" {
		t.Fatalf("trigger lost its annotations: %+v", dump.Trigger)
	}
	if time.Since(dump.At) > time.Minute {
		t.Fatalf("dump timestamp implausible: %v", dump.At)
	}
}
