// Package rtrace is per-request causal tracing for the replicated KV
// stack. Where internal/trace records protocol rounds in the simulator,
// rtrace follows one client operation through the real request path:
// propose → leader queue → batch coalesce → group-commit fsync →
// AppendEntries fan-out → quorum ack → commit → apply → reply, and the
// ReadIndex/lease read equivalents.
//
// The design splits the cost three ways:
//
//   - Sampling happens once, at Client.Put/Get. An unsampled request
//     carries trace ID 0 and every downstream call is a nil-or-zero
//     check — no clock reads, no context allocation, no map traffic.
//   - A sampled request's trace ID rides in the context
//     (WithTrace/FromContext) inside one process and in the codec frame
//     header (frame version 2, DESIGN §3.6) across the wire.
//   - Phase attribution is interval-based: the single-goroutine raft
//     loop calls ObservePhase with explicit start/end stamps it already
//     holds, so the tracer never injects synchronization into the loop;
//     span assembly locks only the (sampled, rare) span record.
//
// Completed spans land in a bounded ring consumable by cmd/ooctrace's
// -request view (WriteJSON/ReadSpans) and fold into per-phase latency
// histograms in the metrics registry, giving the queue-vs-fsync-vs-
// network-vs-apply breakdown the "Paxos vs Raft" comparison measures.
//
// A nil *Tracer discards everything, mirroring the nil *trace.Recorder
// and nil *metrics.Registry conventions.
package rtrace

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ooc/internal/metrics"
)

// ID is a per-request trace identifier. ID 0 means "not sampled" and is
// never assigned to a real trace; every hot-path hook exits on it first.
type ID uint64

// Phase labels one interval of a request's life. The four phases are the
// latency-attribution buckets the acceptance criteria sum against the
// end-to-end time. Under the sync write path they are disjoint by
// construction (each is measured between distinct points of the single
// leader loop); under the pipelined path (PR9) fsync and network are
// stamped independently — the persist worker stamps fsync around the
// actual AppendBatch while the main loop stamps network append→commit —
// so the two intervals OVERLAP when the pipeline is doing its job, and
// AttributedTotal may exceed Elapsed. Renderers must treat phases as
// intervals on a shared timeline, not as a sequential breakdown.
type Phase uint8

const (
	// PhaseQueue: client enqueue → the leader loop drains the proposal
	// (or read) into a batch.
	PhaseQueue Phase = iota
	// PhaseFsync: the group-commit Storage.AppendBatch covering the
	// request's entries, measured around the actual persist call.
	PhaseFsync
	// PhaseNetwork: replication flush → quorum ack advances commitIndex
	// past the request's entry (or, for reads, the ReadIndex
	// confirmation round).
	PhaseNetwork
	// PhaseApply: commit → the state machine finished applying the
	// request's entry (or the read was served from the state machine).
	PhaseApply

	numPhases
)

// String reports the phase's histogram label.
func (p Phase) String() string {
	switch p {
	case PhaseQueue:
		return "queue"
	case PhaseFsync:
		return "fsync"
	case PhaseNetwork:
		return "network"
	case PhaseApply:
		return "apply"
	}
	return "unknown"
}

// MarshalJSON renders the phase by name so span dumps are readable and
// diffable in CI.
func (p Phase) MarshalJSON() ([]byte, error) {
	return []byte(`"` + p.String() + `"`), nil
}

// UnmarshalJSON accepts a phase name (or a legacy numeric value).
func (p *Phase) UnmarshalJSON(b []byte) error {
	s := string(b)
	switch s {
	case `"queue"`:
		*p = PhaseQueue
	case `"fsync"`:
		*p = PhaseFsync
	case `"network"`:
		*p = PhaseNetwork
	case `"apply"`:
		*p = PhaseApply
	default:
		var n uint8
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
			return fmt.Errorf("rtrace: unknown phase %s", s)
		}
		*p = Phase(n)
	}
	return nil
}

// PhaseInterval is one attributed slice of a span's timeline.
type PhaseInterval struct {
	Phase Phase     `json:"phase"`
	Node  int       `json:"node"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Width, on a fsync interval, is how many groups' durability
	// requests shared the device barrier that covered it (PR10 sync
	// coalescing): the interval is the *covering barrier*, so a width
	// above 1 means other groups' writes rode the same flush and the
	// request did not pay the whole interval alone — the shared-barrier
	// analogue of the pipelined fsync/network overlap. 0 or 1 means the
	// barrier was private (or the field predates coalescing).
	Width int `json:"width,omitempty"`
}

// Duration is the interval's length.
func (pi PhaseInterval) Duration() time.Duration { return pi.End.Sub(pi.Start) }

// span is one in-flight request's record. Only sampled requests allocate
// one, so a plain mutex is fine: the contenders are the client goroutine
// (Begin/End) and the single raft loop (ObservePhase), a few times per
// sampled request.
type span struct {
	mu     sync.Mutex
	id     ID
	op     string
	key    string
	origin int // node/client that began the span; -1 for remote stubs
	start  time.Time
	end    time.Time
	err    bool
	remote bool // created by ObservePhase for an ID begun elsewhere
	phases []PhaseInterval
}

// Span is a completed (or snapshotted) request timeline, the unit
// ooctrace -request renders and CI diffs as JSON.
type Span struct {
	ID     ID              `json:"id"`
	Op     string          `json:"op"`
	Key    string          `json:"key,omitempty"`
	Origin int             `json:"origin"`
	Start  time.Time       `json:"start"`
	End    time.Time       `json:"end"`
	Err    bool            `json:"err,omitempty"`
	Remote bool            `json:"remote,omitempty"`
	Phases []PhaseInterval `json:"phases"`
}

// Elapsed is the span's end-to-end latency.
func (s Span) Elapsed() time.Duration { return s.End.Sub(s.Start) }

// PhaseTotal sums the span's intervals for one phase.
func (s Span) PhaseTotal(p Phase) time.Duration {
	var total time.Duration
	for _, pi := range s.Phases {
		if pi.Phase == p {
			total += pi.Duration()
		}
	}
	return total
}

// AttributedTotal sums every phase interval — the quantity the
// acceptance criteria compare against Elapsed.
func (s Span) AttributedTotal() time.Duration {
	var total time.Duration
	for _, pi := range s.Phases {
		total += pi.Duration()
	}
	return total
}

// Options configures a Tracer.
type Options struct {
	// Sample is the per-request sampling probability in [0, 1]. 0 never
	// samples (every Begin returns ID 0), 1 samples everything.
	Sample float64
	// Seed seeds the sampling/ID generator; 0 picks a fixed default so
	// tests are deterministic.
	Seed uint64
	// Registry receives the per-phase and end-to-end latency
	// histograms; nil records no metrics.
	Registry *metrics.Registry
	// Capacity bounds both the in-flight span table and the completed
	// ring (default 4096). Overflow evicts oldest and counts drops.
	Capacity int
}

// Tracer samples requests, assembles spans, and folds phase latencies
// into metrics. One Tracer serves a whole in-process cluster (client and
// nodes share it, which is how client-side Begin/End and leader-side
// ObservePhase meet); across real processes each process has its own and
// the wire carries only the ID.
type Tracer struct {
	threshold uint64 // sample iff next rng draw < threshold
	rng       atomic.Uint64
	base      ID // random per-Tracer offset so IDs are unique-ish across processes
	next      atomic.Uint64

	phaseHist [numPhases]*metrics.Histogram
	e2eHist   *metrics.Histogram
	started   *metrics.Counter
	dropped   *metrics.Counter

	mu       sync.Mutex
	active   map[ID]*span
	activeQ  []ID // insertion order for eviction
	done     []Span
	doneNext int
	doneFull bool
	capacity int
}

// New builds a Tracer. A Sample of 0 still returns a usable Tracer (for
// remote-phase assembly and explicit Begin-free use); pass nil where
// tracing is wholly disabled.
func New(o Options) *Tracer {
	cap := o.Capacity
	if cap <= 0 {
		cap = 4096
	}
	seed := o.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	t := &Tracer{
		capacity: cap,
		active:   make(map[ID]*span),
		done:     make([]Span, 0, cap),
	}
	switch {
	case o.Sample >= 1:
		t.threshold = ^uint64(0)
	case o.Sample > 0:
		t.threshold = uint64(o.Sample * float64(1<<63) * 2)
	}
	t.rng.Store(seed)
	t.base = ID(splitmix64(&seed))
	if o.Registry != nil {
		for p := Phase(0); p < numPhases; p++ {
			t.phaseHist[p] = o.Registry.Histogram(
				metrics.Label("rtrace_phase_latency", "phase", p.String()), nil)
		}
		t.e2eHist = o.Registry.Histogram("rtrace_request_latency", nil)
		t.started = o.Registry.Counter("rtrace_spans_started_total")
		t.dropped = o.Registry.Counter("rtrace_spans_dropped_total")
	}
	return t
}

// splitmix64 advances *s and returns the next value of the splitmix64
// stream — the same generator sim.RNG seeds with.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// draw is a lock-free splitmix64 step shared by all samplers. A lost CAS
// just means another goroutine consumed that draw; retrying keeps the
// stream collision-free without a lock.
func (t *Tracer) draw() uint64 {
	for {
		old := t.rng.Load()
		s := old
		v := splitmix64(&s)
		if t.rng.CompareAndSwap(old, s) {
			return v
		}
	}
}

// Begin samples one request. It returns ID 0 (and false) when the
// request is not sampled — the caller threads the ID regardless, and
// every downstream hook no-ops on 0. On a sampled request it allocates
// the span record, stamps the start time, and returns a non-zero ID.
func (t *Tracer) Begin(node int, op, key string) (ID, bool) {
	if t == nil || t.threshold == 0 {
		return 0, false
	}
	if t.threshold != ^uint64(0) && t.draw() >= t.threshold {
		return 0, false
	}
	id := t.base + ID(t.next.Add(1))
	if id == 0 {
		id = t.base + ID(t.next.Add(1))
	}
	sp := &span{id: id, op: op, key: key, origin: node, start: time.Now()}
	t.insert(id, sp)
	t.started.Inc(node)
	return id, true
}

// insert files a span under its ID, evicting the oldest in-flight span
// if the table is full (a request that never completed — leader crash,
// dropped reply). Evicted spans are finalized as-is so their phases are
// not lost.
func (t *Tracer) insert(id ID, sp *span) {
	t.mu.Lock()
	if len(t.activeQ) >= t.capacity {
		oldID := t.activeQ[0]
		t.activeQ = t.activeQ[1:]
		if old := t.active[oldID]; old != nil {
			delete(t.active, oldID)
			t.finishLocked(old, time.Time{}, true)
			t.dropped.Inc(old.origin)
		}
	}
	t.active[id] = sp
	t.activeQ = append(t.activeQ, id)
	t.mu.Unlock()
}

// lookup finds the span for id, creating a remote stub when this Tracer
// never saw Begin (the ID arrived over the wire from another process).
func (t *Tracer) lookup(id ID, node int) *span {
	t.mu.Lock()
	sp := t.active[id]
	t.mu.Unlock()
	if sp != nil {
		return sp
	}
	sp = &span{id: id, origin: -1, remote: true, start: time.Now(), op: "remote"}
	if node >= 0 {
		sp.origin = node
	}
	t.insert(id, sp)
	return sp
}

// ObservePhase attributes [start, end) of trace id to one phase,
// executed on node. ID 0, a nil tracer, and zero times all discard, so
// call sites stay unconditional.
func (t *Tracer) ObservePhase(id ID, p Phase, node int, start, end time.Time) {
	t.observe(id, p, node, start, end, 0)
}

// ObserveFsync attributes a fsync interval that also records the width
// of the device barrier that covered it — how many groups' requests
// shared the flush (see PhaseInterval.Width). Width values below 2 are
// recorded as 0 (private barrier), keeping pre-coalescing span JSON
// byte-identical.
func (t *Tracer) ObserveFsync(id ID, node int, start, end time.Time, width int) {
	if width < 2 {
		width = 0
	}
	t.observe(id, PhaseFsync, node, start, end, width)
}

func (t *Tracer) observe(id ID, p Phase, node int, start, end time.Time, width int) {
	if t == nil || id == 0 || start.IsZero() || end.IsZero() || p >= numPhases {
		return
	}
	sp := t.lookup(id, node)
	sp.mu.Lock()
	sp.phases = append(sp.phases, PhaseInterval{Phase: p, Node: node, Start: start, End: end, Width: width})
	sp.mu.Unlock()
	t.phaseHist[p].Observe(node, end.Sub(start))
}

// Now reads the clock only for sampled requests: the disabled path pays
// a nil/zero check, not a clock read. Use for phase start stamps.
func (t *Tracer) Now(id ID) time.Time {
	if t == nil || id == 0 {
		return time.Time{}
	}
	return time.Now()
}

// End completes the span: stamps the end, observes end-to-end latency,
// and moves the record to the completed ring.
func (t *Tracer) End(id ID, opErr bool) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	sp := t.active[id]
	if sp == nil {
		t.mu.Unlock()
		return
	}
	delete(t.active, id)
	for i, qid := range t.activeQ {
		if qid == id {
			t.activeQ = append(t.activeQ[:i], t.activeQ[i+1:]...)
			break
		}
	}
	sp.err = opErr
	t.finishLocked(sp, time.Now(), false)
	t.mu.Unlock()
}

// finishLocked snapshots sp into the completed ring. Caller holds t.mu.
func (t *Tracer) finishLocked(sp *span, end time.Time, evicted bool) {
	sp.mu.Lock()
	if end.IsZero() {
		end = sp.start // evicted with no completion: zero elapsed
	}
	sp.end = end
	snap := Span{
		ID: sp.id, Op: sp.op, Key: sp.key, Origin: sp.origin,
		Start: sp.start, End: sp.end, Err: sp.err || evicted, Remote: sp.remote,
		Phases: append([]PhaseInterval(nil), sp.phases...),
	}
	sp.mu.Unlock()
	if !evicted && !sp.remote {
		t.e2eHist.Observe(sp.origin, snap.Elapsed())
	}
	if len(t.done) < t.capacity {
		t.done = append(t.done, snap)
	} else {
		t.done[t.doneNext] = snap
		t.doneNext = (t.doneNext + 1) % t.capacity
		t.doneFull = true
	}
}

// Spans returns the completed spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.done))
	if t.doneFull {
		out = append(out, t.done[t.doneNext:]...)
		out = append(out, t.done[:t.doneNext]...)
	} else {
		out = append(out, t.done...)
	}
	return out
}

// Span fetches one completed span by ID.
func (t *Tracer) Span(id ID) (Span, bool) {
	for _, s := range t.Spans() {
		if s.ID == id {
			return s, true
		}
	}
	return Span{}, false
}

// ctxKey is the context key for the trace ID.
type ctxKey struct{}

// WithTrace attaches a trace ID to ctx. ID 0 returns ctx unchanged, so
// the unsampled path allocates nothing.
func WithTrace(ctx context.Context, id ID) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// FromContext extracts the trace ID, 0 if absent.
func FromContext(ctx context.Context) ID {
	if ctx == nil {
		return 0
	}
	if id, ok := ctx.Value(ctxKey{}).(ID); ok {
		return id
	}
	return 0
}
