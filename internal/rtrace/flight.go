package rtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"ooc/internal/metrics"
)

// EventCode classifies a flight-recorder event.
type EventCode uint8

const (
	// EvNote is a free-form annotated event.
	EvNote EventCode = iota
	// EvElection: a node started an election (became candidate). Trigger.
	EvElection
	// EvBecameLeader: a node won an election.
	EvBecameLeader
	// EvStepDown: a leader stepped down (higher term observed).
	EvStepDown
	// EvLeaseExpired: a leader's read lease lapsed under it. Trigger.
	EvLeaseExpired
	// EvMuxDrop: the bounded Mux backlog dropped a message. Trigger.
	// Note carries the channel the message was tagged for, A the sender.
	EvMuxDrop
	// EvViolation: an external checker flagged a violation. Trigger.
	EvViolation
	// EvProposeBatch: the leader drained a proposal batch (A = batch
	// size, B = last appended index).
	EvProposeBatch
	// EvCommit: commitIndex advanced (A = new commit index, B = term).
	EvCommit
	// EvReadRound: a ReadIndex confirmation round resolved (A = read
	// index, B = batch size).
	EvReadRound
	// EvSnapshot: an InstallSnapshot was sent or applied (A = snapshot
	// last index).
	EvSnapshot

	numEventCodes
)

// String reports the event code's dump label.
func (c EventCode) String() string {
	switch c {
	case EvNote:
		return "note"
	case EvElection:
		return "election"
	case EvBecameLeader:
		return "became_leader"
	case EvStepDown:
		return "step_down"
	case EvLeaseExpired:
		return "lease_expired"
	case EvMuxDrop:
		return "mux_backlog_drop"
	case EvViolation:
		return "checker_violation"
	case EvProposeBatch:
		return "propose_batch"
	case EvCommit:
		return "commit"
	case EvReadRound:
		return "read_round"
	case EvSnapshot:
		return "snapshot"
	}
	return "unknown"
}

// MarshalJSON renders the code by name.
func (c EventCode) MarshalJSON() ([]byte, error) {
	return []byte(`"` + c.String() + `"`), nil
}

// UnmarshalJSON accepts an event-code name.
func (c *EventCode) UnmarshalJSON(b []byte) error {
	s := string(b)
	for v := EventCode(0); v < numEventCodes; v++ {
		if s == `"`+v.String()+`"` {
			*c = v
			return nil
		}
	}
	return fmt.Errorf("rtrace: unknown event code %s", s)
}

// Event is one recorded flight event, as surfaced in snapshots/dumps.
type Event struct {
	Seq   uint64    `json:"seq"`
	Time  time.Time `json:"time"`
	Node  int       `json:"node"`
	Code  EventCode `json:"code"`
	Trace ID        `json:"trace,omitempty"`
	A     int64     `json:"a,omitempty"`
	B     int64     `json:"b,omitempty"`
	Note  string    `json:"note,omitempty"`
}

// flightSlot is one ring entry. Every field is atomic so concurrent
// writers and snapshot readers are race-detector clean without a lock:
// the seq field is a per-slot seqlock — a writer publishes writeSeq =
// 2*claim+1 while writing and 2*claim+2 when done; a reader accepts a
// copy only if it observed the same even seq before and after.
type flightSlot struct {
	seq   atomic.Uint64
	time  atomic.Int64 // UnixNano
	node  atomic.Int64
	code  atomic.Int64
	trace atomic.Uint64
	a     atomic.Int64
	b     atomic.Int64
	note  atomic.Pointer[string]
}

// Flight is a per-node bounded ring of recent annotated events — the
// always-on black box. Recording is lock-free (one fetch-add to claim a
// slot, then atomic stores); anomaly triggers snapshot the ring and dump
// it to disk and/or serve it over /debug/flight. A nil *Flight discards.
type Flight struct {
	ring []flightSlot
	mask uint64
	head atomic.Uint64
	node int

	dir      string
	minGap   int64 // ns between disk dumps
	lastDump atomic.Int64
	seqDump  atomic.Uint64

	events *metrics.Counter
	dumps  *metrics.Counter
}

// FlightOption configures a Flight.
type FlightOption func(*Flight)

// WithFlightDir enables disk dumps: each trigger writes
// flight-node<N>-<seq>.json into dir (rate-limited to one per 250ms).
func WithFlightDir(dir string) FlightOption {
	return func(f *Flight) { f.dir = dir }
}

// WithFlightMetrics counts recorded events and dumps in reg.
func WithFlightMetrics(reg *metrics.Registry) FlightOption {
	return func(f *Flight) {
		f.events = reg.Counter("flight_events_total")
		f.dumps = reg.Counter("flight_dumps_total")
	}
}

// NewFlight builds a recorder for one node. capacity is rounded up to a
// power of two, minimum 256 — comfortably more than the "triggering
// event plus the preceding 100" a dump must carry.
func NewFlight(node, capacity int, opts ...FlightOption) *Flight {
	size := 256
	for size < capacity {
		size <<= 1
	}
	f := &Flight{
		ring:   make([]flightSlot, size),
		mask:   uint64(size - 1),
		node:   node,
		minGap: int64(250 * time.Millisecond),
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Record appends one event to the ring. Safe from any goroutine; on the
// raft loop it costs one clock read and a handful of uncontended atomic
// stores. note should be "" on hot paths (no allocation); rare anomaly
// events may carry one.
func (f *Flight) Record(code EventCode, trace ID, a, b int64, note string) {
	if f == nil {
		return
	}
	claim := f.head.Add(1) - 1
	s := &f.ring[claim&f.mask]
	s.seq.Store(2*claim + 1) // odd: write in progress
	s.time.Store(time.Now().UnixNano())
	s.node.Store(int64(f.node))
	s.code.Store(int64(code))
	s.trace.Store(uint64(trace))
	s.a.Store(a)
	s.b.Store(b)
	if note != "" {
		n := note
		s.note.Store(&n)
	} else {
		s.note.Store(nil)
	}
	s.seq.Store(2*claim + 2) // even: stable
	f.events.Inc(f.node)
}

// Note records a free-form annotated event.
func (f *Flight) Note(note string) { f.Record(EvNote, 0, 0, 0, note) }

// Snapshot copies the stable ring contents, oldest first. Torn slots
// (concurrent writers mid-store) and never-written slots are skipped, so
// a snapshot taken during heavy traffic is consistent if slightly short.
func (f *Flight) Snapshot() []Event {
	if f == nil {
		return nil
	}
	head := f.head.Load()
	size := uint64(len(f.ring))
	start := uint64(0)
	if head > size {
		start = head - size
	}
	out := make([]Event, 0, head-start)
	for claim := start; claim < head; claim++ {
		s := &f.ring[claim&f.mask]
		want := 2*claim + 2
		if s.seq.Load() != want {
			continue // torn, overwritten, or not yet published
		}
		ev := Event{
			Seq:   claim,
			Time:  time.Unix(0, s.time.Load()),
			Node:  int(s.node.Load()),
			Code:  EventCode(s.code.Load()),
			Trace: ID(s.trace.Load()),
			A:     s.a.Load(),
			B:     s.b.Load(),
		}
		if n := s.note.Load(); n != nil {
			ev.Note = *n
		}
		if s.seq.Load() != want {
			continue // overwritten while copying
		}
		out = append(out, ev)
	}
	return out
}

// FlightDump is the on-disk/HTTP form of a triggered snapshot.
type FlightDump struct {
	Node    int       `json:"node"`
	Reason  string    `json:"reason"`
	Trigger Event     `json:"trigger"`
	At      time.Time `json:"at"`
	Events  []Event   `json:"events"`
}

// Trigger records the anomaly event and, if a dump directory is
// configured and the rate limit allows, writes the ring snapshot to
// disk. It returns the path written ("" when rate-limited or disk dumps
// are disabled). The trigger event itself is in the snapshot — it is
// recorded first — so dumps always contain their own cause.
func (f *Flight) Trigger(code EventCode, trace ID, a, b int64, note string) string {
	if f == nil {
		return ""
	}
	f.Record(code, trace, a, b, note)
	if f.dir == "" {
		return ""
	}
	now := time.Now().UnixNano()
	last := f.lastDump.Load()
	if now-last < f.minGap || !f.lastDump.CompareAndSwap(last, now) {
		return ""
	}
	events := f.Snapshot()
	var trig Event
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].Code == code {
			trig = events[i]
			break
		}
	}
	dump := FlightDump{
		Node: f.node, Reason: code.String(), Trigger: trig,
		At: time.Unix(0, now), Events: events,
	}
	path := filepath.Join(f.dir,
		fmt.Sprintf("flight-node%d-%d.json", f.node, f.seqDump.Add(1)))
	if err := writeDump(path, dump); err != nil {
		return ""
	}
	f.dumps.Inc(f.node)
	return path
}

func writeDump(path string, dump FlightDump) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(fh)
	enc.SetIndent("", " ")
	if err := enc.Encode(dump); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// WriteJSON writes the current ring snapshot as a FlightDump with
// reason "snapshot" — the /debug/flight payload.
func (f *Flight) WriteJSON(w io.Writer) error {
	dump := FlightDump{Reason: "snapshot", At: time.Now()}
	if f != nil {
		dump.Node = f.node
		dump.Events = f.Snapshot()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(dump)
}

// Handler serves the ring over HTTP (mounted at /debug/flight).
func (f *Flight) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = f.WriteJSON(w)
	})
}

// ReadFlightDump parses a dump written by Trigger or WriteJSON.
func ReadFlightDump(r io.Reader) (FlightDump, error) {
	var d FlightDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return d, fmt.Errorf("rtrace: parse flight dump: %w", err)
	}
	return d, nil
}

// ReadFlightDumpFile parses the dump at path.
func ReadFlightDumpFile(path string) (FlightDump, error) {
	fh, err := os.Open(path)
	if err != nil {
		return FlightDump{}, fmt.Errorf("rtrace: open flight dump: %w", err)
	}
	defer fh.Close()
	return ReadFlightDump(fh)
}
