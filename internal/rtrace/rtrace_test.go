package rtrace

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"ooc/internal/metrics"
)

func TestSpanLifecycle(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Options{Sample: 1, Registry: reg})
	id, ok := tr.Begin(2, "set", "k1")
	if !ok || id == 0 {
		t.Fatalf("Begin at sample=1 must sample: id=%d ok=%v", id, ok)
	}
	base := time.Now()
	tr.ObservePhase(id, PhaseQueue, 2, base, base.Add(10*time.Microsecond))
	tr.ObservePhase(id, PhaseFsync, 2, base.Add(10*time.Microsecond), base.Add(1*time.Millisecond))
	tr.ObservePhase(id, PhaseNetwork, 2, base.Add(1*time.Millisecond), base.Add(3*time.Millisecond))
	tr.ObservePhase(id, PhaseApply, 2, base.Add(3*time.Millisecond), base.Add(3100*time.Microsecond))
	tr.End(id, false)

	s, ok := tr.Span(id)
	if !ok {
		t.Fatalf("completed span %d not found", id)
	}
	if s.Op != "set" || s.Key != "k1" || s.Origin != 2 || s.Err || s.Remote {
		t.Fatalf("span fields wrong: %+v", s)
	}
	if len(s.Phases) != 4 {
		t.Fatalf("want 4 phase intervals, got %d", len(s.Phases))
	}
	if got := s.PhaseTotal(PhaseFsync); got != 990*time.Microsecond {
		t.Fatalf("fsync total = %v, want 990µs", got)
	}
	if got := s.AttributedTotal(); got != 3100*time.Microsecond {
		t.Fatalf("attributed total = %v, want 3.1ms", got)
	}
	if s.Elapsed() <= 0 {
		t.Fatalf("elapsed must be positive, got %v", s.Elapsed())
	}
	snap := reg.Snapshot()
	if snap.Counters["rtrace_spans_started_total"] != 1 {
		t.Fatalf("started counter = %d, want 1", snap.Counters["rtrace_spans_started_total"])
	}
	if h, okh := snap.Histograms[`rtrace_phase_latency{phase="fsync"}`]; !okh || h.Count != 1 {
		t.Fatalf("fsync histogram not recorded: %+v", snap.Histograms)
	}
	if h, okh := snap.Histograms["rtrace_request_latency"]; !okh || h.Count != 1 {
		t.Fatalf("e2e histogram not recorded")
	}
}

func TestUnsampledAndNilPathsAreInert(t *testing.T) {
	tr := New(Options{Sample: 0})
	if id, ok := tr.Begin(0, "set", "k"); ok || id != 0 {
		t.Fatalf("sample=0 must never sample, got id=%d", id)
	}
	if !tr.Now(0).IsZero() {
		t.Fatal("Now(0) must not read the clock")
	}
	// All of these must be safe no-ops on ID 0 and on a nil tracer.
	tr.ObservePhase(0, PhaseQueue, 0, time.Now(), time.Now())
	tr.End(0, false)
	var nilT *Tracer
	if id, ok := nilT.Begin(0, "set", "k"); ok || id != 0 {
		t.Fatal("nil tracer Begin must return 0")
	}
	nilT.ObservePhase(1, PhaseQueue, 0, time.Now(), time.Now())
	nilT.End(1, false)
	if !nilT.Now(1).IsZero() {
		t.Fatal("nil tracer Now must return zero time")
	}
	if nilT.Spans() != nil {
		t.Fatal("nil tracer Spans must be nil")
	}
}

func TestSamplingRate(t *testing.T) {
	tr := New(Options{Sample: 0.5, Seed: 7})
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if id, ok := tr.Begin(0, "op", ""); ok {
			hits++
			tr.End(id, false)
		}
	}
	frac := float64(hits) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("sample=0.5 hit rate %.3f outside [0.45, 0.55]", frac)
	}
}

func TestContextThreading(t *testing.T) {
	if got := FromContext(context.Background()); got != 0 {
		t.Fatalf("empty context must carry ID 0, got %d", got)
	}
	ctx := WithTrace(context.Background(), 42)
	if got := FromContext(ctx); got != 42 {
		t.Fatalf("FromContext = %d, want 42", got)
	}
}

func TestRemoteStubSpan(t *testing.T) {
	tr := New(Options{Sample: 1})
	// An ID this tracer never began — as if it arrived in a frame header
	// from another process.
	now := time.Now()
	tr.ObservePhase(ID(999), PhaseNetwork, 3, now, now.Add(time.Millisecond))
	tr.End(ID(999), false)
	s, ok := tr.Span(ID(999))
	if !ok {
		t.Fatal("remote stub span not completed")
	}
	if !s.Remote || s.Origin != 3 || len(s.Phases) != 1 {
		t.Fatalf("remote stub wrong: %+v", s)
	}
}

func TestActiveTableEviction(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Options{Sample: 1, Capacity: 4, Registry: reg})
	var ids []ID
	for i := 0; i < 6; i++ {
		id, _ := tr.Begin(0, "op", "")
		ids = append(ids, id)
	}
	// The two oldest in-flight spans were evicted and finalized as errors.
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("want 2 evicted spans, got %d", len(spans))
	}
	for i, s := range spans {
		if s.ID != ids[i] || !s.Err {
			t.Fatalf("evicted span %d wrong: %+v", i, s)
		}
	}
	if got := reg.Snapshot().Counters["rtrace_spans_dropped_total"]; got != 2 {
		t.Fatalf("dropped counter = %d, want 2", got)
	}
}

func TestDoneRingWraparound(t *testing.T) {
	tr := New(Options{Sample: 1, Capacity: 4})
	var ids []ID
	for i := 0; i < 10; i++ {
		id, _ := tr.Begin(0, "op", "")
		ids = append(ids, id)
		tr.End(id, false)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring must hold capacity spans, got %d", len(spans))
	}
	for i, s := range spans {
		if s.ID != ids[6+i] {
			t.Fatalf("ring order wrong at %d: got %d want %d (oldest first)", i, s.ID, ids[6+i])
		}
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	tr := New(Options{Sample: 1})
	id, _ := tr.Begin(1, "get:lease", "k9")
	now := time.Now()
	tr.ObservePhase(id, PhaseQueue, 1, now, now.Add(5*time.Microsecond))
	tr.End(id, true)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("round trip lost spans: %d", len(spans))
	}
	got, want := spans[0], mustSpan(t, tr, id)
	if got.ID != want.ID || got.Op != want.Op || got.Key != want.Key ||
		got.Err != want.Err || len(got.Phases) != len(want.Phases) ||
		got.Phases[0].Phase != PhaseQueue {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.Phases[0].Duration() != want.Phases[0].Duration() {
		t.Fatalf("phase duration drifted: %v vs %v", got.Phases[0].Duration(), want.Phases[0].Duration())
	}
}

func mustSpan(t *testing.T, tr *Tracer, id ID) Span {
	t.Helper()
	s, ok := tr.Span(id)
	if !ok {
		t.Fatalf("span %d missing", id)
	}
	return s
}

// TestConcurrentSpanLifecycle hammers Begin/ObservePhase/End from many
// goroutines while readers snapshot, the contention pattern of a real
// cluster (client goroutines × node loops × a scraper). Run under
// -race in CI.
func TestConcurrentSpanLifecycle(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Options{Sample: 1, Registry: reg, Capacity: 128})
	const workers, iters = 8, 300
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() { // concurrent snapshot reader
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, s := range tr.Spans() {
					_ = s.AttributedTotal()
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id, ok := tr.Begin(w, "op", "k")
				if !ok {
					t.Errorf("worker %d: Begin failed at sample=1", w)
					return
				}
				start := tr.Now(id)
				tr.ObservePhase(id, Phase(i%4), w, start, time.Now())
				tr.End(id, i%7 == 0)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reader.Wait()

	if got := reg.Snapshot().Counters["rtrace_spans_started_total"]; got != workers*iters {
		t.Fatalf("started counter = %d, want %d", got, workers*iters)
	}
	if n := len(tr.Spans()); n != 128 {
		t.Fatalf("done ring holds %d spans, want capacity 128", n)
	}
}
