package raft

// The pipelined write path (the default; Config.SyncPipeline restores
// the fully ordered one). Two worker goroutines take the blocking halves
// of the old main-loop iteration off the critical path:
//
//   - The persist worker owns every Storage call after boot. The main
//     loop stages durable mutations exactly as before, but flush() hands
//     them to the worker instead of fsyncing inline, so AppendEntries
//     broadcasts depart while the leader's own disk is still syncing.
//     Commit latency becomes max(leader fsync, follower RTT+fsync)
//     instead of their sum.
//   - The apply worker owns StateMachine.Apply, the applied notifier,
//     and the applied≥readIndex waits, so the main loop can persist and
//     replicate batch N+1 while batch N applies.
//
// Safety is preserved by fencing externalization, not transmission
// (Raft requires only that persistence precede *externalization*):
//
//   - Messages that claim durability — AppendEntriesReply (MatchIndex),
//     RequestVote (the candidate's bumped term), RequestVoteReply (the
//     persisted vote) — and proposal replies ride the persist request
//     and are released by the main loop only after its fsync lands.
//   - The leader's self-ack counts toward quorum only when its own
//     batch is durable: matchIndex[self] tracks durableIndex, not the
//     in-memory log tail, so advanceCommit treats the leader's disk as
//     just another follower. Commit may be reached by followers alone.
//   - AppendEntries / InstallSnapshot fan-out, PreVote traffic, and
//     ReadIndex traffic are unfenced: receivers persist before acking,
//     and a confirmed read index is quorum-durable by definition.
//
// All Endpoint sends and reply-channel sends stay on the main loop: the
// persist worker returns its release bundle through persistDoneCh and
// the main loop externalizes it, so netsim's per-sender RNG streams and
// the transport never see concurrent senders.

import (
	"fmt"
	"time"

	"ooc/internal/msgnet"
	"ooc/internal/rtrace"
)

// persistQueueCap bounds how many persist batches may be in flight
// between the main loop and the persist worker. A full queue blocks
// flush() — persistence backpressure, never dropped work.
const persistQueueCap = 64

// persistReq is one group-committed batch handed to the persist worker:
// the staged durable mutations of one (or more) main-loop iterations
// plus the fenced externalizations that must not depart before the
// batch is durable.
type persistReq struct {
	setState   bool
	term, vote int
	muts       []LogMutation
	// snap, if non-nil, is a snapshot record; snapAfter is how many of
	// muts logically precede it, preserving on-disk record order.
	snap      *snapStage
	snapAfter int
	// traced lists the sampled ops whose fsync phase this batch closes;
	// the worker stamps the interval itself, overlapping the network
	// phase the main loop opened at broadcast departure.
	traced []rtrace.ID
	// Release bundle: externalized by the main loop on completion.
	msgs    []outMsg
	replies []stagedReply
}

// snapStage is a staged snapshot record (compaction or InstallSnapshot).
type snapStage struct {
	index, term int
	data        []byte
}

// persistDone reports the completion of a run of n consecutive batches,
// FIFO with persistQ. The durable targets ride the main loop's
// pendingPersist queue instead so truncations can clamp them while the
// run is in flight; msgs and replies are the runs' release bundles
// concatenated in staging order.
type persistDone struct {
	err     error
	n       int // persistReqs this run covered
	msgs    []outMsg
	replies []stagedReply
}

// applyItem is one unit of apply-worker input: a batch of committed
// entries, a snapshot restore, or a read waiter parked until the state
// machine catches up to its read index.
type applyItem struct {
	first   int // index of entries[0], or the restore point
	entries []Entry
	term    int
	restore *snapStage
	wait    *applyWait
	// traced carries the apply-phase stamps for sampled entries in this
	// batch: the worker closes committed→applied.
	traced []applyTrace
}

type applyTrace struct {
	id        rtrace.ID
	committed time.Time
}

// compactReq asks the main loop to compact the log through index; data
// is the state machine's snapshot at exactly that index, captured by
// the apply worker (the sole applier, so the capture is consistent).
type compactReq struct {
	index int
	data  []byte
}

// snapCache is the main loop's copy of the latest snapshot data, kept
// so a leader's sendSnapshot never calls SnapshotData concurrently with
// the apply worker. Updated wherever snapIndex moves: boot restore,
// compaction, InstallSnapshot.
type snapCache struct {
	index int
	data  []byte
}

// fencedMsg reports whether a staged message externalizes durable state
// and must wait for the in-flight persist queue to drain — the
// persistence-precedes-externalization rule applied per message class:
//
//   - RequestVote follows the candidate's persisted term and self-vote.
//   - RequestVoteReply follows the voter's persisted vote.
//   - AppendEntriesReply carries MatchIndex, a durability claim over
//     this follower's log (and acks InstallSnapshot persistence).
//
// Everything else may depart while the disk syncs: AppendEntries and
// InstallSnapshot receivers persist before acking, PreVote touches no
// durable state, and ReadIndex indexes are quorum-durable commit
// indexes.
func fencedMsg(payload any) bool {
	if id, inner := msgnet.TraceOf(payload); id != 0 {
		payload = inner
	}
	switch payload.(type) {
	case AppendEntriesReply, RequestVote, RequestVoteReply:
		return true
	}
	return false
}

// flushPipelined is flush() for the pipelined persist path: unfenced
// sends and replies leave immediately; durable mutations and fenced
// externalizations become one persist request. With nothing durable in
// flight the fence is already satisfied and everything leaves at once.
func (nd *Node) flushPipelined() {
	if nd.fatal != nil {
		nd.stateDirty = false
		nd.pendingLog = nil
		nd.pendingSnap = nil
		nd.snapAfterMuts = 0
		nd.tracedUnsynced = nd.tracedUnsynced[:0]
		nd.outbox = nd.outbox[:0]
		nd.replies = nd.replies[:0]
		nd.curRound = nil
		return
	}
	havePersist := nd.stateDirty || len(nd.pendingLog) > 0 || nd.pendingSnap != nil
	fence := havePersist || len(nd.pendingPersist) > 0
	var fencedMsgs []outMsg
	var fencedReplies []stagedReply
	for _, m := range nd.outbox {
		if fence && fencedMsg(m.payload) {
			fencedMsgs = append(fencedMsgs, m)
			continue
		}
		_ = nd.cfg.Endpoint.Send(m.to, m.payload)
	}
	nd.outbox = nd.outbox[:0]
	for _, r := range nd.replies {
		if fence && r.fenced {
			fencedReplies = append(fencedReplies, r)
			continue
		}
		r.ch <- r.reply
	}
	nd.replies = nd.replies[:0]
	if havePersist || len(fencedMsgs) > 0 || len(fencedReplies) > 0 {
		nd.stagePersistBatch(fencedMsgs, fencedReplies)
	}
	nd.curRound = nil
}

// stagePersistBatch hands the iteration's staged durable work (possibly
// none: a pure fence barrier) to the persist worker and records its
// durable target. A mutation that truncates below durableIndex clamps
// both the index and every in-flight batch's target: the disk will hold
// the *new* entries at those indexes only once this batch lands.
func (nd *Node) stagePersistBatch(msgs []outMsg, replies []stagedReply) {
	req := persistReq{
		setState:  nd.stateDirty,
		term:      nd.hs.currentTerm,
		vote:      nd.hs.votedFor,
		muts:      nd.pendingLog,
		snap:      nd.pendingSnap,
		snapAfter: nd.snapAfterMuts,
		msgs:      msgs,
		replies:   replies,
	}
	nd.stateDirty = false
	nd.pendingLog = nil // the worker owns the slice now
	nd.pendingSnap = nil
	nd.snapAfterMuts = 0
	if len(nd.tracedUnsynced) > 0 {
		req.traced = make([]rtrace.ID, 0, len(nd.tracedUnsynced))
		for _, idx := range nd.tracedUnsynced {
			if op, ok := nd.traced[idx]; ok {
				req.traced = append(req.traced, op.id)
			}
		}
		nd.tracedUnsynced = nd.tracedUnsynced[:0]
	}
	for _, mut := range req.muts {
		if mut.PrevIndex < nd.durableIndex {
			nd.clampDurable(mut.PrevIndex)
		}
	}
	target := nd.hs.log.lastIndex()
	if target < nd.durableIndex {
		nd.clampDurable(target) // snapshot install shrank the log
	}
	nd.pendingPersist = append(nd.pendingPersist, target)
	// A full queue is persistence backpressure — but block with the
	// completion channel in hand, so a worker stalled on a full
	// persistDoneCh can always make progress and the pair cannot
	// deadlock.
	for {
		select {
		case nd.persistQ <- req:
			nd.met.onPersistDepth(len(nd.persistQ))
			return
		case d := <-nd.persistDoneCh:
			nd.onPersistDone(d)
		}
	}
}

// clampDurable lowers durableIndex and every in-flight batch's target
// to at most idx: entries above it are being rewritten, so completions
// of older batches must not claim them durable.
func (nd *Node) clampDurable(idx int) {
	if idx < nd.durableIndex {
		nd.durableIndex = idx
	}
	for i, t := range nd.pendingPersist {
		if t > idx {
			nd.pendingPersist[i] = idx
		}
	}
}

// persistWorker owns Storage after boot: one goroutine, runs in FIFO
// order, one completion per run through the buffered persistDoneCh. On
// each wakeup it greedily drains the queue and persists the whole run
// at once — this is where group commit survives pipelining: the main
// loop no longer blocks in fsync, so it stages many small batches, and
// the worker re-coalesces every batch that piled up behind the disk
// into (usually) a single AppendBatch call, one durability barrier for
// all of them.
func (nd *Node) persistWorker() {
	defer nd.workers.Done()
	for {
		select {
		case req := <-nd.persistQ:
			reqs := append(make([]persistReq, 0, 16), req)
		drained:
			for {
				select {
				case r := <-nd.persistQ:
					reqs = append(reqs, r)
				default:
					break drained
				}
			}
			nd.persistDoneCh <- nd.doPersistRun(reqs)
		case <-nd.stopped:
			return
		}
	}
}

// doPersistRun executes a run of batches, merging consecutive log
// mutations into single AppendBatch calls. Scalar state and snapshot
// records force a flush first, preserving the exact storage-call order
// the batches were staged in (term/vote of batch i lands after the
// entries of batches < i, before its own). On error the whole run's
// release bundle is withheld — nothing externalizes over unpersisted
// state — and the main loop stops the node.
func (nd *Node) doPersistRun(reqs []persistReq) persistDone {
	st := nd.cfg.Storage
	var muts []LogMutation
	var traced []rtrace.ID
	flush := func() error {
		if len(muts) == 0 {
			return nil
		}
		var t0 time.Time
		if len(traced) > 0 {
			t0 = time.Now()
		}
		nd.met.onStorageFlush(len(muts)) // atomic instruments; worker-safe
		if err := st.AppendBatch(muts); err != nil {
			return err
		}
		if len(traced) > 0 {
			// One group-committed fsync; every traced op in the run
			// waited the full interval. Stamped here, it overlaps the
			// network phase the main loop opened at broadcast time. The
			// width marks whether the interval was a shared cross-group
			// barrier (sync coalescing) rather than a private fsync.
			t1 := time.Now()
			width := barrierWidth(st)
			for _, id := range traced {
				nd.cfg.Tracer.ObserveFsync(id, nd.cfg.ID, t0, t1, width)
			}
		}
		muts, traced = muts[:0], traced[:0]
		return nil
	}
	done := persistDone{n: len(reqs)}
	for _, req := range reqs {
		if req.setState {
			if err := flush(); err != nil {
				return persistDone{err: err, n: len(reqs)}
			}
			if err := st.SetState(req.term, req.vote); err != nil {
				return persistDone{err: err, n: len(reqs)}
			}
		}
		pre := req.muts
		if req.snap != nil {
			if req.snapAfter < len(pre) {
				pre = pre[:req.snapAfter]
			}
			muts = append(muts, pre...)
			if err := flush(); err != nil {
				return persistDone{err: err, n: len(reqs)}
			}
			if err := st.SaveSnapshot(req.snap.index, req.snap.term, req.snap.data); err != nil {
				return persistDone{err: err, n: len(reqs)}
			}
			if req.snapAfter < len(req.muts) {
				muts = append(muts, req.muts[req.snapAfter:]...)
			}
		} else {
			muts = append(muts, pre...)
		}
		traced = append(traced, req.traced...)
		done.msgs = append(done.msgs, req.msgs...)
		done.replies = append(done.replies, req.replies...)
	}
	if err := flush(); err != nil {
		return persistDone{err: err, n: len(reqs)}
	}
	return done
}

// onPersistDone runs on the main loop when a run of batches lands:
// raise durableIndex to the run's last (possibly clamped) target,
// externalize the fenced bundles, and count the leader's self-ack
// toward quorum — advanceCommit sees the disk as just another
// matchIndex.
func (nd *Node) onPersistDone(d persistDone) {
	n := d.n
	if n < 1 {
		n = 1
	}
	// Clamping keeps targets non-decreasing, so the run's last is its
	// highest.
	target := nd.pendingPersist[n-1]
	nd.pendingPersist = nd.pendingPersist[n:]
	nd.met.onPersistDepth(len(nd.persistQ))
	if d.err != nil {
		nd.fatal = d.err
		return
	}
	if target > nd.durableIndex {
		nd.durableIndex = target
	}
	for _, m := range d.msgs {
		_ = nd.cfg.Endpoint.Send(m.to, m.payload)
	}
	for _, r := range d.replies {
		r.ch <- r.reply
	}
	if nd.hs.state == Leader && nd.ls != nil {
		nd.met.onSelfAckLag(nd.hs.commitIndex - nd.durableIndex)
		if nd.durableIndex > nd.ls.matchIndex[nd.cfg.ID] {
			nd.ls.matchIndex[nd.cfg.ID] = nd.durableIndex
			nd.advanceCommit()
		}
	}
}

// stageSnapshot stages a snapshot record for the persist worker,
// remembering how many already-staged log mutations precede it. A
// second snapshot in one iteration flushes the first as its own batch —
// record order on disk must match the logical order of mutations.
func (nd *Node) stageSnapshot(index, term int, data []byte) {
	if nd.pendingSnap != nil {
		nd.stagePersistBatch(nil, nil)
	}
	nd.pendingSnap = &snapStage{index: index, term: term, data: data}
	nd.snapAfterMuts = len(nd.pendingLog)
}

// enqueueApply hands one item to the apply worker; a full queue blocks
// the main loop (bounded-queue backpressure, never dropped work).
func (nd *Node) enqueueApply(it applyItem) {
	nd.applyQ <- it
	nd.met.onApplyDepth(len(nd.applyQ))
}

// enqueueApplyEntries ships the newly committed range (old, index] to
// the apply worker and closes the traced network phase: with the fsync
// interval stamped independently by the persist worker, network runs
// from append/broadcast to quorum commit and the two may overlap.
func (nd *Node) enqueueApplyEntries(old, index int) {
	ents := make([]Entry, 0, index-old)
	for i := old + 1; i <= index; i++ {
		e, _ := nd.hs.log.entryAt(i)
		ents = append(ents, e)
	}
	var traced []applyTrace
	if len(nd.traced) > 0 {
		committed := time.Now()
		for i := old + 1; i <= index; i++ {
			if op, ok := nd.traced[i]; ok {
				nd.cfg.Tracer.ObservePhase(op.id, rtrace.PhaseNetwork, nd.cfg.ID, op.appended, committed)
				traced = append(traced, applyTrace{id: op.id, committed: committed})
				delete(nd.traced, i)
			}
		}
	}
	nd.hs.lastApplied = index // the enqueued frontier; applied publishes the real one
	nd.enqueueApply(applyItem{first: old + 1, entries: ents, term: nd.hs.currentTerm, traced: traced})
}

// applyWorker owns the state machine: applies committed batches in
// order, publishes the applied index, releases parked read waiters, and
// drives snapshot compaction (it is the only goroutine that may call
// SnapshotData concurrently with applies).
func (nd *Node) applyWorker() {
	defer nd.workers.Done()
	applied := nd.applied.current()
	snapBase := nd.bootSnapIndex
	var waits []applyWait
	dead := false // a fatal error was reported; drain without applying
	for {
		select {
		case it := <-nd.applyQ:
			if dead {
				continue
			}
			switch {
			case it.wait != nil:
				waits = append(waits, *it.wait)
			case it.restore != nil:
				sm, ok := nd.cfg.StateMachine.(Snapshotter)
				if !ok {
					dead = nd.applyFatal(fmt.Errorf("raft: install snapshot: state machine is not a Snapshotter"))
					continue
				}
				if err := sm.RestoreSnapshot(it.restore.index, it.restore.data); err != nil {
					dead = nd.applyFatal(fmt.Errorf("raft: install snapshot: %w", err))
					continue
				}
				applied = it.restore.index
				snapBase = it.restore.index
				nd.emit(Event{Kind: EventApplied, Node: nd.cfg.ID, Term: it.term, Index: applied, Command: nil})
			default:
				for i, e := range it.entries {
					idx := it.first + i
					if nd.cfg.StateMachine != nil {
						nd.cfg.StateMachine.Apply(idx, e.Command)
					}
					nd.met.onApply()
					nd.emit(Event{Kind: EventApplied, Node: nd.cfg.ID, Term: it.term, Index: idx, Command: e.Command})
				}
				if n := it.first + len(it.entries) - 1; n > applied {
					applied = n
				}
				if len(it.traced) > 0 {
					now := time.Now()
					for _, tr := range it.traced {
						nd.cfg.Tracer.ObservePhase(tr.id, rtrace.PhaseApply, nd.cfg.ID, tr.committed, now)
					}
				}
			}
			nd.applied.advance(applied)
			waits = releaseApplyWaits(nd, waits, applied)
			snapBase = nd.maybeCompactAsync(applied, snapBase)
		case <-nd.stopped:
			return
		}
	}
}

// releaseApplyWaits answers every parked read whose index the state
// machine has now covered. Reply channels are buffered and single-use,
// so the sends never block the worker.
func releaseApplyWaits(nd *Node, waits []applyWait, applied int) []applyWait {
	if len(waits) == 0 {
		return waits
	}
	kept := waits[:0]
	for _, aw := range waits {
		if applied >= aw.index {
			nd.met.onReadServed(readModeLabel(aw.lease), aw.w.t0)
			if aw.w.trace != 0 {
				nd.cfg.Tracer.ObservePhase(aw.w.trace, rtrace.PhaseApply, nd.cfg.ID, aw.w.confirmed, time.Now())
			}
			aw.w.ch <- proposeReply{index: aw.index}
		} else {
			kept = append(kept, aw)
		}
	}
	return kept
}

// maybeCompactAsync is the apply-side compaction trigger: once the
// applied index runs SnapshotThreshold past the last snapshot base, the
// worker captures the state machine's snapshot (consistent: it is the
// sole applier) and offers it to the main loop, which compacts the log
// and stages the durable record. A busy main loop skips the offer; the
// next batch retries.
func (nd *Node) maybeCompactAsync(applied, snapBase int) int {
	if nd.cfg.SnapshotThreshold <= 0 || applied-snapBase < nd.cfg.SnapshotThreshold {
		return snapBase
	}
	sm, ok := nd.cfg.StateMachine.(Snapshotter)
	if !ok {
		return snapBase
	}
	data, err := sm.SnapshotData()
	if err != nil {
		nd.applyFatal(fmt.Errorf("raft: snapshot: %w", err))
		return snapBase
	}
	select {
	case nd.compactCh <- compactReq{index: applied, data: data}:
		return applied
	default:
		return snapBase
	}
}

// onCompactReady runs on the main loop: discard the log prefix the
// snapshot covers and stage the durable record. The snapshot's index is
// committed and applied, so the entries it covers can never be
// truncated out from under it.
func (nd *Node) onCompactReady(c compactReq) {
	if c.index <= nd.hs.log.snapIndex {
		return // a restart or InstallSnapshot already moved past it
	}
	nd.met.onSnapshot()
	nd.hs.log.compactTo(c.index)
	nd.snapCache = snapCache{index: nd.hs.log.snapIndex, data: c.data}
	if nd.pipePersist {
		nd.stageSnapshot(nd.hs.log.snapIndex, nd.hs.log.snapTerm, c.data)
	}
	nd.cfg.Recorder.Note(nd.cfg.ID, "raft: compacted through index %d", nd.hs.log.snapIndex)
}

// applyFatal reports a fatal apply-side error to the main loop. The
// worker keeps draining its queue afterward so the loop can never block
// on a dead consumer; the loop stops the node when it sees the error.
func (nd *Node) applyFatal(err error) bool {
	select {
	case nd.applyErrCh <- err:
	default:
	}
	return true
}

// appliedView is the applied index the main loop may externalize: the
// notifier's published value in pipelined mode (the apply worker is the
// authority), hs.lastApplied in sync mode.
func (nd *Node) appliedView() int {
	if nd.pipeApply {
		return nd.applied.current()
	}
	return nd.hs.lastApplied
}
