package raft

import (
	"context"
	"testing"
	"time"

	"ooc/internal/netsim"
	"ooc/internal/sim"
)

func TestClientRequiresNodes(t *testing.T) {
	if _, err := NewClient(nil); err == nil {
		t.Fatal("empty client accepted")
	}
}

func TestClientSubmitFollowsRedirects(t *testing.T) {
	c := newCluster(t, 3, 61)
	client, err := NewClient(c.nodes)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	idx, node, err := client.Submit(ctx, KVCommand{Op: "set", Key: "via", Value: "client"})
	if err != nil {
		t.Fatal(err)
	}
	if idx < 1 {
		t.Fatalf("index = %d", idx)
	}
	if st := c.nodes[node].Status(); st.State != Leader && st.LeaderID == -1 {
		// Leadership may have moved since; only sanity-check the id.
		t.Logf("accepting node %d no longer leader: %v", node, st)
	}
	c.waitApplied(idx, 0, 1, 2)
	for id, kv := range c.kvs {
		if v, ok := kv.Get("via"); !ok || v != "client" {
			t.Fatalf("node %d: via=%q %v", id, v, ok)
		}
	}
}

func TestClientSubmitWaitCommits(t *testing.T) {
	c := newCluster(t, 3, 67)
	client, err := NewClient(c.nodes)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		key := string(rune('a' + i))
		idx, err := client.SubmitWait(ctx, KVCommand{Op: "set", Key: key, Value: key})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		// Committed means at least the accepting node has applied it;
		// poll the whole cluster for convergence.
		c.waitApplied(idx, 0, 1, 2)
	}
	for id, kv := range c.kvs {
		if kv.Len() != 5 {
			t.Fatalf("node %d has %d keys", id, kv.Len())
		}
	}
}

func TestClientSurvivesLeaderCrash(t *testing.T) {
	c := newCluster(t, 5, 71)
	client, err := NewClient(c.nodes)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := client.SubmitWait(ctx, KVCommand{Op: "set", Key: "before", Value: "x"}); err != nil {
		t.Fatal(err)
	}
	leader := c.waitLeader()
	c.nw.Crash(leader)

	idx, err := client.SubmitWait(ctx, KVCommand{Op: "set", Key: "after", Value: "y"})
	if err != nil {
		t.Fatalf("submit after leader crash: %v", err)
	}
	var survivors []int
	for id := range c.nodes {
		if !c.nw.Crashed(id) {
			survivors = append(survivors, id)
		}
	}
	c.waitApplied(idx, survivors...)
	for _, id := range survivors {
		if v, ok := c.kvs[id].Get("after"); !ok || v != "y" {
			t.Fatalf("survivor %d: after=%q %v", id, v, ok)
		}
	}
}

func TestClientContextCancelled(t *testing.T) {
	nw := netsim.New(1)
	node, err := NewNode(Config{ID: 0, Endpoint: nw.Node(0), RNG: sim.NewRNG(1),
		ElectionTimeout: time.Hour}) // never elects: Submit must spin until ctx ends
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	node.Start(runCtx)
	client, err := NewClient([]*Node{node}, WithClientBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, _, err := client.Submit(ctx, "x"); err == nil {
		t.Fatal("submit succeeded without a leader")
	}
}

func TestRaftReplicationUnderLossyNetwork(t *testing.T) {
	// 10% message loss: heartbeat-driven retries must still converge.
	const n = 3
	nw := netsim.New(n, netsim.WithSeed(73), netsim.WithDropRate(0.10))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rng := sim.NewRNG(73)
	kvs := make([]*KVStore, n)
	nodes := make([]*Node, n)
	for id := 0; id < n; id++ {
		kvs[id] = &KVStore{}
		node, err := NewNode(Config{
			ID:                id,
			Endpoint:          nw.Node(id),
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   testElection,
			HeartbeatInterval: testHeartbeat,
			StateMachine:      kvs[id],
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		node.Start(ctx)
	}
	client, err := NewClient(nodes)
	if err != nil {
		t.Fatal(err)
	}
	var lastIdx int
	for i := 0; i < 10; i++ {
		idx, err := client.SubmitWait(ctx, KVCommand{Op: "set", Key: "lossy", Value: string(rune('0' + i))})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		lastIdx = idx
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, kv := range kvs {
			if kv.AppliedIndex() < lastIdx {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lossy replication did not converge")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for id, kv := range kvs {
		if v, _ := kv.Get("lossy"); v != "9" {
			t.Fatalf("node %d: lossy=%q", id, v)
		}
	}
}

func TestRaftReplicationUnderDuplication(t *testing.T) {
	// Full duplication: every message delivered twice. Idempotent append
	// handling must keep logs and state machines correct.
	const n = 3
	nw := netsim.New(n, netsim.WithSeed(79), netsim.WithDupRate(1))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rng := sim.NewRNG(79)
	kvs := make([]*KVStore, n)
	nodes := make([]*Node, n)
	for id := 0; id < n; id++ {
		kvs[id] = &KVStore{}
		node, err := NewNode(Config{
			ID:                id,
			Endpoint:          nw.Node(id),
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   testElection,
			HeartbeatInterval: testHeartbeat,
			StateMachine:      kvs[id],
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		node.Start(ctx)
	}
	client, err := NewClient(nodes)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := client.SubmitWait(ctx, KVCommand{Op: "set", Key: "dup", Value: "once"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, kv := range kvs {
			if kv.AppliedIndex() < idx {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replication under duplication did not converge")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for id, node := range nodes {
		st := node.Status()
		if st.LogLength != idx {
			t.Fatalf("node %d log length %d, want %d (duplicated appends?)", id, st.LogLength, idx)
		}
	}
}

func TestClientBackoffGrowsCappedAndJittered(t *testing.T) {
	c := &Client{backoff: time.Millisecond, backoffMax: 8 * time.Millisecond, rng: sim.NewRNG(7)}
	// The pause after attempt k lies in [base*2^k/2, base*2^k), capped.
	for attempt := 0; attempt < 12; attempt++ {
		exp := time.Millisecond << attempt
		if exp > c.backoffMax {
			exp = c.backoffMax
		}
		for i := 0; i < 50; i++ {
			d := c.nextBackoff(attempt)
			if d < exp/2 || d >= exp {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, exp/2, exp)
			}
		}
	}
	// Same seed, same sequence: deterministic under simulation.
	a := &Client{backoff: time.Millisecond, backoffMax: 8 * time.Millisecond, rng: sim.NewRNG(42)}
	b := &Client{backoff: time.Millisecond, backoffMax: 8 * time.Millisecond, rng: sim.NewRNG(42)}
	for attempt := 0; attempt < 8; attempt++ {
		if da, db := a.nextBackoff(attempt), b.nextBackoff(attempt); da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, da, db)
		}
	}
}
