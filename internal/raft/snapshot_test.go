package raft

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"ooc/internal/netsim"
	"ooc/internal/sim"
)

func TestLogCompactTo(t *testing.T) {
	l := logOf(1, 1, 2, 2, 3)
	l.compactTo(3)
	if l.snapIndex != 3 || l.snapTerm != 2 {
		t.Fatalf("snap = %d/%d", l.snapIndex, l.snapTerm)
	}
	if l.lastIndex() != 5 || l.lastTerm() != 3 {
		t.Fatalf("log = %v", l)
	}
	// Compacted entries are gone; the marker still answers termAt.
	if _, ok := l.entryAt(2); ok {
		t.Fatal("compacted entry still readable")
	}
	if term, ok := l.termAt(3); !ok || term != 2 {
		t.Fatalf("termAt(snap) = %d %v", term, ok)
	}
	if _, ok := l.termAt(2); ok {
		t.Fatal("termAt below snapshot reported ok")
	}
	// Remaining tail is intact.
	if e, ok := l.entryAt(5); !ok || e.Term != 3 {
		t.Fatalf("entryAt(5) = %v %v", e, ok)
	}
	// Compaction is monotonic and ignores stale/unknown indexes.
	l.compactTo(2)
	if l.snapIndex != 3 {
		t.Fatal("compactTo went backwards")
	}
	l.compactTo(99)
	if l.snapIndex != 3 {
		t.Fatal("compactTo beyond log succeeded")
	}
}

func TestLogSliceAfterCompaction(t *testing.T) {
	l := logOf(1, 2, 3, 4)
	l.compactTo(2)
	if got := l.slice(1); len(got) != 2 || got[0].Term != 3 {
		t.Fatalf("slice into compacted region = %v", got)
	}
	if got := l.slice(4); len(got) != 1 || got[0].Term != 4 {
		t.Fatalf("slice(4) = %v", got)
	}
}

func TestLogAppendAfterWithCompactedPrefix(t *testing.T) {
	l := logOf(1, 1, 2)
	l.compactTo(2)
	// Re-delivery spanning the compacted region must skip what is gone
	// and append the genuinely new suffix.
	lastNew, _ := l.appendAfter(1, entries(1, 2, 2))
	if lastNew != 4 {
		t.Fatalf("lastNew = %d", lastNew)
	}
	if l.lastIndex() != 4 || l.lastTerm() != 2 {
		t.Fatalf("log = %v", l)
	}
}

func TestLogRestoreSnapshot(t *testing.T) {
	// Fresh log: snapshot replaces everything.
	l := &raftLog{}
	l.restoreSnapshot(5, 2)
	if l.lastIndex() != 5 || l.lastTerm() != 2 || len(l.entries) != 0 {
		t.Fatalf("log = %v", l)
	}
	// Log already containing the snapshot point keeps its live suffix.
	l2 := logOf(1, 1, 2, 3)
	l2.restoreSnapshot(3, 2)
	if l2.lastIndex() != 4 || l2.lastTerm() != 3 {
		t.Fatalf("suffix lost: %v", l2)
	}
	// Conflicting log is discarded wholesale.
	l3 := logOf(1, 1, 1, 1)
	l3.restoreSnapshot(3, 2)
	if l3.lastIndex() != 3 || len(l3.entries) != 0 {
		t.Fatalf("conflict not discarded: %v", l3)
	}
}

func TestKVStoreSnapshotRoundTrip(t *testing.T) {
	var kv KVStore
	kv.Apply(1, KVCommand{Op: "set", Key: "a", Value: "1"})
	kv.Apply(2, KVCommand{Op: "set", Key: "b", Value: "2"})
	data, err := kv.SnapshotData()
	if err != nil {
		t.Fatal(err)
	}
	var restored KVStore
	if err := restored.RestoreSnapshot(2, data); err != nil {
		t.Fatal(err)
	}
	if v, _ := restored.Get("a"); v != "1" {
		t.Fatalf("a=%q", v)
	}
	if restored.AppliedIndex() != 2 {
		t.Fatalf("applied = %d", restored.AppliedIndex())
	}
	if err := restored.RestoreSnapshot(1, []byte("garbage")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestLeaderCompactsAtThreshold(t *testing.T) {
	nw := netsim.New(1)
	kv := &KVStore{}
	node, err := NewNode(Config{
		ID: 0, Endpoint: nw.Node(0), RNG: sim.NewRNG(1),
		ElectionTimeout:   testElection,
		HeartbeatInterval: testHeartbeat,
		StateMachine:      kv,
		SnapshotThreshold: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	node.Start(ctx)
	deadline := time.Now().Add(10 * time.Second)
	for node.Status().State != Leader {
		if time.Now().After(deadline) {
			t.Fatal("no leader")
		}
		time.Sleep(time.Millisecond)
	}
	var lastIdx int
	for i := 0; i < 12; i++ {
		idx, err := node.Propose(ctx, KVCommand{Op: "set", Key: fmt.Sprintf("k%d", i), Value: "v"})
		if err != nil {
			t.Fatal(err)
		}
		lastIdx = idx
	}
	for kv.AppliedIndex() < lastIdx {
		time.Sleep(time.Millisecond)
	}
	st := node.Status()
	if st.SnapshotIndex < 5 {
		t.Fatalf("no compaction happened: %+v", st)
	}
	if st.LogLength != lastIdx || st.LastApplied != lastIdx {
		t.Fatalf("log bookkeeping wrong after compaction: %+v", st)
	}
	if kv.Len() != 12 {
		t.Fatalf("state machine lost keys: %d", kv.Len())
	}
}

func TestLaggardCatchesUpViaSnapshot(t *testing.T) {
	// A node isolated while the cluster commits far past the compaction
	// threshold must be caught up with InstallSnapshot, not entry replay.
	const n = 3
	nw := netsim.New(n, netsim.WithSeed(83))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rng := sim.NewRNG(83)
	kvs := make([]*KVStore, n)
	nodes := make([]*Node, n)
	for id := 0; id < n; id++ {
		kvs[id] = &KVStore{}
		node, err := NewNode(Config{
			ID:                id,
			Endpoint:          nw.Node(id),
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   testElection,
			HeartbeatInterval: testHeartbeat,
			StateMachine:      kvs[id],
			SnapshotThreshold: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		node.Start(ctx)
	}
	client, err := NewClient(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.SubmitWait(ctx, KVCommand{Op: "set", Key: "w0", Value: "v"}); err != nil {
		t.Fatal(err)
	}

	// Isolate a follower, then commit far beyond the threshold.
	leader := -1
	deadline := time.Now().Add(10 * time.Second)
	for leader == -1 {
		if time.Now().After(deadline) {
			t.Fatal("no leader")
		}
		for id, node := range nodes {
			if node.Status().State == Leader {
				leader = id
			}
		}
		time.Sleep(time.Millisecond)
	}
	isolated := (leader + 1) % n
	var rest []int
	for id := 0; id < n; id++ {
		if id != isolated {
			rest = append(rest, id)
		}
	}
	nw.Partition(rest)

	var lastIdx int
	for i := 0; i < 15; i++ {
		idx, err := client.SubmitWait(ctx, KVCommand{Op: "set", Key: fmt.Sprintf("bulk%d", i), Value: "x"})
		if err != nil {
			t.Fatal(err)
		}
		lastIdx = idx
	}
	// The leader must have compacted past the laggard's log.
	deadline = time.Now().Add(10 * time.Second)
	for nodes[leader].Status().SnapshotIndex <= nodes[isolated].Status().LogLength {
		if time.Now().After(deadline) {
			t.Fatalf("leader never compacted past the laggard: leader=%+v laggard=%+v",
				nodes[leader].Status(), nodes[isolated].Status())
		}
		time.Sleep(2 * time.Millisecond)
	}

	nw.Heal()
	deadline = time.Now().Add(15 * time.Second)
	for kvs[isolated].AppliedIndex() < lastIdx {
		if time.Now().After(deadline) {
			t.Fatalf("laggard never caught up: %+v", nodes[isolated].Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Snapshot-based catch-up: the laggard's own log must now start at a
	// compaction point, and its state machine must hold every key.
	if st := nodes[isolated].Status(); st.SnapshotIndex == 0 {
		t.Fatalf("laggard caught up without a snapshot: %+v", st)
	}
	for i := 0; i < 15; i++ {
		if _, ok := kvs[isolated].Get(fmt.Sprintf("bulk%d", i)); !ok {
			t.Fatalf("laggard missing bulk%d", i)
		}
	}
	if _, ok := kvs[isolated].Get("w0"); !ok {
		t.Fatal("laggard missing pre-partition key")
	}
}

func TestSnapshotPersistsAcrossRestart(t *testing.T) {
	// Compaction + Storage + crash-recovery together: a node restarted
	// from a store containing a snapshot record must come back with the
	// snapshot applied and only the log tail in memory.
	store := NewMemStorage()
	kv := &KVStore{}
	nw := netsim.New(1)
	node, err := NewNode(Config{
		ID: 0, Endpoint: nw.Node(0), RNG: sim.NewRNG(9),
		ElectionTimeout:   testElection,
		HeartbeatInterval: testHeartbeat,
		StateMachine:      kv,
		Storage:           store,
		SnapshotThreshold: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	node.Start(ctx)
	deadline := time.Now().Add(10 * time.Second)
	for node.Status().State != Leader {
		if time.Now().After(deadline) {
			t.Fatal("no leader")
		}
		time.Sleep(time.Millisecond)
	}
	var lastIdx int
	for i := 0; i < 10; i++ {
		idx, err := node.Propose(ctx, KVCommand{Op: "set", Key: fmt.Sprintf("k%d", i), Value: "v"})
		if err != nil {
			t.Fatal(err)
		}
		lastIdx = idx
	}
	for kv.AppliedIndex() < lastIdx {
		time.Sleep(time.Millisecond)
	}
	snapBefore := node.Status().SnapshotIndex
	if snapBefore < 4 {
		t.Fatalf("no compaction before restart: %+v", node.Status())
	}
	// Stop and reboot from the same store with a fresh state machine.
	cancel()
	<-node.Done()
	nw.Restart(0)
	kv2 := &KVStore{}
	node2, err := NewNode(Config{
		ID: 0, Endpoint: nw.Node(0), RNG: sim.NewRNG(10),
		ElectionTimeout:   testElection,
		HeartbeatInterval: testHeartbeat,
		StateMachine:      kv2,
		Storage:           store,
		SnapshotThreshold: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Restored pre-Start: snapshot already applied.
	if kv2.AppliedIndex() < snapBefore {
		t.Fatalf("snapshot not restored: applied=%d want>=%d", kv2.AppliedIndex(), snapBefore)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	node2.Start(ctx2)
	deadline = time.Now().Add(10 * time.Second)
	for kv2.AppliedIndex() < lastIdx {
		if time.Now().After(deadline) {
			t.Fatalf("restarted node did not reapply tail: %+v", node2.Status())
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		if _, ok := kv2.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("restarted node missing k%d", i)
		}
	}
	if st := node2.Status(); st.SnapshotIndex != snapBefore && st.SnapshotIndex < 4 {
		t.Fatalf("snapshot marker lost across restart: %+v", st)
	}
}

func TestFileStorageSnapshotRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raft.log")
	s, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateAndAppend(0, entries(1, 1, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot(3, 2, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateAndAppend(4, entries(3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapIndex != 3 || st.SnapTerm != 2 || string(st.SnapData) != "snap" {
		t.Fatalf("snapshot record: %+v", st)
	}
	// Tail: global indexes 4 (term 2) and 5 (term 3).
	if len(st.Entries) != 2 || st.Entries[0].Term != 2 || st.Entries[1].Term != 3 {
		t.Fatalf("tail: %+v", st.Entries)
	}
}
