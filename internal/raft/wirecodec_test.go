package raft

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"ooc/internal/codec/bin"
)

type customCmd struct {
	N    int
	Tags []string
}

func init() { gob.Register(customCmd{}) }

func TestEntryCodecRoundTrip(t *testing.T) {
	cases := [][]Entry{
		nil,
		{},
		{{Term: 1, Command: Noop{}}},
		{{Term: 2, Command: KVCommand{Op: "set", Key: "k", Value: "v"}}},
		{{Term: 3, Command: DS{Value: "decided"}}},
		{{Term: 4, Command: DS{Value: 42}}},
		{{Term: 5, Command: DS{Value: nil}}},
		{{Term: 6, Command: []byte{1, 2, 3}}},
		{{Term: 7, Command: "bare string"}},
		{{Term: 8, Command: int64(-9)}},
		{{Term: 9, Command: true}},
		{{Term: 10, Command: nil}},
		{{Term: 11, Command: customCmd{N: 7, Tags: []string{"a", "b"}}}}, // gob fallback
		{
			{Term: 12, Command: KVCommand{Op: "set", Key: "x", Value: "1"}},
			{Term: 12, Command: KVCommand{Op: "delete", Key: "x"}},
			{Term: 13, Command: Noop{}},
		},
	}
	var dec EntryDecoder
	for i, es := range cases {
		enc, err := appendEntries(nil, es)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		r := bin.NewReader(enc)
		got, err := dec.ReadEntries(r, nil)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		want := es
		if len(es) == 0 {
			want = nil // empty and nil slices both decode to nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: round trip = %#v, want %#v", i, got, want)
		}
		if r.Len() != 0 {
			t.Fatalf("case %d: %d undecoded bytes", i, r.Len())
		}
	}
}

func TestEntryCodecMatchesGobSemantics(t *testing.T) {
	// The differential oracle at the entry level: a sequence encoded by
	// the binary codec and by gob must decode to the same values.
	es := []Entry{
		{Term: 1, Command: Noop{}},
		{Term: 2, Command: KVCommand{Op: "set", Key: "alpha", Value: "1"}},
		{Term: 2, Command: DS{Value: "v"}},
		{Term: 3, Command: customCmd{N: 1, Tags: []string{"t"}}},
	}
	enc, err := appendEntries(nil, es)
	if err != nil {
		t.Fatal(err)
	}
	var dec EntryDecoder
	viaCodec, err := dec.ReadEntries(bin.NewReader(enc), nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(es); err != nil {
		t.Fatal(err)
	}
	var viaGob []Entry
	if err := gob.NewDecoder(&buf).Decode(&viaGob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaCodec, viaGob) {
		t.Fatalf("codec path %#v != gob path %#v", viaCodec, viaGob)
	}
}

func TestEntryDecoderInternsRepeats(t *testing.T) {
	es := []Entry{{Term: 1, Command: KVCommand{Op: "set", Key: "hot-key", Value: "vv"}}}
	enc, err := appendEntries(nil, es)
	if err != nil {
		t.Fatal(err)
	}
	var dec EntryDecoder
	r := bin.NewReader(enc)
	first, err := dec.ReadEntries(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Steady state: decoding the same bytes again must not allocate —
	// strings intern, the boxed command interns, and the entry slice is
	// recycled by the caller.
	scratch := first
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(enc)
		scratch, err = dec.ReadEntries(r, scratch)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("steady-state entry decode allocates %.1f/op; want 0", allocs)
	}
}

func TestReadEntriesRejectsHugeCount(t *testing.T) {
	// A corrupt count must error out before sizing any allocation.
	enc := bin.AppendUvarint(nil, 1<<40)
	var dec EntryDecoder
	if _, err := dec.ReadEntries(bin.NewReader(enc), nil); err == nil {
		t.Fatal("oversized entry count decoded without error")
	}
}
