package raft

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
)

// StateMachine consumes committed log entries in index order.
// Apply is called from a single goroutine: the node's dedicated apply
// worker under the default pipelined write path, or the main loop under
// Config.SyncPipeline. An Apply that blocks never loses or reorders
// entries — the bounded apply queue (Config.ApplyQueueDepth) fills and
// backpressures the main loop — but it stalls ReadIndex waiters and,
// once the queue is full, the whole node.
type StateMachine interface {
	Apply(index int, command any)
}

// Snapshotter is the optional state-machine extension log compaction
// needs: SnapshotData captures the full applied state, RestoreSnapshot
// replaces it. A node only compacts (and can only install received
// snapshots) when its StateMachine implements Snapshotter.
type Snapshotter interface {
	// SnapshotData serializes the state as of the last applied entry.
	SnapshotData() ([]byte, error)
	// RestoreSnapshot replaces the state with the snapshot taken at the
	// given log index.
	RestoreSnapshot(index int, data []byte) error
}

// Noop is the empty entry every new leader appends at the start of its
// term (Raft §5.4.2 / §8): committing it is the only safe way to learn
// that all preceding entries are committed too, since leaders may only
// count replicas for current-term entries. State machines ignore it.
type Noop struct{}

// String implements fmt.Stringer.
func (Noop) String() string { return "noop" }

// DS is the paper's single command, D&S(v): "decide on the value v and
// stop applying any further commands thereafter".
type DS struct {
	Value any
}

// String implements fmt.Stringer.
func (d DS) String() string { return fmt.Sprintf("D&S(%v)", d.Value) }

// DecideOnce is the state machine induced by D&S: it decides on the first
// command applied and ignores everything after — "the processor decides
// upon the first value it sees in its log". The zero value is ready to
// use.
type DecideOnce struct {
	mu      sync.Mutex
	decided bool
	value   any
	index   int
	done    chan struct{}
}

var _ StateMachine = (*DecideOnce)(nil)

// NewDecideOnce returns an undecided machine.
func NewDecideOnce() *DecideOnce {
	return &DecideOnce{done: make(chan struct{})}
}

// Apply implements StateMachine.
func (d *DecideOnce) Apply(index int, command any) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.decided {
		return
	}
	if _, isNoop := command.(Noop); isNoop {
		return // leader no-ops carry no decision value
	}
	d.decided = true
	d.index = index
	if ds, ok := command.(DS); ok {
		d.value = ds.Value
	} else {
		d.value = command
	}
	if d.done != nil {
		close(d.done)
	}
}

// Decided reports the decision, if one was reached.
func (d *DecideOnce) Decided() (value any, index int, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.value, d.index, d.decided
}

// Done is closed once the machine decides. It returns nil for a zero
// value constructed without NewDecideOnce.
func (d *DecideOnce) Done() <-chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.done
}

// KVCommand mutates a KVStore: Set writes, Delete removes.
type KVCommand struct {
	Op    string // "set" or "delete"
	Key   string
	Value string
}

// String implements fmt.Stringer.
func (c KVCommand) String() string { return fmt.Sprintf("%s(%s=%s)", c.Op, c.Key, c.Value) }

// KVStore is a replicated key-value state machine — the kind of
// application log Raft was designed for, used by cmd/raftkv and the
// raftkv example. The zero value is ready to use.
type KVStore struct {
	mu      sync.Mutex
	data    map[string]string
	applied int
}

var _ StateMachine = (*KVStore)(nil)

// Apply implements StateMachine.
func (s *KVStore) Apply(index int, command any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		s.data = make(map[string]string)
	}
	s.applied = index
	cmd, ok := command.(KVCommand)
	if !ok {
		return // foreign commands are ignored, not fatal
	}
	switch cmd.Op {
	case "set":
		s.data[cmd.Key] = cmd.Value
	case "delete":
		delete(s.data, cmd.Key)
	}
}

// Get reads a key.
func (s *KVStore) Get(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	return v, ok
}

// Len reports the number of keys.
func (s *KVStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// AppliedIndex reports the last applied log index.
func (s *KVStore) AppliedIndex() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

var _ Snapshotter = (*KVStore)(nil)

// SnapshotData implements Snapshotter by gob-encoding the key space.
func (s *KVStore) SnapshotData() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.data); err != nil {
		return nil, fmt.Errorf("raft: kv snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreSnapshot implements Snapshotter.
func (s *KVStore) RestoreSnapshot(index int, data []byte) error {
	var m map[string]string
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return fmt.Errorf("raft: kv restore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if m == nil {
		m = make(map[string]string)
	}
	s.data = m
	s.applied = index
	return nil
}

// Snapshot returns a sorted key=value listing, for tests and the CLI.
func (s *KVStore) Snapshot() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for k, v := range s.data {
		out = append(out, k+"="+v)
	}
	sort.Strings(out)
	return out
}
