package raft

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// The regression benchmarks in this file pin the storage-codec win from
// the gob removal. gobEncodeRecord replicates the old FileStorage.append
// encode path exactly — a fresh gob.Encoder per record, which re-emits
// type metadata and re-walks the any-typed commands every time — so the
// comparison stays honest even now that the production path no longer
// uses gob.

func gobEncodeRecord(scratch *bytes.Buffer, w *bufio.Writer, r record) error {
	scratch.Reset()
	if err := gob.NewEncoder(scratch).Encode(r); err != nil {
		return err
	}
	payload := scratch.Bytes()
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func benchEntries(n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{Term: 3, Command: KVCommand{
			Op:    "set",
			Key:   fmt.Sprintf("key-%03d", i%16),
			Value: "value-payload-0123456789",
		}}
	}
	return es
}

// BenchmarkRecordEncode compares pure encode cost (no I/O) for a log
// record with 1/8/64 entries. The codec path must report 0 allocs/op.
func BenchmarkRecordEncode(b *testing.B) {
	for _, n := range []int{1, 8, 64} {
		es := benchEntries(n)
		rec := record{Kind: recordLog, PrevIndex: 41, Entries: es}

		b.Run(fmt.Sprintf("codec/entries=%d", n), func(b *testing.B) {
			scratch := make([]byte, 0, 1<<16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				scratch, err = appendRecord(scratch[:0], rec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(scratch)))
		})

		b.Run(fmt.Sprintf("gob/entries=%d", n), func(b *testing.B) {
			var scratch bytes.Buffer
			w := bufio.NewWriterSize(discardWriter{}, 1<<16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := gobEncodeRecord(&scratch, w, rec); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(scratch.Len()))
		})
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkFileStorageAppend measures durable records/sec end to end —
// encode, buffered write, and fsync — for both encodings, appending a
// 1-entry log record per op the way a leader persists an un-batched
// proposal. fsync dominates wall time on most filesystems; the codec's
// win here is the removed per-record allocations and the ~7x smaller
// frame, which show in allocs/op and throughput under load.
func BenchmarkFileStorageAppend(b *testing.B) {
	es := benchEntries(1)

	b.Run("codec", func(b *testing.B) {
		s, err := OpenFileStorage(filepath.Join(b.TempDir(), "wal"))
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = s.Close() }()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.TruncateAndAppend(i, es); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("gob", func(b *testing.B) {
		f, err := os.OpenFile(filepath.Join(b.TempDir(), "wal"), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = f.Close() }()
		w := bufio.NewWriterSize(f, 1<<16)
		var scratch bytes.Buffer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := record{Kind: recordLog, PrevIndex: i, Entries: es}
			if err := gobEncodeRecord(&scratch, w, rec); err != nil {
				b.Fatal(err)
			}
			if err := w.Flush(); err != nil {
				b.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestRecordEncodeZeroAlloc is the acceptance gate for the disk layer:
// a warmed scratch buffer means appending a steady-state log record
// performs no heap allocation at all.
func TestRecordEncodeZeroAlloc(t *testing.T) {
	rec := record{Kind: recordLog, PrevIndex: 7, Entries: benchEntries(8)}
	scratch := make([]byte, 0, 1<<16)
	var err error
	allocs := testing.AllocsPerRun(100, func() {
		scratch, err = appendRecord(scratch[:0], rec)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("record encode allocates %.1f/op; want 0", allocs)
	}
}

// TestRecordCodecSmallerThanGob pins the size win: the binary frame for
// a typical 1-entry log record must be well under half the gob frame.
func TestRecordCodecSmallerThanGob(t *testing.T) {
	rec := record{Kind: recordLog, PrevIndex: 41, Entries: benchEntries(1)}
	bin, err := appendRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		t.Fatal(err)
	}
	if len(bin)*2 >= buf.Len() {
		t.Fatalf("codec record %dB not <50%% of gob record %dB", len(bin), buf.Len())
	}
}
