package raft

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeTarget is a controllable SyncTarget: an optional gate blocks
// SyncDevice until the test releases it (one token per call), and err
// is returned from every fsync.
type fakeTarget struct {
	mu    sync.Mutex
	syncs int
	err   error
	gate  chan struct{}
}

func (t *fakeTarget) SyncDevice() error {
	if t.gate != nil {
		<-t.gate
	}
	t.mu.Lock()
	t.syncs++
	t.mu.Unlock()
	return t.err
}

func (t *fakeTarget) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncs
}

// waitPending blocks until exactly n requests are parked on c.
func waitPending(t *testing.T, c *SyncCoalescer, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		got := len(c.pending)
		c.mu.Unlock()
		if got == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d pending requests (have %d)", n, got)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Sequential syncs never coalesce: every request flies alone at width 1
// and pays its own barrier.
func TestSyncerSequentialWidthOne(t *testing.T) {
	c := NewSyncCoalescer(SyncerConfig{})
	tgt := &fakeTarget{}
	for i := 0; i < 5; i++ {
		width, err := c.Sync(tgt)
		if err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
		if width != 1 {
			t.Fatalf("sync %d: width = %d, want 1", i, width)
		}
	}
	if got := tgt.count(); got != 5 {
		t.Fatalf("fsyncs = %d, want 5", got)
	}
	if c.Requests() != 5 || c.Barriers() != 5 || c.Coalesced() != 0 {
		t.Fatalf("requests/barriers/coalesced = %d/%d/%d, want 5/5/0",
			c.Requests(), c.Barriers(), c.Coalesced())
	}
}

// K requests parked behind a slow barrier leader all ride the leader's
// one barrier: every caller sees width K+1, one barrier is paid, and
// every target's own file was fsynced before release.
func TestSyncerCoalescesConcurrentRequests(t *testing.T) {
	const waiters = 3
	c := NewSyncCoalescer(SyncerConfig{})
	leader := &fakeTarget{gate: make(chan struct{})}

	leaderWidth := make(chan int, 1)
	go func() {
		w, _ := c.Sync(leader)
		leaderWidth <- w
	}()

	// The leader is now blocked inside its own fsync; park the cohort.
	var wg sync.WaitGroup
	targets := make([]*fakeTarget, waiters)
	widths := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		// The leader holds busy from the instant it enters Sync, but
		// give it time to actually reach SyncDevice before parking.
		for c.Requests() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		targets[i] = &fakeTarget{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			widths[i], _ = c.Sync(targets[i])
		}(i)
	}
	waitPending(t, c, waiters)

	leader.gate <- struct{}{} // release the leader's fsync
	wg.Wait()

	if w := <-leaderWidth; w != waiters+1 {
		t.Fatalf("leader width = %d, want %d", w, waiters+1)
	}
	for i, w := range widths {
		if w != waiters+1 {
			t.Fatalf("waiter %d width = %d, want %d", i, w, waiters+1)
		}
		if targets[i].count() != 1 {
			t.Fatalf("waiter %d fsyncs = %d, want 1 (released without a clean file)", i, targets[i].count())
		}
	}
	if c.Requests() != waiters+1 || c.Barriers() != 1 || c.Coalesced() != waiters {
		t.Fatalf("requests/barriers/coalesced = %d/%d/%d, want %d/1/%d",
			c.Requests(), c.Barriers(), c.Coalesced(), waiters+1, waiters)
	}
}

// A failing file fails only its own group: cohort members covered by the
// same barrier still get nil.
func TestSyncerErrorIsolation(t *testing.T) {
	c := NewSyncCoalescer(SyncerConfig{})
	leader := &fakeTarget{gate: make(chan struct{})}
	bad := &fakeTarget{err: errors.New("bad fd")}
	good := &fakeTarget{}

	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Sync(leader)
		leaderErr <- err
	}()
	for c.Requests() == 0 {
		time.Sleep(100 * time.Microsecond)
	}

	errs := make([]chan error, 2)
	for i, tgt := range []*fakeTarget{bad, good} {
		errs[i] = make(chan error, 1)
		go func(i int, tgt *fakeTarget) {
			_, err := c.Sync(tgt)
			errs[i] <- err
		}(i, tgt)
	}
	waitPending(t, c, 2)
	leader.gate <- struct{}{}

	if err := <-leaderErr; err != nil {
		t.Fatalf("leader error = %v, want nil", err)
	}
	if err := <-errs[0]; err == nil || err.Error() != "bad fd" {
		t.Fatalf("bad target error = %v, want bad fd", err)
	}
	if err := <-errs[1]; err != nil {
		t.Fatalf("good target error = %v, want nil (one group's bad fd leaked)", err)
	}
}

// Requests that park while the leader is fsyncing the stolen cohort
// miss the round and get promoted: the oldest leads a fresh barrier
// instead of waiting for an idle edge.
func TestSyncerHandoffPromotesLateArrival(t *testing.T) {
	c := NewSyncCoalescer(SyncerConfig{})
	leader := &fakeTarget{gate: make(chan struct{})}
	stolen := &fakeTarget{gate: make(chan struct{})}
	late := &fakeTarget{}

	done := make(chan int, 3)
	go func() { w, _ := c.Sync(leader); done <- w }()
	for c.Requests() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	go func() { w, _ := c.Sync(stolen); done <- w }()
	waitPending(t, c, 1)

	// Release the leader's own fsync; it steals `stolen` and blocks on
	// stolen's gated fsync. Wait for the steal (pending drains to zero)
	// before issuing `late`, so it provably parks for the *next* round.
	leader.gate <- struct{}{}
	waitPending(t, c, 0)
	go func() { w, _ := c.Sync(late); done <- w }()
	waitPending(t, c, 1)
	stolen.gate <- struct{}{}

	widths := map[int]int{}
	for i := 0; i < 3; i++ {
		widths[<-done]++
	}
	// Round 1 covered leader+stolen (width 2); the promoted late request
	// ran its own round at width 1.
	if widths[2] != 2 || widths[1] != 1 {
		t.Fatalf("widths = %v, want two at 2 and one at 1", widths)
	}
	if c.Barriers() != 2 || c.Requests() != 3 || c.Coalesced() != 1 {
		t.Fatalf("requests/barriers/coalesced = %d/%d/%d, want 3/2/1",
			c.Requests(), c.Barriers(), c.Coalesced())
	}
	if late.count() != 1 {
		t.Fatalf("late target fsyncs = %d, want 1", late.count())
	}
}

// PerGroup mode is the uncoalesced baseline: every request pays its own
// barrier even under contention.
func TestSyncerPerGroupNeverCoalesces(t *testing.T) {
	c := NewSyncCoalescer(SyncerConfig{PerGroup: true})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tgt := &fakeTarget{}
			for j := 0; j < 25; j++ {
				width, err := c.Sync(tgt)
				if err != nil || width != 1 {
					panic("per-group sync must be width 1 and error-free")
				}
			}
		}()
	}
	wg.Wait()
	if c.Requests() != 200 || c.Barriers() != 200 || c.Coalesced() != 0 {
		t.Fatalf("requests/barriers/coalesced = %d/%d/%d, want 200/200/0",
			c.Requests(), c.Barriers(), c.Coalesced())
	}
}

// Uncontended Sync allocates nothing: the single-group degenerate case
// must not pay for machinery it doesn't use.
func TestSyncerUncontendedPathAllocFree(t *testing.T) {
	c := NewSyncCoalescer(SyncerConfig{})
	tgt := &fakeTarget{}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := c.Sync(tgt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("uncontended Sync allocates %.1f objects/op, want 0", allocs)
	}
}

// Hammer the syncer from many groups at once: every request must be
// covered exactly once (own fsync done before return), and the request
// accounting identity Requests == Barriers + Coalesced must hold. Run
// under -race this doubles as the data-race check for the handoff path.
func TestSyncerConcurrentStress(t *testing.T) {
	const groups, iters = 16, 200
	c := NewSyncCoalescer(SyncerConfig{Disk: NewDisk(10 * time.Microsecond)})
	var wg sync.WaitGroup
	targets := make([]*fakeTarget, groups)
	for g := 0; g < groups; g++ {
		targets[g] = &fakeTarget{}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				width, err := c.Sync(targets[g])
				if err != nil {
					panic(err)
				}
				if width < 1 || width > groups {
					panic("impossible barrier width")
				}
			}
		}(g)
	}
	wg.Wait()
	for g, tgt := range targets {
		if tgt.count() != iters {
			t.Fatalf("group %d fsyncs = %d, want %d (missed or double coverage)", g, tgt.count(), iters)
		}
	}
	if c.Requests() != groups*iters {
		t.Fatalf("requests = %d, want %d", c.Requests(), groups*iters)
	}
	if c.Requests() != c.Barriers()+c.Coalesced() {
		t.Fatalf("accounting identity broken: %d requests != %d barriers + %d coalesced",
			c.Requests(), c.Barriers(), c.Coalesced())
	}
	if c.Barriers() >= c.Requests() {
		t.Fatalf("no coalescing under %d-way contention: %d barriers for %d requests",
			groups, c.Barriers(), c.Requests())
	}
}
