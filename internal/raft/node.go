package raft

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ooc/internal/metrics"
	"ooc/internal/msgnet"
	"ooc/internal/rtrace"
	"ooc/internal/sim"
	"ooc/internal/trace"
)

// ErrNotLeader is returned by Propose on a non-leader; it carries the
// last known leader as a redirect hint.
type ErrNotLeader struct {
	LeaderID int // none (-1) when unknown
}

// Error implements error.
func (e ErrNotLeader) Error() string {
	return fmt.Sprintf("raft: not leader (known leader: %d)", e.LeaderID)
}

// ErrStopped is returned once the node's context has been cancelled.
var ErrStopped = errors.New("raft: node stopped")

// Config configures a Node.
type Config struct {
	// ID is this node's index in [0, N); Endpoint its network handle.
	ID       int
	Endpoint msgnet.Endpoint
	// Clock defaults to the real clock; tests inject sim.NewFakeClock().
	Clock sim.Clock
	// RNG drives election-timer randomization. Required.
	RNG *sim.RNG
	// ElectionTimeout is the base T of the randomized election timer;
	// actual timeouts are uniform in [T, 2T). Default 150ms.
	ElectionTimeout time.Duration
	// HeartbeatInterval is the leader's replication cadence. Default
	// ElectionTimeout/5.
	HeartbeatInterval time.Duration
	// StateMachine receives committed entries in order; may be nil.
	StateMachine StateMachine
	// Storage, if non-nil, persists currentTerm/votedFor/log: the node
	// restores from it in NewNode and persists before acting on any state
	// change. A node restarted with the same Storage resumes safely (it
	// keeps its vote and log across the crash).
	Storage Storage
	// SnapshotThreshold triggers log compaction: once more than this many
	// entries have been applied beyond the last snapshot, the node asks
	// its StateMachine (which must implement Snapshotter) for a snapshot
	// and discards the covered log prefix. Followers that fall behind the
	// compaction point are caught up with InstallSnapshot. 0 disables
	// compaction.
	SnapshotThreshold int
	// PreVote enables the PreVote extension: before a real election the
	// node probes whether a majority would grant it a vote for term+1,
	// and only then increments its term. A processor cut off from the
	// majority therefore never inflates its term, and cannot depose a
	// healthy leader when it reconnects.
	PreVote bool
	// ManualCampaign disables automatic candidacy on timeout: the timer
	// only emits EventTimeout and the application calls Campaign. This is
	// the mode the VAC decomposition runs in, where the reconciliator —
	// not the node — owns the timer's consequence.
	ManualCampaign bool
	// MaxEntriesPerAppend caps how many log entries one AppendEntries
	// message carries. Replication to a lagging follower proceeds in
	// pipelined windows of this size instead of re-sending the whole
	// suffix. Default 64; negative means unlimited (the pre-pipelining
	// behaviour).
	MaxEntriesPerAppend int
	// MaxInflightAppends caps how many unacknowledged entry-carrying
	// AppendEntries may be outstanding per follower — the pipeline
	// window. Once full, new entries wait for acks (or for the heartbeat
	// stall-recovery rewind). Default 4; minimum 1.
	MaxInflightAppends int
	// MaxProposalBatch caps how many queued Propose calls the leader
	// coalesces into a single log append, one storage flush, and one
	// broadcast per main-loop iteration. Default 64; minimum 1.
	MaxProposalBatch int
	// MaxReadBatch caps how many queued ReadIndex calls coalesce into a
	// single leadership-confirmation round (one heartbeat exchange serves
	// the whole batch). Default 256; minimum 1.
	MaxReadBatch int
	// SyncPipeline restores the fully ordered pre-pipeline write path:
	// every main-loop iteration fsyncs inline before any message leaves
	// and applies committed entries before the next iteration runs. The
	// zero value selects the pipelined path (see pipeline.go), which
	// overlaps the leader's fsync with replication and moves apply onto
	// a dedicated goroutine. Sync mode exists for the determinism
	// harnesses (per-seed traces stay byte-identical) and as the
	// before-side of the pipeline experiments.
	SyncPipeline bool
	// ApplyQueueDepth bounds the pipelined apply queue (items, where an
	// item is one committed batch, snapshot restore, or parked read). A
	// full queue blocks the main loop — backpressure, not loss. Default
	// 256; minimum 1. Ignored in SyncPipeline mode.
	ApplyQueueDepth int
	// LeaseDuration enables leader leases for the read fast path: after
	// each quorum-confirmed round the leader may serve ReadLease reads
	// without any further messaging until the lease (anchored at the
	// round's start) expires. 0 disables leases — lease-mode reads then
	// fall back to ReadIndex rounds. Safety requires the lease to expire
	// before any other node can be elected, so normalization clamps it to
	// 9/10 of ElectionTimeout (the missing tenth is the clock-skew
	// allowance), and enabling leases also enables the leader-stickiness
	// vote rule (a node refuses to vote while its election deadline is
	// unexpired — Raft dissertation §4.2.3). Every node in a cluster must
	// agree on whether leases are enabled.
	LeaseDuration time.Duration
	// Recorder, if non-nil, receives trace events.
	Recorder *trace.Recorder
	// Metrics, if non-nil, receives counters, gauges, and latency
	// histograms (term changes, elections, heartbeats, commit latency).
	Metrics *metrics.Registry
	// Tracer, if non-nil, receives per-request phase attribution for
	// sampled proposals and reads (internal/rtrace): queue, fsync,
	// network, and apply intervals observed from the main loop. Unsampled
	// requests (trace ID 0) cost a nil/zero check per hook.
	Tracer *rtrace.Tracer
	// Flight, if non-nil, is this node's always-on flight recorder:
	// role transitions, commit advances, proposal batches, read rounds,
	// and snapshot traffic are recorded into its bounded ring, and
	// elections trigger a dump (rtrace.Flight).
	Flight *rtrace.Flight
	// Syncer, if non-nil, is the node-wide sync coalescer this replica's
	// Storage should park its durability barriers on (see syncer.go).
	// One Syncer is shared by every Raft group co-located on a node, so
	// concurrent flushes from different groups merge into one device
	// barrier. It is wired into any Storage exposing
	// SetSyncer(*SyncCoalescer) — FileStorage does; wrappers that don't
	// forward it (SlowDisk) leave the barrier private. durableIndex
	// semantics are unchanged: a group's self-ack still waits for the
	// barrier that covers its own writes.
	Syncer *SyncCoalescer
}

func (c *Config) normalize() error {
	if c.Endpoint == nil {
		return errors.New("raft: Config.Endpoint is required")
	}
	if c.RNG == nil {
		return errors.New("raft: Config.RNG is required")
	}
	if c.ID < 0 || c.ID >= c.Endpoint.N() {
		return fmt.Errorf("raft: id %d out of range [0,%d)", c.ID, c.Endpoint.N())
	}
	if c.Clock == nil {
		c.Clock = sim.RealClock{}
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 150 * time.Millisecond
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.ElectionTimeout / 5
	}
	if c.MaxEntriesPerAppend == 0 {
		c.MaxEntriesPerAppend = 64
	} else if c.MaxEntriesPerAppend < 0 {
		c.MaxEntriesPerAppend = 0 // sliceLimit treats 0 as unlimited
	}
	if c.MaxInflightAppends < 1 {
		c.MaxInflightAppends = 4
	}
	if c.MaxProposalBatch < 1 {
		c.MaxProposalBatch = 64
	}
	if c.MaxReadBatch < 1 {
		c.MaxReadBatch = 256
	}
	if c.ApplyQueueDepth == 0 {
		c.ApplyQueueDepth = 256
	} else if c.ApplyQueueDepth < 1 {
		c.ApplyQueueDepth = 1
	}
	if max := c.ElectionTimeout * 9 / 10; c.LeaseDuration > max {
		c.LeaseDuration = max // clock-skew discount; see Config.LeaseDuration
	}
	return nil
}

// Node is one Raft processor. Create with NewNode, run with Start, then
// interact via Propose, Campaign, Status, and Subscribe. All protocol
// state is confined to the run goroutine.
type Node struct {
	cfg Config
	n   int
	met *nodeMetrics

	hs       hardState
	ls       *leaderState
	votes    map[int]bool
	preVotes map[int]bool // nil unless a pre-vote probe is in flight
	campaign any          // value to propose upon winning a manual campaign

	electionDeadline time.Time

	fatal error // set on persistence failure; stops the loop

	// Staged side effects of the current main-loop iteration (the
	// group-commit seam): handlers record durable mutations and outbound
	// messages here, and flush() applies them in order — all persistence
	// first (one Storage.AppendBatch, hence one fsync, however many
	// messages and proposals the iteration coalesced), then the sends and
	// proposal replies that externalize the persisted state.
	stateDirty bool
	pendingLog []LogMutation
	outbox     []outMsg
	replies    []stagedReply

	// Pipelined write path (see pipeline.go). pipeApply runs the apply
	// worker; pipePersist additionally runs the persist worker (it needs
	// a Storage to be worth a goroutine). durableIndex is the highest log
	// index the leader's own disk holds — its self-ack for quorum —
	// raised as persist batches complete (FIFO targets in
	// pendingPersist, clamped by truncations while in flight).
	pipeApply     bool
	pipePersist   bool
	applyQ        chan applyItem
	applyErrCh    chan error
	compactCh     chan compactReq
	persistQ      chan persistReq
	persistDoneCh chan persistDone

	durableIndex   int
	pendingPersist []int
	pendingSnap    *snapStage
	snapAfterMuts  int
	snapCache      snapCache
	bootSnapIndex  int

	// Read fast-path state (see read.go). Leader side: readSeq numbers
	// confirmation rounds, reads holds the unconfirmed ones, curRound is
	// this iteration's coalescing target, earlyReads park until the
	// term-opening no-op commits, and leaseUntil is the held lease's
	// expiry. Follower side: relay tracks reads forwarded to the leader,
	// and applyWaits parks confirmed reads until the state machine
	// catches up to their read index.
	readSeq    int
	reads      []*readRound
	curRound   *readRound
	earlyReads []readWaiter
	leaseUntil time.Time
	termStart  int // index of this leader term's opening no-op
	relaySeq   int64
	relay      map[int64]relayWait
	applyWaits []applyWait
	rstats     readStats

	// Per-request tracing bookkeeping (leader only, sampled proposals
	// only): traced maps a log index to its in-flight trace, and
	// tracedUnsynced lists the indexes whose fsync phase is still open —
	// closed by the next flushPersist. Both stay empty with tracing off,
	// so the hot path pays a len check.
	traced         map[int]*tracedOp
	tracedUnsynced []int

	proposeCh  chan proposeReq
	readCh     chan readReq
	campaignCh chan any
	statusCh   chan chan Status
	stopped    chan struct{}
	stopOnce   sync.Once
	done       chan struct{}
	workers    sync.WaitGroup

	subMu sync.Mutex
	subs  []*Subscription

	// applied publishes lastApplied to out-of-loop waiters (AwaitApplied);
	// see applied.go.
	applied *appliedNotifier
}

type outMsg struct {
	to      int
	payload any
}

type stagedReply struct {
	ch    chan proposeReply
	reply proposeReply
	// fenced marks a reply that externalizes durable state (a proposal
	// acceptance: "your entry is in the leader's log") and must wait for
	// the persist queue in pipelined mode. Redirects and read answers
	// claim nothing the disk has to back, so they leave immediately.
	fenced bool
}

type proposeReq struct {
	cmd   any
	reply chan proposeReply
	trace rtrace.ID // 0 unless this proposal is sampled
	enq   time.Time // queue-phase start; zero unless sampled
}

// tracedOp is the leader-side bookkeeping for one sampled proposal:
// which trace produced the log entry at this index, when it was appended,
// and when its local fsync completed (the network phase's start).
type tracedOp struct {
	id       rtrace.ID
	appended time.Time
	synced   time.Time
}

type proposeReply struct {
	index int
	err   error
}

// NewNode validates cfg and builds a node; call Start to run it. When
// cfg.Storage is set, the persisted term, vote, and log are restored
// here — the crash-recovery path.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	nd := &Node{
		cfg: cfg,
		n:   cfg.Endpoint.N(),
		met: newNodeMetrics(cfg.Metrics, cfg.ID),
		hs:  hardState{votedFor: none, state: Follower, leaderID: none},
		// Buffered so concurrent proposers queue up and the leader's
		// drain can coalesce them into one batch.
		proposeCh:  make(chan proposeReq, cfg.MaxProposalBatch),
		readCh:     make(chan readReq, cfg.MaxReadBatch),
		relay:      make(map[int64]relayWait),
		campaignCh: make(chan any, 1),
		statusCh:   make(chan chan Status),
		stopped:    make(chan struct{}),
		done:       make(chan struct{}),
	}
	var bootSnapData []byte
	if cfg.Syncer != nil && cfg.Storage != nil {
		if ss, ok := cfg.Storage.(interface{ SetSyncer(*SyncCoalescer) }); ok {
			ss.SetSyncer(cfg.Syncer)
		}
	}
	if cfg.Storage != nil {
		st, err := cfg.Storage.Load()
		if err != nil {
			return nil, fmt.Errorf("raft: restore: %w", err)
		}
		bootSnapData = st.SnapData
		nd.hs.currentTerm = st.Term
		nd.hs.votedFor = st.VotedFor
		nd.hs.log.entries = append([]Entry(nil), st.Entries...)
		if st.SnapIndex > 0 {
			nd.hs.log.snapIndex = st.SnapIndex
			nd.hs.log.snapTerm = st.SnapTerm
			nd.hs.commitIndex = st.SnapIndex
			nd.hs.lastApplied = st.SnapIndex
			if st.SnapData != nil {
				snap, ok := cfg.StateMachine.(Snapshotter)
				if !ok {
					return nil, errors.New("raft: restore: persisted snapshot but state machine is not a Snapshotter")
				}
				if err := snap.RestoreSnapshot(st.SnapIndex, st.SnapData); err != nil {
					return nil, fmt.Errorf("raft: restore snapshot: %w", err)
				}
			}
		}
	}
	nd.applied = newAppliedNotifier(nd.hs.lastApplied)
	nd.pipeApply = !cfg.SyncPipeline
	nd.pipePersist = nd.pipeApply && cfg.Storage != nil
	if nd.pipeApply {
		nd.applyQ = make(chan applyItem, cfg.ApplyQueueDepth)
		nd.applyErrCh = make(chan error, 1)
		nd.compactCh = make(chan compactReq, 1)
		nd.bootSnapIndex = nd.hs.log.snapIndex
		nd.snapCache = snapCache{index: nd.hs.log.snapIndex, data: bootSnapData}
	}
	if nd.pipePersist {
		nd.persistQ = make(chan persistReq, persistQueueCap)
		// Sized past the queue cap so the worker's completion send never
		// blocks: the loop may block toward the worker, never vice versa.
		nd.persistDoneCh = make(chan persistDone, persistQueueCap+2)
		nd.durableIndex = nd.hs.log.lastIndex() // the restored log IS the disk
	}
	return nd, nil
}

// persistSnapshot durably records a compaction snapshot. Any staged log
// mutations are flushed first so the record order on disk matches the
// logical order of mutations.
func (nd *Node) persistSnapshot(index, term int, data []byte) {
	if nd.cfg.Storage == nil || nd.fatal != nil {
		return
	}
	nd.flushPersist()
	if nd.fatal != nil {
		return
	}
	if err := nd.cfg.Storage.SaveSnapshot(index, term, data); err != nil {
		nd.fatal = err
	}
}

// persistState stages term and vote for the iteration's flush; on flush
// failure the node stops rather than risk violating election safety
// after a restart.
func (nd *Node) persistState() {
	if nd.cfg.Storage != nil {
		nd.stateDirty = true
	}
}

// persistLog stages a log mutation (Storage.TruncateAndAppend semantics)
// for the iteration's flush.
func (nd *Node) persistLog(prevIndex int, entries []Entry) {
	if nd.cfg.Storage == nil {
		return
	}
	nd.pendingLog = append(nd.pendingLog, LogMutation{PrevIndex: prevIndex, Entries: entries})
}

// flushPersist applies the staged durable mutations: term/vote first
// (scalar, last-write-wins on replay), then the log mutations as one
// group-committed batch — a single fsync on FileStorage regardless of
// how many messages and proposals this iteration coalesced.
func (nd *Node) flushPersist() {
	if nd.cfg.Storage == nil || nd.fatal != nil {
		nd.stateDirty = false
		nd.pendingLog = nd.pendingLog[:0]
		// No storage means no fsync phase: traced ops' network phase
		// starts at their append time instead.
		nd.tracedUnsynced = nd.tracedUnsynced[:0]
		return
	}
	if nd.stateDirty {
		nd.stateDirty = false
		if err := nd.cfg.Storage.SetState(nd.hs.currentTerm, nd.hs.votedFor); err != nil {
			nd.fatal = err
			nd.pendingLog = nd.pendingLog[:0]
			return
		}
	}
	if len(nd.pendingLog) > 0 {
		nd.met.onStorageFlush(len(nd.pendingLog))
		var t0 time.Time
		if len(nd.tracedUnsynced) > 0 {
			t0 = time.Now()
		}
		err := nd.cfg.Storage.AppendBatch(nd.pendingLog)
		nd.pendingLog = nd.pendingLog[:0]
		if len(nd.tracedUnsynced) > 0 {
			// The group-committed batch shares one fsync; every traced op in
			// it is attributed the full flush interval (they really did each
			// wait that long). The width records whether other groups shared
			// the covering device barrier too (sync coalescing).
			t1 := time.Now()
			width := barrierWidth(nd.cfg.Storage)
			for _, idx := range nd.tracedUnsynced {
				if op, ok := nd.traced[idx]; ok {
					nd.cfg.Tracer.ObserveFsync(op.id, nd.cfg.ID, t0, t1, width)
					op.synced = t1
				}
			}
			nd.tracedUnsynced = nd.tracedUnsynced[:0]
		}
		if err != nil {
			nd.fatal = err
		}
	}
}

// flush ends a main-loop iteration. In sync mode durable state hits
// storage first, and only then do the staged sends and proposal replies
// leave the node — the Raft rule that persistence precedes
// externalization, preserved across batching. In pipelined mode the
// same rule is enforced per message class instead (flushPipelined):
// fenced externalizations ride the persist queue while everything else
// departs immediately. A persistence failure drops the outbox (nothing
// may be externalized over unpersisted state) and stops the node.
func (nd *Node) flush() {
	if nd.pipePersist {
		nd.flushPipelined()
		return
	}
	nd.flushPersist()
	if nd.fatal != nil {
		nd.outbox = nd.outbox[:0]
		nd.replies = nd.replies[:0]
		return
	}
	for _, m := range nd.outbox {
		// Send failures mean we crashed or the network is gone; the
		// receive pump will notice and stop the loop, so they are safe to
		// drop here.
		_ = nd.cfg.Endpoint.Send(m.to, m.payload)
	}
	nd.outbox = nd.outbox[:0]
	for _, r := range nd.replies {
		r.ch <- r.reply
	}
	nd.replies = nd.replies[:0]
	// A read round only coalesces joiners within the iteration whose
	// flush carries its probe; later reads need a fresh round.
	nd.curRound = nil
}

// Start launches the node's goroutines. The node runs until ctx is
// cancelled or its endpoint dies (crash injection / network close).
func (nd *Node) Start(ctx context.Context) {
	// Buffered so the receive pump can run ahead of the main loop and the
	// loop's drain can coalesce a burst of messages into one iteration —
	// one storage flush, one batch of sends.
	msgCh := make(chan msgnet.Message, 4*maxMessageDrain)
	if nd.pipeApply {
		nd.workers.Add(1)
		go nd.applyWorker()
	}
	if nd.pipePersist {
		nd.workers.Add(1)
		go nd.persistWorker()
	}
	go nd.receive(ctx, msgCh)
	go nd.run(ctx, msgCh)
	// Done() must not fire while a worker could still be mid-write: a
	// persist worker's fsync outlives the main loop by up to one run,
	// and callers close the Storage as soon as Done fires.
	go func() {
		<-nd.stopped
		nd.workers.Wait()
		close(nd.done)
	}()
}

// maxMessageDrain bounds how many queued messages one main-loop
// iteration handles before flushing; keeps a flooded node responsive to
// timers and Status requests.
const maxMessageDrain = 64

// receive pumps the endpoint into the main loop.
func (nd *Node) receive(ctx context.Context, msgCh chan<- msgnet.Message) {
	for {
		m, err := nd.cfg.Endpoint.Recv(ctx)
		if err != nil {
			close(msgCh)
			return
		}
		select {
		case msgCh <- m:
		case <-ctx.Done():
			return
		case <-nd.stopped:
			return
		}
	}
}

// run is the main loop; all hardState access happens here.
func (nd *Node) run(ctx context.Context, msgCh <-chan msgnet.Message) {
	defer nd.shutdown()

	clock := nd.cfg.Clock
	nd.electionDeadline = clock.Now().Add(nd.randTimeout())
	electionTimer := clock.NewTimer(nd.randTimeout())
	heartbeat := clock.NewTimer(nd.cfg.HeartbeatInterval)
	defer electionTimer.Stop()
	defer heartbeat.Stop()

	for {
		select {
		case <-ctx.Done():
			return

		case m, ok := <-msgCh:
			if !ok {
				return // endpoint crashed or network closed
			}
			// Coalesce a burst: handle every already-delivered message in
			// this iteration so their log mutations share one storage
			// flush and their acks leave in one batch.
			nd.handleMessage(m)
			for drained := 1; drained < maxMessageDrain; drained++ {
				var more bool
				select {
				case m, ok = <-msgCh:
					if !ok {
						nd.flush()
						return
					}
					nd.handleMessage(m)
					more = true
				default:
				}
				if !more {
					break
				}
			}

		case <-electionTimer.C():
			now := clock.Now()
			if !now.Before(nd.electionDeadline) && nd.hs.state != Leader {
				nd.onElectionTimeout()
			}
			electionTimer.Reset(nd.timerSleep(clock))

		case <-heartbeat.C():
			if nd.hs.state == Leader {
				nd.met.onHeartbeat()
				if nd.cfg.LeaseDuration > 0 {
					nd.startLeaseRound() // keep an idle leader's lease warm
				}
				nd.broadcastHeartbeat()
			}
			heartbeat.Reset(nd.cfg.HeartbeatInterval)

		case req := <-nd.proposeCh:
			nd.handleProposeBatch(nd.drainProposals(req))

		case req := <-nd.readCh:
			nd.handleReadBatch(nd.drainReads(req))

		case v := <-nd.campaignCh:
			nd.campaign = v
			nd.becomeCandidate()

		case ch := <-nd.statusCh:
			ch <- nd.statusLocked()

		// Pipeline completions (nil channels in sync mode — the cases
		// then never fire): a persist batch landed (raise durableIndex,
		// externalize its fenced bundle, count the self-ack), the apply
		// worker offered a compaction snapshot, or it hit a fatal error.
		case d := <-nd.persistDoneCh:
			nd.onPersistDone(d)

		case c := <-nd.compactCh:
			nd.onCompactReady(c)

		case err := <-nd.applyErrCh:
			nd.fatal = err
		}
		nd.flush()
		if nd.fatal != nil {
			nd.cfg.Recorder.Note(nd.cfg.ID, "raft: fatal: %v", nd.fatal)
			return
		}
	}
}

// drainProposals collects the proposals already queued behind first, up
// to the coalescing cap — the batch handleProposeBatch turns into one
// append, one flush, one broadcast.
func (nd *Node) drainProposals(first proposeReq) []proposeReq {
	reqs := append(make([]proposeReq, 0, 8), first)
	for len(reqs) < nd.cfg.MaxProposalBatch {
		select {
		case r := <-nd.proposeCh:
			reqs = append(reqs, r)
		default:
			return reqs
		}
	}
	return reqs
}

// timerSleep computes how long the election timer should sleep: until the
// current deadline, which message arrivals keep pushing forward.
func (nd *Node) timerSleep(clock sim.Clock) time.Duration {
	d := nd.electionDeadline.Sub(clock.Now())
	if d <= 0 {
		// Deadline already due (we just acted on it, or it expires now):
		// sleep a fresh random interval.
		return nd.randTimeout()
	}
	return d
}

func (nd *Node) shutdown() {
	nd.stopOnce.Do(func() { close(nd.stopped) })
	nd.subMu.Lock()
	defer nd.subMu.Unlock()
	for _, s := range nd.subs {
		s.q.close()
	}
}

func (nd *Node) randTimeout() time.Duration {
	base := nd.cfg.ElectionTimeout
	return base + time.Duration(nd.cfg.RNG.Int63()%int64(base))
}

func (nd *Node) pushDeadline() {
	nd.electionDeadline = nd.cfg.Clock.Now().Add(nd.randTimeout())
}

// onElectionTimeout fires the paper's across-state response: "if Timer T
// runs out: initialize T randomly, increment term and start algorithm 7".
func (nd *Node) onElectionTimeout() {
	nd.pushDeadline()
	nd.emit(Event{Kind: EventTimeout, Node: nd.cfg.ID, Term: nd.hs.currentTerm})
	if nd.cfg.ManualCampaign {
		return
	}
	if nd.cfg.PreVote {
		nd.startPreVote()
		return
	}
	nd.becomeCandidate()
}

// startPreVote probes the cluster for a would-be election in term+1
// without touching any durable state.
func (nd *Node) startPreVote() {
	nd.preVotes = map[int]bool{nd.cfg.ID: true}
	if 2*len(nd.preVotes) > nd.n { // single-node cluster
		nd.becomeCandidate()
		return
	}
	probe := PreVote{
		Term:         nd.hs.currentTerm + 1,
		CandidateID:  nd.cfg.ID,
		LastLogIndex: nd.hs.log.lastIndex(),
		LastLogTerm:  nd.hs.log.lastTerm(),
	}
	for peer := 0; peer < nd.n; peer++ {
		if peer != nd.cfg.ID {
			nd.send(peer, probe)
		}
	}
}

// onPreVote answers a probe. The grant rule is deliberately stricter
// than a real vote: the responder must itself have lost contact with a
// leader (its election deadline expired, or it knows no leader), so a
// live leader's followers collectively veto disruption.
func (nd *Node) onPreVote(from int, m PreVote) {
	leaderAlive := nd.hs.leaderID != none && nd.cfg.Clock.Now().Before(nd.electionDeadline)
	grant := m.Term > nd.hs.currentTerm &&
		nd.hs.log.upToDate(m.LastLogIndex, m.LastLogTerm) &&
		!leaderAlive
	nd.send(from, PreVoteReply{Term: nd.hs.currentTerm, Granted: grant})
}

func (nd *Node) onPreVoteReply(from int, m PreVoteReply) {
	if m.Term > nd.hs.currentTerm {
		nd.stepDown(m.Term)
		return
	}
	if nd.preVotes == nil || nd.hs.state == Leader || !m.Granted {
		return
	}
	nd.preVotes[from] = true
	if 2*len(nd.preVotes) > nd.n {
		nd.preVotes = nil
		nd.becomeCandidate()
	}
}

// Campaign asks the node to start an election now and, upon winning, to
// propose value (nil = nothing). It is how the VAC reconciliator restarts
// the protocol. Non-blocking: a pending campaign request is replaced.
func (nd *Node) Campaign(value any) {
	select {
	case nd.campaignCh <- value:
	case <-nd.stopped:
	default:
		// An election request is already queued; one is enough.
	}
}

// Propose appends a command to the replicated log. Only the leader
// accepts; others return ErrNotLeader with a redirect hint. Success means
// the entry is in the leader's log, not yet that it is committed — watch
// EventCommitted or the state machine for that.
func (nd *Node) Propose(ctx context.Context, cmd any) (index int, err error) {
	req := proposeReq{cmd: cmd, reply: make(chan proposeReply, 1)}
	if id := rtrace.FromContext(ctx); id != 0 {
		req.trace = id
		req.enq = nd.cfg.Tracer.Now(id)
	}
	select {
	case nd.proposeCh <- req:
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-nd.stopped:
		return 0, ErrStopped
	}
	select {
	case rep := <-req.reply:
		return rep.index, rep.err
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-nd.stopped:
		return 0, ErrStopped
	}
}

// StateMachine returns the node's configured state machine (nil if
// none). It is fixed at construction, so the accessor is safe from any
// goroutine; the Client uses it to serve reads from the local store
// after a ReadIndex round proves the applied state is fresh enough.
func (nd *Node) StateMachine() StateMachine { return nd.cfg.StateMachine }

// Done is closed when the node has fully stopped: the main loop has
// exited AND the persist/apply workers have drained, so the Storage has
// no in-flight writes and may be closed. Restart orchestration
// (crash-recovery with a shared endpoint or storage) must wait for it
// before booting a replacement node.
func (nd *Node) Done() <-chan struct{} { return nd.done }

// Status snapshots the node's state.
func (nd *Node) Status() Status {
	ch := make(chan Status, 1)
	select {
	case nd.statusCh <- ch:
		return <-ch
	case <-nd.stopped:
		return Status{ID: nd.cfg.ID, LeaderID: none}
	}
}

func (nd *Node) statusLocked() Status {
	return Status{
		ID:            nd.cfg.ID,
		Term:          nd.hs.currentTerm,
		State:         nd.hs.state,
		LeaderID:      nd.hs.leaderID,
		CommitIndex:   nd.hs.commitIndex,
		LastApplied:   nd.appliedView(),
		LogLength:     nd.hs.log.lastIndex(),
		LastLogTerm:   nd.hs.log.lastTerm(),
		SnapshotIndex: nd.hs.log.snapIndex,
	}
}

// Subscription delivers a node's events in order, without loss.
type Subscription struct {
	q *eventQueue
}

// Next returns the next event, blocking until one arrives, the context is
// cancelled, or the node stops.
func (s *Subscription) Next(ctx context.Context) (Event, error) {
	return s.q.pop(ctx)
}

// Subscribe registers a new event stream. Events emitted before the
// subscription are not replayed.
func (nd *Node) Subscribe() *Subscription {
	s := &Subscription{q: newEventQueue()}
	nd.subMu.Lock()
	defer nd.subMu.Unlock()
	nd.subs = append(nd.subs, s)
	return s
}

func (nd *Node) emit(e Event) {
	nd.subMu.Lock()
	defer nd.subMu.Unlock()
	for _, s := range nd.subs {
		s.q.push(e)
	}
}

// ---- message handling (main loop only) ----

func (nd *Node) handleMessage(m msgnet.Message) {
	if id, inner := msgnet.TraceOf(m.Payload); id != 0 {
		// A sampled request's replication traffic: unwrap for the handlers
		// and leave a correlation event in the flight ring.
		m.Payload = inner
		nd.cfg.Flight.Record(rtrace.EvNote, rtrace.ID(id), int64(m.From), 0, "traced-recv")
	}
	switch p := m.Payload.(type) {
	case RequestVote:
		nd.onRequestVote(m.From, p)
	case RequestVoteReply:
		nd.onRequestVoteReply(m.From, p)
	case PreVote:
		nd.onPreVote(m.From, p)
	case PreVoteReply:
		nd.onPreVoteReply(m.From, p)
	case AppendEntries:
		nd.onAppendEntries(m.From, p)
	case InstallSnapshot:
		nd.onInstallSnapshot(m.From, p)
	case AppendEntriesReply:
		nd.onAppendEntriesReply(m.From, p)
	case ReadIndexRequest:
		nd.onReadIndexRequest(m.From, p)
	case ReadIndexReply:
		nd.onReadIndexReply(m.From, p)
	default:
		nd.cfg.Recorder.Note(nd.cfg.ID, "raft: dropping foreign message %T", m.Payload)
	}
}

// send stages an outbound message; it leaves the node in flush(), after
// this iteration's durable state has hit storage.
func (nd *Node) send(to int, payload any) {
	nd.outbox = append(nd.outbox, outMsg{to: to, payload: payload})
}

func (nd *Node) onRequestVote(from int, m RequestVote) {
	// Leader stickiness (dissertation §4.2.3), enabled with leases: while
	// this node's election deadline is unexpired it has heard from a live
	// leader recently, and granting a vote could elect a new leader inside
	// that leader's read lease. Refuse without even updating the term —
	// checked before the stepDown below precisely because stepping down
	// would erase the evidence of the live leader.
	if nd.cfg.LeaseDuration > 0 && m.Term > nd.hs.currentTerm &&
		nd.hs.leaderID != none && nd.cfg.Clock.Now().Before(nd.electionDeadline) {
		nd.send(from, RequestVoteReply{Term: nd.hs.currentTerm, VoteGranted: false})
		return
	}
	if m.Term > nd.hs.currentTerm {
		nd.stepDown(m.Term)
	}
	grant := false
	if m.Term == nd.hs.currentTerm &&
		(nd.hs.votedFor == none || nd.hs.votedFor == m.CandidateID) &&
		nd.hs.log.upToDate(m.LastLogIndex, m.LastLogTerm) {
		grant = true
		nd.hs.votedFor = m.CandidateID
		nd.persistState()
		nd.pushDeadline()
	}
	nd.send(from, RequestVoteReply{Term: nd.hs.currentTerm, VoteGranted: grant})
}

func (nd *Node) onRequestVoteReply(from int, m RequestVoteReply) {
	if m.Term > nd.hs.currentTerm {
		nd.stepDown(m.Term)
		return
	}
	if nd.hs.state != Candidate || m.Term != nd.hs.currentTerm || !m.VoteGranted {
		return
	}
	nd.votes[from] = true
	if 2*len(nd.votes) > nd.n {
		nd.becomeLeader()
	}
}

func (nd *Node) onAppendEntries(from int, m AppendEntries) {
	if m.Term > nd.hs.currentTerm {
		nd.stepDown(m.Term)
	}
	if m.Term < nd.hs.currentTerm {
		nd.send(from, AppendEntriesReply{Term: nd.hs.currentTerm, Success: false})
		return
	}
	// Same term: recognize the leader; a candidate yields.
	if nd.hs.state != Follower {
		nd.hs.state = Follower
		nd.ls = nil
		nd.emit(Event{Kind: EventBecameFollower, Node: nd.cfg.ID, Term: nd.hs.currentTerm})
	}
	nd.hs.leaderID = m.LeaderID
	nd.pushDeadline()

	// Entries at or below our compaction point are committed and applied
	// already; renormalize the consistency check to the snapshot marker.
	if m.PrevLogIndex < nd.hs.log.snapIndex {
		cut := nd.hs.log.snapIndex - m.PrevLogIndex
		if cut >= len(m.Entries) {
			nd.send(from, AppendEntriesReply{Term: nd.hs.currentTerm, Success: true, MatchIndex: nd.hs.log.snapIndex, ReadID: m.ReadID})
			return
		}
		m.Entries = m.Entries[cut:]
		m.PrevLogIndex = nd.hs.log.snapIndex
		m.PrevLogTerm = nd.hs.log.snapTerm
	}

	if !nd.hs.log.matches(m.PrevLogIndex, m.PrevLogTerm) {
		hint := min(m.PrevLogIndex-1, nd.hs.log.lastIndex())
		// The rejection still echoes ReadID: this follower acknowledged the
		// sender as the current term's leader, which is all a ReadIndex
		// confirmation needs — log repair is a separate concern.
		nd.send(from, AppendEntriesReply{Term: nd.hs.currentTerm, Success: false, RejectHint: hint, ReadID: m.ReadID})
		return
	}
	before := nd.hs.log.lastIndex()
	lastNew, _ := nd.hs.log.appendAfter(m.PrevLogIndex, m.Entries)
	if len(m.Entries) > 0 {
		nd.persistLog(m.PrevLogIndex, m.Entries)
	}
	for idx := before + 1; idx <= nd.hs.log.lastIndex() && idx <= lastNew; idx++ {
		e, _ := nd.hs.log.entryAt(idx)
		nd.emit(Event{Kind: EventAppended, Node: nd.cfg.ID, Term: nd.hs.currentTerm, Index: idx, Command: e.Command})
	}
	if m.LeaderCommit > nd.hs.commitIndex {
		nd.setCommitIndex(min(m.LeaderCommit, lastNew))
	}
	nd.send(from, AppendEntriesReply{Term: nd.hs.currentTerm, Success: true, MatchIndex: lastNew, ReadID: m.ReadID})
}

func (nd *Node) onAppendEntriesReply(from int, m AppendEntriesReply) {
	if m.Term > nd.hs.currentTerm {
		nd.stepDown(m.Term)
		return
	}
	if nd.hs.state != Leader || m.Term != nd.hs.currentTerm {
		return
	}
	nd.ls.acked[from] = true // any current-term reply proves the pipe is live
	nd.onReadAck(from, m.ReadID)
	if m.Success {
		if nd.ls.inflight[from] > 0 {
			nd.ls.inflight[from]--
		}
		if m.MatchIndex > nd.ls.matchIndex[from] {
			nd.ls.matchIndex[from] = m.MatchIndex
		}
		// Only raise nextIndex: with pipelined sends in flight, a reply to
		// an older message must not rewind past entries already sent.
		if nd.ls.matchIndex[from]+1 > nd.ls.nextIndex[from] {
			nd.ls.nextIndex[from] = nd.ls.matchIndex[from] + 1
		}
		nd.advanceCommit()
		nd.sendAppend(from) // window slot freed; push more if pending
		return
	}
	// Rejected: the follower's log diverges at or below the probe's prev.
	// Drain the pipeline and rewind. The hint is anchored to the rejected
	// message, so the rewind makes progress even though sendAppend has
	// optimistically advanced nextIndex past the probe; without it, the
	// one-step decrement would only undo the bump and loop forever.
	nd.ls.inflight[from] = 0
	next := nd.ls.nextIndex[from] - 1
	if m.RejectHint+1 < next {
		next = m.RejectHint + 1
	}
	if next < 1 {
		next = 1
	}
	nd.ls.nextIndex[from] = next
	nd.sendAppend(from)
}

// ---- role transitions (main loop only) ----

func (nd *Node) stepDown(term int) {
	wasLeader := nd.hs.state != Follower
	if term != nd.hs.currentTerm {
		nd.met.onTermChange(term)
	}
	nd.met.dropPending()
	if wasLeader {
		nd.cfg.Flight.Record(rtrace.EvStepDown, 0, int64(term), int64(nd.hs.commitIndex), "")
	}
	// In-flight traced proposals die with the reign; their clients see
	// the error and close the spans.
	nd.traced = nil
	nd.tracedUnsynced = nd.tracedUnsynced[:0]
	nd.hs.currentTerm = term
	nd.hs.votedFor = none
	nd.hs.state = Follower
	nd.hs.leaderID = none
	nd.ls = nil
	nd.votes = nil
	nd.preVotes = nil
	nd.failReads()
	nd.persistState()
	nd.pushDeadline()
	if wasLeader {
		nd.emit(Event{Kind: EventBecameFollower, Node: nd.cfg.ID, Term: term})
	}
}

func (nd *Node) becomeCandidate() {
	nd.hs.currentTerm++
	nd.met.onTermChange(nd.hs.currentTerm)
	nd.met.onElection()
	// An election is an anomaly from the workload's point of view: dump
	// the flight ring so the run-up (lost heartbeats, drops, backlog) is
	// preserved before new-term traffic overwrites it.
	nd.cfg.Flight.Trigger(rtrace.EvElection, 0, int64(nd.hs.currentTerm), int64(nd.hs.commitIndex), "")
	nd.hs.state = Candidate
	nd.hs.votedFor = nd.cfg.ID
	nd.hs.leaderID = none
	nd.ls = nil
	nd.votes = map[int]bool{nd.cfg.ID: true}
	nd.failReads()
	nd.persistState()
	nd.pushDeadline()
	nd.emit(Event{Kind: EventBecameCandidate, Node: nd.cfg.ID, Term: nd.hs.currentTerm})
	nd.cfg.Recorder.Note(nd.cfg.ID, "raft: campaigning in term %d", nd.hs.currentTerm)

	if 2*len(nd.votes) > nd.n { // single-node cluster
		nd.becomeLeader()
		return
	}
	rv := RequestVote{
		Term:         nd.hs.currentTerm,
		CandidateID:  nd.cfg.ID,
		LastLogIndex: nd.hs.log.lastIndex(),
		LastLogTerm:  nd.hs.log.lastTerm(),
	}
	for peer := 0; peer < nd.n; peer++ {
		if peer != nd.cfg.ID {
			nd.send(peer, rv)
		}
	}
}

func (nd *Node) becomeLeader() {
	nd.met.onElectionWon()
	nd.cfg.Flight.Record(rtrace.EvBecameLeader, 0, int64(nd.hs.currentTerm), int64(nd.hs.log.lastIndex()), "")
	nd.hs.state = Leader
	nd.hs.leaderID = nd.cfg.ID
	nd.ls = newLeaderState(nd.n, nd.hs.log.lastIndex())
	if nd.pipePersist {
		// The self-ack is the disk's, not the in-memory log's: entries
		// still in the persist queue count toward quorum only when their
		// batch lands (onPersistDone).
		nd.ls.matchIndex[nd.cfg.ID] = nd.durableIndex
	} else {
		nd.ls.matchIndex[nd.cfg.ID] = nd.hs.log.lastIndex()
	}
	nd.emit(Event{Kind: EventBecameLeader, Node: nd.cfg.ID, Term: nd.hs.currentTerm})
	nd.cfg.Recorder.Note(nd.cfg.ID, "raft: leader of term %d", nd.hs.currentTerm)

	// The term-opening no-op (§5.4.2): without it, entries inherited from
	// earlier terms could never commit until a client happened to write.
	// Batched with any manual-campaign value: one persisted mutation.
	cmds := []any{Noop{}}
	if nd.campaign != nil {
		cmds = append(cmds, nd.campaign)
		nd.campaign = nil
	}
	// Reads are gated on this index committing: until then the new leader
	// cannot know the true commit frontier (§6.4 step 1, §5.4.2).
	nd.termStart = nd.appendLocalBatch(cmds)
	nd.leaseUntil = time.Time{} // a new reign earns its lease from scratch
	nd.advanceCommit()
	nd.broadcastAppend()
}

// handleProposeBatch coalesces a drained batch of proposals into one log
// append, one staged persistence mutation, and one broadcast — the
// leader's group-commit hot path. Replies are staged so they reach the
// proposers only after the batch is durable.
func (nd *Node) handleProposeBatch(reqs []proposeReq) {
	if nd.hs.state != Leader {
		rep := proposeReply{err: ErrNotLeader{LeaderID: nd.hs.leaderID}}
		for _, r := range reqs {
			nd.replies = append(nd.replies, stagedReply{ch: r.reply, reply: rep})
		}
		return
	}
	nd.met.onProposeBatch(len(reqs))
	cmds := make([]any, len(reqs))
	for i, r := range reqs {
		cmds[i] = r.cmd
	}
	first := nd.appendLocalBatch(cmds)
	var drained time.Time // one clock read even if several proposals are sampled
	for i, r := range reqs {
		nd.replies = append(nd.replies, stagedReply{ch: r.reply, reply: proposeReply{index: first + i}, fenced: true})
		if r.trace != 0 {
			if drained.IsZero() {
				drained = time.Now()
			}
			nd.cfg.Tracer.ObservePhase(r.trace, rtrace.PhaseQueue, nd.cfg.ID, r.enq, drained)
			if nd.traced == nil {
				nd.traced = make(map[int]*tracedOp)
			}
			nd.traced[first+i] = &tracedOp{id: r.trace, appended: drained}
			nd.tracedUnsynced = append(nd.tracedUnsynced, first+i)
		}
	}
	nd.cfg.Flight.Record(rtrace.EvProposeBatch, 0, int64(len(reqs)), int64(nd.hs.log.lastIndex()), "")
	nd.advanceCommit() // single-node clusters commit immediately
	nd.broadcastAppend()
}

// appendLocalBatch appends commands to the leader's own log as one
// persisted mutation and returns the global index of the first.
func (nd *Node) appendLocalBatch(cmds []any) int {
	first := nd.hs.log.lastIndex() + 1
	for _, cmd := range cmds {
		idx := nd.hs.log.appendEntry(Entry{Term: nd.hs.currentTerm, Command: cmd})
		nd.met.onAppendLocal(idx)
	}
	last := nd.hs.log.lastIndex()
	nd.persistLog(first-1, nd.hs.log.slice(first))
	if !nd.pipePersist {
		// Pipelined, the leader's self-ack lands with its fsync: see
		// onPersistDone. Here the inline flush below makes it durable
		// before anything externalizes, so the ack is immediate.
		nd.ls.matchIndex[nd.cfg.ID] = last
	}
	for idx := first; idx <= last; idx++ {
		e, _ := nd.hs.log.entryAt(idx)
		nd.emit(Event{Kind: EventAppended, Node: nd.cfg.ID, Term: nd.hs.currentTerm, Index: idx, Command: e.Command})
	}
	return first
}

// ---- replication & commitment (main loop only) ----

// sendAppend ships the next window of entries to one follower,
// respecting the pipeline: at most MaxEntriesPerAppend entries per
// message and at most MaxInflightAppends unacknowledged entry-carrying
// messages outstanding. The next index advances optimistically; a
// rejection falls back to probe-and-decrement, and the heartbeat's
// stall recovery rewinds a pipeline whose acks were lost.
func (nd *Node) sendAppend(to int) {
	for nd.ls.inflight[to] < nd.cfg.MaxInflightAppends {
		next := nd.ls.nextIndex[to]
		if next < 1 {
			next = 1
		}
		if next <= nd.hs.log.snapIndex {
			nd.sendSnapshot(to)
			return
		}
		if next > nd.hs.log.lastIndex() {
			return // fully replicated; heartbeats carry commit updates
		}
		prev := next - 1
		prevTerm, ok := nd.hs.log.termAt(prev)
		if !ok {
			prev, prevTerm = 0, 0
		}
		entries := nd.hs.log.sliceLimit(next, nd.cfg.MaxEntriesPerAppend)
		var payload any = AppendEntries{
			Term:         nd.hs.currentTerm,
			LeaderID:     nd.cfg.ID,
			PrevLogIndex: prev,
			PrevLogTerm:  prevTerm,
			Entries:      entries,
			LeaderCommit: nd.hs.commitIndex,
			ReadID:       nd.readSeq,
		}
		if len(nd.traced) > 0 {
			// Carry the newest sampled entry's trace ID across the wire so
			// peers' flight recorders can correlate (frame version 2; one ID
			// per frame is enough for correlation).
			for idx := next + len(entries) - 1; idx >= next; idx-- {
				if op, ok := nd.traced[idx]; ok {
					payload = msgnet.WithTraceID(uint64(op.id), payload)
					break
				}
			}
		}
		nd.send(to, payload)
		nd.ls.inflight[to]++
		nd.ls.nextIndex[to] = next + len(entries) // optimistic; rolled back on rejection
		nd.met.onAppendSend(len(entries), nd.ls.inflight[to])
	}
}

// sendHeartbeat sends an empty AppendEntries: a keep-alive that also
// propagates the leader's commit index. It bypasses the inflight window
// (it carries no entries, so re-sending costs nothing).
func (nd *Node) sendHeartbeat(to int) {
	next := nd.ls.nextIndex[to]
	if next < 1 {
		next = 1
	}
	if next <= nd.hs.log.snapIndex {
		nd.sendSnapshot(to)
		return
	}
	prev := next - 1
	prevTerm, ok := nd.hs.log.termAt(prev)
	if !ok {
		prev, prevTerm = 0, 0
	}
	nd.send(to, AppendEntries{
		Term:         nd.hs.currentTerm,
		LeaderID:     nd.cfg.ID,
		PrevLogIndex: prev,
		PrevLogTerm:  prevTerm,
		LeaderCommit: nd.hs.commitIndex,
		ReadID:       nd.readSeq,
	})
}

// broadcastAppend pushes pending entries to every follower whose
// pipeline window is open.
func (nd *Node) broadcastAppend() {
	for peer := 0; peer < nd.n; peer++ {
		if peer != nd.cfg.ID {
			nd.sendAppend(peer)
		}
	}
}

// broadcastHeartbeat runs the leader's periodic tick: per follower it
// first recovers a stalled pipeline (sends outstanding but nothing
// acknowledged since the previous tick — the acks or the appends were
// lost, so rewind to the last known match and resend), then pushes
// pending entries, and falls back to an empty keep-alive when the
// follower is already caught up.
func (nd *Node) broadcastHeartbeat() {
	for peer := 0; peer < nd.n; peer++ {
		if peer == nd.cfg.ID {
			continue
		}
		if nd.ls.inflight[peer] > 0 && !nd.ls.acked[peer] {
			nd.ls.inflight[peer] = 0
			nd.ls.nextIndex[peer] = nd.ls.matchIndex[peer] + 1
		}
		nd.ls.acked[peer] = false
		before := len(nd.outbox)
		nd.sendAppend(peer)
		if len(nd.outbox) == before {
			nd.sendHeartbeat(peer)
		}
	}
}

// sendSnapshot ships the current state-machine snapshot to a follower
// whose next entry has been compacted away.
func (nd *Node) sendSnapshot(to int) {
	snap, ok := nd.cfg.StateMachine.(Snapshotter)
	if !ok {
		// Compaction only happens with a Snapshotter, so this is
		// unreachable unless the log was restored inconsistently.
		nd.cfg.Recorder.Note(nd.cfg.ID, "raft: cannot snapshot: state machine is not a Snapshotter")
		return
	}
	var data []byte
	if nd.pipeApply {
		// The apply worker may be mid-Apply: use the cached payload that
		// every snapIndex move refreshed rather than racing SnapshotData.
		if nd.snapCache.index != nd.hs.log.snapIndex {
			nd.cfg.Recorder.Note(nd.cfg.ID, "raft: no cached snapshot at %d; deferring send", nd.hs.log.snapIndex)
			return
		}
		data = nd.snapCache.data
	} else {
		var err error
		data, err = snap.SnapshotData()
		if err != nil {
			nd.fatal = fmt.Errorf("raft: snapshot: %w", err)
			return
		}
	}
	nd.cfg.Flight.Record(rtrace.EvSnapshot, 0, int64(nd.hs.log.snapIndex), int64(to), "send")
	nd.send(to, InstallSnapshot{
		Term:              nd.hs.currentTerm,
		LeaderID:          nd.cfg.ID,
		LastIncludedIndex: nd.hs.log.snapIndex,
		LastIncludedTerm:  nd.hs.log.snapTerm,
		Data:              data,
	})
}

// onInstallSnapshot applies a leader's snapshot: state machine, log, and
// commit bookkeeping jump to the snapshot point.
func (nd *Node) onInstallSnapshot(from int, m InstallSnapshot) {
	if m.Term > nd.hs.currentTerm {
		nd.stepDown(m.Term)
	}
	if m.Term < nd.hs.currentTerm {
		nd.send(from, AppendEntriesReply{Term: nd.hs.currentTerm, Success: false})
		return
	}
	if nd.hs.state != Follower {
		nd.hs.state = Follower
		nd.ls = nil
		nd.emit(Event{Kind: EventBecameFollower, Node: nd.cfg.ID, Term: nd.hs.currentTerm})
	}
	nd.hs.leaderID = m.LeaderID
	nd.pushDeadline()

	if m.LastIncludedIndex <= nd.hs.commitIndex {
		// Stale snapshot; we are already past it.
		nd.send(from, AppendEntriesReply{Term: nd.hs.currentTerm, Success: true, MatchIndex: nd.hs.commitIndex})
		return
	}
	snap, ok := nd.cfg.StateMachine.(Snapshotter)
	if !ok {
		nd.send(from, AppendEntriesReply{Term: nd.hs.currentTerm, Success: false})
		return
	}
	nd.cfg.Flight.Record(rtrace.EvSnapshot, 0, int64(m.LastIncludedIndex), int64(from), "install")
	if nd.pipeApply {
		// The state machine belongs to the apply worker: the restore
		// rides the queue (ordered after any still-queued apply batches),
		// the durable record rides the persist queue, and the fenced ack
		// below departs only once that record is on disk.
		nd.hs.log.restoreSnapshot(m.LastIncludedIndex, m.LastIncludedTerm)
		if nd.pipePersist {
			nd.stageSnapshot(m.LastIncludedIndex, m.LastIncludedTerm, m.Data)
		}
		nd.hs.commitIndex = m.LastIncludedIndex
		nd.hs.lastApplied = m.LastIncludedIndex
		nd.snapCache = snapCache{index: m.LastIncludedIndex, data: m.Data}
		nd.enqueueApply(applyItem{term: nd.hs.currentTerm, restore: &snapStage{index: m.LastIncludedIndex, term: m.LastIncludedTerm, data: m.Data}})
		nd.send(from, AppendEntriesReply{Term: nd.hs.currentTerm, Success: true, MatchIndex: m.LastIncludedIndex})
		return
	}
	if err := snap.RestoreSnapshot(m.LastIncludedIndex, m.Data); err != nil {
		nd.fatal = fmt.Errorf("raft: install snapshot: %w", err)
		return
	}
	nd.hs.log.restoreSnapshot(m.LastIncludedIndex, m.LastIncludedTerm)
	nd.persistSnapshot(m.LastIncludedIndex, m.LastIncludedTerm, m.Data)
	nd.hs.commitIndex = m.LastIncludedIndex
	nd.hs.lastApplied = m.LastIncludedIndex
	nd.applied.advance(nd.hs.lastApplied)
	nd.drainApplyWaits()
	nd.emit(Event{Kind: EventApplied, Node: nd.cfg.ID, Term: nd.hs.currentTerm, Index: m.LastIncludedIndex, Command: nil})
	nd.send(from, AppendEntriesReply{Term: nd.hs.currentTerm, Success: true, MatchIndex: m.LastIncludedIndex})
}

// maybeCompact snapshots the state machine and discards the applied log
// prefix once it exceeds the configured threshold. Sync mode only: the
// pipelined path drives compaction from the apply worker
// (maybeCompactAsync → compactCh → onCompactReady), which is the only
// goroutine that can capture a consistent SnapshotData.
func (nd *Node) maybeCompact() {
	if nd.cfg.SnapshotThreshold <= 0 || nd.pipeApply {
		return
	}
	if nd.hs.lastApplied-nd.hs.log.snapIndex < nd.cfg.SnapshotThreshold {
		return
	}
	snap, ok := nd.cfg.StateMachine.(Snapshotter)
	if !ok {
		return
	}
	nd.met.onSnapshot()
	nd.hs.log.compactTo(nd.hs.lastApplied)
	if nd.cfg.Storage != nil {
		data, err := snap.SnapshotData()
		if err != nil {
			nd.fatal = fmt.Errorf("raft: snapshot: %w", err)
			return
		}
		nd.persistSnapshot(nd.hs.log.snapIndex, nd.hs.log.snapTerm, data)
	}
	nd.cfg.Recorder.Note(nd.cfg.ID, "raft: compacted through index %d", nd.hs.log.snapIndex)
}

// advanceCommit implements the leader commit rule: the largest N with a
// majority of MatchIndex ≥ N and log[N].term == currentTerm.
func (nd *Node) advanceCommit() {
	if nd.hs.state != Leader {
		return
	}
	for n := nd.hs.log.lastIndex(); n > nd.hs.commitIndex; n-- {
		if term, _ := nd.hs.log.termAt(n); term != nd.hs.currentTerm {
			break // only current-term entries commit by counting (§5.4.2)
		}
		count := 0
		for _, match := range nd.ls.matchIndex {
			if match >= n {
				count++
			}
		}
		if 2*count > nd.n {
			nd.setCommitIndex(n)
			return
		}
	}
}

// setCommitIndex raises the commit index, emitting per-entry commit
// events and applying to the state machine.
func (nd *Node) setCommitIndex(index int) {
	if index <= nd.hs.commitIndex {
		return
	}
	old := nd.hs.commitIndex
	nd.hs.commitIndex = index
	nd.met.onCommit(old, index)
	nd.cfg.Flight.Record(rtrace.EvCommit, 0, int64(index), int64(nd.hs.currentTerm), "")
	var committed time.Time
	if len(nd.traced) > 0 {
		committed = time.Now()
	}
	for i := old + 1; i <= index; i++ {
		e, _ := nd.hs.log.entryAt(i)
		nd.emit(Event{Kind: EventCommitted, Node: nd.cfg.ID, Term: nd.hs.currentTerm, Index: i, Command: e.Command})
	}
	if nd.pipeApply {
		if nd.pipePersist && nd.hs.state == Leader {
			// Overlap attribution: did the quorum outrun the local disk?
			nd.met.onCommitOverlap(nd.durableIndex < index)
		}
		nd.enqueueApplyEntries(old, index)
		nd.dispatchEarlyReads()
		return
	}
	for nd.hs.lastApplied < nd.hs.commitIndex {
		nd.hs.lastApplied++
		e, _ := nd.hs.log.entryAt(nd.hs.lastApplied)
		if nd.cfg.StateMachine != nil {
			nd.cfg.StateMachine.Apply(nd.hs.lastApplied, e.Command)
		}
		nd.met.onApply()
		nd.emit(Event{Kind: EventApplied, Node: nd.cfg.ID, Term: nd.hs.currentTerm, Index: nd.hs.lastApplied, Command: e.Command})
	}
	if !committed.IsZero() {
		// Close the traced window: network = fsync-done (or append) to
		// quorum commit, apply = commit to state-machine application.
		applied := time.Now()
		for i := old + 1; i <= index; i++ {
			if op, ok := nd.traced[i]; ok {
				start := op.synced
				if start.IsZero() {
					start = op.appended
				}
				nd.cfg.Tracer.ObservePhase(op.id, rtrace.PhaseNetwork, nd.cfg.ID, start, committed)
				nd.cfg.Tracer.ObservePhase(op.id, rtrace.PhaseApply, nd.cfg.ID, committed, applied)
				delete(nd.traced, i)
			}
		}
	}
	nd.applied.advance(nd.hs.lastApplied)
	nd.drainApplyWaits()
	nd.dispatchEarlyReads()
	nd.maybeCompact()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
