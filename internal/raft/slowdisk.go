package raft

import "time"

// SlowDisk wraps a Storage and adds a fixed device latency to every
// durability barrier — the storage-side analog of netsim's message
// delay. Benchmark hosts vary wildly in how fast (and how honestly)
// their disks acknowledge fsync: a page-cache-absorbed sync returns in
// microseconds, shared cloud storage can take milliseconds, and the
// same machine can swing between the two from minute to minute. A
// scaling experiment that compares consensus topologies ends up
// measuring that noise instead of the topology. SlowDisk pins the
// device term of the latency equation to a known constant (e.g. the
// ~1ms of a commodity SATA SSD) so runs are comparable across hosts
// and across time; the wrapped store still performs its real writes
// and syncs underneath, so durability semantics and fsync accounting
// are unchanged.
//
// Like the device it models, SlowDisk serializes its caller for the
// whole barrier: a Raft node blocked in it cannot do anything else,
// which is exactly the per-group fsync queue that sharding across
// groups parallelizes.
type SlowDisk struct {
	inner   Storage
	latency time.Duration
}

var _ Storage = (*SlowDisk)(nil)

// NewSlowDisk wraps inner with a fixed latency per durability barrier.
// A zero or negative latency adds nothing.
func NewSlowDisk(inner Storage, latency time.Duration) *SlowDisk {
	return &SlowDisk{inner: inner, latency: latency}
}

// Inner returns the wrapped store (e.g. to read FileStorage.Syncs).
func (s *SlowDisk) Inner() Storage { return s.inner }

func (s *SlowDisk) barrier() {
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
}

// SetState implements Storage.
func (s *SlowDisk) SetState(term, votedFor int) error {
	err := s.inner.SetState(term, votedFor)
	s.barrier()
	return err
}

// TruncateAndAppend implements Storage.
func (s *SlowDisk) TruncateAndAppend(prevIndex int, entries []Entry) error {
	err := s.inner.TruncateAndAppend(prevIndex, entries)
	s.barrier()
	return err
}

// AppendBatch implements Storage: one modeled barrier for the whole
// batch, preserving the group-commit amortization of the inner store.
func (s *SlowDisk) AppendBatch(muts []LogMutation) error {
	err := s.inner.AppendBatch(muts)
	s.barrier()
	return err
}

// SaveSnapshot implements Storage.
func (s *SlowDisk) SaveSnapshot(index, term int, data []byte) error {
	err := s.inner.SaveSnapshot(index, term, data)
	s.barrier()
	return err
}

// Load implements Storage; reads pay no modeled latency (restart
// replay speed is not what the model is for).
func (s *SlowDisk) Load() (PersistentState, error) { return s.inner.Load() }
