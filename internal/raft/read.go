package raft

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"ooc/internal/rtrace"
)

// ReadConsistency selects how a read is served (see Client.Read and
// Node.ReadIndexMode). The zero value is the strongest mode.
type ReadConsistency int

const (
	// ReadLinearizable serves the read through a ReadIndex round (Raft
	// §6.4): the leader records its commit index, confirms it is still
	// leader with one quorum round piggybacked on AppendEntries, waits for
	// applied ≥ readIndex, and answers from the local state machine — no
	// log append, no fsync.
	ReadLinearizable ReadConsistency = iota
	// ReadLease serves from the leader's clock-skew-discounted lease when
	// one is held (no quorum round at all), falling back to a ReadIndex
	// round when the lease has lapsed. Requires Config.LeaseDuration > 0
	// on every node; linearizable under the bounded-clock-drift assumption
	// documented in DESIGN.md §3.3.
	ReadLease
	// ReadStale reads the local state machine with no coordination and no
	// consistency guarantee beyond "some applied prefix of the log".
	ReadStale
	// ReadLogCommand replicates the read through the log like a write —
	// the pre-fast-path baseline. Only the Client implements it (a node
	// cannot decide commitment by itself); it exists so benchmarks and
	// tests can compare the fast path against reads-as-log-commands.
	ReadLogCommand
)

var readConsistencyNames = map[ReadConsistency]string{
	ReadLinearizable: "linearizable",
	ReadLease:        "lease",
	ReadStale:        "stale",
	ReadLogCommand:   "log",
}

// String implements fmt.Stringer.
func (rc ReadConsistency) String() string {
	if n, ok := readConsistencyNames[rc]; ok {
		return n
	}
	return fmt.Sprintf("ReadConsistency(%d)", int(rc))
}

// ParseReadConsistency maps a flag value ("linearizable", "lease",
// "stale", "log") to its ReadConsistency.
func ParseReadConsistency(s string) (ReadConsistency, error) {
	for rc, name := range readConsistencyNames {
		if name == s {
			return rc, nil
		}
	}
	return 0, fmt.Errorf("raft: unknown read consistency %q (want linearizable, lease, stale, or log)", s)
}

// ErrLeaseNotEnabled is returned by lease-mode reads on clusters whose
// nodes were configured without Config.LeaseDuration.
// (Lease-mode reads still work — they fall back to ReadIndex rounds —
// so this error is currently unused; it is reserved for a strict mode.)
var ErrLeaseNotEnabled = errors.New("raft: leases not enabled (Config.LeaseDuration is 0)")

// readReq is one read waiting on the main loop, mirroring proposeReq.
type readReq struct {
	mode  ReadConsistency
	reply chan proposeReply
	t0    time.Time
	trace rtrace.ID // 0 unless this read is sampled
}

// readWaiter is one read attached to a confirmation round: either a
// local caller (ch != nil) or a follower-forwarded request to answer
// with a ReadIndexReply.
type readWaiter struct {
	ch        chan proposeReply // local waiter; nil for a forwarded read
	from      int               // forwarding follower (when ch == nil)
	id        int64             // forwarded request correlation id
	lease     bool              // client asked for ReadLease semantics
	t0        time.Time         // local request arrival, for the latency histogram
	trace     rtrace.ID         // 0 unless sampled
	confirmed time.Time         // when the read index became valid (apply-phase start); sampled only
}

// readRound is one leadership-confirmation round: all reads that
// coalesced into it share a single heartbeat exchange. The round is
// confirmed once a quorum (including the leader) has echoed a read id
// ≥ id, proving leadership held after start — at which point index is a
// valid linearizable read index and start anchors a lease renewal.
type readRound struct {
	id      int
	start   time.Time
	index   int
	waiters []readWaiter
}

// applyWait parks a resolved read until the local state machine has
// applied through index — the follower-read tail, and the generic
// applied ≥ readIndex guard of §6.4.
type applyWait struct {
	w     readWaiter
	index int
	lease bool // the read index came from a held lease, not a quorum round
}

// relayWait is a follower-local read forwarded to the leader, keyed by
// the ReadIndexRequest id until the ReadIndexReply arrives.
type relayWait struct {
	ch    chan proposeReply
	t0    time.Time
	lease bool
}

// readStats are always-on counters (independent of the metrics
// registry) so harnesses can attribute reads to the path that served
// them without wiring telemetry.
type readStats struct {
	lease     atomic.Int64 // served from a held lease, no quorum round
	index     atomic.Int64 // served by a confirmed ReadIndex round
	stale     atomic.Int64 // served locally with no coordination
	forwarded atomic.Int64 // forwarded to the leader by this follower
}

// ReadStats reports how many reads this node has served per path:
// lease fast path, confirmed ReadIndex rounds, stale local reads, and
// reads forwarded to the leader while this node was a follower.
func (nd *Node) ReadStats() (lease, index, stale, forwarded int64) {
	return nd.rstats.lease.Load(), nd.rstats.index.Load(),
		nd.rstats.stale.Load(), nd.rstats.forwarded.Load()
}

// ReadIndex returns a linearizable read index: once it returns, this
// node's state machine has applied every entry committed before the
// call, and reading it observes a state no older than that point. It is
// served without appending to the log (Raft §6.4). On a follower the
// request is forwarded to the leader and the follower waits for its own
// apply index to catch up before returning.
func (nd *Node) ReadIndex(ctx context.Context) (int, error) {
	return nd.ReadIndexMode(ctx, ReadLinearizable)
}

// ReadIndexMode is ReadIndex with an explicit consistency mode:
// ReadLinearizable always runs a confirmation round, ReadLease uses the
// leader's lease when valid (falling back to a round), and ReadStale
// returns the local applied index immediately. ReadLogCommand is a
// client-side mode and is rejected here.
func (nd *Node) ReadIndexMode(ctx context.Context, mode ReadConsistency) (int, error) {
	if mode == ReadLogCommand {
		return 0, errors.New("raft: ReadLogCommand is served by the Client, not the node")
	}
	req := readReq{mode: mode, reply: make(chan proposeReply, 1), t0: time.Now(), trace: rtrace.FromContext(ctx)}
	select {
	case nd.readCh <- req:
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-nd.stopped:
		return 0, ErrStopped
	}
	select {
	case rep := <-req.reply:
		return rep.index, rep.err
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-nd.stopped:
		return 0, ErrStopped
	}
}

// ---- main-loop read handling ----

// drainReads collects the reads already queued behind first, up to the
// coalescing cap — one leadership-confirmation round serves them all.
func (nd *Node) drainReads(first readReq) []readReq {
	reqs := append(make([]readReq, 0, 8), first)
	for len(reqs) < nd.cfg.MaxReadBatch {
		select {
		case r := <-nd.readCh:
			reqs = append(reqs, r)
		default:
			return reqs
		}
	}
	return reqs
}

// handleReadBatch dispatches a drained batch of local reads: stale reads
// answer immediately from any role, leader reads take the lease or
// ReadIndex path, and follower reads are forwarded to the leader.
func (nd *Node) handleReadBatch(reqs []readReq) {
	var drained time.Time // one clock read however many reads are sampled
	for _, r := range reqs {
		if r.trace != 0 {
			if drained.IsZero() {
				drained = time.Now()
			}
			nd.cfg.Tracer.ObservePhase(r.trace, rtrace.PhaseQueue, nd.cfg.ID, r.t0, drained)
		}
		if r.mode == ReadStale {
			nd.rstats.stale.Add(1)
			nd.met.onReadServed("stale", r.t0)
			nd.replies = append(nd.replies, stagedReply{ch: r.reply, reply: proposeReply{index: nd.appliedView()}})
			continue
		}
		w := readWaiter{ch: r.reply, lease: r.mode == ReadLease, t0: r.t0, trace: r.trace}
		if nd.hs.state == Leader {
			nd.leaderRead(w)
			continue
		}
		nd.forwardRead(w)
	}
}

// forwardRead relays a follower-received read to the known leader, or
// fails it when no leader is known (the client retries after backoff).
func (nd *Node) forwardRead(w readWaiter) {
	if nd.hs.leaderID == none || nd.hs.leaderID == nd.cfg.ID {
		nd.replies = append(nd.replies, stagedReply{ch: w.ch, reply: proposeReply{err: ErrNotLeader{LeaderID: none}}})
		return
	}
	nd.relaySeq++
	nd.relay[nd.relaySeq] = relayWait{ch: w.ch, t0: w.t0, lease: w.lease}
	nd.rstats.forwarded.Add(1)
	nd.met.onReadForwarded()
	nd.send(nd.hs.leaderID, ReadIndexRequest{Term: nd.hs.currentTerm, ID: nd.relaySeq, Lease: w.lease})
}

// leaderRead serves one read on the leader: until the term-opening no-op
// commits the leader cannot know the true commit frontier (§6.4 step 1),
// so reads park; with a valid lease a lease-mode read answers from the
// current commit index immediately; everything else joins a
// confirmation round.
func (nd *Node) leaderRead(w readWaiter) {
	if nd.hs.commitIndex < nd.termStart {
		nd.earlyReads = append(nd.earlyReads, w)
		return
	}
	if w.lease && nd.leaseValid() {
		if w.ch != nil {
			nd.rstats.lease.Add(1)
		}
		// Lease path: no quorum round, so the network phase is zero and
		// the read index is valid right now.
		w.confirmed = nd.cfg.Tracer.Now(w.trace)
		nd.resolveRead(w, nd.hs.commitIndex, true)
		return
	}
	if w.lease {
		nd.met.onLeaseExpired()
		// A lapsed lease on a live leader means heartbeats stalled long
		// enough to matter — dump the run-up.
		nd.cfg.Flight.Trigger(rtrace.EvLeaseExpired, w.trace, int64(nd.hs.currentTerm), int64(nd.hs.commitIndex), "")
	}
	nd.joinReadRound(w)
}

// leaseValid reports whether this leader currently holds a read lease.
// The lease is anchored to the start of the last quorum-confirmed round
// and discounted for clock skew in Config normalization, so it always
// expires before any other node can possibly win an election — see the
// safety argument in DESIGN.md §3.3.
func (nd *Node) leaseValid() bool {
	return nd.cfg.LeaseDuration > 0 && nd.hs.state == Leader &&
		nd.cfg.Clock.Now().Before(nd.leaseUntil)
}

// joinReadRound attaches a waiter to this iteration's confirmation
// round, creating it (and staging its probe broadcast) if none exists
// yet or the commit index has moved since it was created. All messages
// staged this iteration leave in one flush, after every handler has
// run, so a waiter that joins an existing round is still invoked-before
// the probe physically departs — the confirmation ack therefore proves
// leadership after the read's invocation, which is what linearizability
// needs.
func (nd *Node) joinReadRound(w readWaiter) {
	if nd.curRound != nil && nd.curRound.index == nd.hs.commitIndex {
		nd.curRound.waiters = append(nd.curRound.waiters, w)
		return
	}
	nd.readSeq++
	r := &readRound{
		id:      nd.readSeq,
		start:   nd.cfg.Clock.Now(),
		index:   nd.hs.commitIndex,
		waiters: []readWaiter{w},
	}
	nd.reads = append(nd.reads, r)
	nd.curRound = r
	nd.broadcastReadProbe()
	nd.confirmReads() // single-node clusters are their own quorum
}

// startLeaseRound opens a waiterless confirmation round on the
// heartbeat tick so an idle leader's lease stays warm. If a round is
// already pending, its confirmation will renew the lease; opening more
// would only let a partitioned leader accumulate rounds that can never
// confirm.
func (nd *Node) startLeaseRound() {
	if len(nd.reads) > 0 {
		return
	}
	nd.readSeq++
	nd.reads = append(nd.reads, &readRound{
		id:    nd.readSeq,
		start: nd.cfg.Clock.Now(),
		index: nd.hs.commitIndex,
	})
	nd.confirmReads() // single-node clusters confirm immediately
}

// broadcastReadProbe sends every follower an empty AppendEntries
// carrying the current read-round id. Unlike broadcastHeartbeat it does
// not touch the replication pipeline's stall-recovery bookkeeping:
// read rounds can fire far more often than the heartbeat tick, and
// resetting the acked flags that frequently would make healthy
// pipelines look stalled.
func (nd *Node) broadcastReadProbe() {
	for peer := 0; peer < nd.n; peer++ {
		if peer != nd.cfg.ID {
			nd.sendHeartbeat(peer)
		}
	}
}

// onReadAck records a follower's read-round echo and confirms every
// round a quorum has now acknowledged. Called for every same-term
// AppendEntriesReply, success or rejection alike.
func (nd *Node) onReadAck(from, id int) {
	if id > nd.ls.readAck[from] {
		nd.ls.readAck[from] = id
		nd.confirmReads()
	}
}

// confirmReads resolves pending rounds, oldest first (acks are
// monotonic, so confirmation is prefix-closed): each confirmed round
// renews the lease from its own start time and releases its waiters at
// its recorded read index.
func (nd *Node) confirmReads() {
	if nd.hs.state != Leader {
		return
	}
	for len(nd.reads) > 0 {
		r := nd.reads[0]
		count := 1 // self
		for peer, ack := range nd.ls.readAck {
			if peer != nd.cfg.ID && ack >= r.id {
				count++
			}
		}
		if 2*count <= nd.n {
			return
		}
		if nd.cfg.LeaseDuration > 0 {
			if until := r.start.Add(nd.cfg.LeaseDuration); until.After(nd.leaseUntil) {
				nd.leaseUntil = until
				nd.met.onLeaseHold()
			}
		}
		if len(r.waiters) > 0 {
			nd.met.onReadRound(len(r.waiters))
			nd.cfg.Flight.Record(rtrace.EvReadRound, 0, int64(r.index), int64(len(r.waiters)), "")
		}
		var confirmedAt time.Time // shared: the whole round confirmed together
		for _, w := range r.waiters {
			if w.trace != 0 {
				if confirmedAt.IsZero() {
					confirmedAt = time.Now()
				}
				// Network phase: probe broadcast to quorum echo.
				nd.cfg.Tracer.ObservePhase(w.trace, rtrace.PhaseNetwork, nd.cfg.ID, r.start, confirmedAt)
				w.confirmed = confirmedAt
			}
			if w.ch != nil {
				nd.rstats.index.Add(1)
			}
			nd.resolveRead(w, r.index, false)
		}
		nd.reads = nd.reads[1:]
		if nd.curRound == r {
			nd.curRound = nil
		}
	}
}

// readModeLabel names the path that actually served a read, for the
// per-mode counters.
func readModeLabel(lease bool) string {
	if lease {
		return "lease"
	}
	return "readindex"
}

// resolveRead delivers a confirmed read index: forwarded reads answer
// their follower (which runs its own applied-wait and counts the read
// there, attributed by the Lease flag), local reads answer once the
// local state machine has applied through index — immediately on the
// leader, whose apply is synchronous with commit. lease records whether
// the index came from a held lease or a quorum round.
func (nd *Node) resolveRead(w readWaiter, index int, lease bool) {
	if w.ch == nil {
		nd.send(w.from, ReadIndexReply{Term: nd.hs.currentTerm, ID: w.id, Index: index, Success: true, Lease: lease, LeaderID: nd.cfg.ID})
		return
	}
	if nd.appliedView() >= index {
		nd.met.onReadServed(readModeLabel(lease), w.t0)
		if w.trace != 0 {
			nd.cfg.Tracer.ObservePhase(w.trace, rtrace.PhaseApply, nd.cfg.ID, w.confirmed, time.Now())
		}
		nd.replies = append(nd.replies, stagedReply{ch: w.ch, reply: proposeReply{index: index}})
		return
	}
	if nd.pipeApply {
		// The apply worker owns the applied≥readIndex gate: the waiter
		// rides the queue and is released the moment the state machine
		// covers its index (releaseApplyWaits).
		aw := applyWait{w: w, index: index, lease: lease}
		nd.enqueueApply(applyItem{wait: &aw})
		return
	}
	nd.applyWaits = append(nd.applyWaits, applyWait{w: w, index: index, lease: lease})
}

// drainApplyWaits releases reads whose target index the state machine
// has now applied; called whenever lastApplied advances.
func (nd *Node) drainApplyWaits() {
	if len(nd.applyWaits) == 0 {
		return
	}
	kept := nd.applyWaits[:0]
	for _, aw := range nd.applyWaits {
		if nd.hs.lastApplied >= aw.index {
			nd.met.onReadServed(readModeLabel(aw.lease), aw.w.t0)
			if aw.w.trace != 0 {
				// Apply phase: the read parked until the state machine caught
				// up to its index.
				nd.cfg.Tracer.ObservePhase(aw.w.trace, rtrace.PhaseApply, nd.cfg.ID, aw.w.confirmed, time.Now())
			}
			nd.replies = append(nd.replies, stagedReply{ch: aw.w.ch, reply: proposeReply{index: aw.index}})
		} else {
			kept = append(kept, aw)
		}
	}
	nd.applyWaits = kept
}

// dispatchEarlyReads re-serves reads that arrived before the
// term-opening no-op committed; called when the commit index advances.
func (nd *Node) dispatchEarlyReads() {
	if len(nd.earlyReads) == 0 || nd.hs.state != Leader || nd.hs.commitIndex < nd.termStart {
		return
	}
	pending := nd.earlyReads
	nd.earlyReads = nil
	for _, w := range pending {
		nd.leaderRead(w)
	}
}

// failReads fails every read the node cannot serve any more: pending and
// parked leader-side rounds (leadership is gone or unproven) and
// follower-side relays (the answering leader may be gone). Reads already
// past confirmation and merely waiting on apply stay parked — their
// linearization point is already fixed, and a later leader's entries
// will advance the apply index. Called on stepDown and on becoming a
// candidate.
func (nd *Node) failReads() {
	rep := proposeReply{err: ErrNotLeader{LeaderID: none}}
	for _, r := range nd.reads {
		for _, w := range r.waiters {
			if w.ch != nil {
				nd.replies = append(nd.replies, stagedReply{ch: w.ch, reply: rep})
			} else {
				nd.send(w.from, ReadIndexReply{Term: nd.hs.currentTerm, ID: w.id, Success: false, LeaderID: nd.hs.leaderID})
			}
		}
	}
	nd.reads = nil
	nd.curRound = nil
	for _, w := range nd.earlyReads {
		if w.ch != nil {
			nd.replies = append(nd.replies, stagedReply{ch: w.ch, reply: rep})
		} else {
			nd.send(w.from, ReadIndexReply{Term: nd.hs.currentTerm, ID: w.id, Success: false, LeaderID: nd.hs.leaderID})
		}
	}
	nd.earlyReads = nil
	// Not leaseValid(): by the time failReads runs the role has already
	// changed, and the point is to count leases cut short by deposition.
	if nd.cfg.LeaseDuration > 0 && nd.cfg.Clock.Now().Before(nd.leaseUntil) {
		nd.met.onLeaseInvalidated()
	}
	nd.leaseUntil = time.Time{}
	for id, rw := range nd.relay {
		nd.replies = append(nd.replies, stagedReply{ch: rw.ch, reply: rep})
		delete(nd.relay, id)
	}
}

// ---- forwarded-read message handlers (main loop only) ----

func (nd *Node) onReadIndexRequest(from int, m ReadIndexRequest) {
	if m.Term > nd.hs.currentTerm {
		nd.stepDown(m.Term)
	}
	if nd.hs.state != Leader || m.Term != nd.hs.currentTerm {
		// Carry this node's leader hint so the forwarding follower — and
		// ultimately the remote client — can re-route in one hop instead
		// of probing (the cross-process NotLeader redirect).
		nd.send(from, ReadIndexReply{Term: nd.hs.currentTerm, ID: m.ID, Success: false, LeaderID: nd.hs.leaderID})
		return
	}
	nd.leaderRead(readWaiter{from: from, id: m.ID, lease: m.Lease, t0: time.Now()})
}

func (nd *Node) onReadIndexReply(from int, m ReadIndexReply) {
	if m.Term > nd.hs.currentTerm {
		nd.stepDown(m.Term) // clears the relay table; the client retries
		return
	}
	rw, ok := nd.relay[m.ID]
	if !ok {
		return // superseded by a term change, or a duplicate
	}
	delete(nd.relay, m.ID)
	if !m.Success {
		// Prefer the replier's hint: it refused because it is not the
		// leader (or not in our term), and it usually knows who is —
		// fresher than our own leaderID, which may still name the
		// replier itself.
		hint := m.LeaderID
		if hint == none {
			hint = nd.hs.leaderID
		}
		nd.replies = append(nd.replies, stagedReply{ch: rw.ch, reply: proposeReply{err: ErrNotLeader{LeaderID: hint}}})
		return
	}
	if m.Lease {
		nd.rstats.lease.Add(1)
	} else {
		nd.rstats.index.Add(1)
	}
	nd.resolveRead(readWaiter{ch: rw.ch, lease: rw.lease, t0: rw.t0}, m.Index, m.Lease)
}
