package raft

import (
	"context"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ooc/internal/msgnet"
	"ooc/internal/netsim"
	"ooc/internal/sim"
	"ooc/internal/trace"
)

func init() {
	for _, wt := range WireTypes() {
		gob.Register(wt)
	}
}

func TestMemStorageRoundTrip(t *testing.T) {
	s := NewMemStorage()
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Term != 0 || st.VotedFor != none || len(st.Entries) != 0 {
		t.Fatalf("fresh store: %+v", st)
	}
	if err := s.SetState(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateAndAppend(0, entries(1, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateAndAppend(2, entries(3)); err != nil {
		t.Fatal(err)
	}
	st, err = s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Term != 3 || st.VotedFor != 1 {
		t.Fatalf("state: %+v", st)
	}
	wantTerms := []int{1, 1, 3}
	if len(st.Entries) != len(wantTerms) {
		t.Fatalf("entries: %+v", st.Entries)
	}
	for i, want := range wantTerms {
		if st.Entries[i].Term != want {
			t.Fatalf("entry %d term %d, want %d", i, st.Entries[i].Term, want)
		}
	}
	// Load returns a copy.
	st.Entries[0].Term = 99
	st2, _ := s.Load()
	if st2.Entries[0].Term != 1 {
		t.Fatal("Load aliases internal storage")
	}
}

func TestMemStorageRejectsBadTruncate(t *testing.T) {
	s := NewMemStorage()
	if err := s.TruncateAndAppend(5, entries(1)); err == nil {
		t.Fatal("truncate beyond log accepted")
	}
	if err := s.TruncateAndAppend(-1, entries(1)); err == nil {
		t.Fatal("negative prev accepted")
	}
}

func TestFileStorageRoundTripAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raft.log")
	s, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := s.Load(); err != nil || st.Term != 0 || st.VotedFor != none {
		t.Fatalf("fresh file store: %+v %v", st, err)
	}
	if err := s.SetState(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateAndAppend(0, []Entry{{Term: 1, Command: KVCommand{Op: "set", Key: "a", Value: "1"}}, {Term: 2, Command: DS{Value: "x"}}}); err != nil {
		t.Fatal(err)
	}
	// Conflict repair: replace index 2.
	if err := s.TruncateAndAppend(1, []Entry{{Term: 3, Command: DS{Value: "y"}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetState(3, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Term != 3 || st.VotedFor != 2 {
		t.Fatalf("state after reopen: %+v", st)
	}
	if len(st.Entries) != 2 || st.Entries[1].Term != 3 {
		t.Fatalf("entries after reopen: %+v", st.Entries)
	}
	if ds, ok := st.Entries[1].Command.(DS); !ok || ds.Value != "y" {
		t.Fatalf("command mangled: %+v", st.Entries[1])
	}
}

func TestFileStorageToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raft.log")
	s, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetState(7, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: garbage bytes at the end.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0x01}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	s2, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Term != 7 || st.VotedFor != 1 {
		t.Fatalf("usable prefix lost: %+v", st)
	}
}

func TestNewNodeRestoresFromStorage(t *testing.T) {
	store := NewMemStorage()
	if err := store.SetState(5, 2); err != nil {
		t.Fatal(err)
	}
	if err := store.TruncateAndAppend(0, entries(1, 4, 5)); err != nil {
		t.Fatal(err)
	}
	nw := netsim.New(3)
	node, err := NewNode(Config{ID: 0, Endpoint: nw.Node(0), RNG: sim.NewRNG(1), Storage: store})
	if err != nil {
		t.Fatal(err)
	}
	if node.hs.currentTerm != 5 || node.hs.votedFor != 2 {
		t.Fatalf("restored state: term=%d vote=%d", node.hs.currentTerm, node.hs.votedFor)
	}
	if node.hs.log.lastIndex() != 3 || node.hs.log.lastTerm() != 5 {
		t.Fatalf("restored log: %v", &node.hs.log)
	}
}

func TestPersistedVoteSurvivesRestart(t *testing.T) {
	// A node that voted for candidate 1 in term 5, crashed, and restarted
	// must refuse a term-5 vote for anyone else — the election-safety
	// hazard persistence exists to prevent.
	nw := netsim.New(3, netsim.WithFIFO())
	store := NewMemStorage()
	if err := store.SetState(5, 1); err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(Config{
		ID: 0, Endpoint: nw.Node(0), RNG: sim.NewRNG(1), Storage: store,
		ElectionTimeout: time.Hour, // keep it passive
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	node.Start(ctx)

	if err := nw.Node(2).Send(0, RequestVote{Term: 5, CandidateID: 2, LastLogIndex: 9, LastLogTerm: 9}); err != nil {
		t.Fatal(err)
	}
	reply := recvReply(t, nw.Node(2))
	if reply.VoteGranted {
		t.Fatal("restarted node granted a second vote in the same term")
	}
	// The original candidate may ask again and be re-granted.
	if err := nw.Node(1).Send(0, RequestVote{Term: 5, CandidateID: 1, LastLogIndex: 9, LastLogTerm: 9}); err != nil {
		t.Fatal(err)
	}
	reply = recvReply(t, nw.Node(1))
	if !reply.VoteGranted {
		t.Fatal("idempotent re-grant to the original candidate denied")
	}
}

func recvReply(t *testing.T, ep msgnet.Endpoint) RequestVoteReply {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for {
		m, err := ep.Recv(ctx)
		if err != nil {
			t.Fatalf("no reply: %v", err)
		}
		if r, ok := m.Payload.(RequestVoteReply); ok {
			return r
		}
	}
}

// restartableCluster runs nodes with per-node contexts and MemStorage so
// individual processors can be crashed and brought back.
type restartableCluster struct {
	t       *testing.T
	nw      *netsim.Network
	rng     *sim.RNG
	rec     *trace.Recorder
	stores  []*MemStorage
	kvs     []*KVStore
	nodes   []*Node
	cancels []context.CancelFunc
}

func newRestartableCluster(t *testing.T, n int, seed uint64) *restartableCluster {
	t.Helper()
	c := &restartableCluster{
		t:       t,
		nw:      netsim.New(n, netsim.WithSeed(seed)),
		rng:     sim.NewRNG(seed),
		rec:     trace.NewRecorder(),
		stores:  make([]*MemStorage, n),
		kvs:     make([]*KVStore, n),
		nodes:   make([]*Node, n),
		cancels: make([]context.CancelFunc, n),
	}
	for id := 0; id < n; id++ {
		c.stores[id] = NewMemStorage()
		c.kvs[id] = &KVStore{}
		c.boot(id)
	}
	t.Cleanup(func() {
		for _, cancel := range c.cancels {
			if cancel != nil {
				cancel()
			}
		}
	})
	return c
}

func (c *restartableCluster) boot(id int) {
	c.t.Helper()
	node, err := NewNode(Config{
		ID:                id,
		Endpoint:          c.nw.Node(id),
		RNG:               c.rng.Fork(uint64(id) + 1000*uint64(len(c.nodes))),
		ElectionTimeout:   testElection,
		HeartbeatInterval: testHeartbeat,
		StateMachine:      c.kvs[id],
		Storage:           c.stores[id],
		Recorder:          c.rec,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.nodes[id] = node
	c.cancels[id] = cancel
	node.Start(ctx)
}

func (c *restartableCluster) crash(id int) {
	c.t.Helper()
	c.nw.Crash(id)
	c.cancels[id]()
	select {
	case <-c.nodes[id].Done():
	case <-time.After(10 * time.Second):
		c.t.Fatalf("node %d did not stop", id)
	}
}

func (c *restartableCluster) restart(id int) {
	c.t.Helper()
	c.nw.Restart(id)
	// State machines are volatile in this model: a restarted processor
	// reapplies its persisted log from scratch.
	c.kvs[id] = &KVStore{}
	c.boot(id)
}

func (c *restartableCluster) waitLeader(exclude map[int]bool) int {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for id, node := range c.nodes {
			if exclude[id] || c.nw.Crashed(id) {
				continue
			}
			if node.Status().State == Leader {
				return id
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatal("no leader")
	return -1
}

func (c *restartableCluster) propose(cmd any) int {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		leader := c.waitLeader(nil)
		idx, err := c.nodes[leader].Propose(context.Background(), cmd)
		if err == nil {
			return idx
		}
		var nl ErrNotLeader
		if !errors.As(err, &nl) && !errors.Is(err, ErrStopped) {
			c.t.Fatal(err)
		}
	}
	c.t.Fatal("could not propose")
	return 0
}

func (c *restartableCluster) waitApplied(index int, ids ...int) {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, id := range ids {
			if c.kvs[id].AppliedIndex() < index {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatalf("index %d not applied", index)
}

func TestFollowerCrashRecovery(t *testing.T) {
	c := newRestartableCluster(t, 3, 31)
	idx := c.propose(KVCommand{Op: "set", Key: "pre", Value: "1"})
	c.waitApplied(idx, 0, 1, 2)

	leader := c.waitLeader(nil)
	victim := (leader + 1) % 3
	c.crash(victim)

	idx2 := c.propose(KVCommand{Op: "set", Key: "during", Value: "2"})
	rest := []int{}
	for id := 0; id < 3; id++ {
		if id != victim {
			rest = append(rest, id)
		}
	}
	c.waitApplied(idx2, rest...)

	c.restart(victim)
	c.waitApplied(idx2, victim)
	for _, key := range []string{"pre", "during"} {
		if _, ok := c.kvs[victim].Get(key); !ok {
			t.Fatalf("recovered node missing %q", key)
		}
	}
	// The restarted node must have restored (not re-learned from scratch)
	// its persisted term.
	if st := c.nodes[victim].Status(); st.Term == 0 {
		t.Fatalf("restarted node lost its term: %v", st)
	}
}

func TestLeaderCrashRecoveryRejoinsAsFollower(t *testing.T) {
	c := newRestartableCluster(t, 3, 37)
	idx := c.propose(KVCommand{Op: "set", Key: "epoch", Value: "1"})
	c.waitApplied(idx, 0, 1, 2)

	oldLeader := c.waitLeader(nil)
	c.crash(oldLeader)
	c.waitLeader(map[int]bool{oldLeader: true})

	// Commit through the survivors: a raw Propose can lose its entry to a
	// concurrent election, so use the retrying client, which waits for
	// the entry to actually apply.
	var survivors []*Node
	for id, node := range c.nodes {
		if id != oldLeader {
			survivors = append(survivors, node)
		}
	}
	client, err := NewClient(survivors)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	idx2, err := client.SubmitWait(ctx, KVCommand{Op: "set", Key: "epoch", Value: "2"})
	if err != nil {
		t.Fatal(err)
	}

	c.restart(oldLeader)
	c.waitApplied(idx2, 0, 1, 2)
	if v, _ := c.kvs[oldLeader].Get("epoch"); v != "2" {
		t.Fatalf("recovered ex-leader sees epoch=%q", v)
	}
	// Committed history must be identical everywhere.
	for id := 0; id < 3; id++ {
		if v, ok := c.kvs[id].Get("epoch"); !ok || v != "2" {
			t.Fatalf("node %d: epoch=%q %v", id, v, ok)
		}
	}
}

func TestRepeatedCrashRecoveryCycles(t *testing.T) {
	c := newRestartableCluster(t, 3, 41)
	var idx int
	for cycle := 0; cycle < 3; cycle++ {
		idx = c.propose(KVCommand{Op: "set", Key: "cycle", Value: string(rune('a' + cycle))})
		leader := c.waitLeader(nil)
		victim := (leader + 1 + cycle) % 3
		// Let the entry commit on the surviving majority first; Propose
		// returns at append time, and an entry only present on the victim
		// would legitimately die with it.
		var others []int
		for id := 0; id < 3; id++ {
			if id != victim {
				others = append(others, id)
			}
		}
		c.waitApplied(idx, others...)
		c.crash(victim)
		c.restart(victim)
		c.waitApplied(idx, 0, 1, 2)
	}
	for id := 0; id < 3; id++ {
		if v, _ := c.kvs[id].Get("cycle"); v != "c" {
			t.Fatalf("node %d: cycle=%q", id, v)
		}
	}
}
