// Package raft is a from-scratch implementation of the Raft consensus
// algorithm (Ongaro & Ousterhout, USENIX ATC 2014) in the asynchronous
// message-passing model: leader election with randomized timers, log
// replication with conflict repair, commit-index advancement restricted
// to current-term entries, and state-machine application.
//
// On top of the general log-replication machine the package provides what
// the paper's Section 4.3 actually uses:
//
//   - single-decree consensus via the D&S(v) ("decide and stop applying")
//     command and the DecideOnce state machine (the paper's Algorithm 7),
//     and
//   - the decomposition view: Raft as a VacillateAdoptCommit object whose
//     reconciliator is the randomized election timer (Algorithms 10–11).
//
// Timers run against internal/sim.Clock, so the protocol is testable on a
// manually advanced clock and deployable on the real one; messages travel
// over any msgnet.Endpoint (the in-memory simulator or the TCP
// transport).
//
// The package also carries the production features the Raft paper and
// dissertation describe beyond the core protocol: durable Storage for
// term/vote/log/snapshots (crash-recovery with the paper's "wake up with
// an outdated log" semantics — see the restart tests), leader no-op
// entries (§5.4.2), log compaction with InstallSnapshot catch-up (§7),
// the PreVote extension (dissertation §9.6), and a redirect-following
// retrying Client.
package raft

import "fmt"

// The four message types of the paper's Figure 1.

// RequestVote solicits a vote for CandidateID in Term. LastLogIndex and
// LastLogTerm describe the candidate's log so voters can enforce the
// up-to-date restriction.
type RequestVote struct {
	Term         int
	CandidateID  int
	LastLogIndex int
	LastLogTerm  int
}

// String implements fmt.Stringer.
func (m RequestVote) String() string {
	return fmt.Sprintf("RequestVote{t=%d cand=%d lastIdx=%d lastTerm=%d}",
		m.Term, m.CandidateID, m.LastLogIndex, m.LastLogTerm)
}

// PreVote probes whether an election for Term (the sender's currentTerm
// + 1) could succeed, without disturbing anyone's actual term — the
// standard PreVote extension (Raft dissertation §9.6) that stops
// partitioned processors from inflating terms and deposing a healthy
// leader on reconnection. Enabled via Config.PreVote.
type PreVote struct {
	Term         int // the term the sender would campaign in
	CandidateID  int
	LastLogIndex int
	LastLogTerm  int
}

// String implements fmt.Stringer.
func (m PreVote) String() string {
	return fmt.Sprintf("PreVote{t=%d cand=%d lastIdx=%d lastTerm=%d}",
		m.Term, m.CandidateID, m.LastLogIndex, m.LastLogTerm)
}

// PreVoteReply grants or denies a PreVote probe. Term is the responder's
// actual current term, so a stale prober can catch up.
type PreVoteReply struct {
	Term    int
	Granted bool
}

// String implements fmt.Stringer.
func (m PreVoteReply) String() string {
	return fmt.Sprintf("PreVoteReply{t=%d granted=%v}", m.Term, m.Granted)
}

// RequestVoteReply is the paper's ack_RequestVote[term, voteGranted].
type RequestVoteReply struct {
	Term        int
	VoteGranted bool
}

// String implements fmt.Stringer.
func (m RequestVoteReply) String() string {
	return fmt.Sprintf("RequestVoteReply{t=%d granted=%v}", m.Term, m.VoteGranted)
}

// AppendEntries carries log entries (or a bare heartbeat / commit-index
// update when Entries is empty) from the leader. The paper distinguishes
// two kinds: the first appends tentative entries, the second only raises
// the commit index; both are this one type, exactly as in Raft.
//
// ReadID piggybacks the linearizable-read fast path (Raft §6.4) on the
// existing replication traffic: it is the leader's latest read-round id,
// echoed back in every same-term reply. A quorum of echoes ≥ id proves
// the sender was still leader after round id began, which confirms every
// pending ReadIndex batch with a smaller or equal id — no log append and
// no fsync per read.
type AppendEntries struct {
	Term         int
	LeaderID     int
	PrevLogIndex int
	PrevLogTerm  int
	Entries      []Entry
	LeaderCommit int
	ReadID       int
}

// String implements fmt.Stringer.
func (m AppendEntries) String() string {
	return fmt.Sprintf("AppendEntries{t=%d leader=%d prev=%d/%d entries=%d commit=%d read=%d}",
		m.Term, m.LeaderID, m.PrevLogIndex, m.PrevLogTerm, len(m.Entries), m.LeaderCommit, m.ReadID)
}

// InstallSnapshot ships a compacted leader's state-machine snapshot to a
// follower whose log gap has been garbage-collected (Raft §7). The
// follower answers with AppendEntriesReply{MatchIndex: LastIncludedIndex}.
type InstallSnapshot struct {
	Term              int
	LeaderID          int
	LastIncludedIndex int
	LastIncludedTerm  int
	Data              []byte
}

// String implements fmt.Stringer.
func (m InstallSnapshot) String() string {
	return fmt.Sprintf("InstallSnapshot{t=%d leader=%d last=%d/%d bytes=%d}",
		m.Term, m.LeaderID, m.LastIncludedIndex, m.LastIncludedTerm, len(m.Data))
}

// AppendEntriesReply is the paper's ack_AppendEntries[term, success],
// extended with MatchIndex: over a raw asynchronous message channel there
// is no RPC session to correlate an ack with its request, so the follower
// reports how far its log provably matches the leader's. (RPC-based Raft
// implementations reconstruct this from the in-flight request instead.)
//
// On rejection, RejectHint carries the highest index that could possibly
// match — min(PrevLogIndex-1, the follower's last index). Because the
// hint is derived from the rejected message itself, the leader's rewind
// makes progress even while pipelined sends have optimistically advanced
// NextIndex past the probe (§5.3's one-decrement-per-reject walk would
// merely undo the optimistic bump and loop forever).
type AppendEntriesReply struct {
	Term       int
	Success    bool
	MatchIndex int
	RejectHint int
	// ReadID echoes the request's read-round id. Even a log-mismatch
	// rejection echoes it: the follower processed a message from this
	// leader in the current term, which is the leadership acknowledgement
	// ReadIndex confirmation needs (the log repair is orthogonal).
	ReadID int
}

// String implements fmt.Stringer.
func (m AppendEntriesReply) String() string {
	return fmt.Sprintf("AppendEntriesReply{t=%d ok=%v match=%d hint=%d read=%d}", m.Term, m.Success, m.MatchIndex, m.RejectHint, m.ReadID)
}

// ReadIndexRequest forwards a follower-received read to the leader (Raft
// §6.4 follower reads): the follower asks the leader for a confirmed
// read index, then serves the read from its own state machine once its
// applied index catches up. Lease carries the client's consistency mode
// so the leader may answer from a held lease without a quorum round.
type ReadIndexRequest struct {
	Term  int   // the follower's current term (stale requests are refused)
	ID    int64 // follower-local correlation id, echoed in the reply
	Lease bool  // true when the client asked for ReadLease semantics
}

// String implements fmt.Stringer.
func (m ReadIndexRequest) String() string {
	return fmt.Sprintf("ReadIndexRequest{t=%d id=%d lease=%v}", m.Term, m.ID, m.Lease)
}

// ReadIndexReply answers a ReadIndexRequest. Success=false means the
// responder is not (or no longer) the leader and the follower should
// fail the read back to its client for a retry.
type ReadIndexReply struct {
	Term    int
	ID      int64
	Index   int // the confirmed read index (valid when Success)
	Success bool
	Lease   bool // the leader served this from a held lease (telemetry)
	// LeaderID names the current leader as the responder knows it, so a
	// failed forward seeds the remote client's leader hint on the first
	// redirect instead of the second. none (-1) when unknown — including
	// replies decoded from peers running the pre-PR9 wire format.
	LeaderID int
}

// String implements fmt.Stringer.
func (m ReadIndexReply) String() string {
	return fmt.Sprintf("ReadIndexReply{t=%d id=%d idx=%d ok=%v lease=%v ldr=%d}", m.Term, m.ID, m.Index, m.Success, m.Lease, m.LeaderID)
}

// WireTypes lists every message type this package puts on the network,
// for registration with gob-based transports. Entry commands must be
// registered separately by the application (see transport.Register).
func WireTypes() []any {
	return []any{
		RequestVote{}, RequestVoteReply{},
		PreVote{}, PreVoteReply{},
		AppendEntries{}, AppendEntriesReply{},
		ReadIndexRequest{}, ReadIndexReply{},
		InstallSnapshot{},
		Entry{}, DS{}, KVCommand{}, Noop{},
	}
}
