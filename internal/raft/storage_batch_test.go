package raft

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ooc/internal/sim"
)

func TestFileStorageAppendBatchSingleSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raft.log")
	s, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	before := s.Syncs()
	batch := []LogMutation{
		{PrevIndex: 0, Entries: []Entry{{Term: 1, Command: KVCommand{Op: "set", Key: "a", Value: "1"}}}},
		{PrevIndex: 1, Entries: []Entry{{Term: 1, Command: KVCommand{Op: "set", Key: "b", Value: "2"}}}},
		{PrevIndex: 2, Entries: []Entry{{Term: 2, Command: KVCommand{Op: "set", Key: "c", Value: "3"}}}},
	}
	if err := s.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := s.Syncs() - before; got != 1 {
		t.Fatalf("AppendBatch issued %d syncs, want 1 (group commit)", got)
	}
	// The batch must replay identically to sequential TruncateAndAppend.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Entries) != 3 || st.Entries[2].Term != 2 {
		t.Fatalf("batch replay: %+v", st.Entries)
	}
}

func TestFileStorageRejectsInteriorCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raft.log")
	s, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetState(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateAndAppend(0, []Entry{{Term: 1, Command: KVCommand{Op: "set", Key: "a", Value: "1"}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside the *first* record: a complete frame
	// whose checksum no longer matches. Unlike a torn tail this is disk
	// corruption, and silently dropping the suffix would roll back
	// acknowledged state — Load must refuse.
	f, err := os.OpenFile(path, os.O_RDWR, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, frameHeaderSize+2); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, frameHeaderSize+2); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	s2, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	if _, err := s2.Load(); !errors.Is(err, errCorrupt) {
		t.Fatalf("Load on interior corruption = %v, want errCorrupt", err)
	}
}

func TestFileStorageTornTailThenAppend(t *testing.T) {
	// Regression: a crash tears the final record, the node restarts and
	// keeps writing. The torn bytes must not linger between the surviving
	// prefix and the new records — Load truncates them away, so the next
	// Load sees prefix + post-crash records, not garbage mid-file.
	path := filepath.Join(t.TempDir(), "raft.log")
	s, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateAndAppend(0, []Entry{{Term: 1, Command: KVCommand{Op: "set", Key: "a", Value: "1"}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateAndAppend(1, []Entry{{Term: 1, Command: KVCommand{Op: "set", Key: "b", Value: "2"}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the second record in half.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	// Restarted node: Load drops the torn record, then appends more.
	s2, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Entries) != 1 {
		t.Fatalf("after torn tail: %+v", st.Entries)
	}
	if err := s2.TruncateAndAppend(1, []Entry{{Term: 2, Command: KVCommand{Op: "set", Key: "c", Value: "3"}}}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s3.Close() }()
	st, err = s3.Load()
	if err != nil {
		t.Fatalf("post-crash append landed on a dirty tail: %v", err)
	}
	if len(st.Entries) != 2 || st.Entries[1].Term != 2 {
		t.Fatalf("post-crash log: %+v", st.Entries)
	}
	if c, ok := st.Entries[1].Command.(KVCommand); !ok || c.Key != "c" {
		t.Fatalf("post-crash entry mangled: %+v", st.Entries[1])
	}
}

// TestAppendBatchPrefixReplayConsistent is the crash-consistency property
// of the group-commit path: cut the file at ANY byte offset (a crash can
// tear a batched write anywhere) and Load must succeed, yielding exactly
// the state produced by replaying the complete-record prefix — never an
// error, never a state that skips a middle record.
func TestAppendBatchPrefixReplayConsistent(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := sim.NewRNG(seed)

		// Build a random but valid mutation history.
		var muts []LogMutation
		logLen := 0
		for i := 0; i < 6; i++ {
			prev := rng.Intn(logLen + 1)
			n := 1 + rng.Intn(3)
			es := make([]Entry, n)
			for j := range es {
				es[j] = Entry{Term: i + 1, Command: KVCommand{Op: "set", Key: "k", Value: "v"}}
			}
			muts = append(muts, LogMutation{PrevIndex: prev, Entries: es})
			logLen = prev + n
		}

		dir := t.TempDir()
		path := filepath.Join(dir, "raft.log")
		s, err := OpenFileStorage(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetState(1, 0); err != nil {
			t.Fatal(err)
		}
		if err := s.AppendBatch(muts); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		full, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		// Frame boundaries, from the length headers.
		var ends []int64
		for off := int64(0); off+frameHeaderSize <= int64(len(full)); {
			length := int64(binary.LittleEndian.Uint32(full[off : off+4]))
			next := off + frameHeaderSize + length
			if next > int64(len(full)) {
				break
			}
			ends = append(ends, next)
			off = next
		}
		if len(ends) != len(muts)+1 { // +1 for the state record
			t.Fatalf("seed %d: parsed %d frames, want %d", seed, len(ends), len(muts)+1)
		}

		// Expected state after each record prefix, via the in-memory model.
		expect := make([]PersistentState, len(ends)+1)
		mem := NewMemStorage()
		expect[0], _ = mem.Load()
		_ = mem.SetState(1, 0)
		expect[1], _ = mem.Load()
		for i, m := range muts {
			if err := mem.TruncateAndAppend(m.PrevIndex, m.Entries); err != nil {
				t.Fatal(err)
			}
			expect[i+2], _ = mem.Load()
		}

		// Every frame boundary (±1 byte) plus a stride through the file:
		// exhaustive-by-byte is O(file²) in Load work for no extra coverage.
		cuts := map[int64]bool{0: true, int64(len(full)): true}
		for _, e := range ends {
			cuts[e-1], cuts[e] = true, true
			if e+1 <= int64(len(full)) {
				cuts[e+1] = true
			}
		}
		for off := int64(0); off < int64(len(full)); off += 7 {
			cuts[off] = true
		}
		for cut := range cuts {
			k := 0
			for _, e := range ends {
				if e <= cut {
					k++
				}
			}
			p := filepath.Join(dir, "cut.log")
			if err := os.WriteFile(p, full[:cut], 0o600); err != nil {
				t.Fatal(err)
			}
			cs, err := OpenFileStorage(p)
			if err != nil {
				t.Fatal(err)
			}
			st, err := cs.Load()
			_ = cs.Close()
			if err != nil {
				t.Fatalf("seed %d cut %d: Load: %v", seed, cut, err)
			}
			want := expect[k]
			if st.Term != want.Term || st.VotedFor != want.VotedFor || len(st.Entries) != len(want.Entries) {
				t.Fatalf("seed %d cut %d (%d records): got term=%d vote=%d len=%d, want term=%d vote=%d len=%d",
					seed, cut, k, st.Term, st.VotedFor, len(st.Entries), want.Term, want.VotedFor, len(want.Entries))
			}
			for i := range st.Entries {
				if st.Entries[i].Term != want.Entries[i].Term {
					t.Fatalf("seed %d cut %d: entry %d term %d, want %d", seed, cut, i, st.Entries[i].Term, want.Entries[i].Term)
				}
			}
		}
	}
}
