package raft

import (
	"context"
	"fmt"

	"ooc/internal/core"
)

// VAC is the paper's Algorithm 10: Raft's candidate → leader → commit
// pipeline viewed as a vacillate-adopt-commit object. Each Propose call
// waits for this processor's next observable outcome:
//
//   - the election timer fires without progress → (vacillate, v): the
//     processor has no guarantee about the system state;
//   - a D&S entry lands in the log (the first kind of AppendEntries, or
//     the leader's own append) → (adopt, u): within the entry's term all
//     such appends carry the same value, since Raft elects at most one
//     leader per term;
//   - the commit index covers a D&S entry (the second kind of
//     AppendEntries, or the leader counting a majority) → (commit, u):
//     leader completeness and state machine safety guarantee every other
//     processor converges on u.
//
// The paper's caveats carry over: rounds correspond to terms only
// loosely, and convergence does not hold as-is ("the algorithm was made
// for real world log consistency rather than theoretical consensus") —
// even on unanimous inputs a leader must first be elected. Level
// coherence between vacillate and commit is likewise only eventual: a
// processor may time out while a commit it has not yet heard about
// exists. Value coherence — every adopt/commit of the same term carries
// one value, and all commits ever carry one value — is exact, and is what
// the tests verify.
//
// The node must run in ManualCampaign mode: the timer's only job is to
// report vacillation, and the Reconciliator owns the response.
type VAC[V comparable] struct {
	node *Node
	sub  *Subscription
}

var _ core.VacillateAdoptCommit[int] = (*VAC[int])(nil)

// NewVAC wraps a started-or-startable ManualCampaign node. Subscribe
// happens here, so construct the VAC before calling node.Start to avoid
// missing early events.
func NewVAC[V comparable](node *Node) (*VAC[V], error) {
	if !node.cfg.ManualCampaign {
		return nil, fmt.Errorf("raft: VAC requires a ManualCampaign node")
	}
	return &VAC[V]{node: node, sub: node.Subscribe()}, nil
}

// Propose implements core.VacillateAdoptCommit. The input v is only a
// fallback preference: Raft derives values from the log, so v matters
// when this processor later campaigns (via the Reconciliator).
func (va *VAC[V]) Propose(ctx context.Context, v V, _ int) (core.Confidence, V, error) {
	for {
		ev, err := va.sub.Next(ctx)
		if err != nil {
			return 0, v, fmt.Errorf("raft: vac: %w", err)
		}
		switch ev.Kind {
		case EventTimeout:
			return core.Vacillate, v, nil
		case EventAppended:
			if u, ok := dsValue[V](ev.Command); ok {
				return core.Adopt, u, nil
			}
		case EventCommitted:
			if u, ok := dsValue[V](ev.Command); ok {
				return core.Commit, u, nil
			}
		}
	}
}

// dsValue extracts the typed value from a D&S command.
func dsValue[V comparable](cmd any) (V, bool) {
	var zero V
	ds, ok := cmd.(DS)
	if !ok {
		return zero, false
	}
	u, ok := ds.Value.(V)
	if !ok {
		return zero, false
	}
	return u, true
}

// Reconciliator is the paper's Algorithm 11: "Reset timer and update
// term; D&S(v) ← log[lastLogIndex]; return v". Operationally: restart the
// protocol by campaigning with our current preference; if this processor
// wins the election it proposes D&S(v). Weak agreement comes from the
// randomized timers (the paper's timing property): eventually some
// campaigner wins a full term and drives everyone to its value.
type Reconciliator[V comparable] struct {
	node *Node
}

var _ core.Reconciliator[int] = (*Reconciliator[int])(nil)

// NewReconciliator builds the timer-reset reconciliator for node.
func NewReconciliator[V comparable](node *Node) *Reconciliator[V] {
	return &Reconciliator[V]{node: node}
}

// Reconcile implements core.Reconciliator.
func (r *Reconciliator[V]) Reconcile(_ context.Context, _ core.Confidence, v V, _ int) (V, error) {
	r.node.Campaign(DS{Value: v})
	return v, nil
}

// RunVACConsensus wires Algorithms 10 and 11 under the generic template
// (Algorithm 1): it constructs the VAC and Reconciliator over node,
// starts the node, and runs core.RunVAC. The node keeps serving the
// cluster (heartbeats, commit propagation) until ctx ends, even after the
// local decision — matching the paper's observation that the protocol is
// unending while eventually everyone commits.
func RunVACConsensus[V comparable](ctx context.Context, node *Node, v V, opts ...core.Option) (core.Decision[V], error) {
	vac, err := NewVAC[V](node)
	if err != nil {
		return core.Decision[V]{}, err
	}
	node.Start(ctx)
	return core.RunVAC[V](ctx, vac, NewReconciliator[V](node), v, opts...)
}
