package raft

import (
	"context"
	"fmt"
	"sync"
)

// EventKind enumerates the observable protocol transitions a node emits.
// The VAC view (Algorithm 10) and the experiments are built on these.
type EventKind int

// The event kinds.
const (
	// EventBecameFollower fires on any transition (back) to follower.
	EventBecameFollower EventKind = iota + 1
	// EventBecameCandidate fires when the node starts an election.
	EventBecameCandidate
	// EventBecameLeader fires when the node wins an election.
	EventBecameLeader
	// EventAppended fires when an entry lands in this node's log —
	// tentatively, i.e. the paper's first kind of AppendEntries (or the
	// leader's own append).
	EventAppended
	// EventCommitted fires for each entry whose commit is learned — the
	// paper's second kind of AppendEntries (or the leader counting a
	// majority).
	EventCommitted
	// EventApplied fires when an entry is applied to the state machine.
	EventApplied
	// EventTimeout fires when the election timer expires. In manual-
	// campaign mode (the VAC view) nothing else happens; otherwise the
	// node has started campaigning.
	EventTimeout
)

var eventKindNames = map[EventKind]string{
	EventBecameFollower:  "became-follower",
	EventBecameCandidate: "became-candidate",
	EventBecameLeader:    "became-leader",
	EventAppended:        "appended",
	EventCommitted:       "committed",
	EventApplied:         "applied",
	EventTimeout:         "timeout",
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if n, ok := eventKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one observable protocol transition.
type Event struct {
	Kind    EventKind
	Node    int
	Term    int
	Index   int // log index for Appended/Committed/Applied
	Command any // command for Appended/Committed/Applied
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%v{node=%d term=%d idx=%d cmd=%v}", e.Kind, e.Node, e.Term, e.Index, e.Command)
}

// eventQueue is an unbounded FIFO of events: the node's main loop must
// never block on a slow observer, and the VAC view must never lose an
// event, so neither a bounded channel nor best-effort dropping works.
type eventQueue struct {
	mu     sync.Mutex
	events []Event
	closed bool
	notify chan struct{} // 1-buffered wakeup signal
	done   chan struct{}
}

func newEventQueue() *eventQueue {
	return &eventQueue{
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// push appends an event; it never blocks.
func (q *eventQueue) push(e Event) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.events = append(q.events, e)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// pop blocks until an event is available, the context is cancelled, or
// the queue closes.
func (q *eventQueue) pop(ctx context.Context) (Event, error) {
	for {
		q.mu.Lock()
		if len(q.events) > 0 {
			e := q.events[0]
			q.events = q.events[1:]
			q.mu.Unlock()
			return e, nil
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return Event{}, ErrStopped
		}
		select {
		case <-ctx.Done():
			return Event{}, ctx.Err()
		case <-q.notify:
		case <-q.done:
		}
	}
}

// close wakes all blocked pops.
func (q *eventQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.done)
}
