package raft

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"ooc/internal/checker"
)

// withLease enables leader leases on every node of a test cluster.
func withLease(d time.Duration) func(*Config) {
	return func(cfg *Config) { cfg.LeaseDuration = d }
}

func TestReadConsistencyParseRoundTrip(t *testing.T) {
	for _, rc := range []ReadConsistency{ReadLinearizable, ReadLease, ReadStale, ReadLogCommand} {
		got, err := ParseReadConsistency(rc.String())
		if err != nil || got != rc {
			t.Fatalf("round trip %v: got %v, %v", rc, got, err)
		}
	}
	if _, err := ParseReadConsistency("bogus"); err == nil {
		t.Fatal("want error for unknown mode")
	}
}

// TestReadIndexObservesCommittedWrite is the basic fast-path contract: a
// ReadIndex issued after a write completes must return an index covering
// that write, and the local state machine must show it.
func TestReadIndexObservesCommittedWrite(t *testing.T) {
	c := newCluster(t, 3, 1)
	leader := c.waitLeader()
	idx := c.propose(KVCommand{Op: "set", Key: "x", Value: "1"})
	c.waitApplied(idx, leader)

	rctx, cancel := context.WithTimeout(c.ctx, 5*time.Second)
	defer cancel()
	readIdx, err := c.nodes[leader].ReadIndex(rctx)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	if readIdx < idx {
		t.Fatalf("read index %d does not cover committed write at %d", readIdx, idx)
	}
	if v, ok := c.kvs[leader].Get("x"); !ok || v != "1" {
		t.Fatalf("leader state machine: got %q,%v want \"1\"", v, ok)
	}
	if _, index, _, _ := c.nodes[leader].ReadStats(); index == 0 {
		t.Fatal("read was not attributed to the ReadIndex path")
	}
	c.checkElectionSafety()
}

// TestReadIndexPendingCommit issues the read while the write is still in
// flight (invoked after Propose returned, i.e. after the entry is in the
// leader's log): once both complete, the read index must not be behind
// the commit the leader had already acknowledged replicating.
func TestReadIndexPendingCommit(t *testing.T) {
	c := newCluster(t, 3, 2)
	leader := c.waitLeader()
	warm := c.propose(KVCommand{Op: "set", Key: "warm", Value: "1"})
	c.waitApplied(warm, leader)

	idx, err := c.nodes[leader].Propose(c.ctx, KVCommand{Op: "set", Key: "y", Value: "2"})
	if err != nil {
		t.Fatalf("propose: %v", err)
	}
	// The read is invoked with the write pending; it must still observe a
	// consistent snapshot — and once the write's index is covered by the
	// returned read index, the value must be visible locally.
	rctx, cancel := context.WithTimeout(c.ctx, 5*time.Second)
	defer cancel()
	readIdx, err := c.nodes[leader].ReadIndex(rctx)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	if readIdx >= idx {
		if v, ok := c.kvs[leader].Get("y"); !ok || v != "2" {
			t.Fatalf("read index %d covers write %d but value invisible (%q,%v)", readIdx, idx, v, ok)
		}
	}
	c.checkElectionSafety()
}

// TestFollowerReadForwards exercises the relay path: a follower read
// forwards to the leader for a confirmed index, waits for its own apply
// to catch up, and serves locally.
func TestFollowerReadForwards(t *testing.T) {
	c := newCluster(t, 3, 3)
	leader := c.waitLeader()
	idx := c.propose(KVCommand{Op: "set", Key: "k", Value: "v"})
	c.waitApplied(idx, 0, 1, 2)

	follower := (leader + 1) % 3
	rctx, cancel := context.WithTimeout(c.ctx, 5*time.Second)
	defer cancel()
	readIdx, err := c.nodes[follower].ReadIndex(rctx)
	if err != nil {
		t.Fatalf("follower ReadIndex: %v", err)
	}
	if readIdx < idx {
		t.Fatalf("forwarded read index %d does not cover write at %d", readIdx, idx)
	}
	if v, ok := c.kvs[follower].Get("k"); !ok || v != "v" {
		t.Fatalf("follower state machine: got %q,%v want \"v\"", v, ok)
	}
	if _, _, _, fwd := c.nodes[follower].ReadStats(); fwd == 0 {
		t.Fatal("follower did not record a forwarded read")
	}
	c.checkElectionSafety()
}

// TestLeaseServesWithoutQuorumRound warms a lease and checks that
// lease-mode reads are attributed to the lease path (no confirmation
// round), while linearizable reads keep taking ReadIndex rounds.
func TestLeaseServesWithoutQuorumRound(t *testing.T) {
	c := newCluster(t, 3, 4, withLease(testElection/2))
	leader := c.waitLeader()
	idx := c.propose(KVCommand{Op: "set", Key: "a", Value: "b"})
	c.waitApplied(idx, leader)
	// Let at least one heartbeat-tick round confirm so the lease is held.
	time.Sleep(3 * testHeartbeat)

	rctx, cancel := context.WithTimeout(c.ctx, 5*time.Second)
	defer cancel()
	var leaseServed bool
	for i := 0; i < 20; i++ {
		if _, err := c.nodes[leader].ReadIndexMode(rctx, ReadLease); err != nil {
			t.Fatalf("lease read %d: %v", i, err)
		}
		if lease, _, _, _ := c.nodes[leader].ReadStats(); lease > 0 {
			leaseServed = true
			break
		}
		time.Sleep(testHeartbeat)
	}
	if !leaseServed {
		t.Fatal("no read was ever served from the lease")
	}

	if _, err := c.nodes[leader].ReadIndex(rctx); err != nil {
		t.Fatalf("linearizable read: %v", err)
	}
	if _, index, _, _ := c.nodes[leader].ReadStats(); index == 0 {
		t.Fatal("linearizable read was not attributed to the ReadIndex path")
	}
	c.checkElectionSafety()
}

// TestDeposedLeaderDoesNotServeStaleReads is the lease-safety regression:
// partition the leader away, let the majority elect a successor and
// commit a new value, and verify the deposed leader — lease long
// expired — cannot serve a read of the old state.
func TestDeposedLeaderDoesNotServeStaleReads(t *testing.T) {
	c := newCluster(t, 5, 5, withLease(testElection/2))
	old := c.waitLeader()
	idx := c.propose(KVCommand{Op: "set", Key: "k", Value: "old"})
	c.waitApplied(idx, old)

	// Isolate the old leader with no followers.
	var rest []int
	for id := 0; id < 5; id++ {
		if id != old {
			rest = append(rest, id)
		}
	}
	c.nw.Partition([]int{old}, rest)

	// Majority side elects a successor and moves on.
	var newLeader int
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no new leader in majority partition")
		}
		found := false
		for _, id := range rest {
			if st := c.nodes[id].Status(); st.State == Leader && st.Term > c.nodes[old].Status().Term-1 {
				newLeader, found = id, true
			}
		}
		if found && newLeader != old {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	idx2, err := c.nodes[newLeader].Propose(c.ctx, KVCommand{Op: "set", Key: "k", Value: "new"})
	if err != nil {
		t.Fatalf("propose on new leader: %v", err)
	}
	c.waitApplied(idx2, newLeader)

	// The old leader's lease expired long ago (testElection/2 with no
	// confirmable rounds since the partition). A lease read must NOT be
	// served from local state: it falls back to a confirmation round that
	// can never succeed, so it must time out or fail — never return "old".
	time.Sleep(2 * testElection) // well past any lease the old leader held
	rctx, cancel := context.WithTimeout(context.Background(), 4*testElection)
	_, rerr := c.nodes[old].ReadIndexMode(rctx, ReadLease)
	cancel()
	if rerr == nil {
		t.Fatal("deposed leader served a lease read while partitioned from the quorum")
	}
	if !errors.Is(rerr, context.DeadlineExceeded) {
		var nl ErrNotLeader
		if !errors.As(rerr, &nl) && !errors.Is(rerr, ErrStopped) {
			t.Fatalf("unexpected error from deposed leader read: %v", rerr)
		}
	}

	// After healing, the deposed leader catches up and a linearizable
	// read through it (forwarded or local after stepDown) sees "new".
	c.nw.Heal()
	c.waitApplied(idx2, old)
	rctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if _, err := c.nodes[old].ReadIndex(rctx2); err != nil {
		t.Fatalf("post-heal read: %v", err)
	}
	if v, _ := c.kvs[old].Get("k"); v != "new" {
		t.Fatalf("post-heal read observed %q, want \"new\"", v)
	}
	c.checkElectionSafety()
}

// TestReadHistoryLinearizable runs a concurrent closed-loop mix through
// the Client — one writer per key, several readers per mode — and feeds
// the timestamped history to the register-linearizability checker.
func TestReadHistoryLinearizable(t *testing.T) {
	for _, mode := range []ReadConsistency{ReadLinearizable, ReadLease} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			var opts []func(*Config)
			if mode == ReadLease {
				opts = append(opts, withLease(testElection/2))
			}
			c := newCluster(t, 3, 6+uint64(mode), opts...)
			c.waitLeader()
			client, err := NewClient(c.nodes, WithClientBackoff(time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}

			var (
				mu      sync.Mutex
				history []checker.RWOp
			)
			record := func(op checker.RWOp) {
				mu.Lock()
				history = append(history, op)
				mu.Unlock()
			}
			start := time.Now()
			runCtx, cancel := context.WithTimeout(c.ctx, 300*time.Millisecond)
			var wg sync.WaitGroup

			// One closed-loop writer: versions increase, writes never overlap.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for v := int64(1); ; v++ {
					invoke := time.Since(start).Nanoseconds()
					_, err := client.SubmitWait(runCtx, KVCommand{Op: "set", Key: "x", Value: strconv.FormatInt(v, 10)})
					ret := time.Since(start).Nanoseconds()
					if err != nil {
						// Window closed mid-write with the outcome unknown —
						// the command may still have committed, and a read may
						// legitimately observe it. Record it as the (final)
						// write completing at the window edge; if it never
						// committed, an extra never-observed write is harmless.
						record(checker.RWOp{Key: "x", Version: v, Invoke: invoke, Return: ret})
						return
					}
					record(checker.RWOp{Key: "x", Version: v, Invoke: invoke, Return: ret})
				}
			}()
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						invoke := time.Since(start).Nanoseconds()
						val, found, err := client.ReadWith(runCtx, "x", mode)
						if err != nil {
							return
						}
						ret := time.Since(start).Nanoseconds()
						var ver int64
						if found {
							ver, err = strconv.ParseInt(val, 10, 64)
							if err != nil {
								t.Errorf("unparseable value %q", val)
								return
							}
						}
						record(checker.RWOp{Read: true, Key: "x", Version: ver, Invoke: invoke, Return: ret})
					}
				}()
			}
			wg.Wait()
			cancel()

			reads := 0
			for _, op := range history {
				if op.Read {
					reads++
				}
			}
			if reads == 0 || reads == len(history) {
				t.Fatalf("degenerate history: %d reads of %d ops", reads, len(history))
			}
			if rep := checker.CheckRegisterLinearizable(history); !rep.Ok() {
				t.Fatalf("linearizability violated (%d ops): %v", len(history), rep.Violations[0])
			}
			c.checkElectionSafety()
		})
	}
}

// TestStaleReadMode sanity-checks the uncoordinated mode: it serves from
// any node without error and is attributed to the stale path.
func TestStaleReadMode(t *testing.T) {
	c := newCluster(t, 3, 9)
	leader := c.waitLeader()
	idx := c.propose(KVCommand{Op: "set", Key: "s", Value: "1"})
	c.waitApplied(idx, 0, 1, 2)
	for id := range c.nodes {
		rctx, cancel := context.WithTimeout(c.ctx, time.Second)
		if _, err := c.nodes[id].ReadIndexMode(rctx, ReadStale); err != nil {
			t.Fatalf("stale read on node %d: %v", id, err)
		}
		cancel()
		if _, _, stale, _ := c.nodes[id].ReadStats(); stale == 0 {
			t.Fatalf("node %d read not attributed to the stale path", id)
		}
	}
	_ = leader
	c.checkElectionSafety()
}
