package raft

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ooc/internal/core"
	"ooc/internal/netsim"
	"ooc/internal/sim"
)

const (
	testElection  = 40 * time.Millisecond
	testHeartbeat = 8 * time.Millisecond
)

// cluster is a test harness: n Raft nodes over a simulated network.
type cluster struct {
	t      *testing.T
	nw     *netsim.Network
	nodes  []*Node
	kvs    []*KVStore
	subs   []*Subscription
	cancel context.CancelFunc
	ctx    context.Context
}

func newCluster(t *testing.T, n int, seed uint64, opts ...func(*Config)) *cluster {
	t.Helper()
	nw := netsim.New(n, netsim.WithSeed(seed))
	ctx, cancel := context.WithCancel(context.Background())
	c := &cluster{t: t, nw: nw, cancel: cancel, ctx: ctx}
	t.Cleanup(cancel)
	rng := sim.NewRNG(seed)
	for id := 0; id < n; id++ {
		kv := &KVStore{}
		cfg := Config{
			ID:                id,
			Endpoint:          nw.Node(id),
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   testElection,
			HeartbeatInterval: testHeartbeat,
			StateMachine:      kv,
		}
		for _, opt := range opts {
			opt(&cfg)
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, node)
		c.kvs = append(c.kvs, kv)
		c.subs = append(c.subs, node.Subscribe())
	}
	for _, node := range c.nodes {
		node.Start(ctx)
	}
	return c
}

// waitLeader blocks until some non-crashed node reports itself leader and
// returns its id.
func (c *cluster) waitLeader() int {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for id, node := range c.nodes {
			if c.nw.Crashed(id) {
				continue
			}
			if st := node.Status(); st.State == Leader {
				return id
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatal("no leader elected within deadline")
	return -1
}

// waitApplied blocks until every node in ids has applied through index.
func (c *cluster) waitApplied(index int, ids ...int) {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, id := range ids {
			if c.kvs[id].AppliedIndex() < index {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, id := range ids {
		c.t.Logf("node %d applied %d, status %v", id, c.kvs[id].AppliedIndex(), c.nodes[id].Status())
	}
	c.t.Fatalf("nodes did not apply index %d within deadline", index)
}

// propose proposes through the current leader, retrying across leadership
// changes.
func (c *cluster) propose(cmd any) int {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		leader := c.waitLeader()
		idx, err := c.nodes[leader].Propose(c.ctx, cmd)
		if err == nil {
			return idx
		}
		var nl ErrNotLeader
		if !errors.As(err, &nl) {
			c.t.Fatalf("propose: %v", err)
		}
	}
	c.t.Fatal("could not propose within deadline")
	return 0
}

// checkElectionSafety drains all event subscriptions and asserts at most
// one leader per term.
func (c *cluster) checkElectionSafety() {
	c.t.Helper()
	leaders := make(map[int]int) // term -> node
	for id, sub := range c.subs {
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			ev, err := sub.Next(ctx)
			cancel()
			if err != nil {
				break
			}
			if ev.Kind == EventBecameLeader {
				if prev, ok := leaders[ev.Term]; ok && prev != id {
					c.t.Fatalf("election safety violated: term %d has leaders %d and %d", ev.Term, prev, id)
				}
				leaders[ev.Term] = id
			}
		}
	}
}

func TestSingleNodeBecomesLeaderAndCommits(t *testing.T) {
	c := newCluster(t, 1, 1)
	leader := c.waitLeader()
	if leader != 0 {
		t.Fatalf("leader = %d", leader)
	}
	idx := c.propose(KVCommand{Op: "set", Key: "x", Value: "1"})
	c.waitApplied(idx, 0)
	if v, ok := c.kvs[0].Get("x"); !ok || v != "1" {
		t.Fatalf("Get(x) = %q %v", v, ok)
	}
}

func TestLeaderElection(t *testing.T) {
	for _, n := range []int{3, 5} {
		c := newCluster(t, n, uint64(n))
		leader := c.waitLeader()
		st := c.nodes[leader].Status()
		if st.State != Leader {
			t.Fatalf("n=%d: status flapped: %v", n, st)
		}
		// Followers learn the leader.
		deadline := time.Now().Add(10 * time.Second)
		for id := range c.nodes {
			for time.Now().Before(deadline) {
				if s := c.nodes[id].Status(); s.LeaderID == leader && s.Term >= st.Term {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		c.checkElectionSafety()
		c.cancel()
	}
}

func TestReplicationToAllNodes(t *testing.T) {
	c := newCluster(t, 3, 7)
	var lastIdx int
	for i, kv := range []KVCommand{
		{Op: "set", Key: "a", Value: "1"},
		{Op: "set", Key: "b", Value: "2"},
		{Op: "set", Key: "a", Value: "3"},
		{Op: "delete", Key: "b"},
	} {
		lastIdx = c.propose(kv)
		_ = i
	}
	c.waitApplied(lastIdx, 0, 1, 2)
	for id, kv := range c.kvs {
		if v, ok := kv.Get("a"); !ok || v != "3" {
			t.Fatalf("node %d: a=%q %v", id, v, ok)
		}
		if _, ok := kv.Get("b"); ok {
			t.Fatalf("node %d: b still present", id)
		}
	}
	c.checkElectionSafety()
}

func TestProposeOnFollowerRedirects(t *testing.T) {
	c := newCluster(t, 3, 11)
	leader := c.waitLeader()
	// Give followers a moment to learn the leader via heartbeat.
	idx := c.propose(KVCommand{Op: "set", Key: "k", Value: "v"})
	c.waitApplied(idx, 0, 1, 2)
	for id, node := range c.nodes {
		if id == leader {
			continue
		}
		_, err := node.Propose(c.ctx, KVCommand{Op: "set", Key: "nope", Value: "x"})
		var nl ErrNotLeader
		if err == nil {
			// This follower may have since become leader; acceptable.
			continue
		}
		if !errors.As(err, &nl) {
			t.Fatalf("node %d: err = %v, want ErrNotLeader", id, err)
		}
		if nl.Error() == "" {
			t.Fatal("empty error string")
		}
	}
}

func TestLeaderCrashFailover(t *testing.T) {
	c := newCluster(t, 5, 13)
	idx := c.propose(KVCommand{Op: "set", Key: "stable", Value: "yes"})
	c.waitApplied(idx, 0, 1, 2, 3, 4)

	leader1 := c.waitLeader()
	c.nw.Crash(leader1)

	// A new leader emerges among the survivors and progress continues.
	deadline := time.Now().Add(15 * time.Second)
	var leader2 = -1
	for time.Now().Before(deadline) && leader2 == -1 {
		for id, node := range c.nodes {
			if id == leader1 || c.nw.Crashed(id) {
				continue
			}
			if node.Status().State == Leader {
				leader2 = id
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if leader2 == -1 {
		t.Fatal("no failover leader")
	}
	idx2, err := c.nodes[leader2].Propose(c.ctx, KVCommand{Op: "set", Key: "after", Value: "crash"})
	if err != nil {
		// Raced with a concurrent election; retry via helper.
		idx2 = c.propose(KVCommand{Op: "set", Key: "after", Value: "crash"})
	}
	survivors := []int{}
	for id := range c.nodes {
		if !c.nw.Crashed(id) {
			survivors = append(survivors, id)
		}
	}
	c.waitApplied(idx2, survivors...)
	for _, id := range survivors {
		if v, ok := c.kvs[id].Get("stable"); !ok || v != "yes" {
			t.Fatalf("node %d lost committed entry: stable=%q %v", id, v, ok)
		}
		if v, ok := c.kvs[id].Get("after"); !ok || v != "crash" {
			t.Fatalf("node %d missing post-crash entry", id)
		}
	}
	c.checkElectionSafety()
}

func TestPartitionMinorityLeaderCannotCommit(t *testing.T) {
	c := newCluster(t, 5, 17)
	leader := c.waitLeader()
	idx := c.propose(KVCommand{Op: "set", Key: "pre", Value: "1"})
	c.waitApplied(idx, 0, 1, 2, 3, 4)

	// Cut the leader (plus one friend) off from the majority.
	friend := (leader + 1) % 5
	minority := []int{leader, friend}
	var majority []int
	for id := 0; id < 5; id++ {
		if id != leader && id != friend {
			majority = append(majority, id)
		}
	}
	c.nw.Partition(minority, majority)

	// The minority leader can still append locally but must not commit.
	preCommit := c.nodes[leader].Status().CommitIndex
	if _, err := c.nodes[leader].Propose(c.ctx, KVCommand{Op: "set", Key: "ghost", Value: "x"}); err != nil {
		var nl ErrNotLeader
		if !errors.As(err, &nl) {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * testElection)
	if got := c.nodes[leader].Status().CommitIndex; got > preCommit {
		t.Fatalf("minority leader advanced commit index %d -> %d", preCommit, got)
	}

	// The majority elects its own leader and commits.
	deadline := time.Now().Add(15 * time.Second)
	var newLeader = -1
	for time.Now().Before(deadline) && newLeader == -1 {
		for _, id := range majority {
			if c.nodes[id].Status().State == Leader {
				newLeader = id
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if newLeader == -1 {
		t.Fatal("majority did not elect a leader")
	}
	idx2, err := c.nodes[newLeader].Propose(c.ctx, KVCommand{Op: "set", Key: "real", Value: "y"})
	if err != nil {
		t.Fatal(err)
	}
	c.waitApplied(idx2, majority...)

	// Heal: the deposed leader must discard its ghost entry and converge.
	c.nw.Heal()
	c.waitApplied(idx2, 0, 1, 2, 3, 4)
	deadline = time.Now().Add(15 * time.Second)
	converged := false
	for time.Now().Before(deadline) && !converged {
		converged = true
		for id := range c.nodes {
			if _, ok := c.kvs[id].Get("ghost"); ok {
				t.Fatalf("node %d applied uncommitted ghost entry", id)
			}
			if v, ok := c.kvs[id].Get("real"); !ok || v != "y" {
				converged = false
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !converged {
		t.Fatal("cluster did not converge after heal")
	}
	c.checkElectionSafety()
}

func TestLaggardLogRepair(t *testing.T) {
	// A node isolated while the cluster commits many entries must be
	// repaired via nextIndex backtracking after it reconnects — the
	// paper's "crash and wake up with an outdated log" path.
	c := newCluster(t, 3, 19)
	idx := c.propose(KVCommand{Op: "set", Key: "w0", Value: "v"})
	c.waitApplied(idx, 0, 1, 2)

	leader := c.waitLeader()
	isolated := (leader + 1) % 3
	rest := []int{}
	for id := 0; id < 3; id++ {
		if id != isolated {
			rest = append(rest, id)
		}
	}
	c.nw.Partition(rest)

	var lastIdx int
	for i := 0; i < 8; i++ {
		lastIdx = c.propose(KVCommand{Op: "set", Key: "bulk", Value: string(rune('a' + i))})
	}
	c.waitApplied(lastIdx, rest...)

	c.nw.Heal()
	c.waitApplied(lastIdx, isolated)
	if v, ok := c.kvs[isolated].Get("bulk"); !ok || v != "h" {
		t.Fatalf("repaired node bulk=%q %v", v, ok)
	}
}

// ---- single-decree consensus (Algorithm 7) ----

func runConsensusCluster(t *testing.T, n int, seed uint64, inputs []any, faults func(nw *netsim.Network, nodes []*ConsensusNode)) []any {
	t.Helper()
	nw := netsim.New(n, netsim.WithSeed(seed))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	rng := sim.NewRNG(seed)
	cns := make([]*ConsensusNode, n)
	for id := 0; id < n; id++ {
		cn, err := NewConsensusNode(Config{
			ID:                id,
			Endpoint:          nw.Node(id),
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   testElection,
			HeartbeatInterval: testHeartbeat,
		}, inputs[id])
		if err != nil {
			t.Fatal(err)
		}
		cns[id] = cn
	}
	if faults != nil {
		faults(nw, cns)
	}
	results := make([]any, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id], errs[id] = cns[id].Run(ctx)
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil && !nw.Crashed(id) {
			t.Fatalf("node %d: %v", id, err)
		}
	}
	return results
}

func TestConsensusAgreementAndValidity(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		inputs := []any{"alpha", "beta", "gamma", "delta", "epsilon"}
		results := runConsensusCluster(t, 5, seed, inputs, nil)
		first := results[0]
		valid := false
		for _, in := range inputs {
			if in == first {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("seed %d: decided %v, not an input", seed, first)
		}
		for id, r := range results {
			if r != first {
				t.Fatalf("seed %d: agreement violated: node %d decided %v, node 0 decided %v", seed, id, r, first)
			}
		}
	}
}

func TestConsensusSurvivesLeaderCrash(t *testing.T) {
	inputs := []any{"a", "b", "c", "d", "e"}
	var nwRef *netsim.Network
	var cnsRef []*ConsensusNode
	results := runConsensusCluster(t, 5, 23, inputs, func(nw *netsim.Network, cns []*ConsensusNode) {
		nwRef, cnsRef = nw, cns
		// Crash whichever node first becomes leader, before it can finish
		// driving a decision everywhere (races allowed: the test only
		// requires eventual agreement among survivors).
		go func() {
			for {
				for id := range cns {
					if cns[id].Node().Status().State == Leader {
						nw.Crash(id)
						return
					}
				}
				time.Sleep(time.Millisecond)
			}
		}()
	})
	_ = cnsRef
	var agreed any
	count := 0
	for id, r := range results {
		if nwRef.Crashed(id) {
			continue
		}
		if count == 0 {
			agreed = r
		} else if r != agreed {
			t.Fatalf("agreement violated among survivors: %v vs %v", r, agreed)
		}
		count++
	}
	if count < 4 {
		t.Fatalf("only %d survivors decided", count)
	}
}

// ---- the VAC view (Algorithms 10–11) ----

func TestVACConsensus(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		const n = 3
		nw := netsim.New(n, netsim.WithSeed(seed+100))
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		rng := sim.NewRNG(seed + 100)
		inputs := []string{"red", "green", "blue"}
		decisions := make([]core.Decision[string], n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			node, err := NewNode(Config{
				ID:                id,
				Endpoint:          nw.Node(id),
				RNG:               rng.Fork(uint64(id)),
				ElectionTimeout:   testElection,
				HeartbeatInterval: testHeartbeat,
				ManualCampaign:    true,
			})
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(id int, node *Node) {
				defer wg.Done()
				decisions[id], errs[id] = RunVACConsensus[string](ctx, node, inputs[id])
			}(id, node)
		}
		wg.Wait()
		cancel()
		for id, err := range errs {
			if err != nil {
				t.Fatalf("seed %d node %d: %v", seed, id, err)
			}
		}
		first := decisions[0].Value
		valid := false
		for _, in := range inputs {
			if in == first {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("seed %d: decided %q, not an input", seed, first)
		}
		for id, d := range decisions {
			if d.Value != first {
				t.Fatalf("seed %d: node %d decided %q, node 0 decided %q", seed, id, d.Value, first)
			}
		}
	}
}

func TestVACRequiresManualCampaign(t *testing.T) {
	nw := netsim.New(1)
	node, err := NewNode(Config{ID: 0, Endpoint: nw.Node(0), RNG: sim.NewRNG(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVAC[string](node); err == nil {
		t.Fatal("VAC accepted an auto-campaign node")
	}
}

// ---- fake clock determinism ----

func TestSingleNodeWithFakeClock(t *testing.T) {
	clock := sim.NewFakeClock()
	nw := netsim.New(1)
	sm := NewDecideOnce()
	node, err := NewNode(Config{
		ID:              0,
		Endpoint:        nw.Node(0),
		Clock:           clock,
		RNG:             sim.NewRNG(5),
		ElectionTimeout: time.Second,
		StateMachine:    sm,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sub := node.Subscribe()
	node.Start(ctx)

	// Nothing can happen until the fake clock moves.
	time.Sleep(20 * time.Millisecond)
	if st := node.Status(); st.State != Follower {
		t.Fatalf("state moved without clock: %v", st)
	}
	// Two base timeouts cover any randomized deadline in [T, 2T).
	for clock.Waiters() < 2 { // election + heartbeat timers armed
		time.Sleep(time.Millisecond)
	}
	clock.Advance(2 * time.Second)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := node.Status(); st.State == Leader {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("single node did not elect itself: %v", node.Status())
		}
		clock.Advance(500 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	if _, err := node.Propose(ctx, DS{Value: "solo"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sm.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("single-node commit did not apply")
	}
	if v, _, _ := sm.Decided(); v != "solo" {
		t.Fatalf("decided %v", v)
	}
	// Drain at least one event to exercise the subscription path.
	evCtx, evCancel := context.WithTimeout(ctx, time.Second)
	defer evCancel()
	if _, err := sub.Next(evCtx); err != nil {
		t.Fatalf("no events observed: %v", err)
	}
}

func TestNodeConfigValidation(t *testing.T) {
	nw := netsim.New(2)
	if _, err := NewNode(Config{Endpoint: nw.Node(0)}); err == nil {
		t.Fatal("missing RNG accepted")
	}
	if _, err := NewNode(Config{RNG: sim.NewRNG(1)}); err == nil {
		t.Fatal("missing endpoint accepted")
	}
	if _, err := NewNode(Config{Endpoint: nw.Node(0), RNG: sim.NewRNG(1), ID: 5}); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := NewConsensusNode(Config{Endpoint: nw.Node(0), RNG: sim.NewRNG(1), StateMachine: &KVStore{}}, 1); err == nil {
		t.Fatal("ConsensusNode accepted a pre-set state machine")
	}
}

func TestProposeAfterStop(t *testing.T) {
	nw := netsim.New(1)
	node, err := NewNode(Config{ID: 0, Endpoint: nw.Node(0), RNG: sim.NewRNG(1),
		ElectionTimeout: testElection})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	node.Start(ctx)
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := node.Propose(context.Background(), "x")
		if errors.Is(err, ErrStopped) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Propose after stop: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	// Status on a stopped node must not hang.
	st := node.Status()
	if st.ID != 0 {
		t.Fatalf("status = %v", st)
	}
}

func TestEndpointCrashStopsNode(t *testing.T) {
	nw := netsim.New(2, netsim.WithSeed(3))
	node, err := NewNode(Config{ID: 0, Endpoint: nw.Node(0), RNG: sim.NewRNG(2),
		ElectionTimeout: testElection})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	node.Start(ctx)
	nw.Crash(0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := node.Propose(context.Background(), "x"); errors.Is(err, ErrStopped) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("node did not stop after endpoint crash")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
