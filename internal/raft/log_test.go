package raft

import (
	"testing"
	"testing/quick"
)

func entries(terms ...int) []Entry {
	out := make([]Entry, len(terms))
	for i, t := range terms {
		out[i] = Entry{Term: t, Command: i}
	}
	return out
}

func logOf(terms ...int) *raftLog {
	return &raftLog{entries: entries(terms...)}
}

func TestLogBasics(t *testing.T) {
	l := &raftLog{}
	if l.lastIndex() != 0 || l.lastTerm() != 0 {
		t.Fatalf("empty log: last=%d term=%d", l.lastIndex(), l.lastTerm())
	}
	if term, ok := l.termAt(0); !ok || term != 0 {
		t.Fatal("termAt(0) must be (0, true)")
	}
	if _, ok := l.termAt(1); ok {
		t.Fatal("termAt(1) on empty log reported ok")
	}
	if _, ok := l.termAt(-1); ok {
		t.Fatal("termAt(-1) reported ok")
	}
	idx := l.appendEntry(Entry{Term: 3, Command: "a"})
	if idx != 1 || l.lastIndex() != 1 || l.lastTerm() != 3 {
		t.Fatalf("after append: idx=%d last=%d term=%d", idx, l.lastIndex(), l.lastTerm())
	}
	e, ok := l.entryAt(1)
	if !ok || e.Command != "a" {
		t.Fatalf("entryAt(1) = %v %v", e, ok)
	}
	if _, ok := l.entryAt(2); ok {
		t.Fatal("entryAt(2) reported ok")
	}
}

func TestLogMatches(t *testing.T) {
	l := logOf(1, 1, 2)
	cases := []struct {
		index, term int
		want        bool
	}{
		{0, 0, true},
		{1, 1, true},
		{2, 1, true},
		{3, 2, true},
		{3, 1, false},
		{4, 2, false},
		{-1, 0, false},
	}
	for _, tc := range cases {
		if got := l.matches(tc.index, tc.term); got != tc.want {
			t.Errorf("matches(%d, %d) = %v, want %v", tc.index, tc.term, got, tc.want)
		}
	}
}

func TestAppendAfterPlainAppend(t *testing.T) {
	l := logOf(1, 1)
	lastNew, truncated := l.appendAfter(2, entries(2, 2))
	if lastNew != 4 || truncated {
		t.Fatalf("lastNew=%d truncated=%v", lastNew, truncated)
	}
	if l.lastIndex() != 4 || l.lastTerm() != 2 {
		t.Fatalf("log after append: %v", l)
	}
}

func TestAppendAfterIdempotent(t *testing.T) {
	l := logOf(1, 2, 2)
	// Re-delivering an already-present suffix must not truncate.
	lastNew, truncated := l.appendAfter(1, entries(2, 2))
	if lastNew != 3 || truncated || l.lastIndex() != 3 {
		t.Fatalf("lastNew=%d truncated=%v last=%d", lastNew, truncated, l.lastIndex())
	}
}

func TestAppendAfterConflictDeletesSuffix(t *testing.T) {
	l := logOf(1, 1, 1, 1)
	// New entry at index 2 with term 2 conflicts: indexes 2..4 must go.
	lastNew, truncated := l.appendAfter(1, []Entry{{Term: 2, Command: "x"}})
	if lastNew != 2 || !truncated {
		t.Fatalf("lastNew=%d truncated=%v", lastNew, truncated)
	}
	if l.lastIndex() != 2 || l.lastTerm() != 2 {
		t.Fatalf("log after conflict: last=%d term=%d", l.lastIndex(), l.lastTerm())
	}
	e, _ := l.entryAt(2)
	if e.Command != "x" {
		t.Fatalf("entry 2 = %v", e)
	}
}

func TestAppendAfterPartialOverlap(t *testing.T) {
	l := logOf(1, 1, 2)
	// Entries spanning 2..4: index 2 matches (term 1), index 3 conflicts
	// (term 3 vs 2), index 4 is new.
	lastNew, truncated := l.appendAfter(1, []Entry{{Term: 1, Command: "b"}, {Term: 3, Command: "c"}, {Term: 3, Command: "d"}})
	if lastNew != 4 || !truncated {
		t.Fatalf("lastNew=%d truncated=%v", lastNew, truncated)
	}
	wantTerms := []int{1, 1, 3, 3}
	for i, want := range wantTerms {
		if term, _ := l.termAt(i + 1); term != want {
			t.Fatalf("index %d has term %d, want %d", i+1, term, want)
		}
	}
}

func TestSlice(t *testing.T) {
	l := logOf(1, 2, 3)
	if got := l.slice(1); len(got) != 3 {
		t.Fatalf("slice(1) len %d", len(got))
	}
	if got := l.slice(3); len(got) != 1 || got[0].Term != 3 {
		t.Fatalf("slice(3) = %v", got)
	}
	if got := l.slice(4); got != nil {
		t.Fatalf("slice(4) = %v, want nil", got)
	}
	if got := l.slice(0); len(got) != 3 {
		t.Fatalf("slice(0) len %d, want clamped to full", len(got))
	}
	// Mutating the returned slice must not corrupt the log.
	s := l.slice(1)
	s[0].Term = 99
	if term, _ := l.termAt(1); term != 1 {
		t.Fatal("slice aliases log storage")
	}
}

func TestUpToDate(t *testing.T) {
	l := logOf(1, 2, 2)
	cases := []struct {
		idx, term int
		want      bool
	}{
		{3, 2, true},  // identical
		{4, 2, true},  // longer same term
		{2, 2, false}, // shorter same term
		{1, 3, true},  // higher last term wins regardless of length
		{9, 1, false}, // lower last term loses regardless of length
	}
	for _, tc := range cases {
		if got := l.upToDate(tc.idx, tc.term); got != tc.want {
			t.Errorf("upToDate(%d, %d) = %v, want %v", tc.idx, tc.term, got, tc.want)
		}
	}
}

func TestLogMatchingPropertyQuick(t *testing.T) {
	// Log Matching invariant generator: replaying any prefix of a
	// "leader history" into two logs in different orders must leave both
	// identical up to the shared index whenever tips match.
	f := func(seed uint8) bool {
		history := entries(1, 1, 2, 2, 3, 3, 3)
		a, b := &raftLog{}, &raftLog{}
		// a gets the full history; b gets a prefix, then diverges, then
		// is repaired with the full history from the divergence point.
		a.appendAfter(0, history)
		cut := int(seed) % len(history)
		b.appendAfter(0, history[:cut])
		b.appendEntry(Entry{Term: 99, Command: "divergent"})
		b.appendAfter(cut, history[cut:])
		if a.lastIndex() != b.lastIndex() {
			return false
		}
		for i := 1; i <= a.lastIndex(); i++ {
			ea, _ := a.entryAt(i)
			eb, _ := b.entryAt(i)
			if ea.Term != eb.Term {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecideOnce(t *testing.T) {
	d := NewDecideOnce()
	if _, _, ok := d.Decided(); ok {
		t.Fatal("fresh machine decided")
	}
	d.Apply(1, DS{Value: "first"})
	d.Apply(2, DS{Value: "second"})
	v, idx, ok := d.Decided()
	if !ok || v != "first" || idx != 1 {
		t.Fatalf("Decided() = (%v, %d, %v)", v, idx, ok)
	}
	select {
	case <-d.Done():
	default:
		t.Fatal("Done() not closed after decision")
	}
	// Non-DS commands decide on the raw value.
	d2 := NewDecideOnce()
	d2.Apply(1, 42)
	if v, _, _ := d2.Decided(); v != 42 {
		t.Fatalf("raw command decision = %v", v)
	}
}

func TestKVStore(t *testing.T) {
	var kv KVStore
	kv.Apply(1, KVCommand{Op: "set", Key: "a", Value: "1"})
	kv.Apply(2, KVCommand{Op: "set", Key: "b", Value: "2"})
	kv.Apply(3, KVCommand{Op: "delete", Key: "a"})
	kv.Apply(4, "not a kv command") // ignored
	if _, ok := kv.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := kv.Get("b"); !ok || v != "2" {
		t.Fatalf("Get(b) = %q %v", v, ok)
	}
	if kv.Len() != 1 || kv.AppliedIndex() != 4 {
		t.Fatalf("Len=%d Applied=%d", kv.Len(), kv.AppliedIndex())
	}
	if snap := kv.Snapshot(); len(snap) != 1 || snap[0] != "b=2" {
		t.Fatalf("Snapshot = %v", snap)
	}
}

func TestStringers(t *testing.T) {
	checks := map[string]string{
		RequestVote{Term: 1, CandidateID: 2}.String():                    "RequestVote{t=1 cand=2 lastIdx=0 lastTerm=0}",
		RequestVoteReply{Term: 1}.String():                               "RequestVoteReply{t=1 granted=false}",
		AppendEntriesReply{Term: 2, Success: true}.String():              "AppendEntriesReply{t=2 ok=true match=0 hint=0 read=0}",
		ReadIndexRequest{Term: 3, ID: 7}.String():                        "ReadIndexRequest{t=3 id=7 lease=false}",
		ReadIndexReply{Term: 3, ID: 7, Index: 4, Success: true, LeaderID: 1}.String(): "ReadIndexReply{t=3 id=7 idx=4 ok=true lease=false ldr=1}",
		DS{Value: 5}.String():                                            "D&S(5)",
		Follower.String():                                                "follower",
		Leader.String():                                                  "leader",
		State(9).String():                                                "State(9)",
		EventTimeout.String():                                            "timeout",
		EventKind(42).String():                                           "EventKind(42)",
	}
	for got, want := range checks {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if got := (AppendEntries{Term: 3, LeaderID: 1, Entries: entries(1, 2)}).String(); got == "" {
		t.Error("AppendEntries.String() empty")
	}
	if got := (Event{Kind: EventApplied, Node: 1}).String(); got == "" {
		t.Error("Event.String() empty")
	}
	if len(WireTypes()) != 13 {
		t.Errorf("WireTypes() has %d entries", len(WireTypes()))
	}
}
