package raft

// Tests for the pipelined write path's safety rails: commit reached by
// followers while the leader's own fsync is parked, proposal replies
// fenced behind leader durability, recovery after a leader crash that
// loses an entry the quorum committed, bounded-apply-queue backpressure,
// and a chaos soak for the apply worker (run under -race in CI).

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ooc/internal/checker"
	"ooc/internal/netsim"
	"ooc/internal/sim"
	"ooc/internal/trace"
)

// gatedStorage wraps a Storage and can hold every write at the
// durability barrier (the fsync seam) or fail it outright (a power
// cut). It stages the parallel-persist hazard: followers quorum-commit
// an entry the leader never made locally durable.
type gatedStorage struct {
	inner Storage
	mu    sync.Mutex
	gate  chan struct{} // non-nil: writes wait for it to close
	dead  bool          // power cut: writes fail without reaching inner
}

func newGatedStorage(inner Storage) *gatedStorage { return &gatedStorage{inner: inner} }

// block holds all subsequent writes at the barrier until release or
// powerCut.
func (g *gatedStorage) block() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.gate == nil {
		g.gate = make(chan struct{})
	}
}

// release lets the held writes through to the inner store.
func (g *gatedStorage) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.gate != nil {
		close(g.gate)
		g.gate = nil
	}
}

// powerCut fails the held writes (and all future ones) without touching
// the inner store, as if the machine lost power mid-fsync.
func (g *gatedStorage) powerCut() {
	g.mu.Lock()
	g.dead = true
	gate := g.gate
	g.gate = nil
	g.mu.Unlock()
	if gate != nil {
		close(gate)
	}
}

func (g *gatedStorage) barrier() error {
	g.mu.Lock()
	gate := g.gate
	g.mu.Unlock()
	if gate != nil {
		<-gate
	}
	g.mu.Lock()
	dead := g.dead
	g.mu.Unlock()
	if dead {
		return errors.New("raft test: storage power cut")
	}
	return nil
}

func (g *gatedStorage) SetState(term, votedFor int) error {
	if err := g.barrier(); err != nil {
		return err
	}
	return g.inner.SetState(term, votedFor)
}

func (g *gatedStorage) TruncateAndAppend(prevIndex int, entries []Entry) error {
	if err := g.barrier(); err != nil {
		return err
	}
	return g.inner.TruncateAndAppend(prevIndex, entries)
}

func (g *gatedStorage) AppendBatch(muts []LogMutation) error {
	if err := g.barrier(); err != nil {
		return err
	}
	return g.inner.AppendBatch(muts)
}

func (g *gatedStorage) SaveSnapshot(index, term int, data []byte) error {
	if err := g.barrier(); err != nil {
		return err
	}
	return g.inner.SaveSnapshot(index, term, data)
}

func (g *gatedStorage) Load() (PersistentState, error) { return g.inner.Load() }

// pipeCluster is restartableCluster's pipelined sibling: per-node
// MemStorage behind a gatedStorage wrapper, so a test can park or
// power-cut one node's durability barrier while the rest of the cluster
// runs, in either write-path mode.
type pipeCluster struct {
	t        *testing.T
	nw       *netsim.Network
	rng      *sim.RNG
	rec      *trace.Recorder
	syncMode bool
	boots    int
	stores   []*MemStorage
	gates    []*gatedStorage
	kvs      []*KVStore
	nodes    []*Node
	cancels  []context.CancelFunc
}

func newPipeCluster(t *testing.T, n int, seed uint64, syncMode bool) *pipeCluster {
	t.Helper()
	c := &pipeCluster{
		t:        t,
		nw:       netsim.New(n, netsim.WithSeed(seed)),
		rng:      sim.NewRNG(seed),
		rec:      trace.NewRecorder(),
		syncMode: syncMode,
		stores:   make([]*MemStorage, n),
		gates:    make([]*gatedStorage, n),
		kvs:      make([]*KVStore, n),
		nodes:    make([]*Node, n),
		cancels:  make([]context.CancelFunc, n),
	}
	for id := 0; id < n; id++ {
		c.stores[id] = NewMemStorage()
		c.kvs[id] = &KVStore{}
		c.boot(id)
	}
	t.Cleanup(func() {
		for id, cancel := range c.cancels {
			c.gates[id].release() // unpark any waiting persist worker
			if cancel != nil {
				cancel()
			}
		}
	})
	return c
}

func (c *pipeCluster) boot(id int) {
	c.t.Helper()
	c.boots++
	c.gates[id] = newGatedStorage(c.stores[id])
	node, err := NewNode(Config{
		ID:                id,
		Endpoint:          c.nw.Node(id),
		RNG:               c.rng.Fork(uint64(id) + 1000*uint64(c.boots)),
		ElectionTimeout:   testElection,
		HeartbeatInterval: testHeartbeat,
		StateMachine:      c.kvs[id],
		Storage:           c.gates[id],
		Recorder:          c.rec,
		SyncPipeline:      c.syncMode,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.nodes[id] = node
	c.cancels[id] = cancel
	node.Start(ctx)
}

func (c *pipeCluster) crash(id int) {
	c.t.Helper()
	c.nw.Crash(id)
	c.cancels[id]()
	select {
	case <-c.nodes[id].Done():
	case <-time.After(10 * time.Second):
		c.t.Fatalf("node %d did not stop", id)
	}
}

func (c *pipeCluster) restart(id int) {
	c.t.Helper()
	c.nw.Restart(id)
	// State machines are volatile: a restarted processor reapplies its
	// persisted log from scratch.
	c.kvs[id] = &KVStore{}
	c.boot(id)
}

func (c *pipeCluster) waitLeader(exclude map[int]bool) int {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for id, node := range c.nodes {
			if exclude[id] || c.nw.Crashed(id) {
				continue
			}
			if node.Status().State == Leader {
				return id
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatal("no leader")
	return -1
}

func (c *pipeCluster) propose(cmd any) int {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		leader := c.waitLeader(nil)
		idx, err := c.nodes[leader].Propose(context.Background(), cmd)
		if err == nil {
			return idx
		}
		var nl ErrNotLeader
		if !errors.As(err, &nl) && !errors.Is(err, ErrStopped) {
			c.t.Fatal(err)
		}
	}
	c.t.Fatal("could not propose")
	return 0
}

// waitValue blocks until every node in ids has applied a state where
// key holds val.
func (c *pipeCluster) waitValue(key, val string, ids ...int) {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, id := range ids {
			if v, ok := c.kvs[id].Get(key); !ok || v != val {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, id := range ids {
		v, _ := c.kvs[id].Get(key)
		c.t.Logf("node %d: %s=%q, applied %d, status %v", id, key, v, c.kvs[id].AppliedIndex(), c.nodes[id].Status())
	}
	c.t.Fatalf("%s=%q not applied on %v", key, val, ids)
}

// readLinearizable serves one linearizable read of key through whatever
// node currently leads, retrying across leadership changes.
func (c *pipeCluster) readLinearizable(key string) string {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		leader := c.waitLeader(nil)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, err := c.nodes[leader].ReadIndex(ctx)
		cancel()
		if err == nil {
			v, _ := c.kvs[leader].Get(key)
			return v
		}
		var nl ErrNotLeader
		if !errors.As(err, &nl) && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrStopped) {
			c.t.Fatalf("linearizable read: %v", err)
		}
	}
	c.t.Fatal("linearizable read never succeeded")
	return ""
}

// TestProposeReplyFencedBehindLeaderFsync pins the tentpole's two halves
// at once: with the leader's disk parked at the fsync barrier, (1) the
// entry still commits and applies cluster-wide off the followers' acks
// alone — AppendEntries departed before the leader's persist completed,
// and advanceCommit treats the leader's durable index as just another
// matchIndex — while (2) the proposal reply, which externalizes the
// accept to the client, stays fenced until the leader's own batch lands.
func TestProposeReplyFencedBehindLeaderFsync(t *testing.T) {
	c := newPipeCluster(t, 3, 97, false)
	c.propose(KVCommand{Op: "set", Key: "x", Value: "1"})
	c.waitValue("x", "1", 0, 1, 2)

	leader := c.waitLeader(nil)
	var followers []int
	for id := range c.nodes {
		if id != leader {
			followers = append(followers, id)
		}
	}
	c.gates[leader].block()

	type propResult struct {
		idx int
		err error
	}
	resCh := make(chan propResult, 1)
	var returned atomic.Bool
	go func() {
		idx, err := c.nodes[leader].Propose(context.Background(), KVCommand{Op: "set", Key: "x", Value: "2"})
		returned.Store(true)
		resCh <- propResult{idx, err}
	}()

	// Quorum commit without the leader's disk: both followers apply it.
	c.waitValue("x", "2", followers...)
	af := c.kvs[followers[0]].AppliedIndex()

	if returned.Load() {
		t.Fatal("proposal reply externalized before the leader's own fsync landed")
	}
	ps, err := c.stores[leader].Load()
	if err != nil {
		t.Fatal(err)
	}
	if durable := ps.SnapIndex + len(ps.Entries); durable >= af {
		t.Fatalf("leader disk already holds index %d (followers applied %d) despite the gate", durable, af)
	}
	if ci := c.nodes[leader].Status().CommitIndex; ci < af {
		t.Fatalf("leader commit %d never advanced to the follower-acked %d", ci, af)
	}

	// Release the disk: the fenced reply must now arrive, carrying the
	// index the quorum already committed.
	c.gates[leader].release()
	select {
	case res := <-resCh:
		if res.err != nil {
			t.Fatalf("propose after release: %v", res.err)
		}
		if res.idx < 1 || res.idx > af {
			t.Fatalf("propose returned index %d, want within (0, %d]", res.idx, af)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("proposal reply never arrived after the gate released")
	}
	// And the leader's disk catches up to the tail it acknowledged.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ps, err := c.stores[leader].Load()
		if err != nil {
			t.Fatal(err)
		}
		if ps.SnapIndex+len(ps.Entries) >= af {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leader disk stuck at %d, acked %d", ps.SnapIndex+len(ps.Entries), af)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLeaderCrashAfterQuorumCommitOfUnsyncedEntry is the classic
// parallel-persist regression: followers quorum-commit an entry the
// leader never locally fsynced, the leader crashes (its disk power-cut
// so the entry is truly lost locally), and on restart the cluster must
// recover the entry from the quorum — no un-commit — with the full
// read/write history passing the register-linearizability checker. The
// sync mode runs the same crash shape (the hazard itself cannot be
// staged there: the ordered loop fsyncs before the broadcast departs,
// so a parked leader disk would keep followers from ever seeing the
// entry) to pin that both write paths recover identically.
func TestLeaderCrashAfterQuorumCommitOfUnsyncedEntry(t *testing.T) {
	for _, tc := range []struct {
		name     string
		syncMode bool
	}{
		{"pipelined", false},
		{"sync", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := newPipeCluster(t, 3, 101, tc.syncMode)
			start := time.Now()
			ns := func() int64 { return time.Since(start).Nanoseconds() }
			var mu sync.Mutex
			var history []checker.RWOp
			record := func(op checker.RWOp) {
				mu.Lock()
				history = append(history, op)
				mu.Unlock()
			}

			inv1 := ns()
			c.propose(KVCommand{Op: "set", Key: "x", Value: "1"})
			c.waitValue("x", "1", 0, 1, 2)
			record(checker.RWOp{Key: "x", Version: 1, Invoke: inv1, Return: ns()})

			leader := c.waitLeader(nil)
			var followers []int
			for id := range c.nodes {
				if id != leader {
					followers = append(followers, id)
				}
			}

			if !tc.syncMode {
				c.gates[leader].block()
			}
			inv2 := ns()
			go func() {
				// The reply is fenced behind the gated fsync (pipelined) and
				// swallowed by the crash; the write's fate is read off the
				// followers below, and the checker treats it as completing at
				// the observation point.
				_, _ = c.nodes[leader].Propose(context.Background(), KVCommand{Op: "set", Key: "x", Value: "2"})
			}()
			c.waitValue("x", "2", followers...)
			record(checker.RWOp{Key: "x", Version: 2, Invoke: inv2, Return: ns()})

			if !tc.syncMode {
				// The hazard is staged: the quorum committed and applied an
				// entry the leader's disk does not hold.
				ps, err := c.stores[leader].Load()
				if err != nil {
					t.Fatal(err)
				}
				af := c.kvs[followers[0]].AppliedIndex()
				if durable := ps.SnapIndex + len(ps.Entries); durable >= af {
					t.Fatalf("leader disk holds through %d, followers applied %d: hazard not staged", durable, af)
				}
				// The gated leader still externalizes the committed value — a
				// linearizable read sees x=2 before the leader ever fsyncs it,
				// which is safe precisely because the value is quorum-durable.
				rinv := ns()
				rctx, rcancel := context.WithTimeout(context.Background(), 10*time.Second)
				_, rerr := c.nodes[leader].ReadIndex(rctx)
				rcancel()
				if rerr != nil {
					t.Fatalf("read on gated leader: %v", rerr)
				}
				if v, _ := c.kvs[leader].Get("x"); v != "2" {
					t.Fatalf("gated leader read x=%q, want \"2\"", v)
				}
				record(checker.RWOp{Read: true, Key: "x", Version: 2, Invoke: rinv, Return: ns()})
			}

			// Power-cut the disk, then crash the process: in pipelined mode
			// the entry was never locally durable, so recovery must come from
			// the quorum that committed it.
			c.gates[leader].powerCut()
			c.crash(leader)
			c.waitLeader(map[int]bool{leader: true})
			c.restart(leader)
			c.waitValue("x", "2", leader)

			// No un-commit: a linearizable read after recovery still sees v2.
			rinv := ns()
			v := c.readLinearizable("x")
			record(checker.RWOp{Read: true, Key: "x", Version: 2, Invoke: rinv, Return: ns()})
			if v != "2" {
				t.Fatalf("committed write rolled back across the crash: x=%q", v)
			}

			if rep := checker.CheckRegisterLinearizable(history); !rep.Ok() {
				t.Fatalf("linearizability violated (%d ops): %v", len(history), rep.Violations[0])
			}
		})
	}
}

// blockingSM is a StateMachine whose Apply parks on a gate, so tests
// can wedge the apply worker and fill the bounded apply queue.
type blockingSM struct {
	mu      sync.Mutex
	gate    chan struct{}
	indices []int
}

func newBlockingSM() *blockingSM { return &blockingSM{gate: make(chan struct{})} }

func (b *blockingSM) Apply(index int, cmd any) {
	b.mu.Lock()
	gate := b.gate
	b.mu.Unlock()
	if gate != nil {
		<-gate
	}
	b.mu.Lock()
	b.indices = append(b.indices, index)
	b.mu.Unlock()
}

func (b *blockingSM) release() {
	b.mu.Lock()
	if b.gate != nil {
		close(b.gate)
		b.gate = nil
	}
	b.mu.Unlock()
}

func (b *blockingSM) applied() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]int(nil), b.indices...)
}

// TestApplyQueueBackpressureStallsWithoutDropping wedges the apply
// worker on its first entry with a depth-1 apply queue while a burst of
// writes commits behind it. The bounded queue must stall the pipeline —
// never drop work — so once the state machine unblocks, every committed
// entry applies exactly once, in index order.
func TestApplyQueueBackpressureStallsWithoutDropping(t *testing.T) {
	const writes = 12
	nw := netsim.New(1, netsim.WithSeed(5))
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	sm := newBlockingSM()
	t.Cleanup(sm.release)
	node, err := NewNode(Config{
		ID:                0,
		Endpoint:          nw.Node(0),
		RNG:               sim.NewRNG(5),
		ElectionTimeout:   testElection,
		HeartbeatInterval: testHeartbeat,
		StateMachine:      sm,
		Storage:           NewMemStorage(),
		ApplyQueueDepth:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start(ctx)
	deadline := time.Now().Add(15 * time.Second)
	for node.Status().State != Leader {
		if time.Now().After(deadline) {
			t.Fatal("single node never elected itself")
		}
		time.Sleep(2 * time.Millisecond)
	}

	var wg sync.WaitGroup
	errs := make([]error, writes)
	for i := 0; i < writes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pctx, pcancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer pcancel()
			_, errs[i] = node.Propose(pctx, KVCommand{Op: "set", Key: fmt.Sprintf("k%d", i), Value: "v"})
		}(i)
	}

	// Let the pipeline wedge: the worker is parked on the term-opening
	// no-op, the depth-1 queue fills, and the main loop blocks in
	// enqueueApply. Nothing may reach the state machine past the gate.
	time.Sleep(50 * time.Millisecond)
	if got := sm.applied(); len(got) != 0 {
		t.Fatalf("entries applied while the gate was held: %v", got)
	}

	sm.release()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
	}
	want := writes + 1 // the term-opening no-op, then the writes
	deadline = time.Now().Add(15 * time.Second)
	for len(sm.applied()) < want {
		if time.Now().After(deadline) {
			t.Fatalf("applied %d entries, want %d", len(sm.applied()), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	got := sm.applied()
	if len(got) != want {
		t.Fatalf("applied %d entries, want exactly %d: %v", len(got), want, got)
	}
	for i, idx := range got {
		if idx != i+1 {
			t.Fatalf("apply order broken at position %d: indices %v", i, got)
		}
	}
}

// TestPipelineChaosSoak runs the pipelined write path under concurrent
// clients, slow disks, and forced elections (CI runs it under -race).
// Invariants: AwaitApplied never fires before the state machine covers
// the index it reports, the cluster converges to one state afterward,
// and no acknowledged write is lost.
func TestPipelineChaosSoak(t *testing.T) {
	const clients = 4
	c := newCluster(t, 3, 113, func(cfg *Config) {
		cfg.Storage = NewSlowDisk(NewMemStorage(), 200*time.Microsecond)
	})
	c.waitLeader()
	client, err := NewClient(c.nodes, WithClientBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	runCtx, stop := context.WithTimeout(c.ctx, 400*time.Millisecond)
	defer stop()
	var (
		wg        sync.WaitGroup
		ackMu     sync.Mutex
		lastAcked = map[string]int{}
	)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			key := fmt.Sprintf("c%d", cl)
			for i := 1; ; i++ {
				if _, err := client.SubmitWait(runCtx, KVCommand{Op: "set", Key: key, Value: strconv.Itoa(i)}); err != nil {
					return
				}
				ackMu.Lock()
				lastAcked[key] = i
				ackMu.Unlock()
			}
		}(cl)
	}
	// Forced elections mid-load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(113))
		for {
			select {
			case <-runCtx.Done():
				return
			case <-time.After(25 * time.Millisecond):
			}
			c.nodes[rng.Intn(len(c.nodes))].Campaign(nil)
		}
	}()
	// AwaitApplied must never report an index the state machine has not
	// covered: the notifier advances only after Apply returns.
	for id := range c.nodes {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				target := c.kvs[id].AppliedIndex() + 1
				idx, err := c.nodes[id].AwaitApplied(runCtx, target)
				if err != nil {
					return
				}
				if got := c.kvs[id].AppliedIndex(); got < idx {
					t.Errorf("node %d: AwaitApplied reported %d but the state machine is at %d", id, idx, got)
					return
				}
			}
		}(id)
	}
	wg.Wait()

	// Quiesce: a sentinel write flushes every node to one applied
	// frontier; after it the key-value states must be identical and no
	// acknowledged write may have gone missing.
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	sidx, err := client.SubmitWait(sctx, KVCommand{Op: "set", Key: "sentinel", Value: "done"})
	if err != nil {
		t.Fatalf("sentinel write: %v", err)
	}
	c.waitApplied(sidx, 0, 1, 2)

	ackMu.Lock()
	defer ackMu.Unlock()
	total := 0
	for _, n := range lastAcked {
		total += n
	}
	if total == 0 {
		t.Fatal("degenerate soak: no write was ever acknowledged")
	}
	for key, floor := range lastAcked {
		base, ok := c.kvs[0].Get(key)
		if !ok {
			t.Fatalf("node 0 lost key %s entirely", key)
		}
		for id := 1; id < len(c.kvs); id++ {
			if v, _ := c.kvs[id].Get(key); v != base {
				t.Fatalf("divergence on %s: node 0 has %q, node %d has %q", key, base, id, v)
			}
		}
		if got, _ := strconv.Atoi(base); got < floor {
			t.Fatalf("acknowledged write lost: %s=%s, acked through %d", key, base, floor)
		}
	}
	c.checkElectionSafety()
}

// TestReadIndexRefusalCarriesLeaderHint drives a follower over the wire
// (satellite of the cross-process NotLeader redirect): a ReadIndexRequest
// sent to a non-leader must be refused with the refuser's current leader
// hint, so the remote client re-routes in one hop instead of probing.
func TestReadIndexRefusalCarriesLeaderHint(t *testing.T) {
	nw := netsim.New(3, netsim.WithSeed(3), netsim.WithFIFO())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	node, err := NewNode(Config{
		ID: 0, Endpoint: nw.Node(0), RNG: sim.NewRNG(3),
		ElectionTimeout:   time.Hour, // never campaigns: stays follower
		HeartbeatInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start(ctx)

	// Node 2 declares itself leader of term 1; node 0 becomes its follower.
	if err := nw.Node(2).Send(0, AppendEntries{Term: 1, LeaderID: 2}); err != nil {
		t.Fatal(err)
	}
	if m, err := nw.Node(2).Recv(ctx); err != nil {
		t.Fatal(err)
	} else if r, ok := m.Payload.(AppendEntriesReply); !ok || !r.Success {
		t.Fatalf("heartbeat not acked: %v", m.Payload)
	}

	// A third process asks node 0 for a read index; the refusal must name
	// the leader node 0 knows.
	if err := nw.Node(1).Send(0, ReadIndexRequest{Term: 1, ID: 7}); err != nil {
		t.Fatal(err)
	}
	for {
		m, err := nw.Node(1).Recv(ctx)
		if err != nil {
			t.Fatalf("no reply: %v", err)
		}
		r, ok := m.Payload.(ReadIndexReply)
		if !ok {
			continue
		}
		if r.Success {
			t.Fatal("non-leader confirmed a read index")
		}
		if r.ID != 7 {
			t.Fatalf("reply correlates id %d, want 7", r.ID)
		}
		if r.LeaderID != 2 {
			t.Fatalf("refusal hint names %d, want 2", r.LeaderID)
		}
		break
	}
}
