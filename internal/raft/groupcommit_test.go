package raft

// Crash-safety tests for shared-disk group commit (DESIGN §3.8): several
// co-located Raft groups share one SyncCoalescer, the machine loses
// power in the middle of a shared barrier with dirty batches from
// multiple groups in flight, and every group must recover independently
// from its own durable prefix plus the quorum — with each group's full
// read/write history passing the register-linearizability checker, in
// both coalesce modes.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ooc/internal/checker"
	"ooc/internal/netsim"
	"ooc/internal/sim"
)

// cachedStorage models a log file behind a volatile OS write cache on a
// shared device: every mutation lands in the cache and is pushed to the
// durable inner store only when the coalescer's barrier covers this
// file's SyncDevice. A power cut discards the cache — mutations that no
// barrier covered are gone, exactly the torn-write shape the coalesced
// path must survive. An optional gate parks SyncDevice so a test can
// freeze a shared barrier round mid-flight.
type cachedStorage struct {
	inner Storage
	sc    *SyncCoalescer

	mu      sync.Mutex
	staged  []func() error // dirty mutations not yet on the platter
	dead    bool           // power cut: cache lost, device gone
	gate    chan struct{}  // non-nil: SyncDevice parks until closed
	entered chan struct{}  // signaled when a SyncDevice call hits the gate
}

func newCachedStorage(inner Storage, sc *SyncCoalescer) *cachedStorage {
	return &cachedStorage{inner: inner, sc: sc}
}

// block parks the next SyncDevice at the gate; the returned channel
// receives one token when a caller is actually parked there (i.e. a
// barrier round is frozen mid-flight).
func (s *cachedStorage) block() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gate = make(chan struct{})
	s.entered = make(chan struct{}, 1)
	return s.entered
}

// powerCut kills the machine: the cache's dirty mutations are discarded,
// every in-flight and future device operation fails, and any barrier
// parked at the gate is released into the failure.
func (s *cachedStorage) powerCut() {
	s.mu.Lock()
	s.dead = true
	s.staged = nil
	gate := s.gate
	s.gate = nil
	s.mu.Unlock()
	if gate != nil {
		close(gate)
	}
}

// stage buffers one mutation and asks the shared coalescer for a
// barrier. The mutation reaches the inner store inside SyncDevice —
// possibly run by another group's barrier leader — before this call
// returns.
func (s *cachedStorage) stage(mut func() error) error {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return errors.New("raft test: storage power cut")
	}
	s.staged = append(s.staged, mut)
	s.mu.Unlock()
	_, err := s.sc.Sync(s)
	return err
}

// SyncDevice implements SyncTarget: push the cache to the platter.
func (s *cachedStorage) SyncDevice() error {
	s.mu.Lock()
	gate, entered := s.gate, s.entered
	s.mu.Unlock()
	if gate != nil {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-gate
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return errors.New("raft test: storage power cut")
	}
	for _, mut := range s.staged {
		if err := mut(); err != nil {
			return err
		}
	}
	s.staged = nil
	return nil
}

func (s *cachedStorage) SetState(term, votedFor int) error {
	return s.stage(func() error { return s.inner.SetState(term, votedFor) })
}

func (s *cachedStorage) TruncateAndAppend(prevIndex int, entries []Entry) error {
	return s.stage(func() error { return s.inner.TruncateAndAppend(prevIndex, entries) })
}

func (s *cachedStorage) AppendBatch(muts []LogMutation) error {
	return s.stage(func() error { return s.inner.AppendBatch(muts) })
}

func (s *cachedStorage) SaveSnapshot(index, term int, data []byte) error {
	return s.stage(func() error { return s.inner.SaveSnapshot(index, term, data) })
}

func (s *cachedStorage) Load() (PersistentState, error) { return s.inner.Load() }

// gcGroup is one Raft group in the shared-machine fixture: three nodes
// on an isolated simulated network, with node 0 — the co-located
// replica — running a cachedStorage over the shared coalescer.
type gcGroup struct {
	t       *testing.T
	nw      *netsim.Network
	rng     *sim.RNG
	sc      *SyncCoalescer
	boots   int
	seed    uint64
	inner   []*MemStorage
	cache   *cachedStorage // node 0's write cache
	kvs     []*KVStore
	nodes   []*Node
	cancels []context.CancelFunc
}

func newGCGroup(t *testing.T, g int, seed uint64, sc *SyncCoalescer) *gcGroup {
	t.Helper()
	const n = 3
	c := &gcGroup{
		t:       t,
		nw:      netsim.New(n, netsim.WithSeed(seed+uint64(g))),
		rng:     sim.NewRNG(seed + 100*uint64(g)),
		sc:      sc,
		seed:    seed,
		inner:   make([]*MemStorage, n),
		kvs:     make([]*KVStore, n),
		nodes:   make([]*Node, n),
		cancels: make([]context.CancelFunc, n),
	}
	for id := 0; id < n; id++ {
		c.inner[id] = NewMemStorage()
		c.kvs[id] = &KVStore{}
		c.boot(id)
	}
	t.Cleanup(func() {
		if c.cache != nil {
			c.cache.powerCut() // unpark anything still at the gate
		}
		for _, cancel := range c.cancels {
			if cancel != nil {
				cancel()
			}
		}
	})
	return c
}

func (c *gcGroup) boot(id int) {
	c.t.Helper()
	c.boots++
	var st Storage = c.inner[id]
	if id == 0 {
		// A rebooted machine starts with an empty cache over the
		// platter's surviving prefix.
		c.cache = newCachedStorage(c.inner[0], c.sc)
		st = c.cache
	}
	node, err := NewNode(Config{
		ID:                id,
		Endpoint:          c.nw.Node(id),
		RNG:               c.rng.Fork(uint64(id) + 1000*uint64(c.boots)),
		ElectionTimeout:   testElection,
		HeartbeatInterval: testHeartbeat,
		StateMachine:      c.kvs[id],
		Storage:           st,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.nodes[id] = node
	c.cancels[id] = cancel
	node.Start(ctx)
}

// electNode0 campaigns node 0 until it leads, so the co-located replica
// is the one holding dirty leader batches when the power goes.
func (c *gcGroup) electNode0() {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if c.nodes[0].Status().State == Leader {
			return
		}
		c.nodes[0].Campaign(nil)
		time.Sleep(5 * time.Millisecond)
	}
	c.t.Fatal("node 0 never became leader")
}

func (c *gcGroup) crashNode0() {
	c.t.Helper()
	c.nw.Crash(0)
	c.cancels[0]()
	select {
	case <-c.nodes[0].Done():
	case <-time.After(10 * time.Second):
		c.t.Fatal("node 0 did not stop")
	}
}

func (c *gcGroup) restartNode0() {
	c.t.Helper()
	c.nw.Restart(0)
	c.kvs[0] = &KVStore{} // volatile: reapply from the persisted log
	c.boot(0)
}

func (c *gcGroup) waitLeader(exclude int) int {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for id, node := range c.nodes {
			if id == exclude || c.nw.Crashed(id) {
				continue
			}
			if node.Status().State == Leader {
				return id
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatal("no leader")
	return -1
}

func (c *gcGroup) propose(cmd any) {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		leader := c.waitLeader(-1)
		_, err := c.nodes[leader].Propose(context.Background(), cmd)
		if err == nil {
			return
		}
		var nl ErrNotLeader
		if !errors.As(err, &nl) && !errors.Is(err, ErrStopped) {
			c.t.Fatal(err)
		}
	}
	c.t.Fatal("could not propose")
}

func (c *gcGroup) waitValue(key, val string, ids ...int) {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, id := range ids {
			if v, ok := c.kvs[id].Get(key); !ok || v != val {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatalf("%s=%q not applied on %v", key, val, ids)
}

func (c *gcGroup) readLinearizable(key string) string {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		leader := c.waitLeader(-1)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, err := c.nodes[leader].ReadIndex(ctx)
		cancel()
		if err == nil {
			v, _ := c.kvs[leader].Get(key)
			return v
		}
		var nl ErrNotLeader
		if !errors.As(err, &nl) && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrStopped) {
			c.t.Fatalf("linearizable read: %v", err)
		}
	}
	c.t.Fatal("linearizable read never succeeded")
	return ""
}

// TestGroupCommitPowerCutRecovery cuts power in the middle of a shared
// barrier: three groups' leaders are co-located on one machine behind
// one coalescer, group 0's flush freezes as barrier leader while groups
// 1 and 2 park their dirty batches on the same round, and the machine
// dies with all three caches dirty. Every group must recover
// independently — the lost batches come back from each group's own
// quorum, no group's recovery depends on another's — and each group's
// history must stay linearizable. The per-group mode runs the same
// crash shape without the shared round, pinning that both modes recover
// identically.
func TestGroupCommitPowerCutRecovery(t *testing.T) {
	for _, tc := range []struct {
		name     string
		perGroup bool
	}{
		{"coalesced", false},
		{"pergroup", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const groups = 3
			sc := NewSyncCoalescer(SyncerConfig{PerGroup: tc.perGroup})
			start := time.Now()
			ns := func() int64 { return time.Since(start).Nanoseconds() }

			gs := make([]*gcGroup, groups)
			histories := make([][]checker.RWOp, groups)
			for g := range gs {
				gs[g] = newGCGroup(t, g, 131, sc)
				gs[g].electNode0()
			}

			// A committed baseline write per group, durable everywhere.
			for g, c := range gs {
				inv := ns()
				c.propose(KVCommand{Op: "set", Key: "x", Value: "1"})
				c.waitValue("x", "1", 0, 1, 2)
				histories[g] = append(histories[g], checker.RWOp{Key: "x", Version: 1, Invoke: inv, Return: ns()})
			}

			// Freeze the shared device under group 0's next flush, then
			// write through every group: group 0's persist worker becomes
			// the stuck barrier leader, and in coalesced mode groups 1-2
			// park their dirty batches on the same frozen round.
			entered := gs[0].cache.block()
			invs := make([]int64, groups)
			invs[0] = ns()
			go func() {
				_, _ = gs[0].nodes[0].Propose(context.Background(), KVCommand{Op: "set", Key: "x", Value: "2"})
			}()
			select {
			case <-entered:
			case <-time.After(15 * time.Second):
				t.Fatal("group 0's flush never reached the device")
			}
			for g := 1; g < groups; g++ {
				invs[g] = ns()
				go func(g int) {
					_, _ = gs[g].nodes[0].Propose(context.Background(), KVCommand{Op: "set", Key: "x", Value: "2"})
				}(g)
			}

			// The pipelined path commits off follower acks alone: every
			// group's quorum applies x=2 while the machine's device is
			// frozen (coalesced) or group 0's is (per-group).
			for g, c := range gs {
				c.waitValue("x", "2", 1, 2)
				histories[g] = append(histories[g], checker.RWOp{Key: "x", Version: 2, Invoke: invs[g], Return: ns()})
			}
			if !tc.perGroup {
				// The shared round is genuinely frozen mid-flight: groups
				// 1 and 2 are parked on the coalescer behind group 0's
				// stuck leadership.
				deadline := time.Now().Add(15 * time.Second)
				for {
					sc.mu.Lock()
					parked := len(sc.pending)
					sc.mu.Unlock()
					if parked >= groups-1 {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("only %d groups parked on the shared barrier, want %d", parked, groups-1)
					}
					time.Sleep(100 * time.Microsecond)
				}
				// And the hazard is staged for the stuck barrier leader:
				// its platter does not hold what its followers applied.
				ps, err := gs[0].inner[0].Load()
				if err != nil {
					t.Fatal(err)
				}
				if durable := ps.SnapIndex + len(ps.Entries); durable >= gs[0].kvs[1].AppliedIndex() {
					t.Fatalf("group 0 platter holds through %d, followers applied %d: hazard not staged",
						durable, gs[0].kvs[1].AppliedIndex())
				}
			}

			// Power cut: every cache's dirty batches are gone at once,
			// mid-barrier. Then the machine's replicas crash.
			for _, c := range gs {
				c.cache.powerCut()
			}
			for _, c := range gs {
				c.crashNode0()
			}

			// Each group re-elects among survivors and keeps the value,
			// then the machine comes back and node 0 recovers from its
			// surviving prefix plus the quorum — per group, independently.
			for _, c := range gs {
				c.waitLeader(0)
			}
			for _, c := range gs {
				c.restartNode0()
			}
			for g, c := range gs {
				c.waitValue("x", "2", 0)
				inv := ns()
				if v := c.readLinearizable("x"); v != "2" {
					t.Fatalf("group %d rolled back a committed write across the power cut: x=%q", g, v)
				}
				histories[g] = append(histories[g], checker.RWOp{Read: true, Key: "x", Version: 2, Invoke: inv, Return: ns()})
			}

			for g, h := range histories {
				if rep := checker.CheckRegisterLinearizable(h); !rep.Ok() {
					t.Fatalf("group %d linearizability violated (%d ops): %v", g, len(h), rep.Violations[0])
				}
			}
		})
	}
}
