package raft

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"ooc/internal/codec/bin"
)

// Storage persists the Raft state that must survive a crash: currentTerm,
// votedFor, and the log. A node configured with a Storage restores from
// it in NewNode and persists before acting on any state change, per the
// Raft paper's durability rules. CommitIndex and lastApplied are volatile
// and rebuilt from the leader after restart.
//
// Implementations must be safe for use from one goroutine at a time:
// every write lands on the node's persist worker under the default
// pipelined path (the main loop under Config.SyncPipeline), and Load
// runs once in NewNode before that goroutine exists. They need not be
// safe for concurrent nodes.
type Storage interface {
	// SetState durably records the term and vote.
	SetState(term, votedFor int) error
	// TruncateAndAppend durably applies a log mutation with exactly the
	// in-memory appendAfter semantics: entries already present with the
	// same term are left untouched (asynchronous networks redeliver old
	// AppendEntries out of order), a term conflict truncates the suffix,
	// and new entries are appended. Indexes at or below the last saved
	// snapshot are silently skipped.
	TruncateAndAppend(prevIndex int, entries []Entry) error
	// AppendBatch durably applies a sequence of log mutations with a
	// single durability barrier — the group-commit seam. It is equivalent
	// to calling TruncateAndAppend for each mutation in order, except that
	// a FileStorage pays one fsync for the whole batch instead of one per
	// mutation. Crash-consistency contract: a crash mid-batch may lose a
	// suffix of the batch, but the surviving prefix must replay to a
	// consistent PersistentState (see Load).
	AppendBatch(muts []LogMutation) error
	// SaveSnapshot durably records a state-machine snapshot covering the
	// log through index; entries up to it may be discarded.
	SaveSnapshot(index, term int, data []byte) error
	// Load restores the persisted state; a fresh store returns zero
	// values and no error.
	Load() (PersistentState, error)
}

// LogMutation is one TruncateAndAppend-shaped log change, the unit
// AppendBatch coalesces: entries replace/extend the log after PrevIndex.
type LogMutation struct {
	PrevIndex int
	Entries   []Entry
}

// PersistentState is the durable part of Figure 2, plus the compaction
// snapshot. Entries holds the log tail after SnapIndex; Entries[i] is
// global index SnapIndex+1+i.
type PersistentState struct {
	Term      int
	VotedFor  int // none (-1) when unset; Load on a fresh store returns none
	SnapIndex int
	SnapTerm  int
	SnapData  []byte // nil when no snapshot was saved
	Entries   []Entry
}

// MemStorage keeps the persistent state in memory — it survives a *node*
// restart (the crash-recovery tests) though not a process restart.
// Create it with NewMemStorage.
type MemStorage struct {
	mu        sync.Mutex
	term      int
	votedFor  int
	snapIndex int
	snapTerm  int
	snapData  []byte
	entries   []Entry // tail after snapIndex
}

var _ Storage = (*MemStorage)(nil)

// NewMemStorage returns an empty in-memory store.
func NewMemStorage() *MemStorage {
	return &MemStorage{votedFor: none}
}

// SetState implements Storage.
func (s *MemStorage) SetState(term, votedFor int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.term, s.votedFor = term, votedFor
	return nil
}

// TruncateAndAppend implements Storage.
func (s *MemStorage) TruncateAndAppend(prevIndex int, entries []Entry) error {
	return s.AppendBatch([]LogMutation{{PrevIndex: prevIndex, Entries: entries}})
}

// AppendBatch implements Storage.
func (s *MemStorage) AppendBatch(muts []LogMutation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range muts {
		var err error
		s.entries, err = spliceTail(s.entries, s.snapIndex, m.PrevIndex, m.Entries)
		if err != nil {
			return err
		}
	}
	return nil
}

// SaveSnapshot implements Storage.
func (s *MemStorage) SaveSnapshot(index, term int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = dropThrough(s.entries, s.snapIndex, index)
	s.snapIndex, s.snapTerm = index, term
	s.snapData = append([]byte(nil), data...)
	return nil
}

// spliceTail applies TruncateAndAppend semantics to a tail slice whose
// first element has global index offset+1. It mirrors
// raftLog.appendAfter exactly: already-present same-term entries are
// kept (a stale redelivered AppendEntries must not shorten the persisted
// log), and only a term conflict truncates.
func spliceTail(tail []Entry, offset, prevIndex int, entries []Entry) ([]Entry, error) {
	if prevIndex < 0 {
		return tail, fmt.Errorf("raft: negative log index %d", prevIndex)
	}
	if prevIndex < offset {
		cut := offset - prevIndex
		if cut >= len(entries) {
			return tail, nil // everything is inside the snapshot already
		}
		entries = entries[cut:]
		prevIndex = offset
	}
	if prevIndex-offset > len(tail) {
		return tail, fmt.Errorf("raft: truncate beyond log: prev=%d offset=%d len=%d", prevIndex, offset, len(tail))
	}
	for i, e := range entries {
		pos := prevIndex - offset + i
		if pos < len(tail) {
			if tail[pos].Term == e.Term {
				continue // already persisted
			}
			tail = tail[:pos]
		}
		tail = append(tail, e)
	}
	return tail, nil
}

// dropThrough discards tail entries with global index <= through.
func dropThrough(tail []Entry, offset, through int) []Entry {
	keep := through - offset
	if keep <= 0 {
		return tail
	}
	if keep >= len(tail) {
		return nil
	}
	return append([]Entry(nil), tail[keep:]...)
}

// Load implements Storage.
func (s *MemStorage) Load() (PersistentState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return PersistentState{
		Term:      s.term,
		VotedFor:  s.votedFor,
		SnapIndex: s.snapIndex,
		SnapTerm:  s.snapTerm,
		SnapData:  append([]byte(nil), s.snapData...),
		Entries:   append([]Entry(nil), s.entries...),
	}, nil
}

// record is one append-only entry in a FileStorage log.
type record struct {
	Kind      recordKind
	Term      int
	VotedFor  int
	PrevIndex int
	Entries   []Entry
	SnapIndex int
	SnapTerm  int
	SnapData  []byte
}

type recordKind int

const (
	recordState recordKind = iota + 1
	recordLog
	recordSnapshot
)

// frameHeaderSize is the per-record framing overhead: a uint32 payload
// length followed by a uint32 CRC-32 (IEEE) of the payload.
const frameHeaderSize = 8

// recordVersion is the version byte leading every record payload, so the
// on-disk layout can evolve: a decoder accepts versions it knows and
// rejects the rest, and additive changes append fields under a bumped
// version rather than silently shifting offsets (DESIGN.md §3.5).
const recordVersion = 1

// FileStorage is an append-only on-disk store: every state change is a
// framed binary record appended to the file, and Load replays the
// records. Each record is its own frame — [len][crc32][version][codec
// payload] — so Load can tell a torn final record (incomplete frame:
// dropped, and the file is truncated back to the last complete record so
// later appends land on a clean tail) from interior corruption (a
// complete frame whose checksum or decode fails: surfaced as an error
// rather than silently swallowed).
//
// Records are hand-rolled varint encodings (see wirecodec.go), built in
// a scratch buffer the store reuses across appends — the gob layout this
// replaced paid a fresh encoder, its type metadata, and ~25 heap
// allocations per fsync'd frame. Writes are coalesced through a buffered
// writer: a single record costs one flush and one Sync, and AppendBatch
// amortizes that Sync over the whole batch — the group-commit path the
// leader's proposal coalescing feeds.
type FileStorage struct {
	path    string
	f       *os.File
	w       *bufio.Writer
	scratch []byte
	syncs   atomic.Int64

	// syncer, when set (SetSyncer), routes every durability barrier
	// through the node's SyncCoalescer instead of a private f.Sync, so
	// one device barrier can cover several groups' flushes. lastWidth
	// remembers the width of the barrier that covered the most recent
	// flush; it is written and read only by the goroutine that owns this
	// store's writes (the persist worker), like the rest of the struct.
	syncer    *SyncCoalescer
	lastWidth int
}

var _ Storage = (*FileStorage)(nil)

// OpenFileStorage opens (or creates) the store at path. Entry commands
// of types the binary codec does not know natively must be
// gob-registered (see transport.Register / raft.WireTypes).
func OpenFileStorage(path string) (*FileStorage, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("raft: open storage: %w", err)
	}
	return &FileStorage{path: path, f: f, w: bufio.NewWriterSize(f, 1<<16), scratch: make([]byte, 0, 4096)}, nil
}

// Close flushes buffered records and releases the file handle.
func (s *FileStorage) Close() error {
	if err := s.w.Flush(); err != nil {
		_ = s.f.Close()
		return fmt.Errorf("raft: close storage: %w", err)
	}
	return s.f.Close()
}

// Syncs reports how many fsyncs this store has issued — the number the
// throughput harness divides by committed ops to show group-commit
// amortization. Per-file fsyncs count here whether they ran inline or
// under a coalesced barrier; the *device* barrier count lives on the
// SyncCoalescer.
func (s *FileStorage) Syncs() int64 { return s.syncs.Load() }

// SetSyncer routes this store's durability barriers through a per-node
// SyncCoalescer (see syncer.go). Call before the node starts writing;
// a nil syncer restores the private-fsync path.
func (s *FileStorage) SetSyncer(sc *SyncCoalescer) { s.syncer = sc }

// SyncDevice implements SyncTarget: the real per-file fsync. Unlike the
// rest of FileStorage it may be called from the barrier leader's
// goroutine while the owner is parked on the syncer — os.File.Sync and
// the counter are both safe for that, and the buffered writer was
// flushed by the owner before parking.
func (s *FileStorage) SyncDevice() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("raft: fsync: %w", err)
	}
	s.syncs.Add(1)
	return nil
}

// LastBarrierWidth reports how many groups shared the durability barrier
// that covered this store's most recent flush (1 when it flew alone or
// no syncer is wired). Read it from the goroutine that issued the flush.
func (s *FileStorage) LastBarrierWidth() int {
	if s.lastWidth < 1 {
		return 1
	}
	return s.lastWidth
}

// encodeRecord appends one framed record to the buffered writer without
// flushing. The payload — [version][kind][varint fields] — is built in
// the store's reusable scratch buffer, so a steady-state append performs
// no heap allocation; each frame is self-contained (its own length and
// checksum) so Load can validate records independently.
func (s *FileStorage) encodeRecord(r record) error {
	payload, err := appendRecord(s.scratch[:0], r)
	if err != nil {
		return fmt.Errorf("raft: persist: %w", err)
	}
	s.scratch = payload // keep any growth for the next record
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := s.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("raft: persist: %w", err)
	}
	if _, err := s.w.Write(payload); err != nil {
		return fmt.Errorf("raft: persist: %w", err)
	}
	return nil
}

// appendRecord appends the binary payload of one record: the version
// byte, the kind, then the kind's fields in varint form.
func appendRecord(dst []byte, r record) ([]byte, error) {
	dst = append(dst, recordVersion, byte(r.Kind))
	switch r.Kind {
	case recordState:
		dst = bin.AppendInt(dst, r.Term)
		return bin.AppendInt(dst, r.VotedFor), nil
	case recordLog:
		dst = bin.AppendInt(dst, r.PrevIndex)
		return appendEntries(dst, r.Entries)
	case recordSnapshot:
		dst = bin.AppendInt(dst, r.SnapIndex)
		dst = bin.AppendInt(dst, r.SnapTerm)
		return bin.AppendBytes(dst, r.SnapData), nil
	default:
		return dst, fmt.Errorf("unknown record kind %d", r.Kind)
	}
}

// decodeRecord parses an appendRecord payload. dec amortizes entry and
// command allocations across the replay.
func decodeRecord(payload []byte, dec *EntryDecoder) (record, error) {
	r := bin.NewReader(payload)
	if v := r.Byte(); v != recordVersion {
		if r.Err() == nil {
			return record{}, fmt.Errorf("unsupported record version %d", v)
		}
		return record{}, r.Err()
	}
	rec := record{Kind: recordKind(r.Byte())}
	switch rec.Kind {
	case recordState:
		rec.Term = r.Int()
		rec.VotedFor = r.Int()
	case recordLog:
		rec.PrevIndex = r.Int()
		var err error
		rec.Entries, err = dec.ReadEntries(r, nil)
		if err != nil {
			return record{}, err
		}
	case recordSnapshot:
		rec.SnapIndex = r.Int()
		rec.SnapTerm = r.Int()
		rec.SnapData = r.Bytes()
	default:
		if r.Err() == nil {
			return record{}, fmt.Errorf("unknown record kind %d", rec.Kind)
		}
	}
	if err := r.Err(); err != nil {
		return record{}, err
	}
	return rec, nil
}

// flush pushes buffered frames to the kernel and issues the durability
// barrier — exactly one Sync however many records were encoded. With a
// syncer wired, the barrier is the node-wide coalesced one: the write
// buffer drains here (owner goroutine), then the syncer fsyncs this
// file under whichever shared barrier covers it.
func (s *FileStorage) flush() error {
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("raft: persist: %w", err)
	}
	if s.syncer != nil {
		width, err := s.syncer.Sync(s)
		s.lastWidth = width
		return err
	}
	s.lastWidth = 1
	return s.SyncDevice()
}

func (s *FileStorage) append(r record) error {
	if err := s.encodeRecord(r); err != nil {
		return err
	}
	return s.flush()
}

// SetState implements Storage.
func (s *FileStorage) SetState(term, votedFor int) error {
	return s.append(record{Kind: recordState, Term: term, VotedFor: votedFor})
}

// TruncateAndAppend implements Storage.
func (s *FileStorage) TruncateAndAppend(prevIndex int, entries []Entry) error {
	return s.append(record{Kind: recordLog, PrevIndex: prevIndex, Entries: entries})
}

// AppendBatch implements Storage: the whole batch is encoded into the
// write buffer and made durable with a single Sync.
func (s *FileStorage) AppendBatch(muts []LogMutation) error {
	if len(muts) == 0 {
		return nil
	}
	for _, m := range muts {
		if err := s.encodeRecord(record{Kind: recordLog, PrevIndex: m.PrevIndex, Entries: m.Entries}); err != nil {
			return err
		}
	}
	return s.flush()
}

// SaveSnapshot implements Storage.
func (s *FileStorage) SaveSnapshot(index, term int, data []byte) error {
	return s.append(record{Kind: recordSnapshot, SnapIndex: index, SnapTerm: term, SnapData: data})
}

// errCorrupt marks an interior record that failed validation; a torn
// final record is not corruption (crashes tear tails) but a bad checksum
// or undecodable payload mid-file means the disk lied, and silently
// dropping the suffix would roll back acknowledged state.
var errCorrupt = errors.New("raft: corrupt storage record")

// Load implements Storage by replaying the framed record log. It must be
// called on a freshly opened store, before any writes. A torn final
// record (incomplete frame at EOF — a crash mid-append) is dropped and
// the file is truncated back to the last complete record, so subsequent
// appends continue from a clean tail. A complete frame that fails its
// checksum or does not decode is interior corruption and surfaces as an
// error.
func (s *FileStorage) Load() (PersistentState, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return PersistentState{}, fmt.Errorf("raft: load storage: %w", err)
	}
	defer func() { _ = f.Close() }()
	br := bufio.NewReaderSize(f, 1<<16)
	st := PersistentState{VotedFor: none}
	var dec EntryDecoder
	var valid int64 // offset just past the last fully-applied record
	var hdr [frameHeaderSize]byte
	payload := []byte(nil)
	for recNo := 0; ; recNo++ {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break // clean end of log
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn header: crash mid-append
			}
			return st, fmt.Errorf("raft: load storage: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if int(length) > cap(payload) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn payload: crash mid-append
			}
			return st, fmt.Errorf("raft: load storage: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return st, fmt.Errorf("%w %d: checksum mismatch", errCorrupt, recNo)
		}
		r, err := decodeRecord(payload, &dec)
		if err != nil {
			return st, fmt.Errorf("%w %d: %v", errCorrupt, recNo, err)
		}
		switch r.Kind {
		case recordState:
			st.Term, st.VotedFor = r.Term, r.VotedFor
		case recordLog:
			var serr error
			st.Entries, serr = spliceTail(st.Entries, st.SnapIndex, r.PrevIndex, r.Entries)
			if serr != nil {
				return st, fmt.Errorf("%w %d: %v", errCorrupt, recNo, serr)
			}
		case recordSnapshot:
			st.Entries = dropThrough(st.Entries, st.SnapIndex, r.SnapIndex)
			st.SnapIndex, st.SnapTerm = r.SnapIndex, r.SnapTerm
			st.SnapData = r.SnapData
		default:
			return st, fmt.Errorf("%w %d: unknown kind %d", errCorrupt, recNo, r.Kind)
		}
		valid += frameHeaderSize + int64(length)
	}
	// Discard the torn tail so future appends don't land after garbage —
	// without this, the next Load would hit the garbage and drop every
	// record written after the crash.
	if info, err := s.f.Stat(); err == nil && info.Size() > valid {
		if err := s.f.Truncate(valid); err != nil {
			return st, fmt.Errorf("raft: truncate torn tail: %w", err)
		}
	}
	return st, nil
}
