package raft

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Storage persists the Raft state that must survive a crash: currentTerm,
// votedFor, and the log. A node configured with a Storage restores from
// it in NewNode and persists before acting on any state change, per the
// Raft paper's durability rules. CommitIndex and lastApplied are volatile
// and rebuilt from the leader after restart.
//
// Implementations must be safe for use from one goroutine (the node's
// main loop); they need not be safe for concurrent nodes.
type Storage interface {
	// SetState durably records the term and vote.
	SetState(term, votedFor int) error
	// TruncateAndAppend durably applies a log mutation with exactly the
	// in-memory appendAfter semantics: entries already present with the
	// same term are left untouched (asynchronous networks redeliver old
	// AppendEntries out of order), a term conflict truncates the suffix,
	// and new entries are appended. Indexes at or below the last saved
	// snapshot are silently skipped.
	TruncateAndAppend(prevIndex int, entries []Entry) error
	// SaveSnapshot durably records a state-machine snapshot covering the
	// log through index; entries up to it may be discarded.
	SaveSnapshot(index, term int, data []byte) error
	// Load restores the persisted state; a fresh store returns zero
	// values and no error.
	Load() (PersistentState, error)
}

// PersistentState is the durable part of Figure 2, plus the compaction
// snapshot. Entries holds the log tail after SnapIndex; Entries[i] is
// global index SnapIndex+1+i.
type PersistentState struct {
	Term      int
	VotedFor  int // none (-1) when unset; Load on a fresh store returns none
	SnapIndex int
	SnapTerm  int
	SnapData  []byte // nil when no snapshot was saved
	Entries   []Entry
}

// MemStorage keeps the persistent state in memory — it survives a *node*
// restart (the crash-recovery tests) though not a process restart.
// Create it with NewMemStorage.
type MemStorage struct {
	mu        sync.Mutex
	term      int
	votedFor  int
	snapIndex int
	snapTerm  int
	snapData  []byte
	entries   []Entry // tail after snapIndex
}

var _ Storage = (*MemStorage)(nil)

// NewMemStorage returns an empty in-memory store.
func NewMemStorage() *MemStorage {
	return &MemStorage{votedFor: none}
}

// SetState implements Storage.
func (s *MemStorage) SetState(term, votedFor int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.term, s.votedFor = term, votedFor
	return nil
}

// TruncateAndAppend implements Storage.
func (s *MemStorage) TruncateAndAppend(prevIndex int, entries []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	s.entries, err = spliceTail(s.entries, s.snapIndex, prevIndex, entries)
	return err
}

// SaveSnapshot implements Storage.
func (s *MemStorage) SaveSnapshot(index, term int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = dropThrough(s.entries, s.snapIndex, index)
	s.snapIndex, s.snapTerm = index, term
	s.snapData = append([]byte(nil), data...)
	return nil
}

// spliceTail applies TruncateAndAppend semantics to a tail slice whose
// first element has global index offset+1. It mirrors
// raftLog.appendAfter exactly: already-present same-term entries are
// kept (a stale redelivered AppendEntries must not shorten the persisted
// log), and only a term conflict truncates.
func spliceTail(tail []Entry, offset, prevIndex int, entries []Entry) ([]Entry, error) {
	if prevIndex < 0 {
		return tail, fmt.Errorf("raft: negative log index %d", prevIndex)
	}
	if prevIndex < offset {
		cut := offset - prevIndex
		if cut >= len(entries) {
			return tail, nil // everything is inside the snapshot already
		}
		entries = entries[cut:]
		prevIndex = offset
	}
	if prevIndex-offset > len(tail) {
		return tail, fmt.Errorf("raft: truncate beyond log: prev=%d offset=%d len=%d", prevIndex, offset, len(tail))
	}
	for i, e := range entries {
		pos := prevIndex - offset + i
		if pos < len(tail) {
			if tail[pos].Term == e.Term {
				continue // already persisted
			}
			tail = tail[:pos]
		}
		tail = append(tail, e)
	}
	return tail, nil
}

// dropThrough discards tail entries with global index <= through.
func dropThrough(tail []Entry, offset, through int) []Entry {
	keep := through - offset
	if keep <= 0 {
		return tail
	}
	if keep >= len(tail) {
		return nil
	}
	return append([]Entry(nil), tail[keep:]...)
}

// Load implements Storage.
func (s *MemStorage) Load() (PersistentState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return PersistentState{
		Term:      s.term,
		VotedFor:  s.votedFor,
		SnapIndex: s.snapIndex,
		SnapTerm:  s.snapTerm,
		SnapData:  append([]byte(nil), s.snapData...),
		Entries:   append([]Entry(nil), s.entries...),
	}, nil
}

// record is one append-only entry in a FileStorage log.
type record struct {
	Kind      recordKind
	Term      int
	VotedFor  int
	PrevIndex int
	Entries   []Entry
	SnapIndex int
	SnapTerm  int
	SnapData  []byte
}

type recordKind int

const (
	recordState recordKind = iota + 1
	recordLog
	recordSnapshot
)

// FileStorage is an append-only on-disk store: every state change is a
// gob record appended to the file, and Load replays the records. Simple,
// durable-per-write (via Sync), and crash-consistent: a torn final
// record is discarded on replay.
type FileStorage struct {
	path string
	f    *os.File
	enc  *gob.Encoder
}

var _ Storage = (*FileStorage)(nil)

// OpenFileStorage opens (or creates) the store at path. Entry commands
// must be gob-registered (see transport.Register / raft.WireTypes).
func OpenFileStorage(path string) (*FileStorage, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("raft: open storage: %w", err)
	}
	return &FileStorage{path: path, f: f, enc: gob.NewEncoder(f)}, nil
}

// Close releases the file handle.
func (s *FileStorage) Close() error { return s.f.Close() }

func (s *FileStorage) append(r record) error {
	if err := s.enc.Encode(r); err != nil {
		return fmt.Errorf("raft: persist: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("raft: fsync: %w", err)
	}
	return nil
}

// SetState implements Storage.
func (s *FileStorage) SetState(term, votedFor int) error {
	return s.append(record{Kind: recordState, Term: term, VotedFor: votedFor})
}

// TruncateAndAppend implements Storage.
func (s *FileStorage) TruncateAndAppend(prevIndex int, entries []Entry) error {
	return s.append(record{Kind: recordLog, PrevIndex: prevIndex, Entries: entries})
}

// SaveSnapshot implements Storage.
func (s *FileStorage) SaveSnapshot(index, term int, data []byte) error {
	return s.append(record{Kind: recordSnapshot, SnapIndex: index, SnapTerm: term, SnapData: data})
}

// Load implements Storage by replaying the record log. It must be called
// on a freshly opened store, before any writes.
func (s *FileStorage) Load() (PersistentState, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return PersistentState{}, fmt.Errorf("raft: load storage: %w", err)
	}
	defer func() { _ = f.Close() }()
	dec := gob.NewDecoder(f)
	st := PersistentState{VotedFor: none}
	for {
		var r record
		if err := dec.Decode(&r); err != nil {
			if errors.Is(err, io.EOF) {
				return st, nil
			}
			// A torn tail (crash mid-write) ends the usable prefix.
			return st, nil
		}
		switch r.Kind {
		case recordState:
			st.Term, st.VotedFor = r.Term, r.VotedFor
		case recordLog:
			var serr error
			st.Entries, serr = spliceTail(st.Entries, st.SnapIndex, r.PrevIndex, r.Entries)
			if serr != nil {
				return st, fmt.Errorf("raft: corrupt storage: %w", serr)
			}
		case recordSnapshot:
			st.Entries = dropThrough(st.Entries, st.SnapIndex, r.SnapIndex)
			st.SnapIndex, st.SnapTerm = r.SnapIndex, r.SnapTerm
			st.SnapData = r.SnapData
		}
	}
}
