package raft

import "fmt"

// Entry is one log record: the command and the term in which the leader
// received it. Indexes are 1-based and implicit in the entry's position.
type Entry struct {
	Term    int
	Command any
}

// raftLog wraps the indexed entry list with the index arithmetic Raft
// needs. Index 0 is the empty log's sentinel (term 0). After compaction
// the prefix up to snapIndex lives only in the state-machine snapshot;
// entries[i] then holds global index snapIndex+1+i.
type raftLog struct {
	entries   []Entry
	snapIndex int // last compacted index (0 = nothing compacted)
	snapTerm  int // term of the entry at snapIndex
}

// lastIndex reports the index of the newest entry (snapIndex when the
// tail is empty, 0 for a fresh log).
func (l *raftLog) lastIndex() int { return l.snapIndex + len(l.entries) }

// termAt reports the term of the entry at index; termAt(snapIndex) is
// answered from the snapshot marker. ok is false when the index is out of
// range or compacted away.
func (l *raftLog) termAt(index int) (term int, ok bool) {
	switch {
	case index == l.snapIndex:
		return l.snapTerm, true
	case index < l.snapIndex || index < 0 || index > l.lastIndex():
		return 0, false
	default:
		return l.entries[index-l.snapIndex-1].Term, true
	}
}

// lastTerm reports the term of the newest entry (0 when empty).
func (l *raftLog) lastTerm() int {
	t, _ := l.termAt(l.lastIndex())
	return t
}

// entryAt returns the entry at a 1-based global index; compacted entries
// are gone.
func (l *raftLog) entryAt(index int) (Entry, bool) {
	if index <= l.snapIndex || index > l.lastIndex() {
		return Entry{}, false
	}
	return l.entries[index-l.snapIndex-1], true
}

// matches reports whether the log contains an entry at index with the
// given term — the AppendEntries consistency check.
func (l *raftLog) matches(index, term int) bool {
	t, ok := l.termAt(index)
	return ok && t == term
}

// appendAfter implements the receiver side of AppendEntries: given that
// prevIndex matched, it appends entries, deleting any conflicting suffix
// ("if an existing entry conflicts with a new one, delete the existing
// entry and all that follow it"). It returns the index of the last new
// entry and whether any existing entries were truncated.
func (l *raftLog) appendAfter(prevIndex int, entries []Entry) (lastNew int, truncated bool) {
	for i, e := range entries {
		idx := prevIndex + 1 + i
		if idx <= l.snapIndex {
			continue // already compacted, hence already committed
		}
		pos := idx - l.snapIndex - 1 // position in the tail slice
		if pos < len(l.entries) {
			if l.entries[pos].Term == e.Term {
				continue // already present
			}
			l.entries = l.entries[:pos]
			truncated = true
		}
		l.entries = append(l.entries, e)
	}
	return prevIndex + len(entries), truncated
}

// appendEntry appends a fresh entry (leader side) and returns its global
// index.
func (l *raftLog) appendEntry(e Entry) int {
	l.entries = append(l.entries, e)
	return l.lastIndex()
}

// slice returns a copy of entries[from..last] (global indexes,
// inclusive). Requests reaching into the compacted prefix are clamped to
// the available tail — the caller must detect from <= snapIndex and ship
// a snapshot instead.
func (l *raftLog) slice(from int) []Entry {
	if from <= l.snapIndex {
		from = l.snapIndex + 1
	}
	if from > l.lastIndex() {
		return nil
	}
	pos := from - l.snapIndex - 1
	out := make([]Entry, len(l.entries)-pos)
	copy(out, l.entries[pos:])
	return out
}

// sliceLimit returns a copy of at most max entries starting at the
// global index from — the unit a pipelined AppendEntries carries. A
// non-positive max means no limit.
func (l *raftLog) sliceLimit(from, max int) []Entry {
	if from <= l.snapIndex {
		from = l.snapIndex + 1
	}
	if from > l.lastIndex() {
		return nil
	}
	pos := from - l.snapIndex - 1
	n := len(l.entries) - pos
	if max > 0 && n > max {
		n = max
	}
	out := make([]Entry, n)
	copy(out, l.entries[pos:pos+n])
	return out
}

// compactTo discards entries up to and including index, which must be
// covered by the state-machine snapshot (i.e. applied). No-op when index
// is not beyond the current compaction point or is unknown.
func (l *raftLog) compactTo(index int) {
	if index <= l.snapIndex {
		return
	}
	term, ok := l.termAt(index)
	if !ok {
		return
	}
	keep := l.lastIndex() - index
	tail := make([]Entry, keep)
	copy(tail, l.entries[len(l.entries)-keep:])
	l.entries = tail
	l.snapIndex, l.snapTerm = index, term
}

// restoreSnapshot resets the log around a received snapshot: if the local
// log already contains the snapshot's last entry with the right term, the
// suffix after it is retained (it may still be live); otherwise the whole
// log is replaced by the snapshot marker.
func (l *raftLog) restoreSnapshot(index, term int) {
	if t, ok := l.termAt(index); ok && t == term && index <= l.lastIndex() {
		l.entries = l.slice(index + 1)
	} else {
		l.entries = nil
	}
	l.snapIndex, l.snapTerm = index, term
}

// upToDate reports whether a candidate log described by (lastIndex,
// lastTerm) is at least as up-to-date as this one — the election
// restriction of Raft §5.4.1.
func (l *raftLog) upToDate(lastIndex, lastTerm int) bool {
	myTerm := l.lastTerm()
	if lastTerm != myTerm {
		return lastTerm > myTerm
	}
	return lastIndex >= l.lastIndex()
}

// String implements fmt.Stringer for debugging.
func (l *raftLog) String() string {
	return fmt.Sprintf("log(last=%d lastTerm=%d compacted=%d)", l.lastIndex(), l.lastTerm(), l.snapIndex)
}
