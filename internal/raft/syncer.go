package raft

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ooc/internal/metrics"
)

// Disk models one shared storage device. Multi-Raft runs many FileStorage
// logs on a node, but they usually share a disk: however many files are
// dirty, the device can absorb their writes in a single flush, and
// concurrent barriers serialize at the device. SlowDisk (per-Storage
// latency, concurrent sleeps overlap) models the opposite — one
// independent device per group — so the two are different fixtures, not
// alternatives: E16 keeps SlowDisk, E18 shares one Disk across a node's
// groups.
//
// Barrier blocks for the configured latency while holding the device
// lock, so K concurrent barriers cost K·latency — exactly the queueing
// the SyncCoalescer removes by paying one Barrier for K groups. A nil
// *Disk (or zero latency) is a free barrier: real fsyncs already paid at
// the file layer, and the host device is not being modeled.
type Disk struct {
	mu      sync.Mutex
	latency time.Duration
}

// NewDisk returns a shared-device model with the given per-barrier
// latency. Zero latency is valid and makes Barrier free.
func NewDisk(latency time.Duration) *Disk {
	return &Disk{latency: latency}
}

// Barrier pays one device flush. Safe on a nil receiver.
func (d *Disk) Barrier() {
	if d == nil || d.latency <= 0 {
		return
	}
	d.mu.Lock()
	time.Sleep(d.latency)
	d.mu.Unlock()
}

// SyncTarget is what the coalescer makes durable: one group's log file.
// SyncDevice must issue the real per-file fsync and must be safe to call
// from the barrier leader's goroutine — the caller's own goroutine is
// parked while a shared barrier covers it. FileStorage implements it.
type SyncTarget interface {
	SyncDevice() error
}

// syncReq is one parked "make my batch durable" request. done is a
// buffered handshake channel (never closed, reused via the pool): the
// leader sends exactly one token, either releasing the waiter with its
// barrier's outcome or — when lead is set — promoting it to lead the
// next round itself.
type syncReq struct {
	target SyncTarget
	err    error
	width  int
	lead   []*syncReq // non-nil after promotion: the batch this req now leads
	done   chan struct{}
}

// SyncerConfig parameterizes NewSyncCoalescer.
type SyncerConfig struct {
	// Disk, if non-nil, is the shared-device model every barrier pays.
	// Nil means "real device only": per-file fsyncs still happen, the
	// modeled barrier is free.
	Disk *Disk
	// PerGroup disables coalescing: every Sync pays its own device
	// barrier, serialized through Disk. This is the pre-PR10 baseline,
	// kept in-binary for A/B runs (raftkv -sync-coalesce=false).
	PerGroup bool
	// Metrics, if non-nil, registers the syncer's instruments
	// (raft_sync_requests_total, raft_sync_barriers_total,
	// raft_sync_coalesced_total, raft_sync_barrier_width), labeled by
	// Node.
	Metrics *metrics.Registry
	// Node labels the metrics; the syncer is per-node, not per-group.
	Node int
}

// SyncCoalescer turns K concurrent durability requests from a node's
// Raft groups into one device barrier. Each group's persist worker
// appends to its own file, then calls Sync; the first requester becomes
// the barrier leader, fsyncs its own file, absorbs every request that
// arrived meanwhile (fsyncing their files too — a waiter is only covered
// once its own fd is clean), pays one Disk.Barrier for the whole round,
// and releases the waiters. Requests that arrive mid-round park; when
// the round ends, leadership hands off to the oldest waiter so a hot
// leader can't starve the queue.
//
// The uncontended path — one group, or requests that never overlap —
// takes three uncontended mutex sections and no allocations, so a
// single-shard node pays nothing for the machinery (the degenerate-case
// gate in groupcommit_accept_test.go holds this to ≤3% vs PR9).
//
// Errors stay per-group: each covered request carries the error from its
// own file's fsync, so one group's bad fd fails only that group.
type SyncCoalescer struct {
	disk     *Disk
	perGroup bool

	mu      sync.Mutex
	busy    bool // a barrier round is in flight
	pending []*syncReq

	pool sync.Pool // *syncReq, contended path only

	requests  atomic.Int64
	barriers  atomic.Int64
	coalesced atomic.Int64

	metricsOn  bool
	node       int
	reqsC      *metrics.Counter
	barriersC  *metrics.Counter
	coalescedC *metrics.Counter
	widthH     *metrics.Histogram
}

// NewSyncCoalescer builds a per-node syncer. One instance serves every
// group on the node; Sync is safe for concurrent use.
func NewSyncCoalescer(cfg SyncerConfig) *SyncCoalescer {
	c := &SyncCoalescer{disk: cfg.Disk, perGroup: cfg.PerGroup, node: cfg.Node}
	if reg := cfg.Metrics; reg != nil {
		node := strconv.Itoa(cfg.Node)
		c.metricsOn = true
		c.reqsC = reg.Counter(metrics.Label("raft_sync_requests_total", "node", node))
		c.barriersC = reg.Counter(metrics.Label("raft_sync_barriers_total", "node", node))
		c.coalescedC = reg.Counter(metrics.Label("raft_sync_coalesced_total", "node", node))
		c.widthH = reg.Histogram(metrics.Label("raft_sync_barrier_width", "node", node), countBuckets)
	}
	return c
}

// PerGroup reports whether coalescing is disabled (the A/B baseline).
func (c *SyncCoalescer) PerGroup() bool { return c.perGroup }

// Requests reports how many Sync calls the syncer has served.
func (c *SyncCoalescer) Requests() int64 { return c.requests.Load() }

// Barriers reports how many device barriers were paid. With coalescing
// this is the node-wide fsync count E18 divides by ops; per-group mode
// pins it equal to Requests.
func (c *SyncCoalescer) Barriers() int64 { return c.barriers.Load() }

// Coalesced reports how many requests rode another request's barrier
// (Requests − Barriers in coalesced mode).
func (c *SyncCoalescer) Coalesced() int64 { return c.coalesced.Load() }

// Sync makes t durable and returns the width of the barrier that covered
// it — how many groups' requests shared the device flush (1 when it flew
// alone). Blocks until t's own fsync and the covering barrier have both
// completed; the returned error is from t's own fsync only.
func (c *SyncCoalescer) Sync(t SyncTarget) (int, error) {
	c.requests.Add(1)
	if c.metricsOn {
		c.reqsC.Inc(c.node)
	}
	if c.perGroup {
		err := t.SyncDevice()
		c.disk.Barrier()
		c.observeBarrier(1)
		return 1, err
	}
	c.mu.Lock()
	if !c.busy {
		c.busy = true
		c.mu.Unlock()
		err := t.SyncDevice()
		width := c.closeRound(nil)
		return width, err
	}
	r := c.newReq(t)
	c.pending = append(c.pending, r)
	c.mu.Unlock()
	<-r.done
	if r.lead != nil {
		c.leadBatch(r.lead)
	}
	width, err := r.width, r.err
	c.freeReq(r)
	return width, err
}

// leadBatch runs a barrier round on behalf of a promoted waiter:
// batch[0] is the promoted request itself (its own fsync not yet
// issued), the rest are its cohort. Results land in each req; the
// cohort is released, batch[0]'s caller reads its fields directly.
func (c *SyncCoalescer) leadBatch(batch []*syncReq) {
	for _, q := range batch {
		q.err = q.target.SyncDevice()
	}
	width := c.closeRound(batch)
	batch[0].width = width
}

// closeRound finishes the in-flight round after the leader's own fsync:
// absorb late arrivals, pay the one device barrier, release everyone,
// hand leadership to any still-parked requests. synced holds requests
// whose files are already clean (the promoted batch); late arrivals are
// fsynced here. Returns the round's width.
func (c *SyncCoalescer) closeRound(synced []*syncReq) int {
	c.mu.Lock()
	extra := c.pending
	c.pending = nil
	c.mu.Unlock()
	for _, q := range extra {
		q.err = q.target.SyncDevice()
	}
	c.disk.Barrier()
	width := 1 + len(extra)
	if synced != nil {
		width = len(synced) + len(extra)
	}
	c.observeBarrier(width)
	if synced != nil {
		for _, q := range synced[1:] {
			q.width = width
			q.done <- struct{}{}
		}
	}
	for _, q := range extra {
		q.width = width
		q.done <- struct{}{}
	}
	c.handoff()
	return width
}

// handoff ends the round: if requests parked after the last steal, the
// oldest one is promoted to lead them all in a fresh round (leadership
// rotates, so one endlessly-busy group cannot starve the others);
// otherwise the syncer goes idle.
func (c *SyncCoalescer) handoff() {
	c.mu.Lock()
	if len(c.pending) == 0 {
		c.busy = false
		c.mu.Unlock()
		return
	}
	next := c.pending
	c.pending = nil
	c.mu.Unlock()
	next[0].lead = next
	next[0].done <- struct{}{}
}

func (c *SyncCoalescer) observeBarrier(width int) {
	c.barriers.Add(1)
	if width > 1 {
		c.coalesced.Add(int64(width - 1))
	}
	if c.metricsOn {
		c.barriersC.Inc(c.node)
		if width > 1 {
			c.coalescedC.Add(c.node, int64(width-1))
		}
		c.widthH.Observe(c.node, time.Duration(width))
	}
}

// barrierWidth reports how many groups shared the barrier covering st's
// most recent flush — 1 for storages that don't track it (MemStorage,
// wrappers that don't forward LastBarrierWidth).
func barrierWidth(st Storage) int {
	if ws, ok := st.(interface{ LastBarrierWidth() int }); ok {
		return ws.LastBarrierWidth()
	}
	return 1
}

func (c *SyncCoalescer) newReq(t SyncTarget) *syncReq {
	if v := c.pool.Get(); v != nil {
		r := v.(*syncReq)
		r.target, r.err, r.width, r.lead = t, nil, 0, nil
		return r
	}
	return &syncReq{target: t, done: make(chan struct{}, 1)}
}

func (c *SyncCoalescer) freeReq(r *syncReq) {
	r.target, r.err, r.lead = nil, nil, nil
	c.pool.Put(r)
}
