package raft

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"ooc/internal/rtrace"
	"ooc/internal/sim"
)

// Client submits commands to a Raft cluster with the retry logic every
// real deployment needs: it follows ErrNotLeader redirects, falls back to
// round-robin probing when no leader is known, retries across elections,
// and optionally waits until the command is applied locally on the
// contacted node. It is the API cmd/raftkv and the examples build on.
//
// The client only needs handles to the nodes it may contact; in a
// multi-process deployment that is typically one local node.
type Client struct {
	nodes      []*Node
	clock      sim.Clock
	backoff    time.Duration // base retry pause; doubles per attempt
	backoffMax time.Duration // exponential growth cap
	rng        *sim.RNG      // jitter source; deterministic under a fixed seed
	readMode   ReadConsistency
	tracer     *rtrace.Tracer // nil = tracing disabled
	leader     atomic.Int32   // last node that served a read, or redirect hint; -1 unknown
	rr         atomic.Int64   // round-robin cursor for stale reads
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientClock injects a clock (tests use the fake one for backoff).
func WithClientClock(clock sim.Clock) ClientOption {
	return func(c *Client) { c.clock = clock }
}

// WithClientBackoff sets the base retry pause (default 5ms). Consecutive
// failed attempts double it, jittered, up to the WithClientBackoffMax
// cap.
func WithClientBackoff(d time.Duration) ClientOption {
	return func(c *Client) { c.backoff = d }
}

// WithClientBackoffMax caps the exponential backoff growth (default
// 32× the base pause).
func WithClientBackoffMax(d time.Duration) ClientOption {
	return func(c *Client) { c.backoffMax = d }
}

// WithClientRNG injects the jitter source, letting simulations keep
// client retry timing on a deterministic seed.
func WithClientRNG(rng *sim.RNG) ClientOption {
	return func(c *Client) { c.rng = rng }
}

// WithReadConsistency sets the default mode Client.Read uses (the zero
// default is ReadLinearizable).
func WithReadConsistency(rc ReadConsistency) ClientOption {
	return func(c *Client) { c.readMode = rc }
}

// WithClientTracer samples per-request spans into t: SubmitWait and
// ReadWith open a span per call, thread its ID through the node's
// propose/read paths via the context, and close it with the outcome.
// The same tracer should be handed to the cluster's nodes
// (Config.Tracer) so the per-phase attribution lands in the same spans.
func WithClientTracer(t *rtrace.Tracer) ClientOption {
	return func(c *Client) { c.tracer = t }
}

// NewClient builds a client over the contactable nodes.
func NewClient(nodes []*Node, opts ...ClientOption) (*Client, error) {
	if len(nodes) == 0 {
		return nil, errors.New("raft: client needs at least one node")
	}
	c := &Client{
		nodes:   append([]*Node(nil), nodes...),
		clock:   sim.RealClock{},
		backoff: 5 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.backoffMax <= 0 {
		c.backoffMax = 32 * c.backoff
	}
	if c.rng == nil {
		c.rng = sim.NewRNG(0x0c11e47ba7c0ffee)
	}
	c.leader.Store(-1)
	return c, nil
}

// nextBackoff computes the pause after attempt consecutive failures:
// exponential growth capped at backoffMax, with "equal jitter" — half
// the window is deterministic, half uniform — so a burst of clients
// retrying after the same election does not thunder back in lockstep.
func (c *Client) nextBackoff(attempt int) time.Duration {
	d := c.backoff
	for i := 0; i < attempt && d < c.backoffMax; i++ {
		d *= 2
	}
	if d > c.backoffMax {
		d = c.backoffMax
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(c.rng.Int63()%int64(half))
}

// Submit proposes cmd, retrying across leader changes until some node
// accepts it into its log as leader. It returns the log index the leader
// assigned and the id of the node that accepted.
//
// Note the standard caveat: acceptance is not commitment. A leader that
// crashes right after accepting may lose the entry; use SubmitWait for
// commit-level guarantees, and make commands idempotent if you retry
// around SubmitWait errors (exactly-once needs client session state,
// which is out of scope here as in the Raft paper's core protocol).
func (c *Client) Submit(ctx context.Context, cmd any) (index int, node int, err error) {
	probe := 0
	target := int(c.leader.Load()) // last known leader; -1 probes
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, 0, fmt.Errorf("raft: client: %w", err)
		}
		id := target
		if id < 0 || id >= len(c.nodes) {
			id = probe % len(c.nodes)
			probe++
		}
		idx, perr := c.nodes[id].Propose(ctx, cmd)
		if perr == nil {
			c.leader.Store(int32(id))
			return idx, id, nil
		}
		var nl ErrNotLeader
		redirected := false
		switch {
		case errors.As(perr, &nl):
			target = nl.LeaderID // may be -1: falls back to probing
			if target == id {
				target = -1 // stale self-reference; probe elsewhere
			}
			redirected = target >= 0 && target < len(c.nodes)
		case errors.Is(perr, ErrStopped):
			target = -1 // that node is gone; probe the others
		default:
			return 0, 0, fmt.Errorf("raft: client submit: %w", perr)
		}
		if redirected && attempt < len(c.nodes) {
			// A concrete redirect: chase it immediately. Backing off
			// here added a full jittered sleep to every write issued
			// while the hint was cold — per-request tracing showed the
			// sleep dominating the leader queue + fsync + replication
			// phases combined. The chase is free only for one lap
			// around the cluster, so a stale redirect loop (two nodes
			// each pointing at the other mid-election) still backs off.
			continue
		}
		c.clock.Sleep(c.nextBackoff(attempt))
	}
}

// SubmitWait proposes cmd and blocks until the accepting node has applied
// the entry at the assigned index — i.e. the command is committed and
// visible in that node's state machine. If leadership changes before
// commit it retries the submission from scratch.
func (c *Client) SubmitWait(ctx context.Context, cmd any) (index int, err error) {
	if id, ok := c.beginTrace(cmd); ok {
		ctx = rtrace.WithTrace(ctx, id)
		defer func() { c.tracer.End(id, err != nil) }()
	}
	for {
		idx, id, err := c.Submit(ctx, cmd)
		if err != nil {
			return 0, err
		}
		applied, err := c.waitApplied(ctx, id, idx)
		if err != nil {
			return 0, err
		}
		if applied {
			return idx, nil
		}
		// The entry was lost to a leadership change; resubmit.
	}
}

// beginTrace samples a span for a write, labeled from the KV command
// when cmd is one. The origin is the client's current leader hint (-1
// when probing).
func (c *Client) beginTrace(cmd any) (rtrace.ID, bool) {
	if c.tracer == nil {
		return 0, false
	}
	op, key := fmt.Sprintf("%T", cmd), ""
	if kv, ok := cmd.(KVCommand); ok {
		op, key = kv.Op, kv.Key
	}
	return c.tracer.Begin(int(c.leader.Load()), op, key)
}

// KVGetter is the read surface Client.Read needs from a node's state
// machine. KVStore implements it; any state machine with point lookups
// can.
type KVGetter interface {
	Get(key string) (string, bool)
}

// Read looks up key with the client's default read consistency (set via
// WithReadConsistency; ReadLinearizable unless configured otherwise).
func (c *Client) Read(ctx context.Context, key string) (value string, found bool, err error) {
	return c.ReadWith(ctx, key, c.readMode)
}

// ReadWith looks up key with an explicit consistency mode.
//
//   - ReadLinearizable and ReadLease go through the node's read fast path
//     (Node.ReadIndexMode): the contacted node returns only after its
//     state machine has applied through a confirmed read index, so the
//     local Get that follows is linearizable. The client prefers the
//     cluster's current leader — follower forwarding works but adds a
//     relay hop — and follows redirects like Submit does.
//   - ReadStale reads any node's state machine with no coordination.
//   - ReadLogCommand replicates the read through the log like a write
//     (the pre-fast-path baseline): a no-mutation command is submitted,
//     committed, and applied, and the value is then read from the
//     accepting node.
func (c *Client) ReadWith(ctx context.Context, key string, mode ReadConsistency) (value string, found bool, err error) {
	if c.tracer != nil {
		if id, ok := c.tracer.Begin(int(c.leader.Load()), "get:"+mode.String(), key); ok {
			ctx = rtrace.WithTrace(ctx, id)
			defer func() { c.tracer.End(id, err != nil) }()
		}
	}
	switch mode {
	case ReadStale:
		return c.readStale(ctx, key)
	case ReadLogCommand:
		return c.readLogCommand(ctx, key)
	}
	probe := 0
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return "", false, fmt.Errorf("raft: client: %w", err)
		}
		id := c.readTarget(&probe)
		_, rerr := c.nodes[id].ReadIndexMode(ctx, mode)
		if rerr == nil {
			c.leader.Store(int32(id))
			return c.get(id, key)
		}
		var nl ErrNotLeader
		switch {
		case errors.As(rerr, &nl):
			if nl.LeaderID != id {
				c.leader.Store(int32(nl.LeaderID)) // may be -1: falls back to probing
			} else {
				c.leader.Store(-1)
			}
		case errors.Is(rerr, ErrStopped):
			c.leader.Store(-1) // that node is gone; probe the others
		default:
			return "", false, fmt.Errorf("raft: client read: %w", rerr)
		}
		c.clock.Sleep(c.nextBackoff(attempt))
	}
}

// readTarget picks the node to send a coordinated read to: the sticky
// leader hint when one is known, else a scan for a node that believes it
// is leader, else round-robin probing.
func (c *Client) readTarget(probe *int) int {
	if id := int(c.leader.Load()); id >= 0 && id < len(c.nodes) {
		return id
	}
	for i, nd := range c.nodes {
		if nd.Status().State == Leader {
			c.leader.Store(int32(i))
			return i
		}
	}
	id := *probe % len(c.nodes)
	*probe++
	return id
}

// readStale serves an uncoordinated read from the next node in rotation,
// skipping stopped nodes.
func (c *Client) readStale(ctx context.Context, key string) (string, bool, error) {
	for tries := 0; tries < len(c.nodes); tries++ {
		id := int(c.rr.Add(1)-1) % len(c.nodes)
		if _, err := c.nodes[id].ReadIndexMode(ctx, ReadStale); err != nil {
			if errors.Is(err, ErrStopped) {
				continue
			}
			return "", false, fmt.Errorf("raft: client read: %w", err)
		}
		return c.get(id, key)
	}
	return "", false, errors.New("raft: client read: no live nodes")
}

// readLogCommand is the reads-as-log-commands baseline: replicate a
// no-mutation command, wait for it to commit and apply on the accepting
// node, then read that node's state machine. The applied index at read
// time is ≥ the command's own index, which is after the read's
// invocation — linearizable, at full write-path cost (log append, fsync,
// quorum replication).
func (c *Client) readLogCommand(ctx context.Context, key string) (string, bool, error) {
	for {
		idx, id, err := c.Submit(ctx, KVCommand{Op: "get", Key: key})
		if err != nil {
			return "", false, err
		}
		applied, err := c.waitApplied(ctx, id, idx)
		if err != nil {
			return "", false, err
		}
		if applied {
			return c.get(id, key)
		}
		// Lost to a leadership change; resubmit like SubmitWait does.
	}
}

// get reads key from node id's state machine.
func (c *Client) get(id int, key string) (string, bool, error) {
	g, ok := c.nodes[id].StateMachine().(KVGetter)
	if !ok {
		return "", false, fmt.Errorf("raft: client read: node %d state machine is not a KVGetter", id)
	}
	v, found := g.Get(key)
	return v, found, nil
}

// waitApplied blocks until node id's lastApplied covers index (true), or
// the node's log no longer contains our proposal's term at that position
// because a new leader truncated it (false → caller resubmits).
//
// Applies are observed through the node's applied notifier rather than
// by polling Status every backoff tick: a Status call is a channel
// round-trip through the node's main loop, so closed-loop clients both
// quantized their latency to the poll period and stole loop iterations
// from the commit pipeline. The happy path is now notifier-only — a
// Status round-trip after the apply edge would stall behind whatever
// the loop is doing next (typically the following batch's group-commit
// fsync), adding unattributed milliseconds between apply and reply that
// rtrace spans made visible. The Status checks remain for the timeout
// path, where they decide the truncation and stopped-node races the
// notifier can't see. Note the notifier result carries the same caveat
// Status.LastApplied always did: applied reaching index does not prove
// OUR entry survived at that index (see AwaitApplied).
func (c *Client) waitApplied(ctx context.Context, id, index int) (bool, error) {
	for {
		if err := ctx.Err(); err != nil {
			return false, fmt.Errorf("raft: client: %w", err)
		}
		// Wake at the apply edge; the timeout bounds how long a
		// truncation (which applies nothing at our index) can stall us.
		wctx, cancel := context.WithTimeout(ctx, 10*c.backoff)
		applied, err := c.nodes[id].AwaitApplied(wctx, index)
		cancel()
		if err == nil && applied >= index {
			return true, nil
		}
		if errors.Is(err, ErrStopped) {
			return false, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return false, fmt.Errorf("raft: client: %w", cerr)
		}
		// The wait timed out without the apply reaching index. Consult
		// Status for what the notifier can't tell us.
		st := c.nodes[id].Status()
		switch {
		case st.LastApplied >= index:
			return true, nil
		case st.LogLength < index:
			// Truncated by a new leader: the entry is gone.
			return false, nil
		case st.State != Leader && st.Term == 0:
			// Stopped node (zero status); treat as lost.
			return false, nil
		}
	}
}
