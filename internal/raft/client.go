package raft

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ooc/internal/sim"
)

// Client submits commands to a Raft cluster with the retry logic every
// real deployment needs: it follows ErrNotLeader redirects, falls back to
// round-robin probing when no leader is known, retries across elections,
// and optionally waits until the command is applied locally on the
// contacted node. It is the API cmd/raftkv and the examples build on.
//
// The client only needs handles to the nodes it may contact; in a
// multi-process deployment that is typically one local node.
type Client struct {
	nodes      []*Node
	clock      sim.Clock
	backoff    time.Duration // base retry pause; doubles per attempt
	backoffMax time.Duration // exponential growth cap
	rng        *sim.RNG      // jitter source; deterministic under a fixed seed
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientClock injects a clock (tests use the fake one for backoff).
func WithClientClock(clock sim.Clock) ClientOption {
	return func(c *Client) { c.clock = clock }
}

// WithClientBackoff sets the base retry pause (default 5ms). Consecutive
// failed attempts double it, jittered, up to the WithClientBackoffMax
// cap.
func WithClientBackoff(d time.Duration) ClientOption {
	return func(c *Client) { c.backoff = d }
}

// WithClientBackoffMax caps the exponential backoff growth (default
// 32× the base pause).
func WithClientBackoffMax(d time.Duration) ClientOption {
	return func(c *Client) { c.backoffMax = d }
}

// WithClientRNG injects the jitter source, letting simulations keep
// client retry timing on a deterministic seed.
func WithClientRNG(rng *sim.RNG) ClientOption {
	return func(c *Client) { c.rng = rng }
}

// NewClient builds a client over the contactable nodes.
func NewClient(nodes []*Node, opts ...ClientOption) (*Client, error) {
	if len(nodes) == 0 {
		return nil, errors.New("raft: client needs at least one node")
	}
	c := &Client{
		nodes:   append([]*Node(nil), nodes...),
		clock:   sim.RealClock{},
		backoff: 5 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.backoffMax <= 0 {
		c.backoffMax = 32 * c.backoff
	}
	if c.rng == nil {
		c.rng = sim.NewRNG(0x0c11e47ba7c0ffee)
	}
	return c, nil
}

// nextBackoff computes the pause after attempt consecutive failures:
// exponential growth capped at backoffMax, with "equal jitter" — half
// the window is deterministic, half uniform — so a burst of clients
// retrying after the same election does not thunder back in lockstep.
func (c *Client) nextBackoff(attempt int) time.Duration {
	d := c.backoff
	for i := 0; i < attempt && d < c.backoffMax; i++ {
		d *= 2
	}
	if d > c.backoffMax {
		d = c.backoffMax
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(c.rng.Int63()%int64(half))
}

// Submit proposes cmd, retrying across leader changes until some node
// accepts it into its log as leader. It returns the log index the leader
// assigned and the id of the node that accepted.
//
// Note the standard caveat: acceptance is not commitment. A leader that
// crashes right after accepting may lose the entry; use SubmitWait for
// commit-level guarantees, and make commands idempotent if you retry
// around SubmitWait errors (exactly-once needs client session state,
// which is out of scope here as in the Raft paper's core protocol).
func (c *Client) Submit(ctx context.Context, cmd any) (index int, node int, err error) {
	probe := 0
	target := -1 // last redirect hint
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, 0, fmt.Errorf("raft: client: %w", err)
		}
		id := target
		if id < 0 || id >= len(c.nodes) {
			id = probe % len(c.nodes)
			probe++
		}
		idx, perr := c.nodes[id].Propose(ctx, cmd)
		if perr == nil {
			return idx, id, nil
		}
		var nl ErrNotLeader
		switch {
		case errors.As(perr, &nl):
			target = nl.LeaderID // may be -1: falls back to probing
			if target == id {
				target = -1 // stale self-reference; probe elsewhere
			}
		case errors.Is(perr, ErrStopped):
			target = -1 // that node is gone; probe the others
		default:
			return 0, 0, fmt.Errorf("raft: client submit: %w", perr)
		}
		c.clock.Sleep(c.nextBackoff(attempt))
	}
}

// SubmitWait proposes cmd and blocks until the accepting node has applied
// the entry at the assigned index — i.e. the command is committed and
// visible in that node's state machine. If leadership changes before
// commit it retries the submission from scratch.
func (c *Client) SubmitWait(ctx context.Context, cmd any) (index int, err error) {
	for {
		idx, id, err := c.Submit(ctx, cmd)
		if err != nil {
			return 0, err
		}
		applied, err := c.waitApplied(ctx, id, idx)
		if err != nil {
			return 0, err
		}
		if applied {
			return idx, nil
		}
		// The entry was lost to a leadership change; resubmit.
	}
}

// waitApplied polls node id until lastApplied covers index (true), or the
// node's log no longer contains our proposal's term at that position
// because a new leader truncated it (false → caller resubmits).
func (c *Client) waitApplied(ctx context.Context, id, index int) (bool, error) {
	for {
		if err := ctx.Err(); err != nil {
			return false, fmt.Errorf("raft: client: %w", err)
		}
		st := c.nodes[id].Status()
		switch {
		case st.LastApplied >= index:
			return true, nil
		case st.LogLength < index:
			// Truncated by a new leader: the entry is gone.
			return false, nil
		case st.State != Leader && st.Term == 0:
			// Stopped node (zero status); treat as lost.
			return false, nil
		}
		c.clock.Sleep(c.backoff)
	}
}
