package raft

import (
	"reflect"
	"testing"
)

// FuzzRecordDecode feeds arbitrary payloads to the storage record
// decoder: it must never panic (Load runs it on whatever survived a
// crash plus the CRC check, and the CRC does not protect against bugs in
// the encoder), and any payload it accepts must re-encode and re-decode
// identically.
func FuzzRecordDecode(f *testing.F) {
	seeds := []record{
		{Kind: recordState, Term: 7, VotedFor: 2},
		{Kind: recordLog, PrevIndex: 4, Entries: []Entry{
			{Term: 7, Command: KVCommand{Op: "set", Key: "k", Value: "v"}},
			{Term: 7, Command: Noop{}},
		}},
		{Kind: recordSnapshot, SnapIndex: 100, SnapTerm: 6, SnapData: []byte("snap")},
	}
	for _, rec := range seeds {
		payload, err := appendRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{recordVersion, byte(recordLog), 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var dec EntryDecoder
		rec, err := decodeRecord(payload, &dec)
		if err != nil {
			return // rejected, as corrupt payloads should be
		}
		encoded, err := appendRecord(nil, rec)
		if err != nil {
			t.Fatalf("accepted record %#v does not re-encode: %v", rec, err)
		}
		again, err := decodeRecord(encoded, &dec)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if !reflect.DeepEqual(again, rec) {
			t.Fatalf("re-decode = %#v, want %#v", again, rec)
		}
	})
}
