package raft

import (
	"context"
	"errors"
	"fmt"
)

// ConsensusNode is the paper's Algorithm 7: Raft used to decide a single
// value. The node proposes D&S(v) whenever it becomes leader; the
// DecideOnce state machine decides on the first command ever applied —
// "the processor decides upon the first value it sees in its log" — and
// ignores everything after.
type ConsensusNode struct {
	node  *Node
	sm    *DecideOnce
	sub   *Subscription
	value any
}

// NewConsensusNode wraps cfg (whose StateMachine must be unset) for
// single-decree consensus on input value v.
func NewConsensusNode(cfg Config, v any) (*ConsensusNode, error) {
	if cfg.StateMachine != nil {
		return nil, errors.New("raft: NewConsensusNode owns the state machine; leave Config.StateMachine nil")
	}
	sm := NewDecideOnce()
	cfg.StateMachine = sm
	node, err := NewNode(cfg)
	if err != nil {
		return nil, err
	}
	return &ConsensusNode{node: node, sm: sm, sub: node.Subscribe(), value: v}, nil
}

// Node exposes the underlying Raft node (for status inspection and fault
// injection in tests).
func (c *ConsensusNode) Node() *Node { return c.node }

// Run starts the node and blocks until this processor decides or ctx is
// cancelled. It returns the decided value.
//
// Decisions are stable across processors by Raft's State Machine Safety:
// every processor applies the same entry at index 1, and DecideOnce takes
// exactly that entry. EventApplied is emitted after Apply returns —
// whether from the main loop (SyncPipeline) or the apply worker (the
// pipelined default) — so the Decided() re-check on each event never
// races the state machine.
func (c *ConsensusNode) Run(ctx context.Context) (any, error) {
	c.node.Start(ctx)
	for {
		if v, _, ok := c.sm.Decided(); ok {
			return v, nil
		}
		ev, err := c.sub.Next(ctx)
		if err != nil {
			return nil, fmt.Errorf("raft: consensus: %w", err)
		}
		switch ev.Kind {
		case EventBecameLeader:
			// "Once leader, the processor tries to have the system decide
			// upon its value." Propose may race with a concurrent step-
			// down; ErrNotLeader is then expected and harmless.
			if _, err := c.node.Propose(ctx, DS{Value: c.value}); err != nil {
				var nl ErrNotLeader
				if !errors.As(err, &nl) {
					return nil, fmt.Errorf("raft: consensus propose: %w", err)
				}
			}
		case EventApplied:
			if v, _, ok := c.sm.Decided(); ok {
				return v, nil
			}
		}
	}
}

// Decided reports this processor's decision so far.
func (c *ConsensusNode) Decided() (any, bool) {
	v, _, ok := c.sm.Decided()
	return v, ok
}
