package raft

import (
	"context"
	"sync"
	"sync/atomic"
)

// appliedNotifier publishes the node's applied index to waiters outside
// the main loop. The client's SubmitWait used to discover applies by
// polling Status every backoff tick — each poll a channel round-trip
// through the main loop, so a grid of closed-loop clients both
// quantized its own latency to the poll period and stole main-loop
// iterations from the commit pipeline it was waiting on. The notifier
// replaces that with edge-triggered wakeups: the main loop calls
// advance after each apply batch (one mutex acquisition and at most one
// channel rotation), and waiters block on a closed-channel broadcast
// without the main loop ever seeing them.
type appliedNotifier struct {
	mu  sync.Mutex
	idx int
	ch  chan struct{} // closed and rotated whenever idx advances
	// cur mirrors idx for lock-free reads: in pipelined mode the apply
	// worker is the advancing side and the main loop polls the value on
	// every read it serves (appliedView), so the read must not contend
	// with waiter wakeups.
	cur atomic.Int64
}

func newAppliedNotifier(idx int) *appliedNotifier {
	a := &appliedNotifier{idx: idx, ch: make(chan struct{})}
	a.cur.Store(int64(idx))
	return a
}

// advance publishes a new applied index and wakes all current waiters.
// Called from the node's main loop (sync mode) or the apply worker
// (pipelined mode) — never both.
func (a *appliedNotifier) advance(idx int) {
	a.mu.Lock()
	if idx > a.idx {
		a.idx = idx
		a.cur.Store(int64(idx))
		close(a.ch)
		a.ch = make(chan struct{})
	}
	a.mu.Unlock()
}

// current reads the published applied index without the lock.
func (a *appliedNotifier) current() int {
	return int(a.cur.Load())
}

// wait blocks until the published applied index reaches index, ctx
// ends, or stop closes. It returns the last index it observed.
func (a *appliedNotifier) wait(ctx context.Context, stop <-chan struct{}, index int) (int, error) {
	for {
		a.mu.Lock()
		idx, ch := a.idx, a.ch
		a.mu.Unlock()
		if idx >= index {
			return idx, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return idx, ctx.Err()
		case <-stop:
			return idx, ErrStopped
		}
	}
}

// AwaitApplied blocks until this node's state machine has applied the
// log through index, returning the applied index it observed. It
// returns early with an error when ctx ends or the node stops. Unlike
// Status polling it wakes at the apply itself and costs the protocol
// loop nothing.
//
// Reaching index says nothing about WHICH entry was applied there: an
// entry can be truncated by a new leader and replaced at the same
// index. Callers that submitted the entry (Client.SubmitWait) combine
// this with a Status check for the truncation races, exactly as the
// polling loop did.
func (nd *Node) AwaitApplied(ctx context.Context, index int) (int, error) {
	return nd.applied.wait(ctx, nd.stopped, index)
}
