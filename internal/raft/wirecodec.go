package raft

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"ooc/internal/codec/bin"
)

// This file is the binary codec for log entries and the commands inside
// them — the innermost layer of the hand-rolled wire/disk format
// (DESIGN.md §3.5). It lives in package raft because both consumers of
// entry encoding sit on opposite sides of an import boundary: the
// FileStorage record codec (this package) and the message codec
// (internal/codec, which imports this package). Entries encode as
//
//	[uvarint count] then per entry: [zigzag term][command]
//
// and a command is a one-byte tag followed by a tag-specific body. The
// known command kinds (Noop, KVCommand, D&S, plus the scalar value
// kinds D&S wraps) encode natively; anything else falls back to a
// gob-encoded blob (tag cmdGob), so applications with custom command
// types keep working — they pay gob's cost, the hot path does not.

// Command tags. New kinds append to the list; existing values are wire
// format and must never be renumbered (see the version rules in
// DESIGN.md §3.5).
const (
	cmdNil    = 0
	cmdNoop   = 1
	cmdKV     = 2
	cmdDS     = 3
	cmdBytes  = 4
	cmdString = 5
	cmdInt    = 6
	cmdInt64  = 7
	cmdBool   = 8
	cmdGob    = 15
)

// appendEntries appends the wire form of a log entry slice.
func appendEntries(dst []byte, es []Entry) ([]byte, error) {
	dst = bin.AppendUvarint(dst, uint64(len(es)))
	var err error
	for i := range es {
		dst = bin.AppendVarint(dst, int64(es[i].Term))
		if dst, err = appendCommand(dst, es[i].Command); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// AppendWireEntries is appendEntries for use by internal/codec.
func AppendWireEntries(dst []byte, es []Entry) ([]byte, error) {
	return appendEntries(dst, es)
}

// appendCommand appends one tagged command (or D&S value).
func appendCommand(dst []byte, cmd any) ([]byte, error) {
	switch v := cmd.(type) {
	case nil:
		return append(dst, cmdNil), nil
	case Noop:
		return append(dst, cmdNoop), nil
	case KVCommand:
		dst = append(dst, cmdKV)
		dst = bin.AppendString(dst, v.Op)
		dst = bin.AppendString(dst, v.Key)
		return bin.AppendString(dst, v.Value), nil
	case DS:
		dst = append(dst, cmdDS)
		return appendCommand(dst, v.Value)
	case []byte:
		return bin.AppendBytes(append(dst, cmdBytes), v), nil
	case string:
		return bin.AppendString(append(dst, cmdString), v), nil
	case int:
		return bin.AppendVarint(append(dst, cmdInt), int64(v)), nil
	case int64:
		return bin.AppendVarint(append(dst, cmdInt64), v), nil
	case bool:
		return bin.AppendBool(append(dst, cmdBool), v), nil
	default:
		// Foreign command type: gob inside the frame. The type must be
		// gob-registered on both sides, exactly as the gob transport
		// already required (transport.Register). Copy to a local before
		// taking an address: &cmd would make the parameter escape and
		// charge every call — including the native fast paths above —
		// one heap-boxed interface.
		var buf bytes.Buffer
		boxed := cmd
		if err := gob.NewEncoder(&buf).Encode(&boxed); err != nil {
			return dst, fmt.Errorf("raft: encode command %T: %w", cmd, err)
		}
		return bin.AppendBytes(append(dst, cmdGob), buf.Bytes()), nil
	}
}

// internLimit bounds each interning table in an EntryDecoder. Real
// workloads draw ops and keys from small closed sets, so the tables hit
// constantly; once a table fills (an adversarially wide key space, or
// high-entropy values), insertion stops and decoding simply allocates
// for misses — the same cost as not interning at all.
const (
	internLimit   = 4096
	internMaxOver = 64 // don't intern strings longer than this
)

// EntryDecoder decodes entries and commands, amortizing steady-state
// allocations: repeated strings (ops, keys) intern to a single shared
// string, repeated KV commands intern to a single pre-boxed `any`, and
// the caller can recycle the decoded entry slice. A zero EntryDecoder is
// ready to use; it is not safe for concurrent use (give each decoding
// goroutine its own).
type EntryDecoder struct {
	strs map[string]string
	cmds map[KVCommand]any
}

// internString returns a stable string equal to b, reusing a previously
// decoded instance when possible. The map index with a string([]byte)
// key compiles to a no-allocation lookup, so steady-state hits are free.
func (d *EntryDecoder) internString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.strs[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(s) <= internMaxOver {
		if d.strs == nil {
			d.strs = make(map[string]string, 64)
		}
		if len(d.strs) < internLimit {
			d.strs[s] = s
		}
	}
	return s
}

// internKV returns a pre-boxed `any` for kv, so a repeated command costs
// no interface allocation on decode.
func (d *EntryDecoder) internKV(kv KVCommand) any {
	if c, ok := d.cmds[kv]; ok {
		return c
	}
	var c any = kv
	if d.cmds == nil {
		d.cmds = make(map[KVCommand]any, 64)
	}
	if len(d.cmds) < internLimit {
		d.cmds[kv] = c
	}
	return c
}

// ReadEntries decodes an appendEntries-encoded slice from r. The result
// is appended into reuse[:0] (pass nil for a fresh slice); steady-state
// callers hand back the previous slice so the backing array is
// recycled. Decoded commands never alias r's input.
func (d *EntryDecoder) ReadEntries(r *bin.Reader, reuse []Entry) ([]Entry, error) {
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	// Each entry costs at least two bytes on the wire; a count beyond
	// that bound is corrupt and must not size an allocation.
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("raft: entry count %d exceeds frame (%d bytes left)", n, r.Len())
	}
	es := reuse[:0]
	for i := uint64(0); i < n; i++ {
		term := r.Int()
		cmd, err := d.ReadCommand(r)
		if err != nil {
			return nil, err
		}
		es = append(es, Entry{Term: term, Command: cmd})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return es, nil
}

// ReadCommand decodes one tagged command.
func (d *EntryDecoder) ReadCommand(r *bin.Reader) (any, error) {
	tag := r.Byte()
	if err := r.Err(); err != nil {
		return nil, err
	}
	switch tag {
	case cmdNil:
		return nil, nil
	case cmdNoop:
		return noopBoxed, nil
	case cmdKV:
		op := d.internString(r.View())
		key := d.internString(r.View())
		val := d.internString(r.View())
		if err := r.Err(); err != nil {
			return nil, err
		}
		return d.internKV(KVCommand{Op: op, Key: key, Value: val}), nil
	case cmdDS:
		v, err := d.ReadCommand(r)
		if err != nil {
			return nil, err
		}
		return DS{Value: v}, nil
	case cmdBytes:
		return r.Bytes(), r.Err()
	case cmdString:
		return d.internString(r.View()), r.Err()
	case cmdInt:
		return r.Int(), r.Err()
	case cmdInt64:
		return r.Varint(), r.Err()
	case cmdBool:
		return r.Bool(), r.Err()
	case cmdGob:
		blob := r.BytesView()
		if err := r.Err(); err != nil {
			return nil, err
		}
		var v any
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&v); err != nil {
			return nil, fmt.Errorf("raft: decode gob command: %w", err)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("raft: unknown command tag %d", tag)
	}
}

// noopBoxed is the shared boxed Noop{}; boxing a zero-size struct is
// already allocation-free, but sharing one value also makes repeated
// no-ops pointer-identical, which keeps them cheap to compare in tests.
var noopBoxed any = Noop{}
