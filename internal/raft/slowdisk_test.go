package raft

import (
	"testing"
	"time"
)

// TestSlowDiskPassesThroughAndDelays checks that SlowDisk is a pure
// decorator — every operation lands in the inner store unchanged — and
// that durability barriers cost at least the modeled latency (Sleep
// guarantees a minimum, so the bound is safe under load).
func TestSlowDiskPassesThroughAndDelays(t *testing.T) {
	const lat = 10 * time.Millisecond
	inner := NewMemStorage()
	sd := NewSlowDisk(inner, lat)
	if sd.Inner() != Storage(inner) {
		t.Fatalf("Inner() = %v, want the wrapped store", sd.Inner())
	}

	start := time.Now()
	if err := sd.SetState(3, 1); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	if err := sd.TruncateAndAppend(0, []Entry{{Term: 3, Command: "a"}}); err != nil {
		t.Fatalf("TruncateAndAppend: %v", err)
	}
	if err := sd.AppendBatch([]LogMutation{{PrevIndex: 1, Entries: []Entry{{Term: 3, Command: "b"}}}}); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 3*lat {
		t.Fatalf("three barriers took %v, want >= %v", elapsed, 3*lat)
	}

	// Load pays no modeled latency and sees the writes.
	start = time.Now()
	st, err := sd.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= lat {
		t.Fatalf("Load took %v, want < %v (no barrier on reads)", elapsed, lat)
	}
	if st.Term != 3 || st.VotedFor != 1 || len(st.Entries) != 2 {
		t.Fatalf("Load = term %d vote %d entries %d, want 3/1/2", st.Term, st.VotedFor, len(st.Entries))
	}
}

// TestSlowDiskZeroLatencyAddsNothing pins the no-op path: a zero floor
// must not sleep (the wrapper may then be used unconditionally).
func TestSlowDiskZeroLatencyAddsNothing(t *testing.T) {
	sd := NewSlowDisk(NewMemStorage(), 0)
	start := time.Now()
	for i := 0; i < 100; i++ {
		if err := sd.SetState(i, none); err != nil {
			t.Fatalf("SetState: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("100 zero-latency barriers took %v", elapsed)
	}
}
