package raft

import "fmt"

// State is the processor's role, one of the paper's Figure 2 states.
type State int

// The three Raft states.
const (
	Follower State = iota + 1
	Candidate
	Leader
)

var stateNames = map[State]string{
	Follower:  "follower",
	Candidate: "candidate",
	Leader:    "leader",
}

// String implements fmt.Stringer.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// none marks an empty VotedFor.
const none = -1

// hardState is the paper's Figure 2: the protocol's inner state
// variables. The leader-only arrays live in leaderState and are
// reinitialized on every election, as the paper prescribes.
type hardState struct {
	currentTerm int
	votedFor    int // candidate voted for in currentTerm; none if unset
	log         raftLog
	commitIndex int
	lastApplied int
	state       State
	leaderID    int // last known leader of currentTerm; none if unknown
}

// leaderState holds NextIndex[] and MatchIndex[], valid only while
// leader and only for the current term, plus the per-peer replication
// pipeline: inflight counts unacknowledged entry-carrying AppendEntries
// (bounded by Config.MaxInflightAppends), and acked records whether any
// success arrived since the last heartbeat tick so a stalled pipeline
// (lost messages) can be detected and rewound to matchIndex+1.
type leaderState struct {
	nextIndex  []int
	matchIndex []int
	inflight   []int
	acked      []bool
	// readAck[p] is the highest read-round id peer p has echoed this term
	// (see AppendEntries.ReadID). Monotonic, so an echo of id X confirms
	// every pending ReadIndex round with id ≤ X.
	readAck []int
}

// newLeaderState initializes the arrays after winning an election:
// NextIndex to the leader's last log entry + 1, MatchIndex to 0.
func newLeaderState(n, lastLogIndex int) *leaderState {
	ls := &leaderState{
		nextIndex:  make([]int, n),
		matchIndex: make([]int, n),
		inflight:   make([]int, n),
		acked:      make([]bool, n),
		readAck:    make([]int, n),
	}
	for i := range ls.nextIndex {
		ls.nextIndex[i] = lastLogIndex + 1
	}
	return ls
}

// Status is a read-only snapshot of a node's state, safe to request from
// any goroutine.
type Status struct {
	ID            int
	Term          int
	State         State
	LeaderID      int // none (-1) when unknown
	CommitIndex   int
	LastApplied   int
	LogLength     int
	LastLogTerm   int
	SnapshotIndex int // last compacted index (0 = nothing compacted)
}

// String implements fmt.Stringer.
func (s Status) String() string {
	return fmt.Sprintf("node %d: term=%d state=%v leader=%d commit=%d applied=%d log=%d",
		s.ID, s.Term, s.State, s.LeaderID, s.CommitIndex, s.LastApplied, s.LogLength)
}
