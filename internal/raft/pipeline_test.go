package raft

import (
	"context"
	"testing"
	"time"

	"ooc/internal/netsim"
	"ooc/internal/sim"
)

func TestDrainProposalsCoalescesUpToCap(t *testing.T) {
	nd := &Node{
		cfg:       Config{MaxProposalBatch: 4},
		proposeCh: make(chan proposeReq, 8),
	}
	for i := 0; i < 6; i++ {
		nd.proposeCh <- proposeReq{cmd: i}
	}
	first := <-nd.proposeCh
	batch := nd.drainProposals(first)
	if len(batch) != 4 {
		t.Fatalf("drained %d proposals, want the cap of 4", len(batch))
	}
	for i, r := range batch {
		if r.cmd != i {
			t.Fatalf("batch[%d] = %v, want %d (FIFO order)", i, r.cmd, i)
		}
	}
	if left := len(nd.proposeCh); left != 2 {
		t.Fatalf("%d proposals left queued, want 2", left)
	}
	// A lone proposal drains to a batch of one without blocking.
	nd.proposeCh <- proposeReq{cmd: 6}
	nd.proposeCh <- proposeReq{cmd: 7}
	first = <-nd.proposeCh
	if batch = nd.drainProposals(first); len(batch) != 4 {
		t.Fatalf("second drain got %d, want the 4 remaining", len(batch))
	}
}

// TestReplicationWindowOnTheWire drives a leader against a hand-operated
// follower endpoint and checks the pipeline invariants as they appear on
// the wire: no AppendEntries carries more than MaxEntriesPerAppend
// entries, and never more than MaxInflightAppends entry-carrying messages
// are outstanding between acknowledgements.
func TestReplicationWindowOnTheWire(t *testing.T) {
	const (
		maxEntries  = 3
		maxInflight = 2
		total       = 10 // proposals; the log also holds the term-opening no-op
	)
	nw := netsim.New(2, netsim.WithSeed(11), netsim.WithFIFO())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rng := sim.NewRNG(11)
	node, err := NewNode(Config{
		ID: 0, Endpoint: nw.Node(0), RNG: rng.Fork(0),
		ElectionTimeout:     20 * time.Millisecond,
		HeartbeatInterval:   time.Minute, // keep ticks (and stall rewinds) out of the way
		MaxEntriesPerAppend: maxEntries,
		MaxInflightAppends:  maxInflight,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start(ctx)

	peer := nw.Node(1)
	var (
		log       []Entry
		unacked   int
		maxSeen   int
		proposing bool
		pendAcks  []AppendEntriesReply
	)
	for len(log) < total+1 {
		m, err := peer.Recv(ctx)
		if err != nil {
			t.Fatalf("peer recv (log=%d): %v", len(log), err)
		}
		switch p := m.Payload.(type) {
		case RequestVote:
			_ = peer.Send(0, RequestVoteReply{Term: p.Term, VoteGranted: true})
		case AppendEntries:
			// The first append is the term-opening no-op: leadership is
			// established, so feed in the client proposals.
			if !proposing {
				proposing = true
				go func() {
					for i := 0; i < total; i++ {
						if _, err := node.Propose(ctx, KVCommand{Op: "set", Key: "k", Value: "v"}); err != nil {
							t.Errorf("propose %d: %v", i, err)
							return
						}
					}
				}()
			}
			if len(p.Entries) == 0 {
				continue // heartbeat: exempt from the window
			}
			if len(p.Entries) > maxEntries {
				t.Fatalf("AppendEntries carried %d entries, cap is %d", len(p.Entries), maxEntries)
			}
			unacked++
			if unacked > maxSeen {
				maxSeen = unacked
			}
			if unacked > maxInflight {
				t.Fatalf("%d unacked entry-carrying AppendEntries on the wire, window is %d", unacked, maxInflight)
			}
			if p.PrevLogIndex > len(log) {
				t.Fatalf("pipelined send skipped ahead: prev=%d, follower log=%d", p.PrevLogIndex, len(log))
			}
			log = log[:p.PrevLogIndex]
			log = append(log, p.Entries...)
			pendAcks = append(pendAcks, AppendEntriesReply{Term: p.Term, Success: true, MatchIndex: len(log)})
			// Hold acks until the window is full, so the test observes the
			// leader actually pipelining rather than ping-ponging.
			if unacked == maxInflight || len(log) >= total+1 {
				for _, a := range pendAcks {
					_ = peer.Send(0, a)
				}
				pendAcks = nil
				unacked = 0
			}
		}
	}
	if maxSeen != maxInflight {
		t.Fatalf("pipeline depth never reached the window: saw %d, want %d", maxSeen, maxInflight)
	}
}
