package raft

import (
	"context"
	"testing"
	"time"

	"ooc/internal/netsim"
	"ooc/internal/sim"
)

// preVoteCluster builds a cluster with the PreVote extension enabled.
func preVoteCluster(t *testing.T, n int, seed uint64) (*netsim.Network, []*Node, []*KVStore, context.CancelFunc) {
	t.Helper()
	nw := netsim.New(n, netsim.WithSeed(seed))
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	rng := sim.NewRNG(seed)
	nodes := make([]*Node, n)
	kvs := make([]*KVStore, n)
	for id := 0; id < n; id++ {
		kvs[id] = &KVStore{}
		node, err := NewNode(Config{
			ID:                id,
			Endpoint:          nw.Node(id),
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   testElection,
			HeartbeatInterval: testHeartbeat,
			StateMachine:      kvs[id],
			PreVote:           true,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		node.Start(ctx)
	}
	return nw, nodes, kvs, cancel
}

func waitForLeader(t *testing.T, nodes []*Node, nw *netsim.Network) int {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for id, node := range nodes {
			if nw.Crashed(id) {
				continue
			}
			if node.Status().State == Leader {
				return id
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no leader with PreVote enabled")
	return -1
}

func TestPreVoteClusterElectsAndReplicates(t *testing.T) {
	nw, nodes, kvs, _ := preVoteCluster(t, 3, 51)
	leader := waitForLeader(t, nodes, nw)
	idx, err := nodes[leader].Propose(context.Background(), KVCommand{Op: "set", Key: "pv", Value: "on"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		done := true
		for _, kv := range kvs {
			if kv.AppliedIndex() < idx {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replication incomplete")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPreVotePreventsTermInflation(t *testing.T) {
	// A processor isolated from the majority must not grow its term:
	// its pre-vote probes reach nobody, so it never campaigns for real.
	nw, nodes, _, _ := preVoteCluster(t, 5, 53)
	leader := waitForLeader(t, nodes, nw)
	baseTerm := nodes[leader].Status().Term

	victim := (leader + 1) % 5
	rest := []int{}
	for id := 0; id < 5; id++ {
		if id != victim {
			rest = append(rest, id)
		}
	}
	nw.Partition(rest)
	// Let the victim time out many times.
	time.Sleep(12 * testElection)
	if got := nodes[victim].Status().Term; got > baseTerm {
		t.Fatalf("isolated node inflated its term: %d > %d", got, baseTerm)
	}

	// Healing must not depose the leader: the cluster term is unchanged.
	nw.Heal()
	time.Sleep(6 * testElection)
	leaderTerm := -1
	for id, node := range nodes {
		st := node.Status()
		if st.State == Leader {
			leaderTerm = st.Term
			_ = id
		}
	}
	if leaderTerm != baseTerm {
		t.Fatalf("leadership disrupted after heal: term %d, want %d", leaderTerm, baseTerm)
	}
}

func TestPreVoteDeniedWhileLeaderAlive(t *testing.T) {
	// Followers with a live leader veto pre-vote probes. The prober is a
	// bare endpoint (node 3 runs no protocol), so it owns its inbox.
	const prober = 3
	nw := netsim.New(4, netsim.WithSeed(57))
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	rng := sim.NewRNG(57)
	nodes := make([]*Node, 3)
	for id := 0; id < 3; id++ {
		node, err := NewNode(Config{
			ID:                id,
			Endpoint:          nw.Node(id),
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   testElection,
			HeartbeatInterval: testHeartbeat,
			PreVote:           true,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		node.Start(ctx)
	}
	leader := waitForLeader(t, nodes, nw)
	follower := (leader + 1) % 3

	// Wait until the follower has heard from the leader, then probe it.
	time.Sleep(4 * testHeartbeat)
	term := nodes[follower].Status().Term
	if err := nw.Node(prober).Send(follower, PreVote{Term: term + 1, CandidateID: prober, LastLogIndex: 99, LastLogTerm: 99}); err != nil {
		t.Fatal(err)
	}
	recvCtx, recvCancel := context.WithTimeout(ctx, 10*time.Second)
	defer recvCancel()
	for {
		m, err := nw.Node(prober).Recv(recvCtx)
		if err != nil {
			t.Fatalf("no reply: %v", err)
		}
		if r, ok := m.Payload.(PreVoteReply); ok {
			if r.Granted {
				t.Fatal("pre-vote granted while the leader is alive")
			}
			return
		}
	}
}

func TestPreVoteSingleNode(t *testing.T) {
	nw, nodes, _, _ := preVoteCluster(t, 1, 59)
	waitForLeader(t, nodes, nw)
}
