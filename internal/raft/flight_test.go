package raft

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ooc/internal/rtrace"
)

// TestLeaderCrashDumpsFlightRecorder is the anomaly-capture acceptance
// check: nodes run with armed flight recorders, the cluster does normal
// work (filling each ring with commit history), then the leader
// crashes. The surviving nodes' elections must trigger disk dumps whose
// contents carry the trigger event plus the preceding traffic — the
// "what was the cluster doing right before this?" view.
func TestLeaderCrashDumpsFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	// CI points OOC_FLIGHT_DUMP_DIR at a kept directory and uploads the
	// dumps as a build artifact — a real anomaly capture per run.
	if env := os.Getenv("OOC_FLIGHT_DUMP_DIR"); env != "" {
		if err := os.MkdirAll(env, 0o755); err != nil {
			t.Fatal(err)
		}
		dir = env
	}
	flights := make(map[int]*rtrace.Flight)
	c := newCluster(t, 3, 21, func(cfg *Config) {
		fl := rtrace.NewFlight(cfg.ID, 1024, rtrace.WithFlightDir(dir))
		flights[cfg.ID] = fl
		cfg.Flight = fl
	})
	c.waitLeader()
	// Commit enough entries that every node's ring holds >100 events.
	// EvCommit is recorded per commit-index ADVANCE, not per entry, and
	// netsim coalesces a burst of appends into a handful of advances —
	// so drive each op to full application before the next, the way
	// spaced-out production traffic arrives.
	for i := 0; i < 120; i++ {
		idx := c.propose(KVCommand{Op: "set", Key: fmt.Sprintf("k%d", i), Value: "v"})
		c.waitApplied(idx, 0, 1, 2)
	}

	// The startup election already dumped on whichever node ran it; let
	// the 250ms dump rate-limit window lapse so the crash election's
	// dump is not suppressed as a duplicate.
	time.Sleep(300 * time.Millisecond)

	leader1 := c.waitLeader()
	c.nw.Crash(leader1)
	leader2 := c.waitLeader() // waits for a surviving node's election to win
	if leader2 == leader1 {
		t.Fatalf("crashed node %d still leads", leader1)
	}

	files, err := filepath.Glob(filepath.Join(dir, "flight-node*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("leader crash produced no flight dump")
	}
	// At least one surviving node's election dump must carry the trigger
	// plus the >=100 events of preceding history. (Dumps from the boot
	// election happened on a near-empty ring and are legitimately short.)
	sawFull := false
	var shapes []string
	for _, path := range files {
		dump, err := rtrace.ReadFlightDumpFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		shapes = append(shapes, fmt.Sprintf("%s: node=%d reason=%s events=%d",
			filepath.Base(path), dump.Node, dump.Reason, len(dump.Events)))
		if dump.Node == leader1 || dump.Reason != "election" || len(dump.Events) < 101 {
			continue
		}
		if dump.Trigger.Code != rtrace.EvElection {
			t.Fatalf("%s: trigger is %v, want election", path, dump.Trigger.Code)
		}
		commits := 0
		for _, ev := range dump.Events {
			if ev.Code == rtrace.EvCommit {
				commits++
			}
		}
		if commits < 100 {
			t.Fatalf("%s: only %d commit events precede the election; ring lost history", path, commits)
		}
		sawFull = true
	}
	if !sawFull {
		t.Fatalf("no surviving node dumped an election with full history; leader1=%d leader2=%d dumps: %v", leader1, leader2, shapes)
	}
}
