package raft

import (
	"strconv"
	"time"

	"ooc/internal/metrics"
)

// nodeMetrics is the node's telemetry bundle. All observations happen on
// the main loop goroutine, so the pending-commit map needs no lock; only
// the instruments themselves are shared (and they are atomic). A nil
// registry yields a disabled bundle whose methods no-op, mirroring the
// nil-Recorder convention.
type nodeMetrics struct {
	enabled bool
	node    int

	termChanges   *metrics.Counter
	elections     *metrics.Counter
	electionsWon  *metrics.Counter
	heartbeats    *metrics.Counter
	appends       *metrics.Counter
	committed     *metrics.Counter
	applied       *metrics.Counter
	snapshots     *metrics.Counter
	term          *metrics.Gauge
	commitIndex   *metrics.Gauge
	commitLatency *metrics.Histogram

	// pending maps a leader-appended log index to its append time; the
	// entry is consumed when that index commits. Losing leadership
	// abandons the map (those entries may commit under a later leader,
	// whose latency we cannot attribute).
	pending map[int]time.Time
}

func newNodeMetrics(reg *metrics.Registry, id int) *nodeMetrics {
	if reg == nil {
		return &nodeMetrics{}
	}
	node := strconv.Itoa(id)
	return &nodeMetrics{
		enabled:       true,
		node:          id,
		termChanges:   reg.Counter(metrics.Label("raft_term_changes_total", "node", node)),
		elections:     reg.Counter(metrics.Label("raft_elections_started_total", "node", node)),
		electionsWon:  reg.Counter(metrics.Label("raft_elections_won_total", "node", node)),
		heartbeats:    reg.Counter(metrics.Label("raft_heartbeats_total", "node", node)),
		appends:       reg.Counter(metrics.Label("raft_entries_appended_total", "node", node)),
		committed:     reg.Counter(metrics.Label("raft_entries_committed_total", "node", node)),
		applied:       reg.Counter(metrics.Label("raft_entries_applied_total", "node", node)),
		snapshots:     reg.Counter(metrics.Label("raft_snapshots_total", "node", node)),
		term:          reg.Gauge(metrics.Label("raft_current_term", "node", node)),
		commitIndex:   reg.Gauge(metrics.Label("raft_commit_index", "node", node)),
		commitLatency: reg.Histogram(metrics.Label("raft_commit_latency_seconds", "node", node), nil),
		pending:       make(map[int]time.Time),
	}
}

func (m *nodeMetrics) onTermChange(term int) {
	if !m.enabled {
		return
	}
	m.termChanges.Inc(m.node)
	m.term.Set(int64(term))
}

func (m *nodeMetrics) onElection() {
	if m.enabled {
		m.elections.Inc(m.node)
	}
}

func (m *nodeMetrics) onElectionWon() {
	if m.enabled {
		m.electionsWon.Inc(m.node)
	}
}

func (m *nodeMetrics) onHeartbeat() {
	if m.enabled {
		m.heartbeats.Inc(m.node)
	}
}

func (m *nodeMetrics) onAppendLocal(index int) {
	if !m.enabled {
		return
	}
	m.appends.Inc(m.node)
	m.pending[index] = time.Now()
}

func (m *nodeMetrics) onCommit(old, index int) {
	if !m.enabled {
		return
	}
	m.committed.Add(m.node, int64(index-old))
	m.commitIndex.Set(int64(index))
	now := time.Now()
	for i := old + 1; i <= index; i++ {
		if t0, ok := m.pending[i]; ok {
			m.commitLatency.Observe(m.node, now.Sub(t0))
			delete(m.pending, i)
		}
	}
}

func (m *nodeMetrics) onApply() {
	if m.enabled {
		m.applied.Inc(m.node)
	}
}

func (m *nodeMetrics) onSnapshot() {
	if m.enabled {
		m.snapshots.Inc(m.node)
	}
}

// dropPending abandons attribution for in-flight entries, called when
// the node loses leadership: a later leader may still commit them, but
// the latency would mix two reigns.
func (m *nodeMetrics) dropPending() {
	if m.enabled && len(m.pending) > 0 {
		m.pending = make(map[int]time.Time)
	}
}
