package raft

import (
	"strconv"
	"time"

	"ooc/internal/metrics"
)

// nodeMetrics is the node's telemetry bundle. All observations happen on
// the main loop goroutine, so the pending-commit map needs no lock; only
// the instruments themselves are shared (and they are atomic). A nil
// registry yields a disabled bundle whose methods no-op, mirroring the
// nil-Recorder convention.
type nodeMetrics struct {
	enabled bool
	node    int

	termChanges   *metrics.Counter
	elections     *metrics.Counter
	electionsWon  *metrics.Counter
	heartbeats    *metrics.Counter
	appends       *metrics.Counter
	committed     *metrics.Counter
	applied       *metrics.Counter
	snapshots     *metrics.Counter
	term          *metrics.Gauge
	commitIndex   *metrics.Gauge
	commitLatency *metrics.Histogram

	// Replication-pipeline instruments. The two size histograms reuse the
	// duration-based Histogram with unit bounds: an observation of n is
	// recorded as time.Duration(n), so bucket bounds read as plain counts.
	proposeBatch  *metrics.Histogram // proposals coalesced per loop iteration
	appendEntries *metrics.Histogram // entries per AppendEntries sent
	inflightDepth *metrics.Histogram // pipeline depth after each send
	storageFlush  *metrics.Counter   // group-commit flushes (≈ fsyncs)
	storageRecs   *metrics.Counter   // log mutations inside those flushes

	// Read fast-path instruments (reads never touch the log, so they get
	// their own family): per-mode served counters, the coalescing width
	// of confirmation rounds, request→reply latency, and the lease
	// lifecycle (renewals, lapses under load, stepDown invalidations).
	readsByMode    map[string]*metrics.Counter
	readRounds     *metrics.Counter
	readBatch      *metrics.Histogram // waiters per confirmed round
	readLatency    *metrics.Histogram
	readsForwarded *metrics.Counter
	leaseHolds     *metrics.Counter
	leaseExpiries  *metrics.Counter
	leaseInvalid   *metrics.Counter

	// Commit-pipeline instruments (PR9). Queue depths are gauges sampled
	// at every enqueue/dequeue; the overlap counters split commits on a
	// leader by whether the quorum formed before the leader's own fsync
	// landed (the pipelined win) or after (disk was not the bottleneck);
	// self-ack lag is commitIndex − durableIndex at the moment the
	// leader's fsync completes, i.e. how far the followers ran ahead.
	persistDepth   *metrics.Gauge
	applyDepth     *metrics.Gauge
	commitOverlap  *metrics.Counter // commit reached before leader fsync
	commitInOrder  *metrics.Counter // leader fsync landed first
	selfAckLag     *metrics.Histogram

	// pending maps a leader-appended log index to its append time; the
	// entry is consumed when that index commits. Losing leadership
	// abandons the map (those entries may commit under a later leader,
	// whose latency we cannot attribute).
	pending map[int]time.Time
}

func newNodeMetrics(reg *metrics.Registry, id int) *nodeMetrics {
	if reg == nil {
		return &nodeMetrics{}
	}
	node := strconv.Itoa(id)
	return &nodeMetrics{
		enabled:       true,
		node:          id,
		termChanges:   reg.Counter(metrics.Label("raft_term_changes_total", "node", node)),
		elections:     reg.Counter(metrics.Label("raft_elections_started_total", "node", node)),
		electionsWon:  reg.Counter(metrics.Label("raft_elections_won_total", "node", node)),
		heartbeats:    reg.Counter(metrics.Label("raft_heartbeats_total", "node", node)),
		appends:       reg.Counter(metrics.Label("raft_entries_appended_total", "node", node)),
		committed:     reg.Counter(metrics.Label("raft_entries_committed_total", "node", node)),
		applied:       reg.Counter(metrics.Label("raft_entries_applied_total", "node", node)),
		snapshots:     reg.Counter(metrics.Label("raft_snapshots_total", "node", node)),
		term:          reg.Gauge(metrics.Label("raft_current_term", "node", node)),
		commitIndex:   reg.Gauge(metrics.Label("raft_commit_index", "node", node)),
		commitLatency: reg.Histogram(metrics.Label("raft_commit_latency_seconds", "node", node), nil),
		proposeBatch:  reg.Histogram(metrics.Label("raft_propose_batch_size", "node", node), countBuckets),
		appendEntries: reg.Histogram(metrics.Label("raft_append_entries_per_message", "node", node), countBuckets),
		inflightDepth: reg.Histogram(metrics.Label("raft_append_inflight_window", "node", node), countBuckets),
		storageFlush:  reg.Counter(metrics.Label("raft_storage_flushes_total", "node", node)),
		storageRecs:   reg.Counter(metrics.Label("raft_storage_records_total", "node", node)),
		readsByMode: map[string]*metrics.Counter{
			"lease":     reg.Counter(metrics.Label("raft_reads_served_total", "node", node, "mode", "lease")),
			"readindex": reg.Counter(metrics.Label("raft_reads_served_total", "node", node, "mode", "readindex")),
			"stale":     reg.Counter(metrics.Label("raft_reads_served_total", "node", node, "mode", "stale")),
		},
		readRounds:     reg.Counter(metrics.Label("raft_read_rounds_total", "node", node)),
		readBatch:      reg.Histogram(metrics.Label("raft_read_batch_size", "node", node), countBuckets),
		readLatency:    reg.Histogram(metrics.Label("raft_read_latency_seconds", "node", node), nil),
		readsForwarded: reg.Counter(metrics.Label("raft_reads_forwarded_total", "node", node)),
		leaseHolds:     reg.Counter(metrics.Label("raft_lease_holds_total", "node", node)),
		leaseExpiries:  reg.Counter(metrics.Label("raft_lease_expiries_total", "node", node)),
		leaseInvalid:   reg.Counter(metrics.Label("raft_lease_invalidations_total", "node", node)),
		persistDepth:   reg.Gauge(metrics.Label("raft_pipeline_persist_queue_depth", "node", node)),
		applyDepth:     reg.Gauge(metrics.Label("raft_pipeline_apply_queue_depth", "node", node)),
		commitOverlap:  reg.Counter(metrics.Label("raft_pipeline_commit_before_fsync_total", "node", node)),
		commitInOrder:  reg.Counter(metrics.Label("raft_pipeline_fsync_before_commit_total", "node", node)),
		selfAckLag:     reg.Histogram(metrics.Label("raft_pipeline_selfack_lag_entries", "node", node), countBuckets),
		pending:        make(map[int]time.Time),
	}
}

// countBuckets are power-of-two "counts disguised as durations" bounds
// for the batch-size and window-depth histograms.
var countBuckets = []time.Duration{1, 2, 4, 8, 16, 32, 64, 128, 256}

func (m *nodeMetrics) onTermChange(term int) {
	if !m.enabled {
		return
	}
	m.termChanges.Inc(m.node)
	m.term.Set(int64(term))
}

func (m *nodeMetrics) onElection() {
	if m.enabled {
		m.elections.Inc(m.node)
	}
}

func (m *nodeMetrics) onElectionWon() {
	if m.enabled {
		m.electionsWon.Inc(m.node)
	}
}

func (m *nodeMetrics) onHeartbeat() {
	if m.enabled {
		m.heartbeats.Inc(m.node)
	}
}

func (m *nodeMetrics) onAppendLocal(index int) {
	if !m.enabled {
		return
	}
	m.appends.Inc(m.node)
	m.pending[index] = time.Now()
}

func (m *nodeMetrics) onCommit(old, index int) {
	if !m.enabled {
		return
	}
	m.committed.Add(m.node, int64(index-old))
	m.commitIndex.Set(int64(index))
	now := time.Now()
	for i := old + 1; i <= index; i++ {
		if t0, ok := m.pending[i]; ok {
			m.commitLatency.Observe(m.node, now.Sub(t0))
			delete(m.pending, i)
		}
	}
}

func (m *nodeMetrics) onProposeBatch(n int) {
	if m.enabled {
		m.proposeBatch.Observe(m.node, time.Duration(n))
	}
}

func (m *nodeMetrics) onAppendSend(entries, inflight int) {
	if m.enabled {
		m.appendEntries.Observe(m.node, time.Duration(entries))
		m.inflightDepth.Observe(m.node, time.Duration(inflight))
	}
}

func (m *nodeMetrics) onStorageFlush(records int) {
	if m.enabled {
		m.storageFlush.Inc(m.node)
		m.storageRecs.Add(m.node, int64(records))
	}
}

func (m *nodeMetrics) onApply() {
	if m.enabled {
		m.applied.Inc(m.node)
	}
}

func (m *nodeMetrics) onSnapshot() {
	if m.enabled {
		m.snapshots.Inc(m.node)
	}
}

// onReadServed records one read answered to a local caller, labeled by
// the path that served it, with its request→reply latency measured from
// the request's arrival stamp (metrics.ObserveSince — the disabled path
// now skips the clock read entirely).
func (m *nodeMetrics) onReadServed(mode string, t0 time.Time) {
	if !m.enabled {
		return
	}
	if c, ok := m.readsByMode[mode]; ok {
		c.Inc(m.node)
	}
	m.readLatency.ObserveSince(m.node, t0)
}

// onReadRound records one confirmed leadership round and how many reads
// it coalesced.
func (m *nodeMetrics) onReadRound(waiters int) {
	if !m.enabled {
		return
	}
	m.readRounds.Inc(m.node)
	m.readBatch.Observe(m.node, time.Duration(waiters))
}

func (m *nodeMetrics) onReadForwarded() {
	if m.enabled {
		m.readsForwarded.Inc(m.node)
	}
}

// onLeaseHold counts a lease renewal (a confirmed round pushing the
// expiry forward).
func (m *nodeMetrics) onLeaseHold() {
	if m.enabled {
		m.leaseHolds.Inc(m.node)
	}
}

// onLeaseExpired counts a lease-mode read that found the lease lapsed
// and fell back to a ReadIndex round.
func (m *nodeMetrics) onLeaseExpired() {
	if m.enabled {
		m.leaseExpiries.Inc(m.node)
	}
}

// onLeaseInvalidated counts a still-valid lease cut short by losing
// leadership.
func (m *nodeMetrics) onLeaseInvalidated() {
	if m.enabled {
		m.leaseInvalid.Inc(m.node)
	}
}

// onPersistDepth samples the persist-queue depth after an enqueue or a
// completion. Called only from the main loop.
func (m *nodeMetrics) onPersistDepth(depth int) {
	if m.enabled {
		m.persistDepth.Set(int64(depth))
	}
}

// onApplyDepth samples the apply-queue depth after an enqueue. Called
// only from the main loop (the worker-side drain is not sampled; the
// gauge tracks the high-water side, which is what backpressure tuning
// needs).
func (m *nodeMetrics) onApplyDepth(depth int) {
	if m.enabled {
		m.applyDepth.Set(int64(depth))
	}
}

// onCommitOverlap classifies a leader-side commit advance: commitFirst
// means the quorum formed from follower acks while the leader's own
// fsync was still in flight — the case the pipelined write path exists
// for. The two counters together give the overlap ratio.
func (m *nodeMetrics) onCommitOverlap(commitFirst bool) {
	if !m.enabled {
		return
	}
	if commitFirst {
		m.commitOverlap.Inc(m.node)
	} else {
		m.commitInOrder.Inc(m.node)
	}
}

// onSelfAckLag records commitIndex − durableIndex when a leader fsync
// batch lands: how many committed entries the leader had not yet
// persisted itself. Negative lag (disk ahead of quorum) clamps to 0.
func (m *nodeMetrics) onSelfAckLag(lag int) {
	if !m.enabled {
		return
	}
	if lag < 0 {
		lag = 0
	}
	m.selfAckLag.Observe(m.node, time.Duration(lag))
}

// dropPending abandons attribution for in-flight entries, called when
// the node loses leadership: a later leader may still commit them, but
// the latency would mix two reigns.
func (m *nodeMetrics) dropPending() {
	if m.enabled && len(m.pending) > 0 {
		m.pending = make(map[int]time.Time)
	}
}
