package bench

import (
	"context"
	"fmt"
	"time"

	"ooc/internal/checker"
	"ooc/internal/phaseking"
	"ooc/internal/sim"
	"ooc/internal/trace"
	"ooc/internal/workload"
)

// advFactory names a Byzantine behaviour for the tables.
type advFactory struct {
	name string
	make func(seed uint64) phaseking.Adversary
}

func adversaryMenu() []advFactory {
	return []advFactory{
		{"none", nil},
		{"silent", func(uint64) phaseking.Adversary { return phaseking.SilentAdversary{} }},
		{"equivocate", func(uint64) phaseking.Adversary { return phaseking.EquivocateAdversary{} }},
		{"garbage", func(uint64) phaseking.Adversary { return phaseking.GarbageAdversary{} }},
		{"random", func(seed uint64) phaseking.Adversary { return &phaseking.RandomAdversary{RNG: sim.NewRNG(seed)} }},
		{"spoiler", func(uint64) phaseking.Adversary { return &phaseking.SpoilerAdversary{} }},
	}
}

// runPhaseKing executes one trial and returns outcomes plus stats.
func runPhaseKing(
	baseline bool,
	n, tFaults int,
	inputs []int,
	adv advFactory,
	rule phaseking.DecisionRule,
	seed uint64,
) ([]checker.RunOutcome[int], trace.Stats, error) {
	rec := trace.NewRecorder()
	byz := map[int]phaseking.Adversary{}
	if adv.make != nil {
		for id := 0; id < tFaults; id++ {
			byz[id] = adv.make(seed + uint64(id))
		}
	}
	correct := workload.InputsToMap(inputs)
	for id := range byz {
		delete(correct, id)
	}
	cfg := phaseking.Config{
		N: n, T: tFaults, Inputs: correct, Byzantine: byz, Rule: rule, Recorder: rec,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var (
		res phaseking.Result
		err error
	)
	if baseline {
		res, err = phaseking.RunBaseline(ctx, cfg)
	} else {
		res, err = phaseking.Run(ctx, cfg)
	}
	if err != nil {
		return nil, trace.Stats{}, err
	}
	var outs []checker.RunOutcome[int]
	for id := range correct {
		if d, ok := res.Decisions[id]; ok {
			outs = append(outs, checker.RunOutcome[int]{Node: id, Decided: true, Value: d.Value, Round: d.Round})
		} else {
			outs = append(outs, checker.RunOutcome[int]{Node: id})
		}
	}
	return outs, trace.Summarize(rec.Snapshot()), nil
}

// RunE3 validates Lemmas 2 and 3: Phase-King's AC + conciliator under
// Algorithm 2 across sizes and Byzantine behaviours. The classically
// safe final-value rule is used; EA isolates the first-commit caveat.
func RunE3(s Suite) (Table, error) {
	tbl := Table{
		ID:      "E3",
		Title:   "Phase-King (AC + king conciliator under Algorithm 2), final-value rule",
		Columns: []string{"n", "t", "adversary", "split", "trials", "decided", "mean_msgs", "violations"},
	}
	sizes := []struct{ n, t int }{{4, 1}, {7, 2}}
	if !s.Quick {
		sizes = append(sizes, struct{ n, t int }{10, 3}, struct{ n, t int }{13, 4})
	}
	type cell struct {
		n, t  int
		adv   advFactory
		split workload.Split
	}
	var cells []cell
	for _, size := range sizes {
		for _, adv := range adversaryMenu() {
			for _, split := range []workload.Split{workload.SplitUnanimous1, workload.SplitHalf} {
				cells = append(cells, cell{size.n, size.t, adv, split})
			}
		}
	}
	rows, err := runCells(len(cells), func(i int) (row, error) {
		c := cells[i]
		var (
			msgs    stats
			decided int
			report  checker.Report
		)
		for trial := 0; trial < s.Trials; trial++ {
			seed := s.BaseSeed + uint64(c.n*1000+trial)
			rng := sim.NewRNG(seed)
			inputs := workload.BinaryInputs(c.split, c.n, rng)
			outs, st, err := runPhaseKing(false, c.n, c.t, inputs, c.adv, phaseking.RuleFinalValue, seed)
			if err != nil {
				return nil, err
			}
			byzIDs := []int{}
			if c.adv.make != nil {
				for id := 0; id < c.t; id++ {
					byzIDs = append(byzIDs, id)
				}
			}
			inputMap := workload.InputsToMap(inputs, byzIDs...)
			report.Merge(checker.CheckConsensus(outs, inputMap, true))
			msgs.add(float64(st.MessagesSent))
			for _, o := range outs {
				if o.Decided {
					decided++
				}
			}
		}
		if !report.Ok() {
			return nil, fmt.Errorf("E3: %v", report.Violations[0])
		}
		return row{c.n, c.t, c.adv.name, c.split, s.Trials, decided, msgs.mean(), len(report.Violations)}, nil
	})
	if err != nil {
		return tbl, err
	}
	for _, r := range rows {
		tbl.AddRow(r...)
	}
	tbl.Notes = append(tbl.Notes,
		"runs are t+2 phases of 3 synchronous exchanges; Byzantine processors occupy the early king slots")
	return tbl, nil
}

// RunE4 compares the decomposition with the classic monolithic
// Phase-King under identical adversaries.
func RunE4(s Suite) (Table, error) {
	tbl := Table{
		ID:      "E4",
		Title:   "Phase-King: decomposed vs monolithic under identical adversaries",
		Columns: []string{"n", "t", "adversary", "variant", "trials", "mean_msgs", "violations"},
	}
	size := struct{ n, t int }{7, 2}
	type cell struct {
		adv      advFactory
		name     string
		baseline bool
	}
	var cells []cell
	for _, adv := range adversaryMenu() {
		cells = append(cells, cell{adv, "decomposed", false}, cell{adv, "monolithic", true})
	}
	rows, err := runCells(len(cells), func(i int) (row, error) {
		c := cells[i]
		var (
			msgs   stats
			report checker.Report
		)
		for trial := 0; trial < s.Trials; trial++ {
			seed := s.BaseSeed + uint64(trial*7)
			rng := sim.NewRNG(seed)
			inputs := workload.BinaryInputs(workload.SplitHalf, size.n, rng)
			outs, st, err := runPhaseKing(c.baseline, size.n, size.t, inputs, c.adv, phaseking.RuleFinalValue, seed)
			if err != nil {
				return nil, err
			}
			byzIDs := []int{}
			if c.adv.make != nil {
				byzIDs = []int{0, 1}
			}
			report.Merge(checker.CheckConsensus(outs, workload.InputsToMap(inputs, byzIDs...), true))
			msgs.add(float64(st.MessagesSent))
		}
		if !report.Ok() {
			return nil, fmt.Errorf("E4: %v", report.Violations[0])
		}
		return row{size.n, size.t, c.adv.name, c.name, s.Trials, msgs.mean(), len(report.Violations)}, nil
	})
	if err != nil {
		return tbl, err
	}
	for _, r := range rows {
		tbl.AddRow(r...)
	}
	tbl.Notes = append(tbl.Notes,
		"identical exchange structure: the object boundary adds no synchronous steps or messages")
	return tbl, nil
}

// RunEA pins the reproduction finding: the paper's first-commit decision
// rule is unsound under a Byzantine round-1 king (the conciliator loses
// validity exactly when Aspnes's framework needs it), while the classical
// final-value rule and the monolithic protocol survive the same attack.
func RunEA(Suite) (Table, error) {
	tbl := Table{
		ID:      "EA",
		Title:   "King-diversion attack (n=4, t=1, inputs 0,0,1; Byzantine king of round 1)",
		Columns: []string{"protocol", "rule", "decisions", "agreement"},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	inputs := map[int]int{1: 0, 2: 0, 3: 1}

	configs := []struct {
		name     string
		baseline bool
		rule     phaseking.DecisionRule
	}{
		{"decomposed", false, phaseking.RuleFirstCommit},
		{"decomposed", false, phaseking.RuleFinalValue},
		{"monolithic", true, phaseking.RuleFinalValue},
	}
	for _, cfg := range configs {
		pc := phaseking.Config{
			N: 4, T: 1,
			Inputs:    inputs,
			Byzantine: map[int]phaseking.Adversary{0: phaseking.KingDiversionAdversary()},
			Rule:      cfg.rule,
		}
		var (
			res phaseking.Result
			err error
		)
		if cfg.baseline {
			res, err = phaseking.RunBaseline(ctx, pc)
		} else {
			res, err = phaseking.Run(ctx, pc)
		}
		if err != nil {
			return tbl, err
		}
		ruleName := "first-commit"
		if cfg.rule == phaseking.RuleFinalValue {
			ruleName = "final-value"
		}
		decisions := fmt.Sprintf("p1=%d p2=%d p3=%d",
			res.Decisions[1].Value, res.Decisions[2].Value, res.Decisions[3].Value)
		agreement := "HOLDS"
		if !res.AgreementHolds() {
			agreement = "BROKEN"
		}
		tbl.AddRow(cfg.name, ruleName, decisions, agreement)
	}
	tbl.Notes = append(tbl.Notes,
		"the paper's Lemma 3 claims conciliator validity 'since the inputted value is the king's' — false for a Byzantine king",
		"expected: first-commit BROKEN, final-value HOLDS, monolithic HOLDS")
	return tbl, nil
}
