package bench

import (
	"fmt"
	"time"

	"ooc/internal/rtrace"
)

// RunE17 measures what the PR9 commit pipeline buys on an fsync-bound
// cluster: the same closed-loop write load as E14's file rows, but with
// every log pinned behind a raft.SlowDisk floor so the device term
// dominates, swept over the write-path mode (sync = the pre-pipeline
// fully ordered loop, pipelined = parallel leader persist + async
// apply) and client count. Every request is traced, and the per-phase
// columns decompose the client-observed latency: under the sync loop
// fsync and network intervals are sequential so attributed ≈ elapsed;
// under the pipeline they overlap, so overlap_ms (attributed time in
// excess of elapsed) is the direct signature of the leader's fsync
// running concurrently with follower replication.
func RunE17(s Suite) (Table, error) {
	tbl := Table{
		ID: "E17",
		Title: "Raft commit pipeline: parallel leader persist + async apply vs the ordered loop " +
			"(closed loop, file storage + 2ms SlowDisk)",
		Columns: []string{"mode", "clients", "trials", "ops", "ops_per_sec",
			"p50_ms", "p99_ms", "fsync_ms", "network_ms", "apply_ms", "overlap_ms",
			"fsyncs_per_op"},
	}
	const slowDisk = 2 * time.Millisecond
	clientCounts := []int{1, 8}
	duration := 500 * time.Millisecond
	trials := s.Trials
	if trials > 3 {
		trials = 3 // wall-clock bound: each trial runs a real-time window
	}
	if s.Quick {
		clientCounts = []int{1}
		duration = 200 * time.Millisecond
		trials = 1
	}
	for _, mode := range []string{"sync", "pipelined"} {
		for _, clients := range clientCounts {
			reg := s.cellRegistry()
			var opsPerSec, p50, p99, fsyncMs, netMs, applyMs, overlapMs, fsyncsPerOp stats
			ops := 0
			for trial := 0; trial < trials; trial++ {
				tracer := rtrace.New(rtrace.Options{Sample: 1, Capacity: 1 << 15})
				res, err := RunRaftThroughput(ThroughputConfig{
					Nodes:        3,
					Clients:      clients,
					Duration:     duration,
					Seed:         s.BaseSeed + uint64(clients*10+trial),
					FileStorage:  true,
					SlowDisk:     slowDisk,
					SyncPipeline: mode == "sync",
					Metrics:      reg,
					Tracer:       tracer,
				})
				if err != nil {
					return tbl, fmt.Errorf("E17 %s/%d: %w", mode, clients, err)
				}
				ops += res.Ops
				opsPerSec.add(res.OpsPerSec)
				p50.add(res.P50.Seconds() * 1000)
				p99.add(res.P99.Seconds() * 1000)
				fsyncsPerOp.add(res.FsyncsPerOp)
				f, n, a, o := decomposeSpans(tracer.Spans())
				fsyncMs.add(f)
				netMs.add(n)
				applyMs.add(a)
				overlapMs.add(o)
			}
			tbl.AddRow(mode, clients, trials, ops, opsPerSec.mean(),
				p50.mean(), p99.mean(), fsyncMs.mean(), netMs.mean(),
				applyMs.mean(), overlapMs.mean(), fsyncsPerOp.mean())
			if s.CollectMetrics {
				tbl.attachMetrics(fmt.Sprintf("mode=%s clients=%d", mode, clients), reg.Snapshot())
			}
		}
	}
	tbl.Notes = append(tbl.Notes,
		"same closed loop as E14's file rows, with every log wrapped in a 2ms raft.SlowDisk so the device term is pinned",
		"sync rows run raft.Config.SyncPipeline (the pre-PR9 ordered loop); pipelined rows are the default write path",
		"fsync/network/apply columns are mean per-span phase totals from full-sample rtrace",
		"overlap_ms = mean max(0, attributed - elapsed): attributed phase time in excess of wall time, nonzero only when fsync and network run concurrently")
	return tbl, nil
}

// decomposeSpans averages the per-phase totals over completed write
// spans, in milliseconds, plus the mean overlap (attributed time beyond
// elapsed — the pipelining signature, since phases on one timeline can
// only exceed it by running concurrently).
func decomposeSpans(spans []rtrace.Span) (fsyncMs, netMs, applyMs, overlapMs float64) {
	n := 0
	for _, sp := range spans {
		if sp.Err || sp.Remote || len(sp.Phases) == 0 {
			continue
		}
		n++
		fsyncMs += sp.PhaseTotal(rtrace.PhaseFsync).Seconds() * 1000
		netMs += sp.PhaseTotal(rtrace.PhaseNetwork).Seconds() * 1000
		applyMs += sp.PhaseTotal(rtrace.PhaseApply).Seconds() * 1000
		if over := sp.AttributedTotal() - sp.Elapsed(); over > 0 {
			overlapMs += over.Seconds() * 1000
		}
	}
	if n > 0 {
		fsyncMs /= float64(n)
		netMs /= float64(n)
		applyMs /= float64(n)
		overlapMs /= float64(n)
	}
	return fsyncMs, netMs, applyMs, overlapMs
}
