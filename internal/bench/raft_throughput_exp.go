package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"ooc/internal/metrics"
	"ooc/internal/netsim"
	"ooc/internal/raft"
	"ooc/internal/rtrace"
	"ooc/internal/sim"
	"ooc/internal/transport"
	"ooc/internal/workload"
)

// FileStorage gob-encodes log entries, so the commands the harness
// replicates must be registered once per process.
func init() {
	transport.Register(raft.WireTypes()...)
}

// ThroughputConfig parameterizes one closed-loop Raft throughput run: a
// cluster of Nodes over netsim, Clients concurrent closed-loop clients
// (each submits, waits for commit+apply, submits again) hammering the
// replicated KV store through raft.Client for Duration.
type ThroughputConfig struct {
	Nodes    int
	Clients  int
	Duration time.Duration
	Seed     uint64
	// FileStorage routes every node's persistence through an on-disk
	// store in Dir (a temp dir when empty) — the fsync-bound configuration
	// group commit exists for. Otherwise nodes run MemStorage.
	FileStorage bool
	Dir         string
	// Metrics, if non-nil, instruments the nodes (batch-size and inflight
	// histograms land here).
	Metrics *metrics.Registry
	// SlowDisk, when > 0, wraps every node's storage in raft.SlowDisk
	// with this latency per durability barrier, pinning the device term
	// so runs compare write-path structure rather than host fsync moods.
	SlowDisk time.Duration
	// SyncPipeline runs the nodes with the fully ordered write path
	// (raft.Config.SyncPipeline) — the pre-pipeline baseline E17 compares
	// against.
	SyncPipeline bool
	// SyncCoalesce installs a per-node raft.SyncCoalescer under each
	// node's FileStorage even though every node here runs a single group
	// — the degenerate case of the PR10 cross-group coalescer, where
	// every barrier has width 1. Durability behavior is identical to the
	// direct-fsync path; the zero-overhead gate
	// (TestE18SingleGroupOverhead) holds this configuration to ≤3% of
	// the uncoalesced one. No effect without FileStorage, and SlowDisk
	// wrapping bypasses it (SlowDisk doesn't forward the syncer).
	SyncCoalesce bool
	// Pipeline knobs; zero values take the raft.Config defaults.
	MaxEntriesPerAppend int
	MaxInflightAppends  int
	MaxProposalBatch    int
	// Read-mix knobs (E15). ReadRatio > 0 turns each client into a mixed
	// closed loop drawing from a workload.KVMix; ReadMode selects the
	// serving path (raft.ReadLogCommand is the reads-as-log-commands
	// baseline); LeaseDuration > 0 enables leader leases cluster-wide;
	// Keys and Zipfian shape the key distribution.
	ReadRatio     float64
	ReadMode      raft.ReadConsistency
	LeaseDuration time.Duration
	Keys          int
	Zipfian       bool
	// Tracer, if non-nil, samples per-request spans across the run: the
	// harness client opens them, the nodes attribute phases into them.
	// After the run, Tracer.Spans() holds the sampled timelines.
	Tracer *rtrace.Tracer
	// Flights, if non-nil, gives node i the flight recorder Flights[i]
	// (short slices leave the rest unwired).
	Flights []*rtrace.Flight
}

// ThroughputResult is one run's outcome.
type ThroughputResult struct {
	Ops         int           // committed-and-applied client ops
	OpsPerSec   float64       // Ops / wall-clock elapsed
	P50         time.Duration // client-observed submit→applied latency
	P99         time.Duration
	Fsyncs      int64   // total fsyncs across the cluster (file storage only)
	FsyncsPerOp float64 // Fsyncs / Ops
	AllocsPerOp float64 // process-wide heap allocations per op (approximate)

	// Mixed-workload breakdown (zero unless ReadRatio > 0).
	Reads   int
	Writes  int
	ReadP50 time.Duration // client-observed read latency
	ReadP99 time.Duration
	// Per-path serving counts summed over the cluster (raft.ReadStats).
	LeaseReads, IndexReads, StaleReads, ForwardedReads int64
}

// RunRaftThroughput runs one closed-loop throughput trial. It is the
// engine behind experiment E14, BenchmarkE14, and `raftkv -bench`.
func RunRaftThroughput(cfg ThroughputConfig) (ThroughputResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 500 * time.Millisecond
	}
	dir := cfg.Dir
	if cfg.FileStorage && dir == "" {
		d, err := os.MkdirTemp("", "ooc-raft-bench-*")
		if err != nil {
			return ThroughputResult{}, err
		}
		defer func() { _ = os.RemoveAll(d) }()
		dir = d
	}

	nw := netsim.New(cfg.Nodes, netsim.WithSeed(cfg.Seed))
	rng := sim.NewRNG(cfg.Seed)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	nodes := make([]*raft.Node, cfg.Nodes)
	files := make([]*raft.FileStorage, 0, cfg.Nodes)
	// Cleanup order matters: a started node's persist worker writes to
	// its FileStorage until Done() fires, so the files close only after
	// every node has fully stopped.
	defer func() {
		cancel()
		for _, nd := range nodes {
			if nd != nil {
				<-nd.Done()
			}
		}
		for _, fs := range files {
			_ = fs.Close()
		}
	}()
	for id := 0; id < cfg.Nodes; id++ {
		var store raft.Storage
		if cfg.FileStorage {
			fs, err := raft.OpenFileStorage(filepath.Join(dir, fmt.Sprintf("node-%d.log", id)))
			if err != nil {
				return ThroughputResult{}, err
			}
			if _, err := fs.Load(); err != nil {
				_ = fs.Close()
				return ThroughputResult{}, err
			}
			files = append(files, fs)
			store = fs
		} else {
			store = raft.NewMemStorage()
		}
		if cfg.SlowDisk > 0 {
			store = raft.NewSlowDisk(store, cfg.SlowDisk)
		}
		var syncer *raft.SyncCoalescer
		if cfg.SyncCoalesce && cfg.FileStorage {
			syncer = raft.NewSyncCoalescer(raft.SyncerConfig{Metrics: cfg.Metrics, Node: id})
		}
		node, err := raft.NewNode(raft.Config{
			ID:                  id,
			Endpoint:            nw.Node(id),
			RNG:                 rng.Fork(uint64(id)),
			ElectionTimeout:     benchElection,
			HeartbeatInterval:   benchHeartbeat,
			StateMachine:        &raft.KVStore{},
			Storage:             store,
			Metrics:             cfg.Metrics,
			Tracer:              cfg.Tracer,
			Flight:              flightAt(cfg.Flights, id),
			MaxEntriesPerAppend: cfg.MaxEntriesPerAppend,
			MaxInflightAppends:  cfg.MaxInflightAppends,
			MaxProposalBatch:    cfg.MaxProposalBatch,
			LeaseDuration:       cfg.LeaseDuration,
			SyncPipeline:        cfg.SyncPipeline,
			Syncer:              syncer,
		})
		if err != nil {
			return ThroughputResult{}, err
		}
		nodes[id] = node
		node.Start(ctx)
	}
	client, err := raft.NewClient(nodes,
		raft.WithClientBackoff(time.Millisecond),
		raft.WithClientRNG(rng.Fork(uint64(cfg.Nodes))),
		raft.WithClientTracer(cfg.Tracer))
	if err != nil {
		return ThroughputResult{}, err
	}

	// Wait for a leader so the measured window doesn't include the first
	// election (we are measuring the replication path, not elections).
	warmCtx, warmCancel := context.WithTimeout(ctx, 10*time.Second)
	_, err = client.SubmitWait(warmCtx, raft.KVCommand{Op: "set", Key: "warmup", Value: "1"})
	warmCancel()
	if err != nil {
		return ThroughputResult{}, fmt.Errorf("warmup: %w", err)
	}

	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var startSyncs int64
	for _, fs := range files {
		startSyncs += fs.Syncs()
	}

	runCtx, runCancel := context.WithCancel(ctx)
	lat := make([][]time.Duration, cfg.Clients)
	rlat := make([][]time.Duration, cfg.Clients)
	writes := make([]int, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	timer := time.AfterFunc(cfg.Duration, runCancel)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if cfg.ReadRatio <= 0 {
				for op := 0; ; op++ {
					t0 := time.Now()
					_, err := client.SubmitWait(runCtx, raft.KVCommand{
						Op: "set", Key: fmt.Sprintf("c%d", c), Value: fmt.Sprintf("%d", op),
					})
					if err != nil {
						return // deadline hit (or cluster stopped): window over
					}
					lat[c] = append(lat[c], time.Since(t0))
				}
			}
			// Mixed closed loop: each client draws from its own
			// deterministic stream; keyspaces are disjoint per client so
			// the write discipline stays single-writer-per-key.
			dist := workload.KeysUniform
			if cfg.Zipfian {
				dist = workload.KeysZipfian
			}
			mix, err := workload.NewKVMix(workload.KVMixConfig{
				ReadRatio: cfg.ReadRatio, Keys: cfg.Keys, Dist: dist,
			}, rng.Stream('m', uint64(c)))
			if err != nil {
				return
			}
			prefix := fmt.Sprintf("c%d/", c)
			for {
				op := mix.Next()
				t0 := time.Now()
				if op.Read {
					if _, _, err := client.ReadWith(runCtx, prefix+op.Key, cfg.ReadMode); err != nil {
						return
					}
					d := time.Since(t0)
					lat[c] = append(lat[c], d)
					rlat[c] = append(rlat[c], d)
					continue
				}
				if _, err := client.SubmitWait(runCtx, raft.KVCommand{
					Op: "set", Key: prefix + op.Key, Value: op.Value,
				}); err != nil {
					return
				}
				lat[c] = append(lat[c], time.Since(t0))
				writes[c]++
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	timer.Stop()
	runCancel()

	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	res := ThroughputResult{}
	all := make([]time.Duration, 0, 1024)
	for _, ls := range lat {
		res.Ops += len(ls)
		all = append(all, ls...)
	}
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.P50 = all[len(all)/2]
		res.P99 = all[len(all)*99/100]
		res.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Ops)
	}
	if cfg.ReadRatio > 0 {
		reads := make([]time.Duration, 0, 1024)
		for _, ls := range rlat {
			reads = append(reads, ls...)
		}
		res.Reads = len(reads)
		for _, w := range writes {
			res.Writes += w
		}
		if len(reads) > 0 {
			sort.Slice(reads, func(i, j int) bool { return reads[i] < reads[j] })
			res.ReadP50 = reads[len(reads)/2]
			res.ReadP99 = reads[len(reads)*99/100]
		}
		for _, nd := range nodes {
			lease, index, stale, fwd := nd.ReadStats()
			res.LeaseReads += lease
			res.IndexReads += index
			res.StaleReads += stale
			res.ForwardedReads += fwd
		}
	}
	// Stop the cluster before reading the sync counters so a persist
	// worker's final fsync is counted, not raced. (cancel and Done are
	// both idempotent; the deferred cleanup re-runs them harmlessly.)
	cancel()
	for _, nd := range nodes {
		<-nd.Done()
	}
	for _, fs := range files {
		res.Fsyncs += fs.Syncs()
	}
	res.Fsyncs -= startSyncs
	if res.Ops > 0 {
		res.FsyncsPerOp = float64(res.Fsyncs) / float64(res.Ops)
	}
	return res, nil
}

// flightAt indexes a possibly-short flight slice.
func flightAt(flights []*rtrace.Flight, id int) *rtrace.Flight {
	if id < len(flights) {
		return flights[id]
	}
	return nil
}

// RunE14 measures the batched-and-pipelined replication path end to end:
// committed ops/sec and client latency under a closed-loop load, swept
// over storage backend and client count. The file-storage rows are the
// ones group-commit fsync amortization exists for: fsyncs_per_op falling
// well below 1 is the direct signature of batching at the durability
// barrier.
func RunE14(s Suite) (Table, error) {
	tbl := Table{
		ID:    "E14",
		Title: "Raft closed-loop throughput: proposal coalescing + group commit + pipelining",
		Columns: []string{"storage", "clients", "trials", "ops", "ops_per_sec",
			"p50_ms", "p99_ms", "fsyncs_per_op", "allocs_per_op"},
	}
	clientCounts := []int{1, 8, 32}
	duration := 500 * time.Millisecond
	trials := s.Trials
	if trials > 3 {
		trials = 3 // wall-clock bound: each trial runs a real-time window
	}
	if s.Quick {
		clientCounts = []int{8}
		duration = 200 * time.Millisecond
		trials = 1
	}
	for _, storage := range []string{"mem", "file"} {
		for _, clients := range clientCounts {
			reg := s.cellRegistry()
			var opsPerSec, p50, p99, fsyncsPerOp, allocsPerOp stats
			ops := 0
			for trial := 0; trial < trials; trial++ {
				res, err := RunRaftThroughput(ThroughputConfig{
					Nodes:       3,
					Clients:     clients,
					Duration:    duration,
					Seed:        s.BaseSeed + uint64(clients*10+trial),
					FileStorage: storage == "file",
					Metrics:     reg,
				})
				if err != nil {
					return tbl, fmt.Errorf("E14 %s/%d: %w", storage, clients, err)
				}
				ops += res.Ops
				opsPerSec.add(res.OpsPerSec)
				p50.add(res.P50.Seconds() * 1000)
				p99.add(res.P99.Seconds() * 1000)
				fsyncsPerOp.add(res.FsyncsPerOp)
				allocsPerOp.add(res.AllocsPerOp)
			}
			tbl.AddRow(storage, clients, trials, ops, opsPerSec.mean(),
				p50.mean(), p99.mean(), fsyncsPerOp.mean(), allocsPerOp.mean())
			if s.CollectMetrics {
				tbl.attachMetrics(fmt.Sprintf("storage=%s clients=%d", storage, clients), reg.Snapshot())
			}
		}
	}
	tbl.Notes = append(tbl.Notes,
		"closed loop: each client submits, waits for commit+apply, then submits again — ops/sec counts applied writes",
		"fsyncs_per_op < 1 on file rows is group commit working: one durability barrier covers many coalesced proposals",
		"allocs_per_op is process-wide Mallocs delta / ops, an approximation shared across nodes and clients")
	return tbl, nil
}

// e15Modes are the read paths E15 compares, baseline first.
var e15Modes = []raft.ReadConsistency{
	raft.ReadLogCommand, raft.ReadLinearizable, raft.ReadLease, raft.ReadStale,
}

// RunE15 measures the linearizable read fast path end to end: a 90/10
// read/write closed loop on file storage, swept over the serving mode.
// The log-command row is the pre-fast-path baseline (every read is a
// replicated no-mutation command, paying the fsync); the ReadIndex row
// replaces that with one piggybacked heartbeat round per coalesced
// batch; the lease row removes even that round while the lease holds;
// the stale row is the uncoordinated floor.
func RunE15(s Suite) (Table, error) {
	tbl := Table{
		ID:    "E15",
		Title: "Raft linearizable reads: log-command baseline vs ReadIndex vs lease vs stale (90/10 mix, file storage)",
		Columns: []string{"mode", "clients", "trials", "ops", "ops_per_sec",
			"read_p50_ms", "read_p99_ms", "write_p99_ms", "fsyncs_per_op",
			"lease_reads", "index_reads", "stale_reads", "forwarded"},
	}
	clients := 8
	duration := 500 * time.Millisecond
	trials := s.Trials
	if trials > 3 {
		trials = 3 // wall-clock bound, like E14
	}
	if s.Quick {
		duration = 200 * time.Millisecond
		trials = 1
	}
	for _, mode := range e15Modes {
		reg := s.cellRegistry()
		var opsPerSec, rp50, rp99, wp99, fsyncsPerOp stats
		ops := 0
		var lease, index, stale, fwd int64
		for trial := 0; trial < trials; trial++ {
			cfg := ThroughputConfig{
				Nodes:       3,
				Clients:     clients,
				Duration:    duration,
				Seed:        s.BaseSeed + uint64(int(mode)*10+trial),
				FileStorage: true,
				Metrics:     reg,
				ReadRatio:   0.9,
				ReadMode:    mode,
				Keys:        256,
			}
			if mode == raft.ReadLease {
				cfg.LeaseDuration = benchElection / 2
			}
			res, err := RunRaftThroughput(cfg)
			if err != nil {
				return tbl, fmt.Errorf("E15 %v: %w", mode, err)
			}
			ops += res.Ops
			opsPerSec.add(res.OpsPerSec)
			rp50.add(res.ReadP50.Seconds() * 1000)
			rp99.add(res.ReadP99.Seconds() * 1000)
			wp99.add(res.P99.Seconds() * 1000)
			fsyncsPerOp.add(res.FsyncsPerOp)
			lease += res.LeaseReads
			index += res.IndexReads
			stale += res.StaleReads
			fwd += res.ForwardedReads
		}
		tbl.AddRow(mode.String(), clients, trials, ops, opsPerSec.mean(),
			rp50.mean(), rp99.mean(), wp99.mean(), fsyncsPerOp.mean(),
			lease, index, stale, fwd)
		if s.CollectMetrics {
			tbl.attachMetrics(fmt.Sprintf("mode=%v", mode), reg.Snapshot())
		}
	}
	tbl.Notes = append(tbl.Notes,
		"90/10 read/write closed loop, 3 nodes, file storage — ops/sec counts completed client ops of both kinds",
		"log rows append every read to the log (fsyncs_per_op near 1); readindex rows serve reads without touching storage",
		"lease rows skip the confirmation round while the lease holds: read_p50 drops below the readindex row's",
		"the per-path columns come from raft.ReadStats and attribute each read to the mechanism that served it")
	return tbl, nil
}
