package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"ooc/internal/metrics"
	"ooc/internal/netsim"
	"ooc/internal/raft"
	"ooc/internal/sim"
	"ooc/internal/transport"
)

// FileStorage gob-encodes log entries, so the commands the harness
// replicates must be registered once per process.
func init() {
	transport.Register(raft.WireTypes()...)
}

// ThroughputConfig parameterizes one closed-loop Raft throughput run: a
// cluster of Nodes over netsim, Clients concurrent closed-loop clients
// (each submits, waits for commit+apply, submits again) hammering the
// replicated KV store through raft.Client for Duration.
type ThroughputConfig struct {
	Nodes    int
	Clients  int
	Duration time.Duration
	Seed     uint64
	// FileStorage routes every node's persistence through an on-disk
	// store in Dir (a temp dir when empty) — the fsync-bound configuration
	// group commit exists for. Otherwise nodes run MemStorage.
	FileStorage bool
	Dir         string
	// Metrics, if non-nil, instruments the nodes (batch-size and inflight
	// histograms land here).
	Metrics *metrics.Registry
	// Pipeline knobs; zero values take the raft.Config defaults.
	MaxEntriesPerAppend int
	MaxInflightAppends  int
	MaxProposalBatch    int
}

// ThroughputResult is one run's outcome.
type ThroughputResult struct {
	Ops         int           // committed-and-applied client ops
	OpsPerSec   float64       // Ops / wall-clock elapsed
	P50         time.Duration // client-observed submit→applied latency
	P99         time.Duration
	Fsyncs      int64   // total fsyncs across the cluster (file storage only)
	FsyncsPerOp float64 // Fsyncs / Ops
	AllocsPerOp float64 // process-wide heap allocations per op (approximate)
}

// RunRaftThroughput runs one closed-loop throughput trial. It is the
// engine behind experiment E14, BenchmarkE14, and `raftkv -bench`.
func RunRaftThroughput(cfg ThroughputConfig) (ThroughputResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 500 * time.Millisecond
	}
	dir := cfg.Dir
	if cfg.FileStorage && dir == "" {
		d, err := os.MkdirTemp("", "ooc-raft-bench-*")
		if err != nil {
			return ThroughputResult{}, err
		}
		defer func() { _ = os.RemoveAll(d) }()
		dir = d
	}

	nw := netsim.New(cfg.Nodes, netsim.WithSeed(cfg.Seed))
	rng := sim.NewRNG(cfg.Seed)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	nodes := make([]*raft.Node, cfg.Nodes)
	files := make([]*raft.FileStorage, 0, cfg.Nodes)
	for id := 0; id < cfg.Nodes; id++ {
		var store raft.Storage
		if cfg.FileStorage {
			fs, err := raft.OpenFileStorage(filepath.Join(dir, fmt.Sprintf("node-%d.log", id)))
			if err != nil {
				return ThroughputResult{}, err
			}
			defer func() { _ = fs.Close() }()
			if _, err := fs.Load(); err != nil {
				return ThroughputResult{}, err
			}
			files = append(files, fs)
			store = fs
		} else {
			store = raft.NewMemStorage()
		}
		node, err := raft.NewNode(raft.Config{
			ID:                  id,
			Endpoint:            nw.Node(id),
			RNG:                 rng.Fork(uint64(id)),
			ElectionTimeout:     benchElection,
			HeartbeatInterval:   benchHeartbeat,
			StateMachine:        &raft.KVStore{},
			Storage:             store,
			Metrics:             cfg.Metrics,
			MaxEntriesPerAppend: cfg.MaxEntriesPerAppend,
			MaxInflightAppends:  cfg.MaxInflightAppends,
			MaxProposalBatch:    cfg.MaxProposalBatch,
		})
		if err != nil {
			return ThroughputResult{}, err
		}
		nodes[id] = node
		node.Start(ctx)
	}
	client, err := raft.NewClient(nodes,
		raft.WithClientBackoff(time.Millisecond),
		raft.WithClientRNG(rng.Fork(uint64(cfg.Nodes))))
	if err != nil {
		return ThroughputResult{}, err
	}

	// Wait for a leader so the measured window doesn't include the first
	// election (we are measuring the replication path, not elections).
	warmCtx, warmCancel := context.WithTimeout(ctx, 10*time.Second)
	_, err = client.SubmitWait(warmCtx, raft.KVCommand{Op: "set", Key: "warmup", Value: "1"})
	warmCancel()
	if err != nil {
		return ThroughputResult{}, fmt.Errorf("warmup: %w", err)
	}

	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var startSyncs int64
	for _, fs := range files {
		startSyncs += fs.Syncs()
	}

	runCtx, runCancel := context.WithCancel(ctx)
	lat := make([][]time.Duration, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	timer := time.AfterFunc(cfg.Duration, runCancel)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for op := 0; ; op++ {
				t0 := time.Now()
				_, err := client.SubmitWait(runCtx, raft.KVCommand{
					Op: "set", Key: fmt.Sprintf("c%d", c), Value: fmt.Sprintf("%d", op),
				})
				if err != nil {
					return // deadline hit (or cluster stopped): window over
				}
				lat[c] = append(lat[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	timer.Stop()
	runCancel()

	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	res := ThroughputResult{}
	all := make([]time.Duration, 0, 1024)
	for _, ls := range lat {
		res.Ops += len(ls)
		all = append(all, ls...)
	}
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.P50 = all[len(all)/2]
		res.P99 = all[len(all)*99/100]
		res.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Ops)
	}
	for _, fs := range files {
		res.Fsyncs += fs.Syncs()
	}
	res.Fsyncs -= startSyncs
	if res.Ops > 0 {
		res.FsyncsPerOp = float64(res.Fsyncs) / float64(res.Ops)
	}
	return res, nil
}

// RunE14 measures the batched-and-pipelined replication path end to end:
// committed ops/sec and client latency under a closed-loop load, swept
// over storage backend and client count. The file-storage rows are the
// ones group-commit fsync amortization exists for: fsyncs_per_op falling
// well below 1 is the direct signature of batching at the durability
// barrier.
func RunE14(s Suite) (Table, error) {
	tbl := Table{
		ID:    "E14",
		Title: "Raft closed-loop throughput: proposal coalescing + group commit + pipelining",
		Columns: []string{"storage", "clients", "trials", "ops", "ops_per_sec",
			"p50_ms", "p99_ms", "fsyncs_per_op", "allocs_per_op"},
	}
	clientCounts := []int{1, 8, 32}
	duration := 500 * time.Millisecond
	trials := s.Trials
	if trials > 3 {
		trials = 3 // wall-clock bound: each trial runs a real-time window
	}
	if s.Quick {
		clientCounts = []int{8}
		duration = 200 * time.Millisecond
		trials = 1
	}
	for _, storage := range []string{"mem", "file"} {
		for _, clients := range clientCounts {
			reg := s.cellRegistry()
			var opsPerSec, p50, p99, fsyncsPerOp, allocsPerOp stats
			ops := 0
			for trial := 0; trial < trials; trial++ {
				res, err := RunRaftThroughput(ThroughputConfig{
					Nodes:       3,
					Clients:     clients,
					Duration:    duration,
					Seed:        s.BaseSeed + uint64(clients*10+trial),
					FileStorage: storage == "file",
					Metrics:     reg,
				})
				if err != nil {
					return tbl, fmt.Errorf("E14 %s/%d: %w", storage, clients, err)
				}
				ops += res.Ops
				opsPerSec.add(res.OpsPerSec)
				p50.add(res.P50.Seconds() * 1000)
				p99.add(res.P99.Seconds() * 1000)
				fsyncsPerOp.add(res.FsyncsPerOp)
				allocsPerOp.add(res.AllocsPerOp)
			}
			tbl.AddRow(storage, clients, trials, ops, opsPerSec.mean(),
				p50.mean(), p99.mean(), fsyncsPerOp.mean(), allocsPerOp.mean())
			if s.CollectMetrics {
				tbl.attachMetrics(fmt.Sprintf("storage=%s clients=%d", storage, clients), reg.Snapshot())
			}
		}
	}
	tbl.Notes = append(tbl.Notes,
		"closed loop: each client submits, waits for commit+apply, then submits again — ops/sec counts applied writes",
		"fsyncs_per_op < 1 on file rows is group commit working: one durability barrier covers many coalesced proposals",
		"allocs_per_op is process-wide Mallocs delta / ops, an approximation shared across nodes and clients")
	return tbl, nil
}
