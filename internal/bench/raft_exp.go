package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ooc/internal/checker"
	"ooc/internal/core"
	"ooc/internal/netsim"
	"ooc/internal/raft"
	"ooc/internal/sim"
	"ooc/internal/trace"
)

const (
	benchElection  = 30 * time.Millisecond
	benchHeartbeat = 6 * time.Millisecond
)

// RunE5 validates Lemma 6: Raft with the D&S command solves single-decree
// consensus, with and without a leader crash mid-run.
func RunE5(s Suite) (Table, error) {
	tbl := Table{
		ID:      "E5",
		Title:   "Raft single-decree consensus via D&S (Algorithm 7)",
		Columns: []string{"n", "fault", "trials", "decided", "mean_ms", "mean_msgs", "max_term", "violations"},
	}
	sizes := []int{3, 5}
	for _, n := range sizes {
		for _, fault := range []string{"none", "leader-crash"} {
			var (
				ms, msgs, terms stats
				decidedTotal    int
				report          checker.Report
			)
			for trial := 0; trial < s.Trials; trial++ {
				seed := s.BaseSeed + uint64(n*100+trial)
				outs, st, maxTerm, crashed, err := runRaftConsensusTrial(n, seed, fault == "leader-crash")
				if err != nil {
					return tbl, err
				}
				inputs := map[int]string{}
				for id := 0; id < n; id++ {
					inputs[id] = fmt.Sprintf("v%d", id)
				}
				var live []checker.RunOutcome[string]
				for _, o := range outs {
					if !crashed[o.Node] {
						live = append(live, o)
						if o.Decided {
							decidedTotal++
						}
					}
				}
				report.Merge(checker.CheckConsensus(live, inputs, true))
				ms.add(st.elapsed.Seconds() * 1000)
				msgs.add(float64(st.msgs))
				terms.add(float64(maxTerm))
			}
			tbl.AddRow(n, fault, s.Trials, decidedTotal, ms.mean(), msgs.mean(), int(terms.max()), len(report.Violations))
			if !report.Ok() {
				return tbl, fmt.Errorf("E5: %v", report.Violations[0])
			}
		}
	}
	tbl.Notes = append(tbl.Notes,
		"election timeout 30ms, heartbeat 6ms; time-to-decision is dominated by the first successful election",
		"leader-crash trials crash the first elected leader; survivors re-elect and still agree")
	return tbl, nil
}

type raftTrialStats struct {
	elapsed time.Duration
	msgs    int
}

func runRaftConsensusTrial(n int, seed uint64, crashLeader bool) ([]checker.RunOutcome[string], raftTrialStats, int, map[int]bool, error) {
	rec := trace.NewRecorder()
	nw := netsim.New(n, netsim.WithSeed(seed), netsim.WithRecorder(rec))
	rng := sim.NewRNG(seed)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	cns := make([]*raft.ConsensusNode, n)
	for id := 0; id < n; id++ {
		cn, err := raft.NewConsensusNode(raft.Config{
			ID:                id,
			Endpoint:          nw.Node(id),
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   benchElection,
			HeartbeatInterval: benchHeartbeat,
		}, fmt.Sprintf("v%d", id))
		if err != nil {
			return nil, raftTrialStats{}, 0, nil, err
		}
		cns[id] = cn
	}
	crashed := make(map[int]bool)
	if crashLeader {
		go func() {
			for ctx.Err() == nil {
				for id := range cns {
					if cns[id].Node().Status().State == raft.Leader {
						nw.Crash(id)
						return
					}
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	start := time.Now()
	outs := make([]checker.RunOutcome[string], n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			v, err := cns[id].Run(ctx)
			if err == nil {
				outs[id] = checker.RunOutcome[string]{Node: id, Decided: true, Value: v.(string)}
			} else {
				outs[id] = checker.RunOutcome[string]{Node: id}
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for id := 0; id < n; id++ {
		if nw.Crashed(id) {
			crashed[id] = true
		}
	}
	maxTerm := 0
	for _, cn := range cns {
		if st := cn.Node().Status(); st.Term > maxTerm {
			maxTerm = st.Term
		}
	}
	st := trace.Summarize(rec.Snapshot())
	return outs, raftTrialStats{elapsed: elapsed, msgs: st.MessagesSent}, maxTerm, crashed, nil
}

// RunE6 validates Lemma 7 operationally: the VAC view of Raft under the
// generic template reaches consensus, and the three outcome classes map
// onto protocol events as Section 4.3 describes.
func RunE6(s Suite) (Table, error) {
	tbl := Table{
		ID:      "E6",
		Title:   "Raft as VAC + timer reconciliator under Algorithm 1 (Algorithms 10-11)",
		Columns: []string{"n", "trials", "decided", "vacillates", "adopts", "commits", "violations"},
	}
	trials := s.Trials
	if trials > 10 {
		trials = 10 // wall-clock bound: each trial runs real timers
	}
	for _, n := range []int{3, 5} {
		var (
			decided, vac, adopt, commit int
			report                      checker.Report
		)
		for trial := 0; trial < trials; trial++ {
			seed := s.BaseSeed + uint64(n*10+trial)
			outs, classes, err := runRaftVACTrial(n, seed)
			if err != nil {
				return tbl, err
			}
			inputs := map[int]string{}
			for id := 0; id < n; id++ {
				inputs[id] = fmt.Sprintf("v%d", id)
			}
			report.Merge(checker.CheckConsensus(outs, inputs, true))
			for _, o := range outs {
				if o.Decided {
					decided++
				}
			}
			vac += classes[core.Vacillate]
			adopt += classes[core.Adopt]
			commit += classes[core.Commit]
		}
		tbl.AddRow(n, trials, decided, vac, adopt, commit, len(report.Violations))
		if !report.Ok() {
			return tbl, fmt.Errorf("E6: %v", report.Violations[0])
		}
	}
	tbl.Notes = append(tbl.Notes,
		"every processor vacillates at least once (the timer must fire before anyone campaigns)",
		"commits terminate each processor's template; adopts mark tentative log landings")
	return tbl, nil
}

func runRaftVACTrial(n int, seed uint64) ([]checker.RunOutcome[string], map[core.Confidence]int, error) {
	nw := netsim.New(n, netsim.WithSeed(seed))
	rng := sim.NewRNG(seed)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	classes := make(map[core.Confidence]int)
	var classMu sync.Mutex
	outs := make([]checker.RunOutcome[string], n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		node, err := raft.NewNode(raft.Config{
			ID:                id,
			Endpoint:          nw.Node(id),
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   benchElection,
			HeartbeatInterval: benchHeartbeat,
			ManualCampaign:    true,
		})
		if err != nil {
			return nil, nil, err
		}
		wg.Add(1)
		go func(id int, node *raft.Node) {
			defer wg.Done()
			vacObj, err := raft.NewVAC[string](node)
			if err != nil {
				return
			}
			counting := core.VACFunc[string](func(ctx context.Context, v string, round int) (core.Confidence, string, error) {
				c, u, err := vacObj.Propose(ctx, v, round)
				if err == nil {
					classMu.Lock()
					classes[c]++
					classMu.Unlock()
				}
				return c, u, err
			})
			node.Start(ctx)
			d, err := core.RunVAC[string](ctx, counting, raft.NewReconciliator[string](node), fmt.Sprintf("v%d", id))
			if err == nil {
				outs[id] = checker.RunOutcome[string]{Node: id, Decided: true, Value: d.Value, Round: d.Round}
			} else {
				outs[id] = checker.RunOutcome[string]{Node: id}
			}
		}(id, node)
	}
	wg.Wait()
	return outs, classes, nil
}
