package bench

import (
	"context"
	"fmt"
	"time"

	"ooc/internal/netsim"
	"ooc/internal/raft"
	"ooc/internal/sim"
)

// RunE13 is the PreVote ablation: with the extension off, a processor
// isolated from the majority inflates its term on every timeout and
// deposes the healthy leader when the partition heals; with PreVote on,
// its probes are vetoed and the leader survives. This quantifies one of
// the design choices the paper's Raft discussion glosses over — how the
// "timing property" is protected in practice.
func RunE13(s Suite) (Table, error) {
	tbl := Table{
		ID:      "E13",
		Title:   "PreVote ablation: isolated-processor term inflation and post-heal disruption",
		Columns: []string{"prevote", "trials", "mean_term_inflation", "leader_deposed_after_heal", "violations"},
	}
	trials := s.Trials
	if trials > 8 {
		trials = 8 // each trial spends ~20 election timeouts of wall-clock
	}
	for _, prevote := range []bool{false, true} {
		var (
			inflation stats
			deposed   int
		)
		for trial := 0; trial < trials; trial++ {
			seed := s.BaseSeed + uint64(trial)
			inf, dep, err := preVoteTrial(prevote, seed)
			if err != nil {
				return tbl, err
			}
			inflation.add(float64(inf))
			if dep {
				deposed++
			}
		}
		tbl.AddRow(prevote, trials, inflation.mean(), fmt.Sprintf("%d/%d", deposed, trials), 0)
	}
	tbl.Notes = append(tbl.Notes,
		"term inflation: isolated node's term growth across ~10 election timeouts of isolation",
		"expected shape: prevote=false inflates by several terms and usually deposes; prevote=true inflates by 0")
	return tbl, nil
}

func preVoteTrial(prevote bool, seed uint64) (inflation int, deposed bool, err error) {
	const n = 5
	nw := netsim.New(n, netsim.WithSeed(seed))
	rng := sim.NewRNG(seed)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	nodes := make([]*raft.Node, n)
	for id := 0; id < n; id++ {
		node, nodeErr := raft.NewNode(raft.Config{
			ID:                id,
			Endpoint:          nw.Node(id),
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   benchElection,
			HeartbeatInterval: benchHeartbeat,
			PreVote:           prevote,
		})
		if nodeErr != nil {
			return 0, false, nodeErr
		}
		nodes[id] = node
		node.Start(ctx)
	}
	leader, err := awaitRaftLeader(ctx, nodes, nil)
	if err != nil {
		return 0, false, err
	}
	baseTerm := nodes[leader].Status().Term

	victim := (leader + 1) % n
	var rest []int
	for id := 0; id < n; id++ {
		if id != victim {
			rest = append(rest, id)
		}
	}
	nw.Partition(rest)
	time.Sleep(10 * benchElection)
	inflation = nodes[victim].Status().Term - baseTerm

	nw.Heal()
	time.Sleep(6 * benchElection)
	// Deposed means the original leader lost its role or the term moved.
	st := nodes[leader].Status()
	deposed = st.State != raft.Leader || st.Term != baseTerm
	return inflation, deposed, nil
}

func awaitRaftLeader(ctx context.Context, nodes []*raft.Node, dead map[int]bool) (int, error) {
	for {
		if err := ctx.Err(); err != nil {
			return -1, fmt.Errorf("no leader: %w", err)
		}
		for id, node := range nodes {
			if dead[id] {
				continue
			}
			if node.Status().State == raft.Leader {
				return id, nil
			}
		}
		time.Sleep(time.Millisecond)
	}
}
