package bench

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"time"

	"ooc/internal/netsim"
	"ooc/internal/raft"
	"ooc/internal/sim"
)

// RunF1 reproduces the paper's Figure 1 — the four Raft message formats —
// as code: every message round-trips through the wire codec, and the
// table records each format's fields and encoded size.
func RunF1(Suite) (Table, error) {
	tbl := Table{
		ID:      "F1",
		Title:   "Raft consensus messages (paper Figure 1): gob round-trip",
		Columns: []string{"message", "fields", "encoded_bytes", "roundtrip"},
	}
	for _, wt := range raft.WireTypes() {
		gob.Register(wt)
	}
	samples := []struct {
		name   string
		fields string
		value  any
	}{
		{"RequestVote", "term, candidateId, lastLogIndex, lastLogTerm",
			raft.RequestVote{Term: 3, CandidateID: 1, LastLogIndex: 7, LastLogTerm: 2}},
		{"ack_RequestVote", "term, voteGranted",
			raft.RequestVoteReply{Term: 3, VoteGranted: true}},
		{"AppendEntries", "term, leaderId, prevLogIndex, prevLogTerm, D&S(v), leaderCommit",
			raft.AppendEntries{Term: 3, LeaderID: 1, PrevLogIndex: 6, PrevLogTerm: 2,
				Entries: []raft.Entry{{Term: 3, Command: raft.DS{Value: "v"}}}, LeaderCommit: 6}},
		{"ack_AppendEntries", "term, success (+ matchIndex, see messages.go)",
			raft.AppendEntriesReply{Term: 3, Success: true, MatchIndex: 7}},
	}
	for _, s := range samples {
		var buf bytes.Buffer
		env := struct{ Payload any }{Payload: s.value}
		if err := gob.NewEncoder(&buf).Encode(env); err != nil {
			return tbl, fmt.Errorf("F1 encode %s: %w", s.name, err)
		}
		size := buf.Len()
		var out struct{ Payload any }
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			return tbl, fmt.Errorf("F1 decode %s: %w", s.name, err)
		}
		ok := "ok"
		if fmt.Sprintf("%v", out.Payload) != fmt.Sprintf("%v", s.value) {
			ok = "MISMATCH"
		}
		tbl.AddRow(s.name, s.fields, size, ok)
	}
	tbl.Notes = append(tbl.Notes,
		"the ack_AppendEntries matchIndex field is an async-channel substitution documented in raft/messages.go")
	return tbl, nil
}

// RunF2 reproduces the paper's Figure 2 — the protocol's inner state
// variables — by walking one node through an election and a replication
// and recording every variable the figure lists at each checkpoint.
func RunF2(Suite) (Table, error) {
	tbl := Table{
		ID:      "F2",
		Title:   "Raft inner state variables (paper Figure 2) through an election",
		Columns: []string{"checkpoint", "state", "currentTerm", "commitIndex", "lastApplied", "log_len", "leaderId"},
	}
	const n = 3
	nw := netsim.New(n, netsim.WithSeed(1))
	rng := sim.NewRNG(2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	sms := make([]*raft.KVStore, n)
	nodes := make([]*raft.Node, n)
	for id := 0; id < n; id++ {
		sms[id] = &raft.KVStore{}
		node, err := raft.NewNode(raft.Config{
			ID:                id,
			Endpoint:          nw.Node(id),
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   benchElection,
			HeartbeatInterval: benchHeartbeat,
			StateMachine:      sms[id],
		})
		if err != nil {
			return tbl, err
		}
		nodes[id] = node
	}
	record := func(name string, st raft.Status) {
		tbl.AddRow(name, st.State, st.Term, st.CommitIndex, st.LastApplied, st.LogLength, st.LeaderID)
	}
	// The initial state per Figure 2: follower, term 0, empty log. (A
	// node answers Status only once started.)
	record("initial", raft.Status{ID: 0, State: raft.Follower, LeaderID: -1})
	for _, node := range nodes {
		node.Start(ctx)
	}
	leader := -1
	deadline := time.Now().Add(30 * time.Second)
	for leader == -1 {
		if time.Now().After(deadline) {
			return tbl, fmt.Errorf("F2: no leader elected")
		}
		for id, node := range nodes {
			if node.Status().State == raft.Leader {
				leader = id
			}
		}
		time.Sleep(time.Millisecond)
	}
	record("post-election(leader)", nodes[leader].Status())
	idx, err := nodes[leader].Propose(ctx, raft.KVCommand{Op: "set", Key: "fig", Value: "2"})
	if err != nil {
		return tbl, fmt.Errorf("F2 propose: %w", err)
	}
	for sms[leader].AppliedIndex() < idx {
		if time.Now().After(deadline) {
			return tbl, fmt.Errorf("F2: entry never applied")
		}
		time.Sleep(time.Millisecond)
	}
	record("post-commit(leader)", nodes[leader].Status())
	follower := (leader + 1) % n
	for sms[follower].AppliedIndex() < idx {
		if time.Now().After(deadline) {
			return tbl, fmt.Errorf("F2: follower never applied")
		}
		time.Sleep(time.Millisecond)
	}
	record("post-commit(follower)", nodes[follower].Status())
	tbl.Notes = append(tbl.Notes,
		"index 1 is the leader's term-opening no-op (Raft §5.4.2); the client write lands at index 2",
		"NextIndex[]/MatchIndex[] are leader-internal and reinitialized per election (see raft/state.go);",
		"  VotedFor is likewise per-term internal state exercised by the election tests")
	return tbl, nil
}
