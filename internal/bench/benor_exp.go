package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ooc/internal/adapters"
	"ooc/internal/benor"
	"ooc/internal/checker"
	"ooc/internal/core"
	"ooc/internal/metrics"
	"ooc/internal/netsim"
	"ooc/internal/sim"
	"ooc/internal/trace"
	"ooc/internal/workload"
)

// benorTrial is one full Ben-Or execution's accounting.
type benorTrial struct {
	outcomes  []checker.RunOutcome[int]
	stats     trace.Stats
	maxRound  int
	instrLog  *adapters.OutcomeLog
	decidedAt map[int]int
}

// benOrVariant selects decomposed (the paper) or monolithic (baseline).
type benOrVariant int

const (
	variantDecomposed benOrVariant = iota + 1
	variantMonolithic
)

// runBenOr executes one trial: n processors, fault bound t, given inputs,
// optional crash plan, on a seeded network.
func runBenOr(
	variant benOrVariant,
	n, tFaults int,
	inputs []int,
	crashes []workload.CrashSpec,
	seed uint64,
	maxRounds int,
	instrument bool,
	reg *metrics.Registry,
) (benorTrial, error) {
	rec := trace.NewRecorder()
	nw := netsim.New(n, netsim.WithSeed(seed), netsim.WithRecorder(rec), netsim.WithMetrics(reg))
	rng := sim.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	crashed := make(map[int]bool, len(crashes))
	for _, c := range crashes {
		crashed[c.Node] = true
		if c.AfterSends == 0 {
			nw.Crash(c.Node)
		} else {
			nw.CrashAfterSends(c.Node, c.AfterSends)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	trial := benorTrial{decidedAt: make(map[int]int, n)}
	if instrument {
		trial.instrLog = &adapters.OutcomeLog{}
	}
	outcomes := make([]checker.RunOutcome[int], n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			nodeRNG := rng.Fork(uint64(id))
			var (
				d   core.Decision[int]
				err error
			)
			switch variant {
			case variantDecomposed:
				if trial.instrLog != nil {
					vac, vErr := benor.NewVAC(nw.Node(id), tFaults)
					if vErr != nil {
						err = vErr
						break
					}
					iv := adapters.NewInstrumentedVAC[int](vac, trial.instrLog, id)
					d, err = core.RunVAC[int](ctx, iv, benor.NewReconciliator(nodeRNG), inputs[id],
						core.WithMaxRounds(maxRounds), core.WithMetrics(reg))
				} else {
					d, err = benor.RunDecomposed(ctx, nw.Node(id), nodeRNG, tFaults, inputs[id],
						core.WithMaxRounds(maxRounds), core.WithMetrics(reg))
				}
			case variantMonolithic:
				d, err = benor.RunMonolithic(ctx, nw.Node(id), nodeRNG, tFaults, inputs[id], maxRounds, nil)
			}
			if err == nil {
				outcomes[id] = checker.RunOutcome[int]{Node: id, Decided: true, Value: d.Value, Round: d.Round}
			} else {
				outcomes[id] = checker.RunOutcome[int]{Node: id}
			}
		}(id)
	}
	wg.Wait()

	for _, o := range outcomes {
		if crashed[o.Node] {
			continue // a crashed processor owes nothing
		}
		trial.outcomes = append(trial.outcomes, o)
		if o.Decided {
			trial.decidedAt[o.Node] = o.Round
			if o.Round > trial.maxRound {
				trial.maxRound = o.Round
			}
		}
	}
	trial.stats = trace.Summarize(rec.Snapshot())
	return trial, nil
}

// RunE1 validates Lemmas 1, 4 and 5: the decomposed Ben-Or under the
// generic template reaches consensus safely across sizes, splits, and
// crash schedules.
func RunE1(s Suite) (Table, error) {
	tbl := Table{
		ID:      "E1",
		Title:   "Ben-Or (VAC + coin reconciliator under Algorithm 1)",
		Columns: []string{"n", "t", "crashes", "split", "trials", "decided", "mean_rounds", "max_rounds", "mean_msgs", "violations"},
	}
	sizes := []int{3, 5, 9}
	if !s.Quick {
		sizes = append(sizes, 17)
	}
	splits := []workload.Split{workload.SplitUnanimous1, workload.SplitOneDissent, workload.SplitHalf, workload.SplitRandom}
	type cell struct {
		n, tFaults, crashCount int
		split                  workload.Split
	}
	var cells []cell
	for _, n := range sizes {
		tFaults := (n - 1) / 2
		for _, crashCount := range []int{0, tFaults} {
			for _, split := range splits {
				cells = append(cells, cell{n, tFaults, crashCount, split})
			}
		}
	}
	rows, err := runCells(len(cells), func(i int) (meteredRow, error) {
		c := cells[i]
		reg := s.cellRegistry()
		var (
			rounds, msgs stats
			decided      int
			report       checker.Report
		)
		for trial := 0; trial < s.Trials; trial++ {
			seed := s.BaseSeed + uint64(c.n*1000+int(c.split)*100+c.crashCount*10+trial)
			rng := sim.NewRNG(seed)
			inputs := workload.BinaryInputs(c.split, c.n, rng)
			var crashes []workload.CrashSpec
			if c.crashCount > 0 {
				crashes = workload.CrashPlan(c.n, c.crashCount, rng)
			}
			tr, err := runBenOr(variantDecomposed, c.n, c.tFaults, inputs, crashes, seed, 2000, false, reg)
			if err != nil {
				return meteredRow{}, err
			}
			inputMap := workload.InputsToMap(inputs)
			report.Merge(checker.CheckConsensus(tr.outcomes, inputMap, c.crashCount == 0))
			rounds.add(float64(tr.maxRound))
			msgs.add(float64(tr.stats.MessagesSent))
			decided += len(tr.decidedAt)
		}
		if !report.Ok() {
			return meteredRow{}, fmt.Errorf("E1: %v", report.Violations[0])
		}
		return meteredRow{
			r: row{c.n, c.tFaults, c.crashCount, c.split, s.Trials, decided,
				rounds.mean(), int(rounds.max()), msgs.mean(), len(report.Violations)},
			key: fmt.Sprintf("n=%d,t=%d,crashes=%d,split=%s", c.n, c.tFaults, c.crashCount, c.split),
			met: reg.Snapshot(),
		}, nil
	})
	if err != nil {
		return tbl, err
	}
	addMeteredRows(&tbl, s, rows)
	tbl.Notes = append(tbl.Notes,
		"unanimous inputs must decide in round 1 (VAC convergence); splits pay coin-flip rounds",
		"violations column must be 0: agreement/validity/termination checked per trial")
	return tbl, nil
}

// RunE2 compares the decomposition against the monolithic baseline: same
// message pattern, so rounds and message counts should match in
// distribution.
func RunE2(s Suite) (Table, error) {
	tbl := Table{
		ID:      "E2",
		Title:   "Ben-Or: decomposed (paper) vs monolithic (baseline)",
		Columns: []string{"n", "split", "variant", "trials", "mean_rounds", "mean_msgs", "msgs_per_round", "violations"},
	}
	n := 5
	tFaults := 2
	splits := []workload.Split{workload.SplitUnanimous1, workload.SplitHalf, workload.SplitRandom}
	type cell struct {
		split   workload.Split
		name    string
		variant benOrVariant
	}
	var cells []cell
	for _, split := range splits {
		cells = append(cells,
			cell{split, "decomposed", variantDecomposed},
			cell{split, "monolithic", variantMonolithic})
	}
	rows, err := runCells(len(cells), func(i int) (meteredRow, error) {
		c := cells[i]
		reg := s.cellRegistry()
		var (
			rounds, msgs, mpr stats
			report            checker.Report
		)
		for trial := 0; trial < s.Trials; trial++ {
			seed := s.BaseSeed + uint64(int(c.split)*100+trial)
			rng := sim.NewRNG(seed)
			inputs := workload.BinaryInputs(c.split, n, rng)
			tr, err := runBenOr(c.variant, n, tFaults, inputs, nil, seed, 2000, false, reg)
			if err != nil {
				return meteredRow{}, err
			}
			report.Merge(checker.CheckConsensus(tr.outcomes, workload.InputsToMap(inputs), true))
			rounds.add(float64(tr.maxRound))
			msgs.add(float64(tr.stats.MessagesSent))
			if tr.maxRound > 0 {
				mpr.add(float64(tr.stats.MessagesSent) / float64(tr.maxRound))
			}
		}
		if !report.Ok() {
			return meteredRow{}, fmt.Errorf("E2: %v", report.Violations[0])
		}
		return meteredRow{
			r:   row{n, c.split, c.name, s.Trials, rounds.mean(), msgs.mean(), mpr.mean(), len(report.Violations)},
			key: fmt.Sprintf("split=%s,variant=%s", c.split, c.name),
			met: reg.Snapshot(),
		}, nil
	})
	if err != nil {
		return tbl, err
	}
	addMeteredRows(&tbl, s, rows)
	tbl.Notes = append(tbl.Notes,
		"both variants exchange the identical message pattern; the object boundary costs no extra messages")
	return tbl, nil
}

// RunE9 measures the reconciliator's termination behaviour: the
// distribution of rounds to consensus as n grows under the adversarial
// half-half split, plus the coin-bias ablation.
func RunE9(s Suite) (Table, error) {
	tbl := Table{
		ID:      "E9",
		Title:   "Rounds to consensus vs n and coin bias (half-half split)",
		Columns: []string{"n", "coin_p", "trials", "mean_rounds", "p50", "p95", "max"},
	}
	sizes := []int{3, 5, 9}
	if !s.Quick {
		sizes = append(sizes, 13)
	}
	trials := s.Trials * 2
	type cell struct {
		n, tFaults int
		p          float64 // coin bias; fair cells run the standard reconciliator
		biased     bool
	}
	var cells []cell
	for _, n := range sizes {
		cells = append(cells, cell{n: n, tFaults: (n - 1) / 2, p: 0.5})
	}
	// Coin-bias ablation at n=5: a biased coin aligned with nothing still
	// terminates; the fair coin is not special.
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		cells = append(cells, cell{n: 5, tFaults: 2, p: p, biased: true})
	}
	rows, err := runCells(len(cells), func(i int) (meteredRow, error) {
		c := cells[i]
		reg := s.cellRegistry()
		var rounds stats
		for trial := 0; trial < trials; trial++ {
			var (
				tr  benorTrial
				err error
			)
			if c.biased {
				seed := s.BaseSeed + uint64(trial) + uint64(c.p*1e4)
				rng := sim.NewRNG(seed)
				inputs := workload.BinaryInputs(workload.SplitHalf, c.n, rng)
				tr, err = runBenOrBiased(c.n, c.tFaults, inputs, seed, c.p, reg)
			} else {
				seed := s.BaseSeed + uint64(c.n*10000+trial)
				rng := sim.NewRNG(seed)
				inputs := workload.BinaryInputs(workload.SplitHalf, c.n, rng)
				tr, err = runBenOr(variantDecomposed, c.n, c.tFaults, inputs, nil, seed, 5000, false, reg)
			}
			if err != nil {
				return meteredRow{}, err
			}
			rounds.add(float64(tr.maxRound))
		}
		return meteredRow{
			r: row{c.n, fmt.Sprintf("%.2f", c.p), trials, rounds.mean(),
				rounds.percentile(0.5), rounds.percentile(0.95), int(rounds.max())},
			key: fmt.Sprintf("n=%d,coin_p=%.2f", c.n, c.p),
			met: reg.Snapshot(),
		}, nil
	})
	if err != nil {
		return tbl, err
	}
	addMeteredRows(&tbl, s, rows)
	tbl.Notes = append(tbl.Notes,
		"expected rounds grow with n under a fair private coin (known theory); any non-degenerate bias still terminates")
	return tbl, nil
}

// runBenOrBiased is the coin-bias ablation variant of runBenOr.
func runBenOrBiased(n, tFaults int, inputs []int, seed uint64, p float64, reg *metrics.Registry) (benorTrial, error) {
	rec := trace.NewRecorder()
	nw := netsim.New(n, netsim.WithSeed(seed), netsim.WithRecorder(rec), netsim.WithMetrics(reg))
	rng := sim.NewRNG(seed ^ 0xabcdef)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	trial := benorTrial{decidedAt: make(map[int]int, n)}
	outcomes := make([]checker.RunOutcome[int], n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			vac, err := benor.NewVAC(nw.Node(id), tFaults)
			if err != nil {
				return
			}
			recon := benor.NewBiasedReconciliator(rng.Fork(uint64(id)), p)
			d, err := core.RunVAC[int](ctx, vac, recon, inputs[id], core.WithMaxRounds(5000), core.WithMetrics(reg))
			if err == nil {
				outcomes[id] = checker.RunOutcome[int]{Node: id, Decided: true, Value: d.Value, Round: d.Round}
			}
		}(id)
	}
	wg.Wait()
	for _, o := range outcomes {
		trial.outcomes = append(trial.outcomes, o)
		if o.Decided {
			trial.decidedAt[o.Node] = o.Round
			if o.Round > trial.maxRound {
				trial.maxRound = o.Round
			}
		}
	}
	trial.stats = trace.Summarize(rec.Snapshot())
	return trial, nil
}
