package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := Table{
		ID:      "X1",
		Title:   "demo",
		Columns: []string{"a", "long_column"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("wide-cell-value", "x")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"X1 — demo", "long_column", "2.50", "wide-cell-value", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	var s stats
	if s.mean() != 0 || s.max() != 0 || s.percentile(0.5) != 0 {
		t.Fatal("empty stats not zero")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.add(v)
	}
	if s.mean() != 3 {
		t.Fatalf("mean = %v", s.mean())
	}
	if s.max() != 5 {
		t.Fatalf("max = %v", s.max())
	}
	if s.percentile(0) != 1 || s.percentile(1) != 5 || s.percentile(0.5) != 3 {
		t.Fatalf("percentiles = %v %v %v", s.percentile(0), s.percentile(0.5), s.percentile(1))
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e1"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil || e.Name == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

// TestAllExperimentsQuick runs the entire matrix in quick mode: every
// experiment must complete and report zero violations (EA deliberately
// reports the broken row inside its table, not as an error).
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix skipped in -short")
	}
	s := QuickSuite()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(s)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			var buf bytes.Buffer
			tbl.Render(&buf)
			if buf.Len() == 0 {
				t.Fatalf("%s rendered nothing", e.ID)
			}
		})
	}
}

func TestEAOutcomeShape(t *testing.T) {
	tbl, err := RunEA(QuickSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("EA has %d rows", len(tbl.Rows))
	}
	// Row 0: decomposed + first-commit must be BROKEN (the finding);
	// rows 1-2 must HOLD.
	if tbl.Rows[0][3] != "BROKEN" {
		t.Fatalf("first-commit row = %v, attack did not reproduce", tbl.Rows[0])
	}
	if tbl.Rows[1][3] != "HOLDS" || tbl.Rows[2][3] != "HOLDS" {
		t.Fatalf("safe rules broken: %v / %v", tbl.Rows[1], tbl.Rows[2])
	}
}

// TestCollectMetricsAttachesSnapshots runs E2 with metrics collection on
// and checks that every cell carries a non-trivial telemetry snapshot
// whose network counters agree with the laws of the simulator
// (delivered + dropped <= sent), and that the table renders as JSON.
func TestCollectMetricsAttachesSnapshots(t *testing.T) {
	s := QuickSuite()
	s.CollectMetrics = true
	tbl, err := RunE2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Metrics) != len(tbl.Rows) {
		t.Fatalf("metrics for %d cells, want %d", len(tbl.Metrics), len(tbl.Rows))
	}
	for key, snap := range tbl.Metrics {
		sent := snap.Counters["netsim_sends_total"]
		delivered := snap.Counters["netsim_delivers_total"]
		dropped := snap.Counters["netsim_drops_total"]
		if sent == 0 {
			t.Fatalf("cell %s: no sends recorded", key)
		}
		if delivered+dropped > sent {
			t.Fatalf("cell %s: delivered %d + dropped %d > sent %d", key, delivered, dropped, sent)
		}
	}
	var buf bytes.Buffer
	if err := tbl.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back.ID != "E2" || len(back.Metrics) != len(tbl.Metrics) {
		t.Fatalf("round-tripped table lost data: %+v", back.ID)
	}

	// With collection off the table must stay metric-free.
	plain, err := RunE2(QuickSuite())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != nil {
		t.Fatalf("metrics attached without CollectMetrics: %v", plain.Metrics)
	}
}
