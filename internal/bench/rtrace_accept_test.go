package bench

import (
	"fmt"
	"os"
	"testing"
	"time"

	"ooc/internal/rtrace"
)

// TestE14PhaseAttributionCoversLatency is the tracing acceptance check:
// on the E14 closed-loop write path with every request sampled, the best
// spans' queue+fsync+network+apply attribution must sum to within 10%
// of the client-observed end-to-end latency. Scheduling noise on a
// loaded CI box can starve individual spans (the client goroutine's
// post-apply wakeup is genuinely outside the four phases), so the
// assertion is on the best-covered spans of the run, not the mean —
// "a single request's view adds up" is exactly the ooctrace -request
// contract.
func TestE14PhaseAttributionCoversLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a real fsync-bound cluster")
	}
	tracer := rtrace.New(rtrace.Options{Sample: 1})
	res, err := RunRaftThroughput(ThroughputConfig{
		Nodes:       3,
		Clients:     1, // single closed loop: no cross-request queueing noise
		Duration:    400 * time.Millisecond,
		Seed:        42,
		FileStorage: true,
		Tracer:      tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("bench committed nothing")
	}
	spans := tracer.Spans()
	best, attributed := 0.0, 0
	var bestSpan rtrace.Span
	for _, s := range spans {
		if s.Err || s.Remote || s.Elapsed() <= 0 {
			continue
		}
		attributed++
		cov := float64(s.AttributedTotal()) / float64(s.Elapsed())
		if cov > best {
			best, bestSpan = cov, s
		}
	}
	if attributed < 5 {
		t.Fatalf("only %d clean spans out of %d ops", attributed, res.Ops)
	}
	if best < 0.90 {
		t.Fatalf("best span coverage %.1f%% < 90%%: attribution is leaking latency (best span: %+v)",
			100*best, bestSpan)
	}
	// The covered span must attribute through the full pipeline, not
	// vacuously (e.g. a lease read with three empty phases).
	for _, p := range []rtrace.Phase{rtrace.PhaseFsync, rtrace.PhaseNetwork} {
		if bestSpan.PhaseTotal(p) <= 0 {
			t.Fatalf("best span missing %v attribution: %+v", p, bestSpan)
		}
	}
	t.Logf("spans=%d best coverage=%.1f%% (e2e=%v attributed=%v)",
		attributed, 100*best, bestSpan.Elapsed(), bestSpan.AttributedTotal())
}

// TestE14DisabledTracingOverhead measures the cost of the tracing hooks
// when no request is sampled — the always-paid tax of this PR on the
// E14 hot path. Every hook is a nil-receiver or zero-ID check, so the
// two configurations should be within noise of each other.
//
// Measurement design, forced by shared CI boxes: the in-memory E14
// cell, not the fsync-bound one (fsync latency on shared infrastructure
// swings 2-3x between back-to-back runs, drowning any hook cost; the
// CPU-bound cell is both far more stable and the configuration where
// per-op hook overhead is the LARGEST fraction of total work — the
// conservative choice). Each arm keeps its best-of-k throughput: noise
// on a contended box only steals throughput, so max-of-k per arm
// converges to each configuration's unthrottled rate while a real hook
// tax persists as a gap between the two maxima. The strict 3% gate arms
// under OOC_BENCH_SMOKE=1 (the CI bench-smoke job) with k=9 and one
// re-measure on failure — a two-strike rule that halves sensitivity to
// a single interference burst without masking a persistent regression;
// otherwise k=5 with a loose 25% backstop keeps `go test ./...` honest
// but unflaky.
func TestE14DisabledTracingOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("spins closed-loop clusters repeatedly")
	}
	strict := os.Getenv("OOC_BENCH_SMOKE") == "1"
	k, limit := 5, 0.25
	if strict {
		k, limit = 9, 0.03
	}
	run := func(seed uint64, traced bool) float64 {
		cfg := ThroughputConfig{
			Nodes:    3,
			Clients:  8,
			Duration: 200 * time.Millisecond,
			Seed:     seed,
		}
		if traced {
			// Tracer armed but sampling nothing: the configuration a
			// production cluster runs with tracing compiled in and off.
			cfg.Tracer = rtrace.New(rtrace.Options{Sample: 0})
		}
		res, err := RunRaftThroughput(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.OpsPerSec
	}
	measure := func() (bestOff, bestOn, delta float64) {
		// Alternate arms per seed so interference bursts hit both.
		for i := 0; i < k; i++ {
			seed := uint64(100 + i)
			if off := run(seed, false); off > bestOff {
				bestOff = off
			}
			if on := run(seed, true); on > bestOn {
				bestOn = on
			}
		}
		return bestOff, bestOn, (bestOff - bestOn) / bestOff
	}
	bestOff, bestOn, delta := measure()
	t.Logf("ops/sec best-of-%d: untraced=%.0f traced-off=%.0f delta=%.1f%%", k, bestOff, bestOn, 100*delta)
	if delta > limit && strict {
		// Second strike: a one-off interference burst during the
		// untraced arm's best run inflates delta; a real hook tax
		// reproduces.
		bestOff, bestOn, delta = measure()
		t.Logf("re-measure best-of-%d: untraced=%.0f traced-off=%.0f delta=%.1f%%", k, bestOff, bestOn, 100*delta)
	}
	if delta > limit {
		t.Fatalf("disabled tracing costs %.1f%% throughput (limit %.0f%%): untraced=%.0f traced=%.0f",
			100*delta, 100*limit, bestOff, bestOn)
	}
}

// TestE14TracedRunProducesConsumableSpans is the end-to-end pipeline
// check behind `raftkv -trace-sample ... -trace-out` → `ooctrace
// -spans -request`: dump the run's spans to disk, read them back, and
// verify the per-request view has what ooctrace renders.
func TestE14TracedRunProducesConsumableSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a real fsync-bound cluster")
	}
	tracer := rtrace.New(rtrace.Options{Sample: 0.5})
	if _, err := RunRaftThroughput(ThroughputConfig{
		Nodes:       3,
		Clients:     4,
		Duration:    300 * time.Millisecond,
		Seed:        7,
		FileStorage: true,
		Tracer:      tracer,
	}); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/spans.json"
	if err := tracer.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	spans, err := rtrace.ReadSpansFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans in dump")
	}
	withPhases := 0
	for _, s := range spans {
		if len(s.Phases) > 0 {
			withPhases++
		}
		for _, pi := range s.Phases {
			if pi.End.Before(pi.Start) {
				t.Fatalf("span %x: inverted interval %+v", uint64(s.ID), pi)
			}
		}
	}
	if withPhases == 0 {
		t.Fatal("no span carries phase attribution")
	}
	t.Logf("dump: %d spans, %d with phases (%s)", len(spans), withPhases, fmt.Sprintf("%.0f%%", 100*float64(withPhases)/float64(len(spans))))
}
