package bench

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"ooc/internal/raft"
)

// TestE18SingleGroupOverhead is the degenerate-case gate for shared-disk
// group commit: a single-group node gains nothing from coalescing —
// every Sync is uncontended, width 1 — so installing the syncer must add
// zero measurable latency to the PR9 flush hot path. (The companion
// zero-allocation claim is pinned exactly in
// raft.TestSyncerUncontendedPathAllocFree.)
//
// Measurement design, adapted from TestE14DisabledTracingOverhead's ≤3%
// gate: the tracing gate could flee to the in-memory E14 cell for
// stability, but the syncer lives inside FileStorage.flush — there is no
// fsync-free configuration that exercises it, and whole-cluster fsync
// arms on shared infrastructure swing ±25% between same-config runs,
// drowning a mutex-sized effect. So the arms interleave per flush
// instead: two identical logs on the same device, one with the syncer
// installed, appending the same entry stream strictly alternately (order
// swapped every iteration). Each arm pays the same real fsyncs
// microseconds apart, so device-latency drift lands on both sides
// equally and the total-time ratio isolates the machinery. The strict 3%
// gate arms under OOC_BENCH_SMOKE=1 (the CI bench-smoke job) with more
// iterations and one re-measure on failure — the same two-strike rule;
// otherwise fewer iterations with a loose 25% backstop keep
// `go test ./...` honest but unflaky.
func TestE18SingleGroupOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("pays thousands of real fsyncs")
	}
	strict := os.Getenv("OOC_BENCH_SMOKE") == "1"
	iters, limit := 300, 0.25
	if strict {
		iters, limit = 1000, 0.03
	}
	dir := t.TempDir()
	open := func(name string, sc *raft.SyncCoalescer) *raft.FileStorage {
		t.Helper()
		fs, err := raft.OpenFileStorage(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Load(); err != nil {
			t.Fatal(err)
		}
		if sc != nil {
			fs.SetSyncer(sc)
		}
		t.Cleanup(func() { _ = fs.Close() })
		return fs
	}
	plain := open("plain.log", nil)
	synced := open("synced.log", raft.NewSyncCoalescer(raft.SyncerConfig{}))

	next := 0
	apply := func(fs *raft.FileStorage, muts []raft.LogMutation) time.Duration {
		t.Helper()
		t0 := time.Now()
		if err := fs.AppendBatch(muts); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	measure := func() (tOff, tOn time.Duration, delta float64) {
		for i := 0; i < iters; i++ {
			muts := []raft.LogMutation{{PrevIndex: next, Entries: []raft.Entry{
				{Term: 1, Command: raft.KVCommand{Op: "set", Key: "k", Value: "v"}},
			}}}
			next++
			// Swap arm order every iteration so a first-mover effect
			// (page-cache state, timer warmup) can't bias one side.
			if i%2 == 0 {
				tOff += apply(plain, muts)
				tOn += apply(synced, muts)
			} else {
				tOn += apply(synced, muts)
				tOff += apply(plain, muts)
			}
		}
		return tOff, tOn, float64(tOn-tOff) / float64(tOff)
	}
	tOff, tOn, delta := measure()
	t.Logf("%d flushes/arm: plain=%v syncer=%v delta=%.2f%%", iters, tOff, tOn, 100*delta)
	if delta > limit && strict {
		// Second strike: one latency burst landing inside a syncer-arm
		// flush inflates delta; a real machinery tax reproduces.
		tOff, tOn, delta = measure()
		t.Logf("re-measure %d flushes/arm: plain=%v syncer=%v delta=%.2f%%", iters, tOff, tOn, 100*delta)
	}
	if delta > limit {
		t.Fatalf("single-group syncer adds %.2f%% flush latency (limit %.0f%%): plain=%v syncer=%v",
			100*delta, 100*limit, tOff, tOn)
	}
}
