package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ooc/internal/checker"
	"ooc/internal/core"
	"ooc/internal/multivalue"
	"ooc/internal/netsim"
	"ooc/internal/sharedmem"
	"ooc/internal/sim"
)

// RunE11 measures the framework extension of internal/multivalue:
// consensus over arbitrary value domains by swapping the reconciliator
// for a seen-set sampler, under the unchanged Algorithm 1 template.
func RunE11(s Suite) (Table, error) {
	tbl := Table{
		ID:      "E11",
		Title:   "Multivalued consensus (VAC + seen-set reconciliator under Algorithm 1)",
		Columns: []string{"n", "t", "domain", "trials", "decided", "mean_rounds", "max_rounds", "violations"},
	}
	type cfg struct{ n, domain int }
	cfgs := []cfg{{3, 2}, {5, 2}, {5, 5}, {7, 3}}
	if !s.Quick {
		cfgs = append(cfgs, cfg{7, 7}, cfg{9, 3})
	}
	rows, err := runCells(len(cfgs), func(i int) (row, error) {
		c := cfgs[i]
		tFaults := (c.n - 1) / 2
		var (
			rounds  stats
			decided int
			report  checker.Report
		)
		for trial := 0; trial < s.Trials; trial++ {
			seed := s.BaseSeed + uint64(c.n*1000+c.domain*100+trial)
			rng := sim.NewRNG(seed)
			inputs := make([]string, c.n)
			inputMap := make(map[int]string, c.n)
			for id := range inputs {
				inputs[id] = fmt.Sprintf("v%d", rng.Intn(c.domain))
				inputMap[id] = inputs[id]
			}
			nw := netsim.New(c.n, netsim.WithSeed(seed))
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			outs := make([]checker.RunOutcome[string], c.n)
			var wg sync.WaitGroup
			for id := 0; id < c.n; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					d, err := multivalue.RunDecomposed[string](ctx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id],
						core.WithMaxRounds(20000))
					if err == nil {
						outs[id] = checker.RunOutcome[string]{Node: id, Decided: true, Value: d.Value, Round: d.Round}
					} else {
						outs[id] = checker.RunOutcome[string]{Node: id}
					}
				}(id)
			}
			wg.Wait()
			cancel()
			report.Merge(checker.CheckConsensus(outs, inputMap, true))
			maxRound := 0
			for _, o := range outs {
				if o.Decided {
					decided++
					if o.Round > maxRound {
						maxRound = o.Round
					}
				}
			}
			rounds.add(float64(maxRound))
		}
		if !report.Ok() {
			return nil, fmt.Errorf("E11: %v", report.Violations[0])
		}
		return row{c.n, tFaults, c.domain, s.Trials, decided, rounds.mean(), int(rounds.max()), len(report.Violations)}, nil
	})
	if err != nil {
		return tbl, err
	}
	for _, r := range rows {
		tbl.AddRow(r...)
	}
	tbl.Notes = append(tbl.Notes,
		"domain is the number of distinct candidate values; expected rounds grow with both n and domain",
		"the seen-set reconciliator preserves validity by construction (only observed inputs are sampled)")
	return tbl, nil
}

// RunE12 measures the prior framework in its home model: Aspnes's
// shared-memory consensus from Gafni's adopt-commit and the
// probabilistic-write conciliator, under Algorithm 2.
func RunE12(s Suite) (Table, error) {
	tbl := Table{
		ID:      "E12",
		Title:   "Shared-memory consensus (Gafni AC + probabilistic-write conciliator, Algorithm 2)",
		Columns: []string{"n", "split", "trials", "mean_rounds", "max_rounds", "violations"},
	}
	sizes := []int{2, 4, 8}
	if !s.Quick {
		sizes = append(sizes, 16, 32)
	}
	type cell struct {
		n     int
		split string
	}
	var cells []cell
	for _, n := range sizes {
		for _, split := range []string{"unanimous", "half"} {
			cells = append(cells, cell{n, split})
		}
	}
	rows, err := runCells(len(cells), func(i int) (row, error) {
		c := cells[i]
		var (
			rounds stats
			report checker.Report
		)
		for trial := 0; trial < s.Trials; trial++ {
			seed := s.BaseSeed + uint64(c.n*100+trial)
			rng := sim.NewRNG(seed)
			cons := sharedmem.NewConsensus(c.n)
			inputs := make(map[int]int, c.n)
			outs := make([]checker.RunOutcome[int], c.n)
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			var wg sync.WaitGroup
			for id := 0; id < c.n; id++ {
				v := id % 2
				if c.split == "unanimous" {
					v = 1
				}
				inputs[id] = v
				wg.Add(1)
				go func(id, v int) {
					defer wg.Done()
					d, err := cons.Run(ctx, id, rng.Fork(uint64(id)), v, core.WithMaxRounds(20000))
					if err == nil {
						outs[id] = checker.RunOutcome[int]{Node: id, Decided: true, Value: d.Value, Round: d.Round}
					} else {
						outs[id] = checker.RunOutcome[int]{Node: id}
					}
				}(id, v)
			}
			wg.Wait()
			cancel()
			report.Merge(checker.CheckConsensus(outs, inputs, true))
			maxRound := 0
			for _, o := range outs {
				if o.Decided && o.Round > maxRound {
					maxRound = o.Round
				}
			}
			rounds.add(float64(maxRound))
		}
		if !report.Ok() {
			return nil, fmt.Errorf("E12: %v", report.Violations[0])
		}
		return row{c.n, c.split, s.Trials, rounds.mean(), int(rounds.max()), len(report.Violations)}, nil
	})
	if err != nil {
		return tbl, err
	}
	for _, r := range rows {
		tbl.AddRow(r...)
	}
	tbl.Notes = append(tbl.Notes,
		"unanimous inputs commit in round 1 (AC convergence); contested rounds end when one probabilistic write wins",
		"this is Aspnes's framework in its native model — the baseline the paper's VAC framework generalizes")
	return tbl, nil
}
