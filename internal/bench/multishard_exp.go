package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ooc/internal/metrics"
	"ooc/internal/msgnet"
	"ooc/internal/netsim"
	"ooc/internal/raft"
	"ooc/internal/rtrace"
	"ooc/internal/shard"
	"ooc/internal/sim"
	"ooc/internal/trace"
	"ooc/internal/workload"
)

// MultiShardConfig parameterizes one closed-loop multi-Raft throughput
// run: Shards independent groups over Nodes processors, driven by
// ClientsPerShard×Shards concurrent closed-loop clients routing a
// shared-family KVMix through the shard router for Duration. Client
// count scales with the shard count (weak scaling): the question E16
// asks is how much more committed work the same machine sustains when
// the keyspace — and with it the leader fsync pipelines — is split.
type MultiShardConfig struct {
	Nodes           int
	Shards          int
	ClientsPerShard int
	Duration        time.Duration
	Seed            uint64
	// FileStorage gives every (node, shard) replica its own on-disk log
	// in Dir (a temp dir when empty) — the configuration where sharding
	// pays, because independent leaders run independent fsync queues.
	FileStorage bool
	Dir         string
	// FsyncFloor, when > 0, wraps each replica's store in raft.SlowDisk
	// so every durability barrier costs at least this long — pinning the
	// device term of the latency equation to a known constant instead of
	// whatever the host's disk felt like this minute. Scaling numbers
	// with a floor compare topologies; without one they compare runs.
	FsyncFloor time.Duration
	// ElectionTimeout/HeartbeatInterval override the bench defaults.
	// Slow modeled disks need a wider election timeout: every barrier
	// stalls a node's loop for the floor, and an in-window election is a
	// multi-heartbeat throughput hole that reads as a scaling loss.
	ElectionTimeout   time.Duration
	HeartbeatInterval time.Duration
	// Metrics, if non-nil, receives the cluster-level telemetry (leader
	// placement, per-shard routed ops, mux drops).
	Metrics *metrics.Registry
	// ShardMetrics, if non-nil, supplies a registry per shard for group
	// internals, passed through to shard.Config.
	ShardMetrics func(shard int) *metrics.Registry
	// Workload shape: ReadRatio > 0 mixes reads (served per shard via
	// ReadMode) into the loop; Keys sizes the shared keyspace (default
	// 1024); Zipfian selects the skewed distribution.
	ReadRatio     float64
	ReadMode      raft.ReadConsistency
	LeaseDuration time.Duration
	Keys          int
	Zipfian       bool
	// Tracer/Flights thread per-request tracing and flight recording
	// through the cluster (shard.Config.Tracer / shard.Config.Flights).
	Tracer  *rtrace.Tracer
	Flights []*rtrace.Flight
	// SyncPipeline runs every group's nodes with the fully ordered write
	// path (raft.Config.SyncPipeline) instead of the pipelined default.
	SyncPipeline bool
	// DeviceLatency, when > 0, models each node's *shared* storage
	// device (shard.Config.DeviceLatency → one raft.Disk per node):
	// every durability barrier from any of the node's groups pays this
	// latency, and concurrent barriers serialize. Contrast FsyncFloor,
	// which models an independent device per replica (raft.SlowDisk).
	// E18 uses DeviceLatency; E16 keeps FsyncFloor.
	DeviceLatency time.Duration
	// PerGroupFsync disables cross-group sync coalescing (the pre-PR10
	// baseline): each group's flush pays its own serialized device
	// barrier. Zero means the node-wide syncer coalesces them.
	PerGroupFsync bool
	// Recorder, when set, captures the run's protocol trace: mux-tagged
	// message events from the simulated network plus per-flush fsync
	// notes from every replica's storage (shard.Config.Recorder), the
	// input behind ooctrace's fsyncs/width channel columns.
	Recorder *trace.Recorder
}

// MultiShardResult is one run's outcome.
type MultiShardResult struct {
	Shards      int
	Clients     int           // total concurrent closed-loop clients
	Ops         int           // completed client ops (reads + writes)
	OpsPerSec   float64       // Ops / wall-clock elapsed
	P50         time.Duration // client-observed op latency
	P99         time.Duration
	Fsyncs      int64   // total per-file fsyncs across all replicas (file storage only)
	FsyncsPerOp float64 // Fsyncs / Ops
	// Device-barrier accounting from the per-node sync coalescers (file
	// storage only). Barriers is the number of device flushes actually
	// paid across the cluster — the node-wide fsync count that
	// coalescing reduces while Fsyncs (per-file) stays put. MeanWidth is
	// how many group flushes the average barrier covered (Requests /
	// Barriers; 1.0 when nothing coalesced or PerGroupFsync is set).
	Barriers      int64
	BarriersPerOp float64
	MeanWidth     float64
	PerShardOps   []int // completed ops attributed to each shard
	// Leader placement at window end: which node led each shard, how
	// many distinct nodes led at least one, and how many rebalance
	// campaigns the placement watcher issued.
	LeaderPlacement []int
	LeaderSpread    int
	Rebalances      int
	// KeyImbalance is the router self-check (max/mean keys per shard
	// over the workload's key table) — near 1.0 means the throughput
	// numbers measure sharding, not an accidental hot shard.
	KeyImbalance float64
}

// RunMultiShard runs one closed-loop multi-Raft trial. It is the engine
// behind experiment E16, BenchmarkE16MultiShard, and `raftkv -bench
// -shards=N`.
func RunMultiShard(cfg MultiShardConfig) (MultiShardResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.ClientsPerShard <= 0 {
		cfg.ClientsPerShard = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 500 * time.Millisecond
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 1024
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = benchElection
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = benchHeartbeat
	}
	dir := cfg.Dir
	if cfg.FileStorage && dir == "" {
		d, err := os.MkdirTemp("", "ooc-multishard-bench-*")
		if err != nil {
			return MultiShardResult{}, err
		}
		defer func() { _ = os.RemoveAll(d) }()
		dir = d
	}

	nw := netsim.New(cfg.Nodes, netsim.WithSeed(cfg.Seed), netsim.WithRecorder(cfg.Recorder))
	rng := sim.NewRNG(cfg.Seed)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	eps := make([]msgnet.Endpoint, cfg.Nodes)
	for i := range eps {
		eps[i] = nw.Node(i)
	}
	var (
		filesMu sync.Mutex
		files   []*raft.FileStorage
	)
	var storage func(node, s int) (raft.Storage, error)
	if cfg.FileStorage {
		storage = func(node, s int) (raft.Storage, error) {
			fs, err := raft.OpenFileStorage(filepath.Join(dir, fmt.Sprintf("node-%d-shard-%d.log", node, s)))
			if err != nil {
				return nil, err
			}
			if _, err := fs.Load(); err != nil {
				_ = fs.Close()
				return nil, err
			}
			filesMu.Lock()
			files = append(files, fs)
			filesMu.Unlock()
			if cfg.FsyncFloor > 0 {
				return raft.NewSlowDisk(fs, cfg.FsyncFloor), nil
			}
			return fs, nil
		}
	}
	cluster, err := shard.NewCluster(shard.Config{
		Endpoints:         eps,
		Shards:            cfg.Shards,
		RNG:               rng,
		ElectionTimeout:   cfg.ElectionTimeout,
		HeartbeatInterval: cfg.HeartbeatInterval,
		LeaseDuration:     cfg.LeaseDuration,
		ReadMode:          cfg.ReadMode,
		Tracer:            cfg.Tracer,
		Flights:           cfg.Flights,
		Storage:           storage,
		Metrics:           cfg.Metrics,
		ShardMetrics:      cfg.ShardMetrics,
		SyncPipeline:      cfg.SyncPipeline,
		DeviceLatency:     cfg.DeviceLatency,
		PerGroupFsync:     cfg.PerGroupFsync,
		Recorder:          cfg.Recorder,
	})
	if err != nil {
		return MultiShardResult{}, err
	}
	// Files close only after every started node has fully stopped: the
	// persist workers write until their Done() fires.
	defer func() {
		cancel()
		cluster.Wait()
		filesMu.Lock()
		defer filesMu.Unlock()
		for _, fs := range files {
			_ = fs.Close()
		}
	}()
	if err := cluster.Start(ctx); err != nil {
		return MultiShardResult{}, err
	}

	// The shared workload family: one key table and CDF across the whole
	// client grid, plus the router self-check before any number is
	// trusted.
	dist := workload.KeysUniform
	if cfg.Zipfian {
		dist = workload.KeysZipfian
	}
	fam, err := workload.NewKVMixFamily(workload.KVMixConfig{
		ReadRatio: cfg.ReadRatio, Keys: cfg.Keys, Dist: dist,
	})
	if err != nil {
		return MultiShardResult{}, err
	}
	spread, err := fam.ShardSpread(cfg.Shards, cluster.ShardOf)
	if err != nil {
		return MultiShardResult{}, err
	}
	// The per-shard grid: partition the shared key table by owning
	// group, preserving family rank order within each partition (so a
	// zipfian head stays a head on every shard). Each client is pinned
	// to one shard and remaps its drawn rank into that shard's
	// partition; ops still travel through the router (which must agree
	// with the pin — that's the closed loop exercising the real path).
	// Pinning matters for the measurement: randomly routed closed-loop
	// clients collide (two clients landing on one group serialize behind
	// its commit pipeline while another group idles), which reads as a
	// scaling loss that isn't the system's.
	keysByShard := make([][]string, cfg.Shards)
	rank := make(map[string]int, len(fam.Keys()))
	for i, k := range fam.Keys() {
		rank[k] = i
		s := cluster.ShardOf(k)
		keysByShard[s] = append(keysByShard[s], k)
	}
	for s, ks := range keysByShard {
		if len(ks) == 0 {
			return MultiShardResult{}, fmt.Errorf("shard %d owns no workload keys (keyspace %d too small for %d shards)", s, cfg.Keys, cfg.Shards)
		}
	}

	// Warmup: elect every group's leader and commit one entry per group,
	// so the measured window holds only the replication path.
	warmCtx, warmCancel := context.WithTimeout(ctx, 10*time.Second)
	err = cluster.WaitForLeaders(warmCtx)
	if err == nil {
		for s := 0; s < cfg.Shards && err == nil; s++ {
			_, err = cluster.Group(s).Client.SubmitWait(warmCtx, raft.KVCommand{Op: "set", Key: "warmup", Value: "1"})
		}
	}
	warmCancel()
	if err != nil {
		return MultiShardResult{}, fmt.Errorf("warmup: %w", err)
	}

	var startSyncs int64
	for _, fs := range files {
		startSyncs += fs.Syncs()
	}
	var startBarriers, startRequests int64
	for n := 0; n < cfg.Nodes; n++ {
		if sc := cluster.Syncer(n); sc != nil {
			startBarriers += sc.Barriers()
			startRequests += sc.Requests()
		}
	}

	clients := cfg.ClientsPerShard * cfg.Shards
	runCtx, runCancel := context.WithCancel(ctx)
	lat := make([][]time.Duration, clients)
	shardOps := make([][]int, clients)
	var wg sync.WaitGroup
	start := time.Now()
	timer := time.AfterFunc(cfg.Duration, runCancel)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mix := fam.Instance(rng.Stream('m', uint64(c)))
			counts := make([]int, cfg.Shards)
			shardOps[c] = counts
			pin := c % cfg.Shards // clients 0..S-1 on shard 0..S-1, wrapping
			keys := keysByShard[pin]
			// Values carry the client id for global uniqueness; keys are
			// shared within a shard's partition, like E15's keyspace.
			vprefix := fmt.Sprintf("c%d-", c)
			for {
				op := mix.Next()
				key := keys[rank[op.Key]%len(keys)]
				t0 := time.Now()
				if op.Read {
					if _, _, err := cluster.Get(runCtx, key); err != nil {
						return // window over
					}
					lat[c] = append(lat[c], time.Since(t0))
					counts[pin]++
					continue
				}
				s, _, err := cluster.Put(runCtx, key, vprefix+op.Value)
				if err != nil {
					return // window over
				}
				lat[c] = append(lat[c], time.Since(t0))
				counts[s]++
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	timer.Stop()
	runCancel()

	res := MultiShardResult{
		Shards:          cfg.Shards,
		Clients:         clients,
		PerShardOps:     make([]int, cfg.Shards),
		LeaderPlacement: cluster.LeaderPlacement(),
		LeaderSpread:    cluster.LeaderSpread(),
		Rebalances:      cluster.RebalanceNudges(),
		KeyImbalance:    workload.SpreadImbalance(spread),
	}
	all := make([]time.Duration, 0, 1024)
	for c := range lat {
		res.Ops += len(lat[c])
		all = append(all, lat[c]...)
		for s, n := range shardOps[c] {
			res.PerShardOps[s] += n
		}
	}
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.P50 = all[len(all)/2]
		res.P99 = all[len(all)*99/100]
	}
	// Stop the cluster before reading the sync counters so in-flight
	// persist runs are counted, not raced (the deferred cleanup re-runs
	// both calls harmlessly).
	cancel()
	cluster.Wait()
	for _, fs := range files {
		res.Fsyncs += fs.Syncs()
	}
	res.Fsyncs -= startSyncs
	var requests int64
	for n := 0; n < cfg.Nodes; n++ {
		if sc := cluster.Syncer(n); sc != nil {
			res.Barriers += sc.Barriers()
			requests += sc.Requests()
		}
	}
	res.Barriers -= startBarriers
	requests -= startRequests
	if res.Ops > 0 {
		res.FsyncsPerOp = float64(res.Fsyncs) / float64(res.Ops)
		res.BarriersPerOp = float64(res.Barriers) / float64(res.Ops)
	}
	if res.Barriers > 0 {
		res.MeanWidth = float64(requests) / float64(res.Barriers)
	}
	return res, nil
}

// e16FsyncFloor is the modeled device latency per durability barrier in
// E16 (a commodity-SSD-class fsync). Without it the experiment compares
// host storage moods, not topologies: on shared infrastructure a
// page-cache-fast fsync lets one un-batched client saturate the device
// from a single group (no headroom for sharding to claim), while a slow
// minute shows near-linear scaling — the same binary, 10x apart. The
// floor pins the term the architecture is designed around: one group =
// one serialized fsync queue.
const e16FsyncFloor = 2 * time.Millisecond

// RunE16 measures multi-Raft scaling end to end: the same 3-node
// machine, the keyspace hash-split across 1/2/4/8 groups, one pinned
// closed-loop client per shard, file storage with a modeled 1ms device
// latency per fsync (see e16FsyncFloor). One group's throughput is
// bounded by its single leader's serialized commit pipeline — latency
// per group-commit round, not CPU — so independent groups with leaders
// spread across nodes overlap those rounds and aggregate ops/sec climbs
// until the fsync device or the CPU saturates. speedup_vs_1shard is the
// headline column; leader_spread verifies the placement half of the
// design actually happened.
func RunE16(s Suite) (Table, error) {
	tbl := Table{
		ID:    "E16",
		Title: "Multi-Raft scaling: hash-split keyspace over independent groups, closed loop, file storage + 1ms fsync floor",
		Columns: []string{"shards", "clients", "trials", "ops", "ops_per_sec", "speedup_vs_1shard",
			"p50_ms", "p99_ms", "fsyncs_per_op", "leader_spread", "rebalances", "key_imbalance"},
	}
	shardCounts := []int{1, 2, 4, 8}
	duration := 500 * time.Millisecond
	trials := s.Trials
	if trials > 3 {
		trials = 3 // wall-clock bound, like E14/E15
	}
	if s.Quick {
		shardCounts = []int{1, 2}
		duration = 200 * time.Millisecond
		trials = 1
	}
	base := 0.0
	for _, shards := range shardCounts {
		reg := s.cellRegistry()
		shardRegs := make([]*metrics.Registry, shards)
		var shardMetrics func(int) *metrics.Registry
		if s.CollectMetrics {
			for i := range shardRegs {
				shardRegs[i] = metrics.NewRegistry()
			}
			shardMetrics = func(i int) *metrics.Registry { return shardRegs[i] }
		}
		var opsPerSec, p50, p99, fsyncsPerOp, imbalance stats
		ops, spreadMin, rebalances := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			res, err := RunMultiShard(MultiShardConfig{
				Nodes:           3,
				Shards:          shards,
				ClientsPerShard: 1,
				Duration:        duration,
				Seed:            s.BaseSeed + uint64(shards*10+trial),
				FileStorage:     true,
				FsyncFloor:      e16FsyncFloor,
				// ~100 modeled barriers of headroom before a follower
				// suspects its leader; keeps failover machinery out of a
				// window that measures steady-state replication.
				ElectionTimeout: 100 * time.Millisecond,
				Metrics:         reg,
				ShardMetrics:    shardMetrics,
			})
			if err != nil {
				return tbl, fmt.Errorf("E16 shards=%d: %w", shards, err)
			}
			ops += res.Ops
			opsPerSec.add(res.OpsPerSec)
			p50.add(res.P50.Seconds() * 1000)
			p99.add(res.P99.Seconds() * 1000)
			fsyncsPerOp.add(res.FsyncsPerOp)
			imbalance.add(res.KeyImbalance)
			rebalances += res.Rebalances
			if trial == 0 || res.LeaderSpread < spreadMin {
				spreadMin = res.LeaderSpread
			}
		}
		mean := opsPerSec.mean()
		if shards == 1 {
			base = mean
		}
		speedup := 0.0
		if base > 0 {
			speedup = mean / base
		}
		tbl.AddRow(shards, shards, trials, ops, mean, speedup,
			p50.mean(), p99.mean(), fsyncsPerOp.mean(), spreadMin, rebalances, imbalance.mean())
		if s.CollectMetrics {
			tbl.attachMetrics(fmt.Sprintf("shards=%d", shards), reg.Snapshot())
			for i, sreg := range shardRegs {
				tbl.attachMetrics(fmt.Sprintf("shards=%d shard=%d", shards, i), sreg.Snapshot())
			}
		}
	}
	tbl.Notes = append(tbl.Notes,
		"weak scaling: one closed-loop client pinned per shard, so per-shard offered load is constant as groups are added",
		"the 1-shard row is the un-amortized floor: a lone client gets no proposal batching, so each op pays a full group-commit round (fsyncs_per_op ≈ replicas)",
		"each (node, shard) replica persists to its own log file: S groups run S independent group-commit fsync queues",
		"every barrier pays a modeled 1ms device latency (raft.SlowDisk over FileStorage) so the scaling curve measures the topology, not the benchmark host's storage speed of the minute; real fsyncs still run and are counted underneath",
		"speedup_vs_1shard > 1 is leaders' commit pipelines overlapping; the ceiling is the modeled device, then the CPU",
		"leader_spread is the minimum over trials of distinct nodes leading ≥1 shard at window end (placement check)",
		"key_imbalance is max/mean keys per shard over the workload key table — near 1.0 rules out a hot-shard artifact",
		"E14 measures the same machine's single group under a saturating 8-client load — the batch-amortized ceiling one leader can reach")
	return tbl, nil
}
