// Package bench is the experiment harness: it runs the reproduction's
// experiment matrix (DESIGN.md §5) and renders the tables EXPERIMENTS.md
// records. Every experiment funnels its runs through internal/checker, so
// a safety violation in any configuration fails the experiment rather
// than silently skewing a number.
//
// The paper is a brief announcement with no evaluation tables of its own;
// its two figures (Raft message formats and state variables) are
// reproduced as code and exercised by F1/F2; experiments E1–E10 and EA
// validate every claim the paper makes; and E11–E13 measure the
// repository's extensions (multivalued consensus, the shared-memory
// baseline framework, and the Raft PreVote ablation). See EXPERIMENTS.md
// for the recorded outputs.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Suite configures how heavy the experiment matrix runs.
type Suite struct {
	// Trials is the number of seeded repetitions per configuration.
	Trials int
	// Quick trims the parameter sweep for fast CI runs.
	Quick bool
	// BaseSeed offsets all seeds so independent invocations can sample
	// fresh randomness while staying reproducible.
	BaseSeed uint64
}

// DefaultSuite is the configuration cmd/oocbench uses.
func DefaultSuite() Suite { return Suite{Trials: 20} }

// QuickSuite is a trimmed configuration for tests.
func QuickSuite() Suite { return Suite{Trials: 4, Quick: true} }

// Experiment is one runnable experiment.
type Experiment struct {
	ID   string
	Name string
	Run  func(Suite) (Table, error)
}

// Experiments lists the full matrix in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"F1", "Raft message formats (paper Figure 1): codec round-trip and sizes", RunF1},
		{"F2", "Raft state variables (paper Figure 2): transitions through an election", RunF2},
		{"E1", "Ben-Or decomposed under Algorithm 1: safety and rounds", RunE1},
		{"E2", "Ben-Or decomposed vs monolithic baseline", RunE2},
		{"E3", "Phase-King decomposed under Algorithm 2 vs Byzantine adversaries", RunE3},
		{"E4", "Phase-King decomposed vs monolithic baseline", RunE4},
		{"EA", "King-diversion adversary: paper's first-commit rule vs classical rule", RunEA},
		{"E5", "Raft single-decree consensus (Algorithm 7)", RunE5},
		{"E6", "Raft VAC decomposition (Algorithms 10-11)", RunE6},
		{"E7", "VAC from two adopt-commits (Section 5 construction)", RunE7},
		{"E8", "Ben-Or's three outcome classes (Section 5 separation evidence)", RunE8},
		{"E9", "Rounds-to-consensus distribution vs n (reconciliator termination)", RunE9},
		{"E10", "Message complexity per round, all three protocols", RunE10},
		{"E11", "Multivalued consensus extension (seen-set reconciliator)", RunE11},
		{"E12", "Shared-memory consensus (Aspnes framework, Algorithm 2)", RunE12},
		{"E13", "PreVote ablation: term inflation and post-heal disruption", RunE13},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// stats is a tiny aggregation helper.
type stats struct {
	vals []float64
}

func (s *stats) add(v float64) { s.vals = append(s.vals, v) }

func (s *stats) mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

func (s *stats) max() float64 {
	out := 0.0
	for _, v := range s.vals {
		if v > out {
			out = v
		}
	}
	return out
}

func (s *stats) percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
