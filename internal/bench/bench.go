// Package bench is the experiment harness: it runs the reproduction's
// experiment matrix (DESIGN.md §5) and renders the tables EXPERIMENTS.md
// records. Every experiment funnels its runs through internal/checker, so
// a safety violation in any configuration fails the experiment rather
// than silently skewing a number.
//
// The paper is a brief announcement with no evaluation tables of its own;
// its two figures (Raft message formats and state variables) are
// reproduced as code and exercised by F1/F2; experiments E1–E10 and EA
// validate every claim the paper makes; and E11–E13 measure the
// repository's extensions (multivalued consensus, the shared-memory
// baseline framework, and the Raft PreVote ablation). See EXPERIMENTS.md
// for the recorded outputs.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"ooc/internal/metrics"
)

// Table is one experiment's output.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	// Metrics maps a cell key (the experiment's parameter tuple rendered
	// as "k=v" pairs) to that cell's telemetry snapshot. Populated only
	// when Suite.CollectMetrics is set: each cell then runs its trials
	// against a private registry, so the numbers attribute cleanly.
	Metrics map[string]metrics.Snapshot `json:"metrics,omitempty"`
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderJSON writes the table as one indented JSON document, including
// any per-cell metrics snapshots.
func (t *Table) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// attachMetrics records a cell's telemetry snapshot under key.
func (t *Table) attachMetrics(key string, snap metrics.Snapshot) {
	if t.Metrics == nil {
		t.Metrics = make(map[string]metrics.Snapshot)
	}
	t.Metrics[key] = snap
}

// Suite configures how heavy the experiment matrix runs.
type Suite struct {
	// Trials is the number of seeded repetitions per configuration.
	Trials int
	// Quick trims the parameter sweep for fast CI runs.
	Quick bool
	// BaseSeed offsets all seeds so independent invocations can sample
	// fresh randomness while staying reproducible.
	BaseSeed uint64
	// CollectMetrics attaches a private metrics registry to each
	// instrumented cell and records its snapshot in Table.Metrics. Off by
	// default: the registry itself is cheap, but cells that don't need
	// telemetry shouldn't pay even the pointer chases.
	CollectMetrics bool
}

// cellRegistry returns a fresh registry when the suite collects metrics,
// nil otherwise (nil registries hand out nil, no-op instruments).
func (s Suite) cellRegistry() *metrics.Registry {
	if !s.CollectMetrics {
		return nil
	}
	return metrics.NewRegistry()
}

// DefaultSuite is the configuration cmd/oocbench uses.
func DefaultSuite() Suite { return Suite{Trials: 20} }

// QuickSuite is a trimmed configuration for tests.
func QuickSuite() Suite { return Suite{Trials: 4, Quick: true} }

// Experiment is one runnable experiment.
type Experiment struct {
	ID   string
	Name string
	Run  func(Suite) (Table, error)
	// WallClock marks experiments whose trials run real timers (the Raft
	// matrix). Their measurements distort when other experiments compete
	// for CPU, so harnesses must not run them concurrently with anything.
	WallClock bool
}

// Experiments lists the full matrix in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "F1", Name: "Raft message formats (paper Figure 1): codec round-trip and sizes", Run: RunF1},
		{ID: "F2", Name: "Raft state variables (paper Figure 2): transitions through an election", Run: RunF2},
		{ID: "E1", Name: "Ben-Or decomposed under Algorithm 1: safety and rounds", Run: RunE1},
		{ID: "E2", Name: "Ben-Or decomposed vs monolithic baseline", Run: RunE2},
		{ID: "E3", Name: "Phase-King decomposed under Algorithm 2 vs Byzantine adversaries", Run: RunE3},
		{ID: "E4", Name: "Phase-King decomposed vs monolithic baseline", Run: RunE4},
		{ID: "EA", Name: "King-diversion adversary: paper's first-commit rule vs classical rule", Run: RunEA},
		{ID: "E5", Name: "Raft single-decree consensus (Algorithm 7)", Run: RunE5, WallClock: true},
		{ID: "E6", Name: "Raft VAC decomposition (Algorithms 10-11)", Run: RunE6, WallClock: true},
		{ID: "E7", Name: "VAC from two adopt-commits (Section 5 construction)", Run: RunE7},
		{ID: "E8", Name: "Ben-Or's three outcome classes (Section 5 separation evidence)", Run: RunE8},
		{ID: "E9", Name: "Rounds-to-consensus distribution vs n (reconciliator termination)", Run: RunE9},
		{ID: "E10", Name: "Message complexity per round, all three protocols", Run: RunE10, WallClock: true},
		{ID: "E11", Name: "Multivalued consensus extension (seen-set reconciliator)", Run: RunE11},
		{ID: "E12", Name: "Shared-memory consensus (Aspnes framework, Algorithm 2)", Run: RunE12},
		{ID: "E13", Name: "PreVote ablation: term inflation and post-heal disruption", Run: RunE13, WallClock: true},
		{ID: "E14", Name: "Raft closed-loop throughput: coalescing, group commit, pipelining", Run: RunE14, WallClock: true},
		{ID: "E15", Name: "Raft linearizable reads: ReadIndex, leases, and batching vs the log-command baseline", Run: RunE15, WallClock: true},
		{ID: "E16", Name: "Multi-Raft scaling: sharded keyspace over independent consensus groups", Run: RunE16, WallClock: true},
		{ID: "E17", Name: "Raft commit pipeline: parallel leader persist + async apply vs the ordered loop", Run: RunE17, WallClock: true},
		{ID: "E18", Name: "Shared-disk group commit: per-node sync coalescing across Raft groups", Run: RunE18, WallClock: true},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// runCells executes fn for every cell index [0, cells) on a bounded
// worker pool, explore.Sweep-style, and returns the per-cell results in
// index order so tables render identically to a sequential run. Each cell
// is an independent slice of an experiment's parameter grid (its trials
// build their own networks and recorders), so cells parallelize freely;
// the pool is bounded by GOMAXPROCS because cells are CPU-bound. The
// first cell error aborts the experiment, as in the sequential code.
//
// Experiments whose trials run real wall-clock timers (the Raft matrix:
// E5, E6, E13, and E10's Raft rows) deliberately do NOT go through this
// pool: overlapping timer-driven trials distort their time-to-decision
// measurements and can starve heartbeats on small machines.
func runCells[T any](cells int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, cells)
	errs := make([]error, cells)
	parallelism := runtime.GOMAXPROCS(0)
	if parallelism > cells {
		parallelism = cells
	}
	if parallelism < 1 {
		parallelism = 1
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := 0; i < cells; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// row is one rendered table row produced by a parallel cell.
type row []any

// meteredRow couples a table row with the cell's telemetry snapshot (and
// the key it files under). Cells that don't collect metrics carry an
// empty snapshot.
type meteredRow struct {
	r   row
	key string
	met metrics.Snapshot
}

// addMeteredRows appends the rows to the table, attaching each cell's
// snapshot when the suite collects metrics.
func addMeteredRows(tbl *Table, s Suite, rows []meteredRow) {
	for _, mr := range rows {
		tbl.AddRow(mr.r...)
		if s.CollectMetrics {
			tbl.attachMetrics(mr.key, mr.met)
		}
	}
}

// stats is a tiny aggregation helper.
type stats struct {
	vals []float64
}

func (s *stats) add(v float64) { s.vals = append(s.vals, v) }

func (s *stats) mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

func (s *stats) max() float64 {
	out := 0.0
	for _, v := range s.vals {
		if v > out {
			out = v
		}
	}
	return out
}

func (s *stats) percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
