package bench

import (
	"fmt"
	"time"
)

// e18DeviceLatency is the modeled shared-device barrier cost in E18 —
// the same commodity-SSD-class 2ms as E16's per-replica floor, but paid
// at one raft.Disk per *node*, shared by all of the node's groups. The
// fixture difference is the whole experiment: E16's SlowDisk gives every
// replica its own device, so adding shards adds devices and the fsync
// term scales for free; E18 holds the device count at one per node, the
// deployment where per-group fsync queues actually collide.
const e18DeviceLatency = 2 * time.Millisecond

// RunE18 measures cross-group sync coalescing end to end: E16's weak-
// scaling grid (1/2/4/8 shards over 3 nodes, one pinned closed-loop
// client per shard, file storage), but with all of a node's replicas
// sharing one modeled 2ms device. The pergroup rows are the pre-PR10
// baseline — every group flush pays its own serialized barrier, so at 8
// shards a node's durability pipeline queues 8 deep and per-op latency
// inflates with the shard count. The coalesced rows run the per-node
// SyncCoalescer: concurrent group flushes park on one barrier, so
// barriers_per_op falls with mean_width while fsyncs_per_op (per-file
// syncs, paid underneath either way) stays put. speedup_vs_pergroup at
// 8 shards is the headline number (acceptance: ≥ 1.5x).
func RunE18(s Suite) (Table, error) {
	tbl := Table{
		ID:    "E18",
		Title: "Shared-disk group commit: per-node sync coalescing vs per-group fsync, one 2ms device per node",
		Columns: []string{"shards", "mode", "trials", "ops", "ops_per_sec", "speedup_vs_pergroup",
			"p50_ms", "p99_ms", "barriers_per_op", "mean_width", "fsyncs_per_op"},
	}
	shardCounts := []int{1, 2, 4, 8}
	duration := 500 * time.Millisecond
	trials := s.Trials
	if trials > 3 {
		trials = 3 // wall-clock bound, like E14/E16
	}
	if s.Quick {
		shardCounts = []int{1, 4}
		duration = 200 * time.Millisecond
		trials = 1
	}
	for _, shards := range shardCounts {
		base := 0.0
		for _, mode := range []string{"pergroup", "coalesced"} {
			reg := s.cellRegistry()
			var opsPerSec, p50, p99, barriersPerOp, meanWidth, fsyncsPerOp stats
			ops := 0
			for trial := 0; trial < trials; trial++ {
				res, err := RunMultiShard(MultiShardConfig{
					Nodes:           3,
					Shards:          shards,
					ClientsPerShard: 1,
					Duration:        duration,
					Seed:            s.BaseSeed + uint64(shards*10+trial),
					FileStorage:     true,
					DeviceLatency:   e18DeviceLatency,
					PerGroupFsync:   mode == "pergroup",
					// Wider than E16's: a per-group 8-shard node can queue
					// 8 × 2ms of barriers ahead of a replica's flush, and an
					// in-window election would read as a coalescing win.
					ElectionTimeout: 150 * time.Millisecond,
					Metrics:         reg,
				})
				if err != nil {
					return tbl, fmt.Errorf("E18 shards=%d %s: %w", shards, mode, err)
				}
				ops += res.Ops
				opsPerSec.add(res.OpsPerSec)
				p50.add(res.P50.Seconds() * 1000)
				p99.add(res.P99.Seconds() * 1000)
				barriersPerOp.add(res.BarriersPerOp)
				meanWidth.add(res.MeanWidth)
				fsyncsPerOp.add(res.FsyncsPerOp)
			}
			mean := opsPerSec.mean()
			if mode == "pergroup" {
				base = mean
			}
			speedup := 0.0
			if base > 0 {
				speedup = mean / base
			}
			tbl.AddRow(shards, mode, trials, ops, mean, speedup,
				p50.mean(), p99.mean(), barriersPerOp.mean(), meanWidth.mean(), fsyncsPerOp.mean())
			if s.CollectMetrics {
				tbl.attachMetrics(fmt.Sprintf("shards=%d mode=%s", shards, mode), reg.Snapshot())
			}
		}
	}
	tbl.Notes = append(tbl.Notes,
		"weak scaling like E16 (one pinned closed-loop client per shard), but all of a node's replicas share ONE modeled 2ms device (shard.Config.DeviceLatency → raft.Disk), not a device per replica",
		"pergroup rows: every group flush pays its own device barrier, serialized at the node's disk — the pre-coalescing baseline, same binary (raftkv -sync-coalesce=false)",
		"coalesced rows: one raft.SyncCoalescer per node parks concurrent group flushes on a shared barrier; barriers_per_op is the node-wide device-flush count per committed op, the number coalescing reduces",
		"mean_width = sync requests / barriers paid: how many group flushes the average barrier covered",
		"fsyncs_per_op counts per-file fsyncs, which both modes pay identically underneath the modeled barrier — it separates the device-barrier win from file-layer batching (E14)",
		"speedup_vs_pergroup compares the two modes at equal shard count; the 1-shard rows are the degenerate case the zero-overhead gate holds to parity")
	return tbl, nil
}
