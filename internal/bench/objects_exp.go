package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ooc/internal/adapters"
	"ooc/internal/benor"
	"ooc/internal/checker"
	"ooc/internal/core"
	"ooc/internal/netsim"
	"ooc/internal/sim"
	"ooc/internal/workload"
)

// RunE7 validates the Section 5 relation: a VAC built from two
// adopt-commit objects upholds all VAC guarantees, and the composite
// drives consensus under Algorithm 1; conversely a VAC forgetting its
// vacillate level is a correct AC.
func RunE7(s Suite) (Table, error) {
	tbl := Table{
		ID:      "E7",
		Title:   "Section 5 object algebra: VAC from two ACs, AC from VAC",
		Columns: []string{"construction", "n", "trials", "rounds_checked", "mean_consensus_rounds", "violations"},
	}
	trials := s.Trials * 3

	// Three constructions, one parallel cell per (construction, n).
	type cell struct {
		construction string
		n            int
	}
	var cells []cell
	for _, n := range []int{3, 5, 9} {
		cells = append(cells, cell{"VAC = AC;AC", n})
	}
	for _, n := range []int{3, 5} {
		cells = append(cells, cell{"consensus(AC;AC + coin)", n})
	}
	for _, n := range []int{5, 9} {
		cells = append(cells, cell{"AC = forget(VAC)", n})
	}
	rows, err := runCells(len(cells), func(i int) (row, error) {
		c := cells[i]
		switch c.construction {
		case "VAC = AC;AC":
			// VAC from two shared-memory ACs: per-round property check.
			var (
				report checker.Report
				rounds int
			)
			for trial := 0; trial < trials; trial++ {
				seed := s.BaseSeed + uint64(c.n*1000+trial)
				rng := sim.NewRNG(seed)
				inputs := workload.BinaryInputs(workload.SplitRandom, c.n, rng)
				outs, err := oneCompositeVACRound(c.n, inputs)
				if err != nil {
					return nil, err
				}
				report.Merge(checker.CheckVACRound(outs, workload.InputsToMap(inputs)))
				rounds++
			}
			if !report.Ok() {
				return nil, fmt.Errorf("E7 composite VAC: %v", report.Violations[0])
			}
			return row{c.construction, c.n, trials, rounds, "-", len(report.Violations)}, nil
		case "consensus(AC;AC + coin)":
			// The composite VAC under the full template with a coin
			// reconciliator.
			var (
				roundsStat stats
				report     checker.Report
			)
			for trial := 0; trial < trials; trial++ {
				seed := s.BaseSeed + uint64(c.n*77+trial)
				rng := sim.NewRNG(seed)
				inputs := workload.BinaryInputs(workload.SplitHalf, c.n, rng)
				outs, maxRound, err := compositeVACConsensus(c.n, inputs, rng)
				if err != nil {
					return nil, err
				}
				report.Merge(checker.CheckConsensus(outs, workload.InputsToMap(inputs), true))
				roundsStat.add(float64(maxRound))
			}
			if !report.Ok() {
				return nil, fmt.Errorf("E7 composite consensus: %v", report.Violations[0])
			}
			return row{c.construction, c.n, trials, "-", roundsStat.mean(), len(report.Violations)}, nil
		default:
			// AC from Ben-Or's VAC: per-round AC property check over the
			// message-passing object.
			tFaults := (c.n - 1) / 2
			var report checker.Report
			for trial := 0; trial < trials; trial++ {
				seed := s.BaseSeed + uint64(c.n*31+trial)
				rng := sim.NewRNG(seed)
				inputs := workload.BinaryInputs(workload.SplitRandom, c.n, rng)
				outs, err := oneACFromVACRound(c.n, tFaults, inputs, seed)
				if err != nil {
					return nil, err
				}
				report.Merge(checker.CheckACRound(outs, workload.InputsToMap(inputs)))
			}
			if !report.Ok() {
				return nil, fmt.Errorf("E7 forgetful AC: %v", report.Violations[0])
			}
			return row{c.construction, c.n, trials, trials, "-", len(report.Violations)}, nil
		}
	})
	if err != nil {
		return tbl, err
	}
	for _, r := range rows {
		tbl.AddRow(r...)
	}
	tbl.Notes = append(tbl.Notes,
		"classification: commit iff both ACs commit; adopt iff only the second commits; vacillate otherwise",
		"the brief announcement asserts the construction without giving it; these rounds property-check ours")
	return tbl, nil
}

func oneCompositeVACRound(n int, inputs []int) ([]checker.ObjectOutcome[int], error) {
	store1 := adapters.NewSharedACStore(n)
	store2 := adapters.NewSharedACStore(n)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	outs := make([]checker.ObjectOutcome[int], n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			vac := adapters.NewVACFromACs[int](store1.Object(id), store2.Object(id))
			c, v, err := vac.Propose(ctx, inputs[id], 1)
			outs[id] = checker.ObjectOutcome[int]{Node: id, Conf: c, Value: v}
			errs[id] = err
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

func compositeVACConsensus(n int, inputs []int, rng *sim.RNG) ([]checker.RunOutcome[int], int, error) {
	store1 := adapters.NewSharedACStore(n)
	store2 := adapters.NewSharedACStore(n)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	outs := make([]checker.RunOutcome[int], n)
	maxRound := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			vac := adapters.NewVACFromACs[int](store1.Object(id), store2.Object(id))
			rec := benor.NewReconciliator(rng.Fork(uint64(id)))
			d, err := core.RunVAC[int](ctx, vac, rec, inputs[id], core.WithMaxRounds(2000))
			if err == nil {
				outs[id] = checker.RunOutcome[int]{Node: id, Decided: true, Value: d.Value, Round: d.Round}
				mu.Lock()
				if d.Round > maxRound {
					maxRound = d.Round
				}
				mu.Unlock()
			} else {
				outs[id] = checker.RunOutcome[int]{Node: id}
			}
		}(id)
	}
	wg.Wait()
	return outs, maxRound, nil
}

func oneACFromVACRound(n, tFaults int, inputs []int, seed uint64) ([]checker.ObjectOutcome[int], error) {
	nw := netsim.New(n, netsim.WithSeed(seed))
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	outs := make([]checker.ObjectOutcome[int], n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			vac, err := benor.NewVAC(nw.Node(id), tFaults)
			if err != nil {
				errs[id] = err
				return
			}
			ac := adapters.NewACFromVAC[int](vac)
			c, v, err := ac.Propose(ctx, inputs[id], 1)
			outs[id] = checker.ObjectOutcome[int]{Node: id, Conf: c, Value: v}
			errs[id] = err
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// RunE8 gathers the empirical core of Section 5's separation argument:
// Ben-Or's rounds genuinely produce all three outcome classes, and an
// adopt value observed mid-run can differ from the final decision — the
// exact scenario that makes "decide on the second AC's commit" (the
// two-consecutive-AC reading, sequence U in the paper) unsound, while the
// VAC treatment stays safe.
func RunE8(s Suite) (Table, error) {
	tbl := Table{
		ID:    "E8",
		Title: "Ben-Or outcome classes per round (instrumented VAC)",
		Columns: []string{"n", "trials", "rounds", "vacillate", "adopt", "commit",
			"mixed_rounds", "adopt_ne_decision_runs", "violations"},
	}
	trials := s.Trials * 2
	sizes := []int{5, 9}
	rows, err := runCells(len(sizes), func(i int) (row, error) {
		n := sizes[i]
		tFaults := (n - 1) / 2
		var (
			totalRounds, vacN, adoptN, commitN, mixed, premature int
			report                                               checker.Report
		)
		for trial := 0; trial < trials; trial++ {
			seed := s.BaseSeed + uint64(n*100+trial)
			rng := sim.NewRNG(seed)
			inputs := workload.BinaryInputs(workload.SplitHalf, n, rng)
			tr, err := runBenOr(variantDecomposed, n, tFaults, inputs, nil, seed, 2000, true, nil)
			if err != nil {
				return nil, err
			}
			report.Merge(checker.CheckConsensus(tr.outcomes, workload.InputsToMap(inputs), true))

			decided := -1
			for _, o := range tr.outcomes {
				if o.Decided {
					decided = o.Value
				}
			}
			perRound := tr.instrLog.PerRound()
			prematureHere := false
			for _, outs := range perRound {
				counts := adapters.ClassCounts(outs)
				totalRounds++
				vacN += counts[core.Vacillate]
				adoptN += counts[core.Adopt]
				commitN += counts[core.Commit]
				if counts[core.Vacillate] > 0 && counts[core.Adopt] > 0 {
					mixed++
				}
				for _, o := range outs {
					if o.Conf == core.Adopt && o.Value != decided {
						prematureHere = true
					}
				}
			}
			if prematureHere {
				premature++
			}
		}
		if !report.Ok() {
			return nil, fmt.Errorf("E8: %v", report.Violations[0])
		}
		return row{n, trials, totalRounds, vacN, adoptN, commitN, mixed, premature, len(report.Violations)}, nil
	})
	if err != nil {
		return tbl, err
	}
	for _, r := range rows {
		tbl.AddRow(r...)
	}
	tbl.Notes = append(tbl.Notes,
		"mixed_rounds: rounds where vacillate and adopt coexist — the state one AC per round cannot express",
		"adopt_ne_decision_runs: runs where some round's adopt value differs from the eventual decision;",
		"  deciding on that adopt (the two-AC sequence U of Section 5) would have violated agreement")
	return tbl, nil
}

// RunE10 measures communication: messages per round, normalized by n²,
// for each protocol.
func RunE10(s Suite) (Table, error) {
	tbl := Table{
		ID:      "E10",
		Title:   "Message complexity per protocol round",
		Columns: []string{"protocol", "n", "trials", "mean_msgs", "mean_rounds", "msgs_per_round", "msgs_per_round_per_n2"},
	}
	// Ben-Or and Phase-King cells are simulation-time only, so they run
	// through the parallel pool; the Raft rows below stay sequential (real
	// timers).
	type cell struct {
		protocol string
		n, t     int
	}
	var cells []cell
	for _, n := range []int{3, 5, 9} {
		cells = append(cells, cell{"ben-or", n, (n - 1) / 2})
	}
	for _, size := range []struct{ n, t int }{{4, 1}, {7, 2}, {10, 3}} {
		cells = append(cells, cell{"phase-king", size.n, size.t})
	}
	rows, err := runCells(len(cells), func(i int) (row, error) {
		c := cells[i]
		if c.protocol == "ben-or" {
			// Two broadcasts per processor per round → ~2n² per round.
			var msgs, rounds stats
			for trial := 0; trial < s.Trials; trial++ {
				seed := s.BaseSeed + uint64(c.n*17+trial)
				rng := sim.NewRNG(seed)
				inputs := workload.BinaryInputs(workload.SplitHalf, c.n, rng)
				tr, err := runBenOr(variantDecomposed, c.n, c.t, inputs, nil, seed, 2000, false, nil)
				if err != nil {
					return nil, err
				}
				msgs.add(float64(tr.stats.MessagesSent))
				rounds.add(float64(tr.maxRound))
			}
			mpr := 0.0
			if rounds.mean() > 0 {
				mpr = msgs.mean() / rounds.mean()
			}
			return row{"ben-or", c.n, s.Trials, msgs.mean(), rounds.mean(), mpr, mpr / float64(c.n*c.n)}, nil
		}
		// Phase-King: three exchanges of ≤n messages per processor per
		// phase.
		var msgs stats
		phases := float64(c.t + 2)
		for trial := 0; trial < s.Trials; trial++ {
			seed := s.BaseSeed + uint64(c.n*13+trial)
			rng := sim.NewRNG(seed)
			inputs := workload.BinaryInputs(workload.SplitHalf, c.n, rng)
			_, st, err := runPhaseKing(false, c.n, c.t, inputs, advFactory{name: "none"}, 2, seed)
			if err != nil {
				return nil, err
			}
			msgs.add(float64(st.MessagesSent))
		}
		mpr := msgs.mean() / phases
		return row{"phase-king", c.n, s.Trials, msgs.mean(), phases, mpr, mpr / float64(c.n*c.n)}, nil
	})
	if err != nil {
		return tbl, err
	}
	for _, r := range rows {
		tbl.AddRow(r...)
	}
	// Raft: per "round" (term), message cost is heartbeat-driven. These
	// trials run real wall-clock timers, so they stay sequential.
	for _, n := range []int{3, 5} {
		var msgs, terms stats
		for trial := 0; trial < min(s.Trials, 10); trial++ {
			seed := s.BaseSeed + uint64(n*7+trial)
			_, st, maxTerm, _, err := runRaftConsensusTrial(n, seed, false)
			if err != nil {
				return tbl, err
			}
			msgs.add(float64(st.msgs))
			terms.add(float64(maxTerm))
		}
		mpr := 0.0
		if terms.mean() > 0 {
			mpr = msgs.mean() / terms.mean()
		}
		tbl.AddRow("raft", n, min(s.Trials, 10), msgs.mean(), terms.mean(), mpr, mpr/float64(n*n))
	}
	tbl.Notes = append(tbl.Notes,
		"ben-or ≈ 2n² msgs/round (two broadcasts per processor); phase-king ≤ 3n² per phase (king exchange is 1×n)",
		"raft's cost per term is time-driven (heartbeats), not round-driven; normalize accordingly")
	return tbl, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
