package benor

import (
	"context"
	"fmt"

	"ooc/internal/core"
	"ooc/internal/msgnet"
	"ooc/internal/sim"
	"ooc/internal/trace"
)

// RunMonolithic executes classic Ben-Or exactly as the survey
// presentation gives it — one loop, no object boundaries. It is the
// baseline the experiments compare the decomposition against: both
// variants exchange byte-identical message sequences, so any divergence
// in rounds or message counts is attributable to the decomposition.
//
// maxRounds bounds the run (0 = unbounded); rec/node feed the trace.
func RunMonolithic(
	ctx context.Context,
	node msgnet.Endpoint,
	rng *sim.RNG,
	t int,
	v int,
	maxRounds int,
	rec *trace.Recorder,
) (core.Decision[int], error) {
	n := node.N()
	if 2*t >= n {
		return core.Decision[int]{}, fmt.Errorf("benor: t=%d violates 2t < n with n=%d", t, n)
	}
	if v != 0 && v != 1 {
		return core.Decision[int]{}, fmt.Errorf("benor: non-binary input %d", v)
	}
	col := newCollector(node)
	quorum := n - t

	for round := 1; ; round++ {
		if maxRounds > 0 && round > maxRounds {
			return core.Decision[int]{}, fmt.Errorf("after %d rounds: %w", maxRounds, core.ErrNoDecision)
		}
		if err := ctx.Err(); err != nil {
			return core.Decision[int]{}, err
		}
		rec.RoundStart(node.ID(), round)
		col.advance(round)

		if err := node.Broadcast(Report{Round: round, Value: v}); err != nil {
			return core.Decision[int]{}, fmt.Errorf("benor: round %d phase 1: %w", round, err)
		}
		reports, err := col.waitReports(ctx, round, quorum)
		if err != nil {
			return core.Decision[int]{}, err
		}
		counts := [2]int{}
		for _, r := range reports {
			if r.Value == 0 || r.Value == 1 {
				counts[r.Value]++
			}
		}

		out := Ratify{Round: round}
		for w := 0; w <= 1; w++ {
			if 2*counts[w] > n {
				out.Value, out.HasValue = w, true
			}
		}
		if err := node.Broadcast(out); err != nil {
			return core.Decision[int]{}, fmt.Errorf("benor: round %d phase 2: %w", round, err)
		}
		ratifies, err := col.waitRatifies(ctx, round, quorum)
		if err != nil {
			return core.Decision[int]{}, err
		}

		ratifyCount := [2]int{}
		sawRatify := false
		u := 0
		for _, r := range ratifies {
			if r.HasValue && (r.Value == 0 || r.Value == 1) {
				ratifyCount[r.Value]++
				sawRatify = true
				u = r.Value
			}
		}

		switch {
		case ratifyCount[0] > t || ratifyCount[1] > t:
			if ratifyCount[1] > t {
				u = 1
			} else {
				u = 0
			}
			// Same one-round echo as the decomposed VAC (see VAC docs).
			if err := node.Broadcast(Report{Round: round + 1, Value: u}); err != nil {
				return core.Decision[int]{}, fmt.Errorf("benor: round %d commit echo: %w", round, err)
			}
			if err := node.Broadcast(Ratify{Round: round + 1, Value: u, HasValue: true}); err != nil {
				return core.Decision[int]{}, fmt.Errorf("benor: round %d commit echo: %w", round, err)
			}
			rec.Decide(node.ID(), round, u)
			return core.Decision[int]{Value: u, Round: round}, nil
		case sawRatify:
			v = u
		default:
			v = rng.Bit()
		}
	}
}

// RunDecomposed wires the paper's decomposition together: Algorithm 5's
// VAC and Algorithm 6's reconciliator under the generic core.RunVAC
// template. It is the entry point examples and experiments use for "the
// paper's Ben-Or".
func RunDecomposed(
	ctx context.Context,
	node msgnet.Endpoint,
	rng *sim.RNG,
	t int,
	v int,
	opts ...core.Option,
) (core.Decision[int], error) {
	vac, err := NewVAC(node, t)
	if err != nil {
		return core.Decision[int]{}, err
	}
	vac.Instrument(core.OptionsFrom(opts...).Metrics)
	return core.RunVAC[int](ctx, vac, NewReconciliator(rng), v, opts...)
}
