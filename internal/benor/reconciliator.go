package benor

import (
	"context"

	"ooc/internal/core"
	"ooc/internal/sim"
)

// Reconciliator is the paper's Algorithm 6: the stalemate breaker for
// Ben-Or is nothing but a fair coin flip.
//
//	Reconciliator(X, σ, m): return CoinFlip()
//
// Lemma 4: since any value has non-zero probability, eventually all
// vacillating processors flip the same side as the adopt values (or as
// each other), after which VAC convergence commits — the weak-agreement
// guarantee. No validity machinery is needed: for binary consensus with
// at least two processors proposing, both 0 and 1 are valid outputs; and
// in the degenerate all-same-input case VAC convergence commits in round
// one before the reconciliator is ever invoked.
type Reconciliator struct {
	rng *sim.RNG
}

var _ core.Reconciliator[int] = (*Reconciliator)(nil)

// NewReconciliator returns a coin-flip reconciliator driven by rng.
func NewReconciliator(rng *sim.RNG) *Reconciliator {
	return &Reconciliator{rng: rng}
}

// Reconcile implements core.Reconciliator by flipping a fair coin.
func (r *Reconciliator) Reconcile(_ context.Context, _ core.Confidence, _ int, _ int) (int, error) {
	return r.rng.Bit(), nil
}

// BiasedReconciliator flips a coin that lands 1 with probability p. The
// ablation experiments use it to study how coin bias changes expected
// rounds to consensus; p=0.5 recovers the paper's Algorithm 6.
type BiasedReconciliator struct {
	rng *sim.RNG
	p   float64
}

var _ core.Reconciliator[int] = (*BiasedReconciliator)(nil)

// NewBiasedReconciliator returns a reconciliator whose coin shows 1 with
// probability p.
func NewBiasedReconciliator(rng *sim.RNG, p float64) *BiasedReconciliator {
	return &BiasedReconciliator{rng: rng, p: p}
}

// Reconcile implements core.Reconciliator.
func (r *BiasedReconciliator) Reconcile(_ context.Context, _ core.Confidence, _ int, _ int) (int, error) {
	if r.rng.Float64() < r.p {
		return 1, nil
	}
	return 0, nil
}
