package benor_test

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ooc/internal/benor"
	"ooc/internal/core"
	"ooc/internal/netsim"
	"ooc/internal/sim"
)

// ExampleRunDecomposed runs the paper's Ben-Or decomposition — VAC plus
// coin-flip reconciliator under Algorithm 1 — for three processors with
// unanimous inputs, which must commit in round one by VAC convergence.
func ExampleRunDecomposed() {
	const n, tFaults = 3, 1
	nw := netsim.New(n, netsim.WithSeed(1))
	rng := sim.NewRNG(1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	decisions := make([]core.Decision[int], n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d, err := benor.RunDecomposed(ctx, nw.Node(id), rng.Fork(uint64(id)), tFaults, 1,
				core.WithMaxRounds(100))
			if err != nil {
				return
			}
			decisions[id] = d
		}(id)
	}
	wg.Wait()
	for id, d := range decisions {
		fmt.Printf("p%d: %d@%d\n", id, d.Value, d.Round)
	}
	// Output:
	// p0: 1@1
	// p1: 1@1
	// p2: 1@1
}
