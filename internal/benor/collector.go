package benor

import (
	"context"
	"fmt"

	"ooc/internal/msgnet"
)

// collector demultiplexes the endpoint's inbound stream into per-round,
// per-phase buckets. Asynchrony means a processor may receive messages
// for rounds it has not reached yet (buffered) or has already left
// (discarded), and crash-tolerant counting must be per-sender so network
// duplication cannot inflate thresholds.
type collector struct {
	node     msgnet.Endpoint
	reports  map[int]map[int]Report // round -> sender -> message
	ratifies map[int]map[int]Ratify
	floor    int // rounds below this are dead and pruned
}

func newCollector(node msgnet.Endpoint) *collector {
	return &collector{
		node:     node,
		reports:  make(map[int]map[int]Report),
		ratifies: make(map[int]map[int]Ratify),
	}
}

// advance discards all state for rounds below round.
func (c *collector) advance(round int) {
	if round <= c.floor {
		return
	}
	c.floor = round
	for r := range c.reports {
		if r < round {
			delete(c.reports, r)
		}
	}
	for r := range c.ratifies {
		if r < round {
			delete(c.ratifies, r)
		}
	}
}

// absorb files one inbound message into its bucket.
func (c *collector) absorb(m msgnet.Message) error {
	switch p := m.Payload.(type) {
	case Report:
		if p.Round < c.floor {
			return nil
		}
		bucket, ok := c.reports[p.Round]
		if !ok {
			bucket = make(map[int]Report)
			c.reports[p.Round] = bucket
		}
		if _, dup := bucket[m.From]; !dup {
			bucket[m.From] = p
		}
	case Ratify:
		if p.Round < c.floor {
			return nil
		}
		bucket, ok := c.ratifies[p.Round]
		if !ok {
			bucket = make(map[int]Ratify)
			c.ratifies[p.Round] = bucket
		}
		if _, dup := bucket[m.From]; !dup {
			bucket[m.From] = p
		}
	default:
		return fmt.Errorf("benor: unexpected message type %T from %d", m.Payload, m.From)
	}
	return nil
}

// waitReports blocks until at least k distinct senders' phase-1 messages
// for round are buffered, then returns them.
func (c *collector) waitReports(ctx context.Context, round, k int) (map[int]Report, error) {
	for len(c.reports[round]) < k {
		m, err := c.node.Recv(ctx)
		if err != nil {
			return nil, fmt.Errorf("benor: waiting for %d reports in round %d: %w", k, round, err)
		}
		if err := c.absorb(m); err != nil {
			return nil, err
		}
	}
	return c.reports[round], nil
}

// waitRatifies blocks until at least k distinct senders' phase-2 messages
// for round are buffered, then returns them.
func (c *collector) waitRatifies(ctx context.Context, round, k int) (map[int]Ratify, error) {
	for len(c.ratifies[round]) < k {
		m, err := c.node.Recv(ctx)
		if err != nil {
			return nil, fmt.Errorf("benor: waiting for %d ratifies in round %d: %w", k, round, err)
		}
		if err := c.absorb(m); err != nil {
			return nil, err
		}
	}
	return c.ratifies[round], nil
}
