package benor

import (
	"context"
	"fmt"

	"ooc/internal/core"
	"ooc/internal/metrics"
	"ooc/internal/msgnet"
)

// VAC is the paper's Algorithm 5: Ben-Or's round body packaged as a
// vacillate-adopt-commit object.
//
//	VAC(v, m):
//	  send <1, v> to all
//	  wait to receive n−t <1, *> messages
//	  if received more than n/2 <1, w> messages (same w):
//	      send <2, w, ratify> to all
//	  else:
//	      send <2, ?> to all
//	  wait to receive n−t <2, *> messages
//	  if received more than t <2, u, ratify>:  return (commit, u)
//	  elif received a  <2, u, ratify>:         return (adopt, u)
//	  else:                                    return (vacillate, v)
//
// The object is stateful per processor: it owns the endpoint's inbound
// stream and buffers messages across rounds. It is not safe for
// concurrent Propose calls (the template is strictly sequential).
//
// On commit the object broadcasts its round-(m+1) messages before
// returning, so that processors that halt after deciding (as the paper's
// template prescribes) do not starve slower processors of the n−t quorum
// they need to finish the next round. Lemma 5's coherence guarantees that
// after a round-m commit every live processor enters round m+1 with the
// committed value, so one echo round is exactly enough for them all to
// commit at m+1.
type VAC struct {
	node msgnet.Endpoint
	t    int
	col  *collector

	// Protocol-level counters; nil without Instrument, and nil counters
	// no-op, so Propose carries no metric branches.
	rounds    *metrics.Counter
	ratified  *metrics.Counter // phase-2 broadcasts that carried a value
	questions *metrics.Counter // phase-2 broadcasts that asked "?"
}

var _ core.VacillateAdoptCommit[int] = (*VAC)(nil)

// NewVAC returns the Ben-Or VAC for this processor. t is the crash-fault
// tolerance and must satisfy 2t < n.
func NewVAC(node msgnet.Endpoint, t int) (*VAC, error) {
	if n := node.N(); 2*t >= n {
		return nil, fmt.Errorf("benor: t=%d violates 2t < n with n=%d", t, n)
	}
	if t < 0 {
		return nil, fmt.Errorf("benor: negative fault bound t=%d", t)
	}
	return &VAC{node: node, t: t, col: newCollector(node)}, nil
}

// Instrument attaches protocol-level counters: rounds run, and how often
// phase 2 ratified a majority value versus asking "?". The ratio is the
// protocol's own view of how close it is to convergence.
func (va *VAC) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	va.rounds = reg.Counter("benor_vac_rounds_total")
	va.ratified = reg.Counter("benor_vac_ratify_value_total")
	va.questions = reg.Counter("benor_vac_ratify_question_total")
}

// Propose implements core.VacillateAdoptCommit for binary values.
func (va *VAC) Propose(ctx context.Context, v int, round int) (core.Confidence, int, error) {
	if v != 0 && v != 1 {
		return 0, 0, fmt.Errorf("benor: non-binary input %d", v)
	}
	n := va.node.N()
	quorum := n - va.t
	va.col.advance(round)
	va.rounds.Inc(va.node.ID())

	// Phase 1: report the current preference.
	if err := va.node.Broadcast(Report{Round: round, Value: v}); err != nil {
		return 0, 0, fmt.Errorf("benor: round %d phase 1: %w", round, err)
	}
	reports, err := va.col.waitReports(ctx, round, quorum)
	if err != nil {
		return 0, 0, err
	}
	counts := [2]int{}
	for _, r := range reports {
		if r.Value == 0 || r.Value == 1 {
			counts[r.Value]++
		}
	}

	// Phase 2: ratify a strict majority value, or ask "?".
	out := Ratify{Round: round}
	for w := 0; w <= 1; w++ {
		if 2*counts[w] > n {
			out.Value, out.HasValue = w, true
		}
	}
	if out.HasValue {
		va.ratified.Inc(va.node.ID())
	} else {
		va.questions.Inc(va.node.ID())
	}
	if err := va.node.Broadcast(out); err != nil {
		return 0, 0, fmt.Errorf("benor: round %d phase 2: %w", round, err)
	}
	ratifies, err := va.col.waitRatifies(ctx, round, quorum)
	if err != nil {
		return 0, 0, err
	}

	ratifyCount := [2]int{}
	sawRatify := false
	u := 0
	for _, r := range ratifies {
		if r.HasValue && (r.Value == 0 || r.Value == 1) {
			ratifyCount[r.Value]++
			sawRatify = true
			u = r.Value
		}
	}

	switch {
	case ratifyCount[0] > va.t || ratifyCount[1] > va.t:
		if ratifyCount[1] > va.t {
			u = 1
		} else {
			u = 0
		}
		// Echo the next round before the template halts us (see type
		// comment).
		if err := va.node.Broadcast(Report{Round: round + 1, Value: u}); err != nil {
			return 0, 0, fmt.Errorf("benor: round %d commit echo: %w", round, err)
		}
		if err := va.node.Broadcast(Ratify{Round: round + 1, Value: u, HasValue: true}); err != nil {
			return 0, 0, fmt.Errorf("benor: round %d commit echo: %w", round, err)
		}
		return core.Commit, u, nil
	case sawRatify:
		return core.Adopt, u, nil
	default:
		return core.Vacillate, v, nil
	}
}
