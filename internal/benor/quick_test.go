package benor

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"ooc/internal/msgnet"
	"ooc/internal/netsim"
)

// TestCollectorDedupProperty: for any sequence of (sender, round, value)
// triples, the collector counts at most one report per sender per round,
// and never counts messages from pruned rounds.
func TestCollectorDedupProperty(t *testing.T) {
	f := func(raw []uint8, floorRaw uint8) bool {
		nw := netsim.New(1)
		c := newCollector(nw.Node(0))
		floor := int(floorRaw) % 4
		c.advance(floor)

		type key struct{ round, sender int }
		want := map[key]bool{}
		for i := 0; i+2 < len(raw); i += 3 {
			sender := int(raw[i]) % 5
			round := int(raw[i+1]) % 6
			value := int(raw[i+2]) % 2
			if err := c.absorb(msgnet.Message{From: sender, Payload: Report{Round: round, Value: value}}); err != nil {
				return false
			}
			if round >= floor {
				want[key{round, sender}] = true
			}
		}
		got := 0
		for round, bucket := range c.reports {
			if round < floor {
				return false // pruned round resurfaced
			}
			got += len(bucket)
		}
		return got == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCollectorRejectsForeignPayloads: any non-protocol payload is an
// error, never a silent misclassification.
func TestCollectorRejectsForeignPayloads(t *testing.T) {
	nw := netsim.New(1)
	c := newCollector(nw.Node(0))
	if err := c.absorb(msgnet.Message{From: 0, Payload: "not-a-benor-message"}); err == nil {
		t.Fatal("foreign payload absorbed")
	}
	if err := c.absorb(msgnet.Message{From: 0, Payload: 42}); err == nil {
		t.Fatal("foreign payload absorbed")
	}
}

// TestVACRoundOutcomeProperty: across random small configurations with
// no crashes, one VAC round never violates the paper's guarantees. This
// is the quick-check analogue of TestVACSingleRoundProperties.
func TestVACRoundOutcomeProperty(t *testing.T) {
	f := func(seed uint64, inputBits uint8) bool {
		n := 3 + int(seed%3) // 3..5
		tFaults := (n - 1) / 2
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = int(inputBits>>i) & 1
		}
		outs := make([]struct {
			conf int
			val  int
		}, n)
		nw := netsim.New(n, netsim.WithSeed(seed))
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		errs := make(chan error, n)
		done := make(chan int, n)
		for id := 0; id < n; id++ {
			go func(id int) {
				vac, err := NewVAC(nw.Node(id), tFaults)
				if err != nil {
					errs <- err
					return
				}
				conf, v, err := vac.Propose(ctx, inputs[id], 1)
				if err != nil {
					errs <- err
					return
				}
				outs[id].conf, outs[id].val = int(conf), v
				done <- id
			}(id)
		}
		for i := 0; i < n; i++ {
			select {
			case <-done:
			case err := <-errs:
				t.Logf("round error: %v", err)
				return false
			}
		}
		// Coherence over adopt & commit on values.
		committed := -1
		for _, o := range outs {
			if o.conf == 3 { // core.Commit
				committed = o.val
			}
		}
		if committed >= 0 {
			for _, o := range outs {
				if o.val != committed || o.conf == 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
