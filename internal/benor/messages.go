// Package benor implements Ben-Or's randomized binary consensus
// (Ben-Or, PODC 1983) in the asynchronous message-passing model with
// t < n/2 crash failures, in two forms:
//
//   - the paper's decomposition (Section 4.2): a VacillateAdoptCommit
//     object (Algorithm 5) and a coin-flip Reconciliator (Algorithm 6),
//     run under the generic core.RunVAC template, and
//   - the classic monolithic protocol (following Aspnes's survey
//     presentation), used as the baseline the decomposition is compared
//     against in the experiments.
//
// Values are binary (0 or 1), as in the original protocol.
package benor

import "fmt"

// Report is the phase-1 message <1, v>: the sender reports its current
// preference for the round.
type Report struct {
	Round int
	Value int
}

// String implements fmt.Stringer for readable traces.
func (r Report) String() string { return fmt.Sprintf("<1,%d>@%d", r.Value, r.Round) }

// Ratify is the phase-2 message: <2, v, ratify> when HasValue is true,
// or the question mark <2, ?> when false.
type Ratify struct {
	Round    int
	Value    int
	HasValue bool
}

// String implements fmt.Stringer for readable traces.
func (r Ratify) String() string {
	if r.HasValue {
		return fmt.Sprintf("<2,%d,ratify>@%d", r.Value, r.Round)
	}
	return fmt.Sprintf("<2,?>@%d", r.Round)
}

// WireTypes lists every message type this package puts on the network,
// for registration with gob-based transports.
func WireTypes() []any {
	return []any{Report{}, Ratify{}}
}
