package benor

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ooc/internal/core"
	"ooc/internal/msgnet"
	"ooc/internal/netsim"
	"ooc/internal/sim"
)

// result is one processor's outcome in a cluster run.
type result struct {
	id       int
	decision core.Decision[int]
	err      error
}

// runCluster executes fn for every processor concurrently and returns the
// per-processor results. fn is typically RunDecomposed or RunMonolithic.
func runCluster(
	t *testing.T,
	n int,
	fn func(ctx context.Context, id int) (core.Decision[int], error),
) []result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results := make([]result, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d, err := fn(ctx, id)
			results[id] = result{id: id, decision: d, err: err}
		}(id)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(35 * time.Second):
		t.Fatal("cluster run deadlocked")
	}
	return results
}

// checkAgreementValidity asserts consensus safety over the successful
// results: all decided the same value, and that value was proposed.
func checkAgreementValidity(t *testing.T, results []result, inputs []int) int {
	t.Helper()
	decided := -1
	count := 0
	for _, r := range results {
		if r.err != nil {
			continue
		}
		count++
		if decided == -1 {
			decided = r.decision.Value
		} else if r.decision.Value != decided {
			t.Fatalf("agreement violated: node %d decided %d, others %d", r.id, r.decision.Value, decided)
		}
	}
	if count == 0 {
		t.Fatal("no processor decided")
	}
	valid := false
	for _, in := range inputs {
		if in == decided {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("validity violated: decided %d, inputs %v", decided, inputs)
	}
	return decided
}

func TestDecomposedAllSameInputCommitsRoundOne(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		tFaults := (n - 1) / 2
		nw := netsim.New(n, netsim.WithSeed(uint64(n)))
		rng := sim.NewRNG(99)
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = 1
		}
		results := runCluster(t, n, func(ctx context.Context, id int) (core.Decision[int], error) {
			return RunDecomposed(ctx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id],
				core.WithMaxRounds(50))
		})
		v := checkAgreementValidity(t, results, inputs)
		if v != 1 {
			t.Fatalf("n=%d: decided %d with unanimous input 1", n, v)
		}
		for _, r := range results {
			if r.err != nil {
				t.Fatalf("n=%d node %d: %v", n, r.id, r.err)
			}
			if r.decision.Round != 1 {
				t.Fatalf("n=%d node %d decided in round %d, convergence demands round 1", n, r.id, r.decision.Round)
			}
		}
	}
}

func TestDecomposedSplitInputsReachConsensus(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		n := 5
		tFaults := 2
		nw := netsim.New(n, netsim.WithSeed(seed))
		rng := sim.NewRNG(seed * 31)
		inputs := []int{0, 1, 0, 1, 0}
		results := runCluster(t, n, func(ctx context.Context, id int) (core.Decision[int], error) {
			return RunDecomposed(ctx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id],
				core.WithMaxRounds(200))
		})
		checkAgreementValidity(t, results, inputs)
		for _, r := range results {
			if r.err != nil {
				t.Fatalf("seed %d node %d: %v", seed, r.id, r.err)
			}
		}
	}
}

func TestDecomposedToleratesCrashes(t *testing.T) {
	const n, tFaults = 7, 3
	for seed := uint64(0); seed < 5; seed++ {
		nw := netsim.New(n, netsim.WithSeed(seed))
		rng := sim.NewRNG(seed)
		inputs := []int{0, 1, 0, 1, 0, 1, 0}
		// Crash 3 processors: one immediately, one after 5 sends (mid
		// first broadcast), one after 20 sends.
		nw.Crash(6)
		nw.CrashAfterSends(5, 5)
		nw.CrashAfterSends(4, 20)
		results := runCluster(t, n, func(ctx context.Context, id int) (core.Decision[int], error) {
			return RunDecomposed(ctx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id],
				core.WithMaxRounds(300))
		})
		live := results[:4]
		for _, r := range live {
			if r.err != nil {
				t.Fatalf("seed %d: live node %d failed: %v", seed, r.id, r.err)
			}
		}
		checkAgreementValidity(t, live, inputs)
	}
}

func TestMonolithicMatchesDecomposedSafety(t *testing.T) {
	const n, tFaults = 5, 2
	inputs := []int{1, 0, 1, 0, 1}
	for seed := uint64(0); seed < 6; seed++ {
		nwM := netsim.New(n, netsim.WithSeed(seed))
		rngM := sim.NewRNG(seed)
		mono := runCluster(t, n, func(ctx context.Context, id int) (core.Decision[int], error) {
			return RunMonolithic(ctx, nwM.Node(id), rngM.Fork(uint64(id)), tFaults, inputs[id], 200, nil)
		})
		checkAgreementValidity(t, mono, inputs)

		nwD := netsim.New(n, netsim.WithSeed(seed))
		rngD := sim.NewRNG(seed)
		dec := runCluster(t, n, func(ctx context.Context, id int) (core.Decision[int], error) {
			return RunDecomposed(ctx, nwD.Node(id), rngD.Fork(uint64(id)), tFaults, inputs[id],
				core.WithMaxRounds(200))
		})
		checkAgreementValidity(t, dec, inputs)
	}
}

func TestVACRejectsBadParameters(t *testing.T) {
	nw := netsim.New(4)
	if _, err := NewVAC(nw.Node(0), 2); err == nil {
		t.Fatal("t=2, n=4 accepted (violates 2t<n)")
	}
	if _, err := NewVAC(nw.Node(0), -1); err == nil {
		t.Fatal("negative t accepted")
	}
	vac, err := NewVAC(nw.Node(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := vac.Propose(context.Background(), 7, 1); err == nil {
		t.Fatal("non-binary input accepted")
	}
}

func TestMonolithicRejectsBadParameters(t *testing.T) {
	nw := netsim.New(4)
	rng := sim.NewRNG(1)
	if _, err := RunMonolithic(context.Background(), nw.Node(0), rng, 2, 0, 10, nil); err == nil {
		t.Fatal("t=2, n=4 accepted")
	}
	if _, err := RunMonolithic(context.Background(), nw.Node(0), rng, 1, 5, 10, nil); err == nil {
		t.Fatal("non-binary input accepted")
	}
}

// vacOutcome is one processor's single-round VAC output.
type vacOutcome struct {
	id   int
	conf core.Confidence
	val  int
	err  error
}

// oneVACRound runs a single VAC.Propose on every processor concurrently.
func oneVACRound(t *testing.T, n, tFaults int, inputs []int, seed uint64) []vacOutcome {
	t.Helper()
	nw := netsim.New(n, netsim.WithSeed(seed))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	outs := make([]vacOutcome, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			vac, err := NewVAC(nw.Node(id), tFaults)
			if err != nil {
				outs[id] = vacOutcome{id: id, err: err}
				return
			}
			c, v, err := vac.Propose(ctx, inputs[id], 1)
			outs[id] = vacOutcome{id: id, conf: c, val: v, err: err}
		}(id)
	}
	wg.Wait()
	return outs
}

// checkVACProperties asserts the paper's four VAC guarantees on a set of
// single-round outcomes.
func checkVACProperties(t *testing.T, outs []vacOutcome, inputs []int) {
	t.Helper()
	sawCommit, sawAdopt := false, false
	commitVal, adoptVal := 0, 0
	for _, o := range outs {
		if o.err != nil {
			t.Fatalf("node %d: %v", o.id, o.err)
		}
		switch o.conf {
		case core.Commit:
			if sawCommit && o.val != commitVal {
				t.Fatalf("two commits with different values: %d vs %d", o.val, commitVal)
			}
			sawCommit, commitVal = true, o.val
		case core.Adopt:
			if sawAdopt && o.val != adoptVal {
				t.Fatalf("two adopts with different values: %d vs %d", o.val, adoptVal)
			}
			sawAdopt, adoptVal = true, o.val
		}
	}
	// Coherence over adopt & commit: a commit forbids vacillate anywhere
	// and fixes everyone's value.
	if sawCommit {
		for _, o := range outs {
			if o.conf == core.Vacillate {
				t.Fatalf("node %d vacillated while node committed %d", o.id, commitVal)
			}
			if o.val != commitVal {
				t.Fatalf("node %d carries %d; committed value is %d", o.id, o.val, commitVal)
			}
		}
	}
	// Coherence over vacillate & adopt: without commits, all adopts agree
	// (checked above via adoptVal).
	// Validity: every returned value was some processor's input.
	for _, o := range outs {
		valid := false
		for _, in := range inputs {
			if in == o.val {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("node %d returned %d, not an input of %v", o.id, o.val, inputs)
		}
	}
}

func TestVACSingleRoundProperties(t *testing.T) {
	cfgs := []struct{ n, t int }{{3, 1}, {5, 2}, {7, 3}, {9, 4}}
	for _, cfg := range cfgs {
		for seed := uint64(0); seed < 20; seed++ {
			inputs := make([]int, cfg.n)
			rng := sim.NewRNG(seed)
			for i := range inputs {
				inputs[i] = rng.Bit()
			}
			outs := oneVACRound(t, cfg.n, cfg.t, inputs, seed)
			checkVACProperties(t, outs, inputs)
		}
	}
}

func TestVACConvergence(t *testing.T) {
	for _, v := range []int{0, 1} {
		inputs := []int{v, v, v, v, v}
		outs := oneVACRound(t, 5, 2, inputs, 42)
		for _, o := range outs {
			if o.err != nil {
				t.Fatal(o.err)
			}
			if o.conf != core.Commit || o.val != v {
				t.Fatalf("convergence violated: node %d got (%v, %d) with unanimous input %d",
					o.id, o.conf, o.val, v)
			}
		}
	}
}

func TestVACSurvivesDuplicatedMessages(t *testing.T) {
	// Per-sender deduplication must keep thresholds honest even when the
	// network duplicates every message.
	const n, tFaults = 5, 2
	nw := netsim.New(n, netsim.WithSeed(3), netsim.WithDupRate(1))
	rng := sim.NewRNG(17)
	inputs := []int{1, 1, 1, 1, 1}
	results := runCluster(t, n, func(ctx context.Context, id int) (core.Decision[int], error) {
		return RunDecomposed(ctx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id],
			core.WithMaxRounds(50))
	})
	for _, r := range results {
		if r.err != nil {
			t.Fatalf("node %d: %v", r.id, r.err)
		}
		if r.decision.Value != 1 {
			t.Fatalf("node %d decided %d", r.id, r.decision.Value)
		}
	}
}

func TestReconciliatorIsAFairCoin(t *testing.T) {
	r := NewReconciliator(sim.NewRNG(7))
	ones := 0
	const k = 10000
	for i := 0; i < k; i++ {
		v, err := r.Reconcile(context.Background(), core.Vacillate, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 && v != 1 {
			t.Fatalf("coin produced %d", v)
		}
		ones += v
	}
	if ones < k*45/100 || ones > k*55/100 {
		t.Fatalf("coin produced %d/%d ones", ones, k)
	}
}

func TestBiasedReconciliator(t *testing.T) {
	for _, p := range []float64{0, 0.25, 1} {
		r := NewBiasedReconciliator(sim.NewRNG(5), p)
		ones := 0
		const k = 8000
		for i := 0; i < k; i++ {
			v, err := r.Reconcile(context.Background(), core.Vacillate, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			ones += v
		}
		got := float64(ones) / k
		if got < p-0.03 || got > p+0.03 {
			t.Fatalf("p=%v: observed frequency %v", p, got)
		}
	}
}

func TestDecomposedCrashedNodeReturnsError(t *testing.T) {
	nw := netsim.New(3, netsim.WithSeed(1))
	nw.Crash(0)
	rng := sim.NewRNG(1)
	_, err := RunDecomposed(context.Background(), nw.Node(0), rng, 1, 0, core.WithMaxRounds(10))
	if !errors.Is(err, msgnet.ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
}

func TestMessageStrings(t *testing.T) {
	if got := (Report{Round: 2, Value: 1}).String(); got != "<1,1>@2" {
		t.Errorf("Report.String() = %q", got)
	}
	if got := (Ratify{Round: 3, Value: 0, HasValue: true}).String(); got != "<2,0,ratify>@3" {
		t.Errorf("Ratify.String() = %q", got)
	}
	if got := (Ratify{Round: 3}).String(); got != "<2,?>@3" {
		t.Errorf("question Ratify.String() = %q", got)
	}
	if got := len(WireTypes()); got != 2 {
		t.Errorf("WireTypes() has %d entries", got)
	}
}
