package netsim

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ooc/internal/metrics"
	"ooc/internal/msgnet"
	"ooc/internal/trace"
)

// fingerprint renders a trace's semantic content — kinds, endpoints,
// payloads, sizes, and sequence — as comparable strings.
func fingerprint(tr trace.Trace) []string {
	out := make([]string, 0, len(tr.Events))
	for _, ev := range tr.Events {
		out = append(out, fmt.Sprintf("%d %v n=%d p=%d r=%d b=%d v=%v",
			ev.Seq, ev.Kind, ev.Node, ev.Peer, ev.Round, ev.Bytes, ev.Value))
	}
	return out
}

// queued reports how many messages are pending for id (test-only peek).
func queued(nw *Network, id int) int {
	b := &nw.boxes[id]
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue) - b.head
}

// drain pops every pending message for id through the endpoint path.
func drain(t *testing.T, nw *Network, id int) []any {
	t.Helper()
	var got []any
	for queued(nw, id) > 0 {
		m, err := nw.Node(id).Recv(ctxT(t))
		if err != nil {
			t.Fatalf("drain node %d: %v", id, err)
		}
		got = append(got, m.Payload)
	}
	return got
}

// TestSameSeedIdenticalTrace is the sharded simulator's determinism
// regression: one deterministic driver exercising broadcasts, direct
// sends, drop and duplication coins, a mid-broadcast quota crash, and
// adversarially reordered receives must produce a bit-identical event
// trace — the same sends, drops, delivers, and decisions, in the same
// order with the same sequence numbers — on every run with the same root
// seed.
func TestSameSeedIdenticalTrace(t *testing.T) {
	run := func(seed uint64) []string {
		const n = 5
		rec := trace.NewRecorder()
		nw := New(n, WithSeed(seed), WithRecorder(rec), WithDropRate(0.2), WithDupRate(0.2))
		nw.CrashAfterSends(4, 7) // node 4 dies mid-broadcast in round 2
		for round := 1; round <= 3; round++ {
			for id := 0; id < n; id++ {
				if err := nw.Node(id).Broadcast(fmt.Sprintf("r%d-from%d", round, id)); err != nil {
					if id != 4 {
						t.Fatalf("broadcast from %d: %v", id, err)
					}
					continue
				}
				if err := nw.Node(id).Send((id+1)%n, round*100+id); err != nil && id != 4 {
					t.Fatalf("send from %d: %v", id, err)
				}
			}
			// Interleave receives with sends: each live node pops half its
			// backlog through the adversarial reorderer, then "decides".
			for id := 0; id < n; id++ {
				if nw.Crashed(id) {
					continue
				}
				for k := queued(nw, id) / 2; k > 0; k-- {
					m, err := nw.Node(id).Recv(ctxT(t))
					if err != nil {
						t.Fatalf("recv node %d: %v", id, err)
					}
					rec.Deliver(id, m.From, round, nil) // extra per-round marker
				}
				rec.Decide(id, round, fmt.Sprintf("decision-%d-%d", id, round))
			}
		}
		for id := 0; id < n; id++ {
			if !nw.Crashed(id) {
				drain(t, nw, id)
			}
		}
		return fingerprint(rec.Snapshot())
	}

	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ across identical runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed traces diverge at event %d:\n run1: %s\n run2: %s", i, a[i], b[i])
		}
	}
	if c := run(43); len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces; the seed is not reaching the schedule")
		}
	}
}

// TestReceiverStreamInsulation pins the split-stream contract: a
// receiver's adversarial delivery order is a function of the root seed
// and its own arrival sequence only, so operations on other mailboxes —
// here, a completely different drain interleaving of node 3 — cannot
// perturb node 2's observed order. Under the old single shared RNG this
// fails, because every pop anywhere advanced the one global stream.
func TestReceiverStreamInsulation(t *testing.T) {
	const k = 30
	setup := func() *Network {
		nw := New(4, WithSeed(9))
		for i := 0; i < k; i++ {
			if err := nw.Node(0).Send(2, i); err != nil {
				t.Fatal(err)
			}
			if err := nw.Node(1).Send(3, 100+i); err != nil {
				t.Fatal(err)
			}
		}
		return nw
	}

	// Run A: drain node 2 completely, then node 3.
	nwA := setup()
	orderA := drain(t, nwA, 2)
	drain(t, nwA, 3)

	// Run B: alternate pops between nodes 3 and 2.
	nwB := setup()
	var orderB []any
	for queued(nwB, 2) > 0 || queued(nwB, 3) > 0 {
		if queued(nwB, 3) > 0 {
			if _, err := nwB.Node(3).Recv(ctxT(t)); err != nil {
				t.Fatal(err)
			}
		}
		if queued(nwB, 2) > 0 {
			m, err := nwB.Node(2).Recv(ctxT(t))
			if err != nil {
				t.Fatal(err)
			}
			orderB = append(orderB, m.Payload)
		}
	}

	if len(orderA) != k || len(orderB) != k {
		t.Fatalf("drained %d and %d messages, want %d each", len(orderA), len(orderB), k)
	}
	for i := range orderA {
		if orderA[i] != orderB[i] {
			t.Fatalf("node 2's delivery order depends on node 3's drain interleaving: position %d got %v vs %v\nA: %v\nB: %v",
				i, orderA[i], orderB[i], orderA, orderB)
		}
	}
}

// TestConcurrentEndpointsExchange exercises the sharded hot path from
// truly concurrent endpoints — every node broadcasting and receiving at
// once with a recorder attached — so `go test -race` patrols the mailbox
// shards, split RNG streams, and sharded recorder. Delivery on a
// fault-free network must remain exactly-once.
func TestConcurrentEndpointsExchange(t *testing.T) {
	const n, per = 8, 50
	rec := trace.NewRecorder()
	nw := New(n, WithSeed(77), WithRecorder(rec))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	recvCounts := make([]int, n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ep := nw.Node(id)
			got := 0
			for i := 0; i < per; i++ {
				if err := ep.Broadcast(fmt.Sprintf("b%d-%d", id, i)); err != nil {
					t.Errorf("node %d broadcast: %v", id, err)
					return
				}
				// Interleave receiving so mailboxes stay bounded.
				for queued(nw, id) > 0 {
					if _, err := ep.Recv(ctx); err != nil {
						t.Errorf("node %d recv: %v", id, err)
						return
					}
					got++
				}
			}
			for got < n*per {
				if _, err := ep.Recv(ctx); err != nil {
					t.Errorf("node %d recv: %v", id, err)
					return
				}
				got++
			}
			recvCounts[id] = got
		}(id)
	}
	wg.Wait()
	for id, got := range recvCounts {
		if got != n*per {
			t.Fatalf("node %d received %d messages, want %d", id, got, n*per)
		}
	}
	st := trace.Summarize(rec.Snapshot())
	if st.MessagesSent != n*n*per || st.MessagesDelivered != n*n*per || st.MessagesDropped != 0 {
		t.Fatalf("conservation violated: %+v", st)
	}
}

// TestConcurrentFaultChurn hammers the control plane (crash, restart,
// partition, heal, quotas) while endpoints send and receive, for the race
// detector; it asserts only that the simulator never deadlocks or
// delivers to the wrong node.
func TestConcurrentFaultChurn(t *testing.T) {
	const n = 6
	nw := New(n, WithSeed(5), WithDropRate(0.05), WithDupRate(0.05))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ep := nw.Node(id)
			for i := 0; ctx.Err() == nil && i < 500; i++ {
				_ = ep.Broadcast(i)
				rctx, rcancel := context.WithTimeout(ctx, time.Millisecond)
				if m, err := ep.Recv(rctx); err == nil && m.To != id {
					t.Errorf("node %d received a message addressed to %d", id, m.To)
				}
				rcancel()
			}
		}(id)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ctx.Err() == nil && i < 100; i++ {
			victim := i % n
			switch i % 4 {
			case 0:
				nw.Crash(victim)
			case 1:
				nw.Restart(victim)
			case 2:
				nw.Partition([]int{0, 1, 2}, []int{3, 4, 5})
			case 3:
				nw.Heal()
			}
			nw.CrashAfterSends((victim+1)%n, 50)
			time.Sleep(time.Millisecond)
		}
		for id := 0; id < n; id++ {
			nw.Restart(id)
		}
	}()
	wg.Wait()
	var _ msgnet.Endpoint = nw.Node(0)
}

// TestMetricsMatchTraceSummary is the telemetry layer's ground-truth
// property: the metrics registry and the trace recorder watch the same
// run through independent code paths (atomic counters on the hot path vs
// recorded events folded by Summarize), so for any seeded run — drops,
// duplications, and a mid-broadcast crash included — the two accountings
// must agree exactly on sends, deliveries, drops, and bytes, and every
// mailbox-depth gauge must read zero once the mailboxes are drained.
func TestMetricsMatchTraceSummary(t *testing.T) {
	for _, seed := range []uint64{7, 42, 1337} {
		rec := trace.NewRecorder()
		reg := metrics.NewRegistry()
		const n = 5
		nw := New(n, WithSeed(seed), WithRecorder(rec), WithMetrics(reg),
			WithDropRate(0.2), WithDupRate(0.2))
		nw.CrashAfterSends(4, 7)
		for round := 1; round <= 3; round++ {
			for id := 0; id < n; id++ {
				if err := nw.Node(id).Broadcast(fmt.Sprintf("r%d-from%d", round, id)); err != nil {
					if id != 4 {
						t.Fatalf("broadcast from %d: %v", id, err)
					}
					continue
				}
				if err := nw.Node(id).Send((id+1)%n, round*100+id); err != nil && id != 4 {
					t.Fatalf("send from %d: %v", id, err)
				}
			}
		}
		for id := 0; id < n; id++ {
			if !nw.Crashed(id) {
				drain(t, nw, id)
			}
		}

		stats := trace.Summarize(rec.Snapshot())
		snap := reg.Snapshot()
		for metric, want := range map[string]int{
			"netsim_sends_total":      stats.MessagesSent,
			"netsim_delivers_total":   stats.MessagesDelivered,
			"netsim_drops_total":      stats.MessagesDropped,
			"netsim_sent_bytes_total": stats.BytesSent,
		} {
			if got := snap.Counters[metric]; got != int64(want) {
				t.Fatalf("seed %d: %s = %d, trace says %d", seed, metric, got, want)
			}
		}
		if stats.MessagesSent == 0 {
			t.Fatalf("seed %d: degenerate run, nothing sent", seed)
		}
		for id := 0; id < n; id++ {
			gauge := metrics.Label("netsim_mailbox_depth", "node", fmt.Sprint(id))
			depth, ok := snap.Gauges[gauge]
			if !ok {
				t.Fatalf("seed %d: gauge %s not registered", seed, gauge)
			}
			if want := int64(queued(nw, id)); depth != want {
				t.Fatalf("seed %d: %s = %d, mailbox holds %d", seed, gauge, depth, want)
			}
			if !nw.Crashed(id) && depth != 0 {
				t.Fatalf("seed %d: node %d drained but gauge reads %d", seed, id, depth)
			}
		}
	}
}
