package netsim

import (
	"errors"
	"fmt"
	"sync"

	"ooc/internal/trace"
)

// SyncNetwork models the synchronous message-passing rounds Phase-King
// assumes: in each exchange every live processor submits a vector of
// per-recipient values (Byzantine processors may equivocate by submitting
// different values to different recipients), a barrier waits until all
// live processors have submitted, and then every processor observes the
// full vector of what was sent to it.
//
// A nil entry in the outgoing vector means "send nothing to that
// processor", which is how silent Byzantine behaviour is expressed.
type SyncNetwork struct {
	n   int
	rec *trace.Recorder

	mu        sync.Mutex
	cond      *sync.Cond
	closed    bool
	left      []bool // processors that permanently left the protocol
	round     int
	submitted map[int][]any // this round's outgoing vectors, by sender
	inboxes   [][]any       // assembled once the barrier releases
	pickedUp  map[int]bool
}

// ErrLeft is returned by Exchange after Leave(id).
var ErrLeft = errors.New("netsim: processor has left the synchronous protocol")

// ErrSyncClosed is returned by Exchange after the network is closed.
var ErrSyncClosed = errors.New("netsim: synchronous network closed")

// NewSync creates a synchronous network of n processors. rec may be nil.
func NewSync(n int, rec *trace.Recorder) *SyncNetwork {
	if n <= 0 {
		panic(fmt.Sprintf("netsim: invalid processor count %d", n))
	}
	s := &SyncNetwork{
		n:         n,
		rec:       rec,
		left:      make([]bool, n),
		submitted: make(map[int][]any, n),
		pickedUp:  make(map[int]bool, n),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// N reports the number of processors.
func (s *SyncNetwork) N() int { return s.n }

// Round reports the current exchange number (starting at 0).
func (s *SyncNetwork) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// Leave removes processor id from the protocol permanently (a crash in
// the synchronous model). The barrier stops waiting for it.
func (s *SyncNetwork) Leave(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.left[id] {
		return
	}
	s.left[id] = true
	if s.rec != nil {
		s.rec.Crash(id)
	}
	s.maybeReleaseLocked()
	s.maybeAdvanceLocked()
	s.cond.Broadcast()
}

// Close aborts the network; all blocked Exchange calls fail.
func (s *SyncNetwork) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}

// Exchange performs one synchronous communication step for processor id.
// out must have length n; out[j] is delivered to processor j (nil = send
// nothing). It returns in, where in[j] is what processor j sent to id this
// round (nil if nothing). Exchange blocks until every live processor has
// submitted its vector for the current round.
func (s *SyncNetwork) Exchange(id int, out []any) ([]any, error) {
	if len(out) != s.n {
		return nil, fmt.Errorf("netsim: Exchange vector length %d, want %d", len(out), s.n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.left[id] {
		return nil, ErrLeft
	}
	if s.closed {
		return nil, ErrSyncClosed
	}
	if _, dup := s.submitted[id]; dup {
		return nil, fmt.Errorf("netsim: processor %d submitted twice in round %d", id, s.round)
	}

	myRound := s.round
	vec := make([]any, s.n)
	copy(vec, out)
	s.submitted[id] = vec
	if s.rec != nil {
		for j, v := range vec {
			if v != nil {
				s.rec.Send(id, j, myRound+1, approxSize(v), v)
			}
		}
	}
	s.maybeReleaseLocked()

	// Wait for this round's inboxes to be assembled.
	for s.round == myRound && s.inboxes == nil && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return nil, ErrSyncClosed
	}
	in := s.inboxes[id]
	s.pickedUp[id] = true
	if s.rec != nil {
		for j, v := range in {
			if v != nil {
				s.rec.Deliver(id, j, myRound+1, v)
			}
		}
	}
	s.maybeAdvanceLocked()
	// Wait until the round has advanced so a fast processor cannot submit
	// its next vector into the still-draining round.
	for s.round == myRound && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return nil, ErrSyncClosed
	}
	return in, nil
}

// maybeReleaseLocked assembles the inboxes once all live processors have
// submitted this round's vectors.
func (s *SyncNetwork) maybeReleaseLocked() {
	if s.inboxes != nil {
		return
	}
	live := 0
	for id := 0; id < s.n; id++ {
		if !s.left[id] {
			live++
		}
	}
	if len(s.submitted) < live || live == 0 {
		return
	}
	inboxes := make([][]any, s.n)
	for to := 0; to < s.n; to++ {
		inboxes[to] = make([]any, s.n)
	}
	for from, vec := range s.submitted {
		for to, v := range vec {
			inboxes[to][from] = v
		}
	}
	s.inboxes = inboxes
	s.cond.Broadcast()
}

// maybeAdvanceLocked moves to the next round once every live submitter
// has picked up its inbox.
func (s *SyncNetwork) maybeAdvanceLocked() {
	if s.inboxes == nil {
		// The round has not been released yet; nothing to drain.
		return
	}
	for id := range s.submitted {
		if !s.pickedUp[id] && !s.left[id] {
			return
		}
	}
	s.round++
	s.submitted = make(map[int][]any, s.n)
	s.pickedUp = make(map[int]bool, s.n)
	s.inboxes = nil
	s.cond.Broadcast()
}
