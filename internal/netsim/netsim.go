// Package netsim simulates an asynchronous message-passing network in
// memory. It implements msgnet.Endpoint for each of n processors and puts
// the adversary in charge of delivery: messages are handed to receivers in
// an order chosen by a seeded RNG, may be dropped or duplicated by
// configured fault policies, and processors can be crashed — including in
// the middle of a broadcast, the classic adversarial case for Ben-Or.
//
// The simulation is property-oriented rather than time-oriented: there is
// no virtual clock here (Raft's timers use internal/sim.Clock); asynchrony
// is modelled purely as unbounded reordering, which is all the paper's
// asynchronous algorithms observe.
package netsim

import (
	"context"
	"fmt"
	"sync"

	"ooc/internal/msgnet"
	"ooc/internal/sim"
	"ooc/internal/trace"
)

// Option configures a Network.
type Option func(*Network)

// WithRNG supplies the RNG driving delivery order and fault coin flips.
// The default is a fixed-seed RNG, so unconfigured networks are still
// deterministic.
func WithRNG(rng *sim.RNG) Option {
	return func(n *Network) { n.rng = rng }
}

// WithSeed is shorthand for WithRNG(sim.NewRNG(seed)).
func WithSeed(seed uint64) Option {
	return func(n *Network) { n.rng = sim.NewRNG(seed) }
}

// WithRecorder attaches a trace recorder; nil is legal and discards.
func WithRecorder(rec *trace.Recorder) Option {
	return func(n *Network) { n.rec = rec }
}

// WithDropRate makes the network lose each message independently with
// probability p in [0, 1].
func WithDropRate(p float64) Option {
	return func(n *Network) { n.dropRate = p }
}

// WithDupRate makes the network duplicate each delivered message
// independently with probability p in [0, 1].
func WithDupRate(p float64) Option {
	return func(n *Network) { n.dupRate = p }
}

// WithTamper installs a Byzantine message hook: every sent message passes
// through fn, which may rewrite it, multiply it, or return nil to eat it.
// The hook runs under the network lock and must not call back in.
func WithTamper(fn func(msgnet.Message) []msgnet.Message) Option {
	return func(n *Network) { n.tamper = fn }
}

// WithFIFO disables adversarial reordering: each receiver sees messages in
// arrival order. Useful for isolating reordering effects in tests.
func WithFIFO() Option {
	return func(n *Network) { n.fifo = true }
}

// Network is the simulated network fabric. Create one with New, then hand
// each processor its Endpoint via Node.
type Network struct {
	n        int
	rng      *sim.RNG
	rec      *trace.Recorder
	dropRate float64
	dupRate  float64
	fifo     bool
	tamper   func(msgnet.Message) []msgnet.Message

	mu        sync.Mutex
	closed    bool
	crashed   []bool
	sendQuota []int // -1 = unlimited; counts down to model mid-broadcast crashes
	pending   [][]msgnet.Message
	notify    []chan struct{}
	blocked   [][]bool // blocked[i][j]: messages i -> j are cut (partition)
}

// New creates a simulated network of n processors.
func New(n int, opts ...Option) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("netsim: invalid processor count %d", n))
	}
	nw := &Network{
		n:         n,
		rng:       sim.NewRNG(1),
		crashed:   make([]bool, n),
		sendQuota: make([]int, n),
		pending:   make([][]msgnet.Message, n),
		notify:    make([]chan struct{}, n),
		blocked:   make([][]bool, n),
	}
	for i := range nw.notify {
		nw.notify[i] = make(chan struct{}, 1)
		nw.sendQuota[i] = -1
		nw.blocked[i] = make([]bool, n)
	}
	for _, opt := range opts {
		opt(nw)
	}
	return nw
}

// N reports the number of processors.
func (nw *Network) N() int { return nw.n }

// Node returns processor id's endpoint.
func (nw *Network) Node(id int) msgnet.Endpoint {
	if id < 0 || id >= nw.n {
		panic(fmt.Sprintf("netsim: node id %d out of range [0,%d)", id, nw.n))
	}
	return &endpoint{nw: nw, id: id}
}

// Crash marks processor id as crashed: its sends vanish, and any blocked
// or future Recv returns msgnet.ErrCrashed.
func (nw *Network) Crash(id int) {
	nw.mu.Lock()
	nw.crashed[id] = true
	nw.mu.Unlock()
	nw.rec.Crash(id)
	nw.wake(id)
}

// CrashAfterSends lets processor id successfully send k more individual
// messages, then crashes it. Because Broadcast transmits to recipients in
// a random permutation, this injects the canonical "crash mid-broadcast"
// adversary: an arbitrary subset of recipients sees the final broadcast.
func (nw *Network) CrashAfterSends(id, k int) {
	nw.mu.Lock()
	nw.sendQuota[id] = k
	nw.mu.Unlock()
}

// Restart revives a crashed processor: its mailbox starts empty (whatever
// was in flight while it was down is lost), its send quota is unlimited,
// and Recv works again. A restarted processor is expected to restore its
// own durable state (e.g. raft.Storage) before rejoining the protocol.
func (nw *Network) Restart(id int) {
	nw.mu.Lock()
	nw.crashed[id] = false
	nw.sendQuota[id] = -1
	nw.pending[id] = nil
	nw.mu.Unlock()
	nw.rec.Note(id, "restarted")
}

// Crashed reports whether id has crashed.
func (nw *Network) Crashed(id int) bool {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.crashed[id]
}

// Partition cuts the network into the given groups: messages between
// different groups are dropped until Heal. Processors absent from every
// group are isolated entirely.
func (nw *Network) Partition(groups ...[]int) {
	group := make([]int, nw.n)
	for i := range group {
		group[i] = -1 - i // unique negative: isolated
	}
	for g, members := range groups {
		for _, id := range members {
			group[id] = g
		}
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for i := 0; i < nw.n; i++ {
		for j := 0; j < nw.n; j++ {
			nw.blocked[i][j] = group[i] != group[j]
		}
	}
}

// Heal removes all partition cuts.
func (nw *Network) Heal() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for i := range nw.blocked {
		for j := range nw.blocked[i] {
			nw.blocked[i][j] = false
		}
	}
}

// Close shuts the network down; all blocked Recvs return msgnet.ErrClosed.
func (nw *Network) Close() {
	nw.mu.Lock()
	nw.closed = true
	nw.mu.Unlock()
	for id := range nw.notify {
		nw.wake(id)
	}
}

func (nw *Network) wake(id int) {
	select {
	case nw.notify[id] <- struct{}{}:
	default:
	}
}

// send routes one message, applying crash quota, partition, tampering,
// drop and duplication policies. It reports an error only for local
// conditions (sender crashed / network closed); remote loss is silent, as
// on a real asynchronous network.
func (nw *Network) send(from, to int, payload any) error {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return msgnet.ErrClosed
	}
	if nw.crashed[from] {
		nw.mu.Unlock()
		return msgnet.ErrCrashed
	}
	if q := nw.sendQuota[from]; q == 0 {
		nw.crashed[from] = true
		nw.mu.Unlock()
		nw.rec.Crash(from)
		nw.wake(from)
		return msgnet.ErrCrashed
	} else if q > 0 {
		nw.sendQuota[from] = q - 1
	}

	msgs := []msgnet.Message{{From: from, To: to, Payload: payload}}
	if nw.tamper != nil {
		msgs = nw.tamper(msgs[0])
	}
	type delivery struct {
		to  int
		msg msgnet.Message
	}
	var deliveries []delivery
	var drops []msgnet.Message
	for _, m := range msgs {
		switch {
		case nw.blocked[m.From][m.To], nw.crashed[m.To]:
			// Partitioned or dead receiver: the message is lost. A crashed
			// receiver never reads its mailbox again, so this is
			// observationally a drop.
			drops = append(drops, m)
		case nw.dropRate > 0 && nw.rng.Float64() < nw.dropRate:
			drops = append(drops, m)
		default:
			copies := 1
			if nw.dupRate > 0 && nw.rng.Float64() < nw.dupRate {
				copies = 2
			}
			for c := 0; c < copies; c++ {
				nw.pending[m.To] = append(nw.pending[m.To], m)
				deliveries = append(deliveries, delivery{to: m.To, msg: m})
			}
		}
	}
	nw.mu.Unlock()

	nw.rec.Send(from, to, 0, approxSize(payload), payload)
	for _, d := range drops {
		nw.rec.Drop(d.To, d.From, 0, d.Payload)
	}
	for _, d := range deliveries {
		nw.wake(d.to)
	}
	return nil
}

// recvOne pops one pending message for id, honoring the reordering
// policy. It returns ok=false when nothing is pending.
func (nw *Network) recvOne(id int) (msgnet.Message, bool, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.crashed[id] {
		return msgnet.Message{}, false, msgnet.ErrCrashed
	}
	if nw.closed {
		return msgnet.Message{}, false, msgnet.ErrClosed
	}
	q := nw.pending[id]
	if len(q) == 0 {
		return msgnet.Message{}, false, nil
	}
	idx := 0
	if !nw.fifo && len(q) > 1 {
		idx = nw.rng.Intn(len(q))
	}
	m := q[idx]
	nw.pending[id] = append(q[:idx], q[idx+1:]...)
	return m, true, nil
}

func approxSize(payload any) int {
	// A rough wire-size proxy used only for accounting; the TCP transport
	// measures real encoded sizes.
	return len(fmt.Sprintf("%v", payload))
}

type endpoint struct {
	nw *Network
	id int
}

var _ msgnet.Endpoint = (*endpoint)(nil)

func (e *endpoint) ID() int { return e.id }
func (e *endpoint) N() int  { return e.nw.n }

func (e *endpoint) Send(to int, payload any) error {
	if to < 0 || to >= e.nw.n {
		return fmt.Errorf("netsim: send to invalid node %d", to)
	}
	return e.nw.send(e.id, to, payload)
}

// Broadcast sends to every processor in a random permutation so that a
// send-quota crash cuts the broadcast at an adversarially chosen subset.
func (e *endpoint) Broadcast(payload any) error {
	order := e.nw.rng.Perm(e.nw.n)
	for _, to := range order {
		if err := e.nw.send(e.id, to, payload); err != nil {
			return fmt.Errorf("broadcast from %d interrupted: %w", e.id, err)
		}
	}
	return nil
}

func (e *endpoint) Recv(ctx context.Context) (msgnet.Message, error) {
	for {
		// Check cancellation before draining: a receiver whose context is
		// dead must not steal messages from a successor on the same
		// endpoint (crash-recovery boots a fresh node on the old id).
		if err := ctx.Err(); err != nil {
			return msgnet.Message{}, err
		}
		m, ok, err := e.nw.recvOne(e.id)
		if err != nil {
			return msgnet.Message{}, err
		}
		if ok {
			e.nw.rec.Deliver(e.id, m.From, 0, m.Payload)
			return m, nil
		}
		select {
		case <-ctx.Done():
			return msgnet.Message{}, ctx.Err()
		case <-e.nw.notify[e.id]:
		}
	}
}
