// Package netsim simulates an asynchronous message-passing network in
// memory. It implements msgnet.Endpoint for each of n processors and puts
// the adversary in charge of delivery: messages are handed to receivers in
// an order chosen by a seeded RNG, may be dropped or duplicated by
// configured fault policies, and processors can be crashed — including in
// the middle of a broadcast, the classic adversarial case for Ben-Or.
//
// The simulation is property-oriented rather than time-oriented: there is
// no virtual clock here (Raft's timers use internal/sim.Clock); asynchrony
// is modelled purely as unbounded reordering, which is all the paper's
// asynchronous algorithms observe.
//
// # Sharding and determinism
//
// The hot path is sharded so concurrent processors do not serialize on a
// single network lock. Each receiver owns a mailbox shard (its own mutex,
// queue, and notify channel), and randomness is split off the root seed
// into private per-processor streams via sim.RNG.Split: stream
// ("send", i) drives processor i's broadcast permutations and drop/dup
// coin flips, and stream ("recv", i) drives the adversarial pop order of
// i's mailbox. Because every draw a processor observes comes from its own
// streams, the delivery schedule seen by a fixed sequence of operations
// is a pure function of the root seed — replayable bit for bit — while
// operations of different processors proceed in parallel without
// contending. Cross-cutting control state (partitions, crash flags,
// close) sits behind a read-mostly sync.RWMutex that sends and receives
// take only for reading; send quotas decrement via atomics.
package netsim

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"ooc/internal/metrics"
	"ooc/internal/msgnet"
	"ooc/internal/sim"
	"ooc/internal/trace"
)

// Option configures a Network.
type Option func(*Network)

// WithRNG supplies the root RNG from which the per-processor delivery and
// fault streams are split. The default is a fixed-seed RNG, so
// unconfigured networks are still deterministic.
func WithRNG(rng *sim.RNG) Option {
	return func(n *Network) { n.rng = rng }
}

// WithSeed is shorthand for WithRNG(sim.NewRNG(seed)).
func WithSeed(seed uint64) Option {
	return func(n *Network) { n.rng = sim.NewRNG(seed) }
}

// WithRecorder attaches a trace recorder; nil is legal and discards.
func WithRecorder(rec *trace.Recorder) Option {
	return func(n *Network) { n.rec = rec }
}

// WithMetrics attaches a live metrics registry: sends, delivers, drops,
// and payload bytes become counters, and each receiver's mailbox depth a
// gauge. nil is legal and leaves the network uninstrumented (the hot
// path then pays only nil checks); the nil form is a shared no-op so
// uninstrumented callers don't allocate a closure per run.
func WithMetrics(reg *metrics.Registry) Option {
	if reg == nil {
		return noopNetOption
	}
	return func(n *Network) { n.metReg = reg }
}

var noopNetOption = func(*Network) {}

// netMetrics holds the network's pre-registered instruments; the hot
// path writes through these pointers and never touches the registry.
type netMetrics struct {
	sends    *metrics.Counter
	delivers *metrics.Counter
	drops    *metrics.Counter
	bytes    *metrics.Counter
	depth    []*metrics.Gauge // per-receiver mailbox depth
}

func newNetMetrics(reg *metrics.Registry, n int) *netMetrics {
	if reg == nil {
		return nil
	}
	m := &netMetrics{
		sends:    reg.Counter("netsim_sends_total"),
		delivers: reg.Counter("netsim_delivers_total"),
		drops:    reg.Counter("netsim_drops_total"),
		bytes:    reg.Counter("netsim_sent_bytes_total"),
		depth:    make([]*metrics.Gauge, n),
	}
	for i := 0; i < n; i++ {
		m.depth[i] = reg.Gauge(metrics.Label("netsim_mailbox_depth", "node", fmt.Sprint(i)))
	}
	return m
}

// WithDropRate makes the network lose each message independently with
// probability p in [0, 1].
func WithDropRate(p float64) Option {
	return func(n *Network) { n.dropRate = p }
}

// WithDupRate makes the network duplicate each delivered message
// independently with probability p in [0, 1].
func WithDupRate(p float64) Option {
	return func(n *Network) { n.dupRate = p }
}

// WithTamper installs a Byzantine message hook: every sent message passes
// through fn, which may rewrite it, multiply it, or return nil to eat it.
// The hook runs under the network's control lock and must not call back
// in.
func WithTamper(fn func(msgnet.Message) []msgnet.Message) Option {
	return func(n *Network) { n.tamper = fn }
}

// WithFIFO disables adversarial reordering: each receiver sees messages in
// arrival order. Useful for isolating reordering effects in tests.
func WithFIFO() Option {
	return func(n *Network) { n.fifo = true }
}

// mailbox is one receiver's shard: a queue guarded by its own lock plus a
// one-slot notify channel. The queue is consumed from head forward so a
// FIFO pop is O(1), and the adversarial pop swaps the chosen element to
// the head first — also O(1), since the reordering adversary has already
// randomized which index leaves, so no residual order needs preserving.
type mailbox struct {
	mu     sync.Mutex
	head   int
	queue  []msgnet.Message
	notify chan struct{}
}

// put appends a message to the shard.
func (b *mailbox) put(m msgnet.Message) {
	b.mu.Lock()
	b.queue = append(b.queue, m)
	b.mu.Unlock()
}

// pop removes and returns one pending message; idx picks among the live
// region using rng when the adversary may reorder (rng nil means FIFO).
func (b *mailbox) pop(rng *sim.RNG) (msgnet.Message, bool) {
	b.mu.Lock()
	live := len(b.queue) - b.head
	if live == 0 {
		b.mu.Unlock()
		return msgnet.Message{}, false
	}
	idx := b.head
	if rng != nil && live > 1 {
		idx = b.head + rng.Intn(live)
	}
	m := b.queue[idx]
	// Swap-remove against the head, then advance it; zero the vacated
	// slot so retained payloads do not pin memory.
	b.queue[idx] = b.queue[b.head]
	b.queue[b.head] = msgnet.Message{}
	b.head++
	if b.head == len(b.queue) {
		// Drained: rewind onto the same backing array so steady-state
		// traffic stops growing the queue.
		b.head = 0
		b.queue = b.queue[:0]
	}
	b.mu.Unlock()
	return m, true
}

// clear empties the shard (crash-recovery: in-flight traffic is lost).
func (b *mailbox) clear() {
	b.mu.Lock()
	b.head = 0
	b.queue = b.queue[:0]
	b.mu.Unlock()
}

// Network is the simulated network fabric. Create one with New, then hand
// each processor its Endpoint via Node.
type Network struct {
	n        int
	rng      *sim.RNG
	rec      *trace.Recorder
	metReg   *metrics.Registry
	met      *netMetrics
	dropRate float64
	dupRate  float64
	fifo     bool
	tamper   func(msgnet.Message) []msgnet.Message

	// Per-processor shards and streams; the slices are immutable after
	// New, so the hot path indexes them without any lock.
	boxes     []mailbox
	sendRNG   []*sim.RNG // streams Split("send", i): broadcast order, drop/dup coins
	recvRNG   []*sim.RNG // streams Split("recv", i): mailbox pop order
	sendQuota []atomic.Int64

	// Control plane: read-mostly cross-cutting state. Sends and receives
	// take the read side; Crash/Restart/Partition/Heal/Close take the
	// write side.
	mu      sync.RWMutex
	closed  bool
	crashed []bool
	blocked [][]bool // blocked[i][j]: messages i -> j are cut (partition)
}

// New creates a simulated network of n processors.
func New(n int, opts ...Option) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("netsim: invalid processor count %d", n))
	}
	nw := &Network{
		n:         n,
		rng:       sim.NewRNG(1),
		crashed:   make([]bool, n),
		sendQuota: make([]atomic.Int64, n),
		boxes:     make([]mailbox, n),
		blocked:   make([][]bool, n),
	}
	for _, opt := range opts {
		opt(nw)
	}
	nw.met = newNetMetrics(nw.metReg, n)
	nw.sendRNG = make([]*sim.RNG, n)
	nw.recvRNG = make([]*sim.RNG, n)
	for i := 0; i < n; i++ {
		nw.boxes[i].notify = make(chan struct{}, 1)
		nw.sendQuota[i].Store(-1)
		nw.blocked[i] = make([]bool, n)
		nw.sendRNG[i] = nw.rng.Split("send", uint64(i))
		nw.recvRNG[i] = nw.rng.Split("recv", uint64(i))
	}
	return nw
}

// N reports the number of processors.
func (nw *Network) N() int { return nw.n }

// Node returns processor id's endpoint.
func (nw *Network) Node(id int) msgnet.Endpoint {
	if id < 0 || id >= nw.n {
		panic(fmt.Sprintf("netsim: node id %d out of range [0,%d)", id, nw.n))
	}
	return &endpoint{nw: nw, id: id}
}

// Crash marks processor id as crashed: its sends vanish, and any blocked
// or future Recv returns msgnet.ErrCrashed.
func (nw *Network) Crash(id int) {
	nw.mu.Lock()
	nw.crashed[id] = true
	nw.mu.Unlock()
	nw.rec.Crash(id)
	nw.wake(id)
}

// CrashAfterSends lets processor id successfully send k more individual
// messages, then crashes it. Because Broadcast transmits to recipients in
// a random permutation, this injects the canonical "crash mid-broadcast"
// adversary: an arbitrary subset of recipients sees the final broadcast.
func (nw *Network) CrashAfterSends(id, k int) {
	nw.sendQuota[id].Store(int64(k))
}

// Restart revives a crashed processor: its mailbox starts empty (whatever
// was in flight while it was down is lost), its send quota is unlimited,
// and Recv works again. A restarted processor is expected to restore its
// own durable state (e.g. raft.Storage) before rejoining the protocol.
func (nw *Network) Restart(id int) {
	nw.mu.Lock()
	nw.crashed[id] = false
	nw.sendQuota[id].Store(-1)
	nw.boxes[id].clear()
	nw.mu.Unlock()
	if nw.met != nil {
		nw.met.depth[id].Set(0)
	}
	nw.rec.Note(id, "restarted")
}

// Crashed reports whether id has crashed.
func (nw *Network) Crashed(id int) bool {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.crashed[id]
}

// Partition cuts the network into the given groups: messages between
// different groups are dropped until Heal. Processors absent from every
// group are isolated entirely.
func (nw *Network) Partition(groups ...[]int) {
	group := make([]int, nw.n)
	for i := range group {
		group[i] = -1 - i // unique negative: isolated
	}
	for g, members := range groups {
		for _, id := range members {
			group[id] = g
		}
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for i := 0; i < nw.n; i++ {
		for j := 0; j < nw.n; j++ {
			nw.blocked[i][j] = group[i] != group[j]
		}
	}
}

// Heal removes all partition cuts.
func (nw *Network) Heal() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for i := range nw.blocked {
		for j := range nw.blocked[i] {
			nw.blocked[i][j] = false
		}
	}
}

// Close shuts the network down; all blocked Recvs return msgnet.ErrClosed.
func (nw *Network) Close() {
	nw.mu.Lock()
	nw.closed = true
	nw.mu.Unlock()
	for id := range nw.boxes {
		nw.wake(id)
	}
}

func (nw *Network) wake(id int) {
	select {
	case nw.boxes[id].notify <- struct{}{}:
	default:
	}
}

// quotaCrash flips a sender whose quota just ran out into the crashed
// state (the rare path of send).
func (nw *Network) quotaCrash(from int) {
	nw.mu.Lock()
	nw.crashed[from] = true
	nw.mu.Unlock()
	nw.rec.Crash(from)
	nw.wake(from)
}

// send routes one message, applying crash quota, partition, tampering,
// drop and duplication policies. It reports an error only for local
// conditions (sender crashed / network closed); remote loss is silent, as
// on a real asynchronous network. size is the precomputed wire-size proxy
// (0 when no recorder is attached), so a broadcast sizes its payload once
// rather than once per recipient.
func (nw *Network) send(from, to int, payload any, size int) error {
	nw.mu.RLock()
	if nw.closed {
		nw.mu.RUnlock()
		return msgnet.ErrClosed
	}
	if nw.crashed[from] {
		nw.mu.RUnlock()
		return msgnet.ErrCrashed
	}
	for {
		q := nw.sendQuota[from].Load()
		if q < 0 {
			break // unlimited
		}
		if q == 0 {
			nw.mu.RUnlock()
			nw.quotaCrash(from)
			return msgnet.ErrCrashed
		}
		if nw.sendQuota[from].CompareAndSwap(q, q-1) {
			break
		}
	}

	srng := nw.sendRNG[from]
	if nw.tamper == nil && nw.dupRate == 0 {
		// Fast path: one message, at most one copy, no intermediate
		// slices.
		dropped := nw.blocked[from][to] || nw.crashed[to]
		if !dropped && nw.dropRate > 0 && srng.Float64() < nw.dropRate {
			dropped = true
		}
		if !dropped {
			nw.boxes[to].put(msgnet.Message{From: from, To: to, Payload: payload})
		}
		nw.mu.RUnlock()
		if m := nw.met; m != nil {
			m.sends.Inc(from)
			m.bytes.Add(from, int64(size))
			if dropped {
				m.drops.Inc(to)
			} else {
				m.depth[to].Add(1)
			}
		}
		if nw.rec != nil {
			nw.rec.Send(from, to, 0, size, payload)
			if dropped {
				nw.rec.Drop(to, from, 0, payload)
			}
		}
		if !dropped {
			nw.wake(to)
		}
		return nil
	}

	msgs := []msgnet.Message{{From: from, To: to, Payload: payload}}
	if nw.tamper != nil {
		msgs = nw.tamper(msgs[0])
	}
	var delivered []int
	var drops []msgnet.Message
	for _, m := range msgs {
		switch {
		case nw.blocked[m.From][m.To], nw.crashed[m.To]:
			// Partitioned or dead receiver: the message is lost. A crashed
			// receiver never reads its mailbox again, so this is
			// observationally a drop.
			drops = append(drops, m)
		case nw.dropRate > 0 && srng.Float64() < nw.dropRate:
			drops = append(drops, m)
		default:
			copies := 1
			if nw.dupRate > 0 && srng.Float64() < nw.dupRate {
				copies = 2
			}
			for c := 0; c < copies; c++ {
				nw.boxes[m.To].put(m)
				delivered = append(delivered, m.To)
			}
		}
	}
	nw.mu.RUnlock()

	if m := nw.met; m != nil {
		m.sends.Inc(from)
		m.bytes.Add(from, int64(size))
		m.drops.Add(to, int64(len(drops)))
		for _, d := range delivered {
			m.depth[d].Add(1)
		}
	}
	if nw.rec != nil {
		nw.rec.Send(from, to, 0, size, payload)
		for _, d := range drops {
			nw.rec.Drop(d.To, d.From, 0, d.Payload)
		}
	}
	for _, to := range delivered {
		nw.wake(to)
	}
	return nil
}

// recvOne pops one pending message for id, honoring the reordering
// policy. It returns ok=false when nothing is pending.
func (nw *Network) recvOne(id int) (msgnet.Message, bool, error) {
	nw.mu.RLock()
	if nw.crashed[id] {
		nw.mu.RUnlock()
		return msgnet.Message{}, false, msgnet.ErrCrashed
	}
	if nw.closed {
		nw.mu.RUnlock()
		return msgnet.Message{}, false, msgnet.ErrClosed
	}
	nw.mu.RUnlock()
	var rng *sim.RNG
	if !nw.fifo {
		rng = nw.recvRNG[id]
	}
	m, ok := nw.boxes[id].pop(rng)
	return m, ok, nil
}

// approxSize is a rough wire-size proxy used only for accounting (the TCP
// transport measures real encoded sizes). It is a cheap type switch over
// the payload kinds the protocols actually send, falling back to the
// type's shallow size; crucially it never formats the payload.
func approxSize(payload any) int {
	switch v := payload.(type) {
	case nil:
		return 0
	case bool, int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	case int, uint, int64, uint64, uintptr, float64:
		return 8
	case string:
		return len(v)
	case []byte:
		return len(v)
	case msgnet.Tagged:
		// Mux traffic: the wrapper costs its channel tag plus whatever
		// it wraps, so per-channel accounting sees through the envelope.
		return len(v.Channel) + approxSize(v.Payload)
	default:
		if t := reflect.TypeOf(payload); t != nil {
			return int(t.Size())
		}
		return 0
	}
}

type endpoint struct {
	nw *Network
	id int
}

var _ msgnet.Endpoint = (*endpoint)(nil)

func (e *endpoint) ID() int { return e.id }
func (e *endpoint) N() int  { return e.nw.n }

func (e *endpoint) Send(to int, payload any) error {
	if to < 0 || to >= e.nw.n {
		return fmt.Errorf("netsim: send to invalid node %d", to)
	}
	size := 0
	if e.nw.rec != nil || e.nw.met != nil {
		size = approxSize(payload)
	}
	return e.nw.send(e.id, to, payload, size)
}

// Broadcast sends to every processor in a random permutation so that a
// send-quota crash cuts the broadcast at an adversarially chosen subset.
// The permutation is drawn from the sender's private stream, and the
// payload is sized once for the whole broadcast, not once per recipient.
func (e *endpoint) Broadcast(payload any) error {
	size := 0
	if e.nw.rec != nil || e.nw.met != nil {
		size = approxSize(payload)
	}
	order := e.nw.sendRNG[e.id].Perm(e.nw.n)
	for _, to := range order {
		if err := e.nw.send(e.id, to, payload, size); err != nil {
			return fmt.Errorf("broadcast from %d interrupted: %w", e.id, err)
		}
	}
	return nil
}

func (e *endpoint) Recv(ctx context.Context) (msgnet.Message, error) {
	for {
		// Check cancellation before draining: a receiver whose context is
		// dead must not steal messages from a successor on the same
		// endpoint (crash-recovery boots a fresh node on the old id).
		if err := ctx.Err(); err != nil {
			return msgnet.Message{}, err
		}
		m, ok, err := e.nw.recvOne(e.id)
		if err != nil {
			return msgnet.Message{}, err
		}
		if ok {
			if met := e.nw.met; met != nil {
				met.delivers.Inc(e.id)
				met.depth[e.id].Add(-1)
			}
			if e.nw.rec != nil {
				e.nw.rec.Deliver(e.id, m.From, 0, m.Payload)
			}
			return m, nil
		}
		select {
		case <-ctx.Done():
			return msgnet.Message{}, ctx.Err()
		case <-e.nw.boxes[e.id].notify:
		}
	}
}
