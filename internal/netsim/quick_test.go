package netsim

import (
	"context"
	"testing"
	"testing/quick"
	"time"
)

// TestExactlyOnceDeliveryProperty: on a fault-free network, any sequence
// of sends is delivered exactly once as a multiset, regardless of the
// reordering seed.
func TestExactlyOnceDeliveryProperty(t *testing.T) {
	f := func(seed uint64, payloads []uint8) bool {
		if len(payloads) > 64 {
			payloads = payloads[:64]
		}
		nw := New(2, WithSeed(seed))
		want := map[uint8]int{}
		for _, p := range payloads {
			if err := nw.Node(0).Send(1, p); err != nil {
				return false
			}
			want[p]++
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		got := map[uint8]int{}
		for range payloads {
			m, err := nw.Node(1).Recv(ctx)
			if err != nil {
				return false
			}
			got[m.Payload.(uint8)]++
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		// Nothing extra is pending.
		short, c2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
		defer c2()
		_, err := nw.Node(1).Recv(short)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSyncExchangeConservationProperty: in a fault-free synchronous
// exchange, every non-nil value submitted is delivered to exactly its
// addressee, and nothing else appears.
func TestSyncExchangeConservationProperty(t *testing.T) {
	f := func(matrix [9]int8) bool {
		const n = 3
		s := NewSync(n, nil)
		type res struct {
			id int
			in []any
		}
		results := make(chan res, n)
		for id := 0; id < n; id++ {
			go func(id int) {
				out := make([]any, n)
				for to := 0; to < n; to++ {
					v := matrix[id*n+to]
					if v >= 0 { // negatives model silence
						out[to] = int(v)
					}
				}
				in, err := s.Exchange(id, out)
				if err != nil {
					results <- res{id: id, in: nil}
					return
				}
				results <- res{id: id, in: in}
			}(id)
		}
		inboxes := make([][]any, n)
		for i := 0; i < n; i++ {
			r := <-results
			if r.in == nil {
				return false
			}
			inboxes[r.id] = r.in
		}
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				v := matrix[from*n+to]
				got := inboxes[to][from]
				if v >= 0 {
					if got != int(v) {
						return false
					}
				} else if got != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
