package netsim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ooc/internal/msgnet"
	"ooc/internal/trace"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSendRecv(t *testing.T) {
	nw := New(2)
	a, b := nw.Node(0), nw.Node(1)
	if err := a.Send(1, "hello"); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || m.To != 1 || m.Payload != "hello" {
		t.Fatalf("got %+v", m)
	}
}

func TestSendToSelf(t *testing.T) {
	nw := New(1)
	a := nw.Node(0)
	if err := a.Send(0, 42); err != nil {
		t.Fatal(err)
	}
	m, err := a.Recv(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if m.Payload != 42 {
		t.Fatalf("got %+v", m)
	}
}

func TestSendInvalidDestination(t *testing.T) {
	nw := New(2)
	if err := nw.Node(0).Send(7, "x"); err == nil {
		t.Fatal("send to out-of-range node succeeded")
	}
}

func TestBroadcastReachesAllIncludingSelf(t *testing.T) {
	const n = 5
	nw := New(n)
	if err := nw.Node(2).Broadcast("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		m, err := nw.Node(i).Recv(ctxT(t))
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if m.From != 2 || m.Payload != "b" {
			t.Fatalf("node %d got %+v", i, m)
		}
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	nw := New(2)
	got := make(chan msgnet.Message, 1)
	go func() {
		m, err := nw.Node(1).Recv(context.Background())
		if err == nil {
			got <- m
		}
	}()
	select {
	case <-got:
		t.Fatal("Recv returned before any send")
	case <-time.After(20 * time.Millisecond):
	}
	if err := nw.Node(0).Send(1, "x"); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Payload != "x" {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not wake after send")
	}
}

func TestRecvContextCancel(t *testing.T) {
	nw := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := nw.Node(0).Recv(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCrashStopsSendsAndRecvs(t *testing.T) {
	nw := New(2)
	nw.Crash(0)
	if !nw.Crashed(0) {
		t.Fatal("Crashed(0) = false after Crash")
	}
	if err := nw.Node(0).Send(1, "x"); !errors.Is(err, msgnet.ErrCrashed) {
		t.Fatalf("send err = %v, want ErrCrashed", err)
	}
	if _, err := nw.Node(0).Recv(ctxT(t)); !errors.Is(err, msgnet.ErrCrashed) {
		t.Fatalf("recv err = %v, want ErrCrashed", err)
	}
}

func TestCrashWakesBlockedRecv(t *testing.T) {
	nw := New(2)
	errc := make(chan error, 1)
	go func() {
		_, err := nw.Node(1).Recv(context.Background())
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	nw.Crash(1)
	select {
	case err := <-errc:
		if !errors.Is(err, msgnet.ErrCrashed) {
			t.Fatalf("err = %v, want ErrCrashed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Recv not woken by Crash")
	}
}

func TestMessagesToCrashedNodeAreDropped(t *testing.T) {
	rec := trace.NewRecorder()
	nw := New(2, WithRecorder(rec))
	nw.Crash(1)
	if err := nw.Node(0).Send(1, "x"); err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(rec.Snapshot())
	if s.MessagesDropped != 1 {
		t.Fatalf("dropped = %d, want 1: %v", s.MessagesDropped, s)
	}
}

func TestCrashAfterSendsCutsBroadcast(t *testing.T) {
	const n = 10
	rec := trace.NewRecorder()
	nw := New(n, WithSeed(7), WithRecorder(rec))
	nw.CrashAfterSends(0, 4)
	err := nw.Node(0).Broadcast("partial")
	if !errors.Is(err, msgnet.ErrCrashed) {
		t.Fatalf("broadcast err = %v, want ErrCrashed", err)
	}
	if !nw.Crashed(0) {
		t.Fatal("node 0 should be crashed after quota exhausted")
	}
	// Exactly 4 copies of the broadcast left the sender before the crash.
	if s := trace.Summarize(rec.Snapshot()); s.MessagesSent != 4 {
		t.Fatalf("sent = %d messages before crash, want 4 (%v)", s.MessagesSent, s)
	}
}

func TestDropRateOneLosesEverything(t *testing.T) {
	rec := trace.NewRecorder()
	nw := New(2, WithDropRate(1), WithRecorder(rec))
	if err := nw.Node(0).Send(1, "x"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := nw.Node(1).Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("recv err = %v, want deadline exceeded", err)
	}
	if s := trace.Summarize(rec.Snapshot()); s.MessagesDropped != 1 {
		t.Fatalf("stats = %v", s)
	}
}

func TestDupRateOneDuplicatesEverything(t *testing.T) {
	nw := New(2, WithDupRate(1))
	if err := nw.Node(0).Send(1, "x"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m, err := nw.Node(1).Recv(ctxT(t))
		if err != nil || m.Payload != "x" {
			t.Fatalf("copy %d: %v %v", i, m, err)
		}
	}
}

func TestPartitionAndHeal(t *testing.T) {
	nw := New(4)
	nw.Partition([]int{0, 1}, []int{2, 3})
	if err := nw.Node(0).Send(2, "cut"); err != nil {
		t.Fatal(err)
	}
	if err := nw.Node(0).Send(1, "ok"); err != nil {
		t.Fatal(err)
	}
	m, err := nw.Node(1).Recv(ctxT(t))
	if err != nil || m.Payload != "ok" {
		t.Fatalf("intra-partition delivery failed: %v %v", m, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	if _, err := nw.Node(2).Recv(ctx); err == nil {
		t.Fatal("cross-partition message delivered")
	}
	cancel()

	nw.Heal()
	if err := nw.Node(0).Send(2, "healed"); err != nil {
		t.Fatal(err)
	}
	m, err = nw.Node(2).Recv(ctxT(t))
	if err != nil || m.Payload != "healed" {
		t.Fatalf("post-heal delivery failed: %v %v", m, err)
	}
}

func TestPartitionIsolatesUnlistedNodes(t *testing.T) {
	nw := New(3)
	nw.Partition([]int{0, 1}) // node 2 unlisted: isolated
	if err := nw.Node(0).Send(2, "x"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := nw.Node(2).Recv(ctx); err == nil {
		t.Fatal("isolated node received a message")
	}
}

func TestTamperHook(t *testing.T) {
	nw := New(2, WithTamper(func(m msgnet.Message) []msgnet.Message {
		if s, ok := m.Payload.(string); ok && s == "evil" {
			m.Payload = "tampered"
		}
		return []msgnet.Message{m}
	}))
	if err := nw.Node(0).Send(1, "evil"); err != nil {
		t.Fatal(err)
	}
	m, err := nw.Node(1).Recv(ctxT(t))
	if err != nil || m.Payload != "tampered" {
		t.Fatalf("got %v %v", m, err)
	}
}

func TestTamperCanEatMessages(t *testing.T) {
	nw := New(2, WithTamper(func(msgnet.Message) []msgnet.Message { return nil }))
	if err := nw.Node(0).Send(1, "x"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := nw.Node(1).Recv(ctx); err == nil {
		t.Fatal("eaten message was delivered")
	}
}

func TestCloseWakesEveryone(t *testing.T) {
	nw := New(3)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = nw.Node(i).Recv(context.Background())
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	nw.Close()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, msgnet.ErrClosed) {
			t.Fatalf("node %d err = %v, want ErrClosed", i, err)
		}
	}
}

func TestReorderingHappensButDeliversAll(t *testing.T) {
	nw := New(2, WithSeed(3))
	const k = 50
	for i := 0; i < k; i++ {
		if err := nw.Node(0).Send(1, i); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[int]bool, k)
	inOrder := true
	prev := -1
	for i := 0; i < k; i++ {
		m, err := nw.Node(1).Recv(ctxT(t))
		if err != nil {
			t.Fatal(err)
		}
		v := m.Payload.(int)
		if seen[v] {
			t.Fatalf("duplicate delivery of %d", v)
		}
		seen[v] = true
		if v < prev {
			inOrder = false
		}
		prev = v
	}
	if inOrder {
		t.Fatal("50 messages delivered in FIFO order under the reordering adversary; expected shuffling")
	}
}

func TestFIFOOptionPreservesOrder(t *testing.T) {
	nw := New(2, WithFIFO())
	const k = 30
	for i := 0; i < k; i++ {
		if err := nw.Node(0).Send(1, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		m, err := nw.Node(1).Recv(ctxT(t))
		if err != nil {
			t.Fatal(err)
		}
		if m.Payload.(int) != i {
			t.Fatalf("position %d delivered %v under FIFO", i, m.Payload)
		}
	}
}

func TestDeterministicGivenSeedAndSequence(t *testing.T) {
	run := func(seed uint64) []int {
		nw := New(2, WithSeed(seed))
		for i := 0; i < 20; i++ {
			if err := nw.Node(0).Send(1, i); err != nil {
				t.Fatal(err)
			}
		}
		var order []int
		for i := 0; i < 20; i++ {
			m, err := nw.Node(1).Recv(ctxT(t))
			if err != nil {
				t.Fatal(err)
			}
			order = append(order, m.Payload.(int))
		}
		return order
	}
	a, b := run(11), run(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestRestartRevivesCrashedNode(t *testing.T) {
	nw := New(2, WithSeed(1))
	nw.Crash(1)
	if err := nw.Node(0).Send(1, "lost"); err != nil {
		t.Fatal(err)
	}
	nw.Restart(1)
	if nw.Crashed(1) {
		t.Fatal("node still crashed after Restart")
	}
	// In-flight traffic from the dead period is gone...
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	if _, err := nw.Node(1).Recv(ctx); err == nil {
		t.Fatal("message from dead period survived restart")
	}
	cancel()
	// ...but new traffic flows both ways.
	if err := nw.Node(0).Send(1, "fresh"); err != nil {
		t.Fatal(err)
	}
	m, err := nw.Node(1).Recv(ctxT(t))
	if err != nil || m.Payload != "fresh" {
		t.Fatalf("post-restart recv: %v %v", m, err)
	}
	if err := nw.Node(1).Send(0, "reply"); err != nil {
		t.Fatalf("post-restart send: %v", err)
	}
	if m, err := nw.Node(0).Recv(ctxT(t)); err != nil || m.Payload != "reply" {
		t.Fatalf("reply: %v %v", m, err)
	}
}

func TestRestartClearsSendQuota(t *testing.T) {
	nw := New(2, WithSeed(2))
	nw.CrashAfterSends(0, 1)
	_ = nw.Node(0).Send(1, "a") // consumes the quota
	if err := nw.Node(0).Send(1, "b"); err == nil {
		t.Fatal("quota crash did not fire")
	}
	nw.Restart(0)
	for i := 0; i < 5; i++ {
		if err := nw.Node(0).Send(1, i); err != nil {
			t.Fatalf("send %d after restart: %v", i, err)
		}
	}
}
