package netsim

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ooc/internal/trace"
)

// runExchange runs one Exchange for each listed node concurrently and
// returns the per-node inboxes.
func runExchange(t *testing.T, s *SyncNetwork, outs map[int][]any) map[int][]any {
	t.Helper()
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		ins = make(map[int][]any, len(outs))
	)
	for id, out := range outs {
		wg.Add(1)
		go func(id int, out []any) {
			defer wg.Done()
			in, err := s.Exchange(id, out)
			if err != nil {
				t.Errorf("node %d: %v", id, err)
				return
			}
			mu.Lock()
			ins[id] = in
			mu.Unlock()
		}(id, out)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("exchange deadlocked")
	}
	return ins
}

func all(n int, v any) []any {
	out := make([]any, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestSyncExchangeDeliversEverything(t *testing.T) {
	const n = 3
	s := NewSync(n, nil)
	ins := runExchange(t, s, map[int][]any{
		0: all(n, "a"),
		1: all(n, "b"),
		2: all(n, "c"),
	})
	for id := 0; id < n; id++ {
		in := ins[id]
		if in[0] != "a" || in[1] != "b" || in[2] != "c" {
			t.Fatalf("node %d inbox = %v", id, in)
		}
	}
	if s.Round() != 1 {
		t.Fatalf("round = %d after one exchange, want 1", s.Round())
	}
}

func TestSyncEquivocation(t *testing.T) {
	const n = 3
	s := NewSync(n, nil)
	// Node 2 is Byzantine: tells node 0 "x" and node 1 "y".
	ins := runExchange(t, s, map[int][]any{
		0: all(n, 0),
		1: all(n, 1),
		2: {"x", "y", nil},
	})
	if ins[0][2] != "x" || ins[1][2] != "y" {
		t.Fatalf("equivocation not delivered: %v / %v", ins[0], ins[1])
	}
	if ins[2][2] != nil {
		t.Fatalf("nil (silent) entry delivered as %v", ins[2][2])
	}
}

func TestSyncMultipleRounds(t *testing.T) {
	const n, rounds = 4, 5
	s := NewSync(n, nil)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				in, err := s.Exchange(id, all(n, r*10+id))
				if err != nil {
					errs[id] = err
					return
				}
				for from := 0; from < n; from++ {
					if in[from] != r*10+from {
						errs[id] = errors.New("wrong round data")
						return
					}
				}
			}
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
	}
	if s.Round() != rounds {
		t.Fatalf("round = %d, want %d", s.Round(), rounds)
	}
}

func TestSyncLeaveUnblocksBarrier(t *testing.T) {
	const n = 3
	s := NewSync(n, nil)
	// Nodes 0 and 1 exchange; node 2 leaves instead of submitting.
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.Leave(2)
	}()
	ins := runExchange(t, s, map[int][]any{
		0: all(n, "a"),
		1: all(n, "b"),
	})
	if ins[0][1] != "b" || ins[1][0] != "a" {
		t.Fatalf("delivery wrong after leave: %v", ins)
	}
	if ins[0][2] != nil {
		t.Fatalf("left node's slot should be nil, got %v", ins[0][2])
	}
}

func TestSyncLeftNodeCannotExchange(t *testing.T) {
	s := NewSync(2, nil)
	s.Leave(0)
	if _, err := s.Exchange(0, all(2, "x")); !errors.Is(err, ErrLeft) {
		t.Fatalf("err = %v, want ErrLeft", err)
	}
}

func TestSyncDoubleSubmitRejected(t *testing.T) {
	s := NewSync(2, nil)
	done := make(chan error, 1)
	go func() {
		_, err := s.Exchange(0, all(2, "first"))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := s.Exchange(0, all(2, "second")); err == nil {
		t.Fatal("double submit in same round succeeded")
	}
	// Unblock the first call.
	go func() {
		_, _ = s.Exchange(1, all(2, "peer"))
	}()
	if err := <-done; err != nil {
		t.Fatalf("first exchange failed: %v", err)
	}
}

func TestSyncWrongVectorLength(t *testing.T) {
	s := NewSync(3, nil)
	if _, err := s.Exchange(0, all(2, "x")); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestSyncCloseUnblocks(t *testing.T) {
	s := NewSync(2, nil)
	errc := make(chan error, 1)
	go func() {
		_, err := s.Exchange(0, all(2, "x"))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrSyncClosed) {
			t.Fatalf("err = %v, want ErrSyncClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock Exchange")
	}
}

func TestSyncRecordsTraffic(t *testing.T) {
	rec := trace.NewRecorder()
	s := NewSync(2, rec)
	runExchange(t, s, map[int][]any{
		0: all(2, "a"),
		1: {nil, "b"},
	})
	st := trace.Summarize(rec.Snapshot())
	// Node 0 sends 2 (to 0 and 1); node 1 sends only to itself... actually
	// to node 1 only: vector {nil, "b"}. Total sends = 3.
	if st.MessagesSent != 3 {
		t.Fatalf("sends = %d, want 3 (%v)", st.MessagesSent, st)
	}
	if st.MessagesDelivered != 3 {
		t.Fatalf("delivered = %d, want 3", st.MessagesDelivered)
	}
}
