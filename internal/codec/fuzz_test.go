package codec

import (
	"reflect"
	"testing"

	"ooc/internal/msgnet"
	"ooc/internal/raft"
)

// FuzzCodecRoundTrip drives fuzzed field values through every native
// wire type: encode must succeed and decode must return the identical
// message. The fuzzer explores varint boundaries (negative values,
// multi-byte lengths) and string contents the unit tests cannot
// enumerate.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(3, 1, 10, 2, 8, 41, "set", "key", "value", uint8(1), uint8(0))
	f.Add(-1, 0, 0, 0, -5, 0, "", "", "", uint8(0), uint8(3))
	f.Add(1<<40, 2, 1<<32, 7, 99, -3, "delete", "k\x00n", "\xff\xfe", uint8(4), uint8(7))
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g int, op, key, val string, nEntries, kind uint8) {
		es := make([]raft.Entry, int(nEntries)%8)
		for i := range es {
			es[i] = raft.Entry{Term: a + i, Command: raft.KVCommand{Op: op, Key: key, Value: val}}
		}
		var msg any
		switch kind % 10 {
		case 0:
			msg = raft.RequestVote{Term: a, CandidateID: b, LastLogIndex: c, LastLogTerm: d}
		case 1:
			msg = raft.RequestVoteReply{Term: a, VoteGranted: b&1 == 0}
		case 2:
			msg = raft.PreVote{Term: a, CandidateID: b, LastLogIndex: c, LastLogTerm: d}
		case 3:
			msg = raft.PreVoteReply{Term: a, Granted: b&1 == 0}
		case 4:
			msg = raft.AppendEntries{Term: a, LeaderID: b, PrevLogIndex: c, PrevLogTerm: d, Entries: es, LeaderCommit: e, ReadID: g}
		case 5:
			msg = raft.AppendEntriesReply{Term: a, Success: b&1 == 0, MatchIndex: c, RejectHint: d, ReadID: g}
		case 6:
			msg = raft.ReadIndexRequest{Term: a, ID: int64(e), Lease: b&1 == 0}
		case 7:
			msg = raft.ReadIndexReply{Term: a, ID: int64(e), Index: c, Success: b&1 == 0, Lease: d&1 == 0}
		case 8:
			var data []byte
			if len(val) > 0 {
				data = []byte(val)
			}
			msg = raft.InstallSnapshot{Term: a, LeaderID: b, LastIncludedIndex: c, LastIncludedTerm: d, Data: data}
		case 9:
			msg = msgnet.Tagged{Channel: op, Payload: raft.AppendEntries{Term: a, Entries: es}}
		}
		frame, err := Append(nil, msg)
		if err != nil {
			t.Fatalf("encode %#v: %v", msg, err)
		}
		var dec Decoder
		got, err := dec.Decode(frame)
		if err != nil {
			t.Fatalf("decode %#v: %v", msg, err)
		}
		if len(es) == 0 {
			// Empty entry slices decode as nil; normalize before comparing.
			switch m := msg.(type) {
			case raft.AppendEntries:
				m.Entries = nil
				msg = m
			case msgnet.Tagged:
				if ae, ok := m.Payload.(raft.AppendEntries); ok {
					ae.Entries = nil
					m.Payload = ae
					msg = m
				}
			}
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("round trip = %#v, want %#v", got, msg)
		}
	})
}

// FuzzCodecDecode feeds arbitrary bytes to the decoder: it must never
// panic and never allocate absurdly (the length-guarded Reader enforces
// that), and anything it does accept must re-encode and re-decode to
// the same value — corrupt input either errors out or round-trips.
func FuzzCodecDecode(f *testing.F) {
	for _, msg := range []any{
		raft.RequestVote{Term: 3, CandidateID: 1, LastLogIndex: 10, LastLogTerm: 2},
		raft.AppendEntries{
			Term: 5, LeaderID: 0, PrevLogIndex: 9, PrevLogTerm: 4,
			Entries:      []raft.Entry{{Term: 5, Command: raft.KVCommand{Op: "set", Key: "k", Value: "v"}}},
			LeaderCommit: 8, ReadID: 41,
		},
		raft.InstallSnapshot{Term: 6, LeaderID: 2, LastIncludedIndex: 100, LastIncludedTerm: 5, Data: []byte("snap")},
		msgnet.Tagged{Channel: "shard/3", Payload: raft.AppendEntriesReply{Term: 5, Success: true, MatchIndex: 12}},
	} {
		frame, err := Append(nil, msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, tAppendEntries, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		var dec Decoder
		msg, err := dec.Decode(data)
		if err != nil {
			return // rejected, as corrupt input should be
		}
		frame, err := Append(nil, msg)
		if err != nil {
			t.Fatalf("accepted message %#v does not re-encode: %v", msg, err)
		}
		again, err := dec.Decode(frame)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !reflect.DeepEqual(again, msg) {
			t.Fatalf("re-decode = %#v, want %#v", again, msg)
		}
	})
}
