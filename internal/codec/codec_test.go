package codec

import (
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"

	"ooc/internal/codec/bin"
	"ooc/internal/msgnet"
	"ooc/internal/raft"
)

type foreignMsg struct {
	Round int
	Est   []int
}

func init() {
	gob.Register(foreignMsg{})
	for _, wt := range raft.WireTypes() {
		gob.Register(wt)
	}
	for _, wt := range msgnet.WireTypes() {
		gob.Register(wt)
	}
}

func wireMessages() []any {
	return []any{
		raft.RequestVote{Term: 3, CandidateID: 1, LastLogIndex: 10, LastLogTerm: 2},
		raft.RequestVoteReply{Term: 3, VoteGranted: true},
		raft.PreVote{Term: 4, CandidateID: 2, LastLogIndex: 11, LastLogTerm: 3},
		raft.PreVoteReply{Term: 4, Granted: false},
		raft.AppendEntries{
			Term: 5, LeaderID: 0, PrevLogIndex: 9, PrevLogTerm: 4,
			Entries: []raft.Entry{
				{Term: 5, Command: raft.KVCommand{Op: "set", Key: "k", Value: "v"}},
				{Term: 5, Command: raft.Noop{}},
				{Term: 5, Command: raft.DS{Value: "decided"}},
			},
			LeaderCommit: 8, ReadID: 41,
		},
		raft.AppendEntries{Term: 5, LeaderID: 0, PrevLogIndex: 12, PrevLogTerm: 5, LeaderCommit: 12, ReadID: 42}, // heartbeat
		raft.AppendEntriesReply{Term: 5, Success: true, MatchIndex: 12, RejectHint: 0, ReadID: 42},
		raft.AppendEntriesReply{Term: 5, Success: false, MatchIndex: 0, RejectHint: 7},
		raft.ReadIndexRequest{Term: 5, ID: 77, Lease: true},
		raft.ReadIndexReply{Term: 5, ID: 77, Index: 12, Success: true, Lease: true, LeaderID: 2},
		raft.ReadIndexReply{Term: 6, ID: 78, Success: false, LeaderID: -1}, // refusal with no known leader
		raft.InstallSnapshot{Term: 6, LeaderID: 2, LastIncludedIndex: 100, LastIncludedTerm: 5, Data: []byte("snap")},
		raft.InstallSnapshot{Term: 6, LeaderID: 2, LastIncludedIndex: 100, LastIncludedTerm: 5}, // nil data
		msgnet.Tagged{Channel: "shard/3", Payload: raft.RequestVote{Term: 2, CandidateID: 1}},
		msgnet.Tagged{Channel: "shard/0", Payload: raft.AppendEntries{
			Term: 1, Entries: []raft.Entry{{Term: 1, Command: raft.KVCommand{Op: "get", Key: "x"}}},
		}},
		foreignMsg{Round: 9, Est: []int{0, 1}}, // gob fallback
		msgnet.Tagged{Channel: "benor/1", Payload: foreignMsg{Round: 2}},
	}
}

func TestFrameRoundTripAllWireTypes(t *testing.T) {
	var dec Decoder
	for i, msg := range wireMessages() {
		frame, err := Append(nil, msg)
		if err != nil {
			t.Fatalf("case %d (%T): encode: %v", i, msg, err)
		}
		got, err := dec.Decode(frame)
		if err != nil {
			t.Fatalf("case %d (%T): decode: %v", i, msg, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("case %d: round trip = %#v, want %#v", i, got, msg)
		}
	}
}

func TestDecodeRejectsBadFrames(t *testing.T) {
	var dec Decoder
	good, err := Append(nil, raft.RequestVoteReply{Term: 1, VoteGranted: true})
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":            {},
		"bad version":      {99, tRequestVote, 2, 2, 2, 2},
		"unknown tag":      {Version, 29},
		"truncated body":   good[:len(good)-1],
		"trailing bytes":   append(append([]byte{}, good...), 0xFF),
		"huge entry count": {Version, tAppendEntries, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
	}
	for name, frame := range cases {
		if _, err := dec.Decode(frame); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDecodeMatchesGobOracle(t *testing.T) {
	// Differential check: everything the codec round-trips must equal
	// what a gob round trip of the same value produces (gob is the
	// compatibility oracle the transport keeps behind WithCodec).
	for i, msg := range wireMessages() {
		frame, err := Append(nil, msg)
		if err != nil {
			t.Fatal(err)
		}
		var dec Decoder
		viaCodec, err := dec.Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		viaGob := gobRoundTrip(t, msg)
		if !reflect.DeepEqual(viaCodec, viaGob) {
			t.Fatalf("case %d (%T): codec %#v != gob %#v", i, msg, viaCodec, viaGob)
		}
	}
}

func gobRoundTrip(t *testing.T, msg any) any {
	t.Helper()
	buf := GetBuf()
	defer PutBuf(buf)
	w := writerTo{buf}
	if err := gob.NewEncoder(w).Encode(&msg); err != nil {
		t.Fatal(err)
	}
	var v any
	if err := gob.NewDecoder(readerFrom{buf, new(int)}).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

type writerTo struct{ b *[]byte }

func (w writerTo) Write(p []byte) (int, error) { *w.b = append(*w.b, p...); return len(p), nil }

type readerFrom struct {
	b   *[]byte
	off *int
}

func (r readerFrom) Read(p []byte) (int, error) {
	if *r.off >= len(*r.b) {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, (*r.b)[*r.off:])
	*r.off += n
	return n, nil
}

func TestEncodeZeroAlloc(t *testing.T) {
	// Steady-state replication traffic — AppendEntries with entries,
	// heartbeats, replies, and the mux-wrapped variants — must encode
	// without heap allocation once the buffer is warm.
	msgs := []any{
		raft.AppendEntries{
			Term: 5, LeaderID: 0, PrevLogIndex: 9, PrevLogTerm: 4,
			Entries:      []raft.Entry{{Term: 5, Command: raft.KVCommand{Op: "set", Key: "k", Value: "v"}}},
			LeaderCommit: 8, ReadID: 41,
		},
		raft.AppendEntries{Term: 5, LeaderID: 0, PrevLogIndex: 12, PrevLogTerm: 5, LeaderCommit: 12},
		raft.AppendEntriesReply{Term: 5, Success: true, MatchIndex: 12},
		raft.RequestVote{Term: 3, CandidateID: 1},
		msgnet.Tagged{Channel: "shard/1", Payload: raft.AppendEntriesReply{Term: 5, Success: true}},
	}
	for _, msg := range msgs {
		msg := msg
		dst := make([]byte, 0, 1024)
		var err error
		allocs := testing.AllocsPerRun(100, func() {
			dst, err = Append(dst[:0], msg)
		})
		if err != nil {
			t.Fatal(err)
		}
		if allocs != 0 {
			t.Errorf("%T: encode allocates %.1f/op; want 0", msg, allocs)
		}
	}
}

func TestDecodeAppendEntriesIntoZeroAlloc(t *testing.T) {
	frame, err := Append(nil, raft.AppendEntries{
		Term: 5, LeaderID: 0, PrevLogIndex: 9, PrevLogTerm: 4,
		Entries: []raft.Entry{
			{Term: 5, Command: raft.KVCommand{Op: "set", Key: "hot", Value: "v1"}},
			{Term: 5, Command: raft.KVCommand{Op: "set", Key: "hot", Value: "v2"}},
		},
		LeaderCommit: 8, ReadID: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	var m raft.AppendEntries
	if err := dec.DecodeAppendEntriesInto(frame, &m, nil); err != nil {
		t.Fatal(err)
	}
	reuse := m.Entries
	allocs := testing.AllocsPerRun(100, func() {
		if err = dec.DecodeAppendEntriesInto(frame, &m, reuse); err == nil {
			reuse = m.Entries
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("steady-state AppendEntries decode allocates %.1f/op; want 0", allocs)
	}
}

func TestBufPool(t *testing.T) {
	b := GetBuf()
	*b = append(*b, make([]byte, 2<<20)...) // oversize: must not be pooled
	PutBuf(b)
	c := GetBuf()
	if cap(*c) > 1<<20 {
		t.Fatal("oversized buffer returned to pool")
	}
	if len(*c) != 0 {
		t.Fatal("pooled buffer not reset to length 0")
	}
	PutBuf(c)
}

// TestReadIndexReplyLegacyFrameDecodes pins the ReadIndexReply upgrade
// seam: a pre-LeaderID peer emits the old tag with no trailing field,
// and the decoder must map it to LeaderID -1 ("unknown") — the zero
// value would silently name node 0 as the leader.
func TestReadIndexReplyLegacyFrameDecodes(t *testing.T) {
	frame := []byte{Version, tReadIndexReply}
	frame = bin.AppendInt(frame, 5)
	frame = bin.AppendVarint(frame, 77)
	frame = bin.AppendInt(frame, 12)
	frame = bin.AppendBool(frame, true)
	frame = bin.AppendBool(frame, false)
	var dec Decoder
	got, err := dec.Decode(frame)
	if err != nil {
		t.Fatalf("legacy frame: %v", err)
	}
	want := raft.ReadIndexReply{Term: 5, ID: 77, Index: 12, Success: true, Lease: false, LeaderID: -1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy decode = %#v, want %#v", got, want)
	}
	// The current encoder always emits the new tag, round-tripping the
	// hint verbatim.
	neu, err := Append(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	if neu[1] != tReadIndexReply2 {
		t.Fatalf("encoder emitted tag %d, want %d", neu[1], tReadIndexReply2)
	}
	back, err := dec.Decode(neu)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("new-tag round trip = %#v, want %#v", back, want)
	}
}
