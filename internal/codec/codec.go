// Package codec is the hand-rolled binary wire format for the repo's
// message traffic: every raft.WireTypes message plus the msgnet mux
// wrapper encodes as a compact length-free frame of varints — no type
// metadata, no reflection — with an explicit version byte so the layout
// can evolve (DESIGN.md §3.5). Encoding is append-style into a
// caller-owned buffer and performs zero heap allocations in steady
// state; decoding amortizes through a reusable Decoder. Types the codec
// does not know natively (e.g. the benor package's messages, or
// application-defined commands) ride through a gob-encoded fallback
// frame, so the codec is a strict superset of the gob transport's
// reach: anything that was transport.Register-ed keeps working.
//
// Frame layout (the body of a transport frame or a storage record —
// outer length prefixes and checksums belong to those layers):
//
//	[Version byte][type tag byte][tag-specific body]
//
// Integers are zigzag varints, strings are [uvarint len][bytes], byte
// slices are [uvarint len+1][bytes] with 0 meaning nil (see
// internal/codec/bin). Tag values are wire format: new types append,
// existing tags are never renumbered.
package codec

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"ooc/internal/codec/bin"
	"ooc/internal/msgnet"
	"ooc/internal/raft"
)

// Version leads every untraced frame. A decoder accepts versions it
// knows and rejects the rest; additive format changes bump it rather
// than silently shifting field offsets.
const Version = 1

// VersionTraced frames carry a per-request trace ID (internal/rtrace)
// between the version byte and the type tag:
//
//	[2][uvarint trace id][type tag byte][body]
//
// Untraced messages keep emitting Version-1 frames byte-identical to
// the previous release, so a trace-enabled sender only speaks version 2
// on the (sampled) messages that need it and old peers keep decoding
// everything else. Peers that must never see version 2 at all are
// pinned with transport.WithMaxFrameVersion (DESIGN §3.6).
const VersionTraced = 2

// MaxVersion is the highest frame version this build emits and accepts.
const MaxVersion = VersionTraced

// Type tags. Wire format — never renumber; new message types append.
const (
	tRequestVote        = 1
	tRequestVoteReply   = 2
	tPreVote            = 3
	tPreVoteReply       = 4
	tAppendEntries      = 5
	tAppendEntriesReply = 6
	tReadIndexRequest   = 7
	tReadIndexReply     = 8 // pre-PR9 layout, decode-only (no LeaderID field)
	tInstallSnapshot    = 9
	tReadIndexReply2    = 10 // adds trailing LeaderID
	tTagged             = 20 // msgnet.Tagged: [string channel][nested frame body]
	tGob                = 31 // foreign payload: [bytes gob blob]
)

// Append appends the frame for msg — version byte, type tag, body — and
// returns the extended buffer. For the known message set this is
// allocation-free once dst has warmed to steady-state capacity; foreign
// types pay a gob encode inside the frame.
//
// A msgnet.Traced wrapper (top level or directly inside msgnet.Tagged)
// is hoisted into the frame header: the frame becomes VersionTraced and
// the trace ID rides as a header uvarint, never as an encoded wrapper
// type. Everything else emits Version 1, byte-identical to before the
// trace field existed.
func Append(dst []byte, msg any) ([]byte, error) {
	return AppendMax(dst, msg, MaxVersion)
}

// AppendMax is Append with a frame-version ceiling. maxVersion below
// VersionTraced strips trace wrappers instead of encoding them — the
// rolling-upgrade path for peers that reject unknown versions.
func AppendMax(dst []byte, msg any, maxVersion byte) ([]byte, error) {
	id, inner := hoistTrace(msg)
	if id != 0 && maxVersion >= VersionTraced {
		dst = append(dst, VersionTraced)
		dst = bin.AppendUvarint(dst, id)
		return appendBody(dst, inner)
	}
	dst = append(dst, Version)
	return appendBody(dst, inner)
}

// hoistTrace extracts the trace ID a payload carries, returning the
// payload with the wrapper removed. Only the two shapes the stack
// produces are recognized: Traced{msg} and Tagged{ch, Traced{msg}}.
func hoistTrace(msg any) (uint64, any) {
	switch m := msg.(type) {
	case msgnet.Traced:
		return m.ID, m.Payload
	case msgnet.Tagged:
		if t, ok := m.Payload.(msgnet.Traced); ok {
			return t.ID, msgnet.Tagged{Channel: m.Channel, Payload: t.Payload}
		}
	}
	return 0, msg
}

// rewrapTrace reverses hoistTrace after decode so receivers see the
// same shape the sender handed to Append.
func rewrapTrace(msg any, id uint64) any {
	if t, ok := msg.(msgnet.Tagged); ok {
		return msgnet.Tagged{Channel: t.Channel, Payload: msgnet.Traced{ID: id, Payload: t.Payload}}
	}
	return msgnet.Traced{ID: id, Payload: msg}
}

func appendBody(dst []byte, msg any) ([]byte, error) {
	switch m := msg.(type) {
	case raft.RequestVote:
		dst = append(dst, tRequestVote)
		dst = bin.AppendInt(dst, m.Term)
		dst = bin.AppendInt(dst, m.CandidateID)
		dst = bin.AppendInt(dst, m.LastLogIndex)
		return bin.AppendInt(dst, m.LastLogTerm), nil
	case raft.RequestVoteReply:
		dst = append(dst, tRequestVoteReply)
		dst = bin.AppendInt(dst, m.Term)
		return bin.AppendBool(dst, m.VoteGranted), nil
	case raft.PreVote:
		dst = append(dst, tPreVote)
		dst = bin.AppendInt(dst, m.Term)
		dst = bin.AppendInt(dst, m.CandidateID)
		dst = bin.AppendInt(dst, m.LastLogIndex)
		return bin.AppendInt(dst, m.LastLogTerm), nil
	case raft.PreVoteReply:
		dst = append(dst, tPreVoteReply)
		dst = bin.AppendInt(dst, m.Term)
		return bin.AppendBool(dst, m.Granted), nil
	case raft.AppendEntries:
		dst = append(dst, tAppendEntries)
		dst = bin.AppendInt(dst, m.Term)
		dst = bin.AppendInt(dst, m.LeaderID)
		dst = bin.AppendInt(dst, m.PrevLogIndex)
		dst = bin.AppendInt(dst, m.PrevLogTerm)
		dst = bin.AppendInt(dst, m.LeaderCommit)
		dst = bin.AppendInt(dst, m.ReadID)
		return raft.AppendWireEntries(dst, m.Entries)
	case raft.AppendEntriesReply:
		dst = append(dst, tAppendEntriesReply)
		dst = bin.AppendInt(dst, m.Term)
		dst = bin.AppendBool(dst, m.Success)
		dst = bin.AppendInt(dst, m.MatchIndex)
		dst = bin.AppendInt(dst, m.RejectHint)
		return bin.AppendInt(dst, m.ReadID), nil
	case raft.ReadIndexRequest:
		dst = append(dst, tReadIndexRequest)
		dst = bin.AppendInt(dst, m.Term)
		dst = bin.AppendVarint(dst, m.ID)
		return bin.AppendBool(dst, m.Lease), nil
	case raft.ReadIndexReply:
		dst = append(dst, tReadIndexReply2)
		dst = bin.AppendInt(dst, m.Term)
		dst = bin.AppendVarint(dst, m.ID)
		dst = bin.AppendInt(dst, m.Index)
		dst = bin.AppendBool(dst, m.Success)
		dst = bin.AppendBool(dst, m.Lease)
		return bin.AppendInt(dst, m.LeaderID), nil
	case raft.InstallSnapshot:
		dst = append(dst, tInstallSnapshot)
		dst = bin.AppendInt(dst, m.Term)
		dst = bin.AppendInt(dst, m.LeaderID)
		dst = bin.AppendInt(dst, m.LastIncludedIndex)
		dst = bin.AppendInt(dst, m.LastIncludedTerm)
		return bin.AppendBytes(dst, m.Data), nil
	case msgnet.Tagged:
		// The mux wrapper nests: the inner payload is a full body (tag +
		// fields) without a repeated version byte.
		dst = append(dst, tTagged)
		dst = bin.AppendString(dst, m.Channel)
		return appendBody(dst, m.Payload)
	default:
		// Foreign payload: gob inside the frame. Same registration
		// contract as the gob transport (transport.Register), so
		// everything that worked before the codec still works — it just
		// pays gob's cost while the known message set does not.
		var buf bytes.Buffer
		boxed := msg
		if err := gob.NewEncoder(&buf).Encode(&boxed); err != nil {
			return dst, fmt.Errorf("codec: encode %T: %w", msg, err)
		}
		return bin.AppendBytes(append(dst, tGob), buf.Bytes()), nil
	}
}

// A Decoder decodes frames, amortizing allocations across messages: log
// entry strings and commands intern through the embedded
// raft.EntryDecoder. A zero Decoder is ready to use; it is not safe for
// concurrent use — give each receive loop its own.
type Decoder struct {
	ents raft.EntryDecoder
}

// Decode parses one frame and returns the boxed message. Entry slices
// in an AppendEntries are freshly allocated — the caller (a raft node
// appending them to its log) owns them outright.
func (d *Decoder) Decode(frame []byte) (any, error) {
	r := bin.NewReader(frame)
	traceID, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	msg, err := d.readBody(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("codec: %d trailing bytes after frame", r.Len())
	}
	if traceID != 0 {
		msg = rewrapTrace(msg, traceID)
	}
	return msg, nil
}

// readHeader consumes the version byte (and, for VersionTraced frames,
// the trace ID uvarint), leaving r at the type tag.
func readHeader(r *bin.Reader) (uint64, error) {
	v := r.Byte()
	if r.Err() != nil {
		return 0, r.Err()
	}
	switch v {
	case Version:
		return 0, nil
	case VersionTraced:
		id := r.Uvarint()
		return id, r.Err()
	default:
		return 0, fmt.Errorf("codec: unsupported frame version %d", v)
	}
}

func (d *Decoder) readBody(r *bin.Reader) (any, error) {
	tag := r.Byte()
	if err := r.Err(); err != nil {
		return nil, err
	}
	switch tag {
	case tRequestVote:
		m := raft.RequestVote{Term: r.Int(), CandidateID: r.Int(), LastLogIndex: r.Int(), LastLogTerm: r.Int()}
		return m, r.Err()
	case tRequestVoteReply:
		m := raft.RequestVoteReply{Term: r.Int(), VoteGranted: r.Bool()}
		return m, r.Err()
	case tPreVote:
		m := raft.PreVote{Term: r.Int(), CandidateID: r.Int(), LastLogIndex: r.Int(), LastLogTerm: r.Int()}
		return m, r.Err()
	case tPreVoteReply:
		m := raft.PreVoteReply{Term: r.Int(), Granted: r.Bool()}
		return m, r.Err()
	case tAppendEntries:
		var m raft.AppendEntries
		err := d.readAppendEntries(r, &m, nil)
		return m, err
	case tAppendEntriesReply:
		m := raft.AppendEntriesReply{Term: r.Int(), Success: r.Bool(), MatchIndex: r.Int(), RejectHint: r.Int(), ReadID: r.Int()}
		return m, r.Err()
	case tReadIndexRequest:
		m := raft.ReadIndexRequest{Term: r.Int(), ID: r.Varint(), Lease: r.Bool()}
		return m, r.Err()
	case tReadIndexReply:
		// Old layout from a pre-PR9 peer: no LeaderID on the wire. -1
		// means "unknown" to the raft layer; the zero value would name
		// node 0.
		m := raft.ReadIndexReply{Term: r.Int(), ID: r.Varint(), Index: r.Int(), Success: r.Bool(), Lease: r.Bool(), LeaderID: -1}
		return m, r.Err()
	case tReadIndexReply2:
		m := raft.ReadIndexReply{Term: r.Int(), ID: r.Varint(), Index: r.Int(), Success: r.Bool(), Lease: r.Bool(), LeaderID: r.Int()}
		return m, r.Err()
	case tInstallSnapshot:
		m := raft.InstallSnapshot{Term: r.Int(), LeaderID: r.Int(), LastIncludedIndex: r.Int(), LastIncludedTerm: r.Int(), Data: r.Bytes()}
		return m, r.Err()
	case tTagged:
		ch := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		inner, err := d.readBody(r)
		if err != nil {
			return nil, err
		}
		return msgnet.Tagged{Channel: ch, Payload: inner}, nil
	case tGob:
		blob := r.BytesView()
		if err := r.Err(); err != nil {
			return nil, err
		}
		var v any
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&v); err != nil {
			return nil, fmt.Errorf("codec: decode gob frame: %w", err)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("codec: unknown type tag %d", tag)
	}
}

func (d *Decoder) readAppendEntries(r *bin.Reader, m *raft.AppendEntries, reuse []raft.Entry) error {
	m.Term = r.Int()
	m.LeaderID = r.Int()
	m.PrevLogIndex = r.Int()
	m.PrevLogTerm = r.Int()
	m.LeaderCommit = r.Int()
	m.ReadID = r.Int()
	var err error
	m.Entries, err = d.ents.ReadEntries(r, reuse)
	if err != nil {
		return err
	}
	return r.Err()
}

// DecodeAppendEntriesInto is the allocation-free fast path for the
// dominant replication message: it decodes frame into *m, reusing
// reuse's backing array for the entry slice. With interned commands and
// a warmed reuse slice, steady-state decode performs zero heap
// allocations — this is the path the codec micro-benchmarks pin.
// Callers own the lifecycle: the entries alias reuse, so hand the slice
// back only after the previous message is fully consumed.
func (d *Decoder) DecodeAppendEntriesInto(frame []byte, m *raft.AppendEntries, reuse []raft.Entry) error {
	r := bin.NewReader(frame)
	if _, err := readHeader(r); err != nil {
		return err
	}
	if tag := r.Byte(); tag != tAppendEntries {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("codec: frame tag %d is not AppendEntries", tag)
	}
	return d.readAppendEntries(r, m, reuse)
}

// bufPool recycles frame buffers across sends: a transport grabs a
// buffer, appends the frame, writes it out, and returns it. Pooling a
// pointer-to-slice (not the slice) keeps the Put side allocation-free.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf returns a pooled buffer with length 0 and warm capacity.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a buffer to the pool. Oversized buffers (a snapshot
// transfer, a huge batch) are dropped rather than pinned forever.
func PutBuf(b *[]byte) {
	if cap(*b) > 1<<20 {
		return
	}
	bufPool.Put(b)
}
