// Package bin holds the low-level binary primitives under the repo's
// hand-rolled wire/disk codec (internal/codec and the raft storage
// records): append-style writers that extend a caller-owned []byte —
// zero allocations once the buffer has warmed to its steady-state
// capacity — and a bounds-checked sticky-error Reader for decoding.
//
// The integer encoding is the protobuf family's: unsigned values are
// LEB128 uvarints, signed values are zigzag-mapped first so small
// negatives stay small on the wire. Strings and byte slices are
// length-prefixed with a uvarint; byte slices carry a presence bit
// (length+1, with 0 meaning nil) so nil survives a round trip.
//
// This package is a leaf: it may be imported by anything (including
// internal/raft, whose storage records and wire messages share these
// primitives with internal/codec) and imports nothing.
package bin

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// AppendUvarint appends v as a LEB128 uvarint.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendVarint appends v zigzag-mapped as a uvarint, so values near zero
// of either sign cost one byte.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, zigzag(v))
}

// AppendInt appends an int via AppendVarint.
func AppendInt(dst []byte, v int) []byte { return AppendVarint(dst, int64(v)) }

// AppendBool appends a bool as one byte (0 or 1).
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendString appends s as [uvarint len][raw bytes].
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends b as [uvarint len+1][raw bytes], encoding nil as
// length marker 0 so nil-ness survives a round trip (a snapshot field
// that was never set must not decode as an empty-but-present one).
func AppendBytes(dst []byte, b []byte) []byte {
	if b == nil {
		return append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(b))+1)
	return append(dst, b...)
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// ErrTruncated reports input that ended mid-value.
var ErrTruncated = errors.New("bin: truncated input")

// ErrOverflow reports a varint wider than 64 bits or a length prefix
// larger than the remaining input (the guard that keeps corrupt or
// adversarial frames from provoking huge allocations).
var ErrOverflow = errors.New("bin: malformed varint or length")

// Reader decodes the primitives back out of a byte slice. Errors are
// sticky: after the first failure every subsequent read returns a zero
// value, so decode paths can run straight-line and check Err once.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader aliases b; Bytes and
// View results share b's backing array.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Reset points the Reader at b and clears any sticky error.
func (r *Reader) Reset(b []byte) { r.b, r.off, r.err = b, 0, nil }

// Err reports the first decode failure, if any.
func (r *Reader) Err() error { return r.err }

// Len reports how many bytes remain.
func (r *Reader) Len() int { return len(r.b) - r.off }

// Offset reports how many bytes have been consumed.
func (r *Reader) Offset() int { return r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = fmt.Errorf("%w at offset %d", err, r.off)
	}
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Uvarint reads a LEB128 uvarint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(ErrOverflow)
		}
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zigzag varint.
func (r *Reader) Varint() int64 { return unzigzag(r.Uvarint()) }

// Int reads an int-sized Varint, rejecting values that do not fit.
func (r *Reader) Int() int {
	v := r.Varint()
	if v > math.MaxInt || v < math.MinInt {
		r.fail(ErrOverflow)
		return 0
	}
	return int(v)
}

// Bool reads a Byte as a bool; any nonzero value is true.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// take validates a length prefix against the remaining input and
// consumes that many bytes, returning them as an aliasing subslice.
func (r *Reader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail(ErrOverflow)
		return nil
	}
	v := r.b[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return v
}

// View reads a string/bytes length prefix and returns the raw bytes
// WITHOUT copying — the result aliases the Reader's input and is only
// valid until that buffer is reused. Callers that retain the data must
// copy (or intern) it.
func (r *Reader) View() []byte { return r.take(r.Uvarint()) }

// String reads a length-prefixed string, copying out of the input.
func (r *Reader) String() string { return string(r.View()) }

// Bytes reads an AppendBytes-encoded slice, copying out of the input;
// the nil marker decodes as nil and an empty slice stays empty-not-nil.
func (r *Reader) Bytes() []byte {
	v := r.BytesView()
	if v == nil {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// BytesView is Bytes without the copy: the result aliases the input.
func (r *Reader) BytesView() []byte {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	return r.take(n - 1)
}
