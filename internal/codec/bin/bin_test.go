package bin

import (
	"bytes"
	"math"
	"testing"
)

func TestRoundTripScalars(t *testing.T) {
	var dst []byte
	ints := []int64{0, 1, -1, 63, -64, 64, 300, -300, math.MaxInt64, math.MinInt64}
	uints := []uint64{0, 1, 127, 128, 1 << 20, math.MaxUint64}
	for _, v := range ints {
		dst = AppendVarint(dst, v)
	}
	for _, v := range uints {
		dst = AppendUvarint(dst, v)
	}
	dst = AppendBool(dst, true)
	dst = AppendBool(dst, false)

	r := NewReader(dst)
	for _, want := range ints {
		if got := r.Varint(); got != want {
			t.Fatalf("Varint = %d, want %d", got, want)
		}
	}
	for _, want := range uints {
		if got := r.Uvarint(); got != want {
			t.Fatalf("Uvarint = %d, want %d", got, want)
		}
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if r.Err() != nil || r.Len() != 0 {
		t.Fatalf("err=%v len=%d after clean decode", r.Err(), r.Len())
	}
}

func TestRoundTripStringsAndBytes(t *testing.T) {
	var dst []byte
	dst = AppendString(dst, "")
	dst = AppendString(dst, "hello")
	dst = AppendBytes(dst, nil)
	dst = AppendBytes(dst, []byte{})
	dst = AppendBytes(dst, []byte{1, 2, 3})

	r := NewReader(dst)
	if got := r.String(); got != "" {
		t.Fatalf("empty string decoded as %q", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("string = %q", got)
	}
	if got := r.Bytes(); got != nil {
		t.Fatalf("nil bytes decoded as %v", got)
	}
	if got := r.Bytes(); got == nil || len(got) != 0 {
		t.Fatalf("empty bytes decoded as %v", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestTruncatedAndOversizedInputs(t *testing.T) {
	// A length prefix pointing past the end must error, not allocate.
	huge := AppendUvarint(nil, 1<<40)
	r := NewReader(huge)
	if v := r.View(); v != nil || r.Err() == nil {
		t.Fatalf("oversized length: view=%v err=%v", v, r.Err())
	}

	// Truncated varint.
	r = NewReader([]byte{0x80})
	if r.Uvarint(); r.Err() == nil {
		t.Fatal("truncated uvarint did not error")
	}

	// Sticky error: later reads keep failing and return zero values.
	if got := r.Int(); got != 0 {
		t.Fatalf("read after error = %d", got)
	}
	if r.Byte() != 0 || r.Bool() || r.String() != "" || r.Bytes() != nil {
		t.Fatal("sticky error not sticky")
	}

	// Empty input.
	r = NewReader(nil)
	if r.Byte(); r.Err() == nil {
		t.Fatal("read from empty input did not error")
	}
}

func TestAppendZeroAlloc(t *testing.T) {
	dst := make([]byte, 0, 256)
	n := testing.AllocsPerRun(100, func() {
		dst = dst[:0]
		dst = AppendVarint(dst, -12345)
		dst = AppendUvarint(dst, 99999)
		dst = AppendString(dst, "steady-state")
		dst = AppendBytes(dst, []byte{9, 9, 9})
		dst = AppendBool(dst, true)
	})
	if n != 0 {
		t.Fatalf("append path allocates %.1f/op; want 0", n)
	}
}
