package codec

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"ooc/internal/raft"
)

func benchAppendEntries(n int) raft.AppendEntries {
	es := make([]raft.Entry, n)
	for i := range es {
		es[i] = raft.Entry{Term: 5, Command: raft.KVCommand{
			Op:    "set",
			Key:   fmt.Sprintf("key-%03d", i%16),
			Value: "value-payload-0123456789",
		}}
	}
	return raft.AppendEntries{
		Term: 5, LeaderID: 0, PrevLogIndex: 1041, PrevLogTerm: 5,
		Entries: es, LeaderCommit: 1040, ReadID: 77,
	}
}

// BenchmarkEncodeAppendEntries pins the encode side of the acceptance
// criterion: 0 allocs/op for steady-state AppendEntries at 1/8/64
// entries, against the gob path it replaced (a fresh Encoder per
// message, as the transport's per-connection stream cannot be reused
// for a fair single-message comparison — but the gob stream encoder is
// also benchmarked, as the transport did amortize its type metadata).
func BenchmarkEncodeAppendEntries(b *testing.B) {
	for _, n := range []int{1, 8, 64} {
		msg := benchAppendEntries(n)
		b.Run(fmt.Sprintf("codec/entries=%d", n), func(b *testing.B) {
			// Pre-boxed, as in the real transport: the payload reaches
			// the encoder already inside an `any`.
			var boxed any = msg
			dst := make([]byte, 0, 1<<16)
			var err error
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst, err = Append(dst[:0], boxed)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(dst)))
		})
		b.Run(fmt.Sprintf("gob-stream/entries=%d", n), func(b *testing.B) {
			// The old transport's actual encode path: one long-lived
			// Encoder per connection, type metadata amortized away.
			var buf bytes.Buffer
			enc := gob.NewEncoder(&buf)
			var boxed any = msg
			if err := enc.Encode(&boxed); err != nil {
				b.Fatal(err) // prime the type metadata
			}
			var frameLen int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := enc.Encode(&boxed); err != nil {
					b.Fatal(err)
				}
				frameLen = buf.Len()
			}
			b.SetBytes(int64(frameLen))
		})
	}
}

// BenchmarkDecodeAppendEntries pins the decode side: the typed
// DecodeAppendEntriesInto path with a recycled entry slice must be
// 0 allocs/op, against a long-lived gob stream decoder.
func BenchmarkDecodeAppendEntries(b *testing.B) {
	for _, n := range []int{1, 8, 64} {
		msg := benchAppendEntries(n)
		frame, err := Append(nil, msg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("codec/entries=%d", n), func(b *testing.B) {
			var dec Decoder
			var m raft.AppendEntries
			if err := dec.DecodeAppendEntriesInto(frame, &m, nil); err != nil {
				b.Fatal(err)
			}
			reuse := m.Entries
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := dec.DecodeAppendEntriesInto(frame, &m, reuse); err != nil {
					b.Fatal(err)
				}
				reuse = m.Entries
			}
		})
		b.Run(fmt.Sprintf("gob-stream/entries=%d", n), func(b *testing.B) {
			// One decode per iteration from a pre-encoded stream of b.N
			// messages, mirroring the old per-connection Decoder.
			var buf bytes.Buffer
			enc := gob.NewEncoder(&buf)
			var boxed any = msg
			for i := 0; i < b.N+1; i++ {
				if err := enc.Encode(&boxed); err != nil {
					b.Fatal(err)
				}
			}
			dec := gob.NewDecoder(&buf)
			var first any
			if err := dec.Decode(&first); err != nil {
				b.Fatal(err) // prime the type metadata
			}
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var v any
				if err := dec.Decode(&v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
