package checker

import (
	"testing"
	"testing/quick"

	"ooc/internal/core"
)

// TestCheckConsensusDetectsDisagreementProperty: CheckConsensus flags
// agreement violations exactly when two decided outcomes differ.
func TestCheckConsensusDetectsDisagreementProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		inputs := map[int]int{}
		outs := make([]RunOutcome[int], len(vals))
		distinct := map[int]bool{}
		for i, v := range vals {
			value := int(v) % 3
			outs[i] = RunOutcome[int]{Node: i, Decided: true, Value: value}
			inputs[i] = value // every decided value is someone's input
			distinct[value] = true
		}
		rep := CheckConsensus(outs, inputs, true)
		hasAgreementViolation := false
		for _, viol := range rep.Violations {
			if viol.Property == "agreement" {
				hasAgreementViolation = true
			}
		}
		return hasAgreementViolation == (len(distinct) > 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCheckVACConvergenceProperty: on unanimous inputs, any outcome that
// is not (Commit, input) is flagged, and all-(Commit, input) passes.
func TestCheckVACConvergenceProperty(t *testing.T) {
	f := func(confRaw []uint8, input bool) bool {
		if len(confRaw) == 0 {
			return true
		}
		v := 0
		if input {
			v = 1
		}
		inputs := map[int]int{}
		outs := make([]ObjectOutcome[int], len(confRaw))
		clean := true
		for i, c := range confRaw {
			conf := core.Confidence(int(c)%3 + 1)
			outs[i] = ObjectOutcome[int]{Node: i, Conf: conf, Value: v}
			inputs[i] = v
			if conf != core.Commit {
				clean = false
			}
		}
		rep := CheckVACRound(outs, inputs)
		return rep.Ok() == clean
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
