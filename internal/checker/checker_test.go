package checker

import (
	"strings"
	"testing"

	"ooc/internal/core"
)

func TestCheckConsensusClean(t *testing.T) {
	outs := []RunOutcome[int]{
		{Node: 0, Decided: true, Value: 1, Round: 2},
		{Node: 1, Decided: true, Value: 1, Round: 3},
	}
	rep := CheckConsensus(outs, map[int]int{0: 1, 1: 0}, true)
	if !rep.Ok() {
		t.Fatalf("clean run flagged: %v", rep)
	}
	if rep.Runs != 1 {
		t.Fatalf("Runs = %d", rep.Runs)
	}
}

func TestCheckConsensusAgreementViolation(t *testing.T) {
	outs := []RunOutcome[int]{
		{Node: 0, Decided: true, Value: 0},
		{Node: 1, Decided: true, Value: 1},
	}
	rep := CheckConsensus(outs, map[int]int{0: 0, 1: 1}, true)
	if rep.Ok() {
		t.Fatal("disagreement not flagged")
	}
	if rep.Violations[0].Property != "agreement" {
		t.Fatalf("property = %q", rep.Violations[0].Property)
	}
}

func TestCheckConsensusValidityViolation(t *testing.T) {
	outs := []RunOutcome[int]{{Node: 0, Decided: true, Value: 7}}
	rep := CheckConsensus(outs, map[int]int{0: 0, 1: 1}, false)
	if rep.Ok() || rep.Violations[0].Property != "validity" {
		t.Fatalf("report = %v", rep)
	}
}

func TestCheckConsensusTermination(t *testing.T) {
	outs := []RunOutcome[int]{
		{Node: 0, Decided: true, Value: 0},
		{Node: 1, Decided: false},
	}
	if rep := CheckConsensus(outs, map[int]int{0: 0}, true); rep.Ok() {
		t.Fatal("missing decision not flagged with expectAll")
	}
	if rep := CheckConsensus(outs, map[int]int{0: 0}, false); !rep.Ok() {
		t.Fatalf("partial decisions flagged without expectAll: %v", rep)
	}
	none := []RunOutcome[int]{{Node: 0}, {Node: 1}}
	if rep := CheckConsensus(none, map[int]int{0: 0}, false); rep.Ok() {
		t.Fatal("zero decisions not flagged")
	}
}

func TestCheckVACRoundClean(t *testing.T) {
	outs := []ObjectOutcome[int]{
		{Node: 0, Conf: core.Commit, Value: 1},
		{Node: 1, Conf: core.Adopt, Value: 1},
		{Node: 2, Conf: core.Commit, Value: 1},
	}
	rep := CheckVACRound(outs, map[int]int{0: 1, 1: 0, 2: 1})
	if !rep.Ok() {
		t.Fatalf("clean VAC round flagged: %v", rep)
	}
}

func TestCheckVACRoundCoherenceAC(t *testing.T) {
	outs := []ObjectOutcome[int]{
		{Node: 0, Conf: core.Commit, Value: 1},
		{Node: 1, Conf: core.Vacillate, Value: 0},
	}
	rep := CheckVACRound(outs, map[int]int{0: 1, 1: 0})
	if rep.Ok() {
		t.Fatal("vacillate beside commit not flagged")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Property == "coherence-ac" {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong properties: %v", rep.Violations)
	}
}

func TestCheckVACRoundAdoptMismatch(t *testing.T) {
	outs := []ObjectOutcome[int]{
		{Node: 0, Conf: core.Adopt, Value: 0},
		{Node: 1, Conf: core.Adopt, Value: 1},
	}
	rep := CheckVACRound(outs, map[int]int{0: 0, 1: 1})
	if rep.Ok() {
		t.Fatal("conflicting adopts not flagged")
	}
}

func TestCheckVACRoundConvergence(t *testing.T) {
	outs := []ObjectOutcome[int]{
		{Node: 0, Conf: core.Adopt, Value: 1},
		{Node: 1, Conf: core.Commit, Value: 1},
	}
	rep := CheckVACRound(outs, map[int]int{0: 1, 1: 1})
	if rep.Ok() {
		t.Fatal("non-commit on unanimous input not flagged")
	}
	if rep.Violations[0].Property != "convergence" {
		t.Fatalf("property = %q", rep.Violations[0].Property)
	}
}

func TestCheckVACRoundInvalidConfidence(t *testing.T) {
	outs := []ObjectOutcome[int]{{Node: 0, Conf: core.Confidence(9), Value: 0}}
	rep := CheckVACRound(outs, map[int]int{0: 0})
	if rep.Ok() || rep.Violations[0].Property != "contract" {
		t.Fatalf("report = %v", rep)
	}
}

func TestCheckACRound(t *testing.T) {
	clean := []ObjectOutcome[int]{
		{Node: 0, Conf: core.Commit, Value: 1},
		{Node: 1, Conf: core.Adopt, Value: 1},
	}
	if rep := CheckACRound(clean, map[int]int{0: 1, 1: 0}); !rep.Ok() {
		t.Fatalf("clean AC round flagged: %v", rep)
	}
	vacillating := []ObjectOutcome[int]{{Node: 0, Conf: core.Vacillate, Value: 0}}
	if rep := CheckACRound(vacillating, map[int]int{0: 0}); rep.Ok() {
		t.Fatal("vacillating AC not flagged")
	}
	incoherent := []ObjectOutcome[int]{
		{Node: 0, Conf: core.Commit, Value: 1},
		{Node: 1, Conf: core.Adopt, Value: 0},
	}
	if rep := CheckACRound(incoherent, map[int]int{0: 1, 1: 0}); rep.Ok() {
		t.Fatal("incoherent AC round not flagged")
	}
	diverging := []ObjectOutcome[int]{
		{Node: 0, Conf: core.Adopt, Value: 1},
		{Node: 1, Conf: core.Adopt, Value: 1},
	}
	if rep := CheckACRound(diverging, map[int]int{0: 1, 1: 1}); rep.Ok() {
		t.Fatal("convergence failure not flagged")
	}
}

func TestReportMergeAndString(t *testing.T) {
	var a, b Report
	a.Runs = 1
	b.Runs = 2
	b.Add("agreement", "boom %d", 7)
	a.Merge(b)
	if a.Runs != 3 || len(a.Violations) != 1 {
		t.Fatalf("merged = %+v", a)
	}
	if !strings.Contains(a.String(), "agreement") {
		t.Fatalf("String() = %q", a.String())
	}
	var ok Report
	ok.Runs = 5
	if !strings.Contains(ok.String(), "ok") {
		t.Fatalf("String() = %q", ok.String())
	}
	var v error = Violation{Property: "p", Detail: "d"}
	if v.Error() != "p violated: d" {
		t.Fatalf("Error() = %q", v.Error())
	}
}
