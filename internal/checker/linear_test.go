package checker

import "testing"

func TestRegisterLinearizableOk(t *testing.T) {
	// w1 [0,10], w2 [20,30]; reads in every legal window.
	h := []RWOp{
		{Key: "a", Version: 1, Invoke: 0, Return: 10},
		{Key: "a", Version: 2, Invoke: 20, Return: 30},
		{Read: true, Key: "a", Version: 0, Invoke: 1, Return: 2},   // concurrent with w1: either value
		{Read: true, Key: "a", Version: 1, Invoke: 11, Return: 12}, // after w1
		{Read: true, Key: "a", Version: 2, Invoke: 25, Return: 26}, // concurrent with w2
		{Read: true, Key: "a", Version: 1, Invoke: 22, Return: 28}, // concurrent with w2: old value fine
		{Read: true, Key: "a", Version: 2, Invoke: 31, Return: 35}, // after w2
		{Read: true, Key: "b", Version: 0, Invoke: 0, Return: 100}, // never-written key
	}
	if rep := CheckRegisterLinearizable(h); !rep.Ok() {
		t.Fatalf("clean history flagged: %v", rep.Violations)
	}
}

func TestRegisterLinearizableStaleRead(t *testing.T) {
	// v2's write completed at 30; a read invoked at 40 must not see v1 —
	// exactly what a deposed leader serving from an expired lease does.
	h := []RWOp{
		{Key: "a", Version: 1, Invoke: 0, Return: 10},
		{Key: "a", Version: 2, Invoke: 20, Return: 30},
		{Read: true, Key: "a", Version: 1, Invoke: 40, Return: 45},
	}
	rep := CheckRegisterLinearizable(h)
	if rep.Ok() {
		t.Fatal("stale read not detected")
	}
	if rep.Violations[0].Property != "linearizability" {
		t.Fatalf("wrong property: %v", rep.Violations[0])
	}
}

func TestRegisterLinearizableFutureRead(t *testing.T) {
	// The read returned at 5, before v2 was even invoked at 20.
	h := []RWOp{
		{Key: "a", Version: 1, Invoke: 0, Return: 2},
		{Key: "a", Version: 2, Invoke: 20, Return: 30},
		{Read: true, Key: "a", Version: 2, Invoke: 3, Return: 5},
	}
	if rep := CheckRegisterLinearizable(h); rep.Ok() {
		t.Fatal("future read not detected")
	}
}

func TestRegisterLinearizableUnwrittenVersion(t *testing.T) {
	h := []RWOp{
		{Key: "a", Version: 1, Invoke: 0, Return: 2},
		{Read: true, Key: "a", Version: 7, Invoke: 3, Return: 5},
	}
	if rep := CheckRegisterLinearizable(h); rep.Ok() {
		t.Fatal("phantom version not detected")
	}
}

func TestRegisterLinearizableBrokenHistory(t *testing.T) {
	overlap := []RWOp{
		{Key: "a", Version: 1, Invoke: 0, Return: 10},
		{Key: "a", Version: 2, Invoke: 5, Return: 15},
	}
	rep := CheckRegisterLinearizable(overlap)
	if rep.Ok() || rep.Violations[0].Property != "history" {
		t.Fatalf("overlapping writes not reported as a history violation: %v", rep.Violations)
	}
	reversed := []RWOp{
		{Key: "a", Version: 2, Invoke: 0, Return: 10},
		{Key: "a", Version: 1, Invoke: 20, Return: 30},
	}
	if rep := CheckRegisterLinearizable(reversed); rep.Ok() {
		t.Fatal("non-monotonic versions not detected")
	}
}
