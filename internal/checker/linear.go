package checker

import "sort"

// RWOp is one completed operation in a key-value history, timestamped at
// invocation and return (any shared monotonic unit — the harness usually
// records time.Since(start) in nanoseconds). Writes carry the version
// they wrote; reads carry the version they observed, with 0 meaning "key
// absent".
type RWOp struct {
	Read    bool
	Key     string
	Version int64
	Invoke  int64
	Return  int64
}

// CheckRegisterLinearizable verifies a read/write history against
// per-key register linearizability, under the harness's single-writer
// discipline: for each key, writes carry strictly increasing versions
// and do not overlap each other in real time (closed-loop writers give
// this for free). That discipline makes the check exact and cheap —
// full multi-writer linearizability checking is NP-hard, but with a
// totally ordered write history a read is linearizable iff it observes
// a version within its real-time window:
//
//	lo = max version of any write COMPLETED before the read's invocation
//	hi = max version of any write INVOKED before the read's return
//	require lo ≤ observed ≤ hi
//
// A stale read (observed < lo) is the classic linearizability bug a
// leaky lease produces: the value was overwritten, and the overwrite
// finished, before the read even began. A futuristic read
// (observed > hi) means the read returned a write that had not been
// issued yet — a broken history. The write-discipline precondition is
// itself checked and reported as a "history" violation, so a harness
// bug fails loudly instead of masking the property.
func CheckRegisterLinearizable(history []RWOp) Report {
	rep := Report{Runs: 1}
	byKey := make(map[string][]RWOp)
	for _, op := range history {
		if op.Return < op.Invoke {
			rep.Add("history", "op on %q returned at %d before its invocation at %d", op.Key, op.Return, op.Invoke)
			continue
		}
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	for key, ops := range byKey {
		checkKey(&rep, key, ops)
	}
	return rep
}

func checkKey(rep *Report, key string, ops []RWOp) {
	var writes, reads []RWOp
	for _, op := range ops {
		if op.Read {
			reads = append(reads, op)
		} else {
			writes = append(writes, op)
		}
	}

	// Verify the single-writer discipline: ordered by invocation, writes
	// must not overlap and must carry strictly increasing versions.
	sort.Slice(writes, func(i, j int) bool { return writes[i].Invoke < writes[j].Invoke })
	for i := 1; i < len(writes); i++ {
		prev, cur := writes[i-1], writes[i]
		if cur.Invoke < prev.Return {
			rep.Add("history", "key %q: writes v%d and v%d overlap; the checker needs non-overlapping writes per key", key, prev.Version, cur.Version)
			return
		}
		if cur.Version <= prev.Version {
			rep.Add("history", "key %q: write versions not increasing (v%d then v%d)", key, prev.Version, cur.Version)
			return
		}
	}

	// completedBefore(t): max version of a write with Return < t. Writes
	// are ordered and non-overlapping, so versions are monotone in Return
	// order too and a prefix by binary search suffices.
	completedBefore := func(t int64) int64 {
		i := sort.Search(len(writes), func(i int) bool { return writes[i].Return >= t })
		if i == 0 {
			return 0
		}
		return writes[i-1].Version
	}
	// invokedBefore(t): max version of a write with Invoke < t.
	invokedBefore := func(t int64) int64 {
		i := sort.Search(len(writes), func(i int) bool { return writes[i].Invoke >= t })
		if i == 0 {
			return 0
		}
		return writes[i-1].Version
	}

	written := make(map[int64]bool, len(writes))
	for _, w := range writes {
		written[w.Version] = true
	}

	for _, r := range reads {
		lo := completedBefore(r.Invoke)
		hi := invokedBefore(r.Return)
		switch {
		case r.Version != 0 && !written[r.Version]:
			rep.Add("linearizability", "key %q: read [%d,%d] observed v%d, which no write produced",
				key, r.Invoke, r.Return, r.Version)
		case r.Version < lo:
			rep.Add("linearizability", "key %q: read [%d,%d] observed v%d, but v%d had already completed before it was invoked (stale read)",
				key, r.Invoke, r.Return, r.Version, lo)
		case r.Version > hi:
			rep.Add("linearizability", "key %q: read [%d,%d] observed v%d, but only writes up to v%d had been invoked by its return",
				key, r.Invoke, r.Return, r.Version, hi)
		}
	}
}
