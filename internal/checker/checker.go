// Package checker verifies consensus safety properties over the results
// and traces of simulated runs: agreement, validity, termination, and the
// object-level coherence/convergence guarantees of AC and VAC objects.
// Every experiment in the benchmark harness funnels its runs through a
// checker, so a property violation in any configuration fails loudly
// rather than skewing a table.
package checker

import (
	"fmt"

	"ooc/internal/core"
)

// Violation is one property failure. A run may produce several.
type Violation struct {
	Property string // "agreement", "validity", "termination", ...
	Detail   string
}

// Error renders the violation; Violation satisfies error for convenient
// plumbing.
func (v Violation) Error() string { return fmt.Sprintf("%s violated: %s", v.Property, v.Detail) }

// Report aggregates violations from one or many runs.
type Report struct {
	Violations []Violation
	Runs       int
}

// Ok reports whether no property was violated.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Add appends a violation.
func (r *Report) Add(property, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Property: property, Detail: fmt.Sprintf(format, args...)})
}

// Merge folds another report in.
func (r *Report) Merge(other Report) {
	r.Violations = append(r.Violations, other.Violations...)
	r.Runs += other.Runs
}

// String summarizes the report.
func (r *Report) String() string {
	if r.Ok() {
		return fmt.Sprintf("ok (%d runs, 0 violations)", r.Runs)
	}
	return fmt.Sprintf("%d violations in %d runs; first: %v", len(r.Violations), r.Runs, r.Violations[0])
}

// RunOutcome is one processor's result in a consensus run, as the
// checkers consume it.
type RunOutcome[V comparable] struct {
	Node    int
	Decided bool
	Value   V
	Round   int
}

// CheckConsensus verifies one run: agreement among deciders, validity of
// the decided value against the correct processors' inputs, and — when
// expectAll is set — termination (every listed processor decided).
func CheckConsensus[V comparable](outcomes []RunOutcome[V], inputs map[int]V, expectAll bool) Report {
	rep := Report{Runs: 1}
	var (
		first   V
		haveAny bool
	)
	for _, o := range outcomes {
		if !o.Decided {
			if expectAll {
				rep.Add("termination", "processor %d did not decide", o.Node)
			}
			continue
		}
		if !haveAny {
			first, haveAny = o.Value, true
		} else if o.Value != first {
			rep.Add("agreement", "processor %d decided %v, another decided %v", o.Node, o.Value, first)
		}
	}
	if !haveAny {
		rep.Add("termination", "no processor decided")
		return rep
	}
	valid := false
	for _, in := range inputs {
		if in == first {
			valid = true
		}
	}
	if !valid {
		rep.Add("validity", "decided %v, inputs %v", first, inputs)
	}
	return rep
}

// ObjectOutcome is one processor's (confidence, value) from a single
// invocation round of an AC or VAC object.
type ObjectOutcome[V comparable] struct {
	Node  int
	Conf  core.Confidence
	Value V
}

// CheckVACRound verifies the paper's four VAC guarantees over one round
// of outcomes: coherence over adopt & commit, coherence over vacillate &
// adopt, convergence, and validity.
func CheckVACRound[V comparable](outs []ObjectOutcome[V], inputs map[int]V) Report {
	rep := Report{Runs: 1}
	isInput := func(v V) bool {
		for _, in := range inputs {
			if in == v {
				return true
			}
		}
		return false
	}
	var (
		sawCommit, sawAdopt bool
		commitVal, adoptVal V
	)
	for _, o := range outs {
		if !o.Conf.Valid() {
			rep.Add("contract", "processor %d returned confidence %v", o.Node, o.Conf)
			continue
		}
		if !isInput(o.Value) {
			rep.Add("validity", "processor %d returned %v, not an input of %v", o.Node, o.Value, inputs)
		}
		switch o.Conf {
		case core.Commit:
			if sawCommit && o.Value != commitVal {
				rep.Add("coherence-ac", "commits with distinct values %v and %v", o.Value, commitVal)
			}
			sawCommit, commitVal = true, o.Value
		case core.Adopt:
			if sawAdopt && o.Value != adoptVal {
				rep.Add("coherence-va", "adopts with distinct values %v and %v", o.Value, adoptVal)
			}
			sawAdopt, adoptVal = true, o.Value
		}
	}
	if sawCommit {
		for _, o := range outs {
			if o.Conf == core.Vacillate {
				rep.Add("coherence-ac", "processor %d vacillates beside a commit of %v", o.Node, commitVal)
			} else if o.Value != commitVal {
				rep.Add("coherence-ac", "processor %d carries %v beside a commit of %v", o.Node, o.Value, commitVal)
			}
		}
	}
	if sawCommit && sawAdopt && commitVal != adoptVal {
		rep.Add("coherence-ac", "adopt value %v differs from commit value %v", adoptVal, commitVal)
	}
	if unanimous, v := unanimousInput(inputs); unanimous {
		for _, o := range outs {
			if o.Conf != core.Commit || o.Value != v {
				rep.Add("convergence", "processor %d got (%v, %v) on unanimous input %v", o.Node, o.Conf, o.Value, v)
			}
		}
	}
	return rep
}

// CheckACRound verifies AdoptCommit guarantees over one round: coherence,
// convergence, validity, and the no-vacillate contract.
func CheckACRound[V comparable](outs []ObjectOutcome[V], inputs map[int]V) Report {
	rep := Report{Runs: 1}
	isInput := func(v V) bool {
		for _, in := range inputs {
			if in == v {
				return true
			}
		}
		return false
	}
	var (
		sawCommit bool
		commitVal V
	)
	for _, o := range outs {
		if o.Conf != core.Adopt && o.Conf != core.Commit {
			rep.Add("contract", "processor %d returned %v from an AC", o.Node, o.Conf)
			continue
		}
		if !isInput(o.Value) {
			rep.Add("validity", "processor %d returned %v, not an input of %v", o.Node, o.Value, inputs)
		}
		if o.Conf == core.Commit {
			if sawCommit && o.Value != commitVal {
				rep.Add("coherence", "commits with distinct values %v and %v", o.Value, commitVal)
			}
			sawCommit, commitVal = true, o.Value
		}
	}
	if sawCommit {
		for _, o := range outs {
			if o.Value != commitVal {
				rep.Add("coherence", "processor %d carries %v beside a commit of %v", o.Node, o.Value, commitVal)
			}
		}
	}
	if unanimous, v := unanimousInput(inputs); unanimous {
		for _, o := range outs {
			if o.Conf != core.Commit || o.Value != v {
				rep.Add("convergence", "processor %d got (%v, %v) on unanimous input %v", o.Node, o.Conf, o.Value, v)
			}
		}
	}
	return rep
}

func unanimousInput[V comparable](inputs map[int]V) (bool, V) {
	var (
		first V
		have  bool
	)
	for _, v := range inputs {
		if !have {
			first, have = v, true
		} else if v != first {
			return false, first
		}
	}
	return have, first
}
