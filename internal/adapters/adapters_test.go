package adapters

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ooc/internal/benor"
	"ooc/internal/core"
	"ooc/internal/metrics"
	"ooc/internal/netsim"
	"ooc/internal/sim"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// acResult is one processor's AC output in a concurrent round.
type acResult struct {
	conf core.Confidence
	val  int
	err  error
}

// concurrentACRound invokes obj(id).Propose(inputs[id], round) on n
// goroutines and returns the outcomes.
func concurrentACRound(t *testing.T, n int, obj func(id int) core.AdoptCommit[int], inputs []int, round int) []acResult {
	t.Helper()
	outs := make([]acResult, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, v, err := obj(id).Propose(ctxT(t), inputs[id], round)
			outs[id] = acResult{conf: c, val: v, err: err}
		}(id)
	}
	wg.Wait()
	return outs
}

// checkACProperties asserts coherence, convergence, and validity of a set
// of adopt-commit outcomes.
func checkACProperties(t *testing.T, outs []acResult, inputs []int) {
	t.Helper()
	isInput := func(v int) bool {
		for _, in := range inputs {
			if in == v {
				return true
			}
		}
		return false
	}
	commitVal, sawCommit := 0, false
	for id, o := range outs {
		if o.err != nil {
			t.Fatalf("processor %d: %v", id, o.err)
		}
		if o.conf != core.Adopt && o.conf != core.Commit {
			t.Fatalf("processor %d: AC returned %v", id, o.conf)
		}
		if !isInput(o.val) {
			t.Fatalf("validity: processor %d returned %d, inputs %v", id, o.val, inputs)
		}
		if o.conf == core.Commit {
			if sawCommit && o.val != commitVal {
				t.Fatalf("two commits with values %d and %d", o.val, commitVal)
			}
			sawCommit, commitVal = true, o.val
		}
	}
	if sawCommit {
		for id, o := range outs {
			if o.val != commitVal {
				t.Fatalf("coherence: processor %d carries %d, committed %d", id, o.val, commitVal)
			}
		}
	}
	unanimous := true
	for _, in := range inputs {
		if in != inputs[0] {
			unanimous = false
		}
	}
	if unanimous {
		for id, o := range outs {
			if o.conf != core.Commit || o.val != inputs[0] {
				t.Fatalf("convergence: processor %d got (%v, %d) on unanimous %d", id, o.conf, o.val, inputs[0])
			}
		}
	}
}

func TestSharedACProperties(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		rng := sim.NewRNG(seed)
		n := 2 + rng.Intn(7)
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = rng.Bit()
		}
		store := NewSharedACStore(n)
		outs := concurrentACRound(t, n, store.Object, inputs, 1)
		checkACProperties(t, outs, inputs)
	}
}

func TestSharedACUnanimousCommits(t *testing.T) {
	const n = 6
	store := NewSharedACStore(n)
	inputs := []int{1, 1, 1, 1, 1, 1}
	outs := concurrentACRound(t, n, store.Object, inputs, 1)
	for id, o := range outs {
		if o.conf != core.Commit || o.val != 1 {
			t.Fatalf("processor %d: (%v, %d)", id, o.conf, o.val)
		}
	}
}

func TestSharedACSeparateRoundsIndependent(t *testing.T) {
	store := NewSharedACStore(2)
	// Round 1 is contended; round 2 is unanimous and must still commit.
	outs1 := concurrentACRound(t, 2, store.Object, []int{0, 1}, 1)
	checkACProperties(t, outs1, []int{0, 1})
	outs2 := concurrentACRound(t, 2, store.Object, []int{1, 1}, 2)
	for _, o := range outs2 {
		if o.conf != core.Commit || o.val != 1 {
			t.Fatalf("round 2 not fresh: %+v", o)
		}
	}
}

func TestSharedACContextCancelled(t *testing.T) {
	store := NewSharedACStore(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := store.Object(0).Propose(ctx, 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// vacResult is one processor's VAC output.
type vacResult struct {
	conf core.Confidence
	val  int
	err  error
}

// checkVACProperties asserts the paper's VAC guarantees.
func checkVACProperties(t *testing.T, outs []vacResult, inputs []int) {
	t.Helper()
	isInput := func(v int) bool {
		for _, in := range inputs {
			if in == v {
				return true
			}
		}
		return false
	}
	var (
		sawCommit, sawAdopt bool
		commitVal, adoptVal int
		unanimous           = true
	)
	for _, in := range inputs {
		if in != inputs[0] {
			unanimous = false
		}
	}
	for id, o := range outs {
		if o.err != nil {
			t.Fatalf("processor %d: %v", id, o.err)
		}
		if !o.conf.Valid() {
			t.Fatalf("processor %d: invalid confidence %v", id, o.conf)
		}
		if !isInput(o.val) {
			t.Fatalf("validity: processor %d returned %d, inputs %v", id, o.val, inputs)
		}
		switch o.conf {
		case core.Commit:
			if sawCommit && o.val != commitVal {
				t.Fatalf("two commits: %d and %d", o.val, commitVal)
			}
			sawCommit, commitVal = true, o.val
		case core.Adopt:
			if sawAdopt && o.val != adoptVal {
				t.Fatalf("two adopts: %d and %d", o.val, adoptVal)
			}
			sawAdopt, adoptVal = true, o.val
		}
	}
	if sawCommit {
		for id, o := range outs {
			if o.conf == core.Vacillate {
				t.Fatalf("coherence A&C: processor %d vacillates beside a commit", id)
			}
			if o.val != commitVal {
				t.Fatalf("coherence A&C: processor %d carries %d, committed %d", id, o.val, commitVal)
			}
		}
	}
	if sawCommit && sawAdopt && commitVal != adoptVal {
		t.Fatalf("adopt value %d != commit value %d", adoptVal, commitVal)
	}
	if unanimous {
		for id, o := range outs {
			if o.conf != core.Commit || o.val != inputs[0] {
				t.Fatalf("convergence: processor %d got (%v, %d)", id, o.conf, o.val)
			}
		}
	}
}

func TestVACFromACsProperties(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := sim.NewRNG(seed + 1000)
		n := 2 + rng.Intn(7)
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = rng.Bit()
		}
		store1 := NewSharedACStore(n)
		store2 := NewSharedACStore(n)
		outs := make([]vacResult, n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				vac := NewVACFromACs[int](store1.Object(id), store2.Object(id))
				c, v, err := vac.Propose(ctxT(t), inputs[id], 1)
				outs[id] = vacResult{conf: c, val: v, err: err}
			}(id)
		}
		wg.Wait()
		checkVACProperties(t, outs, inputs)
	}
}

func TestVACFromACsRejectsVacillatingAC(t *testing.T) {
	bad := core.ACFunc[int](func(_ context.Context, v int, _ int) (core.Confidence, int, error) {
		return core.Vacillate, v, nil
	})
	good := core.ACFunc[int](func(_ context.Context, v int, _ int) (core.Confidence, int, error) {
		return core.Adopt, v, nil
	})
	vac := NewVACFromACs[int](bad, good)
	if _, _, err := vac.Propose(context.Background(), 1, 1); !errors.Is(err, core.ErrContractViolation) {
		t.Fatalf("err = %v", err)
	}
	vac = NewVACFromACs[int](good, bad)
	if _, _, err := vac.Propose(context.Background(), 1, 1); !errors.Is(err, core.ErrContractViolation) {
		t.Fatalf("err = %v", err)
	}
}

func TestVACFromACsConsensusUnderTemplate(t *testing.T) {
	// Full circle: a consensus built from two shared-memory ACs per round
	// plus a coin-flip reconciliator, under the paper's Algorithm 1.
	for seed := uint64(0); seed < 10; seed++ {
		rng := sim.NewRNG(seed)
		n := 3 + int(seed)%4
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = rng.Bit()
		}
		store1 := NewSharedACStore(n)
		store2 := NewSharedACStore(n)
		decisions := make([]core.Decision[int], n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				vac := NewVACFromACs[int](store1.Object(id), store2.Object(id))
				rec := benor.NewReconciliator(rng.Fork(uint64(id)))
				decisions[id], errs[id] = core.RunVAC[int](ctxT(t), vac, rec, inputs[id],
					core.WithMaxRounds(500))
			}(id)
		}
		wg.Wait()
		for id, err := range errs {
			if err != nil {
				t.Fatalf("seed %d processor %d: %v", seed, id, err)
			}
		}
		for id := 1; id < n; id++ {
			if decisions[id].Value != decisions[0].Value {
				t.Fatalf("seed %d: agreement violated: %v", seed, decisions)
			}
		}
		valid := false
		for _, in := range inputs {
			if in == decisions[0].Value {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("seed %d: validity violated: decided %d of %v", seed, decisions[0].Value, inputs)
		}
	}
}

func TestACFromVACProperties(t *testing.T) {
	// Wrap Ben-Or's message-passing VAC as an AC and check AC guarantees
	// hold across adversarial schedules.
	for seed := uint64(0); seed < 15; seed++ {
		const n, tFaults = 5, 2
		rng := sim.NewRNG(seed + 77)
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = rng.Bit()
		}
		nw := netsim.New(n, netsim.WithSeed(seed))
		outs := concurrentACRound(t, n, func(id int) core.AdoptCommit[int] {
			vac, err := benor.NewVAC(nw.Node(id), tFaults)
			if err != nil {
				t.Error(err)
				return nil
			}
			return NewACFromVAC[int](vac)
		}, inputs, 1)
		checkACProperties(t, outs, inputs)
	}
}

func TestACFromVACPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	vac := core.VACFunc[int](func(_ context.Context, v int, _ int) (core.Confidence, int, error) {
		return 0, 0, boom
	})
	ac := NewACFromVAC[int](vac)
	if _, _, err := ac.Propose(context.Background(), 1, 1); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestOutcomeLogAndClassCounts(t *testing.T) {
	var log OutcomeLog
	log.Add(Outcome{Node: 0, Round: 1, Conf: core.Vacillate, Value: 0})
	log.Add(Outcome{Node: 1, Round: 1, Conf: core.Adopt, Value: 1})
	log.Add(Outcome{Node: 2, Round: 2, Conf: core.Commit, Value: 1})
	if got := len(log.All()); got != 3 {
		t.Fatalf("All() has %d entries", got)
	}
	per := log.PerRound()
	if len(per[1]) != 2 || len(per[2]) != 1 {
		t.Fatalf("PerRound = %v", per)
	}
	counts := ClassCounts(log.All())
	if counts[core.Vacillate] != 1 || counts[core.Adopt] != 1 || counts[core.Commit] != 1 {
		t.Fatalf("ClassCounts = %v", counts)
	}
}

func TestInstrumentedVACRecords(t *testing.T) {
	var log OutcomeLog
	inner := core.VACFunc[int](func(_ context.Context, v int, round int) (core.Confidence, int, error) {
		if round < 2 {
			return core.Vacillate, v, nil
		}
		return core.Commit, v, nil
	})
	iv := NewInstrumentedVAC[int](inner, &log, 9)
	rec := core.ReconciliatorFunc[int](func(_ context.Context, _ core.Confidence, v int, _ int) (int, error) {
		return v, nil
	})
	if _, err := core.RunVAC[int](context.Background(), iv, rec, 1); err != nil {
		t.Fatal(err)
	}
	outs := log.All()
	if len(outs) != 2 {
		t.Fatalf("recorded %d outcomes, want 2", len(outs))
	}
	if outs[0].Conf != core.Vacillate || outs[1].Conf != core.Commit || outs[1].Node != 9 {
		t.Fatalf("outcomes = %+v", outs)
	}
}

func TestMeteredVACCountsOutcomes(t *testing.T) {
	reg := metrics.NewRegistry()
	inner := core.VACFunc[int](func(_ context.Context, v int, round int) (core.Confidence, int, error) {
		switch round {
		case 1:
			return core.Vacillate, v, nil
		case 2:
			return core.Adopt, v, nil
		default:
			return core.Commit, v, nil
		}
	})
	mv := NewMeteredVAC[int](inner, reg, "stub", 4)
	rec := core.ReconciliatorFunc[int](func(_ context.Context, _ core.Confidence, v int, _ int) (int, error) {
		return v, nil
	})
	if _, err := core.RunVAC[int](context.Background(), mv, rec, 1); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for conf, want := range map[string]int64{"vacillate": 1, "adopt": 1, "commit": 1} {
		name := metrics.Label("adapters_vac_outcomes_total", "object", "stub", "outcome", conf)
		if got := snap.Counters[name]; got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
		hist := metrics.Label("adapters_vac_invoke_seconds", "object", "stub", "outcome", conf)
		if got := snap.Histograms[hist].Count; got != want {
			t.Fatalf("%s count = %d, want %d", hist, got, want)
		}
	}

	// A nil registry must yield a transparent wrapper.
	plain := NewMeteredVAC[int](inner, nil, "stub", 4)
	if x, _, err := plain.Propose(context.Background(), 1, 3); err != nil || x != core.Commit {
		t.Fatalf("transparent wrapper: (%v, %v)", x, err)
	}
}

func TestMeteredVACCountsErrors(t *testing.T) {
	reg := metrics.NewRegistry()
	boom := errors.New("boom")
	inner := core.VACFunc[int](func(_ context.Context, _ int, _ int) (core.Confidence, int, error) {
		return 0, 0, boom
	})
	mv := NewMeteredVAC[int](inner, reg, "err", 0)
	if _, _, err := mv.Propose(context.Background(), 1, 1); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	name := metrics.Label("adapters_vac_errors_total", "object", "err")
	if got := reg.Snapshot().Counters[name]; got != 1 {
		t.Fatalf("%s = %d, want 1", name, got)
	}
}
