// Package adapters implements the object algebra of the paper's
// Section 5, which relates the two agreement detectors:
//
//   - ACFromVAC shows VAC is at least as strong as AC: forgetting the
//     vacillate/adopt distinction yields a correct adopt-commit object.
//   - VACFromACs shows AC is "only slightly weaker": two adopt-commit
//     objects chained per round implement a correct VAC.
//
// The package also provides instrumented wrappers that record every
// (confidence, value) an object hands out, which the experiment suite
// uses to count Ben-Or's three per-round outcome classes — the empirical
// core of the paper's argument that one AC (or even two ACs composed the
// way Aspnes's framework composes them, deciding on first commit) cannot
// express Ben-Or.
package adapters

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ooc/internal/core"
	"ooc/internal/metrics"
)

// ACFromVAC turns a vacillate-adopt-commit object into an adopt-commit
// object by mapping vacillate to adopt.
//
// Correctness: AC coherence follows from VAC coherence over adopt &
// commit (a commit fixes everyone's value, and no level maps above
// adopt); convergence and validity are inherited verbatim.
type ACFromVAC[V comparable] struct {
	vac core.VacillateAdoptCommit[V]
}

var _ core.AdoptCommit[int] = (*ACFromVAC[int])(nil)

// NewACFromVAC wraps vac as an AdoptCommit.
func NewACFromVAC[V comparable](vac core.VacillateAdoptCommit[V]) *ACFromVAC[V] {
	return &ACFromVAC[V]{vac: vac}
}

// Propose implements core.AdoptCommit.
func (a *ACFromVAC[V]) Propose(ctx context.Context, v V, round int) (core.Confidence, V, error) {
	x, u, err := a.vac.Propose(ctx, v, round)
	if err != nil {
		return 0, u, err
	}
	if x == core.Vacillate {
		x = core.Adopt
	}
	return x, u, nil
}

// VACFromACs builds a vacillate-adopt-commit object from two adopt-commit
// objects invoked in sequence each round:
//
//	VAC(v, m):
//	  (c1, u) ← AC1(v, m)
//	  (c2, w) ← AC2(u, m)
//	  if c1 = commit and c2 = commit: return (commit, w)
//	  if c2 = commit:                 return (adopt, w)
//	  else:                           return (vacillate, w)
//
// Why the guarantees hold:
//
//   - Coherence over adopt & commit: if p returns commit, p's AC1
//     committed u, so by AC1 coherence every processor left AC1 with u
//     and fed u into AC2; by AC2 convergence everyone's c2 = commit with
//     value u — so every processor returns (commit, u) or (adopt, u),
//     never vacillate.
//   - Coherence over vacillate & adopt: if nobody committed and p
//     returns (adopt, w), p's AC2 committed w, so by AC2 coherence every
//     processor's AC2 value is w; adopt-returners therefore all carry w,
//     and vacillate-returners may carry anything valid.
//   - Convergence: unanimous v commits through both ACs.
//   - Validity and termination are inherited.
//
// The brief announcement asserts this construction exists ("as we have
// shown") without giving it; the construction above is property-tested in
// this repository against adversarial schedules.
type VACFromACs[V comparable] struct {
	ac1, ac2 core.AdoptCommit[V]
}

var _ core.VacillateAdoptCommit[int] = (*VACFromACs[int])(nil)

// NewVACFromACs builds the VAC from two independent AdoptCommit objects.
// The two must be distinct objects (distinct protocol instances): reusing
// one object for both stages breaks round bookkeeping.
func NewVACFromACs[V comparable](ac1, ac2 core.AdoptCommit[V]) *VACFromACs[V] {
	return &VACFromACs[V]{ac1: ac1, ac2: ac2}
}

// Propose implements core.VacillateAdoptCommit.
func (va *VACFromACs[V]) Propose(ctx context.Context, v V, round int) (core.Confidence, V, error) {
	c1, u, err := va.ac1.Propose(ctx, v, round)
	if err != nil {
		return 0, u, fmt.Errorf("adapters: first AC: %w", err)
	}
	if c1 == core.Vacillate {
		return 0, u, fmt.Errorf("adapters: first AC returned vacillate: %w", core.ErrContractViolation)
	}
	c2, w, err := va.ac2.Propose(ctx, u, round)
	if err != nil {
		return 0, w, fmt.Errorf("adapters: second AC: %w", err)
	}
	if c2 == core.Vacillate {
		return 0, w, fmt.Errorf("adapters: second AC returned vacillate: %w", core.ErrContractViolation)
	}
	switch {
	case c1 == core.Commit && c2 == core.Commit:
		return core.Commit, w, nil
	case c2 == core.Commit:
		return core.Adopt, w, nil
	default:
		return core.Vacillate, w, nil
	}
}

// Outcome is one recorded object return.
type Outcome struct {
	Node  int
	Round int
	Conf  core.Confidence
	Value any
}

// OutcomeLog collects Outcome records from concurrent processors.
// The zero value is ready to use.
type OutcomeLog struct {
	mu   sync.Mutex
	outs []Outcome
}

// Add appends one record.
func (l *OutcomeLog) Add(o Outcome) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.outs = append(l.outs, o)
}

// All returns a copy of the records.
func (l *OutcomeLog) All() []Outcome {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Outcome, len(l.outs))
	copy(out, l.outs)
	return out
}

// PerRound groups records by round.
func (l *OutcomeLog) PerRound() map[int][]Outcome {
	grouped := make(map[int][]Outcome)
	for _, o := range l.All() {
		grouped[o.Round] = append(grouped[o.Round], o)
	}
	return grouped
}

// ClassCounts tallies how many of the records carry each confidence.
func ClassCounts(outs []Outcome) map[core.Confidence]int {
	counts := make(map[core.Confidence]int, 3)
	for _, o := range outs {
		counts[o.Conf]++
	}
	return counts
}

// InstrumentedVAC records every return of the wrapped VAC into log.
type InstrumentedVAC[V comparable] struct {
	vac  core.VacillateAdoptCommit[V]
	log  *OutcomeLog
	node int
}

var _ core.VacillateAdoptCommit[int] = (*InstrumentedVAC[int])(nil)

// NewInstrumentedVAC wraps vac, attributing records to node.
func NewInstrumentedVAC[V comparable](vac core.VacillateAdoptCommit[V], log *OutcomeLog, node int) *InstrumentedVAC[V] {
	return &InstrumentedVAC[V]{vac: vac, log: log, node: node}
}

// Propose implements core.VacillateAdoptCommit.
func (iv *InstrumentedVAC[V]) Propose(ctx context.Context, v V, round int) (core.Confidence, V, error) {
	x, u, err := iv.vac.Propose(ctx, v, round)
	if err == nil {
		iv.log.Add(Outcome{Node: iv.node, Round: round, Conf: x, Value: u})
	}
	return x, u, err
}

// MeteredVAC is InstrumentedVAC's telemetry sibling: instead of an
// in-memory OutcomeLog it feeds a metrics.Registry — one outcome counter
// and one invoke-latency histogram per confidence level, under the given
// object name. Use it to watch a VAC that is not run through the core
// templates (which meter their objects themselves).
type MeteredVAC[V comparable] struct {
	vac      core.VacillateAdoptCommit[V]
	node     int
	outcomes [core.Commit + 1]*metrics.Counter
	latency  [core.Commit + 1]*metrics.Histogram
	errors   *metrics.Counter
}

var _ core.VacillateAdoptCommit[int] = (*MeteredVAC[int])(nil)

// NewMeteredVAC wraps vac, registering its instruments under
// object=<name> with per-outcome labels. A nil registry produces a
// transparent wrapper (nil instruments no-op).
func NewMeteredVAC[V comparable](vac core.VacillateAdoptCommit[V], reg *metrics.Registry, name string, node int) *MeteredVAC[V] {
	mv := &MeteredVAC[V]{vac: vac, node: node}
	if reg == nil {
		return mv
	}
	for c := core.Vacillate; c <= core.Commit; c++ {
		mv.outcomes[c] = reg.Counter(metrics.Label("adapters_vac_outcomes_total", "object", name, "outcome", c.String()))
		mv.latency[c] = reg.Histogram(metrics.Label("adapters_vac_invoke_seconds", "object", name, "outcome", c.String()), nil)
	}
	mv.errors = reg.Counter(metrics.Label("adapters_vac_errors_total", "object", name))
	return mv
}

// Propose implements core.VacillateAdoptCommit.
func (mv *MeteredVAC[V]) Propose(ctx context.Context, v V, round int) (core.Confidence, V, error) {
	start := time.Now()
	x, u, err := mv.vac.Propose(ctx, v, round)
	if err != nil {
		mv.errors.Inc(mv.node)
		return x, u, err
	}
	if x.Valid() {
		mv.outcomes[x].Inc(mv.node)
		mv.latency[x].ObserveSince(mv.node, start)
	}
	return x, u, err
}
