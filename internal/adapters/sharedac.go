package adapters

import (
	"context"
	"fmt"
	"sync"

	"ooc/internal/core"
)

// SharedACStore is a wait-free adopt-commit object for the shared-memory
// crash model, following the two-array construction in Aspnes's "A
// modular approach to shared-memory consensus":
//
//	AC(v):
//	  A[i] ← v
//	  if snapshot(A) contains only v:  B[i] ← (commit-bid, v)
//	  else:                            B[i] ← (no-bid, v)
//	  s ← snapshot(B)
//	  if s contains only commit-bids, all with value v: return (commit, v)
//	  if s contains a commit-bid with value v:          return (adopt, v)
//	  else:                                             return (adopt, own v)
//
// Atomic snapshots are modelled by a mutex, which is a legitimate
// strengthening of the snapshot object the construction assumes. One
// store serves all rounds; each round gets fresh arrays.
//
// Two processors never write the same slot, and at most one value can win
// a commit-bid per round (two unanimity snapshots of A with different
// values would each have to precede the other's write — impossible), which
// is what makes the object coherent.
type SharedACStore struct {
	n  int
	mu sync.Mutex
	// rounds maps the round number to its two arrays.
	rounds map[int]*acRound
}

type acRound struct {
	proposals []*any
	bids      []*bid
}

type bid struct {
	commit bool
	value  any
}

// NewSharedACStore creates a store for n processors.
func NewSharedACStore(n int) *SharedACStore {
	if n <= 0 {
		panic(fmt.Sprintf("adapters: invalid processor count %d", n))
	}
	return &SharedACStore{n: n, rounds: make(map[int]*acRound)}
}

func (s *SharedACStore) round(m int) *acRound {
	r, ok := s.rounds[m]
	if !ok {
		r = &acRound{proposals: make([]*any, s.n), bids: make([]*bid, s.n)}
		s.rounds[m] = r
	}
	return r
}

// Object returns processor id's handle on the shared object.
func (s *SharedACStore) Object(id int) core.AdoptCommit[int] {
	if id < 0 || id >= s.n {
		panic(fmt.Sprintf("adapters: id %d out of range [0,%d)", id, s.n))
	}
	return &sharedAC{store: s, id: id}
}

type sharedAC struct {
	store *SharedACStore
	id    int
}

var _ core.AdoptCommit[int] = (*sharedAC)(nil)

// Propose implements core.AdoptCommit.
func (a *sharedAC) Propose(ctx context.Context, v int, round int) (core.Confidence, int, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	s := a.store

	// Write the proposal and snapshot A atomically.
	s.mu.Lock()
	r := s.round(round)
	vv := any(v)
	r.proposals[a.id] = &vv
	unanimous := true
	for _, p := range r.proposals {
		if p != nil && *p != vv {
			unanimous = false
		}
	}
	r.bids[a.id] = &bid{commit: unanimous, value: v}
	s.mu.Unlock()

	// Snapshot B in a separate atomic step, so other processors' phase-1
	// writes may interleave between our two phases as in the real
	// snapshot-based construction.
	s.mu.Lock()
	var (
		allCommit  = true
		someCommit *bid
	)
	for _, b := range r.bids {
		if b == nil {
			continue
		}
		if b.commit {
			someCommit = b
		} else {
			allCommit = false
		}
	}
	s.mu.Unlock()

	switch {
	case allCommit && someCommit != nil:
		return core.Commit, someCommit.value.(int), nil
	case someCommit != nil:
		return core.Adopt, someCommit.value.(int), nil
	default:
		return core.Adopt, v, nil
	}
}
