// Package explore is a lightweight schedule explorer: it sweeps a
// scenario across many seeds in parallel and aggregates the safety
// reports. Each seed drives the simulated network's adversarial delivery
// order (and any fault timing derived from it), so a sweep is a
// randomized walk over the schedule space — the practical stand-in for
// exhaustive model checking that keeps every safety property under test
// across thousands of distinct interleavings.
package explore

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"ooc/internal/checker"
)

// Scenario runs one seeded trial and reports its safety checks. It must
// be self-contained: every call builds its own network and processors.
type Scenario func(ctx context.Context, seed uint64) checker.Report

// Options tune a sweep.
type Options struct {
	// Seeds is the number of trials; seeds run from FirstSeed upward.
	Seeds     int
	FirstSeed uint64
	// Parallelism bounds concurrent trials; 0 means GOMAXPROCS.
	Parallelism int
	// StopOnViolation aborts the sweep at the first violated trial,
	// leaving Report.Runs at the number of completed trials.
	StopOnViolation bool
}

// Sweep runs the scenario across the seed range and merges all reports.
func Sweep(ctx context.Context, fn Scenario, opts Options) (checker.Report, error) {
	if opts.Seeds <= 0 {
		return checker.Report{}, fmt.Errorf("explore: Seeds must be positive, got %d", opts.Seeds)
	}
	parallelism := opts.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}

	sweepCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu     sync.Mutex
		merged checker.Report
		wg     sync.WaitGroup
	)
	sem := make(chan struct{}, parallelism)
	for i := 0; i < opts.Seeds; i++ {
		if sweepCtx.Err() != nil {
			break
		}
		seed := opts.FirstSeed + uint64(i)
		sem <- struct{}{}
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			defer func() { <-sem }()
			if sweepCtx.Err() != nil {
				return
			}
			rep := fn(sweepCtx, seed)
			mu.Lock()
			defer mu.Unlock()
			merged.Merge(rep)
			if opts.StopOnViolation && !rep.Ok() {
				cancel()
			}
		}(seed)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return merged, fmt.Errorf("explore: sweep interrupted: %w", err)
	}
	return merged, nil
}
