package explore

import (
	"context"
	"sync"
	"testing"
	"time"

	"ooc/internal/benor"
	"ooc/internal/checker"
	"ooc/internal/core"
	"ooc/internal/netsim"
	"ooc/internal/sim"
	"ooc/internal/workload"
)

func TestSweepMergesAllSeeds(t *testing.T) {
	var mu sync.Mutex
	seen := map[uint64]bool{}
	rep, err := Sweep(context.Background(), func(_ context.Context, seed uint64) checker.Report {
		mu.Lock()
		seen[seed] = true
		mu.Unlock()
		return checker.Report{Runs: 1}
	}, Options{Seeds: 25, FirstSeed: 100, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 25 || !rep.Ok() {
		t.Fatalf("report = %v", rep)
	}
	for s := uint64(100); s < 125; s++ {
		if !seen[s] {
			t.Fatalf("seed %d never ran", s)
		}
	}
}

func TestSweepStopOnViolation(t *testing.T) {
	rep, err := Sweep(context.Background(), func(_ context.Context, seed uint64) checker.Report {
		var r checker.Report
		r.Runs = 1
		if seed == 3 {
			r.Add("agreement", "seeded failure")
		}
		time.Sleep(time.Millisecond)
		return r
	}, Options{Seeds: 1000, Parallelism: 2, StopOnViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("violation not surfaced")
	}
	if rep.Runs >= 1000 {
		t.Fatalf("sweep did not stop early: %d runs", rep.Runs)
	}
}

func TestSweepRejectsBadOptions(t *testing.T) {
	if _, err := Sweep(context.Background(), nil, Options{Seeds: 0}); err == nil {
		t.Fatal("Seeds=0 accepted")
	}
}

func TestSweepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(ctx, func(context.Context, uint64) checker.Report {
		return checker.Report{Runs: 1}
	}, Options{Seeds: 10})
	if err == nil {
		t.Fatal("cancelled sweep reported success")
	}
}

// benOrScenario is the canonical use: one fully checked Ben-Or run per
// seed, with inputs, crash plan, and delivery order all derived from the
// seed.
func benOrScenario(n int) Scenario {
	return func(ctx context.Context, seed uint64) checker.Report {
		tFaults := (n - 1) / 2
		rng := sim.NewRNG(seed)
		inputs := workload.BinaryInputs(workload.SplitRandom, n, rng)
		crashes := workload.CrashPlan(n, int(seed)%(tFaults+1), rng)
		nw := netsim.New(n, netsim.WithSeed(seed))
		crashed := map[int]bool{}
		for _, c := range crashes {
			crashed[c.Node] = true
			if c.AfterSends == 0 {
				nw.Crash(c.Node)
			} else {
				nw.CrashAfterSends(c.Node, c.AfterSends)
			}
		}
		runCtx, cancel := context.WithTimeout(ctx, time.Minute)
		defer cancel()
		outs := make([]checker.RunOutcome[int], 0, n)
		results := make([]checker.RunOutcome[int], n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				d, err := benor.RunDecomposed(runCtx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id],
					core.WithMaxRounds(3000))
				if err == nil {
					results[id] = checker.RunOutcome[int]{Node: id, Decided: true, Value: d.Value, Round: d.Round}
				} else {
					results[id] = checker.RunOutcome[int]{Node: id}
				}
			}(id)
		}
		wg.Wait()
		for _, o := range results {
			if !crashed[o.Node] {
				outs = append(outs, o)
			}
		}
		return checker.CheckConsensus(outs, workload.InputsToMap(inputs), len(crashes) == 0)
	}
}

func TestBenOrScheduleSweep(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	rep, err := Sweep(context.Background(), benOrScenario(5), Options{Seeds: seeds, StopOnViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("safety violated in sweep: %v", rep)
	}
	if rep.Runs != seeds {
		t.Fatalf("ran %d/%d seeds", rep.Runs, seeds)
	}
}
