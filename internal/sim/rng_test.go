package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: same seed diverged: %d != %d", i, got, want)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGZeroValueUsable(t *testing.T) {
	var r RNG
	// Must not hang or return a constant stream (the all-zero xoshiro
	// state would).
	first := r.Uint64()
	varied := false
	for i := 0; i < 64; i++ {
		if r.Uint64() != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("zero-value RNG produced a constant stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(99)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBitIsRoughlyFair(t *testing.T) {
	r := NewRNG(123)
	ones := 0
	const n = 20000
	for i := 0; i < n; i++ {
		ones += r.Bit()
	}
	if ones < n*45/100 || ones > n*55/100 {
		t.Fatalf("Bit() produced %d/%d ones, outside 45%%-55%%", ones, n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(2024)
	f1 := parent.Fork(1)
	f2 := parent.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forks with different labels produced %d/100 identical outputs", same)
	}
}

func TestForkDeterministic(t *testing.T) {
	a := NewRNG(11).Fork(3)
	b := NewRNG(11).Fork(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical fork lineage diverged")
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := NewRNG(77).Split("send", 3)
	b := NewRNG(77).Split("send", 3)
	for i := 0; i < 200; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical Split lineage diverged")
		}
	}
}

func TestSplitStreamsDecorrelated(t *testing.T) {
	parent := NewRNG(2024)
	pairs := []struct{ x, y *RNG }{
		{parent.Split("send", 1), parent.Split("send", 2)}, // same role, different id
		{parent.Split("send", 1), parent.Split("recv", 1)}, // same id, different role
		{parent.Split("send", 0), parent.Fork(0)},          // Split vs legacy Fork
	}
	for pi, p := range pairs {
		same := 0
		for i := 0; i < 100; i++ {
			if p.x.Uint64() == p.y.Uint64() {
				same++
			}
		}
		if same > 2 {
			t.Fatalf("pair %d: %d/100 identical outputs between supposedly independent streams", pi, same)
		}
	}
}

func TestSplitDoesNotDisturbParent(t *testing.T) {
	a := NewRNG(5)
	b := NewRNG(5)
	_ = a.Split("send", 1)
	_ = a.Split("recv", 9)
	_ = a.Stream(2, 4)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split/Stream stepped the parent stream")
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	a := NewRNG(13).Stream(1, 6)
	b := NewRNG(13).Stream(1, 6)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical Stream lineage diverged")
		}
	}
	if NewRNG(13).Stream(1, 6).Uint64() == NewRNG(13).Stream(2, 6).Uint64() {
		t.Fatal("distinct Stream roles produced an identical first draw")
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	f := func(seed uint64, raw []byte) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		orig := append([]byte(nil), raw...)
		r := NewRNG(seed)
		r.Shuffle(len(raw), func(i, j int) { raw[i], raw[j] = raw[j], raw[i] })
		var a, b [256]int
		for _, c := range orig {
			a[c]++
		}
		for _, c := range raw {
			b[c]++
		}
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
