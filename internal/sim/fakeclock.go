package sim

import (
	"sort"
	"sync"
	"time"
)

// FakeClock is a Clock whose time only moves when the test calls Advance.
// Timers created on a FakeClock fire synchronously inside Advance, which
// makes timer-driven protocols (Raft elections, retry loops) fully
// deterministic under test.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeTimer
}

var _ Clock = (*FakeClock)(nil)

// NewFakeClock returns a FakeClock positioned at a fixed, arbitrary epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// NewTimer implements Clock.
func (c *FakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{
		clock: c,
		ch:    make(chan time.Time, 1),
		at:    c.now.Add(d),
		armed: true,
	}
	c.waiters = append(c.waiters, t)
	c.fireDueLocked()
	return t
}

// After implements Clock.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	return c.NewTimer(d).C()
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline.
func (c *FakeClock) Sleep(d time.Duration) {
	<-c.After(d)
}

// Advance moves the clock forward by d, firing every timer whose deadline
// is reached, in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	c.fireDueLocked()
}

// AdvanceTo moves the clock to the given instant if it is in the future.
func (c *FakeClock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
	c.fireDueLocked()
}

// Waiters reports how many timers are currently armed. Tests use this to
// wait until the system under test has parked on its timers before
// advancing.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.waiters {
		if t.armed {
			n++
		}
	}
	return n
}

// NextDeadline reports the earliest armed timer deadline and whether one
// exists. Simulation drivers use it to step time timer-to-timer.
func (c *FakeClock) NextDeadline() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var (
		best  time.Time
		found bool
	)
	for _, t := range c.waiters {
		if t.armed && (!found || t.at.Before(best)) {
			best, found = t.at, true
		}
	}
	return best, found
}

// fireDueLocked fires all armed timers with deadline <= now, earliest
// first, and compacts the waiter list.
func (c *FakeClock) fireDueLocked() {
	due := c.waiters[:0:0]
	for _, t := range c.waiters {
		if t.armed && !t.at.After(c.now) {
			due = append(due, t)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, t := range due {
		t.armed = false
		select {
		case t.ch <- t.at:
		default:
			// Channel already holds an undrained fire; keep the
			// time.Timer semantics of a 1-buffered channel.
		}
	}
	live := c.waiters[:0]
	for _, t := range c.waiters {
		if t.armed {
			live = append(live, t)
		}
	}
	c.waiters = live
}

type fakeTimer struct {
	clock *FakeClock
	ch    chan time.Time
	at    time.Time
	armed bool
}

var _ Timer = (*fakeTimer)(nil)

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	c := t.clock
	c.mu.Lock()
	defer c.mu.Unlock()
	was := t.armed
	t.armed = false
	return was
}

func (t *fakeTimer) Reset(d time.Duration) bool {
	c := t.clock
	c.mu.Lock()
	defer c.mu.Unlock()
	was := t.armed
	t.at = c.now.Add(d)
	t.armed = true
	// Remove any stale entry for this timer before re-registering so the
	// waiter list never holds duplicates.
	live := c.waiters[:0]
	for _, w := range c.waiters {
		if w != t {
			live = append(live, w)
		}
	}
	c.waiters = append(live, t)
	c.fireDueLocked()
	return was
}
