package sim

import "time"

// Clock abstracts time so that protocol code (most importantly the Raft
// election machinery) can run against real wall-clock time in production
// and against a manually advanced clock in deterministic tests.
type Clock interface {
	// Now reports the current time on this clock.
	Now() time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// After is a convenience wrapper equivalent to NewTimer(d).C().
	After(d time.Duration) <-chan time.Time
	// Sleep blocks the calling goroutine for d of this clock's time.
	Sleep(d time.Duration)
}

// Timer is the subset of *time.Timer the repository relies on.
type Timer interface {
	// C is the channel on which the expiry time is delivered.
	C() <-chan time.Time
	// Stop prevents the timer from firing; it reports whether the call
	// stopped a pending fire.
	Stop() bool
	// Reset re-arms the timer to fire after d. Reset must only be called
	// on stopped or expired timers with drained channels, mirroring the
	// time.Timer contract.
	Reset(d time.Duration) bool
}

// RealClock is the production Clock backed by package time.
// The zero value is ready to use.
type RealClock struct{}

var _ Clock = RealClock{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// NewTimer implements Clock.
func (RealClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

type realTimer struct{ t *time.Timer }

var _ Timer = realTimer{}

func (t realTimer) C() <-chan time.Time        { return t.t.C }
func (t realTimer) Stop() bool                 { return t.t.Stop() }
func (t realTimer) Reset(d time.Duration) bool { return t.t.Reset(d) }
