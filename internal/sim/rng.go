// Package sim provides the simulation substrate shared by every protocol
// in this repository: a deterministic, splittable pseudo-random number
// generator and a Clock abstraction with both a real and a manually
// advanced (fake) implementation.
//
// Everything in the repository that needs randomness threads an *RNG
// through explicitly; nothing reads from a global source. This keeps every
// simulated run replayable from a single seed.
package sim

import (
	"fmt"
	"sync"
)

// RNG is a deterministic pseudo-random number generator based on
// splitmix64 seeding into xoshiro256**. It is safe for concurrent use; all
// methods take an internal lock so that per-processor forks can also be
// shared defensively.
//
// The zero value is a valid generator seeded with 0; prefer NewRNG.
type RNG struct {
	mu sync.Mutex
	s  [4]uint64
}

// NewRNG returns a generator deterministically seeded from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.reseed(seed)
	return r
}

func (r *RNG) reseed(seed uint64) {
	// splitmix64 expansion of the seed into the 256-bit state, per
	// Blackman & Vigna's recommendation for xoshiro initialization.
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		// Lazily initialize a zero-value RNG; the all-zero xoshiro state
		// is a fixed point and must never be stepped.
		r.reseed(0)
	}
	return r.next()
}

func (r *RNG) next() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("sim: Intn called with n=%d", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bit returns a fair coin flip as 0 or 1.
func (r *RNG) Bit() int {
	return int(r.Uint64() & 1)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, as
// math/rand.Shuffle does.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent generator from this one, labelled by label.
// Forks with distinct labels from the same parent produce uncorrelated
// streams; forking does not disturb the parent's own stream.
func (r *RNG) Fork(label uint64) *RNG {
	r.mu.Lock()
	base := r.s[0] ^ rotl(r.s[2], 23)
	r.mu.Unlock()
	return NewRNG(base ^ (label+1)*0x9e3779b97f4a7c15)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives a deterministic child generator for the stream named by
// (role, id): the child is seeded as hash(parentState, role, id), so two
// Splits with the same arguments from the same parent state yield
// identical streams, while any difference in role or id decorrelates
// them. Like Fork, Split reads but does not step the parent, so deriving
// any number of streams leaves the parent's own sequence untouched.
//
// This is the determinism contract the sharded network simulator builds
// on: each (role, id) pair — e.g. ("send", 3) or ("recv", 3) — owns a
// private stream whose draws depend only on that node's own operation
// sequence, never on how other nodes' operations interleave with it.
func (r *RNG) Split(role string, id uint64) *RNG {
	r.mu.Lock()
	base := r.s[0] ^ rotl(r.s[2], 23)
	r.mu.Unlock()
	// FNV-1a over the role name keeps distinct roles far apart even when
	// ids collide; mixing id through splitmix64 avalanches small integers.
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(role); i++ {
		h = (h ^ uint64(role[i])) * 0x100000001b3
	}
	return NewRNG(mix64(base) ^ mix64(h) ^ mix64(id+0x9e3779b97f4a7c15))
}

// Stream is shorthand for Split with an integer role, for call sites that
// index roles numerically.
func (r *RNG) Stream(role, id uint64) *RNG {
	r.mu.Lock()
	base := r.s[0] ^ rotl(r.s[2], 23)
	r.mu.Unlock()
	return NewRNG(mix64(base) ^ mix64(role^0x94d049bb133111eb) ^ mix64(id+0x9e3779b97f4a7c15))
}
