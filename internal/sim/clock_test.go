package sim

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	c := RealClock{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("RealClock.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestRealClockTimerFires(t *testing.T) {
	c := RealClock{}
	timer := c.NewTimer(time.Millisecond)
	select {
	case <-timer.C():
	case <-time.After(2 * time.Second):
		t.Fatal("real timer did not fire")
	}
}

func TestFakeClockAdvanceFiresTimer(t *testing.T) {
	c := NewFakeClock()
	timer := c.NewTimer(10 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("timer fired before Advance")
	default:
	}
	c.Advance(9 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("timer fired one second early")
	default:
	}
	c.Advance(time.Second)
	select {
	case at := <-timer.C():
		want := time.Date(2020, 1, 1, 0, 0, 10, 0, time.UTC)
		if !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire after deadline reached")
	}
}

func TestFakeClockZeroDurationFiresImmediately(t *testing.T) {
	c := NewFakeClock()
	timer := c.NewTimer(0)
	select {
	case <-timer.C():
	default:
		t.Fatal("zero-duration timer did not fire on creation")
	}
}

func TestFakeClockStop(t *testing.T) {
	c := NewFakeClock()
	timer := c.NewTimer(time.Second)
	if !timer.Stop() {
		t.Fatal("Stop() on armed timer returned false")
	}
	if timer.Stop() {
		t.Fatal("second Stop() returned true")
	}
	c.Advance(2 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestFakeClockReset(t *testing.T) {
	c := NewFakeClock()
	timer := c.NewTimer(time.Second)
	c.Advance(time.Second)
	<-timer.C()
	if timer.Reset(3 * time.Second) {
		t.Fatal("Reset of expired timer reported it was armed")
	}
	c.Advance(2 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("reset timer fired early")
	default:
	}
	c.Advance(time.Second)
	select {
	case <-timer.C():
	default:
		t.Fatal("reset timer did not fire")
	}
}

func TestFakeClockResetWhileArmedDoesNotDuplicate(t *testing.T) {
	c := NewFakeClock()
	timer := c.NewTimer(time.Second)
	timer.Reset(2 * time.Second)
	if got := c.Waiters(); got != 1 {
		t.Fatalf("Waiters() = %d after Reset of armed timer, want 1", got)
	}
	c.Advance(5 * time.Second)
	// Exactly one fire must be pending.
	<-timer.C()
	select {
	case <-timer.C():
		t.Fatal("timer fired twice")
	default:
	}
}

func TestFakeClockMultipleTimersFireInOrder(t *testing.T) {
	c := NewFakeClock()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i, d := range []time.Duration{3 * time.Second, time.Second, 2 * time.Second} {
		wg.Add(1)
		go func(i int, ch <-chan time.Time) {
			defer wg.Done()
			<-ch
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, c.After(d))
	}
	// Wait until all three goroutines are parked on their channels; the
	// channels are buffered so firing does not require a receiver, but we
	// advance step by step to observe ordering.
	for c.Waiters() != 3 {
		time.Sleep(time.Millisecond)
	}
	c.Advance(time.Second)
	waitLen(t, &mu, &order, 1)
	c.Advance(time.Second)
	waitLen(t, &mu, &order, 2)
	c.Advance(time.Second)
	waitLen(t, &mu, &order, 3)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("timers fired in order %v, want [1 2 0]", order)
	}
}

func waitLen(t *testing.T, mu *sync.Mutex, s *[]int, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		l := len(*s)
		mu.Unlock()
		if l >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d fires, have %d", n, l)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFakeClockNextDeadline(t *testing.T) {
	c := NewFakeClock()
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("NextDeadline reported a deadline on an idle clock")
	}
	c.NewTimer(5 * time.Second)
	c.NewTimer(2 * time.Second)
	at, ok := c.NextDeadline()
	if !ok {
		t.Fatal("NextDeadline found nothing with two armed timers")
	}
	if want := c.Now().Add(2 * time.Second); !at.Equal(want) {
		t.Fatalf("NextDeadline = %v, want %v", at, want)
	}
}

func TestFakeClockAdvanceTo(t *testing.T) {
	c := NewFakeClock()
	start := c.Now()
	timer := c.NewTimer(time.Hour)
	c.AdvanceTo(start.Add(-time.Hour)) // past: no-op
	if !c.Now().Equal(start) {
		t.Fatal("AdvanceTo moved the clock backwards")
	}
	c.AdvanceTo(start.Add(2 * time.Hour))
	select {
	case <-timer.C():
	default:
		t.Fatal("AdvanceTo past deadline did not fire timer")
	}
}

func TestFakeClockSleep(t *testing.T) {
	c := NewFakeClock()
	done := make(chan struct{})
	go func() {
		c.Sleep(time.Minute)
		close(done)
	}()
	for c.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}
