package phaseking

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"ooc/internal/core"
	"ooc/internal/metrics"
	"ooc/internal/netsim"
	"ooc/internal/trace"
)

// DecisionRule selects how the composed protocol turns object outputs
// into a decision.
type DecisionRule int

const (
	// RuleFirstCommit is the paper's Algorithm 2 rule: decide the first
	// committed value (and, per Section 4.1, keep participating). See the
	// package comment for the Byzantine-king caveat this rule carries.
	RuleFirstCommit DecisionRule = iota + 1
	// RuleFinalValue is the classical Phase-King rule: run all phases and
	// decide the final preference. Safe under any 3t < n adversary.
	RuleFinalValue
)

// Config describes one Phase-King execution.
type Config struct {
	// N is the total processor count; T the Byzantine bound, 3T < N.
	N, T int
	// Inputs maps each correct processor to its binary input. Every id in
	// [0, N) must appear in exactly one of Inputs and Byzantine.
	Inputs map[int]int
	// Byzantine maps faulty processor ids to their behaviours.
	Byzantine map[int]Adversary
	// Rounds bounds the run; 0 means T+2, which guarantees that every
	// correct processor observes a commit (the first T+1 kings include a
	// correct one, and unanimity commits one round later).
	Rounds int
	// Rule selects the decision rule; 0 means RuleFirstCommit.
	Rule DecisionRule
	// Recorder, if non-nil, receives the run's trace.
	Recorder *trace.Recorder
	// Metrics, if non-nil, receives exchange counters and per-object
	// invoke-latency histograms.
	Metrics *metrics.Registry
}

func (c *Config) normalize() error {
	if c.Rounds == 0 {
		c.Rounds = c.T + 2
	}
	if c.Rule == 0 {
		c.Rule = RuleFirstCommit
	}
	if len(c.Inputs)+len(c.Byzantine) != c.N {
		return fmt.Errorf("phaseking: %d inputs + %d byzantine != n=%d",
			len(c.Inputs), len(c.Byzantine), c.N)
	}
	if len(c.Byzantine) > c.T {
		return fmt.Errorf("phaseking: %d byzantine processors exceed bound t=%d", len(c.Byzantine), c.T)
	}
	for id := 0; id < c.N; id++ {
		_, correct := c.Inputs[id]
		_, faulty := c.Byzantine[id]
		if correct == faulty {
			return fmt.Errorf("phaseking: processor %d must be exactly one of correct/byzantine", id)
		}
	}
	return nil
}

// Result carries each correct processor's outcome.
type Result struct {
	// Decisions holds the decision of every correct processor that
	// decided; Errs holds failures (absent on success).
	Decisions map[int]core.Decision[int]
	Errs      map[int]error
}

// AgreementHolds reports whether all decided processors agree.
func (r Result) AgreementHolds() bool {
	first, have := 0, false
	for _, d := range r.Decisions {
		if !have {
			first, have = d.Value, true
		} else if d.Value != first {
			return false
		}
	}
	return true
}

// Run executes the paper's decomposition — Algorithm 3's AC and
// Algorithm 4's conciliator under the core.RunAC template — with the
// configured adversaries, and returns each correct processor's decision.
func Run(ctx context.Context, cfg Config) (Result, error) {
	return run(ctx, cfg, runDecomposedProcessor)
}

// RunBaseline executes the classic monolithic Phase-King protocol under
// the same configuration, as the comparison baseline.
func RunBaseline(ctx context.Context, cfg Config) (Result, error) {
	return run(ctx, cfg, runMonolithicProcessor)
}

type processorFunc func(ctx context.Context, net *netsim.SyncNetwork, id int, cfg Config) (core.Decision[int], error)

func run(ctx context.Context, cfg Config, proc processorFunc) (Result, error) {
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	net := netsim.NewSync(cfg.N, cfg.Recorder)
	defer net.Close()

	// Byzantine processors: submit adversarial vectors until the network
	// closes under them.
	var byzWG sync.WaitGroup
	for id, adv := range cfg.Byzantine {
		byzWG.Add(1)
		go func(id int, adv Adversary) {
			defer byzWG.Done()
			adaptive, _ := adv.(AdaptiveAdversary)
			for exchange := 0; ; exchange++ {
				vec := adv.Vector(exchange, cfg.N, id)
				if vec == nil {
					vec = make([]any, cfg.N)
				}
				in, err := net.Exchange(id, vec)
				if err != nil {
					return
				}
				if adaptive != nil {
					adaptive.Observe(exchange, in)
				}
			}
		}(id, adv)
	}

	res := Result{
		Decisions: make(map[int]core.Decision[int], len(cfg.Inputs)),
		Errs:      make(map[int]error),
	}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for id := range cfg.Inputs {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d, err := proc(ctx, net, id, cfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				res.Errs[id] = err
				return
			}
			res.Decisions[id] = d
		}(id)
	}
	wg.Wait()
	net.Close()
	byzWG.Wait()
	return res, nil
}

// runDecomposedProcessor is one correct processor's life under the
// paper's decomposition.
func runDecomposedProcessor(ctx context.Context, net *netsim.SyncNetwork, id int, cfg Config) (core.Decision[int], error) {
	ac, con, err := NewObjects(net, id, cfg.T)
	if err != nil {
		return core.Decision[int]{}, err
	}
	ac.e.instrument(cfg.Metrics)
	switch cfg.Rule {
	case RuleFirstCommit:
		d, err := core.RunAC[int](ctx, ac, con, cfg.Inputs[id],
			core.WithMaxRounds(cfg.Rounds),
			core.WithKeepParticipating(),
			core.WithRecorder(cfg.Recorder, id),
			core.WithMetrics(cfg.Metrics),
		)
		if err != nil {
			return core.Decision[int]{}, err
		}
		// If the final round committed, its king exchange was skipped;
		// perform it so every processor leaves the barrier aligned.
		if err := ac.syncToEnd(ctx, cfg.Rounds, d.Value); err != nil {
			return core.Decision[int]{}, err
		}
		return d, nil

	case RuleFinalValue:
		v := cfg.Inputs[id]
		for m := 1; m <= cfg.Rounds; m++ {
			cfg.Recorder.Invoke(id, m, "ac", v)
			x, sigma, err := ac.Propose(ctx, v, m)
			if err != nil {
				return core.Decision[int]{}, err
			}
			cfg.Recorder.Return(id, m, "ac", [2]any{x, sigma})
			if x == core.Commit {
				v = sigma
				continue
			}
			cfg.Recorder.Invoke(id, m, "conciliator", sigma)
			v, err = con.Conciliate(ctx, x, sigma, m)
			if err != nil {
				return core.Decision[int]{}, err
			}
			cfg.Recorder.Return(id, m, "conciliator", v)
		}
		if err := ac.syncToEnd(ctx, cfg.Rounds, v); err != nil {
			return core.Decision[int]{}, err
		}
		d := core.Decision[int]{Value: clampBinary(v), Round: cfg.Rounds}
		cfg.Recorder.Decide(id, cfg.Rounds, d.Value)
		return d, nil

	default:
		return core.Decision[int]{}, errors.New("phaseking: unknown decision rule")
	}
}
