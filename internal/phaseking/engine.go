// Package phaseking implements the Phase-King Byzantine consensus
// protocol of Berman, Garay and Perry in the synchronous message-passing
// model with t Byzantine processors, 3t < n, in two forms:
//
//   - the paper's decomposition (Section 4.1): an AdoptCommit object
//     (Algorithm 3) and a king Conciliator (Algorithm 4) run under the
//     generic core.RunAC template, and
//   - the classic monolithic protocol, used as the experiments' baseline.
//
// Every phase costs three synchronous exchanges: two inside the
// AdoptCommit and one king broadcast inside the Conciliator. The paper
// notes that, unlike the generic template, Phase-King processors keep
// participating after they decide; the runner uses
// core.WithKeepParticipating accordingly.
//
// # A soundness caveat found during reproduction
//
// The paper's Lemma 3 claims the king conciliator satisfies validity
// "since the phase king's inputted value is σm" — but a Byzantine king
// sends an arbitrary value, so conciliator validity fails exactly when it
// matters. Aspnes's Algorithm 2 framework derives agreement from the fact
// that after a partial commit of v all conciliator inputs are v, so a
// *valid* conciliator must output v; with a Byzantine king this argument
// collapses, and a crafted adversary (see KingDiversionAdversary) makes
// two correct processors decide different values under the paper's
// first-commit decision rule. The classical protocol is immune because it
// decides only after all t+1 phases. This package therefore offers both
// decision rules — RuleFirstCommit (paper-faithful) and RuleFinalValue
// (classically safe) — and the experiment suite demonstrates the
// difference (experiment EA in EXPERIMENTS.md).
package phaseking

import (
	"context"
	"fmt"

	"ooc/internal/metrics"
	"ooc/internal/netsim"
)

// exchangesPerPhase is the synchronous cost of one template round: two
// AdoptCommit exchanges plus the king broadcast.
const exchangesPerPhase = 3

// engine serializes one correct processor's synchronous exchanges and
// keeps the global lockstep aligned. Because the template skips the
// conciliator for processors that received commit, the engine "catches
// up" skipped king exchanges before the next AdoptCommit round so that
// every processor performs exactly the same number of Exchange calls.
type engine struct {
	net  *netsim.SyncNetwork
	id   int
	n    int
	t    int
	done int // exchanges completed so far

	// exchanges and kingTurns are nil unless instrument attached a
	// registry; nil counters no-op, so the hot path stays branch-free.
	exchanges *metrics.Counter
	kingTurns *metrics.Counter
}

func newEngine(net *netsim.SyncNetwork, id, t int) (*engine, error) {
	n := net.N()
	if 3*t >= n {
		return nil, fmt.Errorf("phaseking: t=%d violates 3t < n with n=%d", t, n)
	}
	if t < 0 {
		return nil, fmt.Errorf("phaseking: negative fault bound t=%d", t)
	}
	return &engine{net: net, id: id, n: n, t: t}, nil
}

// instrument attaches protocol-level counters. Exchange counts are the
// natural cost unit of the synchronous model — one counter tick is one
// lockstep barrier crossing.
func (e *engine) instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	e.exchanges = reg.Counter("phaseking_exchanges_total")
	e.kingTurns = reg.Counter("phaseking_king_turns_total")
}

// king reports the king of template round m (1-based), cycling over the
// processor ids as the paper's "if id = m" does.
func (e *engine) king(m int) int { return (m - 1) % e.n }

// exchange performs one synchronous step broadcasting value uniformly to
// everyone; nil means stay silent. It returns the received vector.
func (e *engine) exchange(ctx context.Context, value any) ([]any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]any, e.n)
	if value != nil {
		for i := range out {
			out[i] = value
		}
	}
	in, err := e.net.Exchange(e.id, out)
	if err != nil {
		return nil, fmt.Errorf("phaseking: exchange %d: %w", e.done, err)
	}
	e.done++
	e.exchanges.Inc(e.id)
	return in, nil
}

// kingExchange performs the conciliator's broadcast step for round m: the
// king transmits min(1, v), everyone else stays silent.
func (e *engine) kingExchange(ctx context.Context, m int, v int) ([]any, error) {
	var out any
	if e.id == e.king(m) {
		out = clampBinary(v)
		e.kingTurns.Inc(e.id)
	}
	return e.exchange(ctx, out)
}

// syncTo performs skipped king exchanges until the processor has
// completed target exchanges. Only king exchanges can be missing: the two
// AdoptCommit exchanges always run as a unit.
func (e *engine) syncTo(ctx context.Context, target int, v int) error {
	for e.done < target {
		if e.done%exchangesPerPhase != 2 {
			return fmt.Errorf("phaseking: internal desync: %d exchanges done, target %d", e.done, target)
		}
		m := e.done/exchangesPerPhase + 1
		if _, err := e.kingExchange(ctx, m, v); err != nil {
			return err
		}
	}
	return nil
}

// clampBinary is the paper's MIN(1, v): it maps the "no majority" marker
// 2 onto a legal binary value.
func clampBinary(v int) int {
	if v >= 1 {
		return 1
	}
	if v < 0 {
		return 0
	}
	return v
}

// binaryOrDefault extracts a binary value a Byzantine sender may have
// corrupted, falling back to def.
func binaryOrDefault(raw any, def int) int {
	if v, ok := raw.(int); ok && (v == 0 || v == 1) {
		return v
	}
	return def
}
