package phaseking

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"ooc/internal/core"
	"ooc/internal/netsim"
	"ooc/internal/sim"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// mustRun runs the decomposed protocol and fails the test on any
// processor error.
func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(ctxT(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id, procErr := range res.Errs {
		t.Fatalf("processor %d: %v", id, procErr)
	}
	return res
}

// checkAgreementValidity asserts safety and returns the decided value.
func checkAgreementValidity(t *testing.T, res Result, inputs map[int]int) int {
	t.Helper()
	if !res.AgreementHolds() {
		t.Fatalf("agreement violated: %v", res.Decisions)
	}
	if len(res.Decisions) != len(inputs) {
		t.Fatalf("%d of %d correct processors decided", len(res.Decisions), len(inputs))
	}
	var decided int
	for _, d := range res.Decisions {
		decided = d.Value
		break
	}
	valid := false
	for _, in := range inputs {
		if in == decided {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("validity violated: decided %d, inputs %v", decided, inputs)
	}
	return decided
}

func correctInputs(ids []int, vals []int) map[int]int {
	m := make(map[int]int, len(ids))
	for i, id := range ids {
		m[id] = vals[i]
	}
	return m
}

func TestUnanimousNoFaultsCommitsRoundOne(t *testing.T) {
	for _, n := range []int{4, 7, 10} {
		for _, v := range []int{0, 1} {
			inputs := make(map[int]int, n)
			for id := 0; id < n; id++ {
				inputs[id] = v
			}
			res := mustRun(t, Config{N: n, T: (n - 1) / 3, Inputs: inputs})
			got := checkAgreementValidity(t, res, inputs)
			if got != v {
				t.Fatalf("n=%d: decided %d with unanimous input %d", n, got, v)
			}
			for id, d := range res.Decisions {
				if d.Round != 1 {
					t.Fatalf("n=%d processor %d decided in round %d, want 1 (convergence)", n, id, d.Round)
				}
			}
		}
	}
}

func TestMixedInputsNoFaults(t *testing.T) {
	inputs := correctInputs([]int{0, 1, 2, 3, 4, 5, 6}, []int{0, 1, 0, 1, 0, 1, 0})
	res := mustRun(t, Config{N: 7, T: 2, Inputs: inputs})
	checkAgreementValidity(t, res, inputs)
}

func TestAdversaries(t *testing.T) {
	// Byzantine processors occupy the early king slots — the adversary's
	// strongest placement.
	cases := []struct {
		name string
		adv  func() Adversary
	}{
		{"silent", func() Adversary { return SilentAdversary{} }},
		{"equivocate", func() Adversary { return EquivocateAdversary{} }},
		{"garbage", func() Adversary { return GarbageAdversary{} }},
		{"spoiler", func() Adversary { return &SpoilerAdversary{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, cfg := range []struct{ n, t int }{{4, 1}, {7, 2}, {10, 3}} {
				byz := make(map[int]Adversary, cfg.t)
				for id := 0; id < cfg.t; id++ {
					byz[id] = tc.adv()
				}
				inputs := make(map[int]int)
				for id := cfg.t; id < cfg.n; id++ {
					inputs[id] = id % 2
				}
				for _, rule := range []DecisionRule{RuleFirstCommit, RuleFinalValue} {
					res := mustRun(t, Config{
						N: cfg.n, T: cfg.t, Inputs: inputs, Byzantine: byz, Rule: rule,
					})
					checkAgreementValidity(t, res, inputs)
				}
			}
		})
	}
}

func TestRandomAdversarySeeds(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		byz := map[int]Adversary{0: &RandomAdversary{RNG: sim.NewRNG(seed)}}
		inputs := correctInputs([]int{1, 2, 3}, []int{1, 0, 1})
		res := mustRun(t, Config{N: 4, T: 1, Inputs: inputs, Byzantine: byz, Rule: RuleFinalValue})
		checkAgreementValidity(t, res, inputs)
	}
}

func TestUnanimityBeatsByzantine(t *testing.T) {
	// Strong validity: when all correct processors propose the same v,
	// the Byzantine minority cannot move the decision.
	for _, v := range []int{0, 1} {
		byz := map[int]Adversary{0: EquivocateAdversary{}, 1: &RandomAdversary{RNG: sim.NewRNG(5)}}
		inputs := correctInputs([]int{2, 3, 4, 5, 6}, []int{v, v, v, v, v})
		for _, rule := range []DecisionRule{RuleFirstCommit, RuleFinalValue} {
			res := mustRun(t, Config{N: 7, T: 2, Inputs: inputs, Byzantine: byz, Rule: rule})
			if got := checkAgreementValidity(t, res, inputs); got != v {
				t.Fatalf("rule %d: decided %d with unanimous correct input %d", rule, got, v)
			}
		}
	}
}

func TestKingDiversionBreaksFirstCommit(t *testing.T) {
	// The reproduction finding (see package comment): the paper's
	// first-commit rule is unsound under a Byzantine round-1 king. This
	// test pins the attack: processor 1 decides 0, processors 2 and 3
	// decide 1.
	byz := map[int]Adversary{0: KingDiversionAdversary()}
	inputs := correctInputs([]int{1, 2, 3}, []int{0, 0, 1})
	res := mustRun(t, Config{N: 4, T: 1, Inputs: inputs, Byzantine: byz, Rule: RuleFirstCommit})
	if res.AgreementHolds() {
		t.Fatalf("expected the king-diversion adversary to break first-commit agreement; decisions: %v",
			res.Decisions)
	}
	if d := res.Decisions[1]; d.Value != 0 || d.Round != 1 {
		t.Fatalf("processor 1 decided %+v, attack expects (0, round 1)", d)
	}
	if d := res.Decisions[2]; d.Value != 1 {
		t.Fatalf("processor 2 decided %+v, attack expects value 1", d)
	}
}

func TestKingDiversionHarmlessUnderFinalValue(t *testing.T) {
	byz := map[int]Adversary{0: KingDiversionAdversary()}
	inputs := correctInputs([]int{1, 2, 3}, []int{0, 0, 1})
	res := mustRun(t, Config{N: 4, T: 1, Inputs: inputs, Byzantine: byz, Rule: RuleFinalValue})
	checkAgreementValidity(t, res, inputs)
}

func TestKingDiversionHarmlessAgainstBaseline(t *testing.T) {
	byz := map[int]Adversary{0: KingDiversionAdversary()}
	inputs := correctInputs([]int{1, 2, 3}, []int{0, 0, 1})
	res, err := RunBaseline(ctxT(t), Config{N: 4, T: 1, Inputs: inputs, Byzantine: byz})
	if err != nil {
		t.Fatal(err)
	}
	for id, procErr := range res.Errs {
		t.Fatalf("processor %d: %v", id, procErr)
	}
	checkAgreementValidity(t, res, inputs)
}

func TestBaselineMatchesDecomposed(t *testing.T) {
	inputs := correctInputs([]int{1, 2, 3, 4, 5, 6}, []int{0, 1, 1, 0, 1, 1})
	byz := map[int]Adversary{0: EquivocateAdversary{}}
	base, err := RunBaseline(ctxT(t), Config{N: 7, T: 2, Inputs: inputs, Byzantine: byz})
	if err != nil {
		t.Fatal(err)
	}
	dec := mustRun(t, Config{N: 7, T: 2, Inputs: inputs, Byzantine: byz, Rule: RuleFinalValue})
	b := checkAgreementValidity(t, base, inputs)
	d := checkAgreementValidity(t, dec, inputs)
	if b != d {
		t.Fatalf("baseline decided %d, decomposition decided %d on identical adversary", b, d)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			name: "fault bound",
			cfg:  Config{N: 3, T: 1, Inputs: map[int]int{0: 0, 1: 0, 2: 0}},
			want: "3t < n",
		},
		{
			name: "coverage",
			cfg:  Config{N: 4, T: 1, Inputs: map[int]int{0: 0, 1: 0}},
			want: "inputs",
		},
		{
			name: "too many byzantine",
			cfg: Config{N: 4, T: 1,
				Inputs:    map[int]int{2: 0, 3: 0},
				Byzantine: map[int]Adversary{0: SilentAdversary{}, 1: SilentAdversary{}}},
			want: "exceed",
		},
		{
			name: "overlap",
			cfg: Config{N: 4, T: 1,
				Inputs:    map[int]int{0: 0, 1: 0, 2: 0, 3: 0},
				Byzantine: map[int]Adversary{0: SilentAdversary{}}},
			want: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(ctxT(t), tc.cfg)
			if err == nil {
				// The fault-bound case surfaces per-processor.
				bad := false
				for _, e := range res.Errs {
					if e != nil {
						bad = true
					}
				}
				if !bad {
					t.Fatalf("invalid config accepted: %+v", tc.cfg)
				}
				return
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// acOutcome is one processor's single-round AC output.
type acOutcome struct {
	conf core.Confidence
	val  int
	err  error
}

// oneACRound runs exactly one AC.Propose on every correct processor with
// the given Byzantine adversaries in the mix.
func oneACRound(t *testing.T, n, tFaults int, inputs map[int]int, byz map[int]Adversary) map[int]acOutcome {
	t.Helper()
	net := netsim.NewSync(n, nil)
	defer net.Close()
	var byzWG sync.WaitGroup
	for id, adv := range byz {
		byzWG.Add(1)
		go func(id int, adv Adversary) {
			defer byzWG.Done()
			for ex := 0; ; ex++ {
				if _, err := net.Exchange(id, adv.Vector(ex, n, id)); err != nil {
					return
				}
			}
		}(id, adv)
	}
	outs := make(map[int]acOutcome, len(inputs))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for id, v := range inputs {
		wg.Add(1)
		go func(id, v int) {
			defer wg.Done()
			ac, err := NewAC(net, id, tFaults)
			if err != nil {
				mu.Lock()
				outs[id] = acOutcome{err: err}
				mu.Unlock()
				return
			}
			c, u, err := ac.Propose(ctxT(t), v, 1)
			mu.Lock()
			outs[id] = acOutcome{conf: c, val: u, err: err}
			mu.Unlock()
		}(id, v)
	}
	wg.Wait()
	net.Close()
	byzWG.Wait()
	return outs
}

func TestACCoherence(t *testing.T) {
	// Across many adversarial mixes: if anyone commits u, everyone
	// carries u.
	advs := []Adversary{SilentAdversary{}, EquivocateAdversary{}, GarbageAdversary{},
		&RandomAdversary{RNG: sim.NewRNG(3)}}
	for i, adv := range advs {
		inputs := correctInputs([]int{1, 2, 3, 4, 5, 6}, []int{0, 1, 0, 1, 1, (i) % 2})
		outs := oneACRound(t, 7, 2, inputs, map[int]Adversary{0: adv})
		committed, commitVal := false, 0
		for id, o := range outs {
			if o.err != nil {
				t.Fatalf("adv %d processor %d: %v", i, id, o.err)
			}
			if o.conf == core.Commit {
				if committed && o.val != commitVal {
					t.Fatalf("adv %d: two commits, values %d and %d", i, o.val, commitVal)
				}
				committed, commitVal = true, o.val
			}
			if o.conf != core.Commit && o.conf != core.Adopt {
				t.Fatalf("adv %d: AC returned %v", i, o.conf)
			}
		}
		if committed {
			for id, o := range outs {
				if o.val != commitVal {
					t.Fatalf("adv %d: processor %d carries %d, committed value %d", i, id, o.val, commitVal)
				}
			}
		}
	}
}

func TestACConvergence(t *testing.T) {
	for _, v := range []int{0, 1} {
		inputs := correctInputs([]int{1, 2, 3}, []int{v, v, v})
		outs := oneACRound(t, 4, 1, inputs, map[int]Adversary{0: EquivocateAdversary{}})
		for id, o := range outs {
			if o.err != nil {
				t.Fatal(o.err)
			}
			if o.conf != core.Commit || o.val != v {
				t.Fatalf("processor %d got (%v, %d) with unanimous correct input %d", id, o.conf, o.val, v)
			}
		}
	}
}

func TestACRejectsBadInput(t *testing.T) {
	net := netsim.NewSync(4, nil)
	defer net.Close()
	ac, err := NewAC(net, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ac.Propose(context.Background(), 2, 1); err == nil {
		t.Fatal("marker value 2 accepted as input")
	}
}

func TestNewACRejectsBadBounds(t *testing.T) {
	net := netsim.NewSync(3, nil)
	defer net.Close()
	if _, err := NewAC(net, 0, 1); err == nil {
		t.Fatal("3t >= n accepted")
	}
	if _, err := NewAC(net, 0, -1); err == nil {
		t.Fatal("negative t accepted")
	}
}

func TestClampBinary(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 1, 5: 1, -3: 0}
	for in, want := range cases {
		if got := clampBinary(in); got != want {
			t.Errorf("clampBinary(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestBinaryOrDefault(t *testing.T) {
	if got := binaryOrDefault(1, 0); got != 1 {
		t.Errorf("binaryOrDefault(1) = %d", got)
	}
	if got := binaryOrDefault("lie", 0); got != 0 {
		t.Errorf("garbage not defaulted: %d", got)
	}
	if got := binaryOrDefault(nil, 1); got != 1 {
		t.Errorf("nil not defaulted: %d", got)
	}
	if got := binaryOrDefault(2, 0); got != 0 {
		t.Errorf("out-of-domain int not defaulted: %d", got)
	}
}
