package phaseking

import (
	"context"

	"ooc/internal/core"
	"ooc/internal/netsim"
)

// runMonolithicProcessor is one correct processor's life under the
// classic Berman-Garay-Perry Phase-King protocol, written as a single
// loop with no object boundaries. Per phase: two counting exchanges, then
// the king broadcast; a processor keeps its value only when it saw
// overwhelming (n−t) support, otherwise it takes the king's. The decision
// is the final preference after all phases — the classical rule, which is
// what makes the monolithic protocol immune to the king-diversion attack
// on early decisions.
func runMonolithicProcessor(ctx context.Context, net *netsim.SyncNetwork, id int, cfg Config) (core.Decision[int], error) {
	e, err := newEngine(net, id, cfg.T)
	if err != nil {
		return core.Decision[int]{}, err
	}
	e.instrument(cfg.Metrics)
	v := cfg.Inputs[id]
	n, t := e.n, e.t

	for m := 1; m <= cfg.Rounds; m++ {
		cfg.Recorder.RoundStart(id, m)

		// Exchange 1: count support for each binary value.
		in1, err := e.exchange(ctx, v)
		if err != nil {
			return core.Decision[int]{}, err
		}
		var c [2]int
		for _, raw := range in1 {
			if k, ok := raw.(int); ok && (k == 0 || k == 1) {
				c[k]++
			}
		}
		w := 2
		for k := 0; k <= 1; k++ {
			if c[k] >= n-t {
				w = k
			}
		}

		// Exchange 2: count support for the exchange-1 outcome.
		in2, err := e.exchange(ctx, w)
		if err != nil {
			return core.Decision[int]{}, err
		}
		var d [3]int
		for _, raw := range in2 {
			if k, ok := raw.(int); ok && k >= 0 && k <= 2 {
				d[k]++
			}
		}
		out := w
		for k := 2; k >= 0; k-- {
			if d[k] > t {
				out = k
			}
		}

		// King broadcast: keep the strong value, otherwise take the
		// king's.
		inK, err := e.kingExchange(ctx, m, out)
		if err != nil {
			return core.Decision[int]{}, err
		}
		if out != 2 && d[out] >= n-t {
			v = out
		} else {
			v = binaryOrDefault(inK[e.king(m)], clampBinary(out))
		}
	}
	dec := core.Decision[int]{Value: clampBinary(v), Round: cfg.Rounds}
	cfg.Recorder.Decide(id, cfg.Rounds, dec.Value)
	return dec, nil
}
