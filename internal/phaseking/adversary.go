package phaseking

import "ooc/internal/sim"

// Adversary is a Byzantine processor's behaviour: for each global
// exchange index (3 per phase: AC exchange 1, AC exchange 2, king
// broadcast) it produces the per-recipient vector to submit. A nil vector
// (or nil entries) means silence towards everyone (or towards that
// recipient). Returning different values to different recipients is
// equivocation — the synchronous network delivers whatever is submitted.
type Adversary interface {
	Vector(exchange, n, self int) []any
}

// SilentAdversary crashes in the politest possible way: it participates
// in every barrier but never says anything.
type SilentAdversary struct{}

var _ Adversary = SilentAdversary{}

// Vector implements Adversary.
func (SilentAdversary) Vector(_, n, _ int) []any { return make([]any, n) }

// RandomAdversary sends an independently random value from {0, 1, 2} to
// every recipient in every exchange — undirected Byzantine noise.
type RandomAdversary struct {
	RNG *sim.RNG
}

var _ Adversary = (*RandomAdversary)(nil)

// Vector implements Adversary.
func (a *RandomAdversary) Vector(_, n, _ int) []any {
	out := make([]any, n)
	for i := range out {
		out[i] = a.RNG.Intn(3)
	}
	return out
}

// EquivocateAdversary tells the lower half of the network 0 and the upper
// half 1 in every exchange, the textbook split-the-vote behaviour.
type EquivocateAdversary struct{}

var _ Adversary = EquivocateAdversary{}

// Vector implements Adversary.
func (EquivocateAdversary) Vector(_, n, _ int) []any {
	out := make([]any, n)
	for i := range out {
		if i < n/2 {
			out[i] = 0
		} else {
			out[i] = 1
		}
	}
	return out
}

// GarbageAdversary sends values outside the protocol's domain (strings,
// out-of-range ints) to exercise input hardening.
type GarbageAdversary struct{}

var _ Adversary = GarbageAdversary{}

// Vector implements Adversary.
func (GarbageAdversary) Vector(exchange, n, _ int) []any {
	out := make([]any, n)
	for i := range out {
		if (exchange+i)%2 == 0 {
			out[i] = "lies"
		} else {
			out[i] = 17
		}
	}
	return out
}

// AdaptiveAdversary is an Adversary that also observes what the network
// delivered to it each exchange, enabling reactive strategies. The
// runner calls Observe after every completed exchange.
type AdaptiveAdversary interface {
	Adversary
	Observe(exchange int, inbox []any)
}

// SpoilerAdversary is adaptive: it watches the last exchange's traffic
// and reports the currently *less* popular binary value to everyone,
// trying to starve the n−t majorities the AdoptCommit needs. Against a
// correct Phase-King this only delays commitment until a correct king's
// round, which the tests confirm.
type SpoilerAdversary struct {
	lastCounts [2]int
}

var _ AdaptiveAdversary = (*SpoilerAdversary)(nil)

// Observe implements AdaptiveAdversary.
func (a *SpoilerAdversary) Observe(_ int, inbox []any) {
	a.lastCounts = [2]int{}
	for _, raw := range inbox {
		if v, ok := raw.(int); ok && (v == 0 || v == 1) {
			a.lastCounts[v]++
		}
	}
}

// Vector implements Adversary.
func (a *SpoilerAdversary) Vector(_, n, _ int) []any {
	minority := 0
	if a.lastCounts[0] > a.lastCounts[1] {
		minority = 1
	}
	out := make([]any, n)
	for i := range out {
		out[i] = minority
	}
	return out
}

// ScriptedAdversary plays a fixed per-exchange schedule, then goes
// silent. Script[e] is the vector for global exchange e.
type ScriptedAdversary struct {
	Script [][]any
}

var _ Adversary = (*ScriptedAdversary)(nil)

// Vector implements Adversary.
func (a *ScriptedAdversary) Vector(exchange, n, _ int) []any {
	if exchange < len(a.Script) && a.Script[exchange] != nil {
		return a.Script[exchange]
	}
	return make([]any, n)
}

// KingDiversionAdversary is the crafted attack on the paper's
// first-commit decision rule, for the configuration n=4, t=1, Byzantine
// processor 0 (king of round 1), and correct inputs p1=0, p2=0, p3=1.
//
// Round 1: it splits AC exchange 1 so that p1 and p2 see a 0-majority
// while p3 sees none, then feeds AC exchange 2 so that exactly p1 commits
// 0 while p2 and p3 merely adopt 0. As round-1 king it then diverts the
// adopters to 1. Round 2: it completes their 1-majority so p2 and p3
// commit — and decide — 1, while p1 has already decided 0.
//
// Against RuleFinalValue (the classical decision rule) the same schedule
// is harmless; experiment EA demonstrates both outcomes.
func KingDiversionAdversary() *ScriptedAdversary {
	return &ScriptedAdversary{Script: [][]any{
		// Round 1, AC exchange 1.
		{nil, 0, 0, 1},
		// Round 1, AC exchange 2: commit for p1 only.
		{nil, 0, 2, 2},
		// Round 1, king broadcast (we are the king): divert adopters.
		{nil, nil, 1, 1},
		// Round 2, AC exchange 1: give p2, p3 a 1-majority.
		{nil, 0, 1, 1},
		// Round 2, AC exchange 2: complete their commit of 1.
		{nil, 1, 1, 1},
	}}
}
