package phaseking

import (
	"context"
	"fmt"

	"ooc/internal/core"
	"ooc/internal/netsim"
)

// AC is the paper's Algorithm 3: Phase-King's two counting exchanges
// packaged as an adopt-commit object.
//
//	AC(v, m):
//	  broadcast <v>                        // exchange 1
//	  v ← 2
//	  for k = 0 to 1:
//	    C(k) ← # received k's
//	    if C(k) ≥ n−t: v ← k
//	  broadcast <v>                        // exchange 2
//	  for k = 2 downto 0:
//	    D(k) ← # received k's
//	    if D(k) > t: v ← k
//	  if v ≠ 2 and D(v) ≥ n−t: return (commit, v)
//	  else:                    return (adopt, v)
//
// The value 2 is the "no majority" marker; the conciliator's MIN(1, ·)
// clamps it back into the binary domain. Note the downto order of the
// second loop: the marker is tested first so that a real value, when
// present, wins.
//
// The object is stateful (it owns this processor's exchange alignment)
// and not safe for concurrent Propose calls.
type AC struct {
	e *engine
}

var _ core.AdoptCommit[int] = (*AC)(nil)

// NewAC returns processor id's adopt-commit object on the synchronous
// network. t is the Byzantine bound and must satisfy 3t < n.
func NewAC(net *netsim.SyncNetwork, id, t int) (*AC, error) {
	e, err := newEngine(net, id, t)
	if err != nil {
		return nil, err
	}
	return &AC{e: e}, nil
}

// Propose implements core.AdoptCommit for binary values.
func (a *AC) Propose(ctx context.Context, v int, round int) (core.Confidence, int, error) {
	if v != 0 && v != 1 {
		return 0, 0, fmt.Errorf("phaseking: non-binary input %d", v)
	}
	e := a.e
	// Perform any king exchange the template skipped after a commit.
	if err := e.syncTo(ctx, (round-1)*exchangesPerPhase, v); err != nil {
		return 0, 0, err
	}

	// Exchange 1: count support for each binary value.
	in1, err := e.exchange(ctx, v)
	if err != nil {
		return 0, 0, err
	}
	var c [2]int
	for _, raw := range in1 {
		if k, ok := raw.(int); ok && (k == 0 || k == 1) {
			c[k]++
		}
	}
	w := 2
	for k := 0; k <= 1; k++ {
		if c[k] >= e.n-e.t {
			w = k
		}
	}

	// Exchange 2: count support for the exchange-1 outcome.
	in2, err := e.exchange(ctx, w)
	if err != nil {
		return 0, 0, err
	}
	var d [3]int
	for _, raw := range in2 {
		if k, ok := raw.(int); ok && k >= 0 && k <= 2 {
			d[k]++
		}
	}
	out := w
	for k := 2; k >= 0; k-- {
		if d[k] > e.t {
			out = k
		}
	}

	if out != 2 && d[out] >= e.n-e.t {
		return core.Commit, out, nil
	}
	return core.Adopt, out, nil
}

// Engine exposes the exchange alignment for the runner's final catch-up;
// see Runner documentation.
func (a *AC) syncToEnd(ctx context.Context, rounds int, v int) error {
	return a.e.syncTo(ctx, rounds*exchangesPerPhase, v)
}

// Conciliator is the paper's Algorithm 4: the round's king broadcasts its
// (clamped) preference and every adopt-receiver takes it.
//
//	Conciliator(X, σ, m):
//	  if id = m: broadcast <MIN(1, v)>
//	  σm ← received message from processor m
//	  return (adopt, σm)
//
// If the king is silent or sends garbage (a Byzantine king), the
// processor keeps its own clamped preference — progress is only promised
// for rounds whose king is correct, exactly as in the paper's Lemma 3.
//
// A Conciliator must share its AC's engine so the synchronous exchanges
// interleave correctly; construct both through NewObjects.
type Conciliator struct {
	e *engine
}

var _ core.Conciliator[int] = (*Conciliator)(nil)

// Conciliate implements core.Conciliator.
func (c *Conciliator) Conciliate(ctx context.Context, _ core.Confidence, sigma int, round int) (int, error) {
	in, err := c.e.kingExchange(ctx, round, sigma)
	if err != nil {
		return 0, err
	}
	return binaryOrDefault(in[c.e.king(round)], clampBinary(sigma)), nil
}

// NewObjects builds the AC/Conciliator pair for one correct processor.
// The two objects share the exchange engine and must both be used by the
// same goroutine.
func NewObjects(net *netsim.SyncNetwork, id, t int) (*AC, *Conciliator, error) {
	ac, err := NewAC(net, id, t)
	if err != nil {
		return nil, nil, err
	}
	return ac, &Conciliator{e: ac.e}, nil
}
