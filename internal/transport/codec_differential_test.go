package transport

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"ooc/internal/raft"
	"ooc/internal/sim"
)

// recordingKV wraps a KVStore and records the applied command sequence,
// so two cluster runs can be compared commit by commit.
type recordingKV struct {
	raft.KVStore
	mu  sync.Mutex
	seq []string
}

func (s *recordingKV) Apply(index int, command any) {
	s.mu.Lock()
	s.seq = append(s.seq, fmt.Sprintf("%d:%v", index, command))
	s.mu.Unlock()
	s.KVStore.Apply(index, command)
}

func (s *recordingKV) commits() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.seq...)
}

// runSequence drives cmds through a 3-node TCP Raft cluster using the
// given wire codec and returns the commit sequence and final key space
// observed by every node.
func runSequence(t *testing.T, c Codec, seed uint64, cmds []raft.KVCommand) (seqs [][]string, snaps [][]string) {
	t.Helper()
	const n = 3
	trs := localCluster(t, n, WithCodec(c))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rng := sim.NewRNG(seed)
	sms := make([]*recordingKV, n)
	nodes := make([]*raft.Node, n)
	for id := 0; id < n; id++ {
		sms[id] = &recordingKV{}
		node, err := raft.NewNode(raft.Config{
			ID:                id,
			Endpoint:          trs[id],
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   60 * time.Millisecond,
			HeartbeatInterval: 12 * time.Millisecond,
			StateMachine:      sms[id],
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		node.Start(ctx)
	}

	propose := func(cmd raft.KVCommand) int {
		deadline := time.Now().Add(30 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatalf("codec %v: proposal %v made no progress", c, cmd)
			}
			leader := -1
			for id, node := range nodes {
				if node.Status().State == raft.Leader {
					leader = id
				}
			}
			if leader == -1 {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			idx, err := nodes[leader].Propose(ctx, cmd)
			if err == nil {
				return idx
			}
		}
	}

	var last int
	for _, cmd := range cmds {
		last = propose(cmd)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, sm := range sms {
			if sm.AppliedIndex() < last {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("codec %v: replication did not complete", c)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, sm := range sms {
		seqs = append(seqs, sm.commits())
		snaps = append(snaps, sm.KVStore.Snapshot())
	}
	return seqs, snaps
}

// TestCodecDifferentialAgainstGob is the end-to-end differential check:
// the same command sequence driven through a binary-codec cluster and a
// gob-codec cluster must produce identical post-apply state machines on
// every node, and identical commit sequences per seed. Leader no-ops
// make the absolute log indexes election-dependent, so the state-machine
// comparison is exact while the commit sequences are compared after
// filtering to KV commands only.
func TestCodecDifferentialAgainstGob(t *testing.T) {
	cmds := []raft.KVCommand{
		{Op: "set", Key: "a", Value: "1"},
		{Op: "set", Key: "b", Value: "2"},
		{Op: "set", Key: "a", Value: "3"},
		{Op: "delete", Key: "b"},
		{Op: "set", Key: "c", Value: "4"},
	}
	for _, seed := range []uint64{1, 42} {
		binSeqs, binSnaps := runSequence(t, Binary, seed, cmds)
		gobSeqs, gobSnaps := runSequence(t, Gob, seed, cmds)

		for id := range binSnaps {
			if !reflect.DeepEqual(binSnaps[id], gobSnaps[id]) {
				t.Fatalf("seed %d node %d: binary state %v != gob state %v", seed, id, binSnaps[id], gobSnaps[id])
			}
		}
		for id := range binSeqs {
			b, g := kvOnly(binSeqs[id]), kvOnly(gobSeqs[id])
			if !reflect.DeepEqual(b, g) {
				t.Fatalf("seed %d node %d: binary commits %v != gob commits %v", seed, id, b, g)
			}
		}
	}
}

// kvOnly strips index prefixes and non-KV entries (leader no-ops) from a
// commit sequence, leaving the applied command order.
func kvOnly(seq []string) []string {
	out := make([]string, 0, len(seq))
	for _, s := range seq {
		for i := range s {
			if s[i] == ':' {
				s = s[i+1:]
				break
			}
		}
		if s == "noop" || s == "{}" {
			continue
		}
		out = append(out, s)
	}
	return out
}
