// Package transport is a real TCP implementation of msgnet.Endpoint:
// length-delimited binary-codec streams (internal/codec) over persistent
// connections, one process per protocol node. It lets every protocol in
// this repository — Ben-Or, Raft, the VAC compositions — run across
// actual sockets rather than the in-memory simulator, with identical
// protocol code.
//
// Delivery semantics match the asynchronous model the protocols assume:
// Send is best-effort (a broken connection drops the message and triggers
// reconnection on the next send), ordering across messages is not
// guaranteed, and duplication does not occur. Raft's retries and Ben-Or's
// quorum waits tolerate exactly this.
//
// Two wire codecs are available (WithCodec): the default hand-rolled
// binary format, which encodes the known message set with zero
// steady-state allocations, and the original gob streams, kept as a
// compatibility path and as the differential-testing oracle. Each
// connection declares its codec in a one-byte preamble, so a receiver
// decodes whatever its peer sends regardless of its own setting.
//
// Payload types outside the codec's native set must be registered with
// Register before use, on both sides (they travel as gob either way).
package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"ooc/internal/codec"
	"ooc/internal/codec/bin"
	"ooc/internal/metrics"
	"ooc/internal/msgnet"
	"ooc/internal/trace"
)

// envelope is the gob wire record (the binary codec carries the sender
// id in the connection preamble instead, since it never changes).
type envelope struct {
	From    int
	Payload any
}

// Register makes a payload type encodable; call it once per concrete
// type before any Send (e.g. for Raft: Register(raft.WireTypes()...)).
// The binary codec needs this only for types outside its native set,
// but registering everything is harmless and keeps the gob path usable.
func Register(values ...any) {
	for _, v := range values {
		gob.Register(v)
	}
}

// Codec selects the wire encoding for outbound connections.
type Codec int

const (
	// Binary is the hand-rolled zero-allocation format (internal/codec).
	Binary Codec = iota
	// Gob is the original encoding/gob stream — slower and allocation
	// heavy, kept as the compatibility path and differential oracle.
	Gob
)

// Connection preamble bytes; the dialer sends one so the receiver knows
// how to decode the stream.
const (
	preambleBinary = 'B'
	preambleGob    = 'G'
)

// maxFrame caps an inbound binary frame. Snapshot transfers dominate
// frame size; anything beyond this is a corrupt length prefix, not a
// message, and the connection is dropped rather than the allocation
// attempted.
const maxFrame = 1 << 28

// Option configures a Transport.
type Option func(*Transport)

// WithRecorder attaches a trace recorder. Binary-codec sends record
// their exact framed byte count; gob sends record zero (the stream
// encoder gives no per-message size without double buffering).
func WithRecorder(rec *trace.Recorder) Option {
	return func(tr *Transport) { tr.rec = rec }
}

// WithCodec selects the wire encoding for connections this transport
// dials. The default is Binary; pass Gob to restore the original
// encoding (e.g. to differential-test the codec against its oracle).
func WithCodec(c Codec) Option {
	return func(tr *Transport) { tr.codec = c }
}

// WithMaxFrameVersion caps the codec frame version this transport
// emits. Pinning codec.Version (1) strips per-request trace IDs instead
// of emitting VersionTraced frames — the rolling-upgrade knob for
// clusters with peers that predate the trace field and reject unknown
// versions (DESIGN §3.5/§3.6). Values outside [1, codec.MaxVersion] are
// clamped.
func WithMaxFrameVersion(v byte) Option {
	return func(tr *Transport) {
		if v < codec.Version {
			v = codec.Version
		}
		if v > codec.MaxVersion {
			v = codec.MaxVersion
		}
		tr.maxVer = v
	}
}

// WithMetrics counts encoded and decoded wire bytes in reg as
// codec_encode_bytes_total / codec_decode_bytes_total, attributed to
// this transport's node id. Only binary-codec traffic is counted — the
// counters measure the codec, and the gob path predates them.
func WithMetrics(reg *metrics.Registry) Option {
	return func(tr *Transport) {
		if reg != nil {
			tr.encBytes = reg.Counter("codec_encode_bytes_total")
			tr.decBytes = reg.Counter("codec_decode_bytes_total")
		}
	}
}

// Transport is one node's TCP endpoint.
type Transport struct {
	id     int
	addrs  []string
	ln     net.Listener
	rec    *trace.Recorder
	codec  Codec
	maxVer byte // highest codec frame version to emit

	encBytes *metrics.Counter
	decBytes *metrics.Counter

	mu      sync.Mutex
	conns   map[int]*outConn
	inbound map[net.Conn]struct{}
	pending []msgnet.Message
	closed  bool
	notify  chan struct{}

	wg sync.WaitGroup
}

// outConn is one buffered outbound stream. Binary connections build
// each frame in the reusable scratch buffer and write it length-prefixed
// into bw; gob connections keep a long-lived stream encoder. Either way
// each Send flushes after encoding — so a message still leaves in one
// syscall — and Broadcast batches its per-peer copies into a single
// flush each.
type outConn struct {
	conn    net.Conn
	bw      *bufio.Writer
	enc     *gob.Encoder // gob codec only
	scratch []byte       // binary codec only; reused frame buffer
}

// outBufSize is the per-peer write buffer. Large enough to hold a
// typical AppendEntries batch; anything bigger spills through bufio's
// large-write path unharmed.
const outBufSize = 64 << 10

var _ msgnet.Endpoint = (*Transport)(nil)

// Listen binds addrs[id] and starts accepting peer connections. addrs is
// the full cluster membership, indexed by node id.
func Listen(id int, addrs []string, opts ...Option) (*Transport, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("transport: id %d out of range for %d addresses", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[id], err)
	}
	return listenOn(id, addrs, ln, opts...), nil
}

func listenOn(id int, addrs []string, ln net.Listener, opts ...Option) *Transport {
	tr := &Transport{
		id:      id,
		addrs:   append([]string(nil), addrs...),
		ln:      ln,
		maxVer:  codec.MaxVersion,
		conns:   make(map[int]*outConn),
		inbound: make(map[net.Conn]struct{}),
		notify:  make(chan struct{}, 1),
	}
	for _, opt := range opts {
		opt(tr)
	}
	tr.wg.Add(1)
	go tr.acceptLoop()
	return tr
}

// NewLocalCluster builds n connected transports on loopback ephemeral
// ports — the quickest way to run a protocol over real sockets in tests
// and examples. Close every returned transport when done.
func NewLocalCluster(n int, opts ...Option) ([]*Transport, error) {
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				_ = listeners[j].Close()
			}
			return nil, fmt.Errorf("transport: local cluster: %w", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	out := make([]*Transport, n)
	for i := 0; i < n; i++ {
		out[i] = listenOn(i, addrs, listeners[i], opts...)
	}
	return out, nil
}

// ID implements msgnet.Endpoint.
func (tr *Transport) ID() int { return tr.id }

// N implements msgnet.Endpoint.
func (tr *Transport) N() int { return len(tr.addrs) }

// Addr reports the listener's actual address (useful with ":0").
func (tr *Transport) Addr() string { return tr.ln.Addr().String() }

// Send implements msgnet.Endpoint. Local sends short-circuit the network.
func (tr *Transport) Send(to int, payload any) error {
	return tr.send(to, payload, true)
}

// send encodes payload to peer to; when flush is set the write buffer is
// drained before returning (the single-Send path). Broadcast passes
// flush=false and drains every dirty peer once at the end instead.
func (tr *Transport) send(to int, payload any, flush bool) error {
	if to < 0 || to >= len(tr.addrs) {
		return fmt.Errorf("transport: send to invalid node %d", to)
	}
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return msgnet.ErrClosed
	}
	if to == tr.id {
		tr.pending = append(tr.pending, msgnet.Message{From: tr.id, To: to, Payload: payload})
		tr.mu.Unlock()
		tr.wake()
		tr.rec.Send(tr.id, to, 0, 0, payload)
		return nil
	}
	var wire int
	oc, err := tr.connLocked(to)
	if err == nil {
		wire, err = tr.encodeLocked(oc, payload)
		if err == nil && flush {
			err = oc.bw.Flush()
		}
		if err != nil {
			// Broken pipe or unencodable payload: drop the connection;
			// the next send redials with a fresh stream.
			_ = oc.conn.Close()
			delete(tr.conns, to)
		}
	}
	tr.mu.Unlock()
	if err != nil {
		tr.rec.Drop(to, tr.id, 0, payload)
		// Best-effort semantics: remote loss is silent, like the
		// simulator's drops. The caller cannot act on it anyway.
		return nil //nolint:nilerr // deliberate: async send never fails on remote errors
	}
	if wire > 0 {
		tr.encBytes.Add(tr.id, int64(wire))
	}
	tr.rec.Send(tr.id, to, 0, wire, payload)
	return nil
}

// encodeLocked writes one message into oc's buffered writer and reports
// the framed byte count (zero on the gob path, which has no per-message
// size without double buffering). Caller holds tr.mu.
func (tr *Transport) encodeLocked(oc *outConn, payload any) (int, error) {
	if oc.enc != nil {
		// Gob is the compatibility path: it predates the trace field, so
		// trace wrappers are stripped rather than gob-encoded.
		return 0, oc.enc.Encode(envelope{From: tr.id, Payload: msgnet.StripTrace(payload)})
	}
	frame, err := codec.AppendMax(oc.scratch[:0], payload, tr.maxVer)
	oc.scratch = frame[:0] // keep growth for the next frame
	if err != nil {
		return 0, err
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(frame)))
	if _, err := oc.bw.Write(hdr[:n]); err != nil {
		return 0, err
	}
	if _, err := oc.bw.Write(frame); err != nil {
		return 0, err
	}
	return n + len(frame), nil
}

// Broadcast implements msgnet.Endpoint. Each peer's copy is encoded into
// its write buffer first and the buffers are flushed once per peer at
// the end, so an n-way broadcast costs one syscall per peer rather than
// one per encoded fragment. A copy that dies at flush time is a silent
// drop, same as any remote loss.
func (tr *Transport) Broadcast(payload any) error {
	for to := range tr.addrs {
		if err := tr.send(to, payload, false); err != nil {
			return fmt.Errorf("transport: broadcast: %w", err)
		}
	}
	tr.flushAll()
	return nil
}

// flushAll drains every buffered outbound connection, dropping the ones
// whose peer has gone away.
func (tr *Transport) flushAll() {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for to, oc := range tr.conns {
		if oc.bw.Buffered() == 0 {
			continue
		}
		if err := oc.bw.Flush(); err != nil {
			_ = oc.conn.Close()
			delete(tr.conns, to)
		}
	}
}

// Recv implements msgnet.Endpoint.
func (tr *Transport) Recv(ctx context.Context) (msgnet.Message, error) {
	for {
		tr.mu.Lock()
		if len(tr.pending) > 0 {
			m := tr.pending[0]
			tr.pending = tr.pending[1:]
			tr.mu.Unlock()
			tr.rec.Deliver(tr.id, m.From, 0, m.Payload)
			return m, nil
		}
		closed := tr.closed
		tr.mu.Unlock()
		if closed {
			return msgnet.Message{}, msgnet.ErrClosed
		}
		select {
		case <-ctx.Done():
			return msgnet.Message{}, ctx.Err()
		case <-tr.notify:
		}
	}
}

// Close shuts the transport down: the listener stops, connections close,
// and blocked Recvs return msgnet.ErrClosed.
func (tr *Transport) Close() error {
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return nil
	}
	tr.closed = true
	for id, oc := range tr.conns {
		_ = oc.conn.Close()
		delete(tr.conns, id)
	}
	for conn := range tr.inbound {
		_ = conn.Close()
	}
	tr.mu.Unlock()
	err := tr.ln.Close()
	tr.wake()
	tr.wg.Wait()
	return err
}

func (tr *Transport) wake() {
	select {
	case tr.notify <- struct{}{}:
	default:
	}
}

func (tr *Transport) deliver(m msgnet.Message) {
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return
	}
	tr.pending = append(tr.pending, m)
	tr.mu.Unlock()
	tr.wake()
}

// connLocked returns the outbound connection to peer, dialing if needed.
// A fresh connection's codec preamble is buffered ahead of the first
// message, so it costs no extra syscall.
func (tr *Transport) connLocked(to int) (*outConn, error) {
	if oc, ok := tr.conns[to]; ok {
		return oc, nil
	}
	conn, err := net.Dial("tcp", tr.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("transport: dial node %d (%s): %w", to, tr.addrs[to], err)
	}
	bw := bufio.NewWriterSize(conn, outBufSize)
	oc := &outConn{conn: conn, bw: bw}
	if tr.codec == Gob {
		_ = bw.WriteByte(preambleGob)
		oc.enc = gob.NewEncoder(bw)
	} else {
		_ = bw.WriteByte(preambleBinary)
		// The sender id never changes on a connection, so it rides in
		// the preamble rather than in every frame.
		hdr := bin.AppendVarint(nil, int64(tr.id))
		_, _ = bw.Write(hdr)
		oc.scratch = make([]byte, 0, 4096)
	}
	tr.conns[to] = oc
	return oc, nil
}

func (tr *Transport) acceptLoop() {
	defer tr.wg.Done()
	for {
		conn, err := tr.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			tr.mu.Lock()
			closed := tr.closed
			tr.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		tr.mu.Lock()
		if tr.closed {
			tr.mu.Unlock()
			_ = conn.Close()
			return
		}
		tr.inbound[conn] = struct{}{}
		tr.mu.Unlock()
		tr.wg.Add(1)
		go tr.readLoop(conn)
	}
}

// readLoop decodes one inbound connection until it dies. The peer's
// preamble byte selects the decoder, so a binary transport understands a
// gob peer and vice versa — the codecs interoperate during a rollout or
// a differential test.
func (tr *Transport) readLoop(conn net.Conn) {
	defer tr.wg.Done()
	defer func() {
		_ = conn.Close()
		tr.mu.Lock()
		delete(tr.inbound, conn)
		tr.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, outBufSize)
	switch pre, err := br.ReadByte(); {
	case err != nil:
		return
	case pre == preambleGob:
		tr.readGob(br)
	case pre == preambleBinary:
		tr.readBinary(br)
	default:
		// Unknown preamble: a foreign client or protocol mismatch.
		return
	}
}

func (tr *Transport) readGob(br *bufio.Reader) {
	dec := gob.NewDecoder(br)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		tr.deliver(msgnet.Message{From: env.From, To: tr.id, Payload: env.Payload})
	}
}

func (tr *Transport) readBinary(br *bufio.Reader) {
	from64, err := binary.ReadVarint(br)
	if err != nil {
		return
	}
	from := int(from64)
	var dec codec.Decoder
	var buf []byte
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil || n > maxFrame {
			return
		}
		if int(n) > cap(buf) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		payload, err := dec.Decode(buf)
		if err != nil {
			// A frame that fails to decode poisons the stream offset no
			// further (frames are length-delimited), but it means the
			// peer speaks a different version — drop the connection and
			// let it redial.
			return
		}
		tr.decBytes.Add(tr.id, int64(n))
		tr.deliver(msgnet.Message{From: from, To: tr.id, Payload: payload})
	}
}
