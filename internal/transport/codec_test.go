package transport

import (
	"reflect"
	"testing"

	"ooc/internal/metrics"
	"ooc/internal/msgnet"
	"ooc/internal/raft"
	"ooc/internal/trace"
)

// mixedCluster builds a 2-node cluster where node 0 dials with codec a
// and node 1 dials with codec b, to prove the preamble negotiation lets
// the codecs interoperate in either direction.
func mixedCluster(t *testing.T, a, b Codec) []*Transport {
	t.Helper()
	trs := localCluster(t, 2) // both default Binary
	trs[0].codec = a
	trs[1].codec = b
	return trs
}

func exchange(t *testing.T, trs []*Transport, payload any) any {
	t.Helper()
	if err := trs[0].Send(1, payload); err != nil {
		t.Fatal(err)
	}
	m, err := trs[1].Recv(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	return m.Payload
}

func TestCodecInterop(t *testing.T) {
	msg := raft.AppendEntries{
		Term: 3, LeaderID: 0, PrevLogIndex: 5, PrevLogTerm: 2,
		Entries:      []raft.Entry{{Term: 3, Command: raft.KVCommand{Op: "set", Key: "k", Value: "v"}}},
		LeaderCommit: 4, ReadID: 9,
	}
	for _, tc := range []struct {
		name string
		a, b Codec
	}{
		{"binary-to-binary", Binary, Binary},
		{"gob-to-gob", Gob, Gob},
		{"binary-to-gob", Binary, Gob},
		{"gob-to-binary", Gob, Binary},
	} {
		t.Run(tc.name, func(t *testing.T) {
			trs := mixedCluster(t, tc.a, tc.b)
			if got := exchange(t, trs, msg); !reflect.DeepEqual(got, msg) {
				t.Fatalf("got %#v, want %#v", got, msg)
			}
		})
	}
}

func TestCodecCarriesMuxWrapper(t *testing.T) {
	trs := localCluster(t, 2)
	msg := msgnet.Tagged{Channel: "shard/2", Payload: raft.RequestVote{Term: 7, CandidateID: 1}}
	if got := exchange(t, trs, msg); !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %#v, want %#v", got, msg)
	}
}

func TestCodecForeignPayloadFallsBackToGob(t *testing.T) {
	// A payload outside the codec's native set still crosses the wire
	// (inside a gob-fallback frame); it only needs Register, exactly as
	// the old transport did.
	trs := localCluster(t, 2)
	if got := exchange(t, trs, "plain string"); got != "plain string" {
		t.Fatalf("got %#v", got)
	}
	if got := exchange(t, trs, 42); got != 42 {
		t.Fatalf("got %#v", got)
	}
}

func TestCodecMetricsCountWireBytes(t *testing.T) {
	reg := metrics.NewRegistry()
	trs := localCluster(t, 2, WithMetrics(reg))
	msg := raft.AppendEntriesReply{Term: 3, Success: true, MatchIndex: 12}
	if got := exchange(t, trs, msg); !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %#v", got)
	}
	enc := reg.Counter("codec_encode_bytes_total").Value()
	dec := reg.Counter("codec_decode_bytes_total").Value()
	if enc == 0 {
		t.Fatal("codec_encode_bytes_total did not count the send")
	}
	if dec == 0 {
		t.Fatal("codec_decode_bytes_total did not count the receive")
	}
	// The encode side counts frame + length header; decode counts the
	// frame alone, so encode is strictly larger but by only a few bytes.
	if dec >= enc || enc-dec > 8 {
		t.Fatalf("enc=%d dec=%d: expected dec < enc <= dec+8", enc, dec)
	}
}

func TestBinarySendsRecordWireBytes(t *testing.T) {
	rec := trace.NewRecorder()
	trs := localCluster(t, 2, WithRecorder(rec))
	msg := raft.RequestVote{Term: 2, CandidateID: 0, LastLogIndex: 3, LastLogTerm: 1}
	if got := exchange(t, trs, msg); !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %#v", got)
	}
	var sendBytes int
	for _, ev := range rec.Snapshot().Events {
		if ev.Kind == trace.KindSend && ev.Node == 0 {
			sendBytes += ev.Bytes
		}
	}
	if sendBytes == 0 {
		t.Fatal("binary send recorded no wire bytes in the trace")
	}
}
