package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ooc/internal/benor"
	"ooc/internal/core"
	"ooc/internal/msgnet"
	"ooc/internal/raft"
	"ooc/internal/sim"
	"ooc/internal/trace"
)

func init() {
	Register(raft.WireTypes()...)
	Register(benor.WireTypes()...)
	Register("")
	Register(0)
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func localCluster(t *testing.T, n int, opts ...Option) []*Transport {
	t.Helper()
	trs, err := NewLocalCluster(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			_ = tr.Close()
		}
	})
	return trs
}

func TestSendRecvOverTCP(t *testing.T) {
	trs := localCluster(t, 2)
	if err := trs[0].Send(1, "hello"); err != nil {
		t.Fatal(err)
	}
	m, err := trs[1].Recv(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || m.To != 1 || m.Payload != "hello" {
		t.Fatalf("got %+v", m)
	}
}

func TestSelfSendShortCircuits(t *testing.T) {
	trs := localCluster(t, 1)
	if err := trs[0].Send(0, 42); err != nil {
		t.Fatal(err)
	}
	m, err := trs[0].Recv(ctxT(t))
	if err != nil || m.Payload != 42 {
		t.Fatalf("got %v %v", m, err)
	}
}

func TestBroadcastOverTCP(t *testing.T) {
	const n = 4
	trs := localCluster(t, n)
	if err := trs[2].Broadcast("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		m, err := trs[i].Recv(ctxT(t))
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if m.From != 2 || m.Payload != "b" {
			t.Fatalf("node %d got %+v", i, m)
		}
	}
}

func TestStructuredPayloads(t *testing.T) {
	trs := localCluster(t, 2)
	want := raft.AppendEntries{
		Term: 3, LeaderID: 0, PrevLogIndex: 2, PrevLogTerm: 1,
		Entries:      []raft.Entry{{Term: 3, Command: raft.DS{Value: "v"}}},
		LeaderCommit: 2,
	}
	if err := trs[0].Send(1, want); err != nil {
		t.Fatal(err)
	}
	m, err := trs[1].Recv(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.Payload.(raft.AppendEntries)
	if !ok {
		t.Fatalf("payload type %T", m.Payload)
	}
	if got.Term != want.Term || len(got.Entries) != 1 || got.Entries[0].Command.(raft.DS).Value != "v" {
		t.Fatalf("round-trip mangled: %+v", got)
	}
}

func TestSendInvalidDestination(t *testing.T) {
	trs := localCluster(t, 1)
	if err := trs[0].Send(5, "x"); err == nil {
		t.Fatal("invalid destination accepted")
	}
}

func TestRecvContextCancel(t *testing.T) {
	trs := localCluster(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := trs[0].Recv(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	trs := localCluster(t, 1)
	errc := make(chan error, 1)
	go func() {
		_, err := trs[0].Recv(context.Background())
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := trs[0].Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, msgnet.ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv not unblocked by Close")
	}
	// Close is idempotent; Send after close fails locally.
	if err := trs[0].Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := trs[0].Send(0, "x"); !errors.Is(err, msgnet.ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestSendToDeadPeerIsSilentDrop(t *testing.T) {
	rec := trace.NewRecorder()
	trs := localCluster(t, 2, WithRecorder(rec))
	if err := trs[1].Close(); err != nil {
		t.Fatal(err)
	}
	// First send may succeed at the TCP layer (buffered) or fail to dial;
	// repeated sends must settle into silent drops, never an error.
	for i := 0; i < 5; i++ {
		if err := trs[0].Send(1, i); err != nil {
			t.Fatalf("send %d returned %v, want silent best-effort", i, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRaftClusterOverTCP(t *testing.T) {
	const n = 3
	trs := localCluster(t, n)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rng := sim.NewRNG(42)
	kvs := make([]*raft.KVStore, n)
	nodes := make([]*raft.Node, n)
	for id := 0; id < n; id++ {
		kvs[id] = &raft.KVStore{}
		node, err := raft.NewNode(raft.Config{
			ID:                id,
			Endpoint:          trs[id],
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   60 * time.Millisecond,
			HeartbeatInterval: 12 * time.Millisecond,
			StateMachine:      kvs[id],
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		node.Start(ctx)
	}

	// Elect, propose, and verify replication over real sockets.
	var idx int
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no progress over TCP")
		}
		leader := -1
		for id, node := range nodes {
			if node.Status().State == raft.Leader {
				leader = id
			}
		}
		if leader == -1 {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		var err error
		idx, err = nodes[leader].Propose(ctx, raft.KVCommand{Op: "set", Key: "net", Value: "tcp"})
		if err == nil {
			break
		}
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, kv := range kvs {
			if kv.AppliedIndex() < idx {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replication did not complete over TCP")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for id, kv := range kvs {
		if v, ok := kv.Get("net"); !ok || v != "tcp" {
			t.Fatalf("node %d: net=%q %v", id, v, ok)
		}
	}
}

func TestBenOrOverTCP(t *testing.T) {
	const n, tFaults = 3, 1
	trs := localCluster(t, n)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rng := sim.NewRNG(7)
	inputs := []int{0, 1, 1}
	decisions := make([]core.Decision[int], n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			decisions[id], errs[id] = benor.RunDecomposed(ctx, trs[id], rng.Fork(uint64(id)), tFaults, inputs[id],
				core.WithMaxRounds(500))
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
	}
	for id := 1; id < n; id++ {
		if decisions[id].Value != decisions[0].Value {
			t.Fatalf("agreement violated over TCP: %v", decisions)
		}
	}
}
