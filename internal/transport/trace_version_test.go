package transport

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"ooc/internal/raft"
	"ooc/internal/rtrace"
	"ooc/internal/sim"
)

// perNodeCluster builds n connected transports where optsFor(i) picks
// each node's options — the per-node knob NewLocalCluster doesn't
// expose, needed to pin one peer to an older frame version.
func perNodeCluster(t *testing.T, n int, optsFor func(i int) []Option) []*Transport {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	trs := make([]*Transport, n)
	for i := 0; i < n; i++ {
		trs[i] = listenOn(i, addrs, listeners[i], optsFor(i)...)
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			_ = tr.Close()
		}
	})
	return trs
}

// runTracedCluster drives traced writes through a 3-node TCP cluster
// built from trs and returns the tracer for span assertions. Every
// committed write must land on every node's state machine regardless of
// what frame version each peer speaks.
func runTracedCluster(t *testing.T, trs []*Transport, tracer *rtrace.Tracer) {
	t.Helper()
	n := len(trs)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rng := sim.NewRNG(11)
	sms := make([]*raft.KVStore, n)
	nodes := make([]*raft.Node, n)
	for id := 0; id < n; id++ {
		sms[id] = &raft.KVStore{}
		node, err := raft.NewNode(raft.Config{
			ID:                id,
			Endpoint:          trs[id],
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   60 * time.Millisecond,
			HeartbeatInterval: 12 * time.Millisecond,
			StateMachine:      sms[id],
			Tracer:            tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		node.Start(ctx)
	}
	client, err := raft.NewClient(nodes, raft.WithClientTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	const writes = 8
	var last int
	for i := 0; i < writes; i++ {
		idx, err := client.SubmitWait(ctx, raft.KVCommand{Op: "set", Key: fmt.Sprintf("k%d", i), Value: fmt.Sprintf("v%d", i)})
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		last = idx
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, sm := range sms {
			if sm.AppliedIndex() < last {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for id, sm := range sms {
				t.Logf("node %d applied=%d want>=%d", id, sm.AppliedIndex(), last)
			}
			t.Fatal("replication did not complete")
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := sms[0].Snapshot()
	for id := 1; id < n; id++ {
		if got := sms[id].Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d state diverged:\n got %v\nwant %v", id, got, want)
		}
	}
}

// assertTracedSpans checks that the traced writes produced completed
// client spans with phase attribution — i.e. tracing survived whatever
// wire mix the cluster ran.
func assertTracedSpans(t *testing.T, tracer *rtrace.Tracer, minSpans int) {
	t.Helper()
	good := 0
	for _, s := range tracer.Spans() {
		if s.Remote || s.Err || s.Op != "set" {
			continue
		}
		if len(s.Phases) == 0 {
			continue
		}
		good++
	}
	if good < minSpans {
		t.Fatalf("only %d clean attributed spans, want >= %d (spans: %d total)",
			good, minSpans, len(tracer.Spans()))
	}
}

// TestMixedFrameVersionCluster is the compatibility regression for the
// frame V2 (trace ID) bump: one peer pinned to frame V1 — a binary
// built before tracing existed — joins two V2 peers, tracing enabled at
// sample 1.0. Writes must commit on every node (the V1 peer just never
// sees trace IDs), and the V2 side must still assemble spans.
func TestMixedFrameVersionCluster(t *testing.T) {
	trs := perNodeCluster(t, 3, func(i int) []Option {
		if i == 2 {
			return []Option{WithMaxFrameVersion(1)}
		}
		return nil
	})
	tracer := rtrace.New(rtrace.Options{Sample: 1})
	runTracedCluster(t, trs, tracer)
	assertTracedSpans(t, tracer, 1)
}

// TestGobClusterWithTracing pins the whole cluster to the gob codec,
// which has no frame header at all: trace IDs are stripped at the wire
// (msgnet.StripTrace) and the cluster must behave exactly as untraced.
func TestGobClusterWithTracing(t *testing.T) {
	trs := perNodeCluster(t, 3, func(int) []Option { return []Option{WithCodec(Gob)} })
	tracer := rtrace.New(rtrace.Options{Sample: 1})
	runTracedCluster(t, trs, tracer)
	assertTracedSpans(t, tracer, 1)
}
