package multivalue

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ooc/internal/checker"
	"ooc/internal/core"
	"ooc/internal/netsim"
	"ooc/internal/sim"
)

func runCluster[V comparable](
	t *testing.T,
	nw *netsim.Network,
	tFaults int,
	inputs []V,
	rng *sim.RNG,
	maxRounds int,
) []checker.RunOutcome[V] {
	t.Helper()
	n := len(inputs)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	outs := make([]checker.RunOutcome[V], n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d, err := RunDecomposed[V](ctx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id],
				core.WithMaxRounds(maxRounds))
			if err == nil {
				outs[id] = checker.RunOutcome[V]{Node: id, Decided: true, Value: d.Value, Round: d.Round}
			} else {
				outs[id] = checker.RunOutcome[V]{Node: id}
			}
		}(id)
	}
	wg.Wait()
	return outs
}

func inputMap[V comparable](inputs []V) map[int]V {
	m := make(map[int]V, len(inputs))
	for id, v := range inputs {
		m[id] = v
	}
	return m
}

func TestAllDistinctValuesReachConsensus(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		const n, tFaults = 5, 2
		nw := netsim.New(n, netsim.WithSeed(seed))
		rng := sim.NewRNG(seed * 13)
		inputs := make([]string, n)
		for id := range inputs {
			inputs[id] = fmt.Sprintf("value-%d", id)
		}
		outs := runCluster(t, nw, tFaults, inputs, rng, 3000)
		if rep := checker.CheckConsensus(outs, inputMap(inputs), true); !rep.Ok() {
			t.Fatalf("seed %d: %v", seed, rep)
		}
	}
}

func TestUnanimousCommitsRoundOne(t *testing.T) {
	const n, tFaults = 7, 3
	nw := netsim.New(n, netsim.WithSeed(3))
	rng := sim.NewRNG(4)
	inputs := make([]string, n)
	for id := range inputs {
		inputs[id] = "same"
	}
	outs := runCluster(t, nw, tFaults, inputs, rng, 100)
	for _, o := range outs {
		if !o.Decided || o.Value != "same" || o.Round != 1 {
			t.Fatalf("convergence violated: %+v", o)
		}
	}
}

func TestToleratesCrashes(t *testing.T) {
	const n, tFaults = 7, 3
	for seed := uint64(0); seed < 5; seed++ {
		nw := netsim.New(n, netsim.WithSeed(seed))
		rng := sim.NewRNG(seed + 100)
		inputs := make([]string, n)
		for id := range inputs {
			inputs[id] = fmt.Sprintf("v%d", id%3)
		}
		nw.Crash(6)
		nw.CrashAfterSends(5, 4)
		nw.CrashAfterSends(4, 15)
		outs := runCluster(t, nw, tFaults, inputs, rng, 3000)
		var live []checker.RunOutcome[string]
		for _, o := range outs {
			if o.Node < 4 {
				if !o.Decided {
					t.Fatalf("seed %d: live node %d undecided", seed, o.Node)
				}
				live = append(live, o)
			}
		}
		if rep := checker.CheckConsensus(live, inputMap(inputs), true); !rep.Ok() {
			t.Fatalf("seed %d: %v", seed, rep)
		}
	}
}

func TestIntValuesWork(t *testing.T) {
	const n, tFaults = 4, 1
	nw := netsim.New(n, netsim.WithSeed(11))
	rng := sim.NewRNG(11)
	inputs := []int{100, 200, 300, 100}
	outs := runCluster(t, nw, tFaults, inputs, rng, 3000)
	if rep := checker.CheckConsensus(outs, inputMap(inputs), true); !rep.Ok() {
		t.Fatal(rep)
	}
}

func TestVACSingleRoundProperties(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		const n, tFaults = 5, 2
		nw := netsim.New(n, netsim.WithSeed(seed))
		rng := sim.NewRNG(seed)
		domain := []string{"a", "b", "c"}
		inputs := make([]string, n)
		for id := range inputs {
			inputs[id] = domain[rng.Intn(len(domain))]
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		outs := make([]checker.ObjectOutcome[string], n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				vac, err := NewVAC[string](nw.Node(id), tFaults)
				if err != nil {
					errs[id] = err
					return
				}
				c, v, err := vac.Propose(ctx, inputs[id], 1)
				outs[id] = checker.ObjectOutcome[string]{Node: id, Conf: c, Value: v}
				errs[id] = err
			}(id)
		}
		wg.Wait()
		cancel()
		for id, err := range errs {
			if err != nil {
				t.Fatalf("seed %d node %d: %v", seed, id, err)
			}
		}
		if rep := checker.CheckVACRound(outs, inputMap(inputs)); !rep.Ok() {
			t.Fatalf("seed %d: %v", seed, rep)
		}
	}
}

func TestSeenSetAccumulatesAndDedupes(t *testing.T) {
	s := newSeenSet[string]()
	s.add("x")
	s.add("y")
	s.add("x")
	vals := s.values()
	if len(vals) != 2 || vals[0] != "x" || vals[1] != "y" {
		t.Fatalf("seen = %v", vals)
	}
}

func TestReconciliatorSamplesOnlySeenValues(t *testing.T) {
	nw := netsim.New(2)
	vac, err := NewVAC[string](nw.Node(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5)
	rec := NewReconciliator[string](vac, rng)
	// Nothing seen: falls back to own value.
	v, err := rec.Reconcile(context.Background(), core.Vacillate, "mine", 1)
	if err != nil || v != "mine" {
		t.Fatalf("empty-set reconcile = %q %v", v, err)
	}
	vac.seen.add("a")
	vac.seen.add("b")
	got := map[string]bool{}
	for i := 0; i < 100; i++ {
		v, err := rec.Reconcile(context.Background(), core.Vacillate, "mine", 1)
		if err != nil {
			t.Fatal(err)
		}
		got[v] = true
	}
	if !got["a"] || !got["b"] || len(got) != 2 {
		t.Fatalf("sampled %v, want exactly {a,b}", got)
	}
}

func TestNewVACRejectsBadBounds(t *testing.T) {
	nw := netsim.New(4)
	if _, err := NewVAC[string](nw.Node(0), 2); err == nil {
		t.Fatal("2t >= n accepted")
	}
	if _, err := NewVAC[string](nw.Node(0), -1); err == nil {
		t.Fatal("negative t accepted")
	}
}

func TestSortedStrings(t *testing.T) {
	nw := netsim.New(1)
	vac, err := NewVAC[string](nw.Node(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	vac.seen.add("z")
	vac.seen.add("a")
	got := SortedStrings(vac)
	if len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Fatalf("SortedStrings = %v", got)
	}
}

func TestLargeDomainManyNodes(t *testing.T) {
	const n, tFaults = 9, 4
	nw := netsim.New(n, netsim.WithSeed(21))
	rng := sim.NewRNG(21)
	inputs := make([]string, n)
	for id := range inputs {
		inputs[id] = fmt.Sprintf("candidate-%d", id)
	}
	outs := runCluster(t, nw, tFaults, inputs, rng, 10000)
	if rep := checker.CheckConsensus(outs, inputMap(inputs), true); !rep.Ok() {
		t.Fatal(rep)
	}
}
