// Package multivalue extends the paper's framework beyond binary
// consensus: a vacillate-adopt-commit object and reconciliator for
// arbitrary (comparable) values in the asynchronous crash model,
// t < n/2. It is Ben-Or's round structure with two changes:
//
//   - phase-1 majorities are counted per value over the whole domain, and
//   - the reconciliator draws uniformly from the set of values this
//     processor has *seen* in reports, instead of flipping a coin.
//
// Drawing from the seen set preserves validity for free (every value in
// the system is some processor's input — the property the paper's
// reconciliator definition footnotes) and keeps weak agreement: reports
// are broadcast, so the live processors' seen sets converge to the same
// set, after which every round has probability at least |V|^(-n) of
// unanimity, and VAC convergence then commits.
//
// Agreement is inherited from the binary argument unchanged: two ratify
// messages in one round both carry strict-majority values, and two
// strict majorities intersect, so they carry the same value regardless
// of the domain size.
//
// The package demonstrates what the paper's Section 6 gestures at: new
// consensus algorithms assembled by swapping one object implementation
// under the same template.
package multivalue

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"ooc/internal/core"
	"ooc/internal/msgnet"
	"ooc/internal/sim"
)

// Report is the phase-1 message <1, v>.
type Report[V comparable] struct {
	Round int
	Value V
}

// Ratify is the phase-2 message: <2, v, ratify> or <2, ?>.
type Ratify[V comparable] struct {
	Round    int
	Value    V
	HasValue bool
}

// seenSet accumulates every value observed in reports, shared between
// the VAC (writer) and the reconciliator (reader) of one processor.
type seenSet[V comparable] struct {
	mu     sync.Mutex
	order  []V // insertion order, for deterministic sampling
	member map[V]bool
}

func newSeenSet[V comparable]() *seenSet[V] {
	return &seenSet[V]{member: make(map[V]bool)}
}

func (s *seenSet[V]) add(v V) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.member[v] {
		s.member[v] = true
		s.order = append(s.order, v)
	}
}

func (s *seenSet[V]) values() []V {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]V(nil), s.order...)
}

// VAC is the multivalued vacillate-adopt-commit object. It is stateful
// per processor and not safe for concurrent Propose calls.
type VAC[V comparable] struct {
	node msgnet.Endpoint
	t    int
	seen *seenSet[V]

	reports  map[int]map[int]Report[V]
	ratifies map[int]map[int]Ratify[V]
	floor    int
}

var _ core.VacillateAdoptCommit[string] = (*VAC[string])(nil)

// NewVAC builds the multivalued VAC for this processor; t is the crash
// bound, 2t < n.
func NewVAC[V comparable](node msgnet.Endpoint, t int) (*VAC[V], error) {
	if n := node.N(); 2*t >= n {
		return nil, fmt.Errorf("multivalue: t=%d violates 2t < n with n=%d", t, n)
	}
	if t < 0 {
		return nil, fmt.Errorf("multivalue: negative fault bound t=%d", t)
	}
	return &VAC[V]{
		node:     node,
		t:        t,
		seen:     newSeenSet[V](),
		reports:  make(map[int]map[int]Report[V]),
		ratifies: make(map[int]map[int]Ratify[V]),
	}, nil
}

func (va *VAC[V]) advance(round int) {
	if round <= va.floor {
		return
	}
	va.floor = round
	for r := range va.reports {
		if r < round {
			delete(va.reports, r)
		}
	}
	for r := range va.ratifies {
		if r < round {
			delete(va.ratifies, r)
		}
	}
}

func (va *VAC[V]) absorb(m msgnet.Message) error {
	switch p := m.Payload.(type) {
	case Report[V]:
		va.seen.add(p.Value)
		if p.Round < va.floor {
			return nil
		}
		bucket, ok := va.reports[p.Round]
		if !ok {
			bucket = make(map[int]Report[V])
			va.reports[p.Round] = bucket
		}
		if _, dup := bucket[m.From]; !dup {
			bucket[m.From] = p
		}
	case Ratify[V]:
		if p.HasValue {
			va.seen.add(p.Value)
		}
		if p.Round < va.floor {
			return nil
		}
		bucket, ok := va.ratifies[p.Round]
		if !ok {
			bucket = make(map[int]Ratify[V])
			va.ratifies[p.Round] = bucket
		}
		if _, dup := bucket[m.From]; !dup {
			bucket[m.From] = p
		}
	default:
		return fmt.Errorf("multivalue: unexpected message type %T from %d", m.Payload, m.From)
	}
	return nil
}

func (va *VAC[V]) waitReports(ctx context.Context, round, k int) (map[int]Report[V], error) {
	for len(va.reports[round]) < k {
		m, err := va.node.Recv(ctx)
		if err != nil {
			return nil, fmt.Errorf("multivalue: waiting for %d reports in round %d: %w", k, round, err)
		}
		if err := va.absorb(m); err != nil {
			return nil, err
		}
	}
	return va.reports[round], nil
}

func (va *VAC[V]) waitRatifies(ctx context.Context, round, k int) (map[int]Ratify[V], error) {
	for len(va.ratifies[round]) < k {
		m, err := va.node.Recv(ctx)
		if err != nil {
			return nil, fmt.Errorf("multivalue: waiting for %d ratifies in round %d: %w", k, round, err)
		}
		if err := va.absorb(m); err != nil {
			return nil, err
		}
	}
	return va.ratifies[round], nil
}

// Propose implements core.VacillateAdoptCommit for arbitrary values.
func (va *VAC[V]) Propose(ctx context.Context, v V, round int) (core.Confidence, V, error) {
	n := va.node.N()
	quorum := n - va.t
	va.seen.add(v)
	va.advance(round)

	if err := va.node.Broadcast(Report[V]{Round: round, Value: v}); err != nil {
		return 0, v, fmt.Errorf("multivalue: round %d phase 1: %w", round, err)
	}
	reports, err := va.waitReports(ctx, round, quorum)
	if err != nil {
		return 0, v, err
	}
	counts := make(map[V]int, len(reports))
	for _, r := range reports {
		counts[r.Value]++
	}
	out := Ratify[V]{Round: round}
	for w, c := range counts {
		if 2*c > n {
			out.Value, out.HasValue = w, true
		}
	}

	if err := va.node.Broadcast(out); err != nil {
		return 0, v, fmt.Errorf("multivalue: round %d phase 2: %w", round, err)
	}
	ratifies, err := va.waitRatifies(ctx, round, quorum)
	if err != nil {
		return 0, v, err
	}
	ratifyCount := make(map[V]int)
	var (
		sawRatify bool
		u         V
	)
	for _, r := range ratifies {
		if r.HasValue {
			ratifyCount[r.Value]++
			sawRatify = true
			u = r.Value
		}
	}
	for w, c := range ratifyCount {
		if c > va.t {
			// Commit: echo the next round before the template halts us,
			// exactly as the binary VAC does (see benor.VAC).
			if err := va.node.Broadcast(Report[V]{Round: round + 1, Value: w}); err != nil {
				return 0, v, fmt.Errorf("multivalue: round %d commit echo: %w", round, err)
			}
			if err := va.node.Broadcast(Ratify[V]{Round: round + 1, Value: w, HasValue: true}); err != nil {
				return 0, v, fmt.Errorf("multivalue: round %d commit echo: %w", round, err)
			}
			return core.Commit, w, nil
		}
	}
	if sawRatify {
		return core.Adopt, u, nil
	}
	return core.Vacillate, v, nil
}

// Seen exposes the values observed so far (insertion-ordered); the
// reconciliator samples from it.
func (va *VAC[V]) Seen() []V { return va.seen.values() }

// Reconciliator draws uniformly from the values its VAC has seen. Pair
// it with the VAC it was built from.
type Reconciliator[V comparable] struct {
	vac *VAC[V]
	rng *sim.RNG
}

var _ core.Reconciliator[string] = (*Reconciliator[string])(nil)

// NewReconciliator builds the seen-set sampler for vac.
func NewReconciliator[V comparable](vac *VAC[V], rng *sim.RNG) *Reconciliator[V] {
	return &Reconciliator[V]{vac: vac, rng: rng}
}

// Reconcile implements core.Reconciliator.
func (r *Reconciliator[V]) Reconcile(_ context.Context, _ core.Confidence, v V, _ int) (V, error) {
	seen := r.vac.Seen()
	if len(seen) == 0 {
		return v, nil
	}
	return seen[r.rng.Intn(len(seen))], nil
}

// RunDecomposed wires the multivalued VAC and reconciliator under the
// generic Algorithm 1 template.
func RunDecomposed[V comparable](
	ctx context.Context,
	node msgnet.Endpoint,
	rng *sim.RNG,
	t int,
	v V,
	opts ...core.Option,
) (core.Decision[V], error) {
	vac, err := NewVAC[V](node, t)
	if err != nil {
		return core.Decision[V]{}, err
	}
	return core.RunVAC[V](ctx, vac, NewReconciliator[V](vac, rng), v, opts...)
}

// SortedStrings is a test/debug helper: the seen set of a string-valued
// VAC in sorted order.
func SortedStrings(vac *VAC[string]) []string {
	out := vac.Seen()
	sort.Strings(out)
	return out
}
