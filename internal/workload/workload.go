// Package workload generates the inputs and fault schedules the
// experiment suite sweeps over: initial-value splits, crash schedules for
// the asynchronous protocols, and Byzantine rosters for Phase-King.
package workload

import (
	"fmt"

	"ooc/internal/sim"
)

// Split names an initial-value distribution for binary consensus.
type Split int

// The input splits the experiments sweep.
const (
	// SplitUnanimous0 gives every processor input 0.
	SplitUnanimous0 Split = iota + 1
	// SplitUnanimous1 gives every processor input 1.
	SplitUnanimous1
	// SplitHalf alternates 0 and 1 — the adversarial stalemate start.
	SplitHalf
	// SplitOneDissent gives processor 0 input 1 and everyone else 0.
	SplitOneDissent
	// SplitRandom draws each input from a fair coin.
	SplitRandom
)

var splitNames = map[Split]string{
	SplitUnanimous0: "unanimous-0",
	SplitUnanimous1: "unanimous-1",
	SplitHalf:       "half-half",
	SplitOneDissent: "one-dissent",
	SplitRandom:     "random",
}

// String implements fmt.Stringer.
func (s Split) String() string {
	if n, ok := splitNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Split(%d)", int(s))
}

// AllSplits lists every defined split, in declaration order.
func AllSplits() []Split {
	return []Split{SplitUnanimous0, SplitUnanimous1, SplitHalf, SplitOneDissent, SplitRandom}
}

// BinaryInputs materializes a split for n processors. rng is only used by
// SplitRandom.
func BinaryInputs(s Split, n int, rng *sim.RNG) []int {
	out := make([]int, n)
	switch s {
	case SplitUnanimous0:
		// zero value already
	case SplitUnanimous1:
		for i := range out {
			out[i] = 1
		}
	case SplitHalf:
		for i := range out {
			out[i] = i % 2
		}
	case SplitOneDissent:
		if n > 0 {
			out[0] = 1
		}
	case SplitRandom:
		for i := range out {
			out[i] = rng.Bit()
		}
	default:
		panic(fmt.Sprintf("workload: unknown split %v", s))
	}
	return out
}

// CrashSpec schedules one crash for the asynchronous simulator.
type CrashSpec struct {
	Node int
	// AfterSends crashes the node after that many further successful
	// sends (0 = immediately). Broadcasts transmit in random order, so a
	// mid-broadcast quota yields an adversarial partial broadcast.
	AfterSends int
}

// CrashPlan builds a schedule crashing the last `crashes` processors of n,
// staggered so one dies immediately, one mid-first-broadcast, and the
// rest progressively later — a spread of the adversarial timings Ben-Or
// must tolerate.
func CrashPlan(n, crashes int, rng *sim.RNG) []CrashSpec {
	if crashes > n {
		crashes = n
	}
	specs := make([]CrashSpec, 0, crashes)
	for i := 0; i < crashes; i++ {
		after := 0
		if i > 0 {
			// Somewhere within the first few broadcasts.
			after = rng.Intn(3*n) + 1
		}
		specs = append(specs, CrashSpec{Node: n - 1 - i, AfterSends: after})
	}
	return specs
}

// InputsToMap converts a slice of inputs into the id-keyed map several
// runners take, excluding the listed ids (e.g. Byzantine processors).
func InputsToMap(inputs []int, exclude ...int) map[int]int {
	skip := make(map[int]bool, len(exclude))
	for _, id := range exclude {
		skip[id] = true
	}
	out := make(map[int]int, len(inputs))
	for id, v := range inputs {
		if !skip[id] {
			out[id] = v
		}
	}
	return out
}
