package workload

import (
	"testing"

	"ooc/internal/sim"
)

func TestBinaryInputs(t *testing.T) {
	rng := sim.NewRNG(1)
	const n = 8
	cases := []struct {
		split Split
		check func([]int) bool
	}{
		{SplitUnanimous0, func(in []int) bool {
			for _, v := range in {
				if v != 0 {
					return false
				}
			}
			return true
		}},
		{SplitUnanimous1, func(in []int) bool {
			for _, v := range in {
				if v != 1 {
					return false
				}
			}
			return true
		}},
		{SplitHalf, func(in []int) bool {
			ones := 0
			for _, v := range in {
				ones += v
			}
			return ones == n/2
		}},
		{SplitOneDissent, func(in []int) bool {
			ones := 0
			for _, v := range in {
				ones += v
			}
			return in[0] == 1 && ones == 1
		}},
		{SplitRandom, func(in []int) bool {
			for _, v := range in {
				if v != 0 && v != 1 {
					return false
				}
			}
			return true
		}},
	}
	for _, tc := range cases {
		in := BinaryInputs(tc.split, n, rng)
		if len(in) != n {
			t.Fatalf("%v: length %d", tc.split, len(in))
		}
		if !tc.check(in) {
			t.Fatalf("%v: inputs %v", tc.split, in)
		}
	}
}

func TestBinaryInputsPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown split did not panic")
		}
	}()
	BinaryInputs(Split(99), 3, sim.NewRNG(1))
}

func TestSplitString(t *testing.T) {
	if SplitHalf.String() != "half-half" {
		t.Fatalf("got %q", SplitHalf.String())
	}
	if Split(42).String() != "Split(42)" {
		t.Fatalf("got %q", Split(42).String())
	}
	if len(AllSplits()) != 5 {
		t.Fatalf("AllSplits() has %d entries", len(AllSplits()))
	}
}

func TestCrashPlan(t *testing.T) {
	rng := sim.NewRNG(3)
	specs := CrashPlan(7, 3, rng)
	if len(specs) != 3 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].Node != 6 || specs[0].AfterSends != 0 {
		t.Fatalf("first spec = %+v, want immediate crash of node 6", specs[0])
	}
	seen := map[int]bool{}
	for _, s := range specs {
		if s.Node < 0 || s.Node >= 7 || seen[s.Node] {
			t.Fatalf("bad node in %+v", specs)
		}
		seen[s.Node] = true
		if s.AfterSends < 0 {
			t.Fatalf("negative AfterSends: %+v", s)
		}
	}
	// Clamp: asking for more crashes than processors.
	if got := CrashPlan(2, 5, rng); len(got) != 2 {
		t.Fatalf("clamp failed: %d specs", len(got))
	}
}

func TestInputsToMap(t *testing.T) {
	m := InputsToMap([]int{1, 0, 1, 0}, 2)
	if len(m) != 3 {
		t.Fatalf("map = %v", m)
	}
	if _, ok := m[2]; ok {
		t.Fatal("excluded id present")
	}
	if m[0] != 1 || m[3] != 0 {
		t.Fatalf("map = %v", m)
	}
}
