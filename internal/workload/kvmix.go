package workload

import (
	"fmt"
	"math"

	"ooc/internal/sim"
)

// KeyDist selects how KVMix draws keys from the keyspace.
type KeyDist int

const (
	// KeysUniform draws every key with equal probability.
	KeysUniform KeyDist = iota + 1
	// KeysZipfian draws keys from a Zipf(s=Theta) distribution over the
	// keyspace, concentrating traffic on a hot head — the usual model for
	// caching and read-path experiments (YCSB's default shape).
	KeysZipfian
)

var keyDistNames = map[KeyDist]string{
	KeysUniform: "uniform",
	KeysZipfian: "zipfian",
}

// String implements fmt.Stringer.
func (d KeyDist) String() string {
	if n, ok := keyDistNames[d]; ok {
		return n
	}
	return fmt.Sprintf("KeyDist(%d)", int(d))
}

// ParseKeyDist maps a flag value ("uniform", "zipfian") to its KeyDist.
func ParseKeyDist(s string) (KeyDist, error) {
	for d, name := range keyDistNames {
		if name == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown key distribution %q (want uniform or zipfian)", s)
}

// KVOp is one operation drawn from a KVMix: a read of Key, or a write of
// Value to Key.
type KVOp struct {
	Read  bool
	Key   string
	Value string
}

// KVMixConfig shapes a read/write key-value workload.
type KVMixConfig struct {
	// ReadRatio is the fraction of operations that are reads, in [0, 1].
	ReadRatio float64
	// Keys is the keyspace size (default 1000). Keys are "k000000"-style
	// fixed-width strings so ordering and width are stable.
	Keys int
	// Dist selects the key distribution (default KeysUniform).
	Dist KeyDist
	// Theta is the Zipf exponent for KeysZipfian (default 0.99, YCSB's).
	Theta float64
}

// KVMix generates a randomized read/write stream over a bounded
// keyspace, deterministically from a sim.RNG — every client in a
// benchmark forks its own stream (rng.Stream) and draws independently.
// Not safe for concurrent use; give each goroutine its own KVMix.
type KVMix struct {
	cfg  KVMixConfig
	rng  *sim.RNG
	cdf  []float64 // cumulative Zipf mass per rank; nil for uniform
	seq  int64     // distinct written values, for linearizability checking
	keys []string  // precomputed key strings
}

// NewKVMix validates cfg, fills defaults, and precomputes the key table
// (and, for KeysZipfian, the cumulative distribution — O(Keys) once,
// O(log Keys) per draw).
func NewKVMix(cfg KVMixConfig, rng *sim.RNG) (*KVMix, error) {
	if cfg.ReadRatio < 0 || cfg.ReadRatio > 1 {
		return nil, fmt.Errorf("workload: read ratio %v outside [0, 1]", cfg.ReadRatio)
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 1000
	}
	if cfg.Dist == 0 {
		cfg.Dist = KeysUniform
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	m := &KVMix{cfg: cfg, rng: rng, keys: make([]string, cfg.Keys)}
	for i := range m.keys {
		m.keys[i] = fmt.Sprintf("k%06d", i)
	}
	if cfg.Dist == KeysZipfian {
		m.cdf = make([]float64, cfg.Keys)
		sum := 0.0
		for i := 0; i < cfg.Keys; i++ {
			sum += 1 / math.Pow(float64(i+1), cfg.Theta)
			m.cdf[i] = sum
		}
		for i := range m.cdf {
			m.cdf[i] /= sum
		}
	}
	return m, nil
}

// Next draws the next operation. Written values are globally unique per
// KVMix ("v<n>"), so a linearizability checker can identify which write
// a read observed.
func (m *KVMix) Next() KVOp {
	key := m.keys[m.drawKey()]
	if m.rng.Float64() < m.cfg.ReadRatio {
		return KVOp{Read: true, Key: key}
	}
	m.seq++
	return KVOp{Key: key, Value: fmt.Sprintf("v%d", m.seq)}
}

// drawKey samples a key rank from the configured distribution.
func (m *KVMix) drawKey() int {
	if m.cdf == nil {
		return m.rng.Intn(m.cfg.Keys)
	}
	// Binary search the precomputed CDF: first rank with cdf ≥ u.
	u := m.rng.Float64()
	lo, hi := 0, len(m.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if m.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
