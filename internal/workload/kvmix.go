package workload

import (
	"fmt"
	"math"

	"ooc/internal/sim"
)

// KeyDist selects how KVMix draws keys from the keyspace.
type KeyDist int

const (
	// KeysUniform draws every key with equal probability.
	KeysUniform KeyDist = iota + 1
	// KeysZipfian draws keys from a Zipf(s=Theta) distribution over the
	// keyspace, concentrating traffic on a hot head — the usual model for
	// caching and read-path experiments (YCSB's default shape).
	KeysZipfian
)

var keyDistNames = map[KeyDist]string{
	KeysUniform: "uniform",
	KeysZipfian: "zipfian",
}

// String implements fmt.Stringer.
func (d KeyDist) String() string {
	if n, ok := keyDistNames[d]; ok {
		return n
	}
	return fmt.Sprintf("KeyDist(%d)", int(d))
}

// ParseKeyDist maps a flag value ("uniform", "zipfian") to its KeyDist.
func ParseKeyDist(s string) (KeyDist, error) {
	for d, name := range keyDistNames {
		if name == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown key distribution %q (want uniform or zipfian)", s)
}

// KVOp is one operation drawn from a KVMix: a read of Key, or a write of
// Value to Key.
type KVOp struct {
	Read  bool
	Key   string
	Value string
}

// KVMixConfig shapes a read/write key-value workload.
type KVMixConfig struct {
	// ReadRatio is the fraction of operations that are reads, in [0, 1].
	ReadRatio float64
	// Keys is the keyspace size (default 1000). Keys are "k000000"-style
	// fixed-width strings so ordering and width are stable.
	Keys int
	// Dist selects the key distribution (default KeysUniform).
	Dist KeyDist
	// Theta is the Zipf exponent for KeysZipfian (default 0.99, YCSB's).
	Theta float64
}

// KVMixFamily holds the shared, immutable tables a set of KVMix
// generators draws from: the key strings and, for KeysZipfian, the
// cumulative distribution. Building the zipfian CDF is O(Keys) with a
// math.Pow per rank — for a multi-shard benchmark grid spawning
// shards×clients generators over a large keyspace, paying that once
// instead of per generator is the difference between instant and
// seconds of setup. A family is safe for concurrent Instance calls; the
// instances themselves are single-goroutine as before.
type KVMixFamily struct {
	cfg  KVMixConfig
	cdf  []float64 // cumulative Zipf mass per rank; nil for uniform
	keys []string  // precomputed key strings
}

// NewKVMixFamily validates cfg, fills defaults, and precomputes the key
// table (and, for KeysZipfian, the CDF — O(Keys) once, O(log Keys) per
// draw).
func NewKVMixFamily(cfg KVMixConfig) (*KVMixFamily, error) {
	if cfg.ReadRatio < 0 || cfg.ReadRatio > 1 {
		return nil, fmt.Errorf("workload: read ratio %v outside [0, 1]", cfg.ReadRatio)
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 1000
	}
	if cfg.Dist == 0 {
		cfg.Dist = KeysUniform
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	f := &KVMixFamily{cfg: cfg, keys: make([]string, cfg.Keys)}
	for i := range f.keys {
		f.keys[i] = fmt.Sprintf("k%06d", i)
	}
	if cfg.Dist == KeysZipfian {
		f.cdf = make([]float64, cfg.Keys)
		sum := 0.0
		for i := 0; i < cfg.Keys; i++ {
			sum += 1 / math.Pow(float64(i+1), cfg.Theta)
			f.cdf[i] = sum
		}
		for i := range f.cdf {
			f.cdf[i] /= sum
		}
	}
	return f, nil
}

// Instance builds a generator drawing from the family's shared tables
// with its own RNG stream. Values written by distinct instances are
// distinguishable only per instance; callers that need global
// uniqueness (linearizability checking) prefix values per client.
func (f *KVMixFamily) Instance(rng *sim.RNG) *KVMix {
	return &KVMix{fam: f, rng: rng}
}

// Keys returns the shared key table. Callers must not mutate it.
func (f *KVMixFamily) Keys() []string { return f.keys }

// ShardSpread is the key→shard distribution self-check: it maps every
// key in the family's table through shardOf and returns how many keys
// land on each of shards shards. Benchmarks assert the spread before
// trusting a "per-shard throughput" number — a router bug that funnels
// the keyspace onto one group would otherwise masquerade as a scaling
// regression.
func (f *KVMixFamily) ShardSpread(shards int, shardOf func(string) int) ([]int, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("workload: shard spread over %d shards", shards)
	}
	counts := make([]int, shards)
	for _, k := range f.keys {
		s := shardOf(k)
		if s < 0 || s >= shards {
			return nil, fmt.Errorf("workload: key %q routed to shard %d of %d", k, s, shards)
		}
		counts[s]++
	}
	return counts, nil
}

// SpreadImbalance reduces a ShardSpread to max/mean — 1.0 is a perfect
// split, 2.0 means the hottest shard owns twice its fair share.
func SpreadImbalance(counts []int) float64 {
	if len(counts) == 0 {
		return 0
	}
	total, max := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(len(counts)) / float64(total)
}

// KVMix generates a randomized read/write stream over a bounded
// keyspace, deterministically from a sim.RNG — every client in a
// benchmark forks its own stream (rng.Stream) and draws independently,
// while the key table and zipfian CDF live once in the shared family.
// Not safe for concurrent use; give each goroutine its own KVMix.
type KVMix struct {
	fam *KVMixFamily
	rng *sim.RNG
	seq int64 // distinct written values, for linearizability checking
}

// NewKVMix builds a single-instance family and returns its generator —
// the one-client convenience constructor. Grids that spawn many
// generators over one configuration build a NewKVMixFamily and call
// Instance per client instead, sharing the precomputed tables.
func NewKVMix(cfg KVMixConfig, rng *sim.RNG) (*KVMix, error) {
	f, err := NewKVMixFamily(cfg)
	if err != nil {
		return nil, err
	}
	return f.Instance(rng), nil
}

// Next draws the next operation. Written values are globally unique per
// KVMix ("v<n>"), so a linearizability checker can identify which write
// a read observed.
func (m *KVMix) Next() KVOp {
	key := m.fam.keys[m.drawKey()]
	if m.rng.Float64() < m.fam.cfg.ReadRatio {
		return KVOp{Read: true, Key: key}
	}
	m.seq++
	return KVOp{Key: key, Value: fmt.Sprintf("v%d", m.seq)}
}

// drawKey samples a key rank from the configured distribution.
func (m *KVMix) drawKey() int {
	if m.fam.cdf == nil {
		return m.rng.Intn(m.fam.cfg.Keys)
	}
	// Binary search the shared precomputed CDF: first rank with cdf ≥ u.
	u := m.rng.Float64()
	lo, hi := 0, len(m.fam.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if m.fam.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
