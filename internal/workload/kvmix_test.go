package workload

import (
	"testing"

	"ooc/internal/sim"
)

func TestKVMixRatioAndDeterminism(t *testing.T) {
	mk := func() *KVMix {
		m, err := NewKVMix(KVMixConfig{ReadRatio: 0.9, Keys: 100}, sim.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := mk(), mk()
	reads := 0
	const n = 10000
	for i := 0; i < n; i++ {
		opA, opB := a.Next(), b.Next()
		if opA != opB {
			t.Fatalf("op %d diverged under the same seed: %+v vs %+v", i, opA, opB)
		}
		if opA.Read {
			reads++
			if opA.Value != "" {
				t.Fatalf("read carries a value: %+v", opA)
			}
		} else if opA.Value == "" {
			t.Fatalf("write missing a value: %+v", opA)
		}
	}
	if ratio := float64(reads) / n; ratio < 0.88 || ratio > 0.92 {
		t.Fatalf("read ratio %.3f, want ≈0.9", ratio)
	}
}

func TestKVMixWriteValuesUnique(t *testing.T) {
	m, err := NewKVMix(KVMixConfig{ReadRatio: 0.5, Keys: 10}, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for i := 0; i < 5000; i++ {
		op := m.Next()
		if op.Read {
			continue
		}
		if seen[op.Value] {
			t.Fatalf("duplicate written value %q", op.Value)
		}
		seen[op.Value] = true
	}
}

func TestKVMixZipfianSkew(t *testing.T) {
	m, err := NewKVMix(KVMixConfig{ReadRatio: 0, Keys: 1000, Dist: KeysZipfian}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[m.Next().Key]++
	}
	// Under Zipf(0.99) over 1000 keys the hottest key gets ≈13% of the
	// mass; uniform would give 0.1%. Assert it is clearly skewed.
	if top := counts["k000000"]; top < n/20 {
		t.Fatalf("hottest key drew %d of %d ops; expected a Zipfian head", top, n)
	}
	distinct := len(counts)
	if distinct < 100 {
		t.Fatalf("only %d distinct keys drawn; tail should still appear", distinct)
	}
}

func TestKVMixValidation(t *testing.T) {
	if _, err := NewKVMix(KVMixConfig{ReadRatio: 1.5}, sim.NewRNG(1)); err == nil {
		t.Fatal("want error for ratio > 1")
	}
	if _, err := ParseKeyDist("zipfian"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseKeyDist("nope"); err == nil {
		t.Fatal("want error for unknown distribution")
	}
}
