package workload

import (
	"testing"

	"ooc/internal/sim"
)

func TestKVMixRatioAndDeterminism(t *testing.T) {
	mk := func() *KVMix {
		m, err := NewKVMix(KVMixConfig{ReadRatio: 0.9, Keys: 100}, sim.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := mk(), mk()
	reads := 0
	const n = 10000
	for i := 0; i < n; i++ {
		opA, opB := a.Next(), b.Next()
		if opA != opB {
			t.Fatalf("op %d diverged under the same seed: %+v vs %+v", i, opA, opB)
		}
		if opA.Read {
			reads++
			if opA.Value != "" {
				t.Fatalf("read carries a value: %+v", opA)
			}
		} else if opA.Value == "" {
			t.Fatalf("write missing a value: %+v", opA)
		}
	}
	if ratio := float64(reads) / n; ratio < 0.88 || ratio > 0.92 {
		t.Fatalf("read ratio %.3f, want ≈0.9", ratio)
	}
}

func TestKVMixWriteValuesUnique(t *testing.T) {
	m, err := NewKVMix(KVMixConfig{ReadRatio: 0.5, Keys: 10}, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for i := 0; i < 5000; i++ {
		op := m.Next()
		if op.Read {
			continue
		}
		if seen[op.Value] {
			t.Fatalf("duplicate written value %q", op.Value)
		}
		seen[op.Value] = true
	}
}

func TestKVMixZipfianSkew(t *testing.T) {
	m, err := NewKVMix(KVMixConfig{ReadRatio: 0, Keys: 1000, Dist: KeysZipfian}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[m.Next().Key]++
	}
	// Under Zipf(0.99) over 1000 keys the hottest key gets ≈13% of the
	// mass; uniform would give 0.1%. Assert it is clearly skewed.
	if top := counts["k000000"]; top < n/20 {
		t.Fatalf("hottest key drew %d of %d ops; expected a Zipfian head", top, n)
	}
	distinct := len(counts)
	if distinct < 100 {
		t.Fatalf("only %d distinct keys drawn; tail should still appear", distinct)
	}
}

func TestKVMixValidation(t *testing.T) {
	if _, err := NewKVMix(KVMixConfig{ReadRatio: 1.5}, sim.NewRNG(1)); err == nil {
		t.Fatal("want error for ratio > 1")
	}
	if _, err := ParseKeyDist("zipfian"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseKeyDist("nope"); err == nil {
		t.Fatal("want error for unknown distribution")
	}
}

// TestKVMixFamilySharesTables pins the satellite's contract: instances
// of one family draw from the same key table and CDF, and a family
// instance behaves identically to a standalone NewKVMix with the same
// config and seed.
func TestKVMixFamilySharesTables(t *testing.T) {
	cfg := KVMixConfig{ReadRatio: 0.5, Keys: 512, Dist: KeysZipfian}
	fam, err := NewKVMixFamily(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := fam.Instance(sim.NewRNG(7))
	b, err := NewKVMix(cfg, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if got, want := a.Next(), b.Next(); got != want {
			t.Fatalf("op %d: family instance %v, standalone %v", i, got, want)
		}
	}
	// Two instances with distinct streams draw independently but from
	// the same keyspace.
	c := fam.Instance(sim.NewRNG(8))
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		seen[c.Next().Key] = true
	}
	for k := range seen {
		found := false
		for _, fk := range fam.Keys() {
			if fk == k {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("instance drew key %q outside the family table", k)
		}
	}
}

// TestShardSpread checks the key→shard self-check helper itself: a
// modular split is perfectly balanced, a constant router is maximally
// imbalanced, and out-of-range routing is an error.
func TestShardSpread(t *testing.T) {
	fam, err := NewKVMixFamily(KVMixConfig{Keys: 1000})
	if err != nil {
		t.Fatal(err)
	}
	mod4 := func(k string) int {
		n := 0
		for _, c := range k {
			n = n*31 + int(c)
		}
		if n < 0 {
			n = -n
		}
		return n % 4
	}
	counts, err := fam.ShardSpread(4, mod4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1000 {
		t.Fatalf("spread covers %d keys, want 1000", total)
	}
	if imb := SpreadImbalance(counts); imb > 1.5 {
		t.Fatalf("hash spread imbalance %.2f over 1.5: %v", imb, counts)
	}
	hot, err := fam.ShardSpread(4, func(string) int { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	if imb := SpreadImbalance(hot); imb != 4.0 {
		t.Fatalf("constant router imbalance = %.2f, want 4.0", imb)
	}
	if _, err := fam.ShardSpread(4, func(string) int { return 4 }); err == nil {
		t.Fatal("out-of-range shard not rejected")
	}
	if _, err := fam.ShardSpread(0, mod4); err == nil {
		t.Fatal("zero shards not rejected")
	}
}
