package metrics

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsDiscard(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments, got %v %v %v", c, g, h)
	}
	// All of these must be safe no-ops.
	c.Inc(3)
	c.Add(-1, 7)
	g.Set(9)
	g.Add(-2)
	h.Observe(0, time.Second)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty, got %+v", snap)
	}
}

func TestCounterShardsFold(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sends_total")
	if c != r.Counter("sends_total") {
		t.Fatal("Counter must be get-or-create")
	}
	for hint := -1; hint < 40; hint++ {
		c.Add(hint, 2)
	}
	if got := c.Value(); got != 82 {
		t.Fatalf("Value = %d, want 82", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(g)
			}
		}(g)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("lost updates: %d, want %d", got, goroutines*per)
	}
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	h := r.Histogram("lat", bounds)
	// 50 fast, 30 medium, 15 slow, 5 off the top.
	for i := 0; i < 50; i++ {
		h.Observe(i, 500*time.Microsecond)
	}
	for i := 0; i < 30; i++ {
		h.Observe(i, 5*time.Millisecond)
	}
	for i := 0; i < 15; i++ {
		h.Observe(i, 50*time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		h.Observe(i, time.Second)
	}
	hs := r.Snapshot().Histograms["lat"]
	if hs.Count != 100 {
		t.Fatalf("count = %d, want 100", hs.Count)
	}
	wantCounts := []int64{50, 30, 15, 5}
	for i, want := range wantCounts {
		if hs.Counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hs.Counts[i], want, hs.Counts)
		}
	}
	if q := hs.Quantile(0.5); q != time.Millisecond {
		t.Fatalf("p50 = %v, want 1ms", q)
	}
	if q := hs.Quantile(0.9); q != 100*time.Millisecond {
		t.Fatalf("p90 = %v, want 100ms", q)
	}
	// +Inf observations report the top finite bound.
	if q := hs.Quantile(0.999); q != 100*time.Millisecond {
		t.Fatalf("p99.9 = %v, want 100ms", q)
	}
	wantSum := 50*500*time.Microsecond + 30*5*time.Millisecond + 15*50*time.Millisecond + 5*time.Second
	if hs.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", hs.Sum, wantSum)
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	h := NewRegistry().Histogram("h", nil)
	h.Observe(0, 3*time.Microsecond)
	hs := h.snapshot()
	if len(hs.Bounds) != len(DefaultLatencyBuckets) {
		t.Fatalf("bounds = %d, want %d", len(hs.Bounds), len(DefaultLatencyBuckets))
	}
	if hs.Counts[1] != 1 { // 3µs lands in the (1µs, 4µs] bucket
		t.Fatalf("3µs in wrong bucket: %v", hs.Counts)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc(0)
	snap := r.Snapshot()
	snap.Counters["a"] = 999
	if got := r.Snapshot().Counters["a"]; got != 1 {
		t.Fatalf("snapshot aliased registry state: %d", got)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("x_total"); got != "x_total" {
		t.Fatalf("no-label: %q", got)
	}
	got := Label("x_total", "object", "vac", "outcome", "commit")
	want := `x_total{object="vac",outcome="commit"}`
	if got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	b.ReportAllocs()
	c := NewRegistry().Counter("c")
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Inc(i)
			i++
		}
	})
}

func BenchmarkNilCounterAdd(b *testing.B) {
	b.ReportAllocs()
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc(i)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	b.ReportAllocs()
	h := NewRegistry().Histogram("h", nil)
	for i := 0; i < b.N; i++ {
		h.Observe(i, time.Duration(i%1000)*time.Microsecond)
	}
}

func TestObserveSinceAndTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat2", nil)
	start := time.Now().Add(-10 * time.Millisecond)
	h.ObserveSince(0, start)

	tm := h.Start(1)
	time.Sleep(time.Millisecond)
	d := tm.ObserveDuration()
	if d < time.Millisecond {
		t.Fatalf("timer measured %v, want >= 1ms", d)
	}

	hs := r.Snapshot().Histograms["lat2"]
	if hs.Count != 2 {
		t.Fatalf("count = %d, want 2", hs.Count)
	}
	if hs.Sum < 11*time.Millisecond {
		t.Fatalf("sum = %v, want >= 11ms", hs.Sum)
	}
}

func TestServeMountsExtraRoutes(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc(0)
	srv, err := Serve("127.0.0.1:0", r,
		Route{Pattern: "/debug/custom", Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			_, _ = w.Write([]byte("custom-ok"))
		})},
		Route{}, // empty pattern: skipped, not fatal
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if got := get("/debug/custom"); got != "custom-ok" {
		t.Fatalf("extra route returned %q", got)
	}
	if got := get("/metrics"); !strings.Contains(got, "c 1") {
		t.Fatalf("metrics route broken: %q", got)
	}
}
