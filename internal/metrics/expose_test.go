package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter(Label("sends_total", "proto", "benor")).Add(0, 42)
	r.Counter("drops_total").Add(1, 3)
	r.Gauge("mailbox_depth{node=\"0\"}").Set(7)
	h := r.Histogram(Label("invoke_seconds", "object", "vac"), []time.Duration{time.Millisecond, time.Second})
	h.Observe(0, 500*time.Microsecond)
	h.Observe(0, 100*time.Millisecond)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := testRegistry().Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE drops_total counter",
		"drops_total 3",
		`sends_total{proto="benor"} 42`,
		"# TYPE mailbox_depth gauge",
		`mailbox_depth{node="0"} 7`,
		"# TYPE invoke_seconds histogram",
		`invoke_seconds_bucket{object="vac",le="0.001"} 1`,
		`invoke_seconds_bucket{object="vac",le="1"} 2`,
		`invoke_seconds_bucket{object="vac",le="+Inf"} 2`,
		`invoke_seconds_count{object="vac"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Sum is in seconds: 0.0005 + 0.1 = 0.1005.
	if !strings.Contains(out, `invoke_seconds_sum{object="vac"} 0.1005`) {
		t.Fatalf("histogram sum not in seconds:\n%s", out)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	render := func() string {
		var b strings.Builder
		if err := testRegistry().Snapshot().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render() != render() {
		t.Fatal("prometheus rendering is not deterministic")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var b strings.Builder
	if err := testRegistry().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if snap.Counters["drops_total"] != 3 {
		t.Fatalf("counters lost in JSON: %+v", snap.Counters)
	}
	if snap.Histograms[`invoke_seconds{object="vac"}`].Count != 2 {
		t.Fatalf("histograms lost in JSON: %+v", snap.Histograms)
	}
}

func TestHandlerContentNegotiation(t *testing.T) {
	srv := httptest.NewServer(testRegistry().Handler())
	defer srv.Close()

	get := func(url, accept string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get(srv.URL, "")
	if !strings.Contains(ctype, "text/plain") || !strings.Contains(body, "drops_total 3") {
		t.Fatalf("default scrape not prometheus text: %s %q", ctype, body)
	}
	body, ctype = get(srv.URL+"?format=json", "")
	if !strings.Contains(ctype, "application/json") || !strings.Contains(body, `"drops_total": 3`) {
		t.Fatalf("?format=json not JSON: %s %q", ctype, body)
	}
	body, _ = get(srv.URL, "application/json")
	if !strings.Contains(body, `"drops_total": 3`) {
		t.Fatalf("Accept: application/json not honoured: %q", body)
	}
}

func TestServeMountsMetricsAndPprof(t *testing.T) {
	reg := testRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":             "drops_total 3",
		"/debug/pprof/":        "profile",
		"/metrics?format=json": `"drops_total": 3`,
	} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Fatalf("GET %s missing %q:\n%s", path, want, body)
		}
	}
}
