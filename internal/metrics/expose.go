package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// baseName strips a baked-in label block: `x_total{a="b"}` → `x_total`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel merges one more label pair into a possibly-labelled name:
// withLabel(`x{a="b"}`, "le", "0.1") → `x{a="b",le="0.1"}`.
func withLabel(name, key, value string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + `,` + key + `="` + value + `"}`
	}
	return name + `{` + key + `="` + value + `"}`
}

// suffixName appends a Prometheus suffix before the label block:
// suffixName(`x{a="b"}`, "_sum") → `x_sum{a="b"}`.
func suffixName(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (text/plain; version=0.0.4). Series are emitted in sorted name
// order so scrapes and tests see a deterministic document; histogram
// sums are rendered in seconds, the Prometheus convention for latency.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := map[string]bool{}
	emitType := func(name, kind string) error {
		base := baseName(name)
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		if err := emitType(name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := emitType(name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if err := emitType(name, "histogram"); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := fmt.Sprintf("%g", bound.Seconds())
			if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(suffixName(name, "_bucket"), "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(suffixName(name, "_bucket"), "le", "+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", suffixName(name, "_sum"), h.Sum.Seconds()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", suffixName(name, "_count"), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON with sorted keys.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Handler serves the registry's current state at scrape time: JSON when
// the request asks for it (?format=json or an Accept header preferring
// application/json), Prometheus text otherwise.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WritePrometheus(w)
	})
}

// Server is a running telemetry endpoint.
type Server struct {
	Addr string // the bound address, resolved from ":0" if requested
	srv  *http.Server
	ln   net.Listener
}

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// Route is an extra handler mounted on a telemetry server — how
// subsystems this package must not depend on (the flight recorder's
// /debug/flight, a tracer's span dump) ride the same listener.
type Route struct {
	Pattern string
	Handler http.Handler
}

// Serve starts an HTTP server on addr exposing:
//
//	/metrics        — the registry (Prometheus text, or JSON via ?format=json)
//	/debug/pprof/*  — the standard runtime profiles
//
// plus any extra routes, and returns once the listener is bound, serving
// in a background goroutine; the caller owns Close. This is the backend
// of the binaries' -telemetry flag.
func Serve(addr string, reg *Registry, extra ...Route) (*Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	for _, r := range extra {
		if r.Pattern != "" && r.Handler != nil {
			mux.Handle(r.Pattern, r.Handler)
		}
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: telemetry listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}
