// Package metrics is a zero-dependency, allocation-free metrics layer
// for the consensus stack: counters, gauges, and fixed-bucket latency
// histograms behind a Registry that serializes to Prometheus text and
// JSON (see expose.go).
//
// The hot-path design follows the sharded trace.Recorder introduced for
// the simulation hot path (DESIGN.md §3.1): a Counter or Histogram is an
// array of cache-line-padded atomic cells, and callers on the sharded
// simulation hot path pass their processor id as the shard hint, so
// concurrent processors never contend on one cache line. Reads fold the
// shards; writes are a single uncontended atomic add.
//
// Every type tolerates a nil receiver by discarding, mirroring the nil
// *trace.Recorder convention, so instrumented code records
// unconditionally and pays only a predictable nil check plus (for
// histograms) one clock read when no sink is attached.
//
// Cardinality rules: metric names are registered once, on the cold path,
// and labels are baked into the name string at registration time with
// Label. Instrumented code holds the returned *Counter/*Gauge/*Histogram
// pointer; it never formats label strings per event. Keep label values
// from small closed sets (object names, the three confidences, node ids
// of a fixed cluster) — never values, keys, or payloads.
package metrics

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// shards is the number of independent cells a sharded metric spreads
// writes over. A power of two keeps the shard index a mask; 16 matches
// trace.Recorder and covers the simulated cluster sizes the experiments
// run.
const shards = 16

// shardFor maps a shard hint (a node id, including the -1 "no node"
// convention) onto a cell index.
func shardFor(hint int) int {
	return int(uint(hint) & (shards - 1))
}

// cell is one padded atomic counter. The trailing pad keeps neighbouring
// cells on distinct cache lines so concurrent writers do not false-share.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. The zero value
// is ready to use; a nil *Counter discards.
type Counter struct {
	cells [shards]cell
}

// Inc adds one, attributing the write to the given shard hint.
func (c *Counter) Inc(hint int) { c.Add(hint, 1) }

// Add adds n, attributing the write to the given shard hint.
func (c *Counter) Add(hint int, n int64) {
	if c == nil {
		return
	}
	c.cells[shardFor(hint)].n.Add(n)
}

// Value folds the shards into the counter's current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	total := int64(0)
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is a last-value-wins instantaneous metric (mailbox depth, queue
// length). Unlike counters, gauges are written by one owner at a time in
// practice, so a single atomic suffices. A nil *Gauge discards.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the histogram bounds used when none are
// given: powers of four from 1µs to ~4.3s, which brackets everything
// from a simulated in-memory round to a stalled wall-clock election.
var DefaultLatencyBuckets = []time.Duration{
	1 * time.Microsecond,
	4 * time.Microsecond,
	16 * time.Microsecond,
	64 * time.Microsecond,
	256 * time.Microsecond,
	1024 * time.Microsecond,
	4096 * time.Microsecond,
	16384 * time.Microsecond,
	65536 * time.Microsecond,
	262144 * time.Microsecond,
	1048576 * time.Microsecond,
	4194304 * time.Microsecond,
}

// histCell is one shard of a histogram: per-bucket counts plus sum and
// count, padded like cell. Buckets beyond len(bounds) are unused.
type histCell struct {
	counts   [len16]atomic.Int64 // counts[i]: observations ≤ bounds[i]; last = +Inf
	sum      atomic.Int64        // nanoseconds
	observed atomic.Int64
	_        [56]byte
}

// len16 bounds the bucket count; DefaultLatencyBuckets uses 12+1.
const len16 = 16

// Histogram is a fixed-bucket latency histogram. Observations are
// durations; bucket bounds are inclusive upper bounds with an implicit
// +Inf bucket. The zero value is not usable — construct via
// Registry.Histogram. A nil *Histogram discards.
type Histogram struct {
	bounds []time.Duration // sorted ascending, < len16 entries
	cells  [shards]histCell
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	if len(bounds) >= len16 {
		bounds = bounds[:len16-1]
	}
	sorted := append([]time.Duration(nil), bounds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &Histogram{bounds: sorted}
}

// Observe records one duration, attributing the write to the shard hint.
// The bucket scan is linear: bucket counts are small (≤15) and the scan
// touches one contiguous slice, which beats binary search at this size.
func (h *Histogram) Observe(hint int, d time.Duration) {
	if h == nil {
		return
	}
	c := &h.cells[shardFor(hint)]
	idx := len(h.bounds) // +Inf bucket
	for i, b := range h.bounds {
		if d <= b {
			idx = i
			break
		}
	}
	c.counts[idx].Add(1)
	c.sum.Add(int64(d))
	c.observed.Add(1)
}

// ObserveSince records the elapsed time since start — the idiom behind
// every latency histogram in the tree (`h.Observe(hint, time.Since(t0))`)
// folded into one call so call sites cannot mix up which clock stamp
// pairs with which histogram. A nil histogram still skips the record but
// pays the clock read, like Observe.
func (h *Histogram) ObserveSince(hint int, start time.Time) {
	h.Observe(hint, time.Since(start))
}

// Timer measures one interval into a histogram: start it where the work
// begins, ObserveDuration where it ends. It is a value (no allocation)
// and is bound to its histogram at Start, so an early return cannot
// record into the wrong sink.
type Timer struct {
	h     *Histogram
	hint  int
	start time.Time
}

// Start begins timing an interval attributed to the shard hint. Safe on
// a nil histogram (ObserveDuration then only reports the elapsed time).
func (h *Histogram) Start(hint int) Timer {
	return Timer{h: h, hint: hint, start: time.Now()}
}

// ObserveDuration records the interval since Start and returns it.
func (t Timer) ObserveDuration() time.Duration {
	d := time.Since(t.start)
	t.h.Observe(t.hint, d)
	return d
}

// HistogramSnapshot is a histogram's folded state.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bounds; Counts has len(Bounds)+1
	// entries, the last being the +Inf bucket.
	Bounds []time.Duration `json:"bounds_ns"`
	Counts []int64         `json:"counts"`
	Sum    time.Duration   `json:"sum_ns"`
	Count  int64           `json:"count"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts,
// attributing every observation in a bucket to its upper bound. The +Inf
// bucket reports the highest finite bound.
func (hs HistogramSnapshot) Quantile(q float64) time.Duration {
	if hs.Count == 0 || len(hs.Bounds) == 0 {
		return 0
	}
	target := q * float64(hs.Count)
	seen := int64(0)
	for i, c := range hs.Counts {
		seen += c
		if float64(seen) >= target {
			if i < len(hs.Bounds) {
				return hs.Bounds[i]
			}
			return hs.Bounds[len(hs.Bounds)-1]
		}
	}
	return hs.Bounds[len(hs.Bounds)-1]
}

// Mean reports the average observed duration.
func (hs HistogramSnapshot) Mean() time.Duration {
	if hs.Count == 0 {
		return 0
	}
	return hs.Sum / time.Duration(hs.Count)
}

// snapshot folds the shards.
func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds: append([]time.Duration(nil), h.bounds...),
		Counts: make([]int64, len(h.bounds)+1),
	}
	for s := range h.cells {
		c := &h.cells[s]
		for i := range out.Counts {
			out.Counts[i] += c.counts[i].Load()
		}
		out.Sum += time.Duration(c.sum.Load())
		out.Count += c.observed.Load()
	}
	return out
}

// Registry owns a namespace of metrics. Registration (the Counter,
// Gauge, and Histogram methods) is get-or-create under a lock — the cold
// path, done once at wiring time; the returned pointers are then written
// lock-free. A nil *Registry returns nil instruments, which discard, so
// an entire instrumented stack can run sink-free by passing nil.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (nil bounds = DefaultLatencyBuckets). Bounds are
// fixed at creation; later calls with different bounds return the
// original.
func (r *Registry) Histogram(name string, bounds []time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot folds every metric. The maps are fresh copies; mutating them
// does not affect the registry. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counts {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.snapshot()
	}
	return snap
}

// Label bakes label pairs into a metric name at registration time:
// Label("x_total", "object", "vac") == `x_total{object="vac"}`. Keys are
// emitted in the order given; callers must pass a fixed order so the
// same series always maps to the same registry entry.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}
