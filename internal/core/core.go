// Package core implements the object-oriented consensus framework of
// Afek, Aspnes, Cohen and Vainstein ("Brief Announcement: Object Oriented
// Consensus", PODC 2017).
//
// The paper's thesis is that consensus algorithms are a repetition of a
// two-step round: an agreement-detector object observes how close the
// system is to consensus, and a stalemate-breaker object perturbs the
// processors' preferences so the detector eventually observes agreement.
//
// Two detector/breaker pairs are defined:
//
//   - AdoptCommit + Conciliator — Aspnes's earlier framework (Algorithm 2
//     in the paper), which the paper shows captures Phase-King.
//   - VacillateAdoptCommit + Reconciliator — the paper's new pair
//     (Algorithm 1), needed for algorithms with three per-round outcome
//     classes, such as Ben-Or and Raft.
//
// This package defines the four object interfaces, their formal
// guarantees (documented per method), and the two generic consensus
// templates RunVAC and RunAC. Concrete protocol objects live in
// internal/benor, internal/phaseking, and internal/raft; object algebra
// (building a VAC out of two ACs, and vice versa) lives in
// internal/adapters.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ooc/internal/metrics"
	"ooc/internal/trace"
)

// Confidence is the grade attached to an agreement detector's output.
type Confidence int

// The three confidence levels. AdoptCommit objects only ever return Adopt
// or Commit; VacillateAdoptCommit objects may return all three.
const (
	// Vacillate means the system is in an indecisive state; the only
	// guarantee the receiver has is that no processor received Commit
	// this round.
	Vacillate Confidence = iota + 1
	// Adopt means some processors may have agreed on the returned value:
	// every other processor either received Vacillate or carries the same
	// value.
	Adopt
	// Commit means the system has reached agreement on the returned
	// value; every other processor receives the same value with
	// confidence Adopt or Commit.
	Commit
)

var confidenceNames = map[Confidence]string{
	Vacillate: "vacillate",
	Adopt:     "adopt",
	Commit:    "commit",
}

// String implements fmt.Stringer.
func (c Confidence) String() string {
	if s, ok := confidenceNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Confidence(%d)", int(c))
}

// Valid reports whether c is one of the three defined levels.
func (c Confidence) Valid() bool { return c >= Vacillate && c <= Commit }

// AdoptCommit is Gafni's agreement detector as formulated by Aspnes: a
// weakened consensus whose output carries a two-level confidence.
//
// A correct implementation guarantees, across the set of processors that
// invoke Propose with the same round number:
//
//   - Validity: the returned value is some processor's input.
//   - Termination: every correct processor's call returns.
//   - Coherence: if some processor receives (Commit, u), every processor
//     receives value u (with confidence Adopt or Commit).
//   - Convergence: if all processors propose the same v, all receive
//     (Commit, v).
//
// Propose must never return Vacillate.
type AdoptCommit[V comparable] interface {
	Propose(ctx context.Context, v V, round int) (Confidence, V, error)
}

// Conciliator is Aspnes's stalemate breaker: with probability greater
// than zero, all processors invoking the same round receive the same
// value; the value is always some processor's input (validity) and every
// call returns (termination).
type Conciliator[V comparable] interface {
	Conciliate(ctx context.Context, conf Confidence, v V, round int) (V, error)
}

// VacillateAdoptCommit (VAC) is the paper's three-level agreement
// detector. In addition to AdoptCommit's validity, termination, and
// convergence, it guarantees:
//
//   - Coherence over adopt & commit: if any processor receives
//     (Commit, u), every other processor receives (Commit, u) or
//     (Adopt, u).
//   - Coherence over vacillate & adopt: if no processor receives Commit
//     and some processor receives (Adopt, u), every other processor
//     receives (Adopt, u) or (Vacillate, *) where * is any valid value.
//
// The third level is what lets the framework express algorithms that do
// not force a processor to update its preference every round (Ben-Or,
// Raft): Vacillate tells the processor that consensus has not been
// reached without prescribing a new preference.
type VacillateAdoptCommit[V comparable] interface {
	Propose(ctx context.Context, v V, round int) (Confidence, V, error)
}

// Reconciliator is the paper's stalemate breaker, weaker than a
// conciliator: with probability 1 at *some* round all invoking processors
// receive the same value, and that value corresponds to the round's adopt
// values (or, if there are none, to some processor's input). Unlike a
// conciliator it may be invoked by only a subset of the processors (those
// that vacillated).
type Reconciliator[V comparable] interface {
	Reconcile(ctx context.Context, conf Confidence, v V, round int) (V, error)
}

// Initter is the paper's INIT() hook: objects that need per-execution
// setup (the paper's template calls INIT once before the first round)
// implement it; the templates call it when present.
type Initter interface {
	Init(ctx context.Context) error
}

// Decision is a consensus output: the agreed value and the round at which
// this processor committed.
type Decision[V comparable] struct {
	Value V
	Round int
}

// Sentinel errors returned by the templates.
var (
	// ErrNoDecision is returned when MaxRounds elapsed without a commit.
	ErrNoDecision = errors.New("core: no decision within the configured round bound")
	// ErrContractViolation is returned when an object breaks its
	// interface contract (e.g. an AdoptCommit returning Vacillate).
	ErrContractViolation = errors.New("core: object contract violation")
)

// Options configure a template run. The zero value runs forever (until
// decision, error, or context cancellation) and records nothing.
type Options struct {
	// MaxRounds bounds the number of rounds; 0 means unbounded. If the
	// bound is hit without a commit the template returns ErrNoDecision.
	MaxRounds int
	// KeepParticipating makes the template keep invoking the objects for
	// all MaxRounds even after deciding, as the Phase-King decomposition
	// requires ("every algorithm continues to participate in the overall
	// consensus template even after deciding"). Requires MaxRounds > 0.
	KeepParticipating bool
	// Recorder, if non-nil, receives invoke/return/decide events.
	Recorder *trace.Recorder
	// Node identifies this processor in trace events.
	Node int
	// Metrics, if non-nil, receives per-object invoke latency histograms
	// keyed by the returned confidence — the live view of the paper's
	// detector/breaker decomposition: how often the detector vacillates,
	// adopts, or commits, and how long each outcome takes to produce.
	Metrics *metrics.Registry
}

// Option mutates Options; see With*.
type Option func(*Options)

// WithMaxRounds bounds the template at m rounds.
func WithMaxRounds(m int) Option { return func(o *Options) { o.MaxRounds = m } }

// WithKeepParticipating keeps the processor in the protocol after it
// decides, until MaxRounds elapse.
func WithKeepParticipating() Option { return func(o *Options) { o.KeepParticipating = true } }

// WithRecorder attaches a trace recorder identifying this processor as
// node.
func WithRecorder(rec *trace.Recorder, node int) Option {
	return func(o *Options) {
		o.Recorder = rec
		o.Node = node
	}
}

// WithMetrics attaches a metrics registry; see Options.Metrics. The nil
// form is a shared no-op so uninstrumented callers don't allocate a
// closure per run.
func WithMetrics(reg *metrics.Registry) Option {
	if reg == nil {
		return noopOption
	}
	return func(o *Options) { o.Metrics = reg }
}

var noopOption = func(*Options) {}

// OptionsFrom folds opts into an Options value without validating it.
// Protocol runners (benor.RunDecomposed and friends) use it to inspect
// cross-cutting settings — the metrics registry in particular — before
// delegating to the templates.
func OptionsFrom(opts ...Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

func buildOptions(opts []Option) (Options, error) {
	o := OptionsFrom(opts...)
	if o.KeepParticipating && o.MaxRounds <= 0 {
		return o, errors.New("core: KeepParticipating requires MaxRounds > 0")
	}
	return o, nil
}

// objectMetrics is a template run's pre-registered instrument set: one
// latency histogram per (object, outcome) pair plus one for the breaker,
// resolved once at template entry so the round loop never formats a
// metric name. The zero value (no registry) discards.
type objectMetrics struct {
	enabled  bool
	node     int
	detector [Commit + 1]*metrics.Histogram // indexed by Confidence
	breaker  *metrics.Histogram
}

// newObjectMetrics resolves instruments for a detector ("vac"/"ac") and
// its stalemate breaker ("reconciliator"/"conciliator").
func newObjectMetrics(o Options, detector, breaker string) objectMetrics {
	om := objectMetrics{node: o.Node}
	if o.Metrics == nil {
		return om
	}
	om.enabled = true
	for c := Vacillate; c <= Commit; c++ {
		om.detector[c] = o.Metrics.Histogram(
			metrics.Label("ooc_object_invoke_seconds", "object", detector, "outcome", c.String()), nil)
	}
	om.breaker = o.Metrics.Histogram(
		metrics.Label("ooc_object_invoke_seconds", "object", breaker, "outcome", "value"), nil)
	return om
}

// now reads the clock only when instruments are attached, so the
// uninstrumented template pays a single branch per invocation.
func (om objectMetrics) now() time.Time {
	if !om.enabled {
		return time.Time{}
	}
	return time.Now()
}

// observeDetector records one detector invocation's latency under its
// returned confidence.
func (om objectMetrics) observeDetector(c Confidence, since time.Time) {
	if om.enabled && c.Valid() && om.detector[c] != nil {
		om.detector[c].ObserveSince(om.node, since)
	}
}

// observeBreaker records one breaker invocation's latency.
func (om objectMetrics) observeBreaker(since time.Time) {
	if om.enabled {
		om.breaker.ObserveSince(om.node, since)
	}
}

// RunVAC is Algorithm 1, the paper's generic consensus template: rounds
// of VAC.Propose followed, on vacillate, by Reconciliator.Reconcile.
//
//	Consensus(v):
//	  m ← 0; INIT()
//	  while true:
//	    m ← m+1
//	    (X, σ) ← VAC(v, m)
//	    switch X:
//	      vacillate: v ← Reconciliator(X, σ, m)
//	      adopt:     v ← σ
//	      commit:    v ← σ; decide σ
//
// The proof of Lemma 1 (agreement via coherence over adopt & commit plus
// convergence; validity and termination from the reconciliator) carries
// over directly.
func RunVAC[V comparable](
	ctx context.Context,
	vac VacillateAdoptCommit[V],
	rec Reconciliator[V],
	v V,
	opts ...Option,
) (Decision[V], error) {
	o, err := buildOptions(opts)
	if err != nil {
		return Decision[V]{}, err
	}
	if err := initObjects(ctx, vac, rec); err != nil {
		return Decision[V]{}, err
	}
	om := newObjectMetrics(o, "vac", "reconciliator")

	var (
		decision Decision[V]
		decided  bool
	)
	for m := 1; ; m++ {
		if o.MaxRounds > 0 && m > o.MaxRounds {
			if decided {
				return decision, nil
			}
			return Decision[V]{}, fmt.Errorf("after %d rounds: %w", o.MaxRounds, ErrNoDecision)
		}
		if err := ctx.Err(); err != nil {
			return Decision[V]{}, err
		}

		o.Recorder.Invoke(o.Node, m, "vac", v)
		t0 := om.now()
		x, sigma, err := vac.Propose(ctx, v, m)
		if err != nil {
			return Decision[V]{}, fmt.Errorf("round %d: vac: %w", m, err)
		}
		om.observeDetector(x, t0)
		o.Recorder.Return(o.Node, m, "vac", [2]any{x, sigma})
		if !x.Valid() {
			return Decision[V]{}, fmt.Errorf("round %d: vac returned %v: %w", m, x, ErrContractViolation)
		}

		switch x {
		case Vacillate:
			o.Recorder.Invoke(o.Node, m, "reconciliator", sigma)
			t0 = om.now()
			v, err = rec.Reconcile(ctx, x, sigma, m)
			if err != nil {
				return Decision[V]{}, fmt.Errorf("round %d: reconciliator: %w", m, err)
			}
			om.observeBreaker(t0)
			o.Recorder.Return(o.Node, m, "reconciliator", v)
		case Adopt:
			v = sigma
		case Commit:
			v = sigma
			if !decided {
				decided = true
				decision = Decision[V]{Value: sigma, Round: m}
				o.Recorder.Decide(o.Node, m, sigma)
			}
			if !o.KeepParticipating {
				return decision, nil
			}
		}
	}
}

// RunAC is Algorithm 2, the template over Aspnes's earlier object pair:
// rounds of AdoptCommit.Propose followed, on adopt, by
// Conciliator.Conciliate.
//
//	Consensus(v):
//	  m ← 0; INIT()
//	  while true:
//	    m ← m+1
//	    (X, σ) ← AC(v, m)
//	    switch X:
//	      adopt:  v ← Conciliator(X, σ, m)
//	      commit: v ← σ; decide σ
func RunAC[V comparable](
	ctx context.Context,
	ac AdoptCommit[V],
	con Conciliator[V],
	v V,
	opts ...Option,
) (Decision[V], error) {
	o, err := buildOptions(opts)
	if err != nil {
		return Decision[V]{}, err
	}
	if err := initObjects(ctx, ac, con); err != nil {
		return Decision[V]{}, err
	}
	om := newObjectMetrics(o, "ac", "conciliator")

	var (
		decision Decision[V]
		decided  bool
	)
	for m := 1; ; m++ {
		if o.MaxRounds > 0 && m > o.MaxRounds {
			if decided {
				return decision, nil
			}
			return Decision[V]{}, fmt.Errorf("after %d rounds: %w", o.MaxRounds, ErrNoDecision)
		}
		if err := ctx.Err(); err != nil {
			return Decision[V]{}, err
		}

		o.Recorder.Invoke(o.Node, m, "ac", v)
		t0 := om.now()
		x, sigma, err := ac.Propose(ctx, v, m)
		if err != nil {
			return Decision[V]{}, fmt.Errorf("round %d: ac: %w", m, err)
		}
		om.observeDetector(x, t0)
		o.Recorder.Return(o.Node, m, "ac", [2]any{x, sigma})
		switch x {
		case Adopt:
			o.Recorder.Invoke(o.Node, m, "conciliator", sigma)
			t0 = om.now()
			v, err = con.Conciliate(ctx, x, sigma, m)
			if err != nil {
				return Decision[V]{}, fmt.Errorf("round %d: conciliator: %w", m, err)
			}
			om.observeBreaker(t0)
			o.Recorder.Return(o.Node, m, "conciliator", v)
		case Commit:
			v = sigma
			if !decided {
				decided = true
				decision = Decision[V]{Value: sigma, Round: m}
				o.Recorder.Decide(o.Node, m, sigma)
			}
			if !o.KeepParticipating {
				return decision, nil
			}
		default:
			// An AdoptCommit must never return Vacillate (or garbage):
			// that is exactly the expressiveness gap Section 5 of the
			// paper is about.
			return Decision[V]{}, fmt.Errorf("round %d: ac returned %v: %w", m, x, ErrContractViolation)
		}
	}
}

// initObjects calls Init on every argument implementing Initter.
func initObjects(ctx context.Context, objs ...any) error {
	for _, obj := range objs {
		if in, ok := obj.(Initter); ok {
			if err := in.Init(ctx); err != nil {
				return fmt.Errorf("core: init: %w", err)
			}
		}
	}
	return nil
}
