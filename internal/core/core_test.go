package core

import (
	"context"
	"errors"
	"testing"

	"ooc/internal/trace"
)

func TestConfidenceString(t *testing.T) {
	cases := map[Confidence]string{
		Vacillate:      "vacillate",
		Adopt:          "adopt",
		Commit:         "commit",
		Confidence(42): "Confidence(42)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestConfidenceValid(t *testing.T) {
	for _, c := range []Confidence{Vacillate, Adopt, Commit} {
		if !c.Valid() {
			t.Errorf("%v.Valid() = false", c)
		}
	}
	for _, c := range []Confidence{0, 4, -1} {
		if c.Valid() {
			t.Errorf("Confidence(%d).Valid() = true", int(c))
		}
	}
}

// scriptedVAC returns a fixed sequence of (confidence, value) pairs, then
// commits the last value forever.
type scriptedVAC struct {
	script []struct {
		x Confidence
		v int
	}
	calls int
}

func (s *scriptedVAC) Propose(_ context.Context, v int, round int) (Confidence, int, error) {
	i := s.calls
	s.calls++
	if i >= len(s.script) {
		last := s.script[len(s.script)-1]
		return Commit, last.v, nil
	}
	return s.script[i].x, s.script[i].v, nil
}

func fixedReconciliator(out int) ReconciliatorFunc[int] {
	return func(_ context.Context, _ Confidence, _ int, _ int) (int, error) {
		return out, nil
	}
}

func TestRunVACCommitsImmediately(t *testing.T) {
	vac := VACFunc[int](func(_ context.Context, v int, _ int) (Confidence, int, error) {
		return Commit, v, nil
	})
	d, err := RunVAC[int](context.Background(), vac, fixedReconciliator(0), 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.Value != 7 || d.Round != 1 {
		t.Fatalf("decision = %+v, want {7 1}", d)
	}
}

func TestRunVACAdoptUpdatesPreference(t *testing.T) {
	s := &scriptedVAC{script: []struct {
		x Confidence
		v int
	}{{Adopt, 9}, {Commit, 9}}}
	var sawRound2Input int
	wrapped := VACFunc[int](func(ctx context.Context, v int, round int) (Confidence, int, error) {
		if round == 2 {
			sawRound2Input = v
		}
		return s.Propose(ctx, v, round)
	})
	d, err := RunVAC[int](context.Background(), wrapped, fixedReconciliator(-1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if sawRound2Input != 9 {
		t.Fatalf("round 2 proposed %d, want adopted value 9", sawRound2Input)
	}
	if d.Value != 9 || d.Round != 2 {
		t.Fatalf("decision = %+v", d)
	}
}

func TestRunVACVacillateInvokesReconciliator(t *testing.T) {
	s := &scriptedVAC{script: []struct {
		x Confidence
		v int
	}{{Vacillate, 3}, {Commit, 5}}}
	recCalled := 0
	rec := ReconciliatorFunc[int](func(_ context.Context, conf Confidence, v int, round int) (int, error) {
		recCalled++
		if conf != Vacillate || v != 3 || round != 1 {
			t.Errorf("reconciliator got (%v, %d, %d)", conf, v, round)
		}
		return 5, nil
	})
	d, err := RunVAC[int](context.Background(), s, rec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if recCalled != 1 {
		t.Fatalf("reconciliator called %d times, want 1", recCalled)
	}
	if d.Value != 5 || d.Round != 2 {
		t.Fatalf("decision = %+v", d)
	}
}

func TestRunVACMaxRoundsNoDecision(t *testing.T) {
	vac := VACFunc[int](func(_ context.Context, v int, _ int) (Confidence, int, error) {
		return Vacillate, v, nil
	})
	_, err := RunVAC[int](context.Background(), vac, fixedReconciliator(1), 0, WithMaxRounds(5))
	if !errors.Is(err, ErrNoDecision) {
		t.Fatalf("err = %v, want ErrNoDecision", err)
	}
}

func TestRunVACInvalidConfidence(t *testing.T) {
	vac := VACFunc[int](func(_ context.Context, v int, _ int) (Confidence, int, error) {
		return Confidence(99), v, nil
	})
	_, err := RunVAC[int](context.Background(), vac, fixedReconciliator(1), 0)
	if !errors.Is(err, ErrContractViolation) {
		t.Fatalf("err = %v, want ErrContractViolation", err)
	}
}

func TestRunVACKeepParticipating(t *testing.T) {
	calls := 0
	vac := VACFunc[int](func(_ context.Context, v int, _ int) (Confidence, int, error) {
		calls++
		return Commit, v, nil
	})
	d, err := RunVAC[int](context.Background(), vac, fixedReconciliator(0), 4,
		WithMaxRounds(6), WithKeepParticipating())
	if err != nil {
		t.Fatal(err)
	}
	if calls != 6 {
		t.Fatalf("vac invoked %d times, want 6 (keep participating)", calls)
	}
	if d.Value != 4 || d.Round != 1 {
		t.Fatalf("decision = %+v, want first-round decision", d)
	}
}

func TestRunVACKeepParticipatingRequiresBound(t *testing.T) {
	vac := VACFunc[int](func(_ context.Context, v int, _ int) (Confidence, int, error) {
		return Commit, v, nil
	})
	_, err := RunVAC[int](context.Background(), vac, fixedReconciliator(0), 4, WithKeepParticipating())
	if err == nil {
		t.Fatal("KeepParticipating without MaxRounds accepted")
	}
}

func TestRunVACContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	vac := VACFunc[int](func(_ context.Context, v int, round int) (Confidence, int, error) {
		if round == 3 {
			cancel()
		}
		return Vacillate, v, nil
	})
	_, err := RunVAC[int](ctx, vac, fixedReconciliator(1), 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunVACPropagatesObjectErrors(t *testing.T) {
	boom := errors.New("boom")
	vac := VACFunc[int](func(_ context.Context, v int, _ int) (Confidence, int, error) {
		return 0, 0, boom
	})
	_, err := RunVAC[int](context.Background(), vac, fixedReconciliator(1), 0)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}

	vacOK := VACFunc[int](func(_ context.Context, v int, _ int) (Confidence, int, error) {
		return Vacillate, v, nil
	})
	rec := ReconciliatorFunc[int](func(_ context.Context, _ Confidence, _ int, _ int) (int, error) {
		return 0, boom
	})
	_, err = RunVAC[int](context.Background(), vacOK, rec, 0)
	if !errors.Is(err, boom) {
		t.Fatalf("reconciliator err = %v, want wrapped boom", err)
	}
}

type initVAC struct {
	VACFunc[int]
	inits int
}

func (i *initVAC) Init(context.Context) error {
	i.inits++
	return nil
}

func TestRunVACCallsInit(t *testing.T) {
	iv := &initVAC{VACFunc: func(_ context.Context, v int, _ int) (Confidence, int, error) {
		return Commit, v, nil
	}}
	if _, err := RunVAC[int](context.Background(), iv, fixedReconciliator(0), 1); err != nil {
		t.Fatal(err)
	}
	if iv.inits != 1 {
		t.Fatalf("Init called %d times, want 1", iv.inits)
	}
}

func TestRunVACInitError(t *testing.T) {
	boom := errors.New("init failed")
	failing := &failingInitter{err: boom}
	_, err := RunVAC[int](context.Background(), failing, fixedReconciliator(0), 1)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want init error", err)
	}
}

type failingInitter struct{ err error }

func (f *failingInitter) Init(context.Context) error { return f.err }

func (f *failingInitter) Propose(_ context.Context, v int, _ int) (Confidence, int, error) {
	return Commit, v, nil
}

func TestRunVACRecordsTrace(t *testing.T) {
	rec := trace.NewRecorder()
	s := &scriptedVAC{script: []struct {
		x Confidence
		v int
	}{{Vacillate, 1}, {Adopt, 2}, {Commit, 2}}}
	d, err := RunVAC[int](context.Background(), s, fixedReconciliator(2), 1,
		WithRecorder(rec, 3))
	if err != nil {
		t.Fatal(err)
	}
	if d.Value != 2 || d.Round != 3 {
		t.Fatalf("decision = %+v", d)
	}
	tr := rec.Snapshot()
	st := trace.Summarize(tr)
	if st.ObjectInvocations["vac"] != 3 {
		t.Fatalf("vac invocations = %d, want 3", st.ObjectInvocations["vac"])
	}
	if st.ObjectInvocations["reconciliator"] != 1 {
		t.Fatalf("reconciliator invocations = %d, want 1", st.ObjectInvocations["reconciliator"])
	}
	if st.Decisions != 1 || st.DecideRound != 3 {
		t.Fatalf("decision accounting: %+v", st)
	}
	for _, ev := range tr.Events {
		if ev.Node != 3 {
			t.Fatalf("event attributed to node %d, want 3: %+v", ev.Node, ev)
		}
	}
}

// ---- RunAC (Algorithm 2) ----

func TestRunACCommit(t *testing.T) {
	ac := ACFunc[string](func(_ context.Context, v string, _ int) (Confidence, string, error) {
		return Commit, v, nil
	})
	con := ConciliatorFunc[string](func(_ context.Context, _ Confidence, v string, _ int) (string, error) {
		return v, nil
	})
	d, err := RunAC[string](context.Background(), ac, con, "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.Value != "x" || d.Round != 1 {
		t.Fatalf("decision = %+v", d)
	}
}

func TestRunACAdoptRoutesThroughConciliator(t *testing.T) {
	round := 0
	ac := ACFunc[string](func(_ context.Context, v string, _ int) (Confidence, string, error) {
		round++
		if round == 1 {
			return Adopt, v, nil
		}
		return Commit, v, nil
	})
	conCalls := 0
	con := ConciliatorFunc[string](func(_ context.Context, conf Confidence, v string, m int) (string, error) {
		conCalls++
		if conf != Adopt || m != 1 {
			t.Errorf("conciliator got (%v, %d)", conf, m)
		}
		return "king", nil
	})
	d, err := RunAC[string](context.Background(), ac, con, "x")
	if err != nil {
		t.Fatal(err)
	}
	if conCalls != 1 {
		t.Fatalf("conciliator called %d times", conCalls)
	}
	if d.Value != "king" || d.Round != 2 {
		t.Fatalf("decision = %+v", d)
	}
}

func TestRunACRejectsVacillate(t *testing.T) {
	ac := ACFunc[int](func(_ context.Context, v int, _ int) (Confidence, int, error) {
		return Vacillate, v, nil
	})
	con := ConciliatorFunc[int](func(_ context.Context, _ Confidence, v int, _ int) (int, error) {
		return v, nil
	})
	_, err := RunAC[int](context.Background(), ac, con, 0)
	if !errors.Is(err, ErrContractViolation) {
		t.Fatalf("err = %v, want ErrContractViolation", err)
	}
}

func TestRunACMaxRounds(t *testing.T) {
	ac := ACFunc[int](func(_ context.Context, v int, _ int) (Confidence, int, error) {
		return Adopt, v, nil
	})
	con := ConciliatorFunc[int](func(_ context.Context, _ Confidence, v int, _ int) (int, error) {
		return v, nil
	})
	_, err := RunAC[int](context.Background(), ac, con, 0, WithMaxRounds(3))
	if !errors.Is(err, ErrNoDecision) {
		t.Fatalf("err = %v, want ErrNoDecision", err)
	}
}

func TestRunACKeepParticipatingReturnsFirstDecision(t *testing.T) {
	round := 0
	ac := ACFunc[int](func(_ context.Context, v int, _ int) (Confidence, int, error) {
		round++
		return Commit, round, nil // commits a different value each round
	})
	con := ConciliatorFunc[int](func(_ context.Context, _ Confidence, v int, _ int) (int, error) {
		return v, nil
	})
	d, err := RunAC[int](context.Background(), ac, con, 0, WithMaxRounds(4), WithKeepParticipating())
	if err != nil {
		t.Fatal(err)
	}
	if d.Value != 1 || d.Round != 1 {
		t.Fatalf("decision = %+v, want the first commit", d)
	}
	if round != 4 {
		t.Fatalf("ac invoked %d times, want 4", round)
	}
}
