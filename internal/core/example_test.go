package core_test

import (
	"context"
	"fmt"

	"ooc/internal/core"
)

// ExampleRunVAC shows the paper's Algorithm 1 template driving a toy
// object pair: a VAC that vacillates once and then commits whatever the
// reconciliator suggested.
func ExampleRunVAC() {
	round := 0
	vac := core.VACFunc[string](func(_ context.Context, v string, _ int) (core.Confidence, string, error) {
		round++
		if round == 1 {
			return core.Vacillate, v, nil
		}
		return core.Commit, v, nil
	})
	rec := core.ReconciliatorFunc[string](func(_ context.Context, _ core.Confidence, _ string, _ int) (string, error) {
		return "reconciled", nil
	})

	d, err := core.RunVAC[string](context.Background(), vac, rec, "initial")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("decided %q in round %d\n", d.Value, d.Round)
	// Output: decided "reconciled" in round 2
}

// ExampleRunAC shows Algorithm 2, the template over Aspnes's earlier
// adopt-commit / conciliator pair.
func ExampleRunAC() {
	round := 0
	ac := core.ACFunc[int](func(_ context.Context, v int, _ int) (core.Confidence, int, error) {
		round++
		if round == 1 {
			return core.Adopt, v, nil
		}
		return core.Commit, v, nil
	})
	con := core.ConciliatorFunc[int](func(_ context.Context, _ core.Confidence, v int, _ int) (int, error) {
		return v + 41, nil
	})

	d, err := core.RunAC[int](context.Background(), ac, con, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("decided %d in round %d\n", d.Value, d.Round)
	// Output: decided 42 in round 2
}
