package core

import "context"

// VACFunc adapts a plain function to the VacillateAdoptCommit interface,
// in the manner of http.HandlerFunc. It is the quickest way to plug a
// custom agreement detector into the template (see examples/customobject).
type VACFunc[V comparable] func(ctx context.Context, v V, round int) (Confidence, V, error)

var _ VacillateAdoptCommit[int] = (VACFunc[int])(nil)

// Propose implements VacillateAdoptCommit.
func (f VACFunc[V]) Propose(ctx context.Context, v V, round int) (Confidence, V, error) {
	return f(ctx, v, round)
}

// ACFunc adapts a plain function to the AdoptCommit interface.
type ACFunc[V comparable] func(ctx context.Context, v V, round int) (Confidence, V, error)

var _ AdoptCommit[int] = (ACFunc[int])(nil)

// Propose implements AdoptCommit.
func (f ACFunc[V]) Propose(ctx context.Context, v V, round int) (Confidence, V, error) {
	return f(ctx, v, round)
}

// ReconciliatorFunc adapts a plain function to the Reconciliator
// interface.
type ReconciliatorFunc[V comparable] func(ctx context.Context, conf Confidence, v V, round int) (V, error)

var _ Reconciliator[int] = (ReconciliatorFunc[int])(nil)

// Reconcile implements Reconciliator.
func (f ReconciliatorFunc[V]) Reconcile(ctx context.Context, conf Confidence, v V, round int) (V, error) {
	return f(ctx, conf, v, round)
}

// ConciliatorFunc adapts a plain function to the Conciliator interface.
type ConciliatorFunc[V comparable] func(ctx context.Context, conf Confidence, v V, round int) (V, error)

var _ Conciliator[int] = (ConciliatorFunc[int])(nil)

// Conciliate implements Conciliator.
func (f ConciliatorFunc[V]) Conciliate(ctx context.Context, conf Confidence, v V, round int) (V, error) {
	return f(ctx, conf, v, round)
}
