package shard

import (
	"ooc/internal/raft"
	"ooc/internal/trace"
)

// noteStorage wraps one replica's Storage to emit a trace note per
// durability flush — "fsync <channel> entries=E width=W" — so ooctrace
// can surface per-shard durability cost (fsyncs_per_op, mean barrier
// width) next to the mux-channel traffic columns without the storage
// layer knowing about shards. entries is the number of log entries the
// flush covered (0 for term/vote and snapshot records); width is how
// many groups shared the covering device barrier (LastBarrierWidth on
// storages that track it, 1 otherwise).
//
// It forwards the two optional interfaces the raft layer discovers by
// assertion — SetSyncer and LastBarrierWidth — which interface
// embedding alone would hide.
type noteStorage struct {
	inner   raft.Storage
	rec     *trace.Recorder
	node    int
	channel string
}

var _ raft.Storage = (*noteStorage)(nil)

func (s *noteStorage) note(entries int) {
	s.rec.Note(s.node, "fsync %s entries=%d width=%d", s.channel, entries, s.LastBarrierWidth())
}

// SetState implements raft.Storage.
func (s *noteStorage) SetState(term, votedFor int) error {
	err := s.inner.SetState(term, votedFor)
	if err == nil {
		s.note(0)
	}
	return err
}

// TruncateAndAppend implements raft.Storage.
func (s *noteStorage) TruncateAndAppend(prevIndex int, entries []raft.Entry) error {
	err := s.inner.TruncateAndAppend(prevIndex, entries)
	if err == nil {
		s.note(len(entries))
	}
	return err
}

// AppendBatch implements raft.Storage.
func (s *noteStorage) AppendBatch(muts []raft.LogMutation) error {
	err := s.inner.AppendBatch(muts)
	if err == nil && len(muts) > 0 {
		entries := 0
		for _, m := range muts {
			entries += len(m.Entries)
		}
		s.note(entries)
	}
	return err
}

// SaveSnapshot implements raft.Storage.
func (s *noteStorage) SaveSnapshot(index, term int, data []byte) error {
	err := s.inner.SaveSnapshot(index, term, data)
	if err == nil {
		s.note(0)
	}
	return err
}

// Load implements raft.Storage.
func (s *noteStorage) Load() (raft.PersistentState, error) { return s.inner.Load() }

// SetSyncer forwards the node-wide coalescer to the wrapped storage.
func (s *noteStorage) SetSyncer(sc *raft.SyncCoalescer) {
	if ss, ok := s.inner.(interface{ SetSyncer(*raft.SyncCoalescer) }); ok {
		ss.SetSyncer(sc)
	}
}

// LastBarrierWidth forwards the wrapped storage's barrier width, 1 when
// it doesn't track one.
func (s *noteStorage) LastBarrierWidth() int {
	if ws, ok := s.inner.(interface{ LastBarrierWidth() int }); ok {
		return ws.LastBarrierWidth()
	}
	return 1
}
