package shard

import (
	"fmt"
	"testing"
)

func TestSplitEvenCoversAndBalances(t *testing.T) {
	for _, tc := range []struct{ shards, slots int }{
		{1, 1024}, {2, 1024}, {4, 1024}, {8, 1024}, {3, 10}, {7, 100},
	} {
		d := SplitEven(tc.shards, tc.slots)
		if err := d.Validate(); err != nil {
			t.Fatalf("SplitEven(%d, %d): %v", tc.shards, tc.slots, err)
		}
		if got := d.NumShards(); got != tc.shards {
			t.Fatalf("SplitEven(%d, %d).NumShards() = %d", tc.shards, tc.slots, got)
		}
		min, max := tc.slots, 0
		for _, r := range d.Ranges {
			if w := r.End - r.Start; w < min {
				min = w
			} else if w > max {
				max = w
			}
		}
		if max-min > 1 {
			t.Fatalf("SplitEven(%d, %d) range widths spread %d..%d", tc.shards, tc.slots, min, max)
		}
	}
}

func TestDescriptorValidateRejects(t *testing.T) {
	bad := []Descriptor{
		{Slots: 0},
		{Slots: 10},
		{Slots: 10, Ranges: []Range{{Start: 1, End: 10, Shard: 0}}},                     // gap at 0
		{Slots: 10, Ranges: []Range{{Start: 0, End: 5, Shard: 0}, {Start: 4, End: 10}}}, // overlap
		{Slots: 10, Ranges: []Range{{Start: 0, End: 5, Shard: 0}, {Start: 6, End: 10}}}, // gap
		{Slots: 10, Ranges: []Range{{Start: 0, End: 10, Shard: -1}}},                    // negative shard
		{Slots: 10, Ranges: []Range{{Start: 0, End: 0, Shard: 0}, {Start: 0, End: 10}}}, // empty range
		{Slots: 10, Ranges: []Range{{Start: 0, End: 5, Shard: 0}}},                      // short cover
		{Slots: 10, Ranges: []Range{{Start: 0, End: 5, Shard: 0}, {Start: 5, End: 11}}}, // over cover
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid descriptor accepted: %+v", i, d)
		}
	}
}

func TestShardOfStableAndInRange(t *testing.T) {
	d := SplitEven(4, DefaultSlots)
	d2 := SplitEven(4, DefaultSlots)
	counts := make([]int, 4)
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("k%06d", i)
		s := d.ShardOf(k)
		if s < 0 || s >= 4 {
			t.Fatalf("key %q routed to shard %d", k, s)
		}
		if s2 := d2.ShardOf(k); s2 != s {
			t.Fatalf("routing unstable: %q → %d then %d", k, s, s2)
		}
		counts[s]++
	}
	// FNV over a dense key set should spread well; allow wide slack.
	for s, c := range counts {
		if c < 200 {
			t.Fatalf("shard %d drew only %d of 2000 keys: %v", s, c, counts)
		}
	}
}

func TestDescriptorSplit(t *testing.T) {
	d := SplitEven(2, 100) // shard 0: [0,50), shard 1: [50,100)
	d2, err := d.Split(25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d2.NumShards(); got != 3 {
		t.Fatalf("NumShards after split = %d", got)
	}
	for slot, want := range map[int]int{0: 0, 24: 0, 25: 2, 49: 2, 50: 1, 99: 1} {
		if got := d2.shardOfSlot(slot); got != want {
			t.Fatalf("slot %d → shard %d, want %d", slot, got, want)
		}
	}
	// The receiver is unchanged (descriptors are values).
	if got := d.shardOfSlot(30); got != 0 {
		t.Fatalf("original descriptor mutated: slot 30 → %d", got)
	}
	// Split points on an existing boundary or outside the space fail.
	if _, err := d.Split(50, 2); err == nil {
		t.Fatal("boundary split accepted")
	}
	if _, err := d.Split(0, 2); err == nil {
		t.Fatal("split at 0 accepted")
	}
	if _, err := d.Split(100, 2); err == nil {
		t.Fatal("split at Slots accepted")
	}
}

func TestChannelNameFormat(t *testing.T) {
	// The trace inspector parses this format back; pin it.
	if got := ChannelName(7); got != "shard/7" {
		t.Fatalf("ChannelName(7) = %q", got)
	}
}
