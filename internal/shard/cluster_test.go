package shard_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"ooc/internal/metrics"
	"ooc/internal/msgnet"
	"ooc/internal/netsim"
	"ooc/internal/raft"
	"ooc/internal/shard"
	"ooc/internal/sim"
	"ooc/internal/workload"
)

// recordingSM wraps a KVStore and records the KV commands it applies, in
// order. Term-opening Noop entries are deliberately not recorded: their
// count depends on real-time election timing, while the client-command
// sequence per shard is what determinism over a fixed seed promises.
type recordingSM struct {
	kv  raft.KVStore
	mu  sync.Mutex
	ops []string
}

func (r *recordingSM) Apply(index int, cmd any) {
	r.kv.Apply(index, cmd)
	if c, ok := cmd.(raft.KVCommand); ok {
		r.mu.Lock()
		r.ops = append(r.ops, fmt.Sprintf("%s %s=%s", c.Op, c.Key, c.Value))
		r.mu.Unlock()
	}
}

func (r *recordingSM) Get(key string) (string, bool) { return r.kv.Get(key) }

func (r *recordingSM) Ops() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.ops...)
}

func endpoints(nw *netsim.Network, n int) []msgnet.Endpoint {
	eps := make([]msgnet.Endpoint, n)
	for i := range eps {
		eps[i] = nw.Node(i)
	}
	return eps
}

const (
	testElection  = 30 * time.Millisecond
	testHeartbeat = 6 * time.Millisecond
)

// runSeeded boots nodes×shards, drives ops writes from one sequential
// client, waits until every replica of every shard has applied all the
// commands routed to it, and returns each (shard, node) replica's
// recorded command sequence. Optional modifiers adjust the cluster
// config (storage backend, fsync mode) before boot; the cluster is
// fully stopped before returning, so modifier-owned resources (files)
// are safe to close afterwards.
func runSeeded(t *testing.T, seed uint64, nodes, shards, ops int, mods ...func(*shard.Config)) [][][]string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	nw := netsim.New(nodes, netsim.WithSeed(seed), netsim.WithFIFO())
	sms := make([][]*recordingSM, shards)
	for s := range sms {
		sms[s] = make([]*recordingSM, nodes)
	}
	cfg := shard.Config{
		Endpoints:         endpoints(nw, nodes),
		Shards:            shards,
		RNG:               sim.NewRNG(seed),
		ElectionTimeout:   testElection,
		HeartbeatInterval: testHeartbeat,
		// Byte-identical per-seed sequences need the fully ordered write
		// path: the pipelined workers run on wall-clock goroutines, whose
		// scheduling perturbs batching between same-seed runs.
		SyncPipeline: true,
		StateMachine: func(node, s int) raft.StateMachine {
			sms[s][node] = &recordingSM{}
			return sms[s][node]
		},
	}
	for _, mod := range mods {
		mod(&cfg)
	}
	c, err := shard.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForLeaders(ctx); err != nil {
		t.Fatal(err)
	}

	mix, err := workload.NewKVMix(workload.KVMixConfig{ReadRatio: 0, Keys: 200}, sim.NewRNG(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	routed := make([]int, shards)
	for i := 0; i < ops; i++ {
		op := mix.Next()
		s, _, err := c.Put(ctx, op.Key, op.Value)
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		routed[s]++
	}
	// Quiesce: followers lag the leader by replication only; wait until
	// every replica has applied everything its shard committed.
	deadline := time.Now().Add(30 * time.Second)
	for s := 0; s < shards; s++ {
		for id := 0; id < nodes; id++ {
			for len(sms[s][id].Ops()) < routed[s] {
				if time.Now().After(deadline) {
					t.Fatalf("shard %d node %d applied %d of %d", s, id, len(sms[s][id].Ops()), routed[s])
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	out := make([][][]string, shards)
	for s := range out {
		out[s] = make([][]string, nodes)
		for id := range out[s] {
			out[s][id] = sms[s][id].Ops()
		}
	}
	cancel()
	c.Wait()
	return out
}

// runSeededDisk is runSeeded on FileStorage: every (node, shard) replica
// persists to its own log under a temp dir, and perGroup selects the
// fsync mode — false routes every flush through the node's shared
// SyncCoalescer (PR10), true keeps the uncoalesced baseline.
func runSeededDisk(t *testing.T, seed uint64, nodes, shards, ops int, perGroup bool) [][][]string {
	t.Helper()
	dir := t.TempDir()
	var (
		filesMu sync.Mutex
		files   []*raft.FileStorage
	)
	out := runSeeded(t, seed, nodes, shards, ops, func(cfg *shard.Config) {
		cfg.PerGroupFsync = perGroup
		cfg.Storage = func(node, s int) (raft.Storage, error) {
			fs, err := raft.OpenFileStorage(fmt.Sprintf("%s/node-%d-shard-%d.log", dir, node, s))
			if err != nil {
				return nil, err
			}
			if _, err := fs.Load(); err != nil {
				_ = fs.Close()
				return nil, err
			}
			filesMu.Lock()
			files = append(files, fs)
			filesMu.Unlock()
			return fs, nil
		}
	})
	filesMu.Lock()
	defer filesMu.Unlock()
	for _, fs := range files {
		_ = fs.Close()
	}
	return out
}

// TestClusterDeterministicCommitSequences is the satellite's determinism
// check: the same seed yields byte-identical per-shard commit sequences
// across independent runs, and within one run every replica of a shard
// applies exactly the same sequence (the replication invariant).
func TestClusterDeterministicCommitSequences(t *testing.T) {
	const nodes, shards, ops = 3, 4, 120
	a := runSeeded(t, 42, nodes, shards, ops)
	b := runSeeded(t, 42, nodes, shards, ops)
	for s := 0; s < shards; s++ {
		for id := 1; id < nodes; id++ {
			if !reflect.DeepEqual(a[s][0], a[s][id]) {
				t.Fatalf("run A shard %d: node %d diverged from node 0", s, id)
			}
		}
		if !reflect.DeepEqual(a[s][0], b[s][0]) {
			t.Fatalf("shard %d commit sequence differs across same-seed runs:\nA: %v\nB: %v", s, a[s][0], b[s][0])
		}
		if len(a[s][0]) == 0 {
			t.Fatalf("shard %d committed nothing; router is funnelling", s)
		}
	}
}

// TestClusterCoalescedFsyncDeterminism extends the determinism check to
// the shared-disk group-commit path (PR10): with every replica on
// FileStorage, a seed must yield identical per-shard commit sequences
// whether the node's flushes ride coalesced device barriers or the
// per-group baseline — barrier timing may move fsyncs between batches,
// but it must never reorder a shard's committed commands.
func TestClusterCoalescedFsyncDeterminism(t *testing.T) {
	const nodes, shards, ops = 3, 4, 80
	coalesced := runSeededDisk(t, 42, nodes, shards, ops, false)
	baseline := runSeededDisk(t, 42, nodes, shards, ops, true)
	for s := 0; s < shards; s++ {
		for id := 1; id < nodes; id++ {
			if !reflect.DeepEqual(coalesced[s][0], coalesced[s][id]) {
				t.Fatalf("coalesced run shard %d: node %d diverged from node 0", s, id)
			}
		}
		if !reflect.DeepEqual(coalesced[s][0], baseline[s][0]) {
			t.Fatalf("shard %d commit sequence differs between fsync modes:\ncoalesced: %v\nper-group: %v",
				s, coalesced[s][0], baseline[s][0])
		}
		if len(coalesced[s][0]) == 0 {
			t.Fatalf("shard %d committed nothing; router is funnelling", s)
		}
	}
}

// TestClusterLeaderPlacementSpread pins the boot placement: with more
// shards than nodes, leadership lands on at least two distinct nodes
// (the acceptance bar), normally all three.
func TestClusterLeaderPlacementSpread(t *testing.T) {
	const nodes, shards = 3, 4
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	nw := netsim.New(nodes, netsim.WithSeed(7), netsim.WithFIFO())
	reg := metrics.NewRegistry()
	c, err := shard.NewCluster(shard.Config{
		Endpoints:         endpoints(nw, nodes),
		Shards:            shards,
		RNG:               sim.NewRNG(7),
		ElectionTimeout:   testElection,
		HeartbeatInterval: testHeartbeat,
		Metrics:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForLeaders(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.LeaderSpread() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("leader spread %d, placement %v", c.LeaderSpread(), c.LeaderPlacement())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The watcher table and the gauges tell the same story.
	placement := c.LeaderPlacement()
	for s, node := range placement {
		if node < 0 {
			t.Fatalf("shard %d has no recorded leader: %v", s, placement)
		}
		g := reg.Gauge(metrics.Label("shard_leader", "shard", fmt.Sprint(s)))
		if got := int(g.Value()); got != node {
			t.Fatalf("shard %d gauge says node %d, table says %d", s, got, node)
		}
	}
}

// TestClusterMultiShardSoak is the -race soak: concurrent clients drive
// a mixed read/write workload across every shard, then the test checks
// convergence (every replica of a shard holds the same data) and shard
// isolation (replicas hold only keys their shard owns).
func TestClusterMultiShardSoak(t *testing.T) {
	const nodes, shards, clients, opsPerClient = 3, 4, 4, 60
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	nw := netsim.New(nodes, netsim.WithSeed(11), netsim.WithFIFO())
	sms := make([][]*raft.KVStore, shards)
	for s := range sms {
		sms[s] = make([]*raft.KVStore, nodes)
	}
	c, err := shard.NewCluster(shard.Config{
		Endpoints:         endpoints(nw, nodes),
		Shards:            shards,
		RNG:               sim.NewRNG(11),
		ElectionTimeout:   testElection,
		HeartbeatInterval: testHeartbeat,
		LeaseDuration:     testElection,
		ReadMode:          raft.ReadLinearizable,
		StateMachine: func(node, s int) raft.StateMachine {
			sms[s][node] = &raft.KVStore{}
			return sms[s][node]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForLeaders(ctx); err != nil {
		t.Fatal(err)
	}

	fam, err := workload.NewKVMixFamily(workload.KVMixConfig{ReadRatio: 0.3, Keys: 128})
	if err != nil {
		t.Fatal(err)
	}
	root := sim.NewRNG(12)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			mix := fam.Instance(root.Stream('w', uint64(cl)))
			for i := 0; i < opsPerClient; i++ {
				op := mix.Next()
				if op.Read {
					if _, _, err := c.Get(ctx, op.Key); err != nil {
						errs <- fmt.Errorf("client %d get: %w", cl, err)
						return
					}
					continue
				}
				// Per-client value prefix keeps writes globally unique.
				if _, _, err := c.Put(ctx, op.Key, fmt.Sprintf("c%d-%s", cl, op.Value)); err != nil {
					errs <- fmt.Errorf("client %d put: %w", cl, err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Convergence: every replica of a shard ends with identical contents.
	desc := c.Descriptor()
	deadline := time.Now().Add(30 * time.Second)
	for s := 0; s < shards; s++ {
		for {
			if snapshotsAgree(sms[s]) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("shard %d replicas did not converge", s)
			}
			time.Sleep(2 * time.Millisecond)
		}
		// Isolation: a replica holds only keys its shard owns.
		for id := 0; id < nodes; id++ {
			for _, kv := range sms[s][id].Snapshot() {
				key := kv[:len("k000000")]
				if got := desc.ShardOf(key); got != s {
					t.Fatalf("shard %d node %d holds key %q owned by shard %d", s, id, key, got)
				}
			}
		}
	}
}

func snapshotsAgree(stores []*raft.KVStore) bool {
	want := stores[0].Snapshot()
	for _, st := range stores[1:] {
		if !reflect.DeepEqual(want, st.Snapshot()) {
			return false
		}
	}
	return true
}
